module phasehash

go 1.22
