// Quickstart: the phase-concurrent discipline and the determinism
// guarantee in ~60 lines.
//
// A phase-concurrent hash table allows any number of goroutines to run
// operations of the SAME type concurrently (all inserts, or all deletes,
// or all finds/elements); different types are separated by a barrier.
// In return, the table state — including the order Elements() returns —
// is completely deterministic: it depends on the set of keys only,
// never on scheduling.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"phasehash"
)

func main() {
	s := phasehash.NewSet(1 << 16)

	// ---- Insert phase: 8 goroutines hammer the table concurrently.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(w + 1); k <= 30_000; k += 8 {
				s.Insert(k * 2654435761 % 1_000_003)
			}
		}(w)
	}
	wg.Wait() // the phase barrier

	// ---- Read phase: finds and Elements() may run together.
	fmt.Printf("distinct keys: %d\n", s.Count())
	first := s.Elements()[:5]
	fmt.Printf("first 5 of Elements(): %v\n", first)

	// ---- Delete phase: remove every key below 500, concurrently.
	elems := s.Elements()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(elems); i += 8 {
				if elems[i] < 500 {
					s.Delete(elems[i])
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("after deleting keys < 500: %d\n", s.Count())

	// Determinism: rebuild the same key set with a different goroutine
	// count and interleaving — Elements() is identical.
	rebuild := func(workers int) []uint64 {
		t := phasehash.NewSet(1 << 16)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := uint64(w + 1); k <= 30_000; k += uint64(workers) {
					t.Insert(k*2654435761%1_000_003 + 499)
				}
			}(w)
		}
		wg.Wait()
		return t.Elements()
	}
	a, b := rebuild(2), rebuild(16)
	same := len(a) == len(b)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == b[i]
	}
	fmt.Printf("Elements() identical across 2 vs 16 goroutines: %v\n", same)
}
