// Delaunay refinement: the paper's flagship application (Section 5).
// Bad triangles (minimum angle below a bound) live in a deterministic
// hash table; every iteration obtains them with Elements(), inserts the
// circumcenters of a non-conflicting prefix (deterministic
// reservations), and inserts the new bad triangles. Because Elements()
// is deterministic, the final mesh is the same on every run.
//
//	go run ./examples/delaunay [-points 100000] [-angle 25]
package main

import (
	"flag"
	"fmt"
	"time"

	"phasehash/internal/apps/refine"
	"phasehash/internal/delaunay"
	"phasehash/internal/geom"
	"phasehash/internal/tables"
)

func main() {
	points := flag.Int("points", 100_000, "input points (2DinCube)")
	angle := flag.Float64("angle", 25, "minimum-angle bound α in degrees")
	flag.Parse()

	pts := geom.InCube(*points, 42)
	start := time.Now()
	mesh := delaunay.Build(pts)
	fmt.Printf("triangulated %d points in %v (%d triangles)\n",
		*points, time.Since(start).Round(time.Millisecond), len(mesh.RealTriangles()))

	before := refine.CountBad(mesh, *angle)
	start = time.Now()
	st := refine.Run(mesh, refine.Config{MinAngleDeg: *angle, Kind: tables.LinearD})
	elapsed := time.Since(start)

	fmt.Printf("refined in %v: %d rounds, %d points added\n",
		elapsed.Round(time.Millisecond), st.Rounds, st.PointsAdded)
	fmt.Printf("bad triangles: %d -> %d (angle bound %.0f°)\n", before, st.BadFinal, *angle)
	fmt.Printf("hash-table portion (Elements + inserts): %v\n", st.TableTime.Round(time.Millisecond))

	if err := mesh.Check(); err != nil {
		panic(err)
	}
	fmt.Println("mesh invariants verified (CCW, mutual adjacency, Delaunay property)")
}
