// BFS: the paper's Figure 2 — breadth-first search with hash-table
// frontiers. Each level claims parents with WriteMin and inserts newly
// visited vertices into a phase-concurrent table; Elements() returns
// the next frontier in a deterministic order, so the whole BFS tree and
// every intermediate frontier are reproducible.
//
//	go run ./examples/bfs [-verts 200000] [-graph rMat]
package main

import (
	"flag"
	"fmt"
	"time"

	"phasehash/internal/apps/bfs"
	"phasehash/internal/graph"
	"phasehash/internal/tables"
)

func main() {
	verts := flag.Int("verts", 200_000, "approximate vertex count")
	name := flag.String("graph", "rMat", "graph: 3D-grid | random | rMat")
	flag.Parse()

	g, err := graph.Build(graph.Name(*name), *verts, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d vertices, %d arcs\n", *name, g.NumVertices(), g.NumEdges())

	start := time.Now()
	serial := bfs.Serial(g, 0)
	fmt.Printf("serial BFS:      %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	array := bfs.Array(g, 0)
	fmt.Printf("array BFS:       %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	table := bfs.Table(g, 0, tables.LinearD)
	fmt.Printf("hash-table BFS:  %v (linearHash-D)\n", time.Since(start).Round(time.Millisecond))

	reached, err := bfs.Check(g, 0, table)
	if err != nil {
		panic(err)
	}
	same := true
	for v := range serial {
		if serial[v] != array[v] || serial[v] != table[v] {
			same = false
			break
		}
	}
	fmt.Printf("reached %d vertices; all three parent arrays identical: %v\n", reached, same)
}
