// Dedup: the paper's remove-duplicates application (Section 5) on the
// PBBS input distributions, comparing the deterministic table against
// the sorting-based alternative the paper mentions.
//
//	go run ./examples/dedup [-n 2000000]
package main

import (
	"flag"
	"fmt"
	"time"

	"phasehash/internal/apps/dedup"
	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

func main() {
	n := flag.Int("n", 2_000_000, "input length")
	flag.Parse()

	for _, d := range []sequence.Distribution{sequence.RandomInt, sequence.ExptInt, sequence.TrigramStr} {
		elems := sequence.WordElements(d, *n, 7)

		start := time.Now()
		viaHash := dedup.Run(tables.LinearD, elems, *n*4/3)
		hashTime := time.Since(start)

		start = time.Now()
		viaSort := dedup.RunSorting(elems)
		sortTime := time.Since(start)

		fmt.Printf("%-22s n=%d  distinct=%d  hash=%v  sort=%v  (hash %.1fx faster)\n",
			d, *n, len(viaHash), hashTime.Round(time.Millisecond),
			sortTime.Round(time.Millisecond),
			sortTime.Seconds()/hashTime.Seconds())

		if len(viaHash) != len(viaSort) {
			panic("hash and sort dedup disagree")
		}
	}

	// Determinism check across repeated runs.
	elems := sequence.RandomKeys(*n, 7)
	a := dedup.Run(tables.LinearD, elems, *n*4/3)
	b := dedup.Run(tables.LinearD, elems, *n*4/3)
	same := len(a) == len(b)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == b[i]
	}
	fmt.Printf("output order identical across runs: %v\n", same)
}
