// Wordcount: key-value pairs with a commutative combining function.
//
// The paper's Section 4 ("Combining") extends the deterministic table
// to key-value pairs: duplicate keys are resolved by a commutative,
// associative function (min or +), keeping the table deterministic.
// This example counts words of a synthetic English-like text with the
// '+' combiner, from many goroutines at once — a deterministic parallel
// word count with no locks and no channels.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"sort"
	"sync"

	"phasehash"
	"phasehash/internal/sequence"
)

func main() {
	// ~200k words from the trigram model of English text.
	words := sequence.TrigramWords(200_000, 2026)

	m := phasehash.NewStringMap(1<<18, phasehash.Sum)
	var wg sync.WaitGroup
	workers := 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(words); i += workers {
				m.Insert(words[i], 1) // insert phase: Sum combines counts
			}
		}(w)
	}
	wg.Wait() // phase barrier

	entries := m.Entries() // read phase; deterministic order
	fmt.Printf("%d words, %d distinct\n", len(words), len(entries))

	sort.Slice(entries, func(i, j int) bool { return entries[i].Value > entries[j].Value })
	fmt.Println("top 10:")
	for _, e := range entries[:10] {
		fmt.Printf("  %-8s %6d\n", e.Key, e.Value)
	}

	// The deterministic contract: the same input gives byte-identical
	// Entries() on every run, so a pipeline built on top of this map
	// (e.g. assigning word ids by position) is reproducible.
	total := uint64(0)
	for _, e := range entries {
		total += e.Value
	}
	fmt.Printf("counts sum to %d (== input length: %v)\n", total, total == uint64(len(words)))
}
