# Convenience targets; CI (.github/workflows/ci.yml) runs the same
# gates.

GOBIN := $(shell go env GOPATH)/bin

.PHONY: all build test race lint phasevet fmt fuzz chaos soak soak-server install-phasevet benchbase benchdiff obs obs-sizecheck obs-overhead obs-soak tune tune-sizecheck tune-overhead tune-benchdiff tune-soak

all: build test lint

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/core/... ./internal/apps/... ./internal/tables/... \
		./internal/epoch/... ./internal/rooms/... .

# lint = everything CI gates on besides the test suite.
lint: fmt phasevet
	go vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the analyzer suite (phasevet + atomicvet + detvet) through go vet
# so _test.go files are covered too and object facts flow between
# packages via the .vetx files.
phasevet:
	go build -o /tmp/phasevet-vettool ./cmd/phasevet
	go vet -vettool=/tmp/phasevet-vettool ./...

install-phasevet:
	go build -o $(GOBIN)/phasevet ./cmd/phasevet

fuzz:
	go test -fuzz=FuzzWordTableOps -fuzztime=30s ./internal/core
	go test -fuzz=FuzzGrowTable -fuzztime=30s ./internal/core
	go test -fuzz=FuzzCtrlScan -fuzztime=30s ./internal/core
	go test -fuzz=FuzzCompactTableOps -fuzztime=30s ./internal/core
	go test -tags chaos -fuzz=FuzzGrowTableChaos -fuzztime=30s ./internal/core

# chaos = the fault-injected determinism gate CI blocks on: the whole
# test suite plus the detres oracle grid with injection armed.
chaos:
	go test -tags chaos ./...

# soak = a longer fault-injected oracle run with fresh seeds per round
# (non-blocking in CI; run locally when touching probe or migration
# paths).
soak:
	go run -tags chaos ./cmd/phload -chaos -soak 2m

# soak-server = mixed concurrent traffic with per-request deadlines
# against a self-hosted phserver over TCP loopback, twice: once at
# comfortable load, once deliberately overloaded (tiny queue + slow
# epochs) to prove degradation stays graceful — explicit shed statuses,
# bounded queue, clean drain. Non-blocking in CI; run locally when
# touching internal/epoch or the wire path.
soak-server:
	go run ./cmd/phload -server -soak 30s -deadline 5ms -clients 4
	go run ./cmd/phload -server -soak 30s -deadline 25ms -clients 4 \
		-maxbatch 64 -queue 128 -flushdelay 2ms

# benchbase = regenerate the committed core-benchmark baseline
# (BENCH_core.json): the bulk-kernel before/after pairs, the
# sharded-vs-flat rows, and the epoch-server serving-path row (admit
# latency quantiles + shed fraction), at 1 worker and at max(4, nproc)
# — the high-p rows oversubscribe GOMAXPROCS on small machines so the
# baseline always carries a p>=4 row — 5 runs each, aggregated to
# min/mean/max by benchjson. CI runs this non-blocking, diffs it
# against the committed baseline (benchdiff) and uploads the artifact;
# commit the file when the numbers move for a reason.
BENCHCPUS := $(shell n=$$(nproc); if [ "$$n" -lt 4 ]; then echo 4; else echo $$n; fi)
BENCHCMD  := go test -run xxx -bench 'PerElement|InsertAll|FindAll|DeleteAll|EpochServer' \
		-benchmem -count=5 -cpu 1,$(BENCHCPUS) ./internal/core ./internal/epoch ./internal/tables

benchbase:
	$(BENCHCMD) | go run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json

# benchdiff = run the baseline benchmarks without touching the
# committed file and report drift against it (GitHub `::warning`
# annotations beyond 10%; always exits 0).
benchdiff:
	$(BENCHCMD) | go run ./cmd/benchjson > /tmp/BENCH_core.new.json
	go run ./cmd/benchjson -diff BENCH_core.json /tmp/BENCH_core.new.json

# obs = the phasestats telemetry gate CI blocks on: the whole test
# suite with instrumentation live (counter/histogram/span assertions,
# the detres op-count determinism grid) plus the zero-cost-off proofs
# below.
obs: obs-sizecheck
	go test -tags obs ./...

# obs-sizecheck = prove the untagged build carries no telemetry: the
# obs.Record* hooks must be dead-code-eliminated from a binary built
# without the tag (and present with it, so the check cannot pass
# vacuously).
obs-sizecheck:
	@go build -o /tmp/phbench-noobs ./cmd/phbench
	@if go tool nm /tmp/phbench-noobs | grep 'internal/obs\.Record' >/dev/null; then \
		echo "obs-sizecheck: untagged phbench still contains obs.Record* symbols"; exit 1; fi
	@go build -tags obs -o /tmp/phbench-obs ./cmd/phbench
	@if ! go tool nm /tmp/phbench-obs | grep 'internal/obs\.Record' >/dev/null; then \
		echo "obs-sizecheck: -tags obs phbench has no obs.Record* symbols (positive control failed)"; exit 1; fi
	@echo "obs-sizecheck: ok (no Record* symbols without the tag, present with it)"

# obs-overhead = the hot-loop overhead gate, now pointed at the
# always-on counter core (the obs-tag hooks const-fold away untagged;
# the core's striped counters do not, so the core is what the 1% bound
# must hold for). Kept as an alias so existing docs and muscle memory
# keep working.
obs-overhead: tune-overhead

# tune = the self-tuning gate CI blocks on: the policy/controller
# tests, the adaptive wiring (auto shard policy, AutoTable, epoch
# flush-path selection), and the detres tuning oracle — quiescent state
# AND decision traces byte-compared across the seed x worker x chaos
# grid — plus the zero-cost-off proofs below.
tune: tune-sizecheck
	go test ./internal/tune/ ./internal/tables/
	go test -run 'Tune|AutoShard' ./internal/core ./internal/epoch ./internal/detres
	go test -tags chaos -run Tune ./internal/detres

# tune-sizecheck = prove the always-on counter core is really the only
# always-on piece, and that -tags nostats removes even that: the
# striped sink array (obs.coreSinks) must be absent from a nostats
# build of phbench and present in the default build (the positive
# control, so the check cannot pass vacuously). Function symbols are
# useless here — the core hooks inline — so the check keys on the
# data symbol.
tune-sizecheck:
	@go build -tags nostats -o /tmp/phbench-nostats ./cmd/phbench
	@if go tool nm /tmp/phbench-nostats | grep 'internal/obs\.coreSinks' >/dev/null; then \
		echo "tune-sizecheck: -tags nostats phbench still contains the counter core (obs.coreSinks)"; exit 1; fi
	@go build -o /tmp/phbench-core ./cmd/phbench
	@if ! go tool nm /tmp/phbench-core | grep 'internal/obs\.coreSinks' >/dev/null; then \
		echo "tune-sizecheck: default phbench has no obs.coreSinks symbol (positive control failed)"; exit 1; fi
	@echo "tune-sizecheck: ok (counter core absent under -tags nostats, present by default)"

# tune-overhead = the 1% bound on the always-on counter core: the same
# 2^20-key uniform insert benchmark, built twice from the same tree —
# once with -tags nostats (hooks compiled out: the A baseline) and once
# untagged (striped core live: the B run) — and diffed. Self-contained
# on purpose: an A/B inside one run cannot rot the way a committed
# baseline from other hardware can. The gate is -geomean: individual
# rows swing several percent both ways with scheduler noise even on
# quiet hardware, but those swings cancel in the geomean, so only a
# cost paid systematically by every row trips the 1% bound. CI blocks
# on it.
COREBENCH := -run xxx -bench 'InsertAll$$' -benchmem -count=5 -cpu 1 ./internal/core

tune-overhead:
	go test -tags nostats $(COREBENCH) | go run ./cmd/benchjson > /tmp/BENCH_core_nostats.json
	go test $(COREBENCH) | go run ./cmd/benchjson > /tmp/BENCH_core_live.json
	go run ./cmd/benchjson -diff -fail -geomean -threshold 1 /tmp/BENCH_core_nostats.json /tmp/BENCH_core_live.json

# tune-benchdiff = the tuned-vs-static comparison (non-blocking in CI,
# uploaded as an artifact): the six-distribution AutoKindFindAll grid —
# static flat, static compact, and the self-tuning auto kind per cell —
# diffed against the committed baseline's rows. The per-suite geomean
# line summarizes how far auto sits from the per-cell winner.
tune-benchdiff:
	go test -run xxx -bench AutoKindFindAll -benchmem -count=5 -cpu $(BENCHCPUS) \
		./internal/tables | go run ./cmd/benchjson > /tmp/BENCH_tune.new.json
	go run ./cmd/benchjson -diff BENCH_core.json /tmp/BENCH_tune.new.json

# tune-soak = the soak-server pair with the adaptive flush-path tuner
# live: same comfortable-load and overload shapes, plus the tuner's
# decision trace and the always-on imbalance gauge in the summary. The
# soak proves adaptation doesn't break graceful degradation (decisions
# only move at epoch boundaries, so shed/drain behaviour is unchanged).
tune-soak:
	go run ./cmd/phload -server -tune -soak 30s -deadline 5ms -clients 4
	go run ./cmd/phload -server -tune -soak 30s -deadline 25ms -clients 4 \
		-maxbatch 64 -queue 128 -flushdelay 2ms

# obs-soak = a chaos soak with live telemetry: watch
# http://localhost:6060/debug/phasestats while it runs, or pull a
# profile from /debug/pprof. See README "Observability" for the
# go tool trace walkthrough.
obs-soak:
	go run -tags 'chaos obs' ./cmd/phload -chaos -soak 2m -obs localhost:6060
