# Convenience targets; CI (.github/workflows/ci.yml) runs the same
# gates.

GOBIN := $(shell go env GOPATH)/bin

.PHONY: all build test race lint phasevet fmt fuzz chaos soak soak-server install-phasevet benchbase benchdiff obs obs-sizecheck obs-overhead obs-soak

all: build test lint

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/core/... ./internal/apps/... ./internal/tables/... \
		./internal/epoch/... ./internal/rooms/... .

# lint = everything CI gates on besides the test suite.
lint: fmt phasevet
	go vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the analyzer suite (phasevet + atomicvet + detvet) through go vet
# so _test.go files are covered too and object facts flow between
# packages via the .vetx files.
phasevet:
	go build -o /tmp/phasevet-vettool ./cmd/phasevet
	go vet -vettool=/tmp/phasevet-vettool ./...

install-phasevet:
	go build -o $(GOBIN)/phasevet ./cmd/phasevet

fuzz:
	go test -fuzz=FuzzWordTableOps -fuzztime=30s ./internal/core
	go test -fuzz=FuzzGrowTable -fuzztime=30s ./internal/core
	go test -fuzz=FuzzCtrlScan -fuzztime=30s ./internal/core
	go test -fuzz=FuzzCompactTableOps -fuzztime=30s ./internal/core
	go test -tags chaos -fuzz=FuzzGrowTableChaos -fuzztime=30s ./internal/core

# chaos = the fault-injected determinism gate CI blocks on: the whole
# test suite plus the detres oracle grid with injection armed.
chaos:
	go test -tags chaos ./...

# soak = a longer fault-injected oracle run with fresh seeds per round
# (non-blocking in CI; run locally when touching probe or migration
# paths).
soak:
	go run -tags chaos ./cmd/phload -chaos -soak 2m

# soak-server = mixed concurrent traffic with per-request deadlines
# against a self-hosted phserver over TCP loopback, twice: once at
# comfortable load, once deliberately overloaded (tiny queue + slow
# epochs) to prove degradation stays graceful — explicit shed statuses,
# bounded queue, clean drain. Non-blocking in CI; run locally when
# touching internal/epoch or the wire path.
soak-server:
	go run ./cmd/phload -server -soak 30s -deadline 5ms -clients 4
	go run ./cmd/phload -server -soak 30s -deadline 25ms -clients 4 \
		-maxbatch 64 -queue 128 -flushdelay 2ms

# benchbase = regenerate the committed core-benchmark baseline
# (BENCH_core.json): the bulk-kernel before/after pairs, the
# sharded-vs-flat rows, and the epoch-server serving-path row (admit
# latency quantiles + shed fraction), at 1 worker and at max(4, nproc)
# — the high-p rows oversubscribe GOMAXPROCS on small machines so the
# baseline always carries a p>=4 row — 5 runs each, aggregated to
# min/mean/max by benchjson. CI runs this non-blocking, diffs it
# against the committed baseline (benchdiff) and uploads the artifact;
# commit the file when the numbers move for a reason.
BENCHCPUS := $(shell n=$$(nproc); if [ "$$n" -lt 4 ]; then echo 4; else echo $$n; fi)
BENCHCMD  := go test -run xxx -bench 'PerElement|InsertAll|FindAll|DeleteAll|EpochServer' \
		-benchmem -count=5 -cpu 1,$(BENCHCPUS) ./internal/core ./internal/epoch

benchbase:
	$(BENCHCMD) | go run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json

# benchdiff = run the baseline benchmarks without touching the
# committed file and report drift against it (GitHub `::warning`
# annotations beyond 10%; always exits 0).
benchdiff:
	$(BENCHCMD) | go run ./cmd/benchjson > /tmp/BENCH_core.new.json
	go run ./cmd/benchjson -diff BENCH_core.json /tmp/BENCH_core.new.json

# obs = the phasestats telemetry gate CI blocks on: the whole test
# suite with instrumentation live (counter/histogram/span assertions,
# the detres op-count determinism grid) plus the zero-cost-off proofs
# below.
obs: obs-sizecheck
	go test -tags obs ./...

# obs-sizecheck = prove the untagged build carries no telemetry: the
# obs.Record* hooks must be dead-code-eliminated from a binary built
# without the tag (and present with it, so the check cannot pass
# vacuously).
obs-sizecheck:
	@go build -o /tmp/phbench-noobs ./cmd/phbench
	@if go tool nm /tmp/phbench-noobs | grep 'internal/obs\.Record' >/dev/null; then \
		echo "obs-sizecheck: untagged phbench still contains obs.Record* symbols"; exit 1; fi
	@go build -tags obs -o /tmp/phbench-obs ./cmd/phbench
	@if ! go tool nm /tmp/phbench-obs | grep 'internal/obs\.Record' >/dev/null; then \
		echo "obs-sizecheck: -tags obs phbench has no obs.Record* symbols (positive control failed)"; exit 1; fi
	@echo "obs-sizecheck: ok (no Record* symbols without the tag, present with it)"

# obs-overhead = the no-op overhead gate: the untagged build of the
# 2^20-key uniform insert benchmark must stay within 1% of the
# committed BENCH_core.json baseline even though the hot loops now
# carry (const-folded) telemetry hooks. Run on quiet hardware; CI
# blocks on it.
OBSBENCHCMD := go test -run xxx -bench 'InsertAll$$' -benchmem -count=5 -cpu 1 ./internal/core

obs-overhead:
	$(OBSBENCHCMD) | go run ./cmd/benchjson > /tmp/BENCH_obs_off.json
	go run ./cmd/benchjson -diff -fail -threshold 1 BENCH_core.json /tmp/BENCH_obs_off.json

# obs-soak = a chaos soak with live telemetry: watch
# http://localhost:6060/debug/phasestats while it runs, or pull a
# profile from /debug/pprof. See README "Observability" for the
# go tool trace walkthrough.
obs-soak:
	go run -tags 'chaos obs' ./cmd/phload -chaos -soak 2m -obs localhost:6060
