package phasehash

import "phasehash/internal/core"

// This file exposes the compact fingerprint-probed table
// (internal/core/compact.go): the deterministic table's cells plus a
// byte-per-slot control array holding a 7-bit fingerprint of each
// occupant's hash, scanned eight slots per 64-bit load. Finds read the
// control array and touch a cell only on a fingerprint match, so probe
// clusters cost loaded bytes proportional to 1/8 of the flat table's —
// which is what keeps find throughput up at load factors the flat
// table's sizing rules avoid. NewCompactSet therefore sizes for a 0.9
// target load instead of NewSet's ~0.5, trading probe-cluster length
// (absorbed by the control array) for a much smaller footprint.
//
// Determinism is unchanged: the cells obey exactly the flat table's
// probe discipline (byte-identical layout at equal capacity), and the
// quiescent control array is a pure function of the cells, so both are
// independent of schedule and worker count.

// CompactSet is a deterministic phase-concurrent set of uint64 keys
// backed by the compact fingerprint-probed table (key 0 is reserved).
type CompactSet struct {
	t *core.CompactTable[core.SetOps]
}

// NewCompactSet returns a compact set with capacity for at least
// capacity keys. The backing array is sized so the requested capacity
// fits within a 0.9 load factor, then rounded up to a power of two —
// at worst 10 bytes per requested key, against the flat Set's 16-32.
func NewCompactSet(capacity int) *CompactSet {
	if capacity < 0 {
		capacity = 0
	}
	return &CompactSet{t: core.NewCompactTable[core.SetOps](capacity + capacity/9 + 1)}
}

// Insert adds k (insert phase), reporting whether the set grew. It
// panics on the reserved key 0 and on a full set; use TryInsert where
// saturation must degrade gracefully.
func (s *CompactSet) Insert(k uint64) bool { return s.t.Insert(k) }

// TryInsert is Insert returning ErrReservedKey / ErrFull (matchable
// with errors.Is) instead of panicking.
func (s *CompactSet) TryInsert(k uint64) (bool, error) { return s.t.TryInsert(k) }

// Contains reports whether k is present (read phase).
func (s *CompactSet) Contains(k uint64) bool { return s.t.Contains(k) }

// Delete removes k (delete phase), reporting whether it was removed.
func (s *CompactSet) Delete(k uint64) bool { return s.t.Delete(k) }

// InsertAll inserts every key with the staged bulk kernel (insert
// phase) and returns how many grew the set. It panics on the reserved
// key 0 and on a full set; use TryInsertAll where saturation must
// degrade gracefully.
func (s *CompactSet) InsertAll(keys []uint64) int { return s.t.InsertAll(keys) }

// TryInsertAll is InsertAll returning errors instead of panicking
// (ErrReservedKey, ErrFull — matchable with errors.Is); every key is
// attempted.
func (s *CompactSet) TryInsertAll(keys []uint64) (int, error) { return s.t.TryInsertAll(keys) }

// ContainsAll reports how many of the keys are present with the staged
// bulk kernel (read phase).
func (s *CompactSet) ContainsAll(keys []uint64) int { return s.t.ContainsAll(keys) }

// DeleteAll deletes every key with the staged bulk kernel (delete
// phase) and returns how many were removed.
func (s *CompactSet) DeleteAll(keys []uint64) int { return s.t.DeleteAll(keys) }

// Elements returns the keys in the deterministic table order (read
// phase): for a given key set and capacity the result is identical on
// every run, schedule and worker count.
func (s *CompactSet) Elements() []uint64 { return s.t.Elements() }

// Count returns the number of keys (read phase).
func (s *CompactSet) Count() int { return s.t.Count() }

// Capacity returns the cell count of the backing array.
func (s *CompactSet) Capacity() int { return s.t.Size() }

// Bytes returns the backing-array footprint in bytes: 9 per cell
// (8 for the cell, 1 for its control byte).
func (s *CompactSet) Bytes() int { return s.t.Bytes() }

// Clear empties the set (quiescent use only).
func (s *CompactSet) Clear() { s.t.Clear() }
