package phasehash

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"phasehash/internal/core"
)

func TestCheckedMap32AllowsLegalPhases(t *testing.T) {
	c := NewCheckedMap32(NewMap32(256, KeepMin))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint32(w*50 + 1); k < uint32(w*50+51); k++ {
				c.Insert(k, k*2)
			}
		}(w)
	}
	wg.Wait()
	if c.Count() != 200 {
		t.Fatalf("Count = %d", c.Count())
	}
	if v, ok := c.Find(7); !ok || v != 14 {
		t.Fatalf("Find(7) = %d, %v", v, ok)
	}
	if got := len(c.Entries()); got != 200 {
		t.Fatalf("len(Entries) = %d", got)
	}
	c.Delete(7)
	if _, ok := c.Unwrap().Find(7); ok {
		t.Fatal("Delete(7) did not remove the key")
	}
}

func TestCheckedMap32DetectsViolation(t *testing.T) {
	c := NewCheckedMap32(NewMap32(256, Sum))
	if err := c.guard.Enter(core.PhaseInsert); err != nil {
		t.Fatal(err)
	}
	defer c.guard.Exit(core.PhaseInsert)
	defer expectPhasePanic(t, "insert")
	c.Find(1)
}

func TestCheckedStringMapAllowsLegalPhases(t *testing.T) {
	c := NewCheckedStringMap(NewStringMap(256, Sum))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Insert(fmt.Sprintf("key-%d", i), 1)
			}
		}(w)
	}
	wg.Wait()
	if c.Count() != 50 {
		t.Fatalf("Count = %d", c.Count())
	}
	if v, ok := c.Find("key-3"); !ok || v != 4 {
		t.Fatalf(`Find("key-3") = %d, %v, want 4 (summed across workers)`, v, ok)
	}
	if got := len(c.Entries()); got != 50 {
		t.Fatalf("len(Entries) = %d", got)
	}
	c.Delete("key-3")
	if _, ok := c.Unwrap().Find("key-3"); ok {
		t.Fatal("Delete did not remove the key")
	}
}

func TestCheckedStringMapDetectsViolation(t *testing.T) {
	c := NewCheckedStringMap(NewStringMap(256, KeepMin))
	if err := c.guard.Enter(core.PhaseRead); err != nil {
		t.Fatal(err)
	}
	defer c.guard.Exit(core.PhaseRead)
	defer expectPhasePanic(t, "read")
	c.Insert("k", 1)
}

func TestCheckedGrowSetAllowsLegalPhases(t *testing.T) {
	c := NewCheckedGrowSet(NewGrowSet(16))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(w*500 + 1); k < uint64(w*500+501); k++ {
				c.Insert(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Count() != 2000 {
		t.Fatalf("Count = %d", c.Count())
	}
	if !c.Contains(1) {
		t.Fatal("Contains(1) = false")
	}
	if got := len(c.Elements()); got != 2000 {
		t.Fatalf("len(Elements) = %d", got)
	}
	c.Delete(1)
	if c.Unwrap().Contains(1) {
		t.Fatal("Delete(1) did not remove the key")
	}
}

func TestCheckedGrowSetDetectsViolation(t *testing.T) {
	c := NewCheckedGrowSet(NewGrowSet(16))
	if err := c.guard.Enter(core.PhaseDelete); err != nil {
		t.Fatal(err)
	}
	defer c.guard.Exit(core.PhaseDelete)
	defer expectPhasePanic(t, "delete")
	c.Elements()
}

// expectPhasePanic asserts the deferred recovery sees a PhaseGuard
// violation naming the active phase.
func expectPhasePanic(t *testing.T, activePhase string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatal("operation during a conflicting phase did not panic")
	}
	err, ok := r.(error)
	if !ok {
		t.Fatalf("panic value %v is not an error", r)
	}
	want := fmt.Sprintf("during %s phase", activePhase)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("panic %q does not mention %q", err, want)
	}
}
