package phasehash

import (
	"phasehash/internal/core"
	"phasehash/internal/hashx"
)

// strEntry is the record type stored behind a pointer in StringMap —
// the paper's indirection path for elements wider than a CAS.
type strEntry struct {
	key string
	val uint64
}

type strOpsMin struct{}

func (strOpsMin) Hash(e *strEntry) uint64 { return hashx.HashString(e.key) }
func (strOpsMin) Cmp(a, b *strEntry) int {
	switch {
	case a.key < b.key:
		return -1
	case a.key > b.key:
		return 1
	default:
		return 0
	}
}
func (strOpsMin) Merge(cur, new *strEntry) *strEntry {
	if new.val < cur.val {
		return new
	}
	return cur
}

type strOpsSum struct{}

func (strOpsSum) Hash(e *strEntry) uint64 { return hashx.HashString(e.key) }
func (strOpsSum) Cmp(a, b *strEntry) int  { return strOpsMin{}.Cmp(a, b) }
func (strOpsSum) Merge(cur, new *strEntry) *strEntry {
	return &strEntry{key: cur.key, val: cur.val + new.val}
}

// StringMap is a deterministic phase-concurrent map from string keys to
// uint64 values. Entries are stored behind pointers and swapped with
// pointer CAS — the representation the paper uses for its string-keyed
// (trigramSeq) experiments. The phase discipline is the same as Set's.
type StringMap struct {
	min *core.PtrTable[strEntry, strOpsMin]
	sum *core.PtrTable[strEntry, strOpsSum]
}

// NewStringMap returns a string map with the given capacity and
// duplicate policy (KeepMin, KeepMax is not offered — negate values or
// use Sum).
func NewStringMap(capacity int, policy Combine) *StringMap {
	m := &StringMap{}
	switch policy {
	case KeepMin:
		m.min = core.NewPtrTable[strEntry, strOpsMin](capacity)
	case Sum:
		m.sum = core.NewPtrTable[strEntry, strOpsSum](capacity)
	default:
		panic("phasehash: StringMap supports KeepMin and Sum policies")
	}
	return m
}

// Insert adds (k, v), resolving duplicate keys per the policy (insert
// phase). It reports whether a new key was added. It panics on a full
// map; use TryInsert where saturation must degrade gracefully.
func (m *StringMap) Insert(k string, v uint64) bool {
	added, err := m.TryInsert(k, v)
	if err != nil {
		panic("phasehash: StringMap: " + err.Error())
	}
	return added
}

// TryInsert is Insert returning ErrFull (matchable with errors.Is)
// instead of panicking when the map is saturated.
func (m *StringMap) TryInsert(k string, v uint64) (bool, error) {
	e := &strEntry{key: k, val: v}
	if m.min != nil {
		return m.min.TryInsert(e)
	}
	return m.sum.TryInsert(e)
}

// Find returns the value stored under k (read phase).
func (m *StringMap) Find(k string) (uint64, bool) {
	probe := &strEntry{key: k}
	var e *strEntry
	var ok bool
	if m.min != nil {
		e, ok = m.min.Find(probe)
	} else {
		e, ok = m.sum.Find(probe)
	}
	if !ok {
		return 0, false
	}
	return e.val, true
}

// Delete removes key k (delete phase).
func (m *StringMap) Delete(k string) bool {
	probe := &strEntry{key: k}
	if m.min != nil {
		return m.min.Delete(probe)
	}
	return m.sum.Delete(probe)
}

// StringEntry is one key-value pair of a StringMap.
type StringEntry struct {
	Key   string
	Value uint64
}

// Entries returns the contents in a deterministic order (read phase).
func (m *StringMap) Entries() []StringEntry {
	var raw []*strEntry
	if m.min != nil {
		raw = m.min.Elements()
	} else {
		raw = m.sum.Elements()
	}
	out := make([]StringEntry, len(raw))
	for i, e := range raw {
		out[i] = StringEntry{Key: e.key, Value: e.val}
	}
	return out
}

// Count returns the number of keys (read phase).
func (m *StringMap) Count() int {
	if m.min != nil {
		return m.min.Count()
	}
	return m.sum.Count()
}
