package phasehash

import "phasehash/internal/core"

// CheckedSet wraps a Set with a runtime phase-discipline detector: any
// operation that overlaps in time with an operation from a different
// phase panics with a diagnostic. Use it in tests and development
// builds; the raw Set carries no checking overhead.
type CheckedSet struct {
	s     *Set
	guard core.PhaseGuard
}

// Checked wraps s with phase checking.
func Checked(s *Set) *CheckedSet { return &CheckedSet{s: s} }

func (c *CheckedSet) enter(p core.Phase) {
	if err := c.guard.Enter(p); err != nil {
		panic(err)
	}
}

// Insert is Set.Insert with phase checking.
func (c *CheckedSet) Insert(k uint64) bool {
	c.enter(core.PhaseInsert)
	defer c.guard.Exit(core.PhaseInsert)
	return c.s.Insert(k)
}

// TryInsert is Set.TryInsert with phase checking.
func (c *CheckedSet) TryInsert(k uint64) (bool, error) {
	c.enter(core.PhaseInsert)
	defer c.guard.Exit(core.PhaseInsert)
	return c.s.TryInsert(k)
}

// Delete is Set.Delete with phase checking.
func (c *CheckedSet) Delete(k uint64) bool {
	c.enter(core.PhaseDelete)
	defer c.guard.Exit(core.PhaseDelete)
	return c.s.Delete(k)
}

// Contains is Set.Contains with phase checking.
func (c *CheckedSet) Contains(k uint64) bool {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.s.Contains(k)
}

// Elements is Set.Elements with phase checking.
func (c *CheckedSet) Elements() []uint64 {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.s.Elements()
}

// Count is Set.Count with phase checking.
func (c *CheckedSet) Count() int {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.s.Count()
}

// Clear is Set.Clear with quiescence checking: Clear is a phase
// barrier by itself, so it panics if any operation — of any phase,
// including another Clear — is in flight when it starts.
func (c *CheckedSet) Clear() {
	if err := c.guard.EnterExclusive(); err != nil {
		panic(err)
	}
	defer c.guard.Exit(core.PhaseExclusive)
	c.s.Clear()
}

// Unwrap returns the underlying Set.
func (c *CheckedSet) Unwrap() *Set { return c.s }
