package phasehash

import (
	"fmt"

	"phasehash/internal/core"
	"phasehash/internal/parallel"
)

// This file exposes the radix-partitioned sharded containers
// (internal/core/sharded.go): the deterministic table split into 2^k
// independent shards selected by the top bits of the key hash. The
// per-element operations carry exactly the flat containers' phase
// discipline; the bulk kernels are owner-computes — the keys are
// radix-partitioned by shard, then each shard's run is applied by a
// single worker with plain (non-atomic) loads and stores. That removes
// all CAS traffic and keeps each shard cache-resident while its run
// streams, which is worth 10-40% over the flat bulk kernels on large
// or duplicate-heavy batches (see EXPERIMENTS.md, "Sharded
// owner-computes kernels").
//
// The price is a stronger exclusion contract: a sharded bulk call must
// be the only activity on the container while it runs — it may not
// overlap even same-phase per-element calls. Treat each bulk call as a
// whole phase of its own.
//
// Determinism: for a fixed capacity and shard count, Elements order and
// the quiescent layout are a pure function of the key set, exactly as
// for the flat containers. The shard count is part of that function, so
// fix it explicitly (shards > 0) when layouts must reproduce across
// machines with different core counts.

// ShardedSet is a deterministic phase-concurrent set of uint64 keys
// backed by radix-selected shards (key 0 is reserved).
type ShardedSet struct {
	t *core.ShardedTable[core.SetOps]
}

// NewShardedSet returns a sharded set with capacity for at least
// capacity keys in total, split over the given number of shards
// (rounded up to a power of two). shards <= 0 selects automatically
// from the current parallelism; pass an explicit count when Elements
// order must reproduce across machines.
func NewShardedSet(capacity, shards int) *ShardedSet {
	return &ShardedSet{t: core.NewShardedTable[core.SetOps](capacity, shards)}
}

// Insert adds k (insert phase), reporting whether the set grew. It
// panics on the reserved key 0 and on a full shard; use TryInsert where
// saturation must degrade gracefully.
func (s *ShardedSet) Insert(k uint64) bool { return s.t.Insert(k) }

// TryInsert is Insert returning ErrReservedKey / ErrFull (matchable
// with errors.Is) instead of panicking.
func (s *ShardedSet) TryInsert(k uint64) (bool, error) { return s.t.TryInsert(k) }

// Contains reports whether k is present (read phase).
func (s *ShardedSet) Contains(k uint64) bool { return s.t.Contains(k) }

// Delete removes k (delete phase), reporting whether it was removed.
func (s *ShardedSet) Delete(k uint64) bool { return s.t.Delete(k) }

// InsertAll inserts every key with the owner-computes kernel and
// returns how many grew the set — deterministic for a given key
// multiset. The call must not overlap any other operation on the set.
// It panics on the reserved key 0 and on a full shard; use TryInsertAll
// where saturation must degrade gracefully.
func (s *ShardedSet) InsertAll(keys []uint64) int { return s.t.InsertAll(keys) }

// TryInsertAll is InsertAll returning errors instead of panicking
// (ErrReservedKey, ErrFull — matchable with errors.Is); every key is
// attempted.
func (s *ShardedSet) TryInsertAll(keys []uint64) (int, error) { return s.t.TryInsertAll(keys) }

// ContainsAll reports how many of the keys are present with the
// owner-computes kernel. The call must not overlap any other operation
// on the set.
func (s *ShardedSet) ContainsAll(keys []uint64) int { return s.t.ContainsAll(keys) }

// DeleteAll deletes every key with the owner-computes kernel and
// returns how many were removed. The call must not overlap any other
// operation on the set.
func (s *ShardedSet) DeleteAll(keys []uint64) int { return s.t.DeleteAll(keys) }

// Elements returns the keys in a deterministic order (read phase):
// shard by shard, each shard in its table order. For a given key set,
// capacity and shard count the result is identical on every run,
// schedule and worker count.
func (s *ShardedSet) Elements() []uint64 { return s.t.Elements() }

// Count returns the number of keys (read phase).
func (s *ShardedSet) Count() int { return s.t.Count() }

// Capacity returns the total cell count over all shards.
func (s *ShardedSet) Capacity() int { return s.t.Size() }

// NumShards returns the shard count (a power of two).
func (s *ShardedSet) NumShards() int { return s.t.NumShards() }

// ShardStats returns the per-shard element counts and their spread
// (read phase). Imbalance() is Max over mean — 1.0 is perfect balance,
// and the owner-computes kernels' critical path scales with it.
func (s *ShardedSet) ShardStats() core.ShardStats { return s.t.ShardStats() }

// Clear empties the set (quiescent use only).
func (s *ShardedSet) Clear() { s.t.Clear() }

// ShardedMap32 is a deterministic phase-concurrent map from uint32 keys
// to uint32 values backed by radix-selected shards; the sharded
// counterpart of Map32 (key 0 is reserved).
type ShardedMap32 struct {
	min *core.ShardedTable[core.PairMinOps]
	max *core.ShardedTable[core.PairMaxOps]
	sum *core.ShardedTable[core.PairSumOps]
}

// NewShardedMap32 returns a sharded map with the given total capacity,
// duplicate policy and shard count (shards <= 0 selects automatically;
// see NewShardedSet).
func NewShardedMap32(capacity int, policy Combine, shards int) *ShardedMap32 {
	m := &ShardedMap32{}
	switch policy {
	case KeepMin:
		m.min = core.NewShardedTable[core.PairMinOps](capacity, shards)
	case KeepMax:
		m.max = core.NewShardedTable[core.PairMaxOps](capacity, shards)
	case Sum:
		m.sum = core.NewShardedTable[core.PairSumOps](capacity, shards)
	default:
		panic("phasehash: unknown Combine policy")
	}
	return m
}

// Insert adds (k, v), resolving duplicates per the policy (insert
// phase), reporting whether a new key was added. It panics on the
// reserved key 0 and on a full shard; use TryInsert where saturation
// must degrade gracefully.
func (m *ShardedMap32) Insert(k, v uint32) bool {
	added, err := m.TryInsert(k, v)
	if err != nil {
		panic("phasehash: ShardedMap32: " + err.Error())
	}
	return added
}

// TryInsert is Insert returning ErrReservedKey / ErrFull (matchable
// with errors.Is) instead of panicking.
func (m *ShardedMap32) TryInsert(k, v uint32) (bool, error) {
	if k == 0 {
		return false, fmt.Errorf("%w: key 0", ErrReservedKey)
	}
	e := core.Pair(k, v)
	switch {
	case m.min != nil:
		return m.min.TryInsert(e)
	case m.max != nil:
		return m.max.TryInsert(e)
	default:
		return m.sum.TryInsert(e)
	}
}

// Find returns the value stored under k (read phase).
func (m *ShardedMap32) Find(k uint32) (uint32, bool) {
	e := core.Pair(k, 0)
	var raw uint64
	var ok bool
	switch {
	case m.min != nil:
		raw, ok = m.min.Find(e)
	case m.max != nil:
		raw, ok = m.max.Find(e)
	default:
		raw, ok = m.sum.Find(e)
	}
	return core.PairValue(raw), ok
}

// Delete removes key k (delete phase).
func (m *ShardedMap32) Delete(k uint32) bool {
	e := core.Pair(k, 0)
	switch {
	case m.min != nil:
		return m.min.Delete(e)
	case m.max != nil:
		return m.max.Delete(e)
	default:
		return m.sum.Delete(e)
	}
}

// InsertAll inserts every entry with the owner-computes kernel,
// resolving duplicate keys per the policy, and returns how many new
// keys were added. The call must not overlap any other operation on
// the map. It panics on the reserved key 0 and on a full shard; use
// TryInsertAll where saturation must degrade gracefully.
func (m *ShardedMap32) InsertAll(entries []Entry) int {
	n, err := m.TryInsertAll(entries)
	if err != nil {
		panic("phasehash: ShardedMap32: " + err.Error())
	}
	return n
}

// TryInsertAll is InsertAll returning errors instead of panicking
// (ErrReservedKey, ErrFull — matchable with errors.Is). Entries with
// valid keys are all attempted even when some keys are reserved.
func (m *ShardedMap32) TryInsertAll(entries []Entry) (int, error) {
	packed := make([]uint64, 0, len(entries))
	reserved := 0
	for _, e := range entries {
		if e.Key == 0 {
			reserved++
			continue
		}
		packed = append(packed, core.Pair(e.Key, e.Value))
	}
	var n int
	var err error
	switch {
	case m.min != nil:
		n, err = m.min.TryInsertAll(packed)
	case m.max != nil:
		n, err = m.max.TryInsertAll(packed)
	default:
		n, err = m.sum.TryInsertAll(packed)
	}
	if err == nil && reserved > 0 {
		err = fmt.Errorf("%w: key 0 (%d entries)", ErrReservedKey, reserved)
	}
	return n, err
}

// FindAll looks up every key with the owner-computes kernel and returns
// how many are present. When vals is non-nil it must have len(vals) >=
// len(keys); vals[i] receives the value stored under keys[i], or 0 when
// absent. The call must not overlap any other operation on the map.
func (m *ShardedMap32) FindAll(keys []uint32, vals []uint32) int {
	probes := make([]uint64, len(keys))
	parallel.For(len(keys), func(i int) { probes[i] = core.Pair(keys[i], 0) })
	var dst []uint64
	if vals != nil {
		dst = make([]uint64, len(keys))
	}
	var n int
	switch {
	case m.min != nil:
		n = m.min.FindAll(probes, dst)
	case m.max != nil:
		n = m.max.FindAll(probes, dst)
	default:
		n = m.sum.FindAll(probes, dst)
	}
	if vals != nil {
		parallel.For(len(keys), func(i int) { vals[i] = core.PairValue(dst[i]) })
	}
	return n
}

// DeleteAll deletes every key with the owner-computes kernel and
// returns how many were removed. The call must not overlap any other
// operation on the map.
func (m *ShardedMap32) DeleteAll(keys []uint32) int {
	probes := make([]uint64, len(keys))
	parallel.For(len(keys), func(i int) { probes[i] = core.Pair(keys[i], 0) })
	switch {
	case m.min != nil:
		return m.min.DeleteAll(probes)
	case m.max != nil:
		return m.max.DeleteAll(probes)
	default:
		return m.sum.DeleteAll(probes)
	}
}

// Entries returns the map contents in a deterministic order (read
// phase); see ShardedSet.Elements for the order guarantee.
func (m *ShardedMap32) Entries() []Entry {
	var raw []uint64
	switch {
	case m.min != nil:
		raw = m.min.Elements()
	case m.max != nil:
		raw = m.max.Elements()
	default:
		raw = m.sum.Elements()
	}
	out := make([]Entry, len(raw))
	parallel.For(len(raw), func(i int) {
		out[i] = Entry{Key: core.PairKey(raw[i]), Value: core.PairValue(raw[i])}
	})
	return out
}

// Count returns the number of keys (read phase).
func (m *ShardedMap32) Count() int {
	switch {
	case m.min != nil:
		return m.min.Count()
	case m.max != nil:
		return m.max.Count()
	default:
		return m.sum.Count()
	}
}

// NumShards returns the shard count (a power of two).
func (m *ShardedMap32) NumShards() int {
	switch {
	case m.min != nil:
		return m.min.NumShards()
	case m.max != nil:
		return m.max.NumShards()
	default:
		return m.sum.NumShards()
	}
}

// ShardStats returns the per-shard key counts and their spread (read
// phase); see ShardedSet.ShardStats.
func (m *ShardedMap32) ShardStats() core.ShardStats {
	switch {
	case m.min != nil:
		return m.min.ShardStats()
	case m.max != nil:
		return m.max.ShardStats()
	default:
		return m.sum.ShardStats()
	}
}
