package phasehash_test

import (
	"fmt"
	"sync"

	"phasehash"
)

// ExampleSet demonstrates the phase-concurrent discipline: one insert
// phase from many goroutines, a barrier, then a deterministic read.
func ExampleSet() {
	s := phasehash.NewSet(1 << 10)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ { // insert phase
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(w + 1); k <= 100; k += 4 {
				s.Insert(k)
			}
		}(w)
	}
	wg.Wait() // phase barrier

	fmt.Println(s.Count(), s.Contains(42), s.Contains(101))
	// Output: 100 true false
}

// ExampleMap32 shows duplicate-key combining: Sum adds the values of
// concurrent inserts with the same key, deterministically.
func ExampleMap32() {
	m := phasehash.NewMap32(64, phasehash.Sum)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Insert(7, 5)
		}()
	}
	wg.Wait()

	v, ok := m.Find(7)
	fmt.Println(v, ok)
	// Output: 50 true
}

// ExampleStringMap counts words with string keys stored behind pointer
// CAS (the paper's wide-record representation).
func ExampleStringMap() {
	m := phasehash.NewStringMap(64, phasehash.Sum)
	for _, w := range []string{"to", "be", "or", "not", "to", "be"} {
		m.Insert(w, 1)
	}
	v, _ := m.Find("to")
	u, _ := m.Find("be")
	fmt.Println(v, u, m.Count())
	// Output: 2 2 4
}

// ExampleSet_elements shows that Elements returns an identical order on
// every run for the same key set — the determinism the applications
// build on.
func ExampleSet_elements() {
	build := func() []uint64 {
		s := phasehash.NewSet(64)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := uint64(w + 1); k <= 32; k += 8 {
					s.Insert(k * 3)
				}
			}(w)
		}
		wg.Wait()
		return s.Elements()
	}
	a, b := build(), build()
	same := len(a) == len(b)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == b[i]
	}
	fmt.Println(same)
	// Output: true
}
