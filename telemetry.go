package phasehash

import (
	"net"

	"phasehash/internal/obs"
)

// This file is the public face of the phasestats telemetry substrate
// (internal/obs). The instrumentation is a build-tag pair, like the
// chaos fault-injection layer: binaries built without `-tags obs` carry
// no counters at all (the hooks are const-folded away and the no-op
// overhead gate in CI holds the untagged build within 1% of the
// baseline), and Stats() then returns a zero snapshot with Enabled ==
// false. Build with `-tags obs` (`make obs`) to turn every probe loop,
// CAS site, migration quantum, pool dispatch and shard partition into
// a recorded event.

// Stats merges the telemetry sinks into one snapshot: per-operation
// counters, probe-length histograms (power-of-two buckets), shard
// balance, per-worker block attribution and the phase timeline. Safe to
// call at any time, but counters raced with live operations may be torn
// across fields; take snapshots at phase barriers for exact numbers.
//
// Stats is phase-neutral: it reads the telemetry sinks, never the
// tables, so it is legal during any phase (phasevet knows this).
func Stats() obs.Snapshot { return obs.TakeSnapshot() }

// ResetStats zeroes every telemetry counter, histogram and the phase
// timeline, so the next Stats() covers only what ran in between.
// Callers should be at a phase barrier; resets raced with live
// operations lose increments harmlessly.
func ResetStats() { obs.Reset() }

// ServeDebug starts the live observability endpoint on addr
// ("localhost:6060" style) and returns the bound address: /debug/vars
// (expvar with a "phasestats" snapshot), /debug/phasestats (snapshot
// JSON alone) and /debug/pprof/* for profiling a running soak. In
// binaries built without `-tags obs` it returns an error
// (obs.ErrDisabled) instead of serving all-zero numbers.
func ServeDebug(addr string) (net.Addr, error) { return obs.Serve(addr) }
