package phasehash

import (
	"fmt"

	"phasehash/internal/core"
	"phasehash/internal/parallel"
)

// This file exposes the bulk phase kernels (internal/core/bulk.go) on
// the public containers. A bulk call performs exactly the operations of
// the equivalent per-element loop — same phase discipline, same
// deterministic quiescent state — but runs them as monomorphic blocked
// loops on the persistent worker pool with software-pipelined probes,
// which is substantially faster than dispatching a closure per element
// (see EXPERIMENTS.md). Use them whenever a phase's operations are
// already in a slice.

// InsertAll inserts every key (insert phase) and returns how many grew
// the set — deterministic for a given key multiset. It panics on the
// reserved key 0 and on a full set, exactly as Insert does; use
// TryInsertAll where saturation must degrade gracefully.
func (s *Set) InsertAll(keys []uint64) int { return s.t.InsertAll(keys) }

// TryInsertAll is InsertAll returning errors instead of panicking. It
// attempts every key, returns how many grew the set, and reports the
// error of one failed insert when any failed (ErrReservedKey, ErrFull —
// matchable with errors.Is).
func (s *Set) TryInsertAll(keys []uint64) (int, error) { return s.t.TryInsertAll(keys) }

// ContainsAll reports how many of the keys are present (read phase).
func (s *Set) ContainsAll(keys []uint64) int { return s.t.ContainsAll(keys) }

// DeleteAll deletes every key (delete phase) and returns how many were
// removed.
func (s *Set) DeleteAll(keys []uint64) int { return s.t.DeleteAll(keys) }

// InsertAll inserts every entry, resolving duplicate keys per the
// policy (insert phase), and returns how many new keys were added. It
// panics on the reserved key 0 and on a full map; use TryInsertAll
// where saturation must degrade gracefully.
func (m *Map32) InsertAll(entries []Entry) int {
	n, err := m.TryInsertAll(entries)
	if err != nil {
		panic("phasehash: Map32: " + err.Error())
	}
	return n
}

// TryInsertAll is InsertAll returning errors instead of panicking
// (ErrReservedKey, ErrFull — matchable with errors.Is). Entries with
// valid keys are all attempted even when some keys are reserved.
func (m *Map32) TryInsertAll(entries []Entry) (int, error) {
	packed := make([]uint64, 0, len(entries))
	reserved := 0
	for _, e := range entries {
		if e.Key == 0 {
			reserved++
			continue
		}
		packed = append(packed, core.Pair(e.Key, e.Value))
	}
	var n int
	var err error
	switch {
	case m.min != nil:
		n, err = m.min.TryInsertAll(packed)
	case m.max != nil:
		n, err = m.max.TryInsertAll(packed)
	default:
		n, err = m.sum.TryInsertAll(packed)
	}
	if err == nil && reserved > 0 {
		err = fmt.Errorf("%w: key 0 (%d entries)", ErrReservedKey, reserved)
	}
	return n, err
}

// FindAll looks up every key (read phase) and returns how many are
// present. When vals is non-nil it must have len(vals) >= len(keys);
// vals[i] receives the value stored under keys[i], or 0 when absent.
// A nil vals counts without writing.
func (m *Map32) FindAll(keys []uint32, vals []uint32) int {
	probes := make([]uint64, len(keys))
	parallel.For(len(keys), func(i int) { probes[i] = core.Pair(keys[i], 0) })
	var dst []uint64
	if vals != nil {
		dst = make([]uint64, len(keys))
	}
	var n int
	switch {
	case m.min != nil:
		n = m.min.FindAll(probes, dst)
	case m.max != nil:
		n = m.max.FindAll(probes, dst)
	default:
		n = m.sum.FindAll(probes, dst)
	}
	if vals != nil {
		parallel.For(len(keys), func(i int) { vals[i] = core.PairValue(dst[i]) })
	}
	return n
}

// DeleteAll deletes every key (delete phase) and returns how many were
// removed.
func (m *Map32) DeleteAll(keys []uint32) int {
	probes := make([]uint64, len(keys))
	parallel.For(len(keys), func(i int) { probes[i] = core.Pair(keys[i], 0) })
	switch {
	case m.min != nil:
		return m.min.DeleteAll(probes)
	case m.max != nil:
		return m.max.DeleteAll(probes)
	default:
		return m.sum.DeleteAll(probes)
	}
}

// InsertAll inserts (keys[i], vals[i]) for every i, resolving duplicate
// keys per the policy (insert phase), and returns how many new keys
// were added. keys and vals must have equal length. It panics on a full
// map; use TryInsertAll where saturation must degrade gracefully.
func (m *StringMap) InsertAll(keys []string, vals []uint64) int {
	n, err := m.TryInsertAll(keys, vals)
	if err != nil {
		panic("phasehash: StringMap: " + err.Error())
	}
	return n
}

// TryInsertAll is InsertAll returning ErrFull (matchable with
// errors.Is) instead of panicking when the map saturates.
func (m *StringMap) TryInsertAll(keys []string, vals []uint64) (int, error) {
	if len(keys) != len(vals) {
		return 0, fmt.Errorf("phasehash: StringMap.TryInsertAll: %d keys, %d values", len(keys), len(vals))
	}
	entries := make([]*strEntry, len(keys))
	parallel.For(len(keys), func(i int) {
		entries[i] = &strEntry{key: keys[i], val: vals[i]}
	})
	if m.min != nil {
		return m.min.TryInsertAll(entries)
	}
	return m.sum.TryInsertAll(entries)
}

// FindAll looks up every key (read phase) and returns how many are
// present. When vals is non-nil it must have len(vals) >= len(keys);
// vals[i] receives the value stored under keys[i], or 0 when absent.
func (m *StringMap) FindAll(keys []string, vals []uint64) int {
	probes := make([]*strEntry, len(keys))
	parallel.For(len(keys), func(i int) { probes[i] = &strEntry{key: keys[i]} })
	var dst []*strEntry
	if vals != nil {
		dst = make([]*strEntry, len(keys))
	}
	var n int
	if m.min != nil {
		n = m.min.FindAll(probes, dst)
	} else {
		n = m.sum.FindAll(probes, dst)
	}
	if vals != nil {
		parallel.For(len(keys), func(i int) {
			if dst[i] != nil {
				vals[i] = dst[i].val
			} else {
				vals[i] = 0
			}
		})
	}
	return n
}

// DeleteAll deletes every key (delete phase) and returns how many were
// removed.
func (m *StringMap) DeleteAll(keys []string) int {
	probes := make([]*strEntry, len(keys))
	parallel.For(len(keys), func(i int) { probes[i] = &strEntry{key: keys[i]} })
	if m.min != nil {
		return m.min.DeleteAll(probes)
	}
	return m.sum.DeleteAll(probes)
}

// InsertAll inserts every key (insert phase), growing as needed, and
// returns how many grew the set. It panics on the reserved key 0; use
// TryInsertAll to get an error instead.
func (s *GrowSet) InsertAll(keys []uint64) int { return s.t.InsertAll(keys) }

// TryInsertAll is InsertAll returning ErrReservedKey (matchable with
// errors.Is) instead of panicking; every non-reserved key is inserted.
func (s *GrowSet) TryInsertAll(keys []uint64) (int, error) { return s.t.TryInsertAll(keys) }

// ContainsAll reports how many of the keys are present (read phase).
func (s *GrowSet) ContainsAll(keys []uint64) int { return s.t.ContainsAll(keys) }

// DeleteAll deletes every key (delete phase) and returns how many were
// removed.
func (s *GrowSet) DeleteAll(keys []uint64) int { return s.t.DeleteAll(keys) }
