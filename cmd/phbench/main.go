// Command phbench regenerates the paper's Table 1 (hash-table operation
// times across nine implementations and six distributions), Table 2
// (insertion vs. raw scatter) and the data series behind Figure 3.
//
// Usage:
//
//	phbench [-n 1000000] [-size 4194304] [-op insert] [-dist all]
//	        [-tables all] [-table2] [-figure3] [-reps 1] [-stats]
//
// With no selection flags it prints all six Table 1 sub-tables. Times
// are seconds, in the paper's layout: one row per implementation, (1)
// and (P) columns per distribution, where P is GOMAXPROCS.
//
// In binaries built with -tags obs, -stats prints a telemetry line
// under each Table 1 row: mean probe length, the p99 probe-length
// histogram bucket edge, and the CAS retry rate for that cell.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"phasehash/internal/bench"
	"phasehash/internal/obs"
	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

func main() {
	var (
		n       = flag.Int("n", 1_000_000, "operations per measurement (paper: 10^8)")
		size    = flag.Int("size", 0, "table size in cells (default: next pow2 >= 8n/3, the paper's load ~1/3)")
		opFlag  = flag.String("op", "all", "operation: insert|find-random|find-inserted|delete-random|delete-inserted|elements|all")
		dist    = flag.String("dist", "all", "distribution name or 'all'")
		kinds   = flag.String("tables", "all", "comma-separated table kinds or 'all'")
		table2  = flag.Bool("table2", false, "run Table 2 (random writes vs insertion) instead")
		figure3 = flag.Bool("figure3", false, "print Figure 3's two panels (parallel times, bar-chart series)")
		reps    = flag.Int("reps", 1, "repetitions (minimum time reported)")
		stats   = flag.Bool("stats", false, "print mean/p99 probe length and CAS-retry rate under each cell (needs a -tags obs build)")
		mem     = flag.Bool("mem", false, "print a backing-array bytes/elem column per selected table kind and exit")
	)
	flag.Parse()
	if *stats && !obs.Enabled {
		fmt.Fprintln(os.Stderr, "phbench: -stats needs a build with -tags obs (the counters are compiled out of this binary); ignoring")
		*stats = false
	}
	if *size == 0 {
		*size = ceilPow2(*n * 8 / 3)
	}
	if *mem {
		runMem(parseKinds(*kinds), *n, *size)
		return
	}
	if *table2 {
		runTable2(*n, *reps)
		return
	}
	if *figure3 {
		runFigure3(*n, *size, *reps)
		return
	}

	ops := bench.Ops
	if *opFlag != "all" {
		ops = []bench.Op{bench.Op(*opFlag)}
	}
	dists := sequence.AllDistributions
	if *dist != "all" {
		dists = []sequence.Distribution{sequence.Distribution(*dist)}
	}
	kindList := parseKinds(*kinds)

	fmt.Printf("# Table 1: times (seconds) for %d hash table operations; table size %d cells\n", *n, *size)
	fmt.Printf("# machine: GOMAXPROCS=%d (paper: 40 cores / 80 hyperthreads)\n\n", runtime.GOMAXPROCS(0))
	for _, op := range ops {
		fmt.Printf("## %s\n", op)
		header := []string{fmt.Sprintf("%-18s", "table")}
		for _, d := range dists {
			header = append(header, fmt.Sprintf("%22s", shortDist(d)))
		}
		fmt.Println(strings.Join(header, " "))
		for _, kind := range kindList {
			row := []string{fmt.Sprintf("%-18s", kind)}
			statsRow := []string{fmt.Sprintf("%-18s", "  └ probes")}
			for _, d := range dists {
				if *stats {
					obs.Reset()
				}
				t := minRep(*reps, func() time.Duration {
					return bench.Table1Cell(kind, d, op, *n, *size)
				})
				if kind.IsSerial() {
					row = append(row, fmt.Sprintf("%15s (1)   ", fmtSec(t)))
				} else {
					row = append(row, fmt.Sprintf("%15s (%dp)  ", fmtSec(t), runtime.GOMAXPROCS(0)))
				}
				if *stats {
					s := obs.TakeSnapshot()
					statsRow = append(statsRow, fmt.Sprintf("%22s", cellStats(&s, op)))
				}
			}
			fmt.Println(strings.Join(row, " "))
			if *stats {
				fmt.Println(strings.Join(statsRow, " "))
			}
		}
		fmt.Println()
	}
}

// runMem prints the bytes/elem column: backing-array bytes at the
// benchmark's table size over the n elements it holds. Kinds without
// memory accounting (chained tables, whose footprint tracks the live
// set; the comparison baselines) print "-".
func runMem(kinds []tables.Kind, n, size int) {
	fmt.Printf("# memory: backing-array bytes per element; %d elements, %d cells\n", n, size)
	fmt.Printf("%-22s %12s\n", "table", "bytes/elem")
	for _, kind := range kinds {
		if bpe := bench.BytesPerElem(kind, n, size); bpe > 0 {
			fmt.Printf("%-22s %12.2f\n", kind, bpe)
		} else {
			fmt.Printf("%-22s %12s\n", kind, "-")
		}
	}
}

func runTable2(n, reps int) {
	size := ceilPow2(3 * n) // the paper's load-1/3 configuration
	fmt.Printf("# Table 2: times (seconds) for %d random writes (scatter); %d slots\n", n, size)
	fmt.Printf("%-28s %12s %12s\n", "memory operation", "(1)", fmt.Sprintf("(%dp)", runtime.GOMAXPROCS(0)))
	for _, row := range bench.Table2Rows {
		ser := minRep(reps, func() time.Duration { return bench.Table2Cell(row, n, size, false) })
		par := minRep(reps, func() time.Duration { return bench.Table2Cell(row, n, size, true) })
		fmt.Printf("%-28s %12s %12s\n", row, fmtSec(ser), fmtSec(par))
	}
}

func runFigure3(n, size, reps int) {
	panels := []struct {
		title string
		dist  sequence.Distribution
	}{
		{"Figure 3(a): randomSeq-int", sequence.RandomInt},
		{"Figure 3(b): trigramSeq-pairInt", sequence.TrigramPairInt},
	}
	ops := []bench.Op{bench.OpInsert, bench.OpFindRandom, bench.OpDeleteRandom, bench.OpElements}
	for _, p := range panels {
		fmt.Printf("# %s — parallel times (seconds), %d operations\n", p.title, n)
		fmt.Printf("%-18s %10s %12s %14s %10s\n", "table", "Insert", "Find Random", "Delete Random", "Elements")
		for _, kind := range tables.ParallelKinds {
			fmt.Printf("%-18s", kind)
			for _, op := range ops {
				t := minRep(reps, func() time.Duration {
					return bench.Table1Cell(kind, p.dist, op, n, size)
				})
				fmt.Printf(" %12s", fmtSec(t))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func parseKinds(s string) []tables.Kind {
	if s == "all" {
		return tables.Kinds
	}
	var out []tables.Kind
	for _, part := range strings.Split(s, ",") {
		k := tables.Kind(strings.TrimSpace(part))
		found := false
		for _, known := range tables.Kinds {
			if k == known {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "phbench: unknown table kind %q\n", k)
			os.Exit(2)
		}
		out = append(out, k)
	}
	return out
}

// cellStats condenses one cell's telemetry to "m=<mean probe>
// p99<=<histogram upper edge> r=<CAS retry %>". The op decides which
// probe class to read; ops with no probe loop (elements) show "-", and
// so do cells that recorded no operations at all — the standalone
// serial baselines in internal/tables carry no obs hooks, and a row of
// fabricated zeros under them would read as a measurement.
func cellStats(s *obs.Snapshot, op bench.Op) string {
	var class string
	var h *obs.Histogram
	var ops uint64
	counts := s.Ops()
	switch {
	case op == bench.OpInsert:
		class, h, ops = "insert", &s.InsertProbes, counts.InsertOps
	case strings.HasPrefix(string(op), "find"):
		class, h, ops = "find", &s.FindProbes, counts.FindOps
	case strings.HasPrefix(string(op), "delete"):
		class, h, ops = "delete", &s.DeleteProbes, counts.DeleteOps
	default:
		return "-"
	}
	if ops == 0 {
		return "-"
	}
	return fmt.Sprintf("m=%.2f p99<=%d r=%.1f%%",
		s.MeanProbe(class), h.Quantile(0.99), 100*s.CASRetryRate())
}

func shortDist(d sequence.Distribution) string {
	return strings.TrimPrefix(string(d), "randomSeq-")
}

func minRep(reps int, f func() time.Duration) time.Duration {
	best := f()
	for i := 1; i < reps; i++ {
		if t := f(); t < best {
			best = t
		}
	}
	return best
}

func fmtSec(d time.Duration) string {
	return fmt.Sprintf("%.4f", d.Seconds())
}

func ceilPow2(x int) int {
	m := 1
	for m < x {
		m <<= 1
	}
	return m
}
