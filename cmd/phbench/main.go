// Command phbench regenerates the paper's Table 1 (hash-table operation
// times across nine implementations and six distributions), Table 2
// (insertion vs. raw scatter) and the data series behind Figure 3.
//
// Usage:
//
//	phbench [-n 1000000] [-size 4194304] [-op insert] [-dist all]
//	        [-tables all] [-table2] [-figure3] [-reps 1]
//
// With no selection flags it prints all six Table 1 sub-tables. Times
// are seconds, in the paper's layout: one row per implementation, (1)
// and (P) columns per distribution, where P is GOMAXPROCS.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"phasehash/internal/bench"
	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

func main() {
	var (
		n       = flag.Int("n", 1_000_000, "operations per measurement (paper: 10^8)")
		size    = flag.Int("size", 0, "table size in cells (default: next pow2 >= 8n/3, the paper's load ~1/3)")
		opFlag  = flag.String("op", "all", "operation: insert|find-random|find-inserted|delete-random|delete-inserted|elements|all")
		dist    = flag.String("dist", "all", "distribution name or 'all'")
		kinds   = flag.String("tables", "all", "comma-separated table kinds or 'all'")
		table2  = flag.Bool("table2", false, "run Table 2 (random writes vs insertion) instead")
		figure3 = flag.Bool("figure3", false, "print Figure 3's two panels (parallel times, bar-chart series)")
		reps    = flag.Int("reps", 1, "repetitions (minimum time reported)")
	)
	flag.Parse()
	if *size == 0 {
		*size = ceilPow2(*n * 8 / 3)
	}
	if *table2 {
		runTable2(*n, *reps)
		return
	}
	if *figure3 {
		runFigure3(*n, *size, *reps)
		return
	}

	ops := bench.Ops
	if *opFlag != "all" {
		ops = []bench.Op{bench.Op(*opFlag)}
	}
	dists := sequence.AllDistributions
	if *dist != "all" {
		dists = []sequence.Distribution{sequence.Distribution(*dist)}
	}
	kindList := parseKinds(*kinds)

	fmt.Printf("# Table 1: times (seconds) for %d hash table operations; table size %d cells\n", *n, *size)
	fmt.Printf("# machine: GOMAXPROCS=%d (paper: 40 cores / 80 hyperthreads)\n\n", runtime.GOMAXPROCS(0))
	for _, op := range ops {
		fmt.Printf("## %s\n", op)
		header := []string{fmt.Sprintf("%-18s", "table")}
		for _, d := range dists {
			header = append(header, fmt.Sprintf("%22s", shortDist(d)))
		}
		fmt.Println(strings.Join(header, " "))
		for _, kind := range kindList {
			row := []string{fmt.Sprintf("%-18s", kind)}
			for _, d := range dists {
				t := minRep(*reps, func() time.Duration {
					return bench.Table1Cell(kind, d, op, *n, *size)
				})
				if kind.IsSerial() {
					row = append(row, fmt.Sprintf("%15s (1)   ", fmtSec(t)))
				} else {
					row = append(row, fmt.Sprintf("%15s (%dp)  ", fmtSec(t), runtime.GOMAXPROCS(0)))
				}
			}
			fmt.Println(strings.Join(row, " "))
		}
		fmt.Println()
	}
}

func runTable2(n, reps int) {
	size := ceilPow2(3 * n) // the paper's load-1/3 configuration
	fmt.Printf("# Table 2: times (seconds) for %d random writes (scatter); %d slots\n", n, size)
	fmt.Printf("%-28s %12s %12s\n", "memory operation", "(1)", fmt.Sprintf("(%dp)", runtime.GOMAXPROCS(0)))
	for _, row := range bench.Table2Rows {
		ser := minRep(reps, func() time.Duration { return bench.Table2Cell(row, n, size, false) })
		par := minRep(reps, func() time.Duration { return bench.Table2Cell(row, n, size, true) })
		fmt.Printf("%-28s %12s %12s\n", row, fmtSec(ser), fmtSec(par))
	}
}

func runFigure3(n, size, reps int) {
	panels := []struct {
		title string
		dist  sequence.Distribution
	}{
		{"Figure 3(a): randomSeq-int", sequence.RandomInt},
		{"Figure 3(b): trigramSeq-pairInt", sequence.TrigramPairInt},
	}
	ops := []bench.Op{bench.OpInsert, bench.OpFindRandom, bench.OpDeleteRandom, bench.OpElements}
	for _, p := range panels {
		fmt.Printf("# %s — parallel times (seconds), %d operations\n", p.title, n)
		fmt.Printf("%-18s %10s %12s %14s %10s\n", "table", "Insert", "Find Random", "Delete Random", "Elements")
		for _, kind := range tables.ParallelKinds {
			fmt.Printf("%-18s", kind)
			for _, op := range ops {
				t := minRep(reps, func() time.Duration {
					return bench.Table1Cell(kind, p.dist, op, n, size)
				})
				fmt.Printf(" %12s", fmtSec(t))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func parseKinds(s string) []tables.Kind {
	if s == "all" {
		return tables.Kinds
	}
	var out []tables.Kind
	for _, part := range strings.Split(s, ",") {
		k := tables.Kind(strings.TrimSpace(part))
		found := false
		for _, known := range tables.Kinds {
			if k == known {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "phbench: unknown table kind %q\n", k)
			os.Exit(2)
		}
		out = append(out, k)
	}
	return out
}

func shortDist(d sequence.Distribution) string {
	return strings.TrimPrefix(string(d), "randomSeq-")
}

func minRep(reps int, f func() time.Duration) time.Duration {
	best := f()
	for i := 1; i < reps; i++ {
		if t := f(); t < best {
			best = t
		}
	}
	return best
}

func fmtSec(d time.Duration) string {
	return fmt.Sprintf("%.4f", d.Seconds())
}

func ceilPow2(x int) int {
	m := 1
	for m < x {
		m <<= 1
	}
	return m
}
