// Command phserver serves a phase-batched epoch scheduler
// (internal/epoch) over TCP: any number of clients submit mixed
// Insert/Find/Delete/Elements traffic, the server buffers it into
// per-phase batches and flushes each epoch through the sharded
// owner-computes kernels. See internal/epoch and DESIGN.md §12 for the
// scheduling and robustness contract.
//
// Usage:
//
//	phserver [-addr :9191] [-size 1048576] [-shards 0]
//	         [-maxbatch 4096] [-queue 16384] [-interval 1ms]
//	         [-block] [-flushdelay 0] [-tune]
//
// -block switches admission from fail-fast (overloaded submits get an
// immediate StatusOverloaded) to block-with-deadline. -flushdelay is
// the overload-experiment knob: an artificial per-epoch delay that
// simulates a slower backend (EXPERIMENTS.md drives the degradation
// table with it). -tune enables the adaptive flush-path selector
// (internal/tune): each epoch's phases run serial, parallel-atomic or
// sharded-bulk depending on the epoch's batch sizes, and the decision
// trace is printed at drain.
//
// With -obs addr (in a -tags obs build) live telemetry — including the
// epoch counters, the admit-to-complete latency histogram and the
// max-queue-depth gauge — is served on /debug/phasestats.
//
// On SIGINT/SIGTERM the listener closes, admission stops with
// StatusClosed, and in-flight epochs drain (bounded by -draintimeout)
// before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"phasehash/internal/epoch"
	"phasehash/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:9191", "listen address")
		size         = flag.Int("size", 1<<20, "table capacity in cells")
		shards       = flag.Int("shards", 0, "shard count (0 = automatic)")
		maxBatch     = flag.Int("maxbatch", 4096, "epoch size watermark (ops per flushed epoch)")
		queue        = flag.Int("queue", 0, "admission queue limit (0 = 4x maxbatch)")
		interval     = flag.Duration("interval", time.Millisecond, "linger interval before a partial epoch flushes")
		block        = flag.Bool("block", false, "block overloaded submits until space or their deadline (default: fail fast)")
		flushDelay   = flag.Duration("flushdelay", 0, "artificial per-epoch delay (overload experiments)")
		tuneOn       = flag.Bool("tune", false, "adaptive flush-path tuner: pick serial/parallel/sharded execution per epoch (internal/tune)")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "shutdown drain bound")
		obsAddr      = flag.String("obs", "", "serve /debug/phasestats on this address (needs a -tags obs build)")
	)
	flag.Parse()

	if *obsAddr != "" {
		a, err := obs.Serve(*obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phserver: -obs: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "phserver: telemetry at http://%s/debug/phasestats\n", a)
	}

	srv := epoch.NewServer(epoch.Config{
		Size:          *size,
		Shards:        *shards,
		MaxBatch:      *maxBatch,
		QueueLimit:    *queue,
		FlushInterval: *interval,
		Block:         *block,
		FlushDelay:    *flushDelay,
		Tune:          *tuneOn,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phserver: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "phserver: serving on %s (size=%d maxbatch=%d queue=%d interval=%v block=%v)\n",
		ln.Addr(), *size, *maxBatch, *queue, *interval, *block)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := epoch.Serve(ctx, ln, srv); err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintf(os.Stderr, "phserver: serve: %v\n", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Close(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "phserver: drain: %v\n", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"phserver: drained; admitted=%d epochs=%d splits=%d ops=%d shed(overload=%d deadline=%d) cancelled=%d full=%d maxqueue=%d count=%d\n",
		st.Admitted, st.Epochs, st.Splits, st.FlushedOps, st.ShedOverload, st.ShedDeadline,
		st.Cancelled, st.InsertFull, st.MaxQueue, srv.Table().Count())
	if *tuneOn {
		fmt.Fprintf(os.Stderr, "phserver: tuner recorded %d decision(s)\n%s", st.TuneSwitches, srv.TuneTrace())
	}
}
