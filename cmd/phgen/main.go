// Command phgen generates the paper's input distributions as files in
// PBBS text formats, for interchange with the original PBBS tools (or
// for feeding real PBBS files back through -check).
//
// Usage:
//
//	phgen -kind randomSeq-int  -n 1000000 -o keys.txt
//	phgen -kind exptSeq-int    -n 1000000 -o expt.txt
//	phgen -kind 2DinCube       -n 1000000 -o points.txt
//	phgen -kind 2Dkuzmin       -n 1000000 -o kuzmin.txt
//	phgen -kind rMat           -n 100000  -o graph.txt
//	phgen -kind 3D-grid        -n 100000  -o grid.txt
//	phgen -kind random-graph   -n 100000  -o rand.txt
//	phgen -check graph.txt               # parse + validate a file
package main

import (
	"flag"
	"fmt"
	"os"

	"phasehash/internal/geom"
	"phasehash/internal/graph"
	"phasehash/internal/pbbsio"
	"phasehash/internal/sequence"
)

func main() {
	var (
		kind  = flag.String("kind", "", "randomSeq-int|exptSeq-int|2DinCube|2Dkuzmin|rMat|3D-grid|random-graph")
		n     = flag.Int("n", 1_000_000, "size (elements, points or vertices)")
		seed  = flag.Uint64("seed", 42, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
		check = flag.String("check", "", "parse and validate a PBBS file instead of generating")
	)
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintln(os.Stderr, "phgen:", err)
			os.Exit(1)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var err error
	switch *kind {
	case "randomSeq-int":
		err = pbbsio.WriteSequenceInt(w, sequence.RandomKeys(*n, *seed))
	case "exptSeq-int":
		err = pbbsio.WriteSequenceInt(w, sequence.ExptKeys(*n, *seed))
	case "2DinCube":
		err = pbbsio.WritePoints2d(w, geom.InCube(*n, *seed))
	case "2Dkuzmin":
		err = pbbsio.WritePoints2d(w, geom.Kuzmin(*n, *seed))
	case "rMat", "3D-grid", "random-graph":
		name := graph.Name(*kind)
		if *kind == "random-graph" {
			name = graph.RandomName
		}
		var g *graph.Graph
		g, err = graph.Build(name, *n, *seed)
		if err == nil {
			err = pbbsio.WriteAdjacencyGraph(w, g)
		}
	default:
		err = fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "phgen:", err)
		os.Exit(1)
	}
}

// checkFile sniffs the header and validates the file.
func checkFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var header string
	if _, err := fmt.Fscan(f, &header); err != nil {
		return fmt.Errorf("reading header: %v", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	switch header {
	case "sequenceInt":
		keys, err := pbbsio.ReadSequenceInt(f)
		if err != nil {
			return err
		}
		fmt.Printf("ok: sequenceInt with %d keys\n", len(keys))
	case "pbbs_sequencePoint2d":
		pts, err := pbbsio.ReadPoints2d(f)
		if err != nil {
			return err
		}
		fmt.Printf("ok: point2d with %d points\n", len(pts))
	case "AdjacencyGraph":
		g, err := pbbsio.ReadAdjacencyGraph(f)
		if err != nil {
			return err
		}
		fmt.Printf("ok: graph with %d vertices, %d arcs\n", g.NumVertices(), g.NumEdges())
	case "EdgeArray":
		edges, err := pbbsio.ReadEdgeArray(f)
		if err != nil {
			return err
		}
		fmt.Printf("ok: edge array with %d edges\n", len(edges))
	default:
		return fmt.Errorf("unknown header %q", header)
	}
	return nil
}
