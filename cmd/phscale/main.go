// Command phscale regenerates Figure 4: speedup of linearHash-D over
// serialHash-HI as a function of the number of workers, for insert,
// find-random, delete-random and elements, on randomSeq-int (panel a)
// and trigramSeq-pairInt (panel b).
//
// Usage:
//
//	phscale [-n 1000000] [-size 4194304] [-threads 1,2,4] [-reps 1]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"phasehash/internal/bench"
	"phasehash/internal/sequence"
)

func main() {
	var (
		n       = flag.Int("n", 1_000_000, "operations per measurement (paper: 10^8)")
		size    = flag.Int("size", 0, "table size in cells (default next pow2 >= 8n/3)")
		threads = flag.String("threads", "", "comma-separated worker counts (default 1..GOMAXPROCS)")
		reps    = flag.Int("reps", 1, "repetitions (minimum reported)")
	)
	flag.Parse()
	if *size == 0 {
		*size = ceilPow2(*n * 8 / 3)
	}
	counts := parseThreads(*threads)

	panels := []struct {
		title string
		dist  sequence.Distribution
	}{
		{"Figure 4(a): randomSeq-int", sequence.RandomInt},
		{"Figure 4(b): trigramSeq-pairInt", sequence.TrigramPairInt},
	}
	ops := []bench.Op{bench.OpInsert, bench.OpFindRandom, bench.OpDeleteRandom, bench.OpElements}

	for _, p := range panels {
		fmt.Printf("# %s — speedup of linearHash-D over serialHash-HI, n=%d\n", p.title, *n)
		fmt.Printf("%-8s", "threads")
		for _, op := range ops {
			fmt.Printf(" %14s", op)
		}
		fmt.Println()
		for _, t := range counts {
			fmt.Printf("%-8d", t)
			for _, op := range ops {
				var par, ser time.Duration
				for r := 0; r < *reps; r++ {
					p2, s2 := bench.Figure4Point(p.dist, op, *n, *size, t)
					if r == 0 || p2 < par {
						par = p2
					}
					if r == 0 || s2 < ser {
						ser = s2
					}
				}
				fmt.Printf(" %14.2f", ser.Seconds()/par.Seconds())
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func parseThreads(s string) []int {
	if s == "" {
		max := runtime.GOMAXPROCS(0)
		var out []int
		for t := 1; t <= max; t *= 2 {
			out = append(out, t)
		}
		if out[len(out)-1] != max {
			out = append(out, max)
		}
		return out
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			panic("phscale: bad -threads value " + part)
		}
		out = append(out, v)
	}
	return out
}

func ceilPow2(x int) int {
	m := 1
	for m < x {
		m <<= 1
	}
	return m
}
