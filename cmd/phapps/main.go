// Command phapps regenerates the paper's application tables (Tables
// 3-8): remove duplicates, Delaunay refinement, suffix trees, edge
// contraction, breadth-first search and spanning forest, each across
// the hash-table implementations the paper compares.
//
// Usage:
//
//	phapps [-app all|dedup|refine|suffix|contract|bfs|spanning]
//	       [-n 1000000] [-points 100000] [-text 1000000] [-verts 100000]
//	       [-searches 100000] [-reps 1]
//
// Sizes default to laptop scale; the paper's sizes are n=10^8 elements,
// 5M points, ~110MB texts, 10^7-vertex graphs.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"phasehash/internal/apps/connectivity"
	"phasehash/internal/bench"
	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

func main() {
	var (
		app      = flag.String("app", "all", "application: dedup|refine|suffix|contract|bfs|spanning|connectivity|all")
		n        = flag.Int("n", 1_000_000, "remove-duplicates input length")
		points   = flag.Int("points", 100_000, "Delaunay refinement input points")
		text     = flag.Int("text", 1_000_000, "suffix-tree corpus bytes")
		searches = flag.Int("searches", 100_000, "suffix-tree search patterns")
		verts    = flag.Int("verts", 100_000, "graph vertices for contract/bfs/spanning")
		reps     = flag.Int("reps", 1, "repetitions (minimum time reported)")
	)
	flag.Parse()
	fmt.Printf("# phapps: GOMAXPROCS=%d; times in seconds\n\n", runtime.GOMAXPROCS(0))
	all := *app == "all"
	if all || *app == "dedup" {
		runDedup(*n, *reps)
	}
	if all || *app == "refine" {
		runRefine(*points, *reps)
	}
	if all || *app == "suffix" {
		runSuffix(*text, *searches, *reps)
	}
	if all || *app == "contract" {
		runContract(*verts, *reps)
	}
	if all || *app == "bfs" {
		runBFS(*verts, *reps)
	}
	if all || *app == "spanning" {
		runSpanning(*verts, *reps)
	}
	if all || *app == "connectivity" {
		runConnectivity(*verts, *reps)
	}
}

func minRep(reps int, f func() time.Duration) time.Duration {
	best := f()
	for i := 1; i < reps; i++ {
		if t := f(); t < best {
			best = t
		}
	}
	return best
}

func runDedup(n, reps int) {
	dists := []sequence.Distribution{sequence.RandomInt, sequence.TrigramPairInt, sequence.ExptInt}
	fmt.Printf("## Table 3: Remove Duplicates (n=%d)\n", n)
	fmt.Printf("%-18s", "table")
	for _, d := range dists {
		fmt.Printf(" %20s", d)
	}
	fmt.Println()
	for _, kind := range bench.AppKinds {
		fmt.Printf("%-18s", kind)
		for _, d := range dists {
			t := minRep(reps, func() time.Duration { return bench.Table3(kind, d, n) })
			fmt.Printf(" %20.4f", t.Seconds())
		}
		fmt.Println()
	}
	fmt.Println()
}

func runRefine(points, reps int) {
	fmt.Printf("## Table 4: Delaunay Refinement hash-table portion (%d points, 1 iteration as in the paper)\n", points)
	inputs := bench.Table4Inputs(points)
	fmt.Printf("%-18s", "table")
	for _, in := range inputs {
		fmt.Printf(" %14s", in.Name)
	}
	fmt.Println()
	for _, kind := range bench.AppKinds {
		fmt.Printf("%-18s", kind)
		for _, in := range inputs {
			t := minRep(reps, func() time.Duration { return bench.Table4(kind, in.Pts, 1) })
			fmt.Printf(" %14.4f", t.Seconds())
		}
		fmt.Println()
	}
	fmt.Println()
}

func runSuffix(textLen, searches, reps int) {
	fmt.Printf("## Table 5: Suffix Tree (%d-byte corpora, %d searches)\n", textLen, searches)
	inputs := bench.Table5Inputs(textLen, searches)
	for _, part := range []string{"(a) insert", "(b) search"} {
		fmt.Printf("### %s\n%-18s", part, "table")
		for _, in := range inputs {
			fmt.Printf(" %14s", in.Corpus)
		}
		fmt.Println()
		for _, kind := range bench.AppKinds {
			fmt.Printf("%-18s", kind)
			for i := range inputs {
				var best time.Duration
				for r := 0; r < reps; r++ {
					ins, srch := bench.Table5(kind, inputs[i])
					t := ins
					if part == "(b) search" {
						t = srch
					}
					if r == 0 || t < best {
						best = t
					}
				}
				fmt.Printf(" %14.4f", best.Seconds())
			}
			fmt.Println()
		}
	}
	fmt.Println()
}

func runContract(verts, reps int) {
	fmt.Printf("## Table 6: Edge Contraction (~%d vertices)\n", verts)
	inputs := bench.GraphInputs(verts)
	printGraphTable(inputs, reps, bench.Table6, nil)
}

func runBFS(verts, reps int) {
	fmt.Printf("## Table 7: Breadth-First Search (~%d vertices)\n", verts)
	inputs := bench.GraphInputs(verts)
	printGraphTable(inputs, reps, bench.Table7, bench.Table7Baseline)
}

func runSpanning(verts, reps int) {
	fmt.Printf("## Table 8: Spanning Forest (~%d vertices)\n", verts)
	inputs := bench.GraphInputs(verts)
	printGraphTable(inputs, reps, bench.Table8, bench.Table8Baseline)
}

func runConnectivity(verts, reps int) {
	fmt.Printf("## Connectivity by recursive contraction (beyond the paper's tables; its ref [31])\n")
	inputs := bench.GraphInputs(verts)
	fmt.Printf("%-18s", "table")
	for _, in := range inputs {
		fmt.Printf(" %14s", in.Name)
	}
	fmt.Println()
	for _, kind := range bench.AppKinds {
		fmt.Printf("%-18s", kind)
		for _, in := range inputs {
			t := minRep(reps, func() time.Duration {
				start := time.Now()
				connectivity.Components(in.G.NumVertices(), in.Edges, kind)
				return time.Since(start)
			})
			fmt.Printf(" %14.4f", t.Seconds())
		}
		fmt.Println()
	}
	fmt.Println()
}

func printGraphTable(inputs []bench.GraphInput, reps int,
	run func(tables.Kind, bench.GraphInput) time.Duration,
	baseline func(bench.Table7Variant, bench.GraphInput) time.Duration,
) {
	fmt.Printf("%-18s", "table")
	for _, in := range inputs {
		fmt.Printf(" %14s", in.Name)
	}
	fmt.Println()
	if baseline != nil {
		for _, v := range []bench.Table7Variant{bench.BFSSerial, bench.BFSArray} {
			fmt.Printf("%-18s", v)
			for _, in := range inputs {
				t := minRep(reps, func() time.Duration { return baseline(v, in) })
				fmt.Printf(" %14.4f", t.Seconds())
			}
			fmt.Println()
		}
	}
	for _, kind := range bench.AppKinds {
		fmt.Printf("%-18s", kind)
		for _, in := range inputs {
			t := minRep(reps, func() time.Duration { return run(kind, in) })
			fmt.Printf(" %14.4f", t.Seconds())
		}
		fmt.Println()
	}
	fmt.Println()
}
