// Command phasevet reports phase-discipline violations in code using
// the phasehash tables (see internal/analysis/phasevet).
//
// It runs in two modes:
//
//   - Standalone (singlechecker-style): given go-tool package patterns
//     it loads the packages from source and reports diagnostics.
//
//     go run ./cmd/phasevet ./...
//
//   - Vet tool (unitchecker protocol): when invoked by the go command
//     with a *.cfg file it type-checks the unit from export data, so
//     it plugs into the standard vet driver — including _test.go
//     files, which the standalone mode does not load:
//
//     go build -o /tmp/phasevet ./cmd/phasevet
//     go vet -vettool=/tmp/phasevet ./...
//
// Exit status is 2 when diagnostics were reported, matching go vet.
package main

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"phasehash/internal/analysis/load"
	"phasehash/internal/analysis/phasevet"
	"phasehash/internal/analysis/unitvet"
)

func main() {
	args := os.Args[1:]
	// go vet probes its tool with -V=full and -flags before sending
	// unit configs; unitvet answers those and *.cfg units.
	if unitvet.Handles(args) {
		unitvet.Main(phasevet.PhaseVet, args)
		return
	}
	if len(args) == 0 || args[0] == "-h" || args[0] == "--help" || args[0] == "help" {
		fmt.Fprintf(os.Stderr, "usage: phasevet <package patterns>\n\n%s\n", phasevet.PhaseVet.Doc)
		os.Exit(2)
	}
	os.Exit(standalone(args))
}

func standalone(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := load.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	var diags []struct {
		pos token.Position
		msg string
	}
	for _, pkg := range pkgs {
		pass := &phasevet.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d phasevet.Diagnostic) {
				diags = append(diags, struct {
					pos token.Position
					msg string
				}{pkg.Fset.Position(d.Pos), d.Message})
			},
		}
		if _, err := phasevet.PhaseVet.Run(pass); err != nil {
			fatal(err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, d := range diags {
		pos := d.pos.String()
		if rel, ok := strings.CutPrefix(pos, cwd+string(os.PathSeparator)); ok {
			pos = rel
		}
		fmt.Fprintf(os.Stderr, "%s: %s\n", pos, d.msg)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "phasevet: %v\n", err)
	os.Exit(1)
}
