// Command phasevet is the multichecker for the phasehash analyzer
// suite: phasevet (phase discipline, interprocedural), atomicvet
// (atomic-vs-plain field access) and detvet (determinism lint). See
// the internal/analysis packages for what each check does.
//
// It runs in two modes:
//
//   - Standalone (multichecker-style): given go-tool package patterns
//     it loads the packages from source — including the full
//     module-local dependency closure, in dependency order, so
//     cross-package facts flow — and reports diagnostics for the
//     requested packages.
//
//     go run ./cmd/phasevet ./...
//
//   - Vet tool (unitchecker protocol): when invoked by the go command
//     with a *.cfg file it type-checks the unit from export data, so
//     it plugs into the standard vet driver — including _test.go
//     files, which the standalone mode does not load. Facts travel in
//     the .vetx files the go command threads between units:
//
//     go build -o /tmp/phasevet ./cmd/phasevet
//     go vet -vettool=/tmp/phasevet ./...
//
// Exit status is 2 when diagnostics were reported, matching go vet.
package main

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
	"phasehash/internal/analysis/suite"
	"phasehash/internal/analysis/unitvet"
)

func main() {
	args := os.Args[1:]
	// go vet probes its tool with -V=full and -flags before sending
	// unit configs; unitvet answers those and *.cfg units.
	if unitvet.Handles(args) {
		unitvet.Main(suite.Analyzers(), args)
		return
	}
	if len(args) == 0 || args[0] == "-h" || args[0] == "--help" || args[0] == "help" {
		fmt.Fprintf(os.Stderr, "usage: phasevet <package patterns>\n\nAnalyzers:\n")
		for _, a := range suite.Analyzers() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, doc)
		}
		os.Exit(2)
	}
	os.Exit(standalone(args))
}

func standalone(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := load.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	// The requested packages determine what gets *reported*; the whole
	// module-local dependency closure gets *analyzed*, in dependency
	// order, so cross-package facts (phase effects, atomic shadow
	// sets, nondeterminism summaries) reach their importers.
	requested, err := load.List(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	for _, lp := range requested {
		want[lp.ImportPath] = true
	}
	pkgs, err := loader.LoadDepsOrdered(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	var diags []struct {
		pos token.Position
		msg string
	}
	err = suite.Run(pkgs, suite.Analyzers(), framework.NewMemFacts(), func(f suite.Finding) {
		if !want[f.Pkg.Path] {
			return
		}
		diags = append(diags, struct {
			pos token.Position
			msg string
		}{f.Pkg.Fset.Position(f.Diag.Pos), f.Diag.Message})
	})
	if err != nil {
		fatal(err)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, d := range diags {
		pos := d.pos.String()
		if rel, ok := strings.CutPrefix(pos, cwd+string(os.PathSeparator)); ok {
			pos = rel
		}
		fmt.Fprintf(os.Stderr, "%s: %s\n", pos, d.msg)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "phasevet: %v\n", err)
	os.Exit(1)
}
