package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolEndToEnd builds the phasevet binary and drives it through
// the real `go vet -vettool` protocol against a scratch module that
// depends on phasehash: the go command probes -flags and -V=full, then
// feeds unit .cfg files, so this covers the whole unitvet path.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go tool")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "phasevet")
	if out, err := exec.Command("go", "build", "-o", tool, ".").CombinedOutput(); err != nil {
		t.Fatalf("building phasevet: %v\n%s", err, out)
	}

	fixture := filepath.Join(tmp, "fixture")
	if err := os.MkdirAll(fixture, 0o755); err != nil {
		t.Fatal(err)
	}
	gomod := `module fixture

go 1.22

require phasehash v0.0.0-00010101000000-000000000000

replace phasehash => ` + repoRoot + "\n"
	if err := os.WriteFile(filepath.Join(fixture, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := `package main

import "phasehash"

func main() {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	_ = s.Elements()
}
`
	if err := os.WriteFile(filepath.Join(fixture, "main.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}

	vet := func() (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = fixture
		out, err := cmd.CombinedOutput()
		return string(out), err
	}
	out, err := vet()
	if err == nil {
		t.Fatalf("go vet succeeded on a phase violation; output:\n%s", out)
	}
	if !strings.Contains(out, "phase violation") || !strings.Contains(out, "Elements result") {
		t.Fatalf("go vet output does not report the violation:\n%s", out)
	}

	good := `package main

import (
	"sync"

	"phasehash"
)

func main() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Insert(1)
	}()
	wg.Wait()
	_ = s.Elements()
}
`
	if err := os.WriteFile(filepath.Join(fixture, "main.go"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := vet(); err != nil {
		t.Fatalf("go vet failed on disciplined code: %v\n%s", err, out)
	}
}

// TestVettoolCrossPackageFacts drives `go vet -vettool` against a
// two-package scratch module: the wrapper helpers live in fixture/wrap
// and every table operation in main goes through them, so the
// violation is only visible if wrap's inferred phase effects travel to
// main's unit through the .vetx fact files. The "via Snapshot" text in
// the diagnostic proves the imported fact, not local analysis, fired.
func TestVettoolCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go tool")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "phasevet")
	if out, err := exec.Command("go", "build", "-o", tool, ".").CombinedOutput(); err != nil {
		t.Fatalf("building phasevet: %v\n%s", err, out)
	}

	fixture := filepath.Join(tmp, "fixture")
	if err := os.MkdirAll(filepath.Join(fixture, "wrap"), 0o755); err != nil {
		t.Fatal(err)
	}
	gomod := `module fixture

go 1.22

require phasehash v0.0.0-00010101000000-000000000000

replace phasehash => ` + repoRoot + "\n"
	if err := os.WriteFile(filepath.Join(fixture, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	wrap := `package wrap

import "phasehash"

// Fill runs a synchronous insert phase.
func Fill(s *phasehash.Set, vs []uint64) {
	for _, v := range vs {
		s.Insert(v)
	}
}

// Snapshot captures the element set.
func Snapshot(s *phasehash.Set) []uint64 {
	return s.Elements()
}
`
	if err := os.WriteFile(filepath.Join(fixture, "wrap", "wrap.go"), []byte(wrap), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := `package main

import (
	"fixture/wrap"

	"phasehash"
)

func main() {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	_ = wrap.Snapshot(s)
}
`
	if err := os.WriteFile(filepath.Join(fixture, "main.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}

	vet := func() (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = fixture
		out, err := cmd.CombinedOutput()
		return string(out), err
	}
	out, err := vet()
	if err == nil {
		t.Fatalf("go vet succeeded on a cross-package phase violation; output:\n%s", out)
	}
	if !strings.Contains(out, "phase violation") || !strings.Contains(out, "via Snapshot") {
		t.Fatalf("go vet output does not report the violation through the imported fact:\n%s", out)
	}

	good := `package main

import (
	"fixture/wrap"

	"phasehash"
)

func main() {
	s := phasehash.NewSet(64)
	wrap.Fill(s, []uint64{1, 2})
	_ = wrap.Snapshot(s)
}
`
	if err := os.WriteFile(filepath.Join(fixture, "main.go"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := vet(); err != nil {
		t.Fatalf("go vet failed on disciplined cross-package code: %v\n%s", err, out)
	}
}

// TestStandaloneCleanOnRepo runs the standalone (source-loading) mode
// over this repository, which must stay phase-clean.
func TestStandaloneCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "phasevet")
	if out, err := exec.Command("go", "build", "-o", tool, ".").CombinedOutput(); err != nil {
		t.Fatalf("building phasevet: %v\n%s", err, out)
	}
	cmd := exec.Command(tool, "./...")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("phasevet ./... reported findings or failed: %v\n%s", err, out)
	}
}
