package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, doc Doc) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffWarningTitleCarriesPercent(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Doc{Results: []Result{
		{Name: "InsertAll", NsPerOp: Stat{Mean: 100}},
		{Name: "FindAll", NsPerOp: Stat{Mean: 100}},
	}})
	newPath := writeDoc(t, dir, "new.json", Doc{Results: []Result{
		{Name: "InsertAll", NsPerOp: Stat{Mean: 150}},
		{Name: "FindAll", NsPerOp: Stat{Mean: 101}},
	}})
	var out strings.Builder
	diff(&out, oldPath, newPath, 10)
	got := out.String()
	if !strings.Contains(got, "::warning title=benchmark regression (+50.0%)::InsertAll:") {
		t.Errorf("warning title missing the percent delta:\n%s", got)
	}
	if strings.Contains(got, "::warning") && strings.Contains(got, "FindAll: mean") == false {
		t.Errorf("in-threshold row should be a plain delta line:\n%s", got)
	}
	if !strings.Contains(got, "1 row(s) regressed") {
		t.Errorf("missing regression summary:\n%s", got)
	}
}

// TestDiffToleratesMissingAndDegenerateRows pins the panic-free paths:
// a baseline row absent from the fresh run, a fresh row with no
// baseline, and a baseline row whose mean is zero must all produce
// informational lines, never warnings or a crash.
func TestDiffToleratesMissingAndDegenerateRows(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Doc{Results: []Result{
		{Name: "Retired", NsPerOp: Stat{Mean: 42}},
		{Name: "Degenerate", NsPerOp: Stat{Mean: 0}},
	}})
	newPath := writeDoc(t, dir, "new.json", Doc{Results: []Result{
		{Name: "Fresh", NsPerOp: Stat{Mean: 7}},
		{Name: "Degenerate", NsPerOp: Stat{Mean: 5}},
	}})
	var out strings.Builder
	diff(&out, oldPath, newPath, 10)
	got := out.String()
	for _, want := range []string{
		"new row Fresh: 7 ns/op (no baseline)",
		"skipped row Degenerate: baseline mean is 0 ns/op",
		"removed row Retired (was 42 ns/op)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "::warning") {
		t.Errorf("no row should warn here:\n%s", got)
	}
}

func TestAccumStatEmpty(t *testing.T) {
	var a accum
	if got := a.stat(); got != (Stat{}) {
		t.Fatalf("empty accum stat = %+v, want zero", got)
	}
}
