package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, doc Doc) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffWarningTitleCarriesPercent(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Doc{Results: []Result{
		{Name: "InsertAll", NsPerOp: Stat{Mean: 100}},
		{Name: "FindAll", NsPerOp: Stat{Mean: 100}},
	}})
	newPath := writeDoc(t, dir, "new.json", Doc{Results: []Result{
		{Name: "InsertAll", NsPerOp: Stat{Mean: 150}},
		{Name: "FindAll", NsPerOp: Stat{Mean: 101}},
	}})
	var out strings.Builder
	diff(&out, oldPath, newPath, 10)
	got := out.String()
	if !strings.Contains(got, "::warning title=benchmark regression (+50.0%)::InsertAll:") {
		t.Errorf("warning title missing the percent delta:\n%s", got)
	}
	if strings.Contains(got, "::warning") && strings.Contains(got, "FindAll: mean") == false {
		t.Errorf("in-threshold row should be a plain delta line:\n%s", got)
	}
	if !strings.Contains(got, "1 row(s) regressed") {
		t.Errorf("missing regression summary:\n%s", got)
	}
}

// TestDiffToleratesMissingAndDegenerateRows pins the panic-free paths:
// a baseline row absent from the fresh run, a fresh row with no
// baseline, and a baseline row whose mean is zero must all produce
// informational lines, never warnings or a crash.
func TestDiffToleratesMissingAndDegenerateRows(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Doc{Results: []Result{
		{Name: "Retired", NsPerOp: Stat{Mean: 42}},
		{Name: "Degenerate", NsPerOp: Stat{Mean: 0}},
	}})
	newPath := writeDoc(t, dir, "new.json", Doc{Results: []Result{
		{Name: "Fresh", NsPerOp: Stat{Mean: 7}},
		{Name: "Degenerate", NsPerOp: Stat{Mean: 5}},
	}})
	var out strings.Builder
	diff(&out, oldPath, newPath, 10)
	got := out.String()
	for _, want := range []string{
		"new row Fresh: 7 ns/op (no baseline)",
		"skipped row Degenerate: baseline mean is 0 ns/op",
		"removed row Retired (was 42 ns/op)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "::warning") {
		t.Errorf("no row should warn here:\n%s", got)
	}
}

// TestParseAggregatesEpochMetrics pins the conversion path end to end
// on a synthetic -bench stream: repeated runs fold into min/mean/max,
// and the epoch-server metrics (p50/p99 admit-to-complete, shed
// fraction) land in their Result fields alongside probes/op.
func TestParseAggregatesEpochMetrics(t *testing.T) {
	in := strings.NewReader(`goos: linux
goarch: amd64
pkg: phasehash/internal/epoch
BenchmarkEpochServerMixed 	   10000	       950 ns/op	       120 B/op	       2 allocs/op	       180.5 p50admit-us	      1200 p99admit-us	     0.25 shed/op
BenchmarkEpochServerMixed 	   10000	      1050 ns/op	       120 B/op	       2 allocs/op	       219.5 p50admit-us	      1400 p99admit-us	     0.75 shed/op
BenchmarkInsertAll 	     100	    500000 ns/op	      4096 elems/op	      10.00 bytes/elem	      1.50 probes/op
`)
	doc, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(doc.Results), doc.Results)
	}
	epoch := doc.Results[0]
	if epoch.Name != "EpochServerMixed" {
		t.Fatalf("results not sorted by name: %+v", doc.Results)
	}
	if epoch.Runs != 2 || epoch.NsPerOp.Mean != 1000 {
		t.Errorf("epoch row aggregation: runs=%d mean=%v, want 2 and 1000", epoch.Runs, epoch.NsPerOp.Mean)
	}
	if epoch.P50AdmitUs != 200 || epoch.P99AdmitUs != 1300 {
		t.Errorf("admit latency: p50=%v p99=%v, want 200 and 1300", epoch.P50AdmitUs, epoch.P99AdmitUs)
	}
	if epoch.ShedPerOp != 0.5 {
		t.Errorf("shed/op = %v, want 0.5", epoch.ShedPerOp)
	}
	core := doc.Results[1]
	if core.ProbesPerOp != 1.5 || core.ElemsPerOp != 4096 {
		t.Errorf("core row: probes=%v elems=%v", core.ProbesPerOp, core.ElemsPerOp)
	}
	if core.BytesPerElem != 10 {
		t.Errorf("bytes_per_elem = %v, want 10", core.BytesPerElem)
	}
	if core.P50AdmitUs != 0 || core.ShedPerOp != 0 {
		t.Errorf("core row picked up epoch metrics: %+v", core)
	}
	if doc.Pkg == "" || doc.Goos != "linux" {
		t.Errorf("header fields not captured: %+v", doc)
	}
}

// TestDiffGeomeanPerSuite pins the summary rows: variants of one
// benchmark fold into one per-suite geomean (a 2x regression and a 2x
// improvement cancel to 1.000x), flat names form their own suite, and
// an overall geomean covers every compared row. Rows without a
// baseline contribute nothing.
func TestDiffGeomeanPerSuite(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Doc{Results: []Result{
		{Name: "InsertAll/kind=a-8", NsPerOp: Stat{Mean: 100}},
		{Name: "InsertAll/kind=b-8", NsPerOp: Stat{Mean: 100}},
		{Name: "FindAll-8", NsPerOp: Stat{Mean: 100}},
	}})
	newPath := writeDoc(t, dir, "new.json", Doc{Results: []Result{
		{Name: "InsertAll/kind=a-8", NsPerOp: Stat{Mean: 200}},
		{Name: "InsertAll/kind=b-8", NsPerOp: Stat{Mean: 50}},
		{Name: "FindAll-8", NsPerOp: Stat{Mean: 110}},
		{Name: "Fresh-8", NsPerOp: Stat{Mean: 5}},
	}})
	var out strings.Builder
	diff(&out, oldPath, newPath, 1000)
	got := out.String()
	for _, want := range []string{
		"geomean InsertAll: 1.000x (+0.0%) over 2 row(s)",
		"geomean FindAll-8: 1.100x (+10.0%) over 1 row(s)",
		"geomean all: 1.032x (+3.2%) over 3 row(s)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}

// TestDiffReturnsGeomeanForGating pins the -fail -geomean contract:
// diff reports both the per-row regression count and the overall
// geomean delta, and opposite swings that individually breach the
// threshold cancel in the geomean — so the geomean gate passes a run
// the per-row gate would flake on.
func TestDiffReturnsGeomeanForGating(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Doc{Results: []Result{
		{Name: "InsertAll", NsPerOp: Stat{Mean: 100}},
		{Name: "FindAll", NsPerOp: Stat{Mean: 100}},
	}})
	newPath := writeDoc(t, dir, "new.json", Doc{Results: []Result{
		{Name: "InsertAll", NsPerOp: Stat{Mean: 105}},
		{Name: "FindAll", NsPerOp: Stat{Mean: 100.0 / 1.05}},
	}})
	var out strings.Builder
	regressions, geomeanPct := diff(&out, oldPath, newPath, 1)
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1 (only the +5%% row breaches)", regressions)
	}
	if geomeanPct > 0.01 || geomeanPct < -0.01 {
		t.Errorf("geomeanPct = %v, want ~0 (+5%% and -4.8%% cancel)", geomeanPct)
	}
}

func TestAccumStatEmpty(t *testing.T) {
	var a accum
	if got := a.stat(); got != (Stat{}) {
		t.Fatalf("empty accum stat = %+v, want zero", got)
	}
}
