// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout — the format of the committed
// BENCH_core.json baseline that `make benchbase` regenerates and CI
// uploads as an artifact. Repeated runs of one benchmark (-count=N)
// are aggregated into min/mean/max so baselines are diffable without a
// benchstat dependency.
//
// Usage:
//
//	go test -bench . -benchmem -count=5 ./internal/core | benchjson > BENCH_core.json
//
// With -diff it instead compares two such documents and annotates mean
// ns/op regressions beyond a threshold (default 10%) in the GitHub
// Actions `::warning` format, then summarizes each suite (benchmark
// name up to the first '/') with a geomean speedup row. The diff is informational by default —
// the exit status is 0 regardless — so CI can surface drift without
// turning benchmark noise into a blocking failure; add -fail to exit 1
// on any regression beyond the threshold, or -fail -geomean to exit 1
// only when the *overall geomean* regresses beyond it (used by the
// always-on-core overhead gate, where the threshold is a contract but
// single rows swing both ways with scheduler noise):
//
//	benchjson -diff BENCH_core.json new.json
//	benchjson -diff -threshold 25 BENCH_core.json new.json
//	benchjson -diff -fail -geomean -threshold 1 nostats.json live.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result aggregates every run of one benchmark name (including the
// -cpu suffix, so `BenchmarkInsertAll-2` and `BenchmarkInsertAll` are
// distinct rows).
type Result struct {
	Name       string  `json:"name"`
	Runs       int     `json:"runs"`
	NsPerOp    Stat    `json:"ns_per_op"`
	BytesOp    *Stat   `json:"bytes_per_op,omitempty"`
	AllocsOp   *Stat   `json:"allocs_per_op,omitempty"`
	ElemsPerOp float64 `json:"elems_per_op,omitempty"`

	// BytesPerElem is backing-array bytes over stored elements — the
	// memory column the compact-vs-flat table rows are compared on.
	BytesPerElem float64 `json:"bytes_per_elem,omitempty"`

	// Telemetry metrics reported by -tags obs benchmark runs
	// (b.ReportMetric in internal/core): mean and p99 probe length and
	// CAS retries, all per operation. Absent from untagged baselines.
	ProbesPerOp    float64 `json:"probes_per_op,omitempty"`
	P99ProbesPerOp float64 `json:"p99_probes_per_op,omitempty"`
	CASRetryPerOp  float64 `json:"cas_retry_per_op,omitempty"`

	// Epoch-server latency metrics reported by the internal/epoch
	// benchmarks: admit-to-complete latency quantiles in microseconds
	// and the fraction of offered ops shed at admission.
	P50AdmitUs float64 `json:"p50_admit_us,omitempty"`
	P99AdmitUs float64 `json:"p99_admit_us,omitempty"`
	ShedPerOp  float64 `json:"shed_per_op,omitempty"`
}

// Stat is a min/mean/max summary over the runs.
type Stat struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type accum struct{ vals []float64 }

func (a *accum) add(v float64) { a.vals = append(a.vals, v) }

func (a *accum) stat() Stat {
	if len(a.vals) == 0 {
		return Stat{}
	}
	s := Stat{Min: a.vals[0], Max: a.vals[0]}
	sum := 0.0
	for _, v := range a.vals {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(a.vals))
	return s
}

// Doc is the emitted JSON document.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	diffMode := flag.Bool("diff", false, "compare two benchjson documents (old new) instead of converting stdin")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent for -diff annotations")
	failOnRegress := flag.Bool("fail", false, "with -diff: exit 1 when any row regresses beyond the threshold (default is informational, always exit 0)")
	failGeomean := flag.Bool("geomean", false, "with -diff -fail: gate on the overall geomean instead of single rows — per-row deltas that swing both ways cancel, only a systematic regression fails")
	flag.Parse()
	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		regressions, geomeanPct := diff(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if *failOnRegress {
			if *failGeomean {
				if geomeanPct > *threshold {
					fmt.Printf("::warning title=geomean regression (%+.1f%%)::overall geomean exceeds the %.0f%% threshold\n", geomeanPct, *threshold)
					os.Exit(1)
				}
			} else if regressions > 0 {
				os.Exit(1)
			}
		}
		return
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse converts `go test -bench` output into the aggregated document.
func parse(in io.Reader) (Doc, error) {
	var doc Doc
	type row struct {
		ns, bytes, allocs, elems    *accum
		bytesElem                   *accum
		probes, p99probes, casretry *accum
		p50admit, p99admit, shed    *accum
	}
	rows := map[string]*row{}
	var order []string

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		name := f[0]
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		r := rows[name]
		if r == nil {
			r = &row{
				ns: &accum{}, bytes: &accum{}, allocs: &accum{}, elems: &accum{},
				bytesElem: &accum{},
				probes:    &accum{}, p99probes: &accum{}, casretry: &accum{},
				p50admit: &accum{}, p99admit: &accum{}, shed: &accum{},
			}
			rows[name] = r
			order = append(order, name)
		}
		r.ns.add(ns)
		// Optional unit pairs after ns/op: "N B/op", "N allocs/op",
		// custom metrics like "N elems/op".
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				r.bytes.add(v)
			case "allocs/op":
				r.allocs.add(v)
			case "elems/op":
				r.elems.add(v)
			case "bytes/elem":
				r.bytesElem.add(v)
			case "probes/op":
				r.probes.add(v)
			case "p99probes/op":
				r.p99probes.add(v)
			case "casretry/op":
				r.casretry.add(v)
			case "p50admit-us":
				r.p50admit.add(v)
			case "p99admit-us":
				r.p99admit.add(v)
			case "shed/op":
				r.shed.add(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}

	sort.Strings(order)
	for _, name := range order {
		r := rows[name]
		res := Result{
			Name:    strings.TrimPrefix(name, "Benchmark"),
			Runs:    len(r.ns.vals),
			NsPerOp: r.ns.stat(),
		}
		if len(r.bytes.vals) > 0 {
			s := r.bytes.stat()
			res.BytesOp = &s
		}
		if len(r.allocs.vals) > 0 {
			s := r.allocs.stat()
			res.AllocsOp = &s
		}
		if len(r.elems.vals) > 0 {
			res.ElemsPerOp = r.elems.stat().Mean
		}
		if len(r.bytesElem.vals) > 0 {
			res.BytesPerElem = r.bytesElem.stat().Mean
		}
		if len(r.probes.vals) > 0 {
			res.ProbesPerOp = r.probes.stat().Mean
		}
		if len(r.p99probes.vals) > 0 {
			res.P99ProbesPerOp = r.p99probes.stat().Mean
		}
		if len(r.casretry.vals) > 0 {
			res.CASRetryPerOp = r.casretry.stat().Mean
		}
		if len(r.p50admit.vals) > 0 {
			res.P50AdmitUs = r.p50admit.stat().Mean
		}
		if len(r.p99admit.vals) > 0 {
			res.P99AdmitUs = r.p99admit.stat().Mean
		}
		if len(r.shed.vals) > 0 {
			res.ShedPerOp = r.shed.stat().Mean
		}
		doc.Results = append(doc.Results, res)
	}
	return doc, nil
}

// diff compares two benchjson documents row by row (matched on name)
// and prints one line per common row: a GitHub Actions `::warning`
// annotation when the new mean ns/op regressed beyond threshold
// percent, a plain delta line otherwise. Rows present in only one
// document are listed but never warned about (new benchmarks appear,
// retired ones disappear; neither is a regression). After the rows it
// prints one geomean summary line per suite (the benchmark name up to
// its first '/', so every dist/kind/cpu variant folds into one ratio)
// plus an overall geomean — the per-row lines say which cell moved,
// the geomean rows say whether the change is systematic or noise.
// Returns the number of rows that regressed beyond the threshold and
// the overall geomean delta in percent; the caller decides whether
// either fails the run (-fail, -fail -geomean) or stays
// informational. The geomean gate exists for overhead contracts
// measured on noisy boxes: individual rows swing several percent in
// both directions run to run, but those swings cancel in the
// geomean, so only a cost paid by every row trips it.
func diff(w io.Writer, oldPath, newPath string, threshold float64) (int, float64) {
	oldDoc, err := readDoc(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	newDoc, err := readDoc(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	oldRows := map[string]Result{}
	for _, r := range oldDoc.Results {
		oldRows[r.Name] = r
	}
	regressions := 0
	ratios := map[string][]float64{}
	var suites []string
	for _, nr := range newDoc.Results {
		or, ok := oldRows[nr.Name]
		delete(oldRows, nr.Name)
		if !ok {
			fmt.Fprintf(w, "new row %s: %.0f ns/op (no baseline)\n", nr.Name, nr.NsPerOp.Mean)
			continue
		}
		if or.NsPerOp.Mean <= 0 {
			// A degenerate baseline row (zero or missing mean — e.g. a
			// truncated run, or a name that never produced ns/op) has no
			// meaningful delta. Note it rather than dividing by it.
			fmt.Fprintf(w, "skipped row %s: baseline mean is %.0f ns/op\n", nr.Name, or.NsPerOp.Mean)
			continue
		}
		suite := suiteOf(nr.Name)
		if _, seen := ratios[suite]; !seen {
			suites = append(suites, suite)
		}
		if nr.NsPerOp.Mean > 0 {
			ratios[suite] = append(ratios[suite], nr.NsPerOp.Mean/or.NsPerOp.Mean)
		}
		pct := (nr.NsPerOp.Mean - or.NsPerOp.Mean) / or.NsPerOp.Mean * 100
		if pct > threshold {
			regressions++
			// The percent delta goes in the annotation *title* so the
			// Actions UI summary line carries the magnitude without
			// expanding the message.
			fmt.Fprintf(w, "::warning title=benchmark regression (%+.1f%%)::%s: mean %.0f -> %.0f ns/op (threshold %.0f%%)\n",
				pct, nr.Name, or.NsPerOp.Mean, nr.NsPerOp.Mean, threshold)
		} else {
			fmt.Fprintf(w, "%s: mean %.0f -> %.0f ns/op (%+.1f%%)\n",
				nr.Name, or.NsPerOp.Mean, nr.NsPerOp.Mean, pct)
		}
	}
	var gone []string
	for name := range oldRows {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "removed row %s (was %.0f ns/op)\n", name, oldRows[name].NsPerOp.Mean)
	}
	sort.Strings(suites)
	var all []float64
	for _, suite := range suites {
		rs := ratios[suite]
		if len(rs) == 0 {
			continue
		}
		all = append(all, rs...)
		g := geomean(rs)
		fmt.Fprintf(w, "geomean %s: %.3fx (%+.1f%%) over %d row(s)\n", suite, g, (g-1)*100, len(rs))
	}
	if len(all) > 0 {
		g := geomean(all)
		fmt.Fprintf(w, "geomean all: %.3fx (%+.1f%%) over %d row(s)\n", g, (g-1)*100, len(all))
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d row(s) regressed beyond %.0f%%\n", regressions, threshold)
	}
	geomeanPct := 0.0
	if len(all) > 0 {
		geomeanPct = (geomean(all) - 1) * 100
	}
	return regressions, geomeanPct
}

// suiteOf returns the suite a row aggregates under in the geomean
// summary: the benchmark name up to the first '/'. Flat names (no
// sub-benchmark path) form single-row suites of their own.
func suiteOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// geomean returns the geometric mean of the ratios (exp of the mean
// log), the right average for new/old speedup factors: a 2x regression
// and a 2x improvement cancel to 1.0 instead of averaging to 1.25.
func geomean(rs []float64) float64 {
	sum := 0.0
	for _, r := range rs {
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(rs)))
}

// readDoc parses one benchjson document from disk.
func readDoc(path string) (Doc, error) {
	var doc Doc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}
