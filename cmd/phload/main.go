// Command phload regenerates Figure 5: nanoseconds per operation on
// linearHash-D as a function of the table's load factor (the paper uses
// a 2^27-cell table, pre-filled to each load before timing).
//
// Usage:
//
//	phload [-size 2097152] [-n 200000] [-loads 0.1,0.2,...] [-reps 1]
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"phasehash/internal/bench"
)

func main() {
	var (
		size  = flag.Int("size", 1<<21, "table size in cells (paper: 2^27)")
		n     = flag.Int("n", 200_000, "operations timed per point")
		loads = flag.String("loads", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,0.95", "comma-separated load factors")
		reps  = flag.Int("reps", 1, "repetitions (minimum reported)")
	)
	flag.Parse()

	ops := []bench.Op{bench.OpInsert, bench.OpFindRandom, bench.OpDeleteInserted, bench.OpElements}
	fmt.Printf("# Figure 5: ns per operation on linearHash-D, table size %d cells, %d ops per point\n", *size, *n)
	fmt.Printf("%-8s", "load")
	for _, op := range ops {
		fmt.Printf(" %16s", op)
	}
	fmt.Println()
	for _, part := range strings.Split(*loads, ",") {
		load, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || load <= 0 || load >= 1 {
			panic("phload: bad load factor " + part)
		}
		fmt.Printf("%-8.2f", load)
		for _, op := range ops {
			var best time.Duration
			for r := 0; r < *reps; r++ {
				t := bench.Figure5Point(op, load, *n, *size)
				if r == 0 || t < best {
					best = t
				}
			}
			den := float64(*n)
			if op == bench.OpElements {
				den = float64(*size) // elements scans the whole table
			}
			fmt.Printf(" %16.1f", float64(best.Nanoseconds())/den)
		}
		fmt.Println()
	}
}
