// Command phload regenerates Figure 5: nanoseconds per operation on
// linearHash-D as a function of the table's load factor (the paper uses
// a 2^27-cell table, pre-filled to each load before timing).
//
// Usage:
//
//	phload [-size 2097152] [-n 200000] [-loads 0.1,0.2,...] [-reps 1]
//
// With -chaos it instead soaks the cross-schedule determinism oracle:
// fresh seeds every round over the full distribution × worker × fault
// profile grid until -soak elapses, exiting 1 with a minimized repro on
// the first divergence. Build with -tags chaos to arm fault injection;
// without the tag the soak still varies schedules via worker counts.
//
//	go run -tags chaos ./cmd/phload -chaos -soak 5m
//
// With -obs addr (in a -tags obs build) it serves live telemetry while
// running: /debug/phasestats (counter snapshot), /debug/vars (expvar)
// and /debug/pprof for profiling a long soak.
//
//	go run -tags 'chaos obs' ./cmd/phload -chaos -soak 5m -obs localhost:6060
//
// With -server it soaks the epoch serving path instead: mixed
// concurrent Insert/Find/Delete/Elements traffic with per-request
// deadlines over TCP loopback against a self-hosted phserver (or an
// external one via -addr), exiting 1 on any transport failure,
// unexpected status, queue-bound violation, or failed drain.
//
//	go run ./cmd/phload -server -soak 30s -deadline 2ms -clients 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"phasehash/internal/bench"
	"phasehash/internal/chaos"
	"phasehash/internal/detres"
	"phasehash/internal/obs"
)

func main() {
	var (
		size      = flag.Int("size", 1<<21, "table size in cells (paper: 2^27)")
		n         = flag.Int("n", 200_000, "operations timed per point")
		loads     = flag.String("loads", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,0.95", "comma-separated load factors")
		reps      = flag.Int("reps", 1, "repetitions (minimum reported)")
		chaosMode = flag.Bool("chaos", false, "run the determinism chaos soak instead of Figure 5")
		soak      = flag.Duration("soak", 30*time.Second, "chaos soak duration")
		chaosN    = flag.Int("chaosn", 1<<12, "elements per oracle workload in chaos mode")
		obsAddr   = flag.String("obs", "", "serve /debug/phasestats, /debug/vars and /debug/pprof on this address while running (needs a -tags obs build)")

		serverMode = flag.Bool("server", false, "soak the epoch serving path over TCP loopback instead of Figure 5")
		addr       = flag.String("addr", "", "server soak: drive this external phserver instead of self-hosting")
		clients    = flag.Int("clients", 4, "server soak: concurrent client connections")
		window     = flag.Int("window", 64, "server soak: in-flight requests per client")
		deadline   = flag.Duration("deadline", 5*time.Millisecond, "server soak: per-request deadline (0 = none)")
		maxBatch   = flag.Int("maxbatch", 1024, "server soak: self-hosted epoch watermark")
		queue      = flag.Int("queue", 0, "server soak: self-hosted queue limit (0 = 4x maxbatch)")
		block      = flag.Bool("block", false, "server soak: self-hosted blocking admission")
		flushDelay = flag.Duration("flushdelay", 0, "server soak: self-hosted artificial epoch delay (overload experiments)")
		tuneOn     = flag.Bool("tune", false, "server soak: self-hosted adaptive flush-path tuner (internal/tune)")
	)
	flag.Parse()

	if *obsAddr != "" {
		addr, err := obs.Serve(*obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phload: -obs: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "phload: telemetry at http://%s/debug/phasestats\n", addr)
	}

	if *serverMode {
		serverSoak(serverSoakOpts{
			addr:       *addr,
			clients:    *clients,
			window:     *window,
			deadline:   *deadline,
			size:       *size,
			maxBatch:   *maxBatch,
			queue:      *queue,
			block:      *block,
			flushDelay: *flushDelay,
			tune:       *tuneOn,
			soak:       *soak,
		})
		return
	}

	if *chaosMode {
		chaosSoak(*chaosN, *soak)
		return
	}

	ops := []bench.Op{bench.OpInsert, bench.OpFindRandom, bench.OpDeleteInserted, bench.OpElements}
	fmt.Printf("# Figure 5: ns per operation on linearHash-D, table size %d cells, %d ops per point\n", *size, *n)
	fmt.Printf("%-8s", "load")
	for _, op := range ops {
		fmt.Printf(" %16s", op)
	}
	fmt.Println()
	for _, part := range strings.Split(*loads, ",") {
		load, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || load <= 0 || load >= 1 {
			panic("phload: bad load factor " + part)
		}
		fmt.Printf("%-8.2f", load)
		for _, op := range ops {
			var best time.Duration
			for r := 0; r < *reps; r++ {
				t := bench.Figure5Point(op, load, *n, *size)
				if r == 0 || t < best {
					best = t
				}
			}
			den := float64(*n)
			if op == bench.OpElements {
				den = float64(*size) // elements scans the whole table
			}
			fmt.Printf(" %16.1f", float64(best.Nanoseconds())/den)
		}
		fmt.Println()
	}
}

// chaosSoak replays the oracle grid with fresh seeds each round until
// the soak duration elapses. Any divergence is fatal: the minimized
// repro (seed, distribution, worker count, fault profile, site trace)
// is printed and the process exits 1 so CI marks the run red.
func chaosSoak(n int, d time.Duration) {
	fmt.Printf("# chaos soak: determinism oracle, n=%d per workload, %v; fault injection armed: %v\n",
		n, d, chaos.Enabled)
	if !chaos.Enabled {
		fmt.Println("# (build with -tags chaos to arm fault injection; schedules still vary via worker counts)")
	}
	runners := []detres.Runner{
		detres.WordRunner{Capacity: 4 * n},
		detres.GrowRunner{Initial: 64},
	}
	deadline := time.Now().Add(d)
	round := 0
	for time.Now().Before(deadline) {
		cfg := detres.DefaultOracleConfig(n)
		// Fresh seeds every round so a long soak explores new workloads
		// instead of re-verifying the same grid.
		seeds := make([]uint64, len(cfg.Seeds))
		for i := range seeds {
			seeds[i] = uint64(round*len(cfg.Seeds)+i) + 1
		}
		cfg.Seeds = seeds
		cells := len(cfg.Dists) * len(cfg.Seeds) * len(cfg.Workers) * len(cfg.Profiles)
		for _, r := range runners {
			if div := detres.RunOracle(r, cfg); div != nil {
				fmt.Println("DETERMINISM DIVERGENCE")
				fmt.Println(div.Error())
				os.Exit(1)
			}
		}
		round++
		fmt.Printf("round %d ok: seeds [%d,%d], %d cells per runner\n", round, seeds[0], seeds[len(seeds)-1], cells)
	}
	fmt.Printf("# chaos soak passed: %d rounds, no divergence\n", round)
}
