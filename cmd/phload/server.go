package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phasehash/internal/core"
	"phasehash/internal/epoch"
	"phasehash/internal/obs"
)

// serverSoakOpts carries the -server soak mode knobs from main.
type serverSoakOpts struct {
	addr       string        // external phserver; empty = self-host on loopback
	clients    int           // concurrent client connections
	window     int           // in-flight requests per client
	deadline   time.Duration // per-request deadline (0 = none)
	size       int           // self-hosted table capacity
	maxBatch   int           // self-hosted epoch watermark
	queue      int           // self-hosted admission queue limit
	block      bool          // self-hosted blocking admission
	flushDelay time.Duration // self-hosted artificial epoch delay
	tune       bool          // self-hosted adaptive flush-path tuner
	soak       time.Duration
}

// soakTallies aggregates per-status response counts across clients,
// plus submit-to-complete latencies of the ops that completed (so the
// overload experiments can report p50/p99 alongside goodput and shed
// counts).
type soakTallies struct {
	ok, miss, overloaded, deadline, full, cancelled, closed, other atomic.Uint64

	mu        sync.Mutex
	latencies []time.Duration
}

func (tl *soakTallies) count(res epoch.Result, lat time.Duration) {
	switch {
	case res.Err == nil && res.OK:
		tl.ok.Add(1)
	case res.Err == nil:
		tl.miss.Add(1)
	case errors.Is(res.Err, epoch.ErrOverloaded):
		tl.overloaded.Add(1)
	case errors.Is(res.Err, context.DeadlineExceeded):
		tl.deadline.Add(1)
	case errors.Is(res.Err, core.ErrFull):
		tl.full.Add(1)
	case errors.Is(res.Err, context.Canceled):
		tl.cancelled.Add(1)
	case errors.Is(res.Err, epoch.ErrClosed):
		tl.closed.Add(1)
	default:
		tl.other.Add(1)
	}
	if res.Err == nil {
		tl.mu.Lock()
		tl.latencies = append(tl.latencies, lat)
		tl.mu.Unlock()
	}
}

// quantiles returns p50/p99 submit-to-complete latency over the
// completed ops (zeroes if none completed).
func (tl *soakTallies) quantiles() (p50, p99 time.Duration, n int) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if len(tl.latencies) == 0 {
		return 0, 0, 0
	}
	sort.Slice(tl.latencies, func(i, j int) bool { return tl.latencies[i] < tl.latencies[j] })
	return tl.latencies[len(tl.latencies)/2], tl.latencies[len(tl.latencies)*99/100], len(tl.latencies)
}

// serverSoak drives a phserver over TCP with mixed concurrent traffic
// under per-request deadlines for the soak duration, then (for a
// self-hosted server) drains it and cross-checks the table against an
// Elements round trip. Any transport failure or unexpected status is
// fatal: the soak exists to prove the serving path degrades cleanly,
// not just that it is fast.
func serverSoak(o serverSoakOpts) {
	var (
		srv      *epoch.Server
		serveErr = make(chan error, 1)
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr := o.addr
	if addr == "" {
		srv = epoch.NewServer(epoch.Config{
			Size:          o.size,
			MaxBatch:      o.maxBatch,
			QueueLimit:    o.queue,
			FlushInterval: time.Millisecond,
			Block:         o.block,
			FlushDelay:    o.flushDelay,
			Tune:          o.tune,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "phload: -server listen: %v\n", err)
			os.Exit(1)
		}
		addr = ln.Addr().String()
		go func() { serveErr <- epoch.Serve(ctx, ln, srv) }()
		fmt.Printf("# server soak: self-hosted phserver on %s (size=%d maxbatch=%d queue=%d block=%v flushdelay=%v)\n",
			addr, o.size, o.maxBatch, o.queue, o.block, o.flushDelay)
	} else {
		fmt.Printf("# server soak: driving external phserver at %s\n", addr)
	}
	fmt.Printf("# %d clients x %d in-flight, per-request deadline %v, %v\n", o.clients, o.window, o.deadline, o.soak)

	var (
		tallies  soakTallies
		fatalErr atomic.Value
		wg       sync.WaitGroup
	)
	stop := make(chan struct{})
	for cl := 0; cl < o.clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			if err := soakClient(addr, cl, o, stop, &tallies); err != nil {
				fatalErr.CompareAndSwap(nil, err)
			}
		}(cl)
	}
	time.Sleep(o.soak)
	close(stop)
	wg.Wait()

	if srv != nil {
		// Graceful shutdown: stop accepting, drain in-flight epochs.
		cancel()
		if err := <-serveErr; err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "phload: serve: %v\n", err)
			os.Exit(1)
		}
		drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer drainCancel()
		if err := srv.Close(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "phload: server drain: %v\n", err)
			os.Exit(1)
		}
	}

	total := tallies.ok.Load() + tallies.miss.Load() + tallies.overloaded.Load() +
		tallies.deadline.Load() + tallies.full.Load() + tallies.cancelled.Load() + tallies.closed.Load()
	fmt.Printf("responses: %d total; ok=%d miss=%d shed(overload=%d deadline=%d) full=%d cancelled=%d closed=%d\n",
		total, tallies.ok.Load(), tallies.miss.Load(), tallies.overloaded.Load(),
		tallies.deadline.Load(), tallies.full.Load(), tallies.cancelled.Load(), tallies.closed.Load())
	if p50, p99, n := tallies.quantiles(); n > 0 {
		fmt.Printf("latency: p50=%v p99=%v over %d completed ops (%.0f ops/s goodput)\n",
			p50.Round(time.Microsecond), p99.Round(time.Microsecond), n, float64(n)/o.soak.Seconds())
	}
	if srv != nil {
		st := srv.Stats()
		fmt.Printf("server: admitted=%d epochs=%d splits=%d flushed=%d maxqueue=%d count=%d\n",
			st.Admitted, st.Epochs, st.Splits, st.FlushedOps, st.MaxQueue, srv.Table().Count())
		fmt.Printf("server: op mix insert=%d delete=%d read=%d; shard imbalance gauge %d pm (always-on counter core)\n",
			st.InsertOps, st.DeleteOps, st.ReadOps, obs.CoreMaxShardImbalancePm())
		if o.tune {
			fmt.Printf("tuner: %d decision(s) recorded\n", st.TuneSwitches)
			// The server is drained and closed: TuneTrace's quiescent-read
			// contract holds.
			if trace := srv.TuneTrace(); trace != "" {
				fmt.Print(trace)
			}
		}
		if st.MaxQueue > o.queueLimitEffective() {
			fmt.Fprintf(os.Stderr, "phload: FAIL: queue depth %d exceeded limit %d\n", st.MaxQueue, o.queueLimitEffective())
			os.Exit(1)
		}
	}
	if err, _ := fatalErr.Load().(error); err != nil {
		fmt.Fprintf(os.Stderr, "phload: FAIL: %v\n", err)
		os.Exit(1)
	}
	if n := tallies.other.Load(); n != 0 {
		fmt.Fprintf(os.Stderr, "phload: FAIL: %d responses with unexpected status\n", n)
		os.Exit(1)
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "phload: FAIL: soak produced no responses")
		os.Exit(1)
	}
	fmt.Println("# server soak passed")
}

// queueLimitEffective mirrors epoch.Config's QueueLimit default.
func (o serverSoakOpts) queueLimitEffective() int {
	if o.queue > 0 {
		return o.queue
	}
	return 4 * o.maxBatch
}

// soakClient runs one connection's mixed-op pipeline until stop
// closes. The op mix is deterministic per client id; keys stay in a
// modest range so finds hit and deletes contend with inserts.
func soakClient(addr string, id int, o serverSoakOpts, stop <-chan struct{}, tl *soakTallies) error {
	c, err := epoch.Dial(addr)
	if err != nil {
		return fmt.Errorf("client %d: dial: %w", id, err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
	type pending struct {
		f  *epoch.ClientFuture
		t0 time.Time
	}
	inflight := make([]pending, 0, o.window)
	// settle tallies resolved futures; with block it drains them all.
	settle := func(block bool) {
		kept := inflight[:0]
		for _, p := range inflight {
			if block {
				<-p.f.Done()
			}
			select {
			case <-p.f.Done():
				tl.count(p.f.Result(), time.Since(p.t0))
			default:
				kept = append(kept, p)
			}
		}
		inflight = kept
	}
	for {
		select {
		case <-stop:
			settle(true)
			return nil
		default:
		}
		var op epoch.Op
		switch p := rng.Intn(100); {
		case p < 50:
			op = epoch.OpInsert
		case p < 75:
			op = epoch.OpFind
		case p < 99:
			op = epoch.OpDelete
		default:
			op = epoch.OpElements
		}
		key := uint64(rng.Intn(1<<16) + 1)
		t0 := time.Now()
		f, err := c.Do(op, key, o.deadline)
		if err != nil {
			// The transport died mid-soak: fatal unless we're stopping.
			select {
			case <-stop:
				return nil
			default:
				return fmt.Errorf("client %d: %w", id, err)
			}
		}
		inflight = append(inflight, pending{f, t0})
		if len(inflight) >= o.window {
			<-inflight[0].f.Done()
			settle(false)
		}
	}
}
