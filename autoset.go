package phasehash

import (
	"phasehash/internal/rooms"
)

// AutoSet wraps a deterministic Set with room synchronization (Blelloch,
// Cheng & Gibbons 2003), realizing the automatic phase separation the
// paper's conclusion proposes as future work: goroutines may call any
// operation at any time; the rooms serialize *phases* dynamically while
// still admitting full concurrency within each phase. Three rooms —
// insert, delete, read — rotate fairly, so no operation class starves.
//
// Safety is unconditional (operations of different types never overlap).
// Determinism, however, is weaker than Set's: the grouping of operations
// into phases now depends on arrival timing, so programs mixing
// non-commuting operations (inserts with deletes of the same keys) get
// timing-dependent results — the same caveat the paper attaches to any
// scheme that infers phases dynamically. Programs that only mix
// commuting operations (or that drain one class before issuing another)
// keep the full guarantee.
type AutoSet struct {
	s *Set
	r *rooms.Rooms
}

// Room ids for AutoSet's three operation classes.
const (
	roomInsert = iota
	roomDelete
	roomRead
	numRooms
)

// NewAutoSet returns an AutoSet with the given capacity.
func NewAutoSet(capacity int) *AutoSet {
	return &AutoSet{s: NewSet(capacity), r: rooms.New(numRooms)}
}

// Insert adds k; callable concurrently with any other AutoSet operation.
func (a *AutoSet) Insert(k uint64) bool {
	a.r.Enter(roomInsert)
	defer a.r.Exit(roomInsert)
	return a.s.Insert(k)
}

// Delete removes k; callable concurrently with any other operation.
func (a *AutoSet) Delete(k uint64) bool {
	a.r.Enter(roomDelete)
	defer a.r.Exit(roomDelete)
	return a.s.Delete(k)
}

// Contains reports membership; callable concurrently with any other
// operation.
func (a *AutoSet) Contains(k uint64) bool {
	a.r.Enter(roomRead)
	defer a.r.Exit(roomRead)
	return a.s.Contains(k)
}

// Elements returns the contents; deterministic for a fixed key set.
func (a *AutoSet) Elements() []uint64 {
	a.r.Enter(roomRead)
	defer a.r.Exit(roomRead)
	return a.s.Elements()
}

// Count returns the key count.
func (a *AutoSet) Count() int {
	a.r.Enter(roomRead)
	defer a.r.Exit(roomRead)
	return a.s.Count()
}
