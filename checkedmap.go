package phasehash

import "phasehash/internal/core"

// This file gives every public phase-disciplined container a
// runtime-checked twin, matching CheckedSet (checked.go). The phasevet
// static analyzer suggests these wrappers by name in its diagnostics;
// AutoSet needs no twin because its room synchronization already makes
// any interleaving safe.

// CheckedMap32 wraps a Map32 with a runtime phase-discipline detector:
// any operation that overlaps in time with an operation from a
// different phase panics with a diagnostic.
type CheckedMap32 struct {
	m     *Map32
	guard core.PhaseGuard
}

// NewCheckedMap32 wraps m with phase checking.
func NewCheckedMap32(m *Map32) *CheckedMap32 { return &CheckedMap32{m: m} }

func (c *CheckedMap32) enter(p core.Phase) {
	if err := c.guard.Enter(p); err != nil {
		panic(err)
	}
}

// Insert is Map32.Insert with phase checking.
func (c *CheckedMap32) Insert(k, v uint32) bool {
	c.enter(core.PhaseInsert)
	defer c.guard.Exit(core.PhaseInsert)
	return c.m.Insert(k, v)
}

// TryInsert is Map32.TryInsert with phase checking.
func (c *CheckedMap32) TryInsert(k, v uint32) (bool, error) {
	c.enter(core.PhaseInsert)
	defer c.guard.Exit(core.PhaseInsert)
	return c.m.TryInsert(k, v)
}

// Delete is Map32.Delete with phase checking.
func (c *CheckedMap32) Delete(k uint32) bool {
	c.enter(core.PhaseDelete)
	defer c.guard.Exit(core.PhaseDelete)
	return c.m.Delete(k)
}

// Find is Map32.Find with phase checking.
func (c *CheckedMap32) Find(k uint32) (uint32, bool) {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.m.Find(k)
}

// Entries is Map32.Entries with phase checking.
func (c *CheckedMap32) Entries() []Entry {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.m.Entries()
}

// Count is Map32.Count with phase checking.
func (c *CheckedMap32) Count() int {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.m.Count()
}

// Unwrap returns the underlying Map32.
func (c *CheckedMap32) Unwrap() *Map32 { return c.m }

// CheckedStringMap wraps a StringMap with a runtime phase-discipline
// detector.
type CheckedStringMap struct {
	m     *StringMap
	guard core.PhaseGuard
}

// NewCheckedStringMap wraps m with phase checking.
func NewCheckedStringMap(m *StringMap) *CheckedStringMap { return &CheckedStringMap{m: m} }

func (c *CheckedStringMap) enter(p core.Phase) {
	if err := c.guard.Enter(p); err != nil {
		panic(err)
	}
}

// Insert is StringMap.Insert with phase checking.
func (c *CheckedStringMap) Insert(k string, v uint64) bool {
	c.enter(core.PhaseInsert)
	defer c.guard.Exit(core.PhaseInsert)
	return c.m.Insert(k, v)
}

// TryInsert is StringMap.TryInsert with phase checking.
func (c *CheckedStringMap) TryInsert(k string, v uint64) (bool, error) {
	c.enter(core.PhaseInsert)
	defer c.guard.Exit(core.PhaseInsert)
	return c.m.TryInsert(k, v)
}

// Delete is StringMap.Delete with phase checking.
func (c *CheckedStringMap) Delete(k string) bool {
	c.enter(core.PhaseDelete)
	defer c.guard.Exit(core.PhaseDelete)
	return c.m.Delete(k)
}

// Find is StringMap.Find with phase checking.
func (c *CheckedStringMap) Find(k string) (uint64, bool) {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.m.Find(k)
}

// Entries is StringMap.Entries with phase checking.
func (c *CheckedStringMap) Entries() []StringEntry {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.m.Entries()
}

// Count is StringMap.Count with phase checking.
func (c *CheckedStringMap) Count() int {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.m.Count()
}

// Unwrap returns the underlying StringMap.
func (c *CheckedStringMap) Unwrap() *StringMap { return c.m }

// CheckedGrowSet wraps a GrowSet with a runtime phase-discipline
// detector.
type CheckedGrowSet struct {
	s     *GrowSet
	guard core.PhaseGuard
}

// NewCheckedGrowSet wraps s with phase checking.
func NewCheckedGrowSet(s *GrowSet) *CheckedGrowSet { return &CheckedGrowSet{s: s} }

func (c *CheckedGrowSet) enter(p core.Phase) {
	if err := c.guard.Enter(p); err != nil {
		panic(err)
	}
}

// Insert is GrowSet.Insert with phase checking.
func (c *CheckedGrowSet) Insert(k uint64) bool {
	c.enter(core.PhaseInsert)
	defer c.guard.Exit(core.PhaseInsert)
	return c.s.Insert(k)
}

// TryInsert is GrowSet.TryInsert with phase checking.
func (c *CheckedGrowSet) TryInsert(k uint64) (bool, error) {
	c.enter(core.PhaseInsert)
	defer c.guard.Exit(core.PhaseInsert)
	return c.s.TryInsert(k)
}

// Delete is GrowSet.Delete with phase checking.
func (c *CheckedGrowSet) Delete(k uint64) bool {
	c.enter(core.PhaseDelete)
	defer c.guard.Exit(core.PhaseDelete)
	return c.s.Delete(k)
}

// Contains is GrowSet.Contains with phase checking.
func (c *CheckedGrowSet) Contains(k uint64) bool {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.s.Contains(k)
}

// Elements is GrowSet.Elements with phase checking.
func (c *CheckedGrowSet) Elements() []uint64 {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.s.Elements()
}

// Count is GrowSet.Count with phase checking.
func (c *CheckedGrowSet) Count() int {
	c.enter(core.PhaseRead)
	defer c.guard.Exit(core.PhaseRead)
	return c.s.Count()
}

// Unwrap returns the underlying GrowSet.
func (c *CheckedGrowSet) Unwrap() *GrowSet { return c.s }
