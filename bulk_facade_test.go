package phasehash

import (
	"errors"
	"testing"
)

// The facade bulk tests check the public bulk methods agree with
// per-element loops on every container; the layout-level byte identity
// is enforced in internal/core and internal/detres.

func TestSetBulk(t *testing.T) {
	n := 10000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i%(n/2) + 1) // half duplicates
	}
	bulk := NewSet(2 * n)
	perElem := NewSet(2 * n)
	added := bulk.InsertAll(keys)
	want := 0
	for _, k := range keys {
		if perElem.Insert(k) {
			want++
		}
	}
	if added != want {
		t.Fatalf("InsertAll added %d, per-element %d", added, want)
	}
	be, pe := bulk.Elements(), perElem.Elements()
	for i := range pe {
		if be[i] != pe[i] {
			t.Fatalf("Elements[%d]: bulk %d, per-element %d", i, be[i], pe[i])
		}
	}
	if got := bulk.ContainsAll(keys); got != n {
		t.Fatalf("ContainsAll = %d, want %d", got, n)
	}
	if got := bulk.ContainsAll([]uint64{uint64(n + 1), uint64(n + 2)}); got != 0 {
		t.Fatalf("ContainsAll absent = %d", got)
	}
	if got := bulk.DeleteAll(keys[:n/4]); got == 0 {
		t.Fatal("DeleteAll removed nothing")
	}
	if _, err := bulk.TryInsertAll([]uint64{0}); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("TryInsertAll(0) err = %v", err)
	}
}

func TestMap32Bulk(t *testing.T) {
	for _, policy := range []Combine{KeepMin, KeepMax, Sum} {
		n := 5000
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: uint32(i%(n/2) + 1), Value: uint32(i + 1)}
		}
		bulk := NewMap32(2*n, policy)
		perElem := NewMap32(2*n, policy)
		added := bulk.InsertAll(entries)
		want := 0
		for _, e := range entries {
			if perElem.Insert(e.Key, e.Value) {
				want++
			}
		}
		if added != want {
			t.Fatalf("policy %d: InsertAll added %d, per-element %d", policy, added, want)
		}
		be, pe := bulk.Entries(), perElem.Entries()
		if len(be) != len(pe) {
			t.Fatalf("policy %d: Entries lengths %d vs %d", policy, len(be), len(pe))
		}
		for i := range pe {
			if be[i] != pe[i] {
				t.Fatalf("policy %d: Entries[%d]: bulk %+v, per-element %+v", policy, i, be[i], pe[i])
			}
		}

		keys := make([]uint32, n/2+1)
		for i := range keys {
			keys[i] = uint32(i + 1) // last one absent for n/2 distinct keys? all present except none
		}
		keys[n/2] = uint32(n) + 7 // absent
		vals := make([]uint32, len(keys))
		found := bulk.FindAll(keys, vals)
		if found != n/2 {
			t.Fatalf("policy %d: FindAll found %d, want %d", policy, found, n/2)
		}
		for i := 0; i < n/2; i++ {
			v, ok := perElem.Find(keys[i])
			if !ok || vals[i] != v {
				t.Fatalf("policy %d: FindAll vals[%d] = %d, Find = %d (%v)", policy, i, vals[i], v, ok)
			}
		}
		if vals[n/2] != 0 {
			t.Fatalf("policy %d: absent key wrote %d", policy, vals[n/2])
		}

		if got := bulk.DeleteAll(keys[:10]); got != 10 {
			t.Fatalf("policy %d: DeleteAll = %d, want 10", policy, got)
		}
		if _, err := bulk.TryInsertAll([]Entry{{Key: 0, Value: 1}}); !errors.Is(err, ErrReservedKey) {
			t.Fatalf("policy %d: TryInsertAll(key 0) err = %v", policy, err)
		}
	}
}

func TestStringMapBulk(t *testing.T) {
	for _, policy := range []Combine{KeepMin, Sum} {
		words := []string{"the", "quick", "brown", "fox", "the", "lazy", "dog", "the"}
		vals := make([]uint64, len(words))
		for i := range vals {
			vals[i] = 1
		}
		bulk := NewStringMap(64, policy)
		perElem := NewStringMap(64, policy)
		added := bulk.InsertAll(words, vals)
		want := 0
		for i, w := range words {
			if perElem.Insert(w, vals[i]) {
				want++
			}
		}
		if added != want {
			t.Fatalf("policy %d: InsertAll added %d, per-element %d", policy, added, want)
		}
		be, pe := bulk.Entries(), perElem.Entries()
		if len(be) != len(pe) {
			t.Fatalf("policy %d: Entries lengths differ", policy)
		}
		for i := range pe {
			if be[i] != pe[i] {
				t.Fatalf("policy %d: Entries[%d]: bulk %+v, per-element %+v", policy, i, be[i], pe[i])
			}
		}

		probe := []string{"the", "fox", "unicorn"}
		got := make([]uint64, len(probe))
		if found := bulk.FindAll(probe, got); found != 2 {
			t.Fatalf("policy %d: FindAll found %d, want 2", policy, found)
		}
		if v, _ := bulk.Find("the"); got[0] != v {
			t.Fatalf("policy %d: FindAll[the] = %d, Find = %d", policy, got[0], v)
		}
		if got[2] != 0 {
			t.Fatalf("policy %d: absent key wrote %d", policy, got[2])
		}
		if n := bulk.DeleteAll([]string{"the", "unicorn"}); n != 1 {
			t.Fatalf("policy %d: DeleteAll = %d, want 1", policy, n)
		}

		if _, err := bulk.TryInsertAll([]string{"a"}, nil); err == nil {
			t.Fatalf("policy %d: mismatched lengths accepted", policy)
		}
	}
}

func TestGrowSetBulk(t *testing.T) {
	n := 20000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i%(n/2) + 1)
	}
	bulk := NewGrowSet(16)
	perElem := NewGrowSet(16)
	added := bulk.InsertAll(keys)
	want := 0
	for _, k := range keys {
		if perElem.Insert(k) {
			want++
		}
	}
	if added != want {
		t.Fatalf("InsertAll added %d, per-element %d", added, want)
	}
	be, pe := bulk.Elements(), perElem.Elements()
	if len(be) != len(pe) {
		t.Fatalf("Elements lengths %d vs %d", len(be), len(pe))
	}
	for i := range pe {
		if be[i] != pe[i] {
			t.Fatalf("Elements[%d]: bulk %d, per-element %d", i, be[i], pe[i])
		}
	}
	if got := bulk.ContainsAll(keys); got != n {
		t.Fatalf("ContainsAll = %d, want %d", got, n)
	}
	if got := bulk.DeleteAll(keys[:100]); got != 100 {
		t.Fatalf("DeleteAll = %d", got)
	}
	if _, err := bulk.TryInsertAll([]uint64{0}); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("TryInsertAll(0) err = %v", err)
	}
}
