// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6). Each BenchmarkTableN/BenchmarkFigureN family
// maps to one table or figure; the cmd/ drivers print the same data in
// the paper's layout. Sizes are scaled for CI-class machines and can be
// raised with -benchtime and the PHB_N environment variable.
//
//	go test -bench . -benchmem
package phasehash

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"phasehash/internal/apps/dedup"
	"phasehash/internal/bench"
	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

// benchN is the element count used by the operation benchmarks
// (override with PHB_N; the paper uses 10^8).
func benchN() int {
	if s := os.Getenv("PHB_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 400_000
}

func benchSize(n int) int {
	m := 1
	for m < n*8/3 {
		m <<= 1
	}
	return m
}

// table1Dists is the distribution subset exercised per-op in the
// benchmark suite (all six are available through cmd/phbench).
var table1Dists = []sequence.Distribution{
	sequence.RandomInt,
	sequence.RandomPairInt,
	sequence.TrigramPairInt,
	sequence.ExptInt,
}

func benchTable1(b *testing.B, op bench.Op) {
	n := benchN()
	size := benchSize(n)
	for _, d := range table1Dists {
		for _, kind := range tables.Kinds {
			b.Run(fmt.Sprintf("%s/%s", d, kind), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					t := bench.Table1Cell(kind, d, op, n, size)
					b.ReportMetric(t.Seconds()*1e9/float64(n), "ns/elem")
				}
			})
		}
	}
}

// BenchmarkTable1a reproduces Table 1(a): Insert.
func BenchmarkTable1a_Insert(b *testing.B) { benchTable1(b, bench.OpInsert) }

// BenchmarkTable1b reproduces Table 1(b): Find Random.
func BenchmarkTable1b_FindRandom(b *testing.B) { benchTable1(b, bench.OpFindRandom) }

// BenchmarkTable1c reproduces Table 1(c): Find Inserted.
func BenchmarkTable1c_FindInserted(b *testing.B) { benchTable1(b, bench.OpFindInserted) }

// BenchmarkTable1d reproduces Table 1(d): Delete Random.
func BenchmarkTable1d_DeleteRandom(b *testing.B) { benchTable1(b, bench.OpDeleteRandom) }

// BenchmarkTable1e reproduces Table 1(e): Delete Inserted.
func BenchmarkTable1e_DeleteInserted(b *testing.B) { benchTable1(b, bench.OpDeleteInserted) }

// BenchmarkTable1f reproduces Table 1(f): Elements.
func BenchmarkTable1f_Elements(b *testing.B) { benchTable1(b, bench.OpElements) }

// BenchmarkTable1Strings measures linearHash-D on true string elements
// (pointer table) for the trigramSeq-pairInt column — the paper's
// actual representation for that input.
func BenchmarkTable1Strings(b *testing.B) {
	n := benchN()
	size := benchSize(n)
	for _, op := range []bench.Op{bench.OpInsert, bench.OpFindRandom, bench.OpDeleteRandom, bench.OpElements} {
		b.Run(string(op), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := bench.Table1CellStrings(op, n, size)
				b.ReportMetric(t.Seconds()*1e9/float64(n), "ns/elem")
			}
		})
	}
}

// BenchmarkTable2 reproduces Table 2: random writes vs conditional
// writes vs deterministic hash insertion, sequential and parallel.
func BenchmarkTable2_Scatter(b *testing.B) {
	n := benchN()
	size := benchSize(n)
	for _, row := range bench.Table2Rows {
		for _, par := range []bool{false, true} {
			mode := "serial"
			if par {
				mode = "parallel"
			}
			b.Run(fmt.Sprintf("%s/%s", row, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					t := bench.Table2Cell(row, n, size, par)
					b.ReportMetric(t.Seconds()*1e9/float64(n), "ns/op-elem")
				}
			})
		}
	}
}

// BenchmarkFigure3 reproduces Figure 3's two panels: the parallel
// operation times across table kinds on randomSeq-int (a) and
// trigramSeq-pairInt (b).
func BenchmarkFigure3(b *testing.B) {
	n := benchN()
	size := benchSize(n)
	panels := map[string]sequence.Distribution{
		"a_randomSeq-int":      sequence.RandomInt,
		"b_trigramSeq-pairInt": sequence.TrigramPairInt,
	}
	for name, d := range panels {
		for _, kind := range tables.ParallelKinds {
			for _, op := range []bench.Op{bench.OpInsert, bench.OpFindRandom, bench.OpDeleteRandom, bench.OpElements} {
				b.Run(fmt.Sprintf("%s/%s/%s", name, kind, op), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						bench.Table1Cell(kind, d, op, n, size)
					}
				})
			}
		}
	}
}

// BenchmarkFigure4 reproduces Figure 4: linearHash-D speedup over
// serialHash-HI as worker count varies.
func BenchmarkFigure4_Scaling(b *testing.B) {
	n := benchN()
	size := benchSize(n)
	threads := []int{1, 2}
	if p := os.Getenv("PHB_THREADS"); p != "" {
		if v, err := strconv.Atoi(p); err == nil {
			threads = append(threads, v)
		}
	}
	for _, d := range []sequence.Distribution{sequence.RandomInt, sequence.TrigramPairInt} {
		for _, op := range []bench.Op{bench.OpInsert, bench.OpFindRandom, bench.OpDeleteRandom, bench.OpElements} {
			for _, p := range threads {
				b.Run(fmt.Sprintf("%s/%s/p=%d", d, op, p), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						par, ser := bench.Figure4Point(d, op, n, size, p)
						b.ReportMetric(ser.Seconds()/par.Seconds(), "speedup")
					}
				})
			}
		}
	}
}

// BenchmarkFigure5 reproduces Figure 5: per-operation cost vs load
// factor on linearHash-D.
func BenchmarkFigure5_LoadFactor(b *testing.B) {
	size := 1 << 20
	n := 50_000
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.95} {
		for _, op := range []bench.Op{bench.OpInsert, bench.OpFindRandom, bench.OpDeleteInserted, bench.OpElements} {
			b.Run(fmt.Sprintf("load=%.2f/%s", load, op), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					t := bench.Figure5Point(op, load, n, size)
					b.ReportMetric(float64(t.Nanoseconds())/float64(n), "ns/elem")
				}
			})
		}
	}
}

// BenchmarkTable3 reproduces Table 3: remove duplicates.
func BenchmarkTable3_RemoveDuplicates(b *testing.B) {
	n := benchN()
	for _, d := range []sequence.Distribution{sequence.RandomInt, sequence.TrigramPairInt, sequence.ExptInt} {
		for _, kind := range bench.AppKinds {
			b.Run(fmt.Sprintf("%s/%s", d, kind), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.Table3(kind, d, n)
				}
			})
		}
	}
}

// BenchmarkTable4 reproduces Table 4: the hash-table portion of
// Delaunay refinement on 2DinCube and 2Dkuzmin.
func BenchmarkTable4_DelaunayRefinement(b *testing.B) {
	inputs := bench.Table4Inputs(30_000)
	for _, in := range inputs {
		for _, kind := range bench.AppKinds {
			b.Run(fmt.Sprintf("%s/%s", in.Name, kind), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					t := bench.Table4(kind, in.Pts, 1)
					b.ReportMetric(t.Seconds(), "table-sec")
				}
			})
		}
	}
}

// BenchmarkTable5 reproduces Table 5: suffix-tree node insertion (a)
// and string search (b).
func BenchmarkTable5_SuffixTree(b *testing.B) {
	inputs := bench.Table5Inputs(400_000, 50_000)
	for _, in := range inputs {
		for _, kind := range bench.AppKinds {
			b.Run(fmt.Sprintf("%s/%s", in.Corpus, kind), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ins, srch := bench.Table5(kind, in)
					b.ReportMetric(ins.Seconds(), "insert-sec")
					b.ReportMetric(srch.Seconds(), "search-sec")
				}
			})
		}
	}
}

// BenchmarkTable6 reproduces Table 6: edge contraction.
func BenchmarkTable6_EdgeContraction(b *testing.B) {
	inputs := bench.GraphInputs(60_000)
	for _, in := range inputs {
		for _, kind := range bench.AppKinds {
			b.Run(fmt.Sprintf("%s/%s", in.Name, kind), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.Table6(kind, in)
				}
			})
		}
	}
}

// BenchmarkTable7 reproduces Table 7: breadth-first search.
func BenchmarkTable7_BFS(b *testing.B) {
	inputs := bench.GraphInputs(60_000)
	for _, in := range inputs {
		for _, v := range []bench.Table7Variant{bench.BFSSerial, bench.BFSArray} {
			b.Run(fmt.Sprintf("%s/%s", in.Name, v), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.Table7Baseline(v, in)
				}
			})
		}
		for _, kind := range bench.AppKinds {
			b.Run(fmt.Sprintf("%s/%s", in.Name, kind), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.Table7(kind, in)
				}
			})
		}
	}
}

// BenchmarkTable8 reproduces Table 8: spanning forest.
func BenchmarkTable8_SpanningForest(b *testing.B) {
	inputs := bench.GraphInputs(60_000)
	for _, in := range inputs {
		for _, v := range []bench.Table7Variant{bench.BFSSerial, bench.BFSArray} {
			b.Run(fmt.Sprintf("%s/%s", in.Name, v), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.Table8Baseline(v, in)
				}
			})
		}
		for _, kind := range bench.AppKinds {
			b.Run(fmt.Sprintf("%s/%s", in.Name, kind), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.Table8(kind, in)
				}
			})
		}
	}
}

// BenchmarkAblation quantifies design choices DESIGN.md calls out:
// determinism overhead (D vs ND), hashing vs sorting for dedup, and the
// hopscotch timestamp cost.
func BenchmarkAblation(b *testing.B) {
	n := benchN()
	size := benchSize(n)
	b.Run("determinism-overhead/insert-D", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.Table1Cell(tables.LinearD, sequence.RandomInt, bench.OpInsert, n, size)
		}
	})
	b.Run("determinism-overhead/insert-ND", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.Table1Cell(tables.LinearND, sequence.RandomInt, bench.OpInsert, n, size)
		}
	})
	b.Run("dedup/hashing", func(b *testing.B) {
		elems := sequence.RandomKeys(n, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dedup.Run(tables.LinearD, elems, size)
		}
	})
	b.Run("dedup/sorting", func(b *testing.B) {
		elems := sequence.RandomKeys(n, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dedup.RunSorting(elems)
		}
	})
	b.Run("hopscotch-timestamps/find-TS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.Table1Cell(tables.Hopscotch, sequence.RandomInt, bench.OpFindRandom, n, size)
		}
	})
	b.Run("hopscotch-timestamps/find-PC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.Table1Cell(tables.HopscotchPC, sequence.RandomInt, bench.OpFindRandom, n, size)
		}
	})
}
