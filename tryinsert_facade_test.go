package phasehash

import (
	"errors"
	"testing"

	"phasehash/internal/core"
)

// The TryInsert facade tests check every public container degrades to a
// sentinel error — never a panic — on saturation and reserved inputs,
// and that the re-exported sentinels match with errors.Is.

func TestSetTryInsertFull(t *testing.T) {
	s := NewSet(8)
	for k := uint64(1); k <= 8; k++ {
		if added, err := s.TryInsert(k); err != nil || !added {
			t.Fatalf("TryInsert(%d) = %v, %v", k, added, err)
		}
	}
	added, err := s.TryInsert(99)
	if added || !errors.Is(err, ErrFull) {
		t.Fatalf("TryInsert on full set = %v, %v; want false, ErrFull", added, err)
	}
	if _, err := s.TryInsert(0); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("TryInsert(0) err = %v, want ErrReservedKey", err)
	}
	if n := s.Count(); n != 8 {
		t.Fatalf("Count = %d after rejected inserts", n)
	}
}

func TestMap32TryInsertSentinels(t *testing.T) {
	m := NewMap32(8, KeepMin)
	if _, err := m.TryInsert(0, 7); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("TryInsert(0, _) err = %v, want ErrReservedKey", err)
	}
	for k := uint32(1); k <= 8; k++ {
		if added, err := m.TryInsert(k, k); err != nil || !added {
			t.Fatalf("TryInsert(%d) = %v, %v", k, added, err)
		}
	}
	if added, err := m.TryInsert(99, 99); added || !errors.Is(err, ErrFull) {
		t.Fatalf("TryInsert on full map = %v, %v; want false, ErrFull", added, err)
	}
	// Duplicate-key resolution still works at saturation.
	if added, err := m.TryInsert(3, 1); added || err != nil {
		t.Fatalf("duplicate TryInsert = %v, %v", added, err)
	}
	if v, ok := m.Find(3); !ok || v != 1 {
		t.Fatalf("Find(3) = %d, %v; want KeepMin value 1", v, ok)
	}
}

func TestStringMapTryInsertFull(t *testing.T) {
	m := NewStringMap(4, Sum)
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		if added, err := m.TryInsert(k, 1); err != nil || !added {
			t.Fatalf("TryInsert(%q) = %v, %v", k, added, err)
		}
	}
	if added, err := m.TryInsert("overflow", 1); added || !errors.Is(err, ErrFull) {
		t.Fatalf("TryInsert on full string map = %v, %v; want false, ErrFull", added, err)
	}
	if added, err := m.TryInsert("b", 5); added || err != nil {
		t.Fatalf("duplicate TryInsert = %v, %v", added, err)
	}
	if v, ok := m.Find("b"); !ok || v != 6 {
		t.Fatalf("Find(b) = %d, %v; want summed value 6", v, ok)
	}
}

func TestGrowSetTryInsert(t *testing.T) {
	s := NewGrowSet(64)
	if _, err := s.TryInsert(0); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("TryInsert(0) err = %v, want ErrReservedKey", err)
	}
	// Far past the initial capacity: growth absorbs it, never ErrFull.
	for k := uint64(1); k <= 1024; k++ {
		if _, err := s.TryInsert(k); err != nil {
			t.Fatalf("TryInsert(%d) err = %v", k, err)
		}
	}
	if n := s.Count(); n != 1024 {
		t.Fatalf("Count = %d, want 1024", n)
	}
}

func TestCheckedTryInsertIsInsertPhase(t *testing.T) {
	c := Checked(NewSet(64))
	if err := c.guard.Enter(core.PhaseRead); err != nil {
		t.Fatal(err)
	}
	defer c.guard.Exit(core.PhaseRead)
	defer expectPhasePanic(t, "read")
	c.TryInsert(1) // panics before returning
}

// TestCheckedSetClearQuiescentOnly is the regression test for the
// formerly unguarded CheckedSet.Clear: Clear is a phase barrier by
// itself and must refuse to overlap any operation, of any phase.
func TestCheckedSetClearQuiescentOnly(t *testing.T) {
	c := Checked(NewSet(64))
	c.Insert(1)
	c.Insert(2)

	// Clear during an in-flight insert phase must panic.
	func() {
		if err := c.guard.Enter(core.PhaseInsert); err != nil {
			t.Fatal(err)
		}
		defer c.guard.Exit(core.PhaseInsert)
		defer expectPhasePanic(t, "insert")
		c.Clear()
	}()

	// Any operation during an in-flight Clear must panic too.
	func() {
		if err := c.guard.EnterExclusive(); err != nil {
			t.Fatal(err)
		}
		defer c.guard.Exit(core.PhaseExclusive)
		defer expectPhasePanic(t, "exclusive")
		c.Contains(1)
	}()

	// A second Clear during an in-flight Clear must panic as well.
	func() {
		if err := c.guard.EnterExclusive(); err != nil {
			t.Fatal(err)
		}
		defer c.guard.Exit(core.PhaseExclusive)
		defer expectPhasePanic(t, "exclusive")
		c.Clear()
	}()

	// Quiescent Clear works and returns the guard to idle.
	c.Clear()
	if n := c.Count(); n != 0 {
		t.Fatalf("Count = %d after Clear", n)
	}
	c.Insert(3)
	if !c.Contains(3) {
		t.Fatal("set unusable after Clear")
	}
}
