package phasehash

// Integration tests: cross-module end-to-end checks that the paper's
// applications produce consistent, deterministic results through the
// public API and across all table implementations, on all three graph
// generators and both geometry inputs. These complement the per-package
// unit tests by exercising the exact module compositions the benchmark
// harness uses.

import (
	"sync"
	"testing"

	"phasehash/internal/apps/bfs"
	"phasehash/internal/apps/refine"
	"phasehash/internal/apps/spanning"
	"phasehash/internal/bench"
	"phasehash/internal/delaunay"
	"phasehash/internal/geom"
	"phasehash/internal/graph"
	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

func TestIntegrationBFSAcrossGraphsAndTables(t *testing.T) {
	for _, in := range bench.GraphInputs(5000) {
		want := bfs.Serial(in.G, 0)
		for _, kind := range bench.AppKinds {
			got := bfs.Table(in.G, 0, kind)
			if _, err := bfs.Check(in.G, 0, got); err != nil {
				t.Fatalf("%s/%s: %v", in.Name, kind, err)
			}
			for v := range want {
				if want[v] != got[v] {
					t.Fatalf("%s/%s: BFS tree differs at %d", in.Name, kind, v)
				}
			}
		}
	}
}

func TestIntegrationSpanningAcrossGraphs(t *testing.T) {
	for _, in := range bench.GraphInputs(5000) {
		n := in.G.NumVertices()
		want := spanning.Serial(n, in.Edges)
		gotA := spanning.Array(n, in.Edges)
		gotT := spanning.Table(n, in.Edges, tables.LinearD)
		if len(want) != len(gotA) || len(want) != len(gotT) {
			t.Fatalf("%s: forest sizes differ: %d %d %d", in.Name, len(want), len(gotA), len(gotT))
		}
		for i := range want {
			if want[i] != gotA[i] || want[i] != gotT[i] {
				t.Fatalf("%s: forests differ at %d", in.Name, i)
			}
		}
	}
}

func TestIntegrationRefinementBothGeometries(t *testing.T) {
	for _, in := range bench.Table4Inputs(3000) {
		m := delaunay.Build(in.Pts)
		st := refine.Run(m, refine.Config{MinAngleDeg: 22, MaxPoints: 20000, Kind: tables.LinearD})
		if err := m.Check(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if st.BadInitial > 0 && st.PointsAdded == 0 {
			t.Fatalf("%s: refinement stalled", in.Name)
		}
	}
}

// TestIntegrationPublicAPIDeterministicPipeline runs a small data
// pipeline through the public API twice and demands bit-identical
// intermediate and final results: the library's headline guarantee.
func TestIntegrationPublicAPIDeterministicPipeline(t *testing.T) {
	run := func() ([]uint64, []StringEntry, []Entry) {
		// Stage 1: dedup integer records.
		set := NewSet(1 << 14)
		keys := sequence.RandomKeys(10000, 77)
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(keys); i += 6 {
					set.Insert(keys[i])
				}
			}(w)
		}
		wg.Wait()
		distinct := set.Elements()

		// Stage 2: count trigram words keyed by strings.
		words := sequence.TrigramWords(20000, 99)
		sm := NewStringMap(1<<16, Sum)
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(words); i += 6 {
					sm.Insert(words[i], 1)
				}
			}(w)
		}
		wg.Wait()
		counts := sm.Entries()

		// Stage 3: keep the minimum value per bucket with Map32.
		m := NewMap32(1<<12, KeepMin)
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(distinct); i += 6 {
					m.Insert(uint32(distinct[i]%997)+1, uint32(distinct[i]))
				}
			}(w)
		}
		wg.Wait()
		return distinct, counts, m.Entries()
	}
	d1, c1, e1 := run()
	d2, c2, e2 := run()
	if len(d1) != len(d2) || len(c1) != len(c2) || len(e1) != len(e2) {
		t.Fatal("pipeline stage lengths differ across runs")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("stage 1 differs at %d", i)
		}
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("stage 2 differs at %d", i)
		}
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("stage 3 differs at %d", i)
		}
	}
}

func TestIntegrationGrowSet(t *testing.T) {
	s := NewGrowSet(64)
	keys := sequence.RandomKeys(50000, 5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += 8 {
				s.Insert(keys[i])
			}
		}(w)
	}
	wg.Wait()
	distinct := map[uint64]bool{}
	for _, k := range keys {
		distinct[k] = true
	}
	if s.Count() != len(distinct) {
		t.Fatalf("GrowSet Count = %d, want %d", s.Count(), len(distinct))
	}
	if s.Capacity() < len(distinct) {
		t.Fatalf("GrowSet did not grow: capacity %d", s.Capacity())
	}
	for k := range distinct {
		if !s.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestIntegrationAutoSetMixedWorkload(t *testing.T) {
	a := NewAutoSet(1 << 14)
	var wg sync.WaitGroup
	// Mixed concurrent operations: the rooms serialize phases; nothing
	// should race, deadlock, or corrupt the table.
	for w := 0; w < 9; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			switch w % 3 {
			case 0:
				for k := uint64(1); k <= 2000; k++ {
					a.Insert(k)
				}
			case 1:
				for k := uint64(1); k <= 2000; k++ {
					a.Contains(k)
				}
			default:
				for k := uint64(1500); k <= 1600; k++ {
					a.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Reinsert everything so the final state is known, then verify.
	for k := uint64(1); k <= 2000; k++ {
		a.Insert(k)
	}
	if got := a.Count(); got != 2000 {
		t.Fatalf("AutoSet Count = %d, want 2000", got)
	}
}

func TestIntegrationGraphBuildersFeedApps(t *testing.T) {
	// Sanity that every generated graph works through every app path at
	// tiny scale (smoke for the bench harness wiring).
	for _, name := range graph.Names {
		g, err := graph.Build(name, 300, 9)
		if err != nil {
			t.Fatal(err)
		}
		parents := bfs.Array(g, 0)
		if _, err := bfs.Check(g, 0, parents); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	pts := geom.Kuzmin(200, 3)
	m := delaunay.Build(pts)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}
