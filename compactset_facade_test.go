package phasehash

import (
	"errors"
	"sort"
	"testing"
)

func TestCompactSetFacade(t *testing.T) {
	s := NewCompactSet(1 << 12)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i%400 + 1) // duplicates: 400 distinct
	}
	if added := s.InsertAll(keys); added != 400 {
		t.Fatalf("InsertAll added %d, want 400", added)
	}
	if got := s.ContainsAll(keys); got != len(keys) {
		t.Fatalf("ContainsAll = %d, want %d", got, len(keys))
	}
	if !s.Contains(17) || s.Contains(401) {
		t.Fatal("per-element Contains wrong")
	}
	if s.Count() != 400 {
		t.Fatalf("Count = %d, want 400", s.Count())
	}
	got := s.Elements()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := 0; i < 400; i++ {
		if got[i] != uint64(i+1) {
			t.Fatalf("Elements missing %d", i+1)
		}
	}
	if removed := s.DeleteAll(keys[:500]); removed == 0 {
		t.Fatal("DeleteAll removed nothing")
	}
	if _, err := s.TryInsert(0); !errors.Is(err, ErrReservedKey) {
		t.Fatal("TryInsert(0) did not report ErrReservedKey")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("Clear left elements")
	}
}

// TestCompactSetSizing pins the 0.9-target sizing contract: the
// requested capacity always fits, and a capacity just under a
// power-of-two boundary divided by 0.9 does not double the array the
// way NewSet's direct rounding would.
func TestCompactSetSizing(t *testing.T) {
	// 1<<12 keys at 0.9 load need 4551 cells -> 8192; the flat Set
	// would also pick 4096 for the keys alone but run at load 1.0.
	s := NewCompactSet(1 << 12)
	if s.Capacity() != 1<<13 {
		t.Fatalf("Capacity = %d, want %d", s.Capacity(), 1<<13)
	}
	if want := (1 << 13) * 9; s.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(), want)
	}
	// 7000 keys need 7779 cells: fits in 8192 at load 0.85 — under the
	// 0.9 ceiling with no doubling.
	if got := NewCompactSet(7000).Capacity(); got != 1<<13 {
		t.Fatalf("Capacity(7000) = %d, want %d", got, 1<<13)
	}
	for _, capacity := range []int{0, 1, 10, 100, 4096, 7000, 100000} {
		s := NewCompactSet(capacity)
		if float64(capacity) > 0.9*float64(s.Capacity()) {
			t.Fatalf("capacity %d exceeds 0.9 load on %d cells", capacity, s.Capacity())
		}
	}
}

// TestCompactSetDeterministicElements pins the public determinism
// contract: same key set and capacity => same Elements order,
// regardless of insertion path and batch order.
func TestCompactSetDeterministicElements(t *testing.T) {
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	a := NewCompactSet(1 << 13)
	a.InsertAll(keys)
	b := NewCompactSet(1 << 13)
	for i := len(keys) - 1; i >= 0; i-- { // reversed, per-element
		b.Insert(keys[i])
	}
	ae, be := a.Elements(), b.Elements()
	if len(ae) != len(be) {
		t.Fatalf("element counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("Elements diverge at %d: %#x vs %#x", i, ae[i], be[i])
		}
	}
}
