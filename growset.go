package phasehash

import "phasehash/internal/core"

// GrowSet is a Set that resizes itself during insert phases — the
// paper's Section 4 resizing scheme (incremental migration to a table of
// twice the size, at least two elements copied per insert, at most two
// tables live). The phase discipline matches Set's; Elements and Count
// finish any in-progress migration, and the quiescent layout after a
// drain is deterministic exactly like Set's.
type GrowSet struct {
	t *core.GrowTable[core.SetOps]
}

// NewGrowSet returns a growing set with the given initial capacity.
func NewGrowSet(initial int) *GrowSet {
	return &GrowSet{t: core.NewGrowTable[core.SetOps](initial)}
}

// Insert adds k (insert phase), growing as needed. It panics on the
// reserved key 0; use TryInsert to get an error instead.
func (s *GrowSet) Insert(k uint64) bool { return s.t.Insert(k) }

// TryInsert is Insert returning ErrReservedKey (matchable with
// errors.Is) instead of panicking on key 0. A growing set never
// reports ErrFull: saturation triggers a grow.
func (s *GrowSet) TryInsert(k uint64) (bool, error) { return s.t.TryInsert(k) }

// Contains reports membership (read phase).
func (s *GrowSet) Contains(k uint64) bool { return s.t.Contains(k) }

// Delete removes k (delete phase).
func (s *GrowSet) Delete(k uint64) bool { return s.t.Delete(k) }

// Elements returns the keys in a deterministic order (quiescent callers
// only; completes any migration first).
func (s *GrowSet) Elements() []uint64 { return s.t.Elements() }

// Count returns the number of keys (quiescent callers only).
func (s *GrowSet) Count() int { return s.t.Count() }

// Capacity returns the current backing array size.
func (s *GrowSet) Capacity() int { return s.t.Size() }
