// Package phasehash is a deterministic phase-concurrent hash table
// library — a Go implementation of Shun & Blelloch, "Phase-Concurrent
// Hash Tables for Determinism" (SPAA 2014).
//
// # Phase-concurrency
//
// Operations are split into three phases that may each run concurrently
// from any number of goroutines:
//
//   - insert phase: Insert
//   - delete phase: Delete
//   - read phase:   Find / Contains / Elements / Count
//
// Operations from *different* phases must be separated by a
// happens-before edge (any barrier: sync.WaitGroup, channel, ...).
// Within this discipline the table is deterministic: at every quiescent
// point its contents — including the order Elements returns — depend
// only on the set of operations performed, never on thread scheduling.
// That makes it a building block for internally deterministic parallel
// programs: see the examples directory for duplicate removal, BFS with
// deterministic frontiers, word counting and Delaunay refinement.
//
// The containers here are fixed-capacity (the paper's benchmarked
// configuration): give New* the maximum number of distinct keys you will
// store. Inserting beyond capacity panics. Key 0 is reserved.
//
// # Checked mode
//
// Wrap any container with its checked twin — Checked for Set,
// NewCheckedMap32, NewCheckedStringMap, NewCheckedGrowSet — to detect
// phase-discipline violations at runtime during development; the check
// costs two atomic operations per table operation and is off the
// benchmarked paths.
//
// # Static checking
//
// The runtime check only fires when the schedule interleaves the
// offending operations. The phasevet analyzer (cmd/phasevet,
// internal/analysis/phasevet) finds the same bug class at compile
// time: run `go vet -vettool=$(which phasevet) ./...` or
// `go run ./cmd/phasevet ./...`. Joins hidden behind helpers the
// analyzer cannot see can be asserted with a //phasehash:barrier
// comment; see the "Static checking" section of README.md.
package phasehash

import (
	"fmt"

	"phasehash/internal/core"
	"phasehash/internal/parallel"
)

// Sentinel errors returned by the TryInsert methods. Every concrete
// return wraps one of these with situation detail (table size, count,
// load factor), so match with errors.Is.
var (
	// ErrFull reports a saturated fixed-capacity container: the insert's
	// probe sequence swept the whole backing array. TryInsert returns it
	// where the panicking Insert would crash; size containers for a load
	// factor below ~0.9 to stay clear of it.
	ErrFull = core.ErrFull
	// ErrNilValue reports an attempt to store a nil record in a
	// pointer-backed container.
	ErrNilValue = core.ErrNilValue
	// ErrReservedKey reports an insert of the reserved key (0).
	ErrReservedKey = core.ErrReservedKey
)

// Set is a deterministic phase-concurrent set of uint64 keys (key 0 is
// reserved and must not be inserted).
type Set struct {
	t *core.WordTable[core.SetOps]
}

// NewSet returns a set with capacity for at least capacity keys (the
// backing array is the next power of two, as in the paper; keep load
// factor below ~0.9 for linear-probing performance).
func NewSet(capacity int) *Set {
	return &Set{t: core.NewWordTable[core.SetOps](capacity)}
}

// Insert adds k (insert phase). It reports whether the set grew. It
// panics on the reserved key 0 and on a full set; use TryInsert where
// saturation must degrade gracefully.
func (s *Set) Insert(k uint64) bool { return s.t.Insert(k) }

// TryInsert is Insert returning errors instead of panicking:
// ErrReservedKey for key 0 and ErrFull for a saturated set, both
// matchable with errors.Is.
func (s *Set) TryInsert(k uint64) (bool, error) { return s.t.TryInsert(k) }

// Contains reports whether k is present (read phase).
func (s *Set) Contains(k uint64) bool { return s.t.Contains(k) }

// Delete removes k (delete phase), reporting whether it was removed.
func (s *Set) Delete(k uint64) bool { return s.t.Delete(k) }

// Elements returns the keys in a deterministic order (read phase): for a
// given key set the result is identical on every run, schedule and
// worker count.
func (s *Set) Elements() []uint64 { return s.t.Elements() }

// Count returns the number of keys (read phase).
func (s *Set) Count() int { return s.t.Count() }

// Capacity returns the cell count of the backing array.
func (s *Set) Capacity() int { return s.t.Size() }

// Clear empties the set (quiescent use only).
func (s *Set) Clear() { s.t.Clear() }

// Combine selects how a Map32 resolves duplicate keys. All choices are
// commutative and associative, so the stored value — like everything
// else — is deterministic.
type Combine int

// Duplicate-key resolution policies.
const (
	KeepMin Combine = iota // keep the minimum value (WriteMin semantics)
	KeepMax                // keep the maximum value
	Sum                    // add values modulo 2^32
)

// Map32 is a deterministic phase-concurrent map from uint32 keys to
// uint32 values, stored as packed single-word pairs so that one CAS
// covers the whole entry. Key 0 is reserved.
type Map32 struct {
	min *core.WordTable[core.PairMinOps]
	max *core.WordTable[core.PairMaxOps]
	sum *core.WordTable[core.PairSumOps]
}

// NewMap32 returns a map with the given capacity and duplicate policy.
func NewMap32(capacity int, policy Combine) *Map32 {
	m := &Map32{}
	switch policy {
	case KeepMin:
		m.min = core.NewWordTable[core.PairMinOps](capacity)
	case KeepMax:
		m.max = core.NewWordTable[core.PairMaxOps](capacity)
	case Sum:
		m.sum = core.NewWordTable[core.PairSumOps](capacity)
	default:
		panic("phasehash: unknown Combine policy")
	}
	return m
}

// Insert adds (k, v), resolving duplicates per the policy (insert
// phase). It reports whether a new key was added. It panics on the
// reserved key 0 and on a full map; use TryInsert where saturation must
// degrade gracefully.
func (m *Map32) Insert(k, v uint32) bool {
	added, err := m.TryInsert(k, v)
	if err != nil {
		panic("phasehash: Map32: " + err.Error())
	}
	return added
}

// TryInsert is Insert returning errors instead of panicking:
// ErrReservedKey for key 0 and ErrFull for a saturated map, both
// matchable with errors.Is.
func (m *Map32) TryInsert(k, v uint32) (bool, error) {
	if k == 0 {
		return false, fmt.Errorf("%w: key 0", ErrReservedKey)
	}
	e := core.Pair(k, v)
	switch {
	case m.min != nil:
		return m.min.TryInsert(e)
	case m.max != nil:
		return m.max.TryInsert(e)
	default:
		return m.sum.TryInsert(e)
	}
}

// Find returns the value stored under k (read phase).
func (m *Map32) Find(k uint32) (uint32, bool) {
	e, ok := m.find(core.Pair(k, 0))
	return core.PairValue(e), ok
}

func (m *Map32) find(e uint64) (uint64, bool) {
	switch {
	case m.min != nil:
		return m.min.Find(e)
	case m.max != nil:
		return m.max.Find(e)
	default:
		return m.sum.Find(e)
	}
}

// Delete removes key k (delete phase).
func (m *Map32) Delete(k uint32) bool {
	e := core.Pair(k, 0)
	switch {
	case m.min != nil:
		return m.min.Delete(e)
	case m.max != nil:
		return m.max.Delete(e)
	default:
		return m.sum.Delete(e)
	}
}

// Entry is one key-value pair of a Map32.
type Entry struct {
	Key   uint32
	Value uint32
}

// Entries returns the map contents in a deterministic order (read
// phase).
func (m *Map32) Entries() []Entry {
	var raw []uint64
	switch {
	case m.min != nil:
		raw = m.min.Elements()
	case m.max != nil:
		raw = m.max.Elements()
	default:
		raw = m.sum.Elements()
	}
	out := make([]Entry, len(raw))
	parallel.For(len(raw), func(i int) {
		out[i] = Entry{Key: core.PairKey(raw[i]), Value: core.PairValue(raw[i])}
	})
	return out
}

// Count returns the number of keys (read phase).
func (m *Map32) Count() int {
	switch {
	case m.min != nil:
		return m.min.Count()
	case m.max != nil:
		return m.max.Count()
	default:
		return m.sum.Count()
	}
}

// SetParallelism bounds the worker count used by the library's internal
// parallel operations (Elements packing, Clear). n < 1 resets to
// GOMAXPROCS. It returns the previous setting. Intended for benchmarks
// and tests; the containers themselves scale to any number of caller
// goroutines regardless.
func SetParallelism(n int) int { return parallel.SetNumWorkers(n) }
