package tune

import (
	"testing"

	"phasehash/internal/obs"
)

// TestShardsStaticEquivalence pins the zero-gauge policy to the legacy
// static policy: 4× workers, capped at MaxAutoShards, halved until
// every shard keeps MinShardCells cells, power of two.
func TestShardsStaticEquivalence(t *testing.T) {
	cases := []struct {
		size, workers int
		want          int
	}{
		{1 << 20, 4, 16},    // plenty of cells: 4*4
		{1 << 20, 8, 32},    // 4*8
		{1 << 12, 8, 1},     // 4096 cells: halves all the way down
		{1 << 15, 4, 8},     // 32768/16 = 2048 < 4096 -> halve to 8 (4096 each)
		{1 << 30, 128, 256}, // capped at MaxAutoShards
		{100, 1, 1},         // tiny table
		{1 << 20, 0, 4},     // workers<1 coerced to 1 -> 4*1
	}
	for _, c := range cases {
		if got := Shards(c.size, c.workers, 0); got != c.want {
			t.Errorf("Shards(%d, %d, 0) = %d, want %d", c.size, c.workers, got, c.want)
		}
	}
}

// TestShardsHighImbalance asserts the gauge response: at or above
// HighImbalancePm the policy drops to one shard per worker (still
// power-of-two, still capacity-clamped); below the threshold it is
// untouched.
func TestShardsHighImbalance(t *testing.T) {
	if got, want := Shards(1<<20, 8, HighImbalancePm), 8; got != want {
		t.Errorf("skewed Shards = %d, want %d (one per worker)", got, want)
	}
	if got, want := Shards(1<<20, 8, HighImbalancePm-1), 32; got != want {
		t.Errorf("just-below-threshold Shards = %d, want static %d", got, want)
	}
	// Capacity clamp still applies under skew.
	if got, want := Shards(1<<13, 8, HighImbalancePm), 2; got != want {
		t.Errorf("skewed small-table Shards = %d, want %d", got, want)
	}
	// Power-of-two even for non-power worker counts.
	if got := Shards(1<<20, 6, HighImbalancePm); got != 8 {
		t.Errorf("skewed Shards(workers=6) = %d, want 8 (rounded up)", got)
	}
}

// TestFlushPath pins the batch-size thresholds.
func TestFlushPath(t *testing.T) {
	cases := []struct {
		ins, del, rd int
		want         Path
	}{
		{0, 0, 0, PathSerial},
		{SerialBatchMax, 0, 0, PathSerial},
		{SerialBatchMax + 1, 0, 0, PathParallel},
		{0, 0, ParallelBatchMax, PathParallel},
		{0, ParallelBatchMax + 1, 0, PathSharded},
		{100, 50, 1 << 20, PathSharded},
		// The largest phase decides: small inserts, huge reads.
		{10, 10, SerialBatchMax + 1, PathParallel},
	}
	for _, c := range cases {
		if got := FlushPath(c.ins, c.del, c.rd); got != c.want {
			t.Errorf("FlushPath(%d,%d,%d) = %v, want %v", c.ins, c.del, c.rd, got, c.want)
		}
	}
}

// TestTableKindFor pins the load/mix crossover.
func TestTableKindFor(t *testing.T) {
	if got := TableKindFor(CompactLoadPm, CompactFindSharePm); got != KindCompact {
		t.Errorf("at thresholds: %v, want compact", got)
	}
	if got := TableKindFor(CompactLoadPm-1, 1000); got != KindFlat {
		t.Errorf("low load: %v, want flat", got)
	}
	if got := TableKindFor(1000, CompactFindSharePm-1); got != KindFlat {
		t.Errorf("insert-heavy: %v, want flat", got)
	}
}

// TestBlocksPerWorker pins the grain policy's response surface.
func TestBlocksPerWorker(t *testing.T) {
	if got := BlocksPerWorker(obs.CoreStats{}); got != DefaultBlocksPerWorker {
		t.Errorf("no evidence: %d, want default %d", got, DefaultBlocksPerWorker)
	}
	tiny := obs.CoreStats{ParDispatches: 10, ParBlocks: 100, ParItems: 100 * 600}
	if got := BlocksPerWorker(tiny); got != DefaultBlocksPerWorker/2 {
		t.Errorf("tiny blocks: %d, want %d", got, DefaultBlocksPerWorker/2)
	}
	huge := obs.CoreStats{ParDispatches: 10, ParBlocks: 100, ParItems: 100 * 100000}
	if got := BlocksPerWorker(huge); got != DefaultBlocksPerWorker*2 {
		t.Errorf("huge blocks: %d, want %d", got, DefaultBlocksPerWorker*2)
	}
}

// TestControllerTrace asserts decisions are recorded only on change,
// in order, and that TraceString excludes the performance-only grain
// knob.
func TestControllerTrace(t *testing.T) {
	c := NewController(false)
	if p := c.DecidePath(1<<20, 0, 0); p != PathSharded {
		t.Fatalf("large batch path = %v", p)
	}
	if len(c.Trace()) != 0 {
		t.Fatalf("unchanged decision recorded: %v", c.Trace())
	}
	if p := c.DecidePath(10, 10, 10); p != PathSerial {
		t.Fatalf("small batch path = %v", p)
	}
	if k := c.DecideKind(900, 900); k != KindCompact {
		t.Fatalf("hot find-heavy kind = %v", k)
	}
	tr := c.Trace()
	if len(tr) != 2 || tr[0].Knob != "path" || tr[1].Knob != "kind" {
		t.Fatalf("trace = %v", tr)
	}
	s := c.TraceString()
	want := "0 path=serial (inserts=10 deletes=10 reads=10)\n0 kind=compact (loadPm=900 findSharePm=900)\n"
	if s != want {
		t.Fatalf("TraceString:\n%q\nwant\n%q", s, want)
	}
	if c.Path() != PathSerial || c.Kind() != KindCompact {
		t.Fatalf("accessors: path=%v kind=%v", c.Path(), c.Kind())
	}
}

// TestControllerStepDeterminism asserts two controllers stepping over
// identical decision inputs produce byte-identical traces, regardless
// of what the global counter core saw in between — the in-process
// analogue of the detres tuning oracle's cross-schedule comparison.
func TestControllerStepDeterminism(t *testing.T) {
	run := func(noise bool) string {
		c := NewController(false)
		for e := 0; e < 6; e++ {
			if noise {
				// Schedule-dependent global activity between boundaries
				// must not leak into the state-affecting trace.
				obs.CoreInsert(e, uint64(e*7), uint64(e*31))
				obs.CoreDispatch(3, 4096)
			}
			c.Step()
			c.DecidePath(e*1000, e*500, e*2000)
			c.DecideKind(uint64(e*150), 700)
		}
		return c.TraceString()
	}
	defer obs.CoreReset()
	a := run(false)
	b := run(true)
	if a != b {
		t.Fatalf("traces diverge under global counter noise:\n%q\nvs\n%q", a, b)
	}
	if a == "" {
		t.Fatal("empty trace: decision inputs never crossed a threshold")
	}
}
