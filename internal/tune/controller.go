package tune

import (
	"fmt"
	"strings"

	"phasehash/internal/obs"
	"phasehash/internal/parallel"
)

// Decision is one recorded tuning step: which knob moved (or was
// confirmed), to what value, from which inputs. The Basis string is
// built only from schedule-independent integers, so the concatenated
// trace of a run is itself deterministic — the detres tuning oracle
// byte-compares traces across its schedule grid.
type Decision struct {
	Step  int    // controller step (epoch / phase boundary index)
	Knob  string // "path", "kind", "grain", "shards"
	Value string // the chosen value's stable token
	Basis string // the integer inputs the policy saw
}

// String formats the decision as one stable trace line.
func (d Decision) String() string {
	return fmt.Sprintf("%d %s=%s (%s)", d.Step, d.Knob, d.Value, d.Basis)
}

// Controller applies the tune policies at phase/epoch boundaries and
// accumulates the decision trace. It is NOT safe for concurrent use:
// the phase discipline already guarantees boundaries are crossed by one
// goroutine (the epoch server's flush loop, a benchmark driver's cell
// loop), and the controller piggybacks on that.
//
// The zero value is not usable; construct with NewController.
type Controller struct {
	step       int
	prev       obs.CoreStats
	trace      []Decision
	applyGrain bool

	path  Path
	kind  TableKind
	grain int
}

// NewController returns a controller with the static defaults
// (PathSharded, KindFlat, the default oversplit factor). applyGrain
// controls whether grain decisions are pushed into
// parallel.SetBlocksPerWorker — the knob is process-global, so only
// one controller per process should apply it (the epoch server's, or a
// benchmark driver's); the rest observe without applying.
func NewController(applyGrain bool) *Controller {
	return &Controller{
		applyGrain: applyGrain,
		path:       PathSharded,
		kind:       KindFlat,
		grain:      DefaultBlocksPerWorker,
		prev:       obs.CoreSnapshot(),
	}
}

// Step advances the controller one phase/epoch boundary: it snapshots
// the counter core, computes the window since the previous step, and
// re-evaluates the performance-only knobs (currently the loop grain).
// It returns the window so callers can report it. State-affecting
// decisions (path, kind) are made by their own methods because their
// inputs come from the caller (batch sizes, load factors), not the
// global core.
func (c *Controller) Step() obs.CoreStats {
	c.step++
	cur := obs.CoreSnapshot()
	window := cur.Sub(c.prev)
	c.prev = cur

	g := BlocksPerWorker(window)
	if g != c.grain {
		c.grain = g
		if c.applyGrain {
			parallel.SetBlocksPerWorker(g)
		}
		c.record("grain", fmt.Sprintf("%d", g),
			fmt.Sprintf("dispatches=%d blocks=%d items=%d", window.ParDispatches, window.ParBlocks, window.ParItems))
	}
	return window
}

// DecidePath selects (and records, when it changes) the flush path for
// an epoch with the given phase batch sizes.
func (c *Controller) DecidePath(inserts, deletes, reads int) Path {
	p := FlushPath(inserts, deletes, reads)
	if p != c.path {
		c.path = p
		c.record("path", p.String(),
			fmt.Sprintf("inserts=%d deletes=%d reads=%d", inserts, deletes, reads))
	}
	return p
}

// DecideKind selects (and records, when it changes) the table
// representation for the given load factor and find share (per-mille).
func (c *Controller) DecideKind(loadPm, findSharePm uint64) TableKind {
	k := TableKindFor(loadPm, findSharePm)
	if k != c.kind {
		c.kind = k
		c.record("kind", k.String(),
			fmt.Sprintf("loadPm=%d findSharePm=%d", loadPm, findSharePm))
	}
	return k
}

// Path returns the current flush path without re-deciding.
func (c *Controller) Path() Path { return c.path }

// Kind returns the current table kind without re-deciding.
func (c *Controller) Kind() TableKind { return c.kind }

// Grain returns the current oversplit factor without re-deciding.
func (c *Controller) Grain() int { return c.grain }

func (c *Controller) record(knob, value, basis string) {
	c.trace = append(c.trace, Decision{Step: c.step, Knob: knob, Value: value, Basis: basis})
}

// Trace returns the recorded decisions in order (the backing slice;
// callers must not mutate it).
func (c *Controller) Trace() []Decision { return c.trace }

// TraceString renders the whole trace one decision per line — the byte
// string the detres tuning oracle compares across schedules. Grain
// decisions are excluded: the grain knob is performance-only and its
// inputs may legitimately vary with the worker count (see the package
// comment's determinism classes), so it is not part of the
// cross-schedule contract.
func (c *Controller) TraceString() string {
	var b strings.Builder
	for _, d := range c.trace {
		if d.Knob == "grain" {
			continue
		}
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
