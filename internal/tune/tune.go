// Package tune is the deterministic self-tuning layer: pure integer
// policies that map the always-on counter core's observations
// (internal/obs CoreStats) to runtime knobs — shard counts, loop grain,
// epoch flush paths, table representation — plus a Controller that
// applies them at phase boundaries and records an auditable decision
// trace.
//
// # Determinism contract
//
// Every policy in this package is a pure function of
// schedule-independent inputs:
//
//   - completed-operation counts and batch sizes (sums over a phase are
//     commutative, so they do not depend on interleaving);
//   - the max-shard-imbalance gauge (its input is a pure function of
//     the partitioned keys and the shard count, so the running max over
//     a fixed multiset of bulk calls is schedule-independent);
//   - load factors and op-mix shares in per-mille, derived from the
//     above.
//
// No policy reads time, timing-derived rates, random state, or
// schedule-dependent counters (probe steps on the atomic paths race
// with concurrent displacement and are deliberately never consulted).
// Decisions therefore only change at phase/epoch boundaries and replay
// identically across schedules — the property the detres tuning oracle
// pins by comparing decision traces across its seed × worker × chaos
// grid. Arithmetic is integer per-mille throughout; no floats, so the
// policies stay usable from kernel-adjacent code under detvet.
//
// The knobs split into two determinism classes:
//
//   - State-affecting: the shard count is part of the quiescent layout
//     function, so Shards() feeds construction only and its inputs must
//     be fixed before the table exists (the gauge at construction
//     time). Flush-path and table-kind decisions are state-invisible by
//     history independence — all legal paths land the same layout — but
//     their *traces* are still deterministic and oracle-checked.
//   - Performance-only: the loop-grain oversplit factor never touches
//     table state; it may consult worker-count-dependent dispatch
//     shapes and is excluded from cross-worker trace comparison.
package tune

import "phasehash/internal/obs"

// Path identifies one of the three legal epoch flush strategies. All
// three apply the same operation multiset, so by history independence
// they reach byte-identical quiescent state; the choice is purely a
// performance decision (and a deterministic one, see the package
// comment).
type Path uint8

const (
	// PathSerial applies the phase per-element on one goroutine: no
	// dispatch cost, right for tiny batches.
	PathSerial Path = iota
	// PathParallel applies the phase with the parallel atomic
	// per-element loops: scales with workers, pays CAS traffic.
	PathParallel
	// PathSharded applies the phase with the owner-computes sharded
	// bulk kernels: radix partition then serial per-shard runs, right
	// for large batches where locality and zero contention dominate.
	PathSharded
)

// String returns the stable trace token for the path.
func (p Path) String() string {
	switch p {
	case PathSerial:
		return "serial"
	case PathParallel:
		return "parallel"
	case PathSharded:
		return "sharded"
	}
	return "unknown"
}

// TableKind identifies a table representation the AutoTable selector
// can pick (internal/tables wires these to concrete constructors).
type TableKind uint8

const (
	// KindFlat is the flat word table: one 8-byte cell per slot,
	// fastest inserts at moderate load.
	KindFlat TableKind = iota
	// KindCompact is the fingerprint-probed compact table: control
	// bytes + group scanning, wins on find-heavy mixes at high load.
	KindCompact
)

// String returns the stable trace token for the kind.
func (k TableKind) String() string {
	if k == KindCompact {
		return "compact"
	}
	return "flat"
}

// Policy thresholds. All integer per-mille or plain counts; exported so
// the benchmarks and docs can reference the exact decision surface.
const (
	// HighImbalancePm is the max-shard-imbalance gauge level (1000 =
	// perfectly balanced) above which the shard policy stops buying
	// parallelism with extra shards: on skewed distributions the
	// longest run grows with the shard count's imbalance while the
	// partition histograms cost O(shards), so the policy drops to one
	// shard per worker.
	HighImbalancePm = 2000

	// MinShardCells floors per-shard capacity: below ~4K cells (32KB)
	// the two streaming partition passes cost more than the locality
	// they buy. Mirrors the legacy static policy in internal/core.
	MinShardCells = 4096

	// MaxAutoShards caps the automatic policy; the partition pass's
	// per-worker histograms are O(shards).
	MaxAutoShards = 256

	// SerialBatchMax is the largest flush batch the path policy runs
	// serially: below this the parallel dispatch (channel sends, block
	// setup) costs more than the loop.
	SerialBatchMax = 256

	// ParallelBatchMax is the largest flush batch the path policy runs
	// with the parallel per-element loops; above it the sharded
	// owner-computes kernels win on locality and zero CAS traffic.
	ParallelBatchMax = 4096

	// CompactLoadPm is the load factor (per-mille) above which the
	// compact representation's higher packing density starts paying
	// for its control-byte indirection.
	CompactLoadPm = 700

	// CompactFindSharePm is the find share of the op mix (per-mille)
	// the kind policy additionally requires before picking compact:
	// the fingerprint probe shines on lookups, while inserts pay the
	// extra control-array store.
	CompactFindSharePm = 600

	// DefaultBlocksPerWorker mirrors internal/parallel's default
	// oversplit factor; the grain policy returns it absent evidence.
	DefaultBlocksPerWorker = 8

	// smallBlockItems / largeBlockItems bound the measured mean items
	// per dispatched block outside which the grain policy moves the
	// oversplit factor: tiny blocks mean dispatch overhead dominates
	// (fewer, larger blocks), huge blocks mean there is slack to
	// oversplit further for load balance.
	smallBlockItems = 1024
	largeBlockItems = 65536
)

// Shards selects a shard count for a table of the given total capacity
// under the given worker count, consulting the observed
// max-shard-imbalance gauge (pass 0 when no observation exists — e.g.
// first construction, or a nostats build — which reproduces the legacy
// static policy exactly: 4× workers, capped at MaxAutoShards, halved
// until every shard keeps MinShardCells). The result is always a power
// of two >= 1.
//
// Above HighImbalancePm the gauge says the key distribution is skewed
// enough that extra shards no longer shorten the critical path (the
// longest run), so the policy falls to one shard per worker — still
// enough for every worker to own a run, with minimal partition
// histogram cost.
func Shards(size, workers int, imbalancePm uint64) int {
	if workers < 1 {
		workers = 1
	}
	if size < 1 {
		size = 1
	}
	over := 4
	if imbalancePm >= HighImbalancePm {
		over = 1
	}
	shards := over * workers
	if shards > MaxAutoShards {
		shards = MaxAutoShards
	}
	for shards > 1 && (size+shards-1)/shards < MinShardCells {
		shards /= 2
	}
	// Round up to a power of two: the shard selector shifts hash bits.
	s := 1
	for s < shards {
		s <<= 1
	}
	return s
}

// FlushPath selects the epoch flush strategy from the phase batch
// sizes of the epoch being flushed — schedule-independent by
// construction (batch sizes are admission counts, fixed before any
// worker runs). The decision keys on the largest phase batch: the
// flush pays the dispatch machinery once per phase, and the largest
// phase dominates its cost.
func FlushPath(inserts, deletes, reads int) Path {
	batch := inserts
	if deletes > batch {
		batch = deletes
	}
	if reads > batch {
		batch = reads
	}
	switch {
	case batch <= SerialBatchMax:
		return PathSerial
	case batch <= ParallelBatchMax:
		return PathParallel
	default:
		return PathSharded
	}
}

// TableKindFor selects the table representation from the live load
// factor and the find share of the op mix, both per-mille. Compact wins
// only when both the packing density matters (high load) and the mix is
// find-heavy; everything else stays flat, matching the BENCH_core
// crossover measurements.
func TableKindFor(loadPm, findSharePm uint64) TableKind {
	if loadPm >= CompactLoadPm && findSharePm >= CompactFindSharePm {
		return KindCompact
	}
	return KindFlat
}

// BlocksPerWorker selects the automatic grain policy's oversplit
// factor from a window of dispatch observations. With no dispatches in
// the window it returns the default. The measured mean items per block
// is deterministic for a fixed loop-call sequence and worker count,
// but it does depend on the worker count — this knob is
// performance-only (it never touches table state), so that is
// admissible; see the package comment's determinism classes.
func BlocksPerWorker(s obs.CoreStats) int {
	if s.ParDispatches == 0 || s.ParBlocks == 0 {
		return DefaultBlocksPerWorker
	}
	mean := s.ParItems / s.ParBlocks
	switch {
	case mean < smallBlockItems:
		return DefaultBlocksPerWorker / 2
	case mean > largeBlockItems:
		return DefaultBlocksPerWorker * 2
	default:
		return DefaultBlocksPerWorker
	}
}
