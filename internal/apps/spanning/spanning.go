// Package spanning implements the paper's spanning-forest application
// (Section 5, Table 8) using deterministic reservations (Blelloch et
// al., PPoPP 2012): edges carry their index as priority; each round,
// live edges find their endpoints' components and reserve *both* roots
// with WriteMin; an edge commits if it still holds at least one of its
// reservations, linking the held root under the other. Three variants:
//
//   - Serial: sequential union-find in edge order (the reference).
//   - Array: reservations in a direct-addressed array indexed by
//     component root (the paper's "array" row).
//   - Table: reservations in a hash table keyed by component root (the
//     paper's hash-table rows) — the variant of choice when vertex IDs
//     come from a huge space and relabeling is to be avoided. Each round
//     decomposes into an insert phase (reserve), a find phase (commit)
//     and a delete phase (release surviving reservations), exactly the
//     phase-concurrent usage the paper describes.
//
// All deterministic variants return exactly the edges the serial
// algorithm picks (the lexicographically-first spanning forest).
package spanning

import (
	"fmt"
	"sync"
	"sync/atomic"

	"phasehash/internal/atomicx"
	"phasehash/internal/core"
	"phasehash/internal/detres"
	"phasehash/internal/graph"
	"phasehash/internal/parallel"
	"phasehash/internal/tables"
	"phasehash/internal/unionfind"
)

// Serial computes the spanning forest sequentially, returning the
// indices of kept edges in increasing order.
func Serial(n int, edges []graph.Edge) []int {
	uf := unionfind.New(n)
	var kept []int
	for i, e := range edges {
		u, v := uf.Find(int(e.U)), uf.Find(int(e.V))
		if u == v {
			continue
		}
		uf.Link(u, v)
		kept = append(kept, i)
	}
	return kept
}

const noRes = ^uint64(0)

// keptSet accumulates committed edge indices from concurrent commits.
type keptSet struct {
	mu   sync.Mutex
	idxs []int
}

func (k *keptSet) add(i int) {
	k.mu.Lock()
	k.idxs = append(k.idxs, i)
	k.mu.Unlock()
}

func (k *keptSet) sorted() []int {
	parallel.Sort(k.idxs, func(a, b int) bool { return a < b })
	return k.idxs
}

// arrayStep is the deterministic-reservations step with array-based
// reservations (one WriteMin cell per vertex, indexed by component root).
type arrayStep struct {
	uf       *unionfind.UF
	edges    []graph.Edge
	reserved []uint64
	roots    [][2]int32 // per-edge roots cached between reserve and commit
	kept     keptSet
}

func (s *arrayStep) Reserve(i int) bool {
	e := s.edges[i]
	u := s.uf.Find(int(e.U))
	v := s.uf.Find(int(e.V))
	if u == v {
		return false
	}
	s.roots[i] = [2]int32{int32(u), int32(v)}
	atomicx.WriteMin(&s.reserved[u], uint64(i))
	atomicx.WriteMin(&s.reserved[v], uint64(i))
	return true
}

func (s *arrayStep) Commit(i int) bool {
	u, v := int(s.roots[i][0]), int(s.roots[i][1])
	// Commit if we hold either root; link the held root under the other.
	// check-and-reset on v's reservation:
	if atomic.CompareAndSwapUint64(&s.reserved[v], uint64(i), noRes) {
		// v dies; release u (still live) if we hold it too.
		atomic.CompareAndSwapUint64(&s.reserved[u], uint64(i), noRes)
		s.uf.Link(v, u)
		s.kept.add(i)
		return true
	}
	if atomic.CompareAndSwapUint64(&s.reserved[u], uint64(i), noRes) {
		s.uf.Link(u, v)
		s.kept.add(i)
		return true
	}
	return false
}

// Array computes the spanning forest with array reservations; the kept
// edge set equals Serial's.
//
//phasehash:serial pre-publication init: each reservation slot is written by exactly one worker before the speculative rounds begin
func Array(n int, edges []graph.Edge) []int {
	s := &arrayStep{
		uf:       unionfind.New(n),
		edges:    edges,
		reserved: make([]uint64, n),
		roots:    make([][2]int32, len(edges)),
	}
	parallel.For(n, func(i int) { s.reserved[i] = noRes })
	detres.SpeculativeFor(s, 0, len(edges), 0)
	return s.kept.sorted()
}

// Table computes the spanning forest with hash-table reservations using
// the given table kind, sized at twice the vertex count as in the
// paper's Table 8 configuration. For deterministic tables the result
// equals Serial's; for the others it is still a valid spanning forest.
func Table(n int, edges []graph.Edge, kind tables.Kind) []int {
	tab := tables.MustNew[core.PairMinOps](kind, tables.SizeFor(kind, 2*n))
	uf := unionfind.New(n)
	roots := make([][2]int32, len(edges))
	var kept keptSet

	granularity := len(edges)/50 + 256
	active := make([]int, 0, granularity+8)
	next := 0
	key := func(root int32) uint64 { return core.Pair(uint32(root)+1, 0) }
	bulk, hasBulk := tables.AsBulk(tab)
	for {
		for len(active) < granularity && next < len(edges) {
			active = append(active, next)
			next++
		}
		if len(active) == 0 {
			break
		}
		p := len(active)
		keep := make([]bool, p)
		release := make([]int32, p) // live roots whose reservation we must delete
		// --- Insert phase: reserve both roots (PairMin keeps the
		// minimum edge index per root key). With a bulk-capable table
		// the root lookups run first and the reservations land with one
		// InsertAll; the reservation multiset is exactly the per-element
		// path's, so the deterministic minimum per root is too.
		if hasBulk {
			resv := make([]uint64, 2*p)
			parallel.ForGrain(p, 1, func(j int) {
				i := active[j]
				e := edges[i]
				u := uf.Find(int(e.U))
				v := uf.Find(int(e.V))
				release[j] = -1
				if u == v {
					return
				}
				roots[i] = [2]int32{int32(u), int32(v)}
				resv[2*j] = core.Pair(uint32(u)+1, uint32(i))
				resv[2*j+1] = core.Pair(uint32(v)+1, uint32(i))
				keep[j] = true
			})
			bulk.InsertAll(parallel.Pack(resv, func(k int) bool { return resv[k] != 0 }))
		} else {
			parallel.ForGrain(p, 1, func(j int) {
				i := active[j]
				e := edges[i]
				u := uf.Find(int(e.U))
				v := uf.Find(int(e.V))
				release[j] = -1
				if u == v {
					return
				}
				roots[i] = [2]int32{int32(u), int32(v)}
				tab.Insert(core.Pair(uint32(u)+1, uint32(i)))
				tab.Insert(core.Pair(uint32(v)+1, uint32(i)))
				keep[j] = true
			})
		}
		// --- Find phase: commit edges that hold a reservation. The
		// table is read-only through this phase, so the bulk path
		// prefetches both roots' reservations with one FindAll and the
		// commit logic consumes the prefetched values.
		var found []uint64
		if hasBulk {
			probes := make([]uint64, 2*p)
			parallel.For(p, func(j int) {
				if !keep[j] {
					return
				}
				i := active[j]
				probes[2*j] = key(roots[i][0])
				probes[2*j+1] = key(roots[i][1])
			})
			found = make([]uint64, 2*p)
			bulk.FindAll(probes, found)
		}
		lookup := func(j int, slot int, k uint64) (uint64, bool) {
			if found != nil {
				e := found[2*j+slot]
				return e, e != 0
			}
			return tab.Find(k)
		}
		parallel.ForGrain(p, 1, func(j int) {
			if !keep[j] {
				return
			}
			i := active[j]
			u, v := roots[i][0], roots[i][1]
			ev, okV := lookup(j, 1, key(v))
			if okV && core.PairValue(ev) == uint32(i) {
				// v dies under u; if we also hold u (still live),
				// schedule its reservation for release.
				if eu, okU := lookup(j, 0, key(u)); okU && core.PairValue(eu) == uint32(i) {
					release[j] = u
				}
				uf.Link(int(v), int(u))
				kept.add(i)
				keep[j] = false
				return
			}
			if eu, okU := lookup(j, 0, key(u)); okU && core.PairValue(eu) == uint32(i) {
				uf.Link(int(u), int(v))
				kept.add(i)
				keep[j] = false
			}
		})
		// --- Delete phase: release reservations on surviving roots so
		// stale minima cannot block the next round. (Reservations on
		// dead roots are never consulted again and stay in the table;
		// at most one per vertex over the whole run.)
		if hasBulk {
			dels := make([]uint64, p)
			parallel.For(p, func(j int) {
				if release[j] >= 0 {
					dels[j] = key(release[j])
				}
			})
			bulk.DeleteAll(parallel.Pack(dels, func(k int) bool { return dels[k] != 0 }))
		} else {
			parallel.ForGrain(p, 1, func(j int) {
				if release[j] >= 0 {
					tab.Delete(key(release[j]))
				}
			})
		}
		w := 0
		for j := 0; j < p; j++ {
			if keep[j] {
				active[w] = active[j]
				w++
			}
		}
		active = active[:w]
	}
	return kept.sorted()
}

// Forest converts kept edge indices back to edges.
func Forest(edges []graph.Edge, kept []int) []graph.Edge {
	out := make([]graph.Edge, len(kept))
	for i, k := range kept {
		out[i] = edges[k]
	}
	return out
}

// Check verifies that kept forms a spanning forest of (n, edges): kept
// edges never close a cycle, and every graph edge has both endpoints in
// one tree. It returns the number of trees (components).
func Check(n int, edges []graph.Edge, kept []int) (int, error) {
	uf := unionfind.New(n)
	for _, i := range kept {
		e := edges[i]
		u, v := uf.Find(int(e.U)), uf.Find(int(e.V))
		if u == v {
			return 0, fmt.Errorf("spanning: kept edge %d (%d-%d) closes a cycle", i, e.U, e.V)
		}
		uf.Link(u, v)
	}
	for _, e := range edges {
		if uf.Find(int(e.U)) != uf.Find(int(e.V)) {
			return 0, fmt.Errorf("spanning: edge %d-%d connects two trees (forest not maximal)", e.U, e.V)
		}
	}
	return uf.NumRoots(), nil
}
