package spanning

import (
	"testing"

	"phasehash/internal/graph"
	"phasehash/internal/hashx"
	"phasehash/internal/tables"
)

func randomEdges(n, m int, seed uint64) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: uint32(hashx.At(seed, 2*i) % uint64(n)),
			V: uint32(hashx.At(seed, 2*i+1) % uint64(n)),
		}
	}
	return edges
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSerialValid(t *testing.T) {
	n := 500
	edges := randomEdges(n, 2000, 1)
	kept := Serial(n, edges)
	if _, err := Check(n, edges, kept); err != nil {
		t.Fatal(err)
	}
}

func TestArrayMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		n := 800
		edges := randomEdges(n, 3000, seed)
		want := Serial(n, edges)
		got := Array(n, edges)
		if !sameInts(want, got) {
			t.Fatalf("seed %d: array forest differs from serial (lens %d vs %d)", seed, len(got), len(want))
		}
		if _, err := Check(n, edges, got); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTableLinearDMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		n := 600
		edges := randomEdges(n, 2500, seed)
		want := Serial(n, edges)
		got := Table(n, edges, tables.LinearD)
		if !sameInts(want, got) {
			t.Fatalf("seed %d: linearHash-D forest differs from serial", seed)
		}
	}
}

func TestTableOtherKindsValid(t *testing.T) {
	n := 600
	edges := randomEdges(n, 2500, 9)
	wantTrees, err := Check(n, edges, Serial(n, edges))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []tables.Kind{tables.LinearND, tables.Cuckoo, tables.ChainedCR, tables.HopscotchPC} {
		kept := Table(n, edges, kind)
		trees, err := Check(n, edges, kept)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if trees != wantTrees {
			t.Fatalf("%s: %d trees, want %d", kind, trees, wantTrees)
		}
	}
}

func TestGraphInputs(t *testing.T) {
	for _, name := range graph.Names {
		g, err := graph.Build(name, 400, 5)
		if err != nil {
			t.Fatal(err)
		}
		// Convert CSR back to an edge list (u < v once per edge).
		var edges []graph.Edge
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				if int(u) > v {
					edges = append(edges, graph.Edge{U: uint32(v), V: u})
				}
			}
		}
		n := g.NumVertices()
		want := Serial(n, edges)
		for _, f := range []func() []int{
			func() []int { return Array(n, edges) },
			func() []int { return Table(n, edges, tables.LinearD) },
		} {
			got := f()
			if !sameInts(want, got) {
				t.Fatalf("%s: deterministic forest differs from serial", name)
			}
		}
	}
}

func TestEdgeCases(t *testing.T) {
	// Self-loops and duplicate edges.
	edges := []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 2}}
	kept := Array(3, edges)
	if !sameInts(kept, []int{1, 3}) {
		t.Fatalf("kept %v, want [1 3]", kept)
	}
	// Empty graph.
	if got := Table(4, nil, tables.LinearD); len(got) != 0 {
		t.Fatalf("empty edge list kept %v", got)
	}
}

func TestForest(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	f := Forest(edges, []int{1})
	if len(f) != 1 || f[0] != edges[1] {
		t.Fatalf("Forest = %v", f)
	}
}
