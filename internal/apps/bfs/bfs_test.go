package bfs

import (
	"testing"

	"phasehash/internal/graph"
	"phasehash/internal/tables"
)

func graphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"grid":   graph.Grid3D(12),           // 1728 vertices, connected
		"random": graph.Random(3000, 5, 11),  // likely connected
		"rmat":   graph.RMat(11, 3*2048, 13), // skewed, disconnected
		"path":   pathGraph(100),
		"star":   starGraph(200),
	}
}

func pathGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: uint32(i), V: uint32(i + 1)}
	}
	return graph.FromEdges(n, edges)
}

func starGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: uint32(i + 1)}
	}
	return graph.FromEdges(n, edges)
}

func TestSerialBFSValid(t *testing.T) {
	for name, g := range graphs(t) {
		parents := Serial(g, 0)
		if _, err := Check(g, 0, parents); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestArrayMatchesSerial(t *testing.T) {
	for name, g := range graphs(t) {
		want := Serial(g, 0)
		got := Array(g, 0)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("%s: parents differ at %d: serial %d, array %d", name, v, want[v], got[v])
			}
		}
	}
}

func TestTableKindsValidAndDeterministic(t *testing.T) {
	for name, g := range graphs(t) {
		want := Serial(g, 0)
		for _, kind := range []tables.Kind{tables.LinearD, tables.LinearND, tables.Cuckoo, tables.ChainedCR, tables.HopscotchPC} {
			parents := Table(g, 0, kind)
			if _, err := Check(g, 0, parents); err != nil {
				t.Fatalf("%s/%s: %v", name, kind, err)
			}
			// Every kind computes the min-parent tree (WriteMin decides
			// parents, not the table), so all match serial.
			for v := range want {
				if want[v] != parents[v] {
					t.Fatalf("%s/%s: parent of %d is %d, serial %d", name, kind, v, parents[v], want[v])
				}
			}
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two components; BFS from 0 must leave the other untouched.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}}
	g := graph.FromEdges(5, edges)
	for _, f := range []func() []int64{
		func() []int64 { return Serial(g, 0) },
		func() []int64 { return Array(g, 0) },
		func() []int64 { return Table(g, 0, tables.LinearD) },
	} {
		parents := f()
		reached, err := Check(g, 0, parents)
		if err != nil {
			t.Fatal(err)
		}
		if reached != 3 {
			t.Fatalf("reached %d vertices, want 3", reached)
		}
		if parents[3] != Unvisited || parents[4] != Unvisited {
			t.Fatal("vertices in other component were visited")
		}
	}
}

func TestSingleVertex(t *testing.T) {
	g := graph.FromEdges(1, nil)
	parents := Table(g, 0, tables.LinearD)
	if parents[0] != 0 {
		t.Fatalf("parents[0] = %d", parents[0])
	}
}

func TestRepeatedRunsIdentical(t *testing.T) {
	g := graph.Random(2000, 5, 21)
	a := Table(g, 0, tables.LinearD)
	for trial := 0; trial < 4; trial++ {
		b := Table(g, 0, tables.LinearD)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("trial %d: non-deterministic parent at %d", trial, v)
			}
		}
	}
}
