// Package bfs implements the paper's breadth-first-search application
// (Section 5, Figure 2, Table 7) three ways:
//
//   - Serial: textbook queue-based BFS (the paper's "serial" row).
//   - Array: the deterministic array-based frontier of PBBS — per-vertex
//     neighbor segments, WriteMin parent selection, prefix-sum packing
//     (the paper's "array" row).
//   - Table: the hash-table frontier of Figure 2 — parents claimed with
//     WriteMin, newly visited vertices inserted into a phase-concurrent
//     table, the next frontier obtained with Elements().
//
// All versions compute the minimum-parent BFS tree: each vertex's parent
// is the smallest-numbered neighbor in the previous level, so the
// deterministic versions agree exactly with the serial reference.
//
// Following Figure 2, visited vertices hold their parent *negated*
// (encoded -(p+1)) while a level is being processed; the exported
// functions decode before returning.
package bfs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"phasehash/internal/atomicx"
	"phasehash/internal/core"
	"phasehash/internal/graph"
	"phasehash/internal/parallel"
	"phasehash/internal/tables"
)

// Unvisited marks a vertex not reached by the search.
const Unvisited = int64(math.MaxInt64)

// Serial runs a sequential BFS from r and returns the parent array
// (parents[v] = parent of v, r for the root, Unvisited if unreachable).
// The frontier is scanned in increasing vertex order with first-claim
// wins, which makes every vertex's parent its minimum previous-level
// neighbor — the same tree the WriteMin-based parallel versions build.
func Serial(g *graph.Graph, r int) []int64 {
	n := g.NumVertices()
	parents := make([]int64, n)
	for i := range parents {
		parents[i] = Unvisited
	}
	parents[r] = int64(r)
	frontier := []uint32{uint32(r)}
	var next []uint32
	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			for _, u := range g.Neighbors(int(v)) {
				if parents[u] == Unvisited {
					parents[u] = int64(v)
					next = append(next, u)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = append(frontier[:0], next...)
	}
	return parents
}

// visited encoding: -(p+1) for a settled vertex with parent p.
func encode(p int64) int64 { return -(p + 1) }
func decode(p int64) int64 { return -p - 1 }

// claimNeighbors runs the WriteMin parent-claim pass for one frontier.
// Settled vertices are negative and skipped; claimed-but-unsettled
// vertices still accept smaller claims, which is what makes the result
// the minimum parent and hence deterministic.
func claimNeighbors(g *graph.Graph, parents []int64, frontier []uint32, won func(v uint32, u uint32)) {
	parallel.ForGrain(len(frontier), 1, func(i int) {
		v := frontier[i]
		for _, u := range g.Neighbors(int(v)) {
			if atomic.LoadInt64(&parents[u]) < 0 {
				continue // settled in an earlier level
			}
			if atomicx.WriteMinInt64(&parents[u], int64(v)) && won != nil {
				won(v, u)
			}
		}
	})
}

// settle negates the parents of the new frontier, marking them visited.
func settle(parents []int64, frontier []uint32) {
	parallel.For(len(frontier), func(i int) {
		u := frontier[i]
		parents[u] = encode(parents[u])
	})
}

// decodeAll converts the negated encoding back to plain parents.
func decodeAll(parents []int64) {
	parallel.For(len(parents), func(i int) {
		if parents[i] < 0 {
			parents[i] = decode(parents[i])
		}
	})
}

// Array runs the parallel array-based BFS (the paper's deterministic
// PBBS baseline): allocate a segment per frontier vertex sized by its
// degree, WriteMin-claim parents, copy each vertex's won neighbors into
// its segment, and pack with a prefix sum.
func Array(g *graph.Graph, r int) []int64 {
	n := g.NumVertices()
	parents := make([]int64, n)
	parallel.For(n, func(i int) { parents[i] = Unvisited })
	parents[r] = encode(int64(r))
	frontier := []uint32{uint32(r)}
	for len(frontier) > 0 {
		f := len(frontier)
		degs := make([]int, f)
		parallel.For(f, func(i int) { degs[i] = g.Degree(int(frontier[i])) })
		offsets := make([]int, f)
		total := parallel.Scan(offsets, degs)
		next := make([]uint32, total)
		const none = ^uint32(0)
		claimNeighbors(g, parents, frontier, nil)
		// With all claims settled, exactly one frontier vertex owns each
		// newly claimed neighbor; owners copy into their segments.
		parallel.ForGrain(f, 1, func(i int) {
			v := frontier[i]
			o := offsets[i]
			for _, u := range g.Neighbors(int(v)) {
				if atomic.LoadInt64(&parents[u]) == int64(v) {
					next[o] = u
					o++
				}
			}
			for ; o < offsets[i]+degs[i]; o++ {
				next[o] = none
			}
		})
		frontier = parallel.Pack(next, func(i int) bool { return next[i] != none })
		settle(parents, frontier)
	}
	decodeAll(parents)
	return parents
}

// Table runs the hash-table BFS of Figure 2 with the given table kind.
// Each level: WriteMin claims parents and winners insert the neighbor
// into a fresh table (sized to the frontier's total degree, doubled for
// cuckoo, as in the paper); Elements() yields the next frontier, with a
// deterministic order when the table is deterministic.
func Table(g *graph.Graph, r int, kind tables.Kind) []int64 {
	n := g.NumVertices()
	parents := make([]int64, n)
	parallel.For(n, func(i int) { parents[i] = Unvisited })
	parents[r] = encode(int64(r))
	frontier := []uint32{uint32(r)}
	for len(frontier) > 0 {
		sumDeg := parallel.Sum(len(frontier), func(i int) int { return g.Degree(int(frontier[i])) })
		size := ceilPow2(sumDeg + 1)
		if kind == tables.Cuckoo {
			// The paper doubles the cuckoo table for BFS; we double again
			// because a frontier whose neighbors are all distinct and
			// unvisited fills sumDeg cells, and two-choice cuckoo
			// degrades right at 50% load.
			size *= 4
		}
		tab := tables.MustNew[core.SetOps](kind, size)
		// Insert phase: winners insert newly claimed vertices. A vertex
		// can be inserted by a transient winner and then re-claimed by a
		// smaller parent; the table stores the vertex id, so duplicates
		// merge and the *final* WriteMin value is its parent either way.
		if b, ok := tables.AsBulk(tab); ok {
			// Bulk path: settle all claims first (as the array version
			// does), then each frontier vertex collects the neighbors it
			// owns and the won set is inserted with one bulk call. The
			// distinct key set — and hence the deterministic layout — is
			// identical to the per-element path's; only transient
			// duplicate inserts (which merge to nothing) are skipped.
			claimNeighbors(g, parents, frontier, nil)
			var mu sync.Mutex
			var wins []uint64
			parallel.ForBlocked(len(frontier), 1, func(lo, hi int) {
				var local []uint64
				for i := lo; i < hi; i++ {
					v := frontier[i]
					for _, u := range g.Neighbors(int(v)) {
						if atomic.LoadInt64(&parents[u]) == int64(v) {
							local = append(local, uint64(u)+1) // offset: table keys must not be 0
						}
					}
				}
				if len(local) > 0 {
					mu.Lock()
					wins = append(wins, local...)
					mu.Unlock()
				}
			})
			b.InsertAll(wins)
		} else {
			claimNeighbors(g, parents, frontier, func(_, u uint32) {
				tab.Insert(uint64(u) + 1) // offset: table keys must not be 0
			})
		}
		// Elements phase.
		elems := tab.Elements()
		next := make([]uint32, len(elems))
		parallel.For(len(elems), func(i int) { next[i] = uint32(elems[i] - 1) })
		frontier = next
		settle(parents, frontier)
	}
	decodeAll(parents)
	return parents
}

func ceilPow2(x int) int {
	m := 1
	for m < x {
		m <<= 1
	}
	return m
}

// Check verifies that parents is a valid BFS tree of g rooted at r — the
// root is its own parent, every tree edge exists in g, levels increase
// by exactly one along tree edges, and no reachable vertex is missed. It
// returns the number of reached vertices.
func Check(g *graph.Graph, r int, parents []int64) (int, error) {
	n := g.NumVertices()
	if parents[r] != int64(r) {
		return 0, fmt.Errorf("bfs: root parent is %d, want %d", parents[r], r)
	}
	// Compute levels by chasing parents (with cycle guard).
	level := make([]int64, n)
	for i := range level {
		level[i] = -1
	}
	level[r] = 0
	reached := 0
	var walk func(v int, depth int) (int64, error)
	walk = func(v int, depth int) (int64, error) {
		if depth > n {
			return 0, fmt.Errorf("bfs: parent chain cycle at %d", v)
		}
		if level[v] >= 0 {
			return level[v], nil
		}
		p := parents[v]
		if p == Unvisited {
			return -1, nil
		}
		if p < 0 || p >= int64(n) {
			return 0, fmt.Errorf("bfs: vertex %d has bad parent %d", v, p)
		}
		// Tree edge must exist.
		ok := false
		for _, u := range g.Neighbors(v) {
			if int64(u) == p {
				ok = true
				break
			}
		}
		if !ok {
			return 0, fmt.Errorf("bfs: tree edge %d-%d not in graph", v, p)
		}
		pl, err := walk(int(p), depth+1)
		if err != nil {
			return 0, err
		}
		if pl < 0 {
			return 0, fmt.Errorf("bfs: vertex %d has unvisited parent %d", v, p)
		}
		level[v] = pl + 1
		return level[v], nil
	}
	for v := 0; v < n; v++ {
		l, err := walk(v, 0)
		if err != nil {
			return 0, err
		}
		if l >= 0 {
			reached++
		}
	}
	// BFS property: every edge spans at most one level, and every vertex
	// adjacent to a visited vertex is visited.
	for v := 0; v < n; v++ {
		if level[v] < 0 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if level[u] < 0 {
				return 0, fmt.Errorf("bfs: vertex %d visited but neighbor %d not", v, u)
			}
			d := level[v] - level[u]
			if d < -1 || d > 1 {
				return 0, fmt.Errorf("bfs: edge %d-%d spans levels %d and %d", v, u, level[v], level[u])
			}
		}
	}
	return reached, nil
}
