// Package dedup implements the paper's remove-duplicates application
// (Section 5, Table 3): insert every element of a sequence into a hash
// table, then return the table's contents. With the deterministic table
// the output sequence is identical on every run and thread count; with
// the others only the output *set* is stable.
package dedup

import (
	"phasehash/internal/core"
	"phasehash/internal/parallel"
	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

// Run removes duplicates from elems using a table of the given kind. The
// table is sized per the paper's Table 3 configuration (the smallest
// power of two >= capacity; callers typically pass ~1.3-2x the expected
// distinct count — the paper uses 2^27 cells for n=10^8 inputs).
func Run(kind tables.Kind, elems []uint64, capacity int) []uint64 {
	tab := tables.MustNew[core.SetOps](kind, capacity)
	insertPhase(kind, tab, elems)
	return tab.Elements()
}

// insertPhase drives the whole insert phase: serial loop for the
// sequential baselines, the bulk kernel where the table has one
// (linearHash-D), a parallel per-element loop otherwise.
func insertPhase(kind tables.Kind, tab tables.Table, elems []uint64) {
	switch b, ok := tables.AsBulk(tab); {
	case kind.IsSerial():
		for _, e := range elems {
			tab.Insert(e)
		}
	case ok:
		b.InsertAll(elems)
	default:
		parallel.ForBlocked(len(elems), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tab.Insert(elems[i])
			}
		})
	}
}

// RunPairs removes duplicate *keys* from packed key-value elements,
// resolving each key's value with the paper's deterministic
// priority-on-values rule (minimum value wins).
func RunPairs(kind tables.Kind, elems []uint64, capacity int) []uint64 {
	tab := tables.MustNew[core.PairMinOps](kind, capacity)
	insertPhase(kind, tab, elems)
	return tab.Elements()
}

// RunStrings removes duplicate string-keyed pairs with the deterministic
// pointer table (the trigramSeq-pairInt configuration).
func RunStrings(pairs []*sequence.StrPair, capacity int) []*sequence.StrPair {
	tab := core.NewPtrTable[sequence.StrPair, sequence.StrPairOps](capacity)
	tab.InsertAll(pairs)
	return tab.Elements()
}

// RunSorting is the sorting-based baseline the paper mentions (sort, then
// keep the first of each run); used in tests as an oracle and in the
// ablation benchmark comparing hashing against sorting.
func RunSorting(elems []uint64) []uint64 {
	if len(elems) == 0 {
		return nil
	}
	s := make([]uint64, len(elems))
	copy(s, elems)
	parallel.SortInts(s)
	return parallel.Pack(s, func(i int) bool { return i == 0 || s[i] != s[i-1] })
}
