package dedup

import (
	"testing"

	"phasehash/internal/core"
	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

func TestRunMatchesSortingOracle(t *testing.T) {
	for _, dist := range []sequence.Distribution{sequence.RandomInt, sequence.ExptInt} {
		elems := sequence.WordElements(dist, 30000, 5)
		oracle := RunSorting(elems)
		for _, kind := range tables.Kinds {
			got := Run(kind, elems, 2*len(elems))
			if len(got) != len(oracle) {
				t.Fatalf("%s/%s: %d distinct, oracle %d", dist, kind, len(got), len(oracle))
			}
			seen := map[uint64]bool{}
			for _, e := range got {
				if seen[e] {
					t.Fatalf("%s/%s: duplicate %d in output", dist, kind, e)
				}
				seen[e] = true
			}
			for _, e := range oracle {
				if !seen[e] {
					t.Fatalf("%s/%s: missing %d", dist, kind, e)
				}
			}
		}
	}
}

func TestDeterministicOrderForLinearD(t *testing.T) {
	elems := sequence.RandomKeys(50000, 77)
	a := Run(tables.LinearD, elems, 1<<17)
	b := Run(tables.LinearD, elems, 1<<17)
	if len(a) != len(b) {
		t.Fatal("lengths differ across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("deterministic dedup output differs at %d", i)
		}
	}
	// And it matches the serial history-independent table's order.
	c := Run(tables.SerialHI, elems, 1<<17)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("parallel dedup order differs from serial HI at %d", i)
		}
	}
}

func TestRunStrings(t *testing.T) {
	pairs := sequence.TrigramPairs(20000, 3)
	out := RunStrings(pairs, 1<<16)
	want := map[string]uint64{}
	for _, p := range pairs {
		if v, ok := want[p.Key]; !ok || p.Val < v {
			want[p.Key] = p.Val
		}
	}
	if len(out) != len(want) {
		t.Fatalf("got %d distinct strings, want %d", len(out), len(want))
	}
	for _, p := range out {
		if p.Val != want[p.Key] {
			t.Fatalf("key %q kept value %d, want min %d", p.Key, p.Val, want[p.Key])
		}
	}
	// Deterministic order across runs.
	again := RunStrings(pairs, 1<<16)
	for i := range out {
		if out[i].Key != again[i].Key {
			t.Fatalf("string dedup order differs at %d", i)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if got := Run(tables.LinearD, nil, 16); len(got) != 0 {
		t.Errorf("empty input returned %v", got)
	}
	got := Run(tables.LinearD, []uint64{42, 42, 42}, 16)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("got %v, want [42]", got)
	}
}

func TestRunPairsDedupsByKey(t *testing.T) {
	elems := sequence.RandomPairs(20000, 9)
	out := RunPairs(tables.LinearD, elems, 2*len(elems))
	want := map[uint32]uint32{}
	for _, e := range elems {
		k, v := core.PairKey(e), core.PairValue(e)
		if cur, ok := want[k]; !ok || v < cur {
			want[k] = v
		}
	}
	if len(out) != len(want) {
		t.Fatalf("got %d distinct keys, want %d", len(out), len(want))
	}
	for _, e := range out {
		if core.PairValue(e) != want[core.PairKey(e)] {
			t.Fatalf("key %d kept value %d, want min %d",
				core.PairKey(e), core.PairValue(e), want[core.PairKey(e)])
		}
	}
	// Deterministic across kinds' *set* and across runs for linearHash-D.
	again := RunPairs(tables.LinearD, elems, 2*len(elems))
	for i := range out {
		if out[i] != again[i] {
			t.Fatalf("order differs at %d", i)
		}
	}
}
