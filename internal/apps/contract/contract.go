// Package contract implements the paper's edge-contraction application
// (Section 5, Table 6): given a vertex relabeling R (here produced by a
// deterministic maximal matching, as in the paper's graph-separator
// driver), insert every edge with distinct relabeled endpoints into a
// hash table keyed by the endpoint pair, combining duplicate edges'
// weights with '+', then return the unique relabeled edges via
// Elements().
//
// The paper CASes the entire (two-ID key, weight) edge with a
// double-word CAS. Word-sized CAS is all Go exposes, so the packed
// element here is (u:24 bits, v:24 bits, weight:16 bits) — exact for
// graphs up to 2^24 vertices, which covers every scaled experiment
// (DESIGN.md, substitutions). core.PtrTable generalizes beyond that by
// storing edge records behind a pointer.
package contract

import (
	"sync/atomic"

	"phasehash/internal/atomicx"
	"phasehash/internal/detres"
	"phasehash/internal/graph"
	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
	"phasehash/internal/tables"
)

// MaxVertices bounds the packed-edge representation.
const MaxVertices = 1 << 24

// PackEdge builds the 64-bit element for a relabeled edge: endpoints in
// canonical order in the top 48 bits, weight in the low 16 (saturating).
func PackEdge(u, v uint32, w uint16) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<40 | uint64(v)<<16 | uint64(w)
}

// UnpackEdge inverts PackEdge.
func UnpackEdge(e uint64) (u, v uint32, w uint16) {
	return uint32(e >> 40), uint32(e>>16) & (MaxVertices - 1), uint16(e)
}

// EdgeOps is the element semantics for packed weighted edges: the key is
// the endpoint pair, duplicate edges add their weights (saturating at
// 0xffff), matching the paper's '+' combine for graph partitioning.
type EdgeOps struct{}

// Hash implements core.Ops.
func (EdgeOps) Hash(e uint64) uint64 { return hashx.Mix64(e >> 16) }

// Cmp implements core.Ops.
func (EdgeOps) Cmp(a, b uint64) int {
	ka, kb := a>>16, b>>16
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	default:
		return 0
	}
}

// Merge implements core.Ops.
func (EdgeOps) Merge(cur, new uint64) uint64 {
	w := uint64(uint16(cur)) + uint64(uint16(new))
	if w > 0xffff {
		w = 0xffff
	}
	return cur&^uint64(0xffff) | w
}

// matchStep computes a deterministic maximal matching with deterministic
// reservations: edge i reserves both endpoints; it matches iff it holds
// both (lexicographically-first maximal matching).
type matchStep struct {
	edges    []graph.Edge
	reserved []uint64
	matched  []int32 // per-vertex partner, -1 if unmatched
}

func (s *matchStep) Reserve(i int) bool {
	e := s.edges[i]
	if e.U == e.V {
		return false
	}
	if atomic.LoadInt32(&s.matched[e.U]) >= 0 || atomic.LoadInt32(&s.matched[e.V]) >= 0 {
		return false
	}
	atomicx.WriteMin(&s.reserved[e.U], uint64(i))
	atomicx.WriteMin(&s.reserved[e.V], uint64(i))
	return true
}

func (s *matchStep) Commit(i int) bool {
	e := s.edges[i]
	if atomic.LoadInt32(&s.matched[e.U]) >= 0 || atomic.LoadInt32(&s.matched[e.V]) >= 0 {
		// A neighbor matched first; this edge is done. Release any marks
		// we hold so they cannot block other edges in later rounds.
		atomic.CompareAndSwapUint64(&s.reserved[e.U], uint64(i), ^uint64(0))
		atomic.CompareAndSwapUint64(&s.reserved[e.V], uint64(i), ^uint64(0))
		return true
	}
	if atomic.LoadUint64(&s.reserved[e.U]) != uint64(i) ||
		atomic.LoadUint64(&s.reserved[e.V]) != uint64(i) {
		// Release any reservation we do hold so smaller stale marks
		// cannot deadlock later rounds.
		atomic.CompareAndSwapUint64(&s.reserved[e.U], uint64(i), ^uint64(0))
		atomic.CompareAndSwapUint64(&s.reserved[e.V], uint64(i), ^uint64(0))
		return false
	}
	atomic.StoreInt32(&s.matched[e.U], int32(e.V))
	atomic.StoreInt32(&s.matched[e.V], int32(e.U))
	atomic.StoreUint64(&s.reserved[e.U], ^uint64(0))
	atomic.StoreUint64(&s.reserved[e.V], ^uint64(0))
	return true
}

// MaximalMatching returns the per-vertex partner array (-1 = unmatched)
// of the lexicographically-first maximal matching of the edge list.
//
//phasehash:serial pre-publication init: each slot is written by exactly one worker before the speculative rounds begin
func MaximalMatching(n int, edges []graph.Edge) []int32 {
	s := &matchStep{
		edges:    edges,
		reserved: make([]uint64, n),
		matched:  make([]int32, n),
	}
	parallel.For(n, func(i int) {
		s.reserved[i] = ^uint64(0)
		s.matched[i] = -1
	})
	detres.SpeculativeFor(s, 0, len(edges), 0)
	return s.matched
}

// Relabeling turns a matching into the label array R of the paper:
// matched pairs collapse to the smaller endpoint; everything else keeps
// its own ID.
func Relabeling(matched []int32) []uint32 {
	r := make([]uint32, len(matched))
	parallel.For(len(matched), func(v int) {
		p := matched[v]
		if p >= 0 && int(p) < v {
			r[v] = uint32(p)
		} else {
			r[v] = uint32(v)
		}
	})
	return r
}

// Run performs the timed portion of one contraction round with the given
// table kind: insert every edge whose relabeled endpoints differ, summing
// duplicate weights, then return the packed unique edges. The table is
// sized at 4/3 the edge count rounded to a power of two, as in Table 6.
func Run(kind tables.Kind, edges []graph.Edge, labels []uint32, weights []uint16) []uint64 {
	size := tables.SizeFor(kind, len(edges)*4/3)
	tab := tables.MustNew[EdgeOps](kind, size)
	body := func(i int) {
		e := edges[i]
		nu, nv := labels[e.U], labels[e.V]
		if nu == nv {
			return
		}
		w := uint16(1)
		if weights != nil {
			w = weights[i]
		}
		tab.Insert(PackEdge(nu, nv, w))
	}
	switch b, ok := tables.AsBulk(tab); {
	case kind.IsSerial():
		for i := range edges {
			body(i)
		}
	case ok:
		// Bulk path: pack the surviving edges (self-loops drop out of the
		// relabeled graph) and insert the whole phase with one kernel
		// call. 0 never encodes a surviving edge — PackEdge is 0 only for
		// the filtered 0-0 self-loop — so it serves as the gap sentinel.
		packed := make([]uint64, len(edges))
		parallel.For(len(edges), func(i int) {
			e := edges[i]
			nu, nv := labels[e.U], labels[e.V]
			if nu == nv {
				return
			}
			w := uint16(1)
			if weights != nil {
				w = weights[i]
			}
			packed[i] = PackEdge(nu, nv, w)
		})
		b.InsertAll(parallel.Pack(packed, func(i int) bool { return packed[i] != 0 }))
	default:
		parallel.ForBlocked(len(edges), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				body(i)
			}
		})
	}
	return tab.Elements()
}

// RunND is the paper's linearHash-ND fast path: since inserted elements
// never move, duplicate weights can be added with a direct fetch-and-add
// on the value bits instead of a full-element CAS. It exists for the
// ablation benchmark quantifying what the deterministic table pays.
// (The xadd may momentarily saturate differently than Merge; weights are
// capped well below overflow in the benchmarks.)
func RunND(edges []graph.Edge, labels []uint32, weights []uint16) []uint64 {
	size := ceilPow2(len(edges) * 4 / 3)
	tab := tables.NewLinearND[EdgeOps](size)
	parallel.ForBlocked(len(edges), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			nu, nv := labels[e.U], labels[e.V]
			if nu == nv {
				continue
			}
			w := uint16(1)
			if weights != nil {
				w = weights[i]
			}
			tab.Insert(PackEdge(nu, nv, w))
		}
	})
	return tab.Elements()
}

func ceilPow2(x int) int {
	m := 1
	for m < x {
		m <<= 1
	}
	return m
}
