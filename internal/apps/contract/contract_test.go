package contract

import (
	"testing"

	"phasehash/internal/graph"
	"phasehash/internal/hashx"
	"phasehash/internal/tables"
)

func randomEdges(n, m int, seed uint64) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: uint32(hashx.At(seed, 2*i) % uint64(n)),
			V: uint32(hashx.At(seed, 2*i+1) % uint64(n)),
		}
	}
	return edges
}

// serialGreedyMatching is the reference lexicographically-first matching.
func serialGreedyMatching(n int, edges []graph.Edge) []int32 {
	matched := make([]int32, n)
	for i := range matched {
		matched[i] = -1
	}
	for _, e := range edges {
		if e.U != e.V && matched[e.U] < 0 && matched[e.V] < 0 {
			matched[e.U] = int32(e.V)
			matched[e.V] = int32(e.U)
		}
	}
	return matched
}

func TestMaximalMatchingMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		n := 500
		edges := randomEdges(n, 1500, seed)
		want := serialGreedyMatching(n, edges)
		got := MaximalMatching(n, edges)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("seed %d: matched[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestMatchingIsMaximal(t *testing.T) {
	n := 1000
	edges := randomEdges(n, 4000, 3)
	matched := MaximalMatching(n, edges)
	for _, e := range edges {
		if e.U != e.V && matched[e.U] < 0 && matched[e.V] < 0 {
			t.Fatalf("edge %d-%d unmatched on both ends (not maximal)", e.U, e.V)
		}
	}
	// Consistency: partners point at each other.
	for v, p := range matched {
		if p >= 0 && matched[p] != int32(v) {
			t.Fatalf("matched[%d]=%d but matched[%d]=%d", v, p, p, matched[p])
		}
	}
}

func TestPackUnpack(t *testing.T) {
	for _, c := range []struct {
		u, v uint32
		w    uint16
	}{{1, 2, 3}, {0, MaxVertices - 1, 0xffff}, {7, 7, 1}, {100000, 5, 9}} {
		u, v, w := UnpackEdge(PackEdge(c.u, c.v, c.w))
		wu, wv := c.u, c.v
		if wu > wv {
			wu, wv = wv, wu
		}
		if u != wu || v != wv || w != c.w {
			t.Fatalf("roundtrip (%d,%d,%d) -> (%d,%d,%d)", c.u, c.v, c.w, u, v, w)
		}
	}
}

// referenceContract computes the expected contracted edge multiset with a
// plain map.
func referenceContract(edges []graph.Edge, labels []uint32, weights []uint16) map[uint64]uint64 {
	out := map[uint64]uint64{}
	for i, e := range edges {
		nu, nv := labels[e.U], labels[e.V]
		if nu == nv {
			continue
		}
		if nu > nv {
			nu, nv = nv, nu
		}
		key := uint64(nu)<<24 | uint64(nv)
		w := uint64(1)
		if weights != nil {
			w = uint64(weights[i])
		}
		out[key] += w
		if out[key] > 0xffff {
			out[key] = 0xffff
		}
	}
	return out
}

func TestRunAllKinds(t *testing.T) {
	n := 400
	edges := randomEdges(n, 2000, 7)
	labels := Relabeling(MaximalMatching(n, edges))
	want := referenceContract(edges, labels, nil)
	for _, kind := range []tables.Kind{tables.SerialHI, tables.LinearD, tables.LinearND, tables.Cuckoo, tables.ChainedCR} {
		out := Run(kind, edges, labels, nil)
		if len(out) != len(want) {
			t.Fatalf("%s: %d contracted edges, want %d", kind, len(out), len(want))
		}
		for _, e := range out {
			u, v, w := UnpackEdge(e)
			key := uint64(u)<<24 | uint64(v)
			if uint64(w) != want[key] {
				t.Fatalf("%s: edge (%d,%d) weight %d, want %d", kind, u, v, w, want[key])
			}
		}
	}
	// The ND xadd fast path agrees too.
	out := RunND(edges, labels, nil)
	if len(out) != len(want) {
		t.Fatalf("RunND: %d edges, want %d", len(out), len(want))
	}
	for _, e := range out {
		u, v, w := UnpackEdge(e)
		if uint64(w) != want[uint64(u)<<24|uint64(v)] {
			t.Fatalf("RunND: edge (%d,%d) wrong weight %d", u, v, w)
		}
	}
}

func TestRunDeterministicOrder(t *testing.T) {
	n := 400
	edges := randomEdges(n, 2000, 11)
	labels := Relabeling(MaximalMatching(n, edges))
	a := Run(tables.LinearD, edges, labels, nil)
	b := Run(tables.LinearD, edges, labels, nil)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("contracted edge order differs at %d", i)
		}
	}
}

func TestWeightSaturation(t *testing.T) {
	// 10 copies of the same edge with weight 30000: sum saturates at
	// 0xffff rather than wrapping.
	edges := make([]graph.Edge, 10)
	weights := make([]uint16, 10)
	for i := range edges {
		edges[i] = graph.Edge{U: 1, V: 2}
		weights[i] = 30000
	}
	labels := []uint32{0, 1, 2}
	out := Run(tables.LinearD, edges, labels, weights)
	if len(out) != 1 {
		t.Fatalf("got %d edges", len(out))
	}
	if _, _, w := UnpackEdge(out[0]); w != 0xffff {
		t.Fatalf("weight %d, want saturated 0xffff", w)
	}
}
