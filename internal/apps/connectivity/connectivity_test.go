package connectivity

import (
	"testing"

	"phasehash/internal/graph"
	"phasehash/internal/hashx"
	"phasehash/internal/tables"
)

// referenceComponents labels components with a sequential union-find,
// canonicalized to minimum member.
func referenceComponents(n int, edges []graph.Edge) []uint32 {
	parent := make([]uint32, n)
	for v := range parent {
		parent[v] = uint32(v)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		if ru < rv {
			parent[rv] = ru
		} else {
			parent[ru] = rv
		}
	}
	out := make([]uint32, n)
	min := make([]uint32, n)
	for v := range min {
		min[v] = uint32(n)
	}
	for v := 0; v < n; v++ {
		r := find(uint32(v))
		if uint32(v) < min[r] {
			min[r] = uint32(v)
		}
	}
	for v := 0; v < n; v++ {
		out[v] = min[find(uint32(v))]
	}
	return out
}

func randomEdges(n, m int, seed uint64) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: uint32(hashx.At(seed, 2*i) % uint64(n)),
			V: uint32(hashx.At(seed, 2*i+1) % uint64(n)),
		}
	}
	return edges
}

func TestComponentsMatchesUnionFind(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		n := 2000
		// Sparse: many components.
		edges := randomEdges(n, n/2, seed)
		want := referenceComponents(n, edges)
		got := Components(n, edges, tables.LinearD)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("seed %d: label[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestComponentsDenseConnected(t *testing.T) {
	n := 3000
	edges := randomEdges(n, 5*n, 9)
	got := Components(n, edges, tables.LinearD)
	want := referenceComponents(n, edges)
	if NumComponents(got) != NumComponents(want) {
		t.Fatalf("components: %d, want %d", NumComponents(got), NumComponents(want))
	}
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("label[%d] differs", v)
		}
	}
}

func TestComponentsGraphGenerators(t *testing.T) {
	for _, name := range graph.Names {
		g, err := graph.Build(name, 1000, 5)
		if err != nil {
			t.Fatal(err)
		}
		var edges []graph.Edge
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				if int(u) > v {
					edges = append(edges, graph.Edge{U: uint32(v), V: u})
				}
			}
		}
		n := g.NumVertices()
		want := referenceComponents(n, edges)
		got := Components(n, edges, tables.LinearD)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("%s: label[%d] differs", name, v)
			}
		}
	}
}

func TestComponentsStarGraph(t *testing.T) {
	// Star: matching contracts slowly; exercises the propagate fallback.
	n := 500
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: uint32(i + 1)}
	}
	got := Components(n, edges, tables.LinearD)
	for v := 0; v < n; v++ {
		if got[v] != 0 {
			t.Fatalf("star label[%d] = %d, want 0", v, got[v])
		}
	}
}

func TestComponentsEdgeCases(t *testing.T) {
	// Empty graph.
	got := Components(5, nil, tables.LinearD)
	for v := 0; v < 5; v++ {
		if got[v] != uint32(v) {
			t.Fatalf("isolated vertex %d labelled %d", v, got[v])
		}
	}
	// Self-loops only.
	got = Components(3, []graph.Edge{{U: 1, V: 1}}, tables.LinearD)
	if NumComponents(got) != 3 {
		t.Fatalf("self-loop merged components: %v", got)
	}
}

func TestComponentsDeterministicAcrossRunsAndKinds(t *testing.T) {
	n := 2000
	edges := randomEdges(n, 3*n, 21)
	a := Components(n, edges, tables.LinearD)
	b := Components(n, edges, tables.LinearD)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("non-deterministic at %d", v)
		}
	}
	// Canonical labels are table-independent (min-vertex labelling), so
	// even non-deterministic tables agree on the final labelling.
	c := Components(n, edges, tables.LinearND)
	for v := range a {
		if a[v] != c[v] {
			t.Fatalf("ND table changed canonical labels at %d", v)
		}
	}
}
