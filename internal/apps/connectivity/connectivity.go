// Package connectivity implements parallel graph connectivity by
// recursive edge contraction — the algorithm of Shun, Dhulipala &
// Blelloch (SPAA 2014, the paper's reference [31]) that the paper's
// edge-contraction section names as the consumer of deterministic
// duplicate-removal on contraction:
//
//	repeat until no edges remain:
//	  1. compute a maximal matching of the current edges
//	     (deterministic reservations)
//	  2. contract matched pairs into supervertices
//	  3. relabel the edges and REMOVE DUPLICATES with the deterministic
//	     hash table (insert + Elements — the paper's Table 6 kernel)
//
// Labels propagate through the contraction tree, so the final component
// labels are canonical (each component is labelled by its minimum
// vertex via the lexicographically-first matchings), and with the
// deterministic table the whole execution is deterministic.
package connectivity

import (
	"phasehash/internal/apps/contract"
	"phasehash/internal/graph"
	"phasehash/internal/parallel"
	"phasehash/internal/tables"
)

// maxRounds bounds contraction rounds; each round at least halves the
// matched subgraph, so log2(n) rounds always suffice for matchable
// graphs, but star-like rounds can match only a little — cap generously
// and fall through to a final label propagation.
const maxRounds = 64

// Components returns a label per vertex such that two vertices have
// equal labels iff they are connected, computed by recursive edge
// contraction with duplicate removal in a table of the given kind.
// Labels are canonical: each component's label is its minimum vertex id.
func Components(n int, edges []graph.Edge, kind tables.Kind) []uint32 {
	if n >= contract.MaxVertices {
		panic("connectivity: graph too large for packed edge contraction")
	}
	// labels[v] = v's current supervertex.
	labels := make([]uint32, n)
	parallel.For(n, func(v int) { labels[v] = uint32(v) })

	cur := append([]graph.Edge(nil), edges...)
	for round := 0; round < maxRounds && len(cur) > 0; round++ {
		// 1. Maximal matching on the contracted graph.
		matched := contract.MaximalMatching(n, cur)
		relab := contract.Relabeling(matched)
		// Matched pairs merge; apply to the global labels: every vertex
		// whose current supervertex got relabelled follows it.
		parallel.For(n, func(v int) { labels[v] = relab[labels[v]] })
		// 2+3. Contract and dedup through the hash table (the timed
		// kernel of the paper's Table 6).
		packed := contract.Run(kind, cur, relab, nil)
		next := make([]graph.Edge, len(packed))
		parallel.For(len(packed), func(i int) {
			u, v, _ := contract.UnpackEdge(packed[i])
			next[i] = graph.Edge{U: u, V: v}
		})
		if len(next) == len(cur) && matchedNone(matched) {
			// No progress is possible through matching alone (adversarial
			// structure); finish with label propagation.
			return propagate(n, labels, cur)
		}
		cur = next
	}
	if len(cur) > 0 {
		return propagate(n, labels, cur)
	}
	// Canonicalize: point every vertex at the minimum original vertex of
	// its supervertex chain (labels already form a forest onto
	// representatives; compress).
	return canonicalize(n, labels)
}

func matchedNone(matched []int32) bool {
	for _, m := range matched {
		if m >= 0 {
			return false
		}
	}
	return true
}

// propagate finishes connectivity sequentially on the residual edges
// (only reached for adversarial inputs where matching stalls).
func propagate(n int, labels []uint32, residual []graph.Edge) []uint32 {
	parent := make([]uint32, n)
	for v := range parent {
		parent[v] = labels[v]
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range residual {
		ru, rv := find(labels[e.U]), find(labels[e.V])
		if ru == rv {
			continue
		}
		if ru < rv {
			parent[rv] = ru
		} else {
			parent[ru] = rv
		}
	}
	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = find(uint32(v))
	}
	return canonicalize(n, out)
}

// canonicalize maps each label-chain to the component's minimum vertex.
func canonicalize(n int, labels []uint32) []uint32 {
	// Compress chains: labels[v] may point at another merged vertex.
	out := make([]uint32, n)
	var resolve func(v uint32, depth int) uint32
	resolve = func(v uint32, depth int) uint32 {
		if depth > n {
			return v // cycle guard; cannot happen with min-linking
		}
		if labels[v] == v {
			return v
		}
		r := resolve(labels[v], depth+1)
		labels[v] = r
		return r
	}
	for v := 0; v < n; v++ {
		out[v] = resolve(uint32(v), 0)
	}
	// Re-canonicalize to the minimum member per root (matching links to
	// the smaller endpoint, so roots are already minima; this is a
	// safety normalization for the propagate path).
	min := make([]uint32, n)
	for v := range min {
		min[v] = uint32(n)
	}
	for v := 0; v < n; v++ {
		r := out[v]
		if uint32(v) < min[r] {
			min[r] = uint32(v)
		}
	}
	for v := 0; v < n; v++ {
		out[v] = min[out[v]]
	}
	return out
}

// NumComponents counts distinct labels.
func NumComponents(labels []uint32) int {
	seen := map[uint32]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
