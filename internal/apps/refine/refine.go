// Package refine implements the paper's Delaunay-refinement application
// (Section 5, Table 4): iteratively insert circumcenters of "bad"
// triangles (minimum angle below a bound) until none remain or a point
// budget is exhausted. Bad triangles live in a phase-concurrent hash
// table; each iteration calls Elements() to obtain them in a
// deterministic order, marks the triangles each insertion would affect
// with WriteMin (deterministic reservations, priorities = positions in
// the Elements() output), applies the non-conflicting winners, and
// inserts the surviving and newly created bad triangles into the next
// table. With a deterministic table, the whole refinement — including
// the final mesh — is deterministic.
//
// Substitution note (DESIGN.md): the paper's mesh updates run in
// parallel under Cilk; here the winners' cavity insertions are applied
// in priority order on one goroutine (they are provably disjoint, so
// the result is identical), while both hash-table phases and the
// reservation phase — the code paths Table 4 times — run in parallel.
// Boundary/encroachment handling of full Ruppert refinement is out of
// scope on random-point inputs: circumcenters falling outside the
// bounding triangle are skipped.
package refine

import (
	"math"
	"sync"
	"time"

	"phasehash/internal/atomicx"
	"phasehash/internal/core"
	"phasehash/internal/delaunay"
	"phasehash/internal/geom"
	"phasehash/internal/parallel"
	"phasehash/internal/tables"
)

// Config controls a refinement run.
type Config struct {
	// MinAngleDeg is the quality bound α: triangles with a smaller
	// minimum angle are bad. The classic safe bound is <= ~20-28°.
	MinAngleDeg float64
	// MaxPoints caps the number of inserted circumcenters (0 = no cap).
	MaxPoints int
	// MaxRounds caps refinement iterations (0 = no cap).
	MaxRounds int
	// Kind selects the bad-triangle table implementation.
	Kind tables.Kind
}

// Stats reports a refinement run.
type Stats struct {
	Rounds      int
	PointsAdded int
	BadInitial  int
	BadFinal    int
	// TableTime is the total wall time spent in the hash-table phases
	// (Elements() calls plus bad-triangle insertions) — the portion the
	// paper's Table 4 reports.
	TableTime time.Duration
}

// noMark is the reservation array's empty value.
const noMark = ^uint64(0)

// Run refines the mesh in place and returns statistics.
func Run(m *delaunay.Mesh, cfg Config) Stats {
	cosBound := math.Cos(cfg.MinAngleDeg * math.Pi / 180)
	var st Stats

	isBad := func(t int32) bool {
		if !m.IsReal(t) {
			return false
		}
		a, b, c := m.TriPoints(t)
		return geom.MinAngleCos(a, b, c) > cosBound
	}

	// Initial bad set, via a table insert phase + Elements (timed).
	real := m.RealTriangles()
	tab := newTable(cfg.Kind, len(real))
	t0 := time.Now()
	parallel.ForGrain(len(real), 64, func(i int) {
		if isBad(real[i]) {
			tab.Insert(uint64(real[i]) + 1)
		}
	})
	bad := tab.Elements()
	st.TableTime += time.Since(t0)
	st.BadInitial = len(bad)

	bufPool := sync.Pool{New: func() any { return delaunay.NewCavityBuf() }}

	for len(bad) > 0 {
		if cfg.MaxRounds > 0 && st.Rounds >= cfg.MaxRounds {
			break
		}
		if cfg.MaxPoints > 0 && st.PointsAdded >= cfg.MaxPoints {
			break
		}
		st.Rounds++

		// Reservation phase: each bad triangle computes the triangles
		// its circumcenter insertion would affect (cavity + boundary
		// neighbors) and WriteMin-marks them with its priority.
		marks := make([]uint64, len(m.Tris))
		parallel.For(len(marks), func(i int) { marks[i] = noMark })
		centers := make([]geom.Point, len(bad))
		ok := make([]bool, len(bad))
		parallel.ForBlocked(len(bad), 8, func(lo, hi int) {
			buf := bufPool.Get().(*delaunay.CavityBuf)
			defer bufPool.Put(buf)
			for i := lo; i < hi; i++ {
				t := int32(bad[i] - 1)
				if !isBad(t) { // may have been destroyed last round
					continue
				}
				a, b, c := m.TriPoints(t)
				cc := geom.Circumcenter(a, b, c)
				if !m.InSuperTriangle(cc) {
					continue // unrefinable without boundary handling
				}
				centers[i] = cc
				ok[i] = true
				cav := m.CavityRO(cc, t, buf)
				for _, ct := range cav {
					atomicx.WriteMin(&marks[ct], uint64(i))
					for _, nt := range m.Neighbors3(ct) {
						if nt != delaunay.NoTri {
							atomicx.WriteMin(&marks[nt], uint64(i))
						}
					}
				}
			}
		})
		// Winner detection: a bad triangle is active iff it holds every
		// mark it wrote.
		active := make([]bool, len(bad))
		parallel.ForBlocked(len(bad), 8, func(lo, hi int) {
			buf := bufPool.Get().(*delaunay.CavityBuf)
			defer bufPool.Put(buf)
			for i := lo; i < hi; i++ {
				if !ok[i] {
					continue
				}
				t := int32(bad[i] - 1)
				cav := m.CavityRO(centers[i], t, buf)
				won := true
			check:
				for _, ct := range cav {
					if marks[ct] != uint64(i) {
						won = false
						break
					}
					for _, nt := range m.Neighbors3(ct) {
						if nt != delaunay.NoTri && marks[nt] != uint64(i) {
							won = false
							break check
						}
					}
				}
				active[i] = won
			}
		})

		// Apply phase: winners' cavities are disjoint, so applying them
		// in priority order is equivalent to any parallel schedule.
		var created []int32
		applied := 0
		for i := range bad {
			if !active[i] {
				continue
			}
			_, newTris := m.InsertPoint(centers[i])
			created = append(created, newTris...)
			applied++
			st.PointsAdded++
			if cfg.MaxPoints > 0 && st.PointsAdded >= cfg.MaxPoints {
				break
			}
		}

		// Next bad set: new bad triangles plus surviving losers (timed:
		// this is the per-iteration "hash table portion" of Table 4 —
		// insertions followed by Elements()).
		tab = newTable(cfg.Kind, 2*(len(created)+len(bad)))
		t0 = time.Now()
		parallel.ForGrain(len(created), 16, func(i int) {
			if isBad(created[i]) {
				tab.Insert(uint64(created[i]) + 1)
			}
		})
		parallel.ForGrain(len(bad), 16, func(i int) {
			t := int32(bad[i] - 1)
			if !active[i] && isBad(t) {
				tab.Insert(uint64(t) + 1)
			}
		})
		newBad := tab.Elements()
		st.TableTime += time.Since(t0)
		bad = newBad

		// Progress guard: the minimum-priority viable triangle always
		// wins its reservations, so applied == 0 means every remaining
		// bad triangle's circumcenter escapes the domain — no further
		// progress is possible without boundary handling.
		if applied == 0 {
			break
		}
	}
	st.BadFinal = len(bad)
	return st
}

// newTable sizes the bad-triangle table as the paper does for Table 4:
// twice the number of bad triangles, rounded up to a power of two.
func newTable(kind tables.Kind, n int) tables.Table {
	return tables.MustNew[core.SetOps](kind, tables.SizeFor(kind, 2*n+2))
}

// CountBad counts bad triangles in the mesh for a given angle bound —
// used by tests and the example to confirm refinement progress.
func CountBad(m *delaunay.Mesh, minAngleDeg float64) int {
	cosBound := math.Cos(minAngleDeg * math.Pi / 180)
	n := 0
	for _, t := range m.RealTriangles() {
		a, b, c := m.TriPoints(t)
		if geom.MinAngleCos(a, b, c) > cosBound {
			n++
		}
	}
	return n
}
