package refine

import (
	"testing"

	"phasehash/internal/delaunay"
	"phasehash/internal/geom"
	"phasehash/internal/tables"
)

func TestRefinementImprovesQuality(t *testing.T) {
	pts := geom.InCube(2000, 7)
	m := delaunay.Build(pts)
	before := CountBad(m, 25)
	if before == 0 {
		t.Skip("input already refined (unexpected for random points)")
	}
	st := Run(m, Config{MinAngleDeg: 25, MaxPoints: 20000, Kind: tables.LinearD})
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if st.BadInitial != before {
		t.Errorf("BadInitial = %d, CountBad said %d", st.BadInitial, before)
	}
	after := CountBad(m, 25)
	if after >= before/2 {
		t.Errorf("bad triangles %d -> %d; refinement barely progressed", before, after)
	}
	if st.PointsAdded == 0 {
		t.Error("no points added")
	}
	if st.TableTime <= 0 {
		t.Error("TableTime not recorded")
	}
}

func TestRefinementDeterministic(t *testing.T) {
	pts := geom.InCube(800, 9)
	run := func() (*delaunay.Mesh, Stats) {
		m := delaunay.Build(pts)
		st := Run(m, Config{MinAngleDeg: 22, MaxPoints: 5000, MaxRounds: 10, Kind: tables.LinearD})
		return m, st
	}
	m1, s1 := run()
	m2, s2 := run()
	if s1.PointsAdded != s2.PointsAdded || s1.Rounds != s2.Rounds {
		t.Fatalf("stats differ across runs: %+v vs %+v", s1, s2)
	}
	if len(m1.Pts) != len(m2.Pts) {
		t.Fatalf("point counts differ: %d vs %d", len(m1.Pts), len(m2.Pts))
	}
	for i := range m1.Pts {
		if m1.Pts[i] != m2.Pts[i] {
			t.Fatalf("inserted point %d differs: %v vs %v", i, m1.Pts[i], m2.Pts[i])
		}
	}
}

func TestRefinementOtherTables(t *testing.T) {
	// Non-deterministic tables must still converge to a valid mesh with
	// no bad triangles (the *set* of bad triangles per round is the
	// same; only the order differs, which changes which points get
	// added but not validity).
	for _, kind := range []tables.Kind{tables.LinearND, tables.Cuckoo, tables.ChainedCR} {
		pts := geom.InCube(500, 11)
		m := delaunay.Build(pts)
		st := Run(m, Config{MinAngleDeg: 20, MaxPoints: 10000, Kind: kind})
		if err := m.Check(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if st.PointsAdded == 0 {
			t.Fatalf("%s: no progress", kind)
		}
	}
}

func TestKuzminInput(t *testing.T) {
	pts := geom.Kuzmin(800, 13)
	m := delaunay.Build(pts)
	st := Run(m, Config{MinAngleDeg: 20, MaxPoints: 8000, MaxRounds: 30, Kind: tables.LinearD})
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if st.PointsAdded == 0 && st.BadInitial > 0 {
		t.Error("kuzmin refinement made no progress")
	}
}

func TestMaxRoundsHonored(t *testing.T) {
	pts := geom.InCube(1000, 15)
	m := delaunay.Build(pts)
	st := Run(m, Config{MinAngleDeg: 28, MaxRounds: 2, Kind: tables.LinearD})
	if st.Rounds > 2 {
		t.Fatalf("Rounds = %d, cap was 2", st.Rounds)
	}
}
