// Package suffixapp drives the paper's suffix-tree experiment (Section
// 5, Table 5): build a suffix tree over a text with the node-child index
// in a hash table (5a times the index insert phase), then search a
// million random patterns (5b times the find phase).
//
// The paper's corpora are etext99 (English text, 105 MB), rctail96
// (retail/Reuters-style records) and sprot34.dat (protein sequences).
// We synthesize corpora of the same character classes at configurable
// size (DESIGN.md, substitutions): trigram-model English, digit-heavy
// delimited records, and 20-letter-alphabet protein strings.
package suffixapp

import (
	"sync/atomic"
	"time"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
	"phasehash/internal/sequence"
	"phasehash/internal/suffix"
	"phasehash/internal/tables"
)

// Corpus names the paper's three texts.
type Corpus string

// The texts of Table 5.
const (
	Etext  Corpus = "etext99"
	Rctail Corpus = "rctail96"
	Sprot  Corpus = "sprot34.dat"
)

// Corpora lists the texts in the paper's column order.
var Corpora = []Corpus{Etext, Rctail, Sprot}

// MakeText synthesizes a corpus of approximately n bytes.
func MakeText(c Corpus, n int, seed uint64) []byte {
	switch c {
	case Etext:
		// English-like running text from the trigram word model.
		words := sequence.TrigramWords(n/5+1, seed)
		buf := make([]byte, 0, n+16)
		for _, w := range words {
			if len(buf) >= n {
				break
			}
			buf = append(buf, w...)
			buf = append(buf, ' ')
		}
		return buf[:min(n, len(buf))]
	case Rctail:
		// Retail-transaction-like records: runs of digit item codes
		// separated by spaces and newlines.
		buf := make([]byte, n)
		parallel.For(n, func(i int) {
			r := hashx.At(seed, i)
			switch {
			case i%64 == 63:
				buf[i] = '\n'
			case r%5 == 0:
				buf[i] = ' '
			default:
				buf[i] = '0' + byte(r%10)
			}
		})
		return buf
	case Sprot:
		// Protein sequences: the 20 amino-acid letters with rare
		// newline-delimited headers.
		const amino = "ACDEFGHIKLMNPQRSTVWY"
		buf := make([]byte, n)
		parallel.For(n, func(i int) {
			if i%80 == 79 {
				buf[i] = '\n'
				return
			}
			buf[i] = amino[hashx.At(seed, i)%uint64(len(amino))]
		})
		return buf
	default:
		panic("suffixapp: unknown corpus " + string(c))
	}
}

// Patterns builds the paper's search workload: m patterns of length
// uniform in [1, 50], half random substrings of the text (hits), half
// random strings over the text's byte-classes (mostly misses).
func Patterns(text []byte, m int, seed uint64) [][]byte {
	pats := make([][]byte, m)
	parallel.For(m, func(i int) {
		l := int(hashx.At(seed, i)%50) + 1
		if l > len(text) {
			l = len(text)
		}
		if i%2 == 0 {
			start := int(hashx.At(seed+1, i) % uint64(len(text)-l+1))
			pats[i] = text[start : start+l]
		} else {
			p := make([]byte, l)
			for j := range p {
				p[j] = 'a' + byte(hashx.At(seed+2, i*64+j)%26)
			}
			pats[i] = p
		}
	})
	return pats
}

// Result reports one run of the experiment.
type Result struct {
	Nodes      int
	InsertTime time.Duration // Table 5(a): child-index insert phase
	SearchTime time.Duration // Table 5(b): pattern find phase
	Found      int
}

// Run executes the Table 5 experiment for one corpus and table kind.
// Tree construction (suffix array, LCP, structure) is untimed input
// preparation, as in the paper.
func Run(tree *suffix.Tree, pats [][]byte, kind tables.Kind) Result {
	var res Result
	res.Nodes = tree.NumNodes()
	t0 := time.Now()
	tree.BuildIndex(kind)
	res.InsertTime = time.Since(t0)

	t0 = time.Now()
	if kind.IsSerial() {
		n := 0
		for _, p := range pats {
			if tree.Contains(p) {
				n++
			}
		}
		res.Found = n
	} else {
		var found atomic.Int64
		parallel.ForBlocked(len(pats), 0, func(lo, hi int) {
			n := int64(0)
			for i := lo; i < hi; i++ {
				if tree.Contains(pats[i]) {
					n++
				}
			}
			found.Add(n)
		})
		res.Found = int(found.Load())
	}
	res.SearchTime = time.Since(t0)
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
