package suffixapp

import (
	"bytes"
	"testing"

	"phasehash/internal/suffix"
	"phasehash/internal/tables"
)

func TestMakeTextShapes(t *testing.T) {
	for _, c := range Corpora {
		text := MakeText(c, 5000, 7)
		if len(text) == 0 || len(text) > 5200 {
			t.Fatalf("%s: length %d", c, len(text))
		}
		for _, b := range text {
			if b == 0 {
				t.Fatalf("%s: contains 0 byte (reserved terminator)", c)
			}
		}
		// Deterministic.
		again := MakeText(c, 5000, 7)
		if !bytes.Equal(text, again) {
			t.Fatalf("%s: not deterministic", c)
		}
	}
	// Character classes differ across corpora.
	et := MakeText(Etext, 2000, 1)
	if bytes.ContainsAny(et, "0123456789") {
		t.Error("etext contains digits")
	}
	rc := MakeText(Rctail, 2000, 1)
	if !bytes.ContainsAny(rc, "0123456789") {
		t.Error("rctail lacks digits")
	}
	sp := MakeText(Sprot, 2000, 1)
	if bytes.ContainsAny(sp, "bjouxz") {
		t.Error("sprot contains non-amino letters")
	}
}

func TestPatternsHalfHit(t *testing.T) {
	text := MakeText(Etext, 20000, 3)
	pats := Patterns(text, 1000, 9)
	if len(pats) != 1000 {
		t.Fatal("wrong pattern count")
	}
	hits := 0
	for i, p := range pats {
		if len(p) == 0 || len(p) > 50 {
			t.Fatalf("pattern %d has length %d", i, len(p))
		}
		if bytes.Contains(text, p) {
			hits++
		}
	}
	// At least the substring half must hit.
	if hits < 500 {
		t.Fatalf("only %d/1000 patterns hit", hits)
	}
}

func TestRunCountsMatchOracle(t *testing.T) {
	text := MakeText(Sprot, 15000, 5)
	tree := suffix.New(text)
	pats := Patterns(text, 400, 11)
	wantFound := 0
	for _, p := range pats {
		if bytes.Contains(text, p) {
			wantFound++
		}
	}
	for _, kind := range []tables.Kind{tables.LinearD, tables.LinearND, tables.SerialHI} {
		res := Run(tree, pats, kind)
		if res.Found != wantFound {
			t.Fatalf("%s: found %d, oracle %d", kind, res.Found, wantFound)
		}
		if res.Nodes != tree.NumNodes() {
			t.Fatalf("%s: nodes %d", kind, res.Nodes)
		}
		if res.InsertTime <= 0 || res.SearchTime <= 0 {
			t.Fatalf("%s: missing timings %+v", kind, res)
		}
	}
}
