package tables

import (
	"testing"

	"phasehash/internal/core"
	"phasehash/internal/tune"
)

// autoScript drives one AutoTable through a fixed operation script:
// fill to high load, run a find-heavy stretch, then a bulk find (the
// boundary where the kind decision fires). Returns the table for
// inspection.
func autoScript(n int) *AutoTable[core.SetOps] {
	a := NewAutoTable[core.SetOps](n)
	elems := make([]uint64, 0, n*8/10)
	for v := uint64(1); v <= uint64(n*8/10); v++ {
		elems = append(elems, v)
	}
	a.InsertAll(elems) // load ~0.8
	for i := 0; i < 4; i++ {
		a.FindAll(elems, nil) // find-heavy mix
	}
	return a
}

// TestAutoTableMigratesToCompact asserts the representation switches
// to compact once the load factor and find share cross the tune
// thresholds, preserving the element set, and that the decision is
// recorded.
func TestAutoTableMigratesToCompact(t *testing.T) {
	a := autoScript(1 << 12)
	if a.Kind() != LinearDCompact {
		t.Fatalf("kind after find-heavy high-load script = %v, want %v (trace: %q)",
			a.Kind(), LinearDCompact, a.TuneTrace())
	}
	if a.TuneTrace() == "" {
		t.Fatal("migration left no decision trace")
	}
	want := (1 << 12) * 8 / 10
	if got := a.Count(); got != want {
		t.Fatalf("Count after migration = %d, want %d", got, want)
	}
	if _, ok := a.Find(1); !ok {
		t.Fatal("element lost in migration")
	}
	// Compact layout carries a ctrl array: footprint grows past 8B/slot.
	if got := a.Bytes(); got <= a.Size()*8 {
		t.Fatalf("compact Bytes = %d, want > %d", got, a.Size()*8)
	}
}

// TestAutoTableMigratesBack asserts a delete-heavy low-load stretch
// flips the representation back to flat.
func TestAutoTableMigratesBack(t *testing.T) {
	a := autoScript(1 << 12)
	if a.Kind() != LinearDCompact {
		t.Skipf("precondition: script did not reach compact (trace %q)", a.TuneTrace())
	}
	elems := a.Elements()
	a.DeleteAll(elems[:len(elems)*9/10]) // load collapses
	a.DeleteAll(elems[len(elems)*9/10:]) // boundary sees the low load
	a.InsertAll([]uint64{7, 9})          // next boundary re-decides: flat
	if a.Kind() != LinearD {
		t.Fatalf("kind after drain = %v, want %v (trace: %q)", a.Kind(), LinearD, a.TuneTrace())
	}
	if got := a.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

// TestAutoTableDeterministicReplay asserts two runs of the same script
// produce byte-identical element order and identical decision traces —
// the AutoTable half of the tuning determinism contract.
func TestAutoTableDeterministicReplay(t *testing.T) {
	a := autoScript(1 << 12)
	b := autoScript(1 << 12)
	if a.TuneTrace() != b.TuneTrace() {
		t.Fatalf("traces diverge:\n%q\nvs\n%q", a.TuneTrace(), b.TuneTrace())
	}
	ea, eb := a.Elements(), b.Elements()
	if len(ea) != len(eb) {
		t.Fatalf("element counts diverge: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("element order diverges at %d: %#x vs %#x", i, ea[i], eb[i])
		}
	}
}

// TestAutoTableKindRegistry asserts the tables registry wires the auto
// kind with bulk and memory extensions and marks it deterministic.
func TestAutoTableKindRegistry(t *testing.T) {
	tab := MustNew[core.SetOps](LinearDAuto, 1024)
	if _, ok := AsBulk(tab); !ok {
		t.Fatal("auto kind lost the Bulk extension")
	}
	if _, ok := AsMemory(tab); !ok {
		t.Fatal("auto kind lost the Memory extension")
	}
	if !LinearDAuto.IsDeterministic() {
		t.Fatal("auto kind not marked deterministic")
	}
	// Thresholds referenced here so a policy change that would
	// invalidate autoScript's assumptions fails loudly.
	if tune.CompactLoadPm > 800 {
		t.Fatalf("CompactLoadPm = %d; autoScript fills to 800pm and relies on crossing it", tune.CompactLoadPm)
	}
}
