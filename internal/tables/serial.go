package tables

import (
	"fmt"

	"phasehash/internal/core"
)

// SerialHI is the sequential history-independent linear-probing table of
// Blelloch and Golovin (serialHash-HI): the structure linearHash-D
// parallelizes. Single-goroutine use only.
type SerialHITable[O core.Ops] struct {
	ops   O
	cells []uint64
	mask  int
	n     int
}

// NewSerialHI returns a sequential history-independent table with at
// least size cells (rounded up to a power of two).
func NewSerialHITable[O core.Ops](size int) *SerialHITable[O] {
	m := ceilPow2(size)
	return &SerialHITable[O]{cells: make([]uint64, m), mask: m - 1}
}

func ceilPow2(size int) int {
	if size < 1 {
		size = 1
	}
	m := 1
	for m < size {
		m <<= 1
	}
	return m
}

// Size implements Table.
func (t *SerialHITable[O]) Size() int { return len(t.cells) }

// Count implements Table.
func (t *SerialHITable[O]) Count() int { return t.n }

func (t *SerialHITable[O]) home(e uint64) int { return int(t.ops.Hash(e)) & t.mask }

// Insert implements Table: linear probing with priority swaps — the
// sequential version of Figure 1's INSERT.
func (t *SerialHITable[O]) Insert(v uint64) bool {
	if v == core.Empty {
		panic("tables: cannot insert the reserved empty element")
	}
	i := t.home(v)
	steps := 0
	for {
		if steps > len(t.cells) {
			panic(fmt.Sprintf("tables: serialHash-HI full (size %d)", len(t.cells)))
		}
		steps++
		c := t.cells[i&t.mask]
		if c == core.Empty {
			t.cells[i&t.mask] = v
			t.n++
			return true
		}
		cmp := t.ops.Cmp(c, v)
		switch {
		case cmp == 0:
			t.cells[i&t.mask] = t.ops.Merge(c, v)
			return false
		case cmp > 0:
			i++
		default:
			t.cells[i&t.mask] = v
			v = c
			i++
		}
	}
}

// Find implements Table: probing may stop early at the first cell with
// priority <= v's, the HI table's early-exit property for absent keys.
func (t *SerialHITable[O]) Find(v uint64) (uint64, bool) {
	i := t.home(v)
	for {
		c := t.cells[i&t.mask]
		if c == core.Empty {
			return core.Empty, false
		}
		cmp := t.ops.Cmp(v, c)
		if cmp > 0 {
			return core.Empty, false
		}
		if cmp == 0 {
			return c, true
		}
		i++
	}
}

// Delete implements Table: fill the hole with the next lower-priority
// element that hashes at or before it, recursively (no tombstones).
func (t *SerialHITable[O]) Delete(v uint64) bool {
	i := t.home(v)
	k := i
	for {
		c := t.cells[k&t.mask]
		if c == core.Empty || t.ops.Cmp(v, c) >= 0 {
			break
		}
		k++
	}
	c := t.cells[k&t.mask]
	if c == core.Empty || t.ops.Cmp(v, c) != 0 {
		return false
	}
	t.n--
	for {
		j, w := t.findReplacement(k)
		t.cells[k&t.mask] = w
		if w == core.Empty {
			return true
		}
		k = j
	}
}

func (t *SerialHITable[O]) findReplacement(i int) (int, uint64) {
	j := i
	for {
		j++
		w := t.cells[j&t.mask]
		if w == core.Empty || t.lift(t.ops.Hash(w)&uint64(t.mask), j) <= i {
			return j, w
		}
	}
}

func (t *SerialHITable[O]) lift(h uint64, p int) int {
	return p - ((p - int(h)) & t.mask)
}

// Elements implements Table; the output order is deterministic (the HI
// layout is unique for a given set).
func (t *SerialHITable[O]) Elements() []uint64 {
	out := make([]uint64, 0, t.n)
	for _, c := range t.cells {
		if c != core.Empty {
			out = append(out, c)
		}
	}
	return out
}

// Snapshot copies the raw cells; tests compare it against
// core.WordTable.Snapshot to confirm the parallel table reproduces the
// sequential HI layout exactly.
func (t *SerialHITable[O]) Snapshot() []uint64 {
	out := make([]uint64, len(t.cells))
	copy(out, t.cells)
	return out
}

// SerialHD is standard sequential linear probing (serialHash-HD):
// first-empty insertion, back-shifting deletion. History-dependent.
type SerialHDTable[O core.Ops] struct {
	ops   O
	cells []uint64
	mask  int
	n     int
}

// NewSerialHD returns a sequential standard linear-probing table.
func NewSerialHDTable[O core.Ops](size int) *SerialHDTable[O] {
	m := ceilPow2(size)
	return &SerialHDTable[O]{cells: make([]uint64, m), mask: m - 1}
}

// Size implements Table.
func (t *SerialHDTable[O]) Size() int { return len(t.cells) }

// Count implements Table.
func (t *SerialHDTable[O]) Count() int { return t.n }

func (t *SerialHDTable[O]) home(e uint64) int { return int(t.ops.Hash(e)) & t.mask }

// Insert implements Table: classic first-empty linear probing.
func (t *SerialHDTable[O]) Insert(v uint64) bool {
	if v == core.Empty {
		panic("tables: cannot insert the reserved empty element")
	}
	i := t.home(v)
	steps := 0
	for {
		if steps > len(t.cells) {
			panic(fmt.Sprintf("tables: serialHash-HD full (size %d)", len(t.cells)))
		}
		steps++
		c := t.cells[i&t.mask]
		if c == core.Empty {
			t.cells[i&t.mask] = v
			t.n++
			return true
		}
		if t.ops.Cmp(c, v) == 0 {
			t.cells[i&t.mask] = t.ops.Merge(c, v)
			return false
		}
		i++
	}
}

// Find implements Table: scan to the first empty cell.
func (t *SerialHDTable[O]) Find(v uint64) (uint64, bool) {
	i := t.home(v)
	for {
		c := t.cells[i&t.mask]
		if c == core.Empty {
			return core.Empty, false
		}
		if t.ops.Cmp(v, c) == 0 {
			return c, true
		}
		i++
	}
}

// Delete implements Table: back-shift deletion (Knuth's algorithm R):
// repeatedly pull back the next element in the cluster whose home lies at
// or before the hole.
func (t *SerialHDTable[O]) Delete(v uint64) bool {
	i := t.home(v)
	k := i
	for {
		c := t.cells[k&t.mask]
		if c == core.Empty {
			return false
		}
		if t.ops.Cmp(v, c) == 0 {
			break
		}
		k++
	}
	t.n--
	for {
		// Find the next element in the cluster that may move into k.
		j := k
		for {
			j++
			w := t.cells[j&t.mask]
			if w == core.Empty {
				t.cells[k&t.mask] = core.Empty
				return true
			}
			if t.lift(t.ops.Hash(w)&uint64(t.mask), j) <= k {
				t.cells[k&t.mask] = w
				k = j
				break
			}
		}
	}
}

func (t *SerialHDTable[O]) lift(h uint64, p int) int {
	return p - ((p - int(h)) & t.mask)
}

// Elements implements Table (order is history-dependent).
func (t *SerialHDTable[O]) Elements() []uint64 {
	out := make([]uint64, 0, t.n)
	for _, c := range t.cells {
		if c != core.Empty {
			out = append(out, c)
		}
	}
	return out
}
