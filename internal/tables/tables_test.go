package tables

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"phasehash/internal/core"
	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

func keysFor(n int, dupFactor int, seed uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashx.At(seed, i)%uint64(n*dupFactor/4+1) + 1
	}
	return keys
}

func distinct(keys []uint64) map[uint64]bool {
	m := map[uint64]bool{}
	for _, k := range keys {
		m[k] = true
	}
	return m
}

// forEachKind runs f for every table kind.
func forEachKind(t *testing.T, f func(t *testing.T, kind Kind)) {
	t.Helper()
	for _, kind := range Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) { f(t, kind) })
	}
}

func TestAllKindsBasicOps(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		tab := MustNew[core.SetOps](kind, 128)
		keys := []uint64{3, 17, 99, 12345, 7}
		for _, k := range keys {
			if !tab.Insert(k) {
				t.Errorf("Insert(%d): want new-element", k)
			}
		}
		if tab.Insert(17) {
			t.Error("duplicate Insert(17) reported growth")
		}
		if got := tab.Count(); got != len(keys) {
			t.Errorf("Count = %d, want %d", got, len(keys))
		}
		for _, k := range keys {
			if e, ok := tab.Find(k); !ok || e != k {
				t.Errorf("Find(%d) = (%d,%v), want (%d,true)", k, e, ok, k)
			}
		}
		if _, ok := tab.Find(4); ok {
			t.Error("Find(4) found absent key")
		}
		if !tab.Delete(99) {
			t.Error("Delete(99) failed")
		}
		if tab.Delete(99) {
			t.Error("second Delete(99) succeeded")
		}
		if tab.Delete(4) {
			t.Error("Delete(4) of absent key succeeded")
		}
		if _, ok := tab.Find(99); ok {
			t.Error("99 still found after delete")
		}
		got := tab.Elements()
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := []uint64{3, 7, 17, 12345}
		if len(got) != len(want) {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Elements = %v, want %v", got, want)
			}
		}
	})
}

func TestAllKindsSetSemanticsSerialBulk(t *testing.T) {
	keys := keysFor(20000, 2, 1)
	want := distinct(keys)
	forEachKind(t, func(t *testing.T, kind Kind) {
		tab := MustNew[core.SetOps](kind, 1<<16)
		for _, k := range keys {
			tab.Insert(k)
		}
		if got := tab.Count(); got != len(want) {
			t.Fatalf("Count = %d, want %d", got, len(want))
		}
		elems := tab.Elements()
		if len(elems) != len(want) {
			t.Fatalf("len(Elements) = %d, want %d", len(elems), len(want))
		}
		for _, e := range elems {
			if !want[e] {
				t.Fatalf("element %d never inserted", e)
			}
		}
		for k := range want {
			if !Contains(tab, k) {
				t.Fatalf("key %d missing", k)
			}
		}
	})
}

func TestParallelKindsConcurrentInsertFind(t *testing.T) {
	keys := keysFor(40000, 2, 2)
	want := distinct(keys)
	for _, kind := range ParallelKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			tab := MustNew[core.SetOps](kind, 1<<17)
			parallel.ForGrain(len(keys), 1, func(i int) { tab.Insert(keys[i]) })
			if got := tab.Count(); got != len(want) {
				t.Fatalf("Count = %d, want %d distinct", got, len(want))
			}
			var misses atomic.Int64
			parallel.ForGrain(len(keys), 1, func(i int) {
				if !Contains(tab, keys[i]) {
					misses.Add(1)
				}
			})
			if misses.Load() != 0 {
				t.Fatalf("%d inserted keys not found", misses.Load())
			}
			elems := tab.Elements()
			if len(elems) != len(want) {
				t.Fatalf("Elements len = %d, want %d", len(elems), len(want))
			}
		})
	}
}

func TestParallelKindsConcurrentDelete(t *testing.T) {
	keys := keysFor(30000, 2, 3)
	want := distinct(keys)
	var dels []uint64
	i := 0
	for k := range want {
		if i%2 == 0 {
			dels = append(dels, k)
		}
		i++
	}
	for _, kind := range ParallelKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			tab := MustNew[core.SetOps](kind, 1<<16)
			parallel.ForGrain(len(keys), 1, func(i int) { tab.Insert(keys[i]) })
			parallel.ForGrain(len(dels), 1, func(i int) { tab.Delete(dels[i]) })
			wantLeft := len(want) - len(dels)
			if got := tab.Count(); got != wantLeft {
				t.Fatalf("Count = %d after deletes, want %d", got, wantLeft)
			}
			for _, k := range dels {
				if Contains(tab, k) {
					t.Fatalf("deleted key %d still present", k)
				}
			}
			deleted := map[uint64]bool{}
			for _, k := range dels {
				deleted[k] = true
			}
			for k := range want {
				if !deleted[k] && !Contains(tab, k) {
					t.Fatalf("surviving key %d lost", k)
				}
			}
		})
	}
}

// TestHighDuplicateContention mimics the trigram/exponential inputs: many
// threads inserting a tiny key universe (the case that melts lock-based
// tables and that chainedHash-CR exists to fix).
func TestHighDuplicateContention(t *testing.T) {
	n := 20000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashx.At(8, i)%37 + 1 // only 37 distinct keys
	}
	for _, kind := range ParallelKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			tab := MustNew[core.SetOps](kind, 1<<12)
			parallel.ForGrain(n, 1, func(i int) { tab.Insert(keys[i]) })
			if got := tab.Count(); got != 37 {
				t.Fatalf("Count = %d, want 37", got)
			}
		})
	}
}

func TestPairMergeAcrossKinds(t *testing.T) {
	// Sum-combine 1000 increments of the same key, concurrently.
	n := 1000
	forEachKind(t, func(t *testing.T, kind Kind) {
		tab := MustNew[core.PairSumOps](kind, 256)
		if kind.IsSerial() {
			for i := 0; i < n; i++ {
				tab.Insert(core.Pair(5, 1))
			}
		} else {
			parallel.ForGrain(n, 1, func(int) { tab.Insert(core.Pair(5, 1)) })
		}
		e, ok := tab.Find(core.Pair(5, 0))
		if !ok {
			t.Fatal("key 5 missing")
		}
		if got := core.PairValue(e); got != uint32(n) {
			t.Fatalf("summed value = %d, want %d", got, n)
		}
	})
}

// TestSerialHIMatchesLinearD: the parallel deterministic table must
// reproduce the sequential history-independent layout exactly.
func TestSerialHIMatchesLinearD(t *testing.T) {
	keys := keysFor(30000, 2, 4)
	hi := NewSerialHITable[core.SetOps](1 << 16)
	for _, k := range keys {
		hi.Insert(k)
	}
	par := core.NewWordTable[core.SetOps](1 << 16)
	parallel.ForGrain(len(keys), 1, func(i int) { par.Insert(keys[i]) })
	a, b := hi.Snapshot(), par.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layouts differ at cell %d: serial %#x, parallel %#x", i, a[i], b[i])
		}
	}
	// And after deleting half the keys through each path.
	var dels []uint64
	for k := range distinct(keys) {
		if k%2 == 0 {
			dels = append(dels, k)
		}
	}
	for _, k := range dels {
		hi.Delete(k)
	}
	parallel.ForGrain(len(dels), 1, func(i int) { par.Delete(dels[i]) })
	a, b = hi.Snapshot(), par.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-delete layouts differ at cell %d", i)
		}
	}
}

// TestQuickAllKinds property-tests set semantics for every kind on
// arbitrary small inputs.
func TestQuickAllKinds(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		f := func(raw []uint16) bool {
			keys := make([]uint64, len(raw))
			for i, r := range raw {
				keys[i] = uint64(r) + 1
			}
			tab := MustNew[core.SetOps](kind, 4*len(keys)+16)
			for _, k := range keys {
				tab.Insert(k)
			}
			want := distinct(keys)
			if tab.Count() != len(want) {
				return false
			}
			for k := range want {
				if !Contains(tab, k) {
					return false
				}
			}
			// Delete everything; table must end empty.
			for k := range want {
				if !tab.Delete(k) {
					return false
				}
			}
			return tab.Count() == 0 && len(tab.Elements()) == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	})
}

// TestHopscotchDisplacement forces long probe runs so inserts must
// displace (regression test for the hop-backward path).
func TestHopscotchDisplacement(t *testing.T) {
	for _, withTS := range []bool{true, false} {
		tab := NewHopscotch[core.SetOps](1<<10, withTS)
		// Fill to 80% load, which cannot fit everything within hopRange
		// of its home without displacements.
		n := 800
		keys := keysFor(4*n, 1, 6)[:n]
		parallel.ForGrain(n, 1, func(i int) { tab.Insert(keys[i]) })
		want := distinct(keys)
		if tab.Count() != len(want) {
			t.Fatalf("withTS=%v: Count = %d, want %d", withTS, tab.Count(), len(want))
		}
		for k := range want {
			if !Contains(tab, k) {
				t.Fatalf("withTS=%v: key %d lost after displacement", withTS, k)
			}
		}
	}
}

// TestCuckooEvictionChains fills a cuckoo table to a load that requires
// multi-step eviction chains.
func TestCuckooEvictionChains(t *testing.T) {
	tab := NewCuckoo[core.SetOps](1 << 10)
	n := 400 // ~40% load: evictions happen but no cycles
	keys := keysFor(4*n, 1, 9)[:n]
	parallel.ForGrain(n, 1, func(i int) { tab.Insert(keys[i]) })
	want := distinct(keys)
	if tab.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", tab.Count(), len(want))
	}
	for k := range want {
		if !Contains(tab, k) {
			t.Fatalf("key %d lost after eviction", k)
		}
	}
}

// TestChainedElementsOrderStableForFixedLayout: Elements on a quiescent
// chained table returns every element exactly once.
func TestChainedElementsComplete(t *testing.T) {
	for _, cr := range []bool{false, true} {
		tab := NewChained[core.SetOps](1<<10, cr)
		keys := keysFor(5000, 2, 10)
		parallel.ForGrain(len(keys), 1, func(i int) { tab.Insert(keys[i]) })
		want := distinct(keys)
		elems := tab.Elements()
		if len(elems) != len(want) {
			t.Fatalf("cr=%v: Elements len %d, want %d", cr, len(elems), len(want))
		}
		seen := map[uint64]bool{}
		for _, e := range elems {
			if seen[e] {
				t.Fatalf("cr=%v: duplicate element %d", cr, e)
			}
			seen[e] = true
		}
	}
}
