package tables

import (
	"fmt"
	"sync/atomic"

	"phasehash/internal/core"
	"phasehash/internal/parallel"
)

// LinearNDTable is linearHash-ND: phase-concurrent history-dependent
// linear probing after Gao et al. — an insert claims the first empty cell
// in its probe sequence with a CAS and never displaces anything, so the
// layout depends on arrival order (non-deterministic). Deletions shift
// cluster elements back instead of writing tombstones, as in the paper's
// variant. Inserted elements never move during the insert phase, so
// inserts and finds could even share a phase (the paper notes this; the
// benchmarks still separate them).
type LinearNDTable[O core.Ops] struct {
	ops   O
	cells []uint64
	mask  int
}

// NewLinearND returns a linearHash-ND table with at least size cells.
func NewLinearND[O core.Ops](size int) *LinearNDTable[O] {
	m := ceilPow2(size)
	return &LinearNDTable[O]{cells: make([]uint64, m), mask: m - 1}
}

// Size implements Table.
func (t *LinearNDTable[O]) Size() int { return len(t.cells) }

func (t *LinearNDTable[O]) load(p int) uint64 {
	return atomic.LoadUint64(&t.cells[p&t.mask])
}

func (t *LinearNDTable[O]) cas(p int, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[p&t.mask], old, new)
}

func (t *LinearNDTable[O]) home(e uint64) int { return int(t.ops.Hash(e)) & t.mask }

func (t *LinearNDTable[O]) lift(h uint64, p int) int {
	return p - ((p - int(h)) & t.mask)
}

// Insert implements Table: probe forward, CAS into the first empty cell.
func (t *LinearNDTable[O]) Insert(v uint64) bool {
	if v == core.Empty {
		panic("tables: cannot insert the reserved empty element")
	}
	i := t.home(v)
	limit := i + len(t.cells)
	for {
		if i >= limit {
			panic(fmt.Sprintf("tables: linearHash-ND full (size %d)", len(t.cells)))
		}
		c := t.load(i)
		if c == core.Empty {
			if t.cas(i, core.Empty, v) {
				return true
			}
			continue
		}
		if t.ops.Cmp(c, v) == 0 {
			merged := t.ops.Merge(c, v)
			if merged == c || t.cas(i, c, merged) {
				return false
			}
			continue
		}
		i++
	}
}

// Find implements Table: scan to the first empty cell (no early exit —
// the cluster is unordered).
func (t *LinearNDTable[O]) Find(v uint64) (uint64, bool) {
	i := t.home(v)
	for {
		c := t.load(i)
		if c == core.Empty {
			return core.Empty, false
		}
		if t.ops.Cmp(v, c) == 0 {
			return c, true
		}
		i++
	}
}

// Delete implements Table: locate the key in its cluster, then fill the
// hole by pulling back the closest following element that hashes at or
// before it, recursively (concurrent back-shift deletion; same
// replacement search as linearHash-D but with no priority order).
func (t *LinearNDTable[O]) Delete(v uint64) bool {
	i := t.home(v)
	k := i
	for {
		c := t.load(k)
		if c == core.Empty {
			return false
		}
		if t.ops.Cmp(v, c) == 0 {
			break
		}
		k++
	}
	for {
		c := t.load(k)
		if c == core.Empty || t.ops.Cmp(v, c) != 0 {
			// A concurrent delete beat us to this copy; elements only
			// move backward during deletion, so scan down.
			k--
			if k < i {
				return false
			}
			continue
		}
		j, w := t.findReplacement(k)
		if t.cas(k, c, w) {
			if w == core.Empty {
				return true
			}
			// Two copies of w exist; delete the one further along.
			v = w
			k = j
			i = t.lift(t.ops.Hash(w)&uint64(t.mask), j)
		} else {
			k--
			if k < i {
				return true // someone removed it concurrently
			}
		}
	}
}

func (t *LinearNDTable[O]) findReplacement(i int) (int, uint64) {
	j := i
	var w uint64
	for {
		j++
		w = t.load(j)
		if w == core.Empty || t.lift(t.ops.Hash(w)&uint64(t.mask), j) <= i {
			break
		}
	}
	for k := j - 1; k > i; k-- {
		w2 := t.load(k)
		if w2 == core.Empty || t.lift(t.ops.Hash(w2)&uint64(t.mask), k) <= i {
			w = w2
			j = k
		}
	}
	return j, w
}

// Elements implements Table (order depends on insertion history).
//
//phasehash:serial find/elements phase: the phase discipline keeps writers out while the cells are packed
func (t *LinearNDTable[O]) Elements() []uint64 {
	return parallel.Pack(t.cells, func(i int) bool { return t.cells[i] != core.Empty })
}

// Count implements Table.
//
//phasehash:serial find/elements phase: the phase discipline keeps writers out during the scan
func (t *LinearNDTable[O]) Count() int {
	return parallel.Count(len(t.cells), func(i int) bool { return t.cells[i] != core.Empty })
}
