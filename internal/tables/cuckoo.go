package tables

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"phasehash/internal/core"
	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// spinLock is a one-word test-and-test-and-set spinlock. The cuckoo table
// stores one per cell — the paper remarks that cuckooHash's Elements() is
// slower precisely because each entry carries a lock, and we reproduce
// that footprint.
type spinLock struct{ v atomic.Uint32 }

func (l *spinLock) Lock() {
	for {
		if l.v.CompareAndSwap(0, 1) {
			return
		}
		for l.v.Load() != 0 {
			runtime.Gosched()
		}
	}
}

func (l *spinLock) TryLock() bool { return l.v.CompareAndSwap(0, 1) }

func (l *spinLock) Unlock() { l.v.Store(0) }

// maxEvictions bounds a cuckoo displacement chain before the table is
// declared too full (the reproduction does not resize, matching the
// benchmarked configuration).
const maxEvictions = 500

// CuckooTable is cuckooHash: the paper's phase-concurrent two-choice
// cuckoo table. An insert locks its element's two candidate cells in
// increasing address order (deadlock-free), places the element in an
// empty one or evicts a resident, and recursively reinserts the victim.
// Collisions resolve by arrival order, so the layout is
// non-deterministic.
type CuckooTable[O core.Ops] struct {
	ops   O
	cells []uint64
	locks []spinLock
	mask  int
	count atomic.Int64
}

// NewCuckoo returns a cuckooHash table with at least size cells.
func NewCuckoo[O core.Ops](size int) *CuckooTable[O] {
	m := ceilPow2(size)
	return &CuckooTable[O]{
		cells: make([]uint64, m),
		locks: make([]spinLock, m),
		mask:  m - 1,
	}
}

// Size implements Table.
func (t *CuckooTable[O]) Size() int { return len(t.cells) }

// slots returns the element's two candidate cells, h1 != h2 whenever the
// table has more than one cell.
func (t *CuckooTable[O]) slots(e uint64) (int, int) {
	h := t.ops.Hash(e)
	h1 := int(h) & t.mask
	h2 := int(hashx.Mix64(h+0x1234_5678_9abc_def1)) & t.mask
	if h2 == h1 {
		h2 = (h1 + 1) & t.mask
	}
	return h1, h2
}

// Insert implements Table. An insert that displaces residents carries the
// victim forward iteratively: place v, release the locks, and repeat with
// the evicted element (each round locks only the current element's two
// cells, always in address order, so no deadlock is possible).
func (t *CuckooTable[O]) Insert(v uint64) bool {
	if v == core.Empty {
		panic("tables: cannot insert the reserved empty element")
	}
	from := -1 // cell the carried element was just evicted from
	for depth := 0; ; depth++ {
		if depth > maxEvictions {
			panic(fmt.Sprintf("tables: cuckooHash eviction chain exceeded %d (table too full, size %d)", maxEvictions, len(t.cells)))
		}
		h1, h2 := t.slots(v)
		lo, hi := h1, h2
		if lo > hi {
			lo, hi = hi, lo
		}
		t.locks[lo].Lock()
		t.locks[hi].Lock()

		dup := false
		for _, s := range [2]int{h1, h2} {
			c := atomic.LoadUint64(&t.cells[s])
			if c != core.Empty && t.ops.Cmp(c, v) == 0 {
				atomic.StoreUint64(&t.cells[s], t.ops.Merge(c, v))
				dup = true
				break
			}
		}
		if dup {
			t.locks[hi].Unlock()
			t.locks[lo].Unlock()
			// A duplicate can only be the original element (table keys
			// are unique), so the element count did not grow.
			return depth > 0
		}
		for _, s := range [2]int{h1, h2} {
			if atomic.LoadUint64(&t.cells[s]) == core.Empty {
				atomic.StoreUint64(&t.cells[s], v)
				t.locks[hi].Unlock()
				t.locks[lo].Unlock()
				t.count.Add(1)
				return true
			}
		}
		// Both cells occupied: evict a resident and carry it forward. A
		// carried element must not evict from the cell it was just
		// displaced out of (that resident displaced *it*), or the pair
		// would ping-pong forever; use the alternate cell.
		target := h1
		if target == from {
			target = h2
		}
		victim := atomic.LoadUint64(&t.cells[target])
		atomic.StoreUint64(&t.cells[target], v)
		t.locks[hi].Unlock()
		t.locks[lo].Unlock()
		v = victim
		from = target
	}
}

// Find implements Table: two probes, no locks (find phase excludes
// writers).
func (t *CuckooTable[O]) Find(v uint64) (uint64, bool) {
	h1, h2 := t.slots(v)
	for _, s := range [2]int{h1, h2} {
		c := atomic.LoadUint64(&t.cells[s])
		if c != core.Empty && t.ops.Cmp(v, c) == 0 {
			return c, true
		}
	}
	return core.Empty, false
}

// Delete implements Table: lock the slot holding the key and clear it.
func (t *CuckooTable[O]) Delete(v uint64) bool {
	h1, h2 := t.slots(v)
	for _, s := range [2]int{h1, h2} {
		t.locks[s].Lock()
		c := atomic.LoadUint64(&t.cells[s])
		if c != core.Empty && t.ops.Cmp(v, c) == 0 {
			atomic.StoreUint64(&t.cells[s], core.Empty)
			t.locks[s].Unlock()
			t.count.Add(-1)
			return true
		}
		t.locks[s].Unlock()
	}
	return false
}

// Elements implements Table (order is non-deterministic across runs with
// different schedules, deterministic for a fixed layout).
//
//phasehash:serial find/elements phase: the phase discipline keeps writers out while the cells are packed
func (t *CuckooTable[O]) Elements() []uint64 {
	return parallel.Pack(t.cells, func(i int) bool { return t.cells[i] != core.Empty })
}

// Count implements Table.
func (t *CuckooTable[O]) Count() int { return int(t.count.Load()) }
