package tables

import (
	"sync/atomic"

	"phasehash/internal/core"
	"phasehash/internal/tune"
)

// AutoTable is the self-tuning deterministic table: it starts as the
// flat linearHash-D layout (core.WordTable) and switches to the compact
// fingerprint-probed layout (core.CompactTable) — or back — when its
// observed load factor and op mix cross the tune package's thresholds
// (high load + find-heavy favours compact; everything else flat).
//
// Representation decisions happen ONLY at bulk-call boundaries, which
// the usage contract makes phase boundaries: like core.ShardedTable's
// kernels, an AutoTable bulk call must be the only activity on the
// table while it runs, because it may migrate the representation.
// Per-element operations between bulk calls follow the ordinary
// phase-concurrent discipline of the underlying table.
//
// Determinism: the decision inputs are the cumulative completed-op
// tallies (a pure function of the operation multiset submitted so far)
// and the quiescent load factor (a pure function of the element set),
// so for a fixed operation script the representation choices — and
// hence the trace — replay identically across schedules and worker
// counts. A migration rebuilds the new layout from Elements(), whose
// order is deterministic, and the two layouts store identical cell
// arrays at equal capacity (see LinearDCompact), so the quiescent
// state remains a pure function of the element set either way.
//
// The load factor is tracked as a running tally of the ops' reported
// count deltas (Insert/InsertAll report how many grew the element
// count, Delete/DeleteAll how many removed — both deterministic phase
// totals) rather than re-scanned: the underlying Count() is an
// O(capacity) sweep, far too expensive to pay at every bulk boundary.
type AutoTable[O core.Ops] struct {
	capacity int
	ctrl     *tune.Controller
	active   Table
	bulk     Bulk
	compact  bool

	inserts atomic.Uint64
	deletes atomic.Uint64
	finds   atomic.Uint64
	live    atomic.Int64
}

// NewAutoTable returns an auto-tuning table with the given capacity
// (rounded up to a power of two by the underlying layout), starting
// flat.
func NewAutoTable[O core.Ops](size int) *AutoTable[O] {
	flat := core.NewWordTable[O](size)
	return &AutoTable[O]{
		capacity: flat.Size(),
		ctrl:     tune.NewController(false),
		active:   flat,
		bulk:     flat,
	}
}

// retarget re-decides the representation at a bulk-call (phase)
// boundary and migrates when the decision changed. Called only from
// the bulk methods, which require exclusive access.
func (a *AutoTable[O]) retarget() {
	ins, del, fnd := a.inserts.Load(), a.deletes.Load(), a.finds.Load()
	total := ins + del + fnd
	if total == 0 {
		return
	}
	loadPm := uint64(a.live.Load()) * 1000 / uint64(a.capacity)
	kind := a.ctrl.DecideKind(loadPm, fnd*1000/total)
	wantCompact := kind == tune.KindCompact
	if wantCompact == a.compact {
		return
	}
	elems := a.active.Elements()
	var next Table
	if wantCompact {
		next = core.NewCompactTable[O](a.capacity)
	} else {
		next = core.NewWordTable[O](a.capacity)
	}
	nb, _ := AsBulk(next)
	nb.InsertAll(elems)
	a.active, a.bulk, a.compact = next, nb, wantCompact
}

// Kind returns the current representation's kind name.
func (a *AutoTable[O]) Kind() Kind {
	if a.compact {
		return LinearDCompact
	}
	return LinearD
}

// TuneTrace returns the representation decision trace, one line per
// switch (quiescent use only, like the epoch server's).
func (a *AutoTable[O]) TuneTrace() string { return a.ctrl.TraceString() }

// --- Table ---

// Insert adds element e (insert phase only); semantics of the active
// representation.
func (a *AutoTable[O]) Insert(e uint64) bool {
	a.inserts.Add(1)
	added := a.active.Insert(e)
	if added {
		a.live.Add(1)
	}
	return added
}

// Find returns the element stored under e's key (find/elements phase
// only).
func (a *AutoTable[O]) Find(e uint64) (uint64, bool) {
	a.finds.Add(1)
	return a.active.Find(e)
}

// Delete removes the element with e's key (delete phase only).
func (a *AutoTable[O]) Delete(e uint64) bool {
	a.deletes.Add(1)
	removed := a.active.Delete(e)
	if removed {
		a.live.Add(-1)
	}
	return removed
}

// Elements returns the stored elements in the deterministic table
// order (identical for both representations at equal capacity).
func (a *AutoTable[O]) Elements() []uint64 { return a.active.Elements() }

// Count returns the number of stored elements.
func (a *AutoTable[O]) Count() int { return a.active.Count() }

// Size returns the capacity in cells.
func (a *AutoTable[O]) Size() int { return a.capacity }

// --- Bulk (exclusive access required: may migrate) ---

// InsertAll inserts every element (insert phase; exclusive access),
// re-deciding the representation first.
func (a *AutoTable[O]) InsertAll(elems []uint64) int {
	a.retarget()
	a.inserts.Add(uint64(len(elems)))
	added := a.bulk.InsertAll(elems)
	a.live.Add(int64(added))
	return added
}

// FindAll looks up every key (find/elements phase; exclusive access),
// re-deciding the representation first.
func (a *AutoTable[O]) FindAll(keys, dst []uint64) int {
	a.retarget()
	a.finds.Add(uint64(len(keys)))
	return a.bulk.FindAll(keys, dst)
}

// DeleteAll deletes every key (delete phase; exclusive access),
// re-deciding the representation first.
func (a *AutoTable[O]) DeleteAll(keys []uint64) int {
	a.retarget()
	a.deletes.Add(uint64(len(keys)))
	removed := a.bulk.DeleteAll(keys)
	a.live.Add(-int64(removed))
	return removed
}

// --- Memory ---

// Bytes returns the active representation's backing-array footprint.
func (a *AutoTable[O]) Bytes() int {
	m, _ := AsMemory(a.active)
	return m.Bytes()
}
