package tables

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"phasehash/internal/core"
	"phasehash/internal/parallel"
)

// hopRange is the neighborhood size H: every element lives within H-1
// cells of its home bucket, so a find touches at most two cache lines of
// the bitmap-directed probes. Herlihy et al. suggest the machine word
// size; we use 64 to match our 64-bit hop-info words.
const hopRange = 64

// hopSegBits groups 2^hopSegBits buckets per lock/timestamp segment.
const hopSegBits = 6

// HopscotchTable is hopscotchHash (Herlihy, Shavit & Tzafrir, DISC
// 2008): open addressing where each home bucket carries a 64-bit
// "hop-info" bitmap of the neighborhood cells holding its elements.
// Inserts that find an empty cell too far away repeatedly displace
// closer-homed elements backward until the empty cell is within range.
//
// withTimestamps selects the fully-concurrent original: each bucket
// segment has a timestamp bumped by displacements, and finds retry when
// it moved under them. The paper observes the timestamp is dead weight
// when operation types are phase-separated; hopscotchHash-PC
// (withTimestamps=false) removes it, exactly like the paper's
// modification.
type HopscotchTable[O core.Ops] struct {
	ops   O
	cells []uint64
	hop   []uint64 // per-bucket neighborhood bitmaps
	ts    []atomic.Uint32
	locks []sync.Mutex
	mask  int
	count atomic.Int64

	withTimestamps bool
}

// hopBusy is a reserved cell value marking a slot claimed by an in-flight
// insert. It is never visible through a hop bitmap.
const hopBusy = ^uint64(0)

// NewHopscotch returns a hopscotch table with at least size cells.
func NewHopscotch[O core.Ops](size int, withTimestamps bool) *HopscotchTable[O] {
	m := ceilPow2(size)
	nseg := m >> hopSegBits
	if nseg < 1 {
		nseg = 1
	}
	return &HopscotchTable[O]{
		cells:          make([]uint64, m),
		hop:            make([]uint64, m),
		ts:             make([]atomic.Uint32, nseg),
		locks:          make([]sync.Mutex, nseg),
		mask:           m - 1,
		withTimestamps: withTimestamps,
	}
}

// Size implements Table.
func (t *HopscotchTable[O]) Size() int { return len(t.cells) }

func (t *HopscotchTable[O]) home(e uint64) int { return int(t.ops.Hash(e)) & t.mask }

func (t *HopscotchTable[O]) seg(b int) int { return (b >> hopSegBits) % len(t.locks) }

func (t *HopscotchTable[O]) loadCell(p int) uint64 {
	return atomic.LoadUint64(&t.cells[p&t.mask])
}

func (t *HopscotchTable[O]) loadHop(b int) uint64 {
	return atomic.LoadUint64(&t.hop[b&t.mask])
}

// casHop atomically replaces bucket b's bitmap.
func (t *HopscotchTable[O]) casHop(b int, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.hop[b&t.mask], old, new)
}

// setHopBit / clearHopBit atomically flip one neighborhood bit.
func (t *HopscotchTable[O]) setHopBit(b, d int) {
	for {
		old := t.loadHop(b)
		if t.casHop(b, old, old|1<<uint(d)) {
			return
		}
	}
}

func (t *HopscotchTable[O]) clearHopBit(b, d int) bool {
	for {
		old := t.loadHop(b)
		if old&(1<<uint(d)) == 0 {
			return false
		}
		if t.casHop(b, old, old&^(1<<uint(d))) {
			return true
		}
	}
}

// findInNeighborhood scans bucket b's bitmap for v's key, returning the
// cell distance or -1. The unvalidated scan can miss an element that a
// concurrent displacement is moving; use findValidated where that
// matters.
func (t *HopscotchTable[O]) findInNeighborhood(b int, v uint64) int {
	m := t.loadHop(b)
	for m != 0 {
		d := bits.TrailingZeros64(m)
		m &= m - 1
		c := t.loadCell(b + d)
		if c != core.Empty && c != hopBusy && t.ops.Cmp(v, c) == 0 {
			return d
		}
	}
	return -1
}

// findValidated is findInNeighborhood bracketed by the segment's
// displacement seqlock: a miss is only trusted when no displacement was
// in flight during the scan. After a few raced attempts it falls back to
// a direct ascending scan of all hopRange cells, which cannot miss: a
// mover writes the element's new (higher) cell before clearing its old
// one, so an ascending reader that misses the old cell must see the new.
func (t *HopscotchTable[O]) findValidated(b int, v uint64) int {
	s := t.seg(b)
	for attempt := 0; attempt < 4; attempt++ {
		t0 := t.ts[s].Load()
		if t0&1 == 1 {
			continue // displacement in progress
		}
		if d := t.findInNeighborhood(b, v); d >= 0 {
			return d
		}
		if t.ts[s].Load() == t0 {
			return -1
		}
	}
	for d := 0; d < hopRange; d++ {
		c := t.loadCell(b + d)
		if c != core.Empty && c != hopBusy && t.ops.Cmp(v, c) == 0 {
			return d
		}
	}
	return -1
}

// Insert implements Table.
func (t *HopscotchTable[O]) Insert(v uint64) bool {
	if v == core.Empty {
		panic("tables: cannot insert the reserved empty element")
	}
	b := t.home(v)
	lk := &t.locks[t.seg(b)]
	lk.Lock()
	// Duplicate check. Concurrent inserts into nearby buckets can
	// displace this bucket's elements without holding our segment lock,
	// so the scan is validated with the segment's displacement seqlock —
	// in both variants: the paper's PC optimization removes the timestamp
	// from the *find* path (finds never overlap displacements in a
	// phase-concurrent program), but insert-vs-insert displacement races
	// exist in any variant.
	if d := t.findValidated(b, v); d >= 0 {
		// Merge values in place (CAS loop; a displacement could still
		// move the cell, so re-find on CAS failure).
		for d >= 0 {
			c := t.loadCell(b + d)
			if c != core.Empty && c != hopBusy && t.ops.Cmp(v, c) == 0 {
				merged := t.ops.Merge(c, v)
				if merged == c || atomic.CompareAndSwapUint64(&t.cells[(b+d)&t.mask], c, merged) {
					lk.Unlock()
					return false
				}
				continue
			}
			d = t.findValidated(b, v)
		}
		// moved out from under us; fall through to insert
	}
	// Claim the first empty cell in the probe sequence.
	slot := -1
	for j := b; j < b+len(t.cells); j++ {
		if t.loadCell(j) == core.Empty &&
			atomic.CompareAndSwapUint64(&t.cells[j&t.mask], core.Empty, hopBusy) {
			slot = j
			break
		}
	}
	if slot < 0 {
		lk.Unlock()
		panic(fmt.Sprintf("tables: hopscotchHash full (size %d)", len(t.cells)))
	}
	// Hop the empty slot backward until it is within range of b.
	for slot-b >= hopRange {
		moved := t.hopBackward(&slot, t.seg(b))
		if !moved {
			lk.Unlock()
			panic(fmt.Sprintf("tables: hopscotchHash displacement failed near bucket %d (table too clustered; resize needed)", b))
		}
	}
	atomic.StoreUint64(&t.cells[slot&t.mask], v)
	t.setHopBit(b, slot-b)
	lk.Unlock()
	t.count.Add(1)
	return true
}

// hopBackward moves some element from the hopRange-1 cells before *slot
// into *slot, then adopts that element's old cell as the new empty slot.
// heldSeg is the segment lock the caller already owns (its home bucket's).
// Moving an element of bucket y mutates y's bitmap, so the mover takes
// seg(y)'s lock with TryLock — never blocking while holding heldSeg, so
// no deadlock is possible; contended candidates are simply skipped.
// Displacements are bracketed by the segment's seqlock timestamp (odd =
// move in flight) for the benefit of unlocked readers. Returns false when
// no element in the window could be moved.
func (t *HopscotchTable[O]) hopBackward(slot *int, heldSeg int) bool {
	s := *slot
	for y := s - hopRange + 1; y < s; y++ {
		// y may be negative near the array start; masking in the load
		// helpers implements the wraparound.
		sy := t.seg(y & t.mask)
		locked := false
		if sy != heldSeg {
			if !t.locks[sy].TryLock() {
				continue // busy segment; try the next candidate bucket
			}
			locked = true
		}
		moved := t.tryMoveFrom(y, s, sy)
		if locked {
			t.locks[sy].Unlock()
		}
		if moved >= 0 {
			*slot = moved
			return true
		}
	}
	return false
}

// tryMoveFrom attempts to move one element of bucket y (whose segment
// lock the caller holds) into the empty slot s. It returns the element's
// old position (the new empty slot) or -1.
func (t *HopscotchTable[O]) tryMoveFrom(y, s, sy int) int {
	m := t.loadHop(y)
	for m != 0 {
		d := bits.TrailingZeros64(m)
		m &= m - 1
		from := y + d
		if from >= s {
			return -1 // bits at or past the slot cannot help
		}
		e := t.loadCell(from)
		if e == core.Empty || e == hopBusy {
			continue
		}
		ts := &t.ts[sy]
		ts.Add(1) // odd: displacement in flight
		atomic.StoreUint64(&t.cells[s&t.mask], e)
		old := t.loadHop(y)
		if old&(1<<uint(d)) == 0 {
			// Deleted while we were locking; undo.
			atomic.StoreUint64(&t.cells[s&t.mask], hopBusy)
			ts.Add(1)
			m = t.loadHop(y)
			continue
		}
		// Holding seg(y), no one else mutates hop[y]; swap both bits.
		if !t.casHop(y, old, old&^(1<<uint(d))|1<<uint(s-y)) {
			atomic.StoreUint64(&t.cells[s&t.mask], hopBusy)
			ts.Add(1)
			m = t.loadHop(y)
			continue
		}
		atomic.StoreUint64(&t.cells[from&t.mask], hopBusy)
		ts.Add(1) // even: move complete
		return from
	}
	return -1
}

// Find implements Table. With timestamps it retries scans that raced a
// displacement (fully-concurrent operation); the PC variant scans once.
func (t *HopscotchTable[O]) Find(v uint64) (uint64, bool) {
	b := t.home(v)
	if !t.withTimestamps {
		// hopscotchHash-PC: no displacement can be in flight during a
		// find phase, so one unvalidated scan suffices.
		if d := t.findInNeighborhood(b, v); d >= 0 {
			return t.loadCell(b + d), true
		}
		return core.Empty, false
	}
	if d := t.findValidated(b, v); d >= 0 {
		return t.loadCell(b + d), true
	}
	return core.Empty, false
}

// Delete implements Table: clear the bitmap bit, then empty the cell.
func (t *HopscotchTable[O]) Delete(v uint64) bool {
	b := t.home(v)
	lk := &t.locks[t.seg(b)]
	lk.Lock()
	defer lk.Unlock()
	m := t.loadHop(b)
	for m != 0 {
		d := bits.TrailingZeros64(m)
		m &= m - 1
		c := t.loadCell(b + d)
		if c == core.Empty || c == hopBusy || t.ops.Cmp(v, c) != 0 {
			continue
		}
		if !t.clearHopBit(b, d) {
			continue
		}
		atomic.StoreUint64(&t.cells[(b+d)&t.mask], core.Empty)
		t.count.Add(-1)
		return true
	}
	return false
}

// Elements implements Table.
//
//phasehash:serial find/elements phase: the phase discipline keeps writers out while the cells are packed
func (t *HopscotchTable[O]) Elements() []uint64 {
	return parallel.Pack(t.cells, func(i int) bool {
		return t.cells[i] != core.Empty && t.cells[i] != hopBusy
	})
}

// Count implements Table.
func (t *HopscotchTable[O]) Count() int { return int(t.count.Load()) }
