package tables

import (
	"sync"
	"sync/atomic"

	"phasehash/internal/core"
	"phasehash/internal/parallel"
)

// chainedSegments is the lock-striping factor, after Lea's
// ConcurrentHashMap segments.
const chainedSegments = 256

// chainNode is one linked-list cell of the chained table. The element is
// atomic so the contention-reduced path can merge values without taking
// the segment lock; next pointers are atomic so unlocked finds can
// traverse safely.
type chainNode struct {
	elem atomic.Uint64
	next atomic.Pointer[chainNode]
}

// ChainedTable is chainedHash / chainedHash-CR: a concurrent closed-
// addressing table in the style of Lea's java.util.concurrent
// ConcurrentHashMap — an array of bucket chains guarded by striped locks.
// It is fully concurrent (operations of different types may mix), at the
// cost of more cache misses and per-node allocation, which is exactly the
// trade-off the paper measures against open addressing.
//
// With contentionReduced set (the paper's chainedHash-CR), Insert runs a
// lock-free find first and only takes the segment lock when the key is
// absent, and Delete symmetrically locks only after a successful find —
// the optimization that rescues the chained table on high-duplicate
// distributions (trigram/exponential).
type ChainedTable[O core.Ops] struct {
	ops               O
	buckets           []atomic.Pointer[chainNode]
	locks             []sync.Mutex
	mask              int
	count             atomic.Int64
	contentionReduced bool
}

// NewChained returns a chained table with at least size buckets.
func NewChained[O core.Ops](size int, contentionReduced bool) *ChainedTable[O] {
	m := ceilPow2(size)
	return &ChainedTable[O]{
		buckets:           make([]atomic.Pointer[chainNode], m),
		locks:             make([]sync.Mutex, chainedSegments),
		mask:              m - 1,
		contentionReduced: contentionReduced,
	}
}

// Size implements Table (bucket count).
func (t *ChainedTable[O]) Size() int { return len(t.buckets) }

func (t *ChainedTable[O]) bucket(e uint64) int { return int(t.ops.Hash(e)) & t.mask }

func (t *ChainedTable[O]) lockOf(b int) *sync.Mutex {
	return &t.locks[b&(chainedSegments-1)]
}

// findNode walks bucket b for an element with v's key, without locking.
func (t *ChainedTable[O]) findNode(b int, v uint64) *chainNode {
	for n := t.buckets[b].Load(); n != nil; n = n.next.Load() {
		if t.ops.Cmp(v, n.elem.Load()) == 0 {
			return n
		}
	}
	return nil
}

// mergeInto resolves a duplicate insertion on an existing node with a CAS
// loop (values may race with other duplicate inserts).
func (t *ChainedTable[O]) mergeInto(n *chainNode, v uint64) {
	for {
		c := n.elem.Load()
		merged := t.ops.Merge(c, v)
		if merged == c || n.elem.CompareAndSwap(c, merged) {
			return
		}
	}
}

// Insert implements Table.
func (t *ChainedTable[O]) Insert(v uint64) bool {
	if v == core.Empty {
		panic("tables: cannot insert the reserved empty element")
	}
	b := t.bucket(v)
	if t.contentionReduced {
		// chainedHash-CR: check for the key before locking, so that
		// duplicate-heavy workloads do not serialize on the segment lock.
		if n := t.findNode(b, v); n != nil {
			t.mergeInto(n, v)
			return false
		}
	}
	lk := t.lockOf(b)
	lk.Lock()
	// Re-scan under the lock (the key may have appeared).
	if n := t.findNode(b, v); n != nil {
		t.mergeInto(n, v)
		lk.Unlock()
		return false
	}
	n := &chainNode{}
	n.elem.Store(v)
	n.next.Store(t.buckets[b].Load())
	t.buckets[b].Store(n)
	lk.Unlock()
	t.count.Add(1)
	return true
}

// Find implements Table: lock-free traversal.
func (t *ChainedTable[O]) Find(v uint64) (uint64, bool) {
	if n := t.findNode(t.bucket(v), v); n != nil {
		return n.elem.Load(), true
	}
	return core.Empty, false
}

// Delete implements Table.
func (t *ChainedTable[O]) Delete(v uint64) bool {
	b := t.bucket(v)
	if t.contentionReduced && t.findNode(b, v) == nil {
		// chainedHash-CR: only lock when the key is present.
		return false
	}
	lk := t.lockOf(b)
	lk.Lock()
	defer lk.Unlock()
	var prev *chainNode
	for n := t.buckets[b].Load(); n != nil; n = n.next.Load() {
		if t.ops.Cmp(v, n.elem.Load()) == 0 {
			if prev == nil {
				t.buckets[b].Store(n.next.Load())
			} else {
				prev.next.Store(n.next.Load())
			}
			t.count.Add(-1)
			return true
		}
		prev = n
	}
	return false
}

// Elements implements Table, using the paper's scheme: count each
// bucket's chain, prefix-sum the counts into offsets, then copy each
// chain into its slice in parallel.
func (t *ChainedTable[O]) Elements() []uint64 {
	nb := len(t.buckets)
	counts := make([]int, nb)
	parallel.For(nb, func(b int) {
		c := 0
		for n := t.buckets[b].Load(); n != nil; n = n.next.Load() {
			c++
		}
		counts[b] = c
	})
	offsets := make([]int, nb)
	total := parallel.Scan(offsets, counts)
	out := make([]uint64, total)
	parallel.For(nb, func(b int) {
		o := offsets[b]
		for n := t.buckets[b].Load(); n != nil; n = n.next.Load() {
			out[o] = n.elem.Load()
			o++
		}
	})
	return out
}

// Count implements Table.
func (t *ChainedTable[O]) Count() int { return int(t.count.Load()) }
