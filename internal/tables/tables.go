// Package tables implements the hash tables the paper benchmarks
// linearHash-D against, plus the sequential baselines:
//
//	linearHash-ND   phase-concurrent history-dependent linear probing
//	                (after Gao, Groote & Hesselink, with back-shifting
//	                deletes instead of tombstones)
//	cuckooHash      phase-concurrent two-choice cuckoo hashing with
//	                per-slot locks acquired in address order
//	chainedHash     Lea-style concurrent closed addressing (lock striping)
//	chainedHash-CR  chainedHash with the paper's contention-reducing
//	                find-before-lock optimization
//	hopscotchHash   Herlihy–Shavit–Tzafrir hopscotch hashing with
//	                per-segment locks and timestamps
//	hopscotchHash-PC hopscotchHash with the timestamp field removed,
//	                valid when operation types are phase-separated
//	serialHash-HI   sequential history-independent linear probing
//	serialHash-HD   sequential standard linear probing
//
// All tables share the element semantics of core.Ops, so benchmarks
// compare probe policies and synchronization, not hash functions. None of
// these tables is deterministic (that is the paper's point); the serial
// HI table is deterministic but sequential.
package tables

import (
	"fmt"

	"phasehash/internal/core"
)

// Table is the operation set shared by every implementation, matching
// the paper's O = {insert, delete, find, elements}. Phase-concurrent
// implementations additionally require callers to separate operation
// types in time; fully-concurrent ones (chained, hopscotch) do not.
type Table interface {
	// Insert adds element e; duplicate keys are resolved per the table's
	// Ops. Reports whether the element count grew.
	Insert(e uint64) bool
	// Find returns the element stored under e's key.
	Find(e uint64) (uint64, bool)
	// Delete removes the element with e's key, reporting success.
	Delete(e uint64) bool
	// Elements returns the stored elements in a packed array. Only
	// linearHash-D (and the serial HI table) guarantee a deterministic
	// order.
	Elements() []uint64
	// Count returns the number of stored elements.
	Count() int
	// Size returns the capacity in cells (0 for chained tables, which
	// have no fixed capacity).
	Size() int
}

// Contains reports whether a table holds e's key.
func Contains(t Table, e uint64) bool {
	_, ok := t.Find(e)
	return ok
}

// Bulk is the optional bulk-kernel extension of Table: whole-phase
// operations over element slices (internal/core/bulk.go). Only
// linearHash-D, linearHash-D-sharded and linearHash-D-compact implement
// it — the bulk kernels exist to make the deterministic table fast, not
// to accelerate the comparison baselines, which keep the per-element
// loop the paper describes for them. Note the sharded table's kernels
// require exclusive table access for the whole call
// (core.ShardedTable).
type Bulk interface {
	// InsertAll inserts every element (insert phase), returning how many
	// grew the count.
	InsertAll(elems []uint64) int
	// FindAll looks up every key (read phase), returning how many are
	// present; when dst is non-nil, dst[i] receives the element stored
	// under keys[i] or 0.
	FindAll(keys, dst []uint64) int
	// DeleteAll deletes every key (delete phase), returning how many
	// were removed.
	DeleteAll(keys []uint64) int
}

// AsBulk returns t's bulk extension when it has one.
func AsBulk(t Table) (Bulk, bool) {
	b, ok := t.(Bulk)
	return b, ok
}

// Memory is the optional memory-accounting extension of Table: the
// bytes of backing-array memory the table holds. Implemented by the
// kinds whose footprint is a static function of their construction
// parameters (the linear-probing family); chained tables, whose
// footprint tracks the live set, do not implement it.
type Memory interface {
	// Bytes returns the backing-array footprint in bytes.
	Bytes() int
}

// AsMemory returns t's memory-accounting extension when it has one.
func AsMemory(t Table) (Memory, bool) {
	m, ok := t.(Memory)
	return m, ok
}

// Kind names a table implementation, using the paper's names.
type Kind string

// The table kinds of the paper's Section 6, plus this repo's
// radix-partitioned variant of the deterministic table.
const (
	LinearD Kind = "linearHash-D"
	// LinearDSharded is linearHash-D split into radix-selected shards
	// with owner-computes bulk kernels (core.ShardedTable). Its layout
	// is deterministic for a fixed shard count; the constructor here
	// uses the automatic policy, which derives the count from the
	// worker count at construction time.
	LinearDSharded Kind = "linearHash-D-sharded"
	// LinearDCompact is linearHash-D with a separate byte-per-slot
	// control array (fingerprint + occupancy) scanned a word at a time
	// (core.CompactTable). Same deterministic cell layout as LinearD —
	// the cells are byte-identical at equal capacity — plus a
	// deterministic ctrl array; 9 bytes/slot of table memory instead of
	// 8, in exchange for finds that rarely touch the cell array, which
	// keeps throughput at load factors up to 0.9.
	LinearDCompact Kind = "linearHash-D-compact"
	// LinearDAuto is the self-tuning deterministic table (AutoTable):
	// it starts flat and switches between the LinearD and
	// LinearDCompact layouts at bulk-call boundaries from its observed
	// load factor and op mix (internal/tune). Bulk calls require
	// exclusive access (they may migrate); layout decisions replay
	// deterministically for a fixed operation script.
	LinearDAuto Kind = "linearHash-D-auto"
	LinearND    Kind = "linearHash-ND"
	Cuckoo      Kind = "cuckooHash"
	Chained     Kind = "chainedHash"
	ChainedCR   Kind = "chainedHash-CR"
	Hopscotch   Kind = "hopscotchHash"
	HopscotchPC Kind = "hopscotchHash-PC"
	SerialHI    Kind = "serialHash-HI"
	SerialHD    Kind = "serialHash-HD"
)

// Kinds lists all table kinds in the paper's presentation order.
var Kinds = []Kind{
	SerialHI, SerialHD,
	LinearD, LinearDSharded, LinearDCompact, LinearDAuto, LinearND, Cuckoo,
	Chained, ChainedCR,
	Hopscotch, HopscotchPC,
}

// ParallelKinds lists the concurrent/phase-concurrent kinds.
var ParallelKinds = []Kind{
	LinearD, LinearDSharded, LinearDCompact, LinearDAuto, LinearND, Cuckoo,
	Chained, ChainedCR,
	Hopscotch, HopscotchPC,
}

// New constructs a table of the given kind with the given capacity and
// element semantics. Chained tables use size as the bucket count.
func New[O core.Ops](kind Kind, size int) (Table, error) {
	switch kind {
	case LinearD:
		return core.NewWordTable[O](size), nil
	case LinearDSharded:
		return core.NewShardedTable[O](size, 0), nil
	case LinearDCompact:
		return core.NewCompactTable[O](size), nil
	case LinearDAuto:
		return NewAutoTable[O](size), nil
	case LinearND:
		return NewLinearND[O](size), nil
	case Cuckoo:
		return NewCuckoo[O](size), nil
	case Chained:
		return NewChained[O](size, false), nil
	case ChainedCR:
		return NewChained[O](size, true), nil
	case Hopscotch:
		return NewHopscotch[O](size, true), nil
	case HopscotchPC:
		return NewHopscotch[O](size, false), nil
	case SerialHI:
		return NewSerialHITable[O](size), nil
	case SerialHD:
		return NewSerialHDTable[O](size), nil
	default:
		return nil, fmt.Errorf("tables: unknown kind %q", kind)
	}
}

// MustNew is New, panicking on unknown kinds (benchmark drivers).
func MustNew[O core.Ops](kind Kind, size int) Table {
	t, err := New[O](kind, size)
	if err != nil {
		panic(err)
	}
	return t
}

// SizeFor converts a desired element capacity into a table size for the
// kind: the next power of two >= capacity, doubled for cuckoo hashing
// (two-choice cuckoo without stashes degrades sharply past ~50% load;
// the paper likewise gives cuckoo twice the cells in its applications).
func SizeFor(kind Kind, capacity int) int {
	m := ceilPow2(capacity)
	if kind == Cuckoo {
		m *= 2
	}
	return m
}

// IsSerial reports whether the kind is one of the sequential baselines.
func (k Kind) IsSerial() bool { return k == SerialHI || k == SerialHD }

// IsDeterministic reports whether the table's quiescent layout is
// independent of operation order. For LinearDSharded this holds per
// shard count: tables constructed with different shard counts store
// the same set in different (each deterministic) orders. For
// LinearDAuto it holds per operation script: the representation
// decisions are pure functions of the cumulative op multiset, and both
// representations lay out any element set identically at equal
// capacity.
func (k Kind) IsDeterministic() bool {
	return k == LinearD || k == LinearDSharded || k == LinearDCompact ||
		k == LinearDAuto || k == SerialHI
}
