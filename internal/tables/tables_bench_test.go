package tables

import (
	"fmt"
	"testing"

	"phasehash/internal/core"
	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// Per-table micro-benchmarks (one batch of n operations per iteration);
// the paper-layout experiments live in the repository root and cmd/.

const microN = 1 << 15

func microKeys() []uint64 {
	keys := make([]uint64, microN)
	for i := range keys {
		keys[i] = hashx.At(1, i)%microN + 1
	}
	return keys
}

func BenchmarkInsertByKind(b *testing.B) {
	keys := microKeys()
	for _, kind := range Kinds {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab := MustNew[core.SetOps](kind, 4*microN)
				if kind.IsSerial() {
					for _, k := range keys {
						tab.Insert(k)
					}
				} else {
					parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
						for j := lo; j < hi; j++ {
							tab.Insert(keys[j])
						}
					})
				}
			}
			b.ReportMetric(float64(microN), "elems/op")
		})
	}
}

func BenchmarkFindByKind(b *testing.B) {
	keys := microKeys()
	for _, kind := range Kinds {
		tab := MustNew[core.SetOps](kind, 4*microN)
		for _, k := range keys {
			tab.Insert(k)
		}
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab.Find(keys[i&(microN-1)])
			}
		})
	}
}

func BenchmarkDeleteByKind(b *testing.B) {
	keys := microKeys()
	for _, kind := range Kinds {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tab := MustNew[core.SetOps](kind, 4*microN)
				for _, k := range keys {
					tab.Insert(k)
				}
				b.StartTimer()
				if kind.IsSerial() {
					for _, k := range keys {
						tab.Delete(k)
					}
				} else {
					parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
						for j := lo; j < hi; j++ {
							tab.Delete(keys[j])
						}
					})
				}
			}
			b.ReportMetric(float64(microN), "elems/op")
		})
	}
}

func BenchmarkElementsByKind(b *testing.B) {
	keys := microKeys()
	for _, kind := range Kinds {
		tab := MustNew[core.SetOps](kind, 4*microN)
		for _, k := range keys {
			tab.Insert(k)
		}
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := tab.Elements(); len(got) == 0 {
					b.Fatal("empty elements")
				}
			}
		})
	}
}

// BenchmarkContendedInsert measures duplicate-heavy insertion (37
// distinct keys), the regime that separates chainedHash from
// chainedHash-CR and hopscotch from the linear tables in the paper.
func BenchmarkContendedInsert(b *testing.B) {
	keys := make([]uint64, microN)
	for i := range keys {
		keys[i] = hashx.At(3, i)%37 + 1
	}
	for _, kind := range ParallelKinds {
		b.Run(fmt.Sprintf("%s", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab := MustNew[core.SetOps](kind, 1<<12)
				parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						tab.Insert(keys[j])
					}
				})
			}
		})
	}
}
