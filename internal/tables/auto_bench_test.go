package tables

import (
	"runtime"
	"testing"

	"phasehash/internal/core"
	"phasehash/internal/obs"
	"phasehash/internal/sequence"
)

// Tuned-vs-static benchmark: the steady-state bulk find phase over the
// six EXPERIMENTS.md key distributions, on the two static layouts
// (linearHash-D flat, linearHash-D-compact) and the self-tuning
// linearHash-D-auto kind. Each cell fills a fixed-capacity table from
// the distribution's stream, then times FindAll over a second stream
// from the same distribution (a different seed), so the probe mix has
// the hits and misses the distribution itself produces.
//
// The fill lengths split the regime on purpose. The pairInt streams
// store (under SetOps, which keys on the whole packed word) nearly
// every element — random values make duplicates vanishing — so a
// 0.9*cells stream lands at load 0.9, where the compact ctrl-array
// scan wins probes (see internal/core/compact_bench_test.go). The
// plain-int streams repeat keys: uniform keys in [1,n] store ~63% of
// the stream, so 10/7*cells lands randomSeq-int at ~0.9 load too,
// while the exponential and trigram streams are duplicate-heavy and
// stay far below the compact threshold — flat's regime. A static
// default is therefore wrong somewhere either way; the auto kind's job
// is to sit within noise of the per-cell winner on every row, which is
// what BENCH_core.json records and EXPERIMENTS.md tabulates. Auto
// decides from its live load tally and find share at bulk boundaries;
// the third warm pass is the boundary where a compact-regime cell's
// find share crosses tune.CompactFindSharePm, so migration happens
// before the timer starts and the timed loop runs on the layout the
// cell's own telemetry picked.
const autoBenchCells = 1 << 17

// autoBenchFillN returns the fill-stream length that lands the
// distribution near its regime's target load at autoBenchCells (see
// the comment above for the per-distribution arithmetic).
func autoBenchFillN(d sequence.Distribution) int {
	switch d {
	case sequence.RandomPairInt, sequence.ExptPairInt, sequence.TrigramPairInt:
		return autoBenchCells * 9 / 10
	default:
		return autoBenchCells * 10 / 7
	}
}

// autoBenchStream maps the two string-keyed distributions to hashed
// word keys (the EXPERIMENTS.md substitution, as in detres).
func autoBenchStream(d sequence.Distribution, n int, seed uint64) []uint64 {
	switch d {
	case sequence.TrigramStr:
		return sequence.TrigramKeys(n, seed)
	case sequence.TrigramPairInt:
		return sequence.TrigramKeyPairs(n, seed)
	default:
		return sequence.WordElements(d, n, seed)
	}
}

// autoBenchKinds are the compared configurations: the static layouts
// the hand-tuned rows pin, and the self-tuning kind.
var autoBenchKinds = []Kind{LinearD, LinearDCompact, LinearDAuto}

func BenchmarkAutoKindFindAll(b *testing.B) {
	for _, dist := range sequence.AllDistributions {
		n := autoBenchFillN(dist)
		elems := autoBenchStream(dist, n, 42)
		probe := autoBenchStream(dist, n, 43)
		for _, kind := range autoBenchKinds {
			b.Run("dist="+string(dist)+"/kind="+string(kind), func(b *testing.B) {
				// Fresh always-on counter state per cell so no gauge or
				// grain window leaks across cells.
				obs.CoreReset()
				tab := MustNew[core.SetOps](kind, autoBenchCells)
				bulk, _ := AsBulk(tab)
				bulk.InsertAll(elems)
				dst := make([]uint64, len(probe))
				// Three warm passes: the auto kind's find share crosses the
				// compact threshold at the third bulk boundary, so any
				// migration (and the cache warming of the migrated layout)
				// happens before the timer starts; the static kinds get the
				// same warming.
				bulk.FindAll(probe, dst)
				bulk.FindAll(probe, dst)
				bulk.FindAll(probe, dst)
				if a, ok := tab.(*AutoTable[core.SetOps]); ok {
					b.Logf("auto settled on %s (load %d/%d): trace %q",
						a.Kind(), a.Count(), a.Size(), a.TuneTrace())
				}
				b.ReportMetric(float64(len(probe)), "elems/op")
				// Collect the fill/migration garbage (earlier cells' tables,
				// the auto kind's abandoned flat layout) so later cells don't
				// pay earlier cells' GC debt inside the timed loop.
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bulk.FindAll(probe, dst)
				}
			})
		}
	}
}
