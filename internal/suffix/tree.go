package suffix

import (
	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
	"phasehash/internal/tables"
)

// Tree is a suffix tree over a text. Structure (parents, string depths)
// is built sequentially from the suffix and LCP arrays with the classic
// stack algorithm; the *child index* — the data structure the paper's
// Table 5 benchmarks — is a hash table mapping (node, first byte of
// edge) to the child node, filled by a parallel insert phase
// (BuildIndex) and queried by parallel find phases (Search).
//
// Node numbering: leaf j in [0, n) corresponds to suffix sa[j]; internal
// nodes get ids >= n. The root is node n.
type Tree struct {
	Text []byte
	SA   []int32

	// Per-node structure, indexed by node id.
	Parent []int32
	Depth  []int32 // string depth (root 0; leaf j: n - sa[j])
	Rep    []int32 // representative suffix start (label decoding)

	Root  int32
	index tables.Table
}

// edgeElement packs a child-index entry: key = (parent:29, char:8),
// value = child:27 bits. 29 bits of parent id covers texts to ~256M
// nodes; 27 bits of child also bounds text size (documented in
// DESIGN.md).
func edgeElement(parent int32, ch byte, child int32) uint64 {
	return uint64(parent)<<35 | uint64(ch)<<27 | uint64(child)
}

// edgeKey builds the lookup element for (parent, char).
func edgeKey(parent int32, ch byte) uint64 {
	return uint64(parent)<<35 | uint64(ch)<<27
}

func edgeChild(e uint64) int32 { return int32(e & (1<<27 - 1)) }

// EdgeOps is the element semantics for the child index: the key is the
// (parent, char) pair in the top 37 bits.
type EdgeOps struct{}

// Hash implements core.Ops.
func (EdgeOps) Hash(e uint64) uint64 { return hashx.Mix64(e >> 27) }

// Cmp implements core.Ops.
func (EdgeOps) Cmp(a, b uint64) int {
	ka, kb := a>>27, b>>27
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	default:
		return 0
	}
}

// Merge implements core.Ops. Edge keys are unique within a suffix tree,
// so Merge is never exercised on distinct children; keep the incumbent.
func (EdgeOps) Merge(cur, _ uint64) uint64 { return cur }

// New builds the suffix tree structure for text (terminator-free input;
// a 0 byte is appended internally so no suffix is a prefix of another).
// The child index is NOT yet built; call BuildIndex, whose cost is what
// Table 5(a) measures.
func New(text []byte) *Tree {
	s := make([]byte, len(text)+1)
	copy(s, text)
	// s ends with the implicit 0 terminator.
	sa := Array(s)
	lcp := LCPArray(s, sa)
	n := len(s)

	t := &Tree{Text: s, SA: sa}
	// Leaves 0..n-1; internal nodes appended from n.
	t.Parent = make([]int32, n, 2*n)
	t.Depth = make([]int32, n, 2*n)
	t.Rep = make([]int32, n, 2*n)
	for j := 0; j < n; j++ {
		t.Parent[j] = -1
		t.Depth[j] = int32(n) - sa[j]
		t.Rep[j] = sa[j]
	}
	newNode := func(depth, rep int32) int32 {
		id := int32(len(t.Parent))
		t.Parent = append(t.Parent, -1)
		t.Depth = append(t.Depth, depth)
		t.Rep = append(t.Rep, rep)
		return id
	}
	root := newNode(0, sa[0])
	t.Root = root

	// Stack algorithm: the stack holds the rightmost path, depths
	// strictly increasing; a node's parent is assigned when it is
	// popped. For each new leaf with LCP value l against the previous
	// suffix, pop nodes deeper than l, attaching each to the node below
	// it, splitting the last edge with a fresh internal node at depth l
	// when the path has no node at that exact depth.
	stack := []int32{root}
	for j := 0; j < n; j++ {
		l := int32(0)
		if j > 0 {
			l = lcp[j]
		}
		for t.Depth[stack[len(stack)-1]] > l {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			y := stack[len(stack)-1]
			if t.Depth[y] >= l {
				t.Parent[x] = y
				continue
			}
			// depth(y) < l < depth(x): split x's edge with a node at
			// depth l; the new node joins the rightmost path in x's
			// place (its own parent is assigned when it is popped).
			mid := newNode(l, t.Rep[x])
			t.Parent[x] = mid
			stack = append(stack, mid)
			break
		}
		stack = append(stack, int32(j))
	}
	for len(stack) > 1 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.Parent[x] = stack[len(stack)-1]
	}
	return t
}

// NumNodes returns the total node count (leaves + internals).
func (t *Tree) NumNodes() int { return len(t.Parent) }

// BuildIndex fills the child index using a table of the given kind and
// returns it; this parallel insert phase is the timed portion of Table
// 5(a). The table is sized at twice the node count rounded up to a power
// of two, as in the paper.
func (t *Tree) BuildIndex(kind tables.Kind) tables.Table {
	tab := tables.MustNew[EdgeOps](kind, tables.SizeFor(kind, 2*t.NumNodes()))
	nodes := t.NumNodes()
	body := func(v int) {
		p := t.Parent[v]
		if p < 0 {
			return // root (or the pre-root placeholder)
		}
		ch := t.Text[t.Rep[v]+t.Depth[p]]
		tab.Insert(edgeElement(p, ch, int32(v)))
	}
	if kind.IsSerial() {
		for v := 0; v < nodes; v++ {
			body(v)
		}
	} else {
		parallel.ForGrain(nodes, 256, func(v int) { body(v) })
	}
	t.index = tab
	return tab
}

// Index returns the child index (nil before BuildIndex).
func (t *Tree) Index() tables.Table { return t.index }

// Child looks up the child of node p whose edge starts with ch.
func (t *Tree) Child(p int32, ch byte) (int32, bool) {
	e, ok := t.index.Find(edgeKey(p, ch))
	if !ok {
		return -1, false
	}
	return edgeChild(e), true
}

// Contains reports whether pattern occurs in the text, walking the tree
// with child-index finds (a pure find phase; Table 5(b)).
func (t *Tree) Contains(pattern []byte) bool {
	if len(pattern) == 0 {
		return true
	}
	node := t.Root
	matched := int32(0)
	for {
		child, ok := t.Child(node, pattern[matched])
		if !ok {
			return false
		}
		// Compare along the edge label.
		lo := t.Rep[child] + t.Depth[node]
		hi := t.Rep[child] + t.Depth[child]
		for p := lo; p < hi; p++ {
			if matched == int32(len(pattern)) {
				return true
			}
			if t.Text[p] != pattern[matched] {
				return false
			}
			matched++
		}
		if matched == int32(len(pattern)) {
			return true
		}
		node = child
	}
}
