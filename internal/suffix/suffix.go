// Package suffix builds suffix arrays, LCP arrays and suffix trees — the
// substrate of the paper's suffix-tree application (Section 5, Table 5).
// The suffix tree stores each internal node's children in a hash table
// keyed by (node, first character), exactly the representation the paper
// benchmarks: tree construction ends with a parallel phase inserting all
// child edges (a pure insert phase), and searches are pure find phases.
package suffix

import (
	"phasehash/internal/parallel"
)

// Array computes the suffix array of s (indices of suffixes in
// lexicographic order) by parallel prefix doubling: O(log n) rounds of
// sorting (rank, rank+k) pairs.
func Array(s []byte) []int32 {
	n := len(s)
	if n == 0 {
		return nil
	}
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	type item struct {
		key uint64
		idx int32
	}
	items := make([]item, n)
	parallel.For(n, func(i int) {
		sa[i] = int32(i)
		rank[i] = int32(s[i])
	})
	for k := 1; ; k *= 2 {
		// Key: (rank[i], rank[i+k]) packed; absent second rank sorts
		// first (0; real ranks are offset by 1).
		parallel.For(n, func(i int) {
			hi := uint64(rank[i]) + 1
			lo := uint64(0)
			if i+k < n {
				lo = uint64(rank[i+k]) + 1
			}
			items[i] = item{key: hi<<32 | lo, idx: int32(i)}
		})
		parallel.Sort(items, func(a, b item) bool {
			if a.key != b.key {
				return a.key < b.key
			}
			return a.idx < b.idx
		})
		// Re-rank.
		newRank := tmp
		newRank[items[0].idx] = 0
		distinct := int32(0)
		for i := 1; i < n; i++ {
			if items[i].key != items[i-1].key {
				distinct++
			}
			newRank[items[i].idx] = distinct
		}
		parallel.For(n, func(i int) { sa[i] = items[i].idx })
		rank, tmp = newRank, rank
		if distinct == int32(n-1) {
			break
		}
	}
	return sa
}

// LCPArray computes lcp[i] = length of the longest common prefix of
// suffixes sa[i-1] and sa[i] (lcp[0] = 0) with Kasai's algorithm.
func LCPArray(s []byte, sa []int32) []int32 {
	n := len(s)
	lcp := make([]int32, n)
	if n == 0 {
		return lcp
	}
	rank := make([]int32, n)
	parallel.For(n, func(i int) { rank[sa[i]] = int32(i) })
	h := 0
	for i := 0; i < n; i++ {
		r := rank[i]
		if r == 0 {
			h = 0
			continue
		}
		j := int(sa[r-1])
		for i+h < n && j+h < n && s[i+h] == s[j+h] {
			h++
		}
		lcp[r] = int32(h)
		if h > 0 {
			h--
		}
	}
	return lcp
}
