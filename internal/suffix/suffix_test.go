package suffix

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"phasehash/internal/hashx"
	"phasehash/internal/tables"
)

// naiveSA is the O(n^2 log n) reference.
func naiveSA(s []byte) []int32 {
	n := len(s)
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		return bytes.Compare(s[sa[a]:], s[sa[b]:]) < 0
	})
	return sa
}

func naiveLCP(s []byte, sa []int32) []int32 {
	lcp := make([]int32, len(sa))
	for i := 1; i < len(sa); i++ {
		a, b := s[sa[i-1]:], s[sa[i]:]
		l := 0
		for l < len(a) && l < len(b) && a[l] == b[l] {
			l++
		}
		lcp[i] = int32(l)
	}
	return lcp
}

func TestArrayAgainstNaive(t *testing.T) {
	cases := [][]byte{
		[]byte("banana"),
		[]byte("mississippi"),
		[]byte("aaaaaaa"),
		[]byte("abcabcabc"),
		[]byte("z"),
		[]byte("ba"),
	}
	for _, s := range cases {
		got := Array(s)
		want := naiveSA(s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Array(%q) = %v, want %v", s, got, want)
			}
		}
		gotL := LCPArray(s, got)
		wantL := naiveLCP(s, want)
		for i := range wantL {
			if gotL[i] != wantL[i] {
				t.Fatalf("LCP(%q) = %v, want %v", s, gotL, wantL)
			}
		}
	}
}

func TestQuickArray(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		// Small alphabet maximizes repeats.
		s := make([]byte, len(raw))
		for i, b := range raw {
			s[i] = 'a' + b%4
		}
		got := Array(s)
		want := naiveSA(s)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randomText(n int, sigma byte, seed uint64) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = 'a' + byte(hashx.At(seed, i)%uint64(sigma))
	}
	return s
}

func TestLargeRandomTextSorted(t *testing.T) {
	s := randomText(20000, 3, 5)
	sa := Array(s)
	for i := 1; i < len(sa); i++ {
		if bytes.Compare(s[sa[i-1]:], s[sa[i]:]) >= 0 {
			t.Fatalf("suffixes %d and %d out of order", i-1, i)
		}
	}
}

func TestTreeContains(t *testing.T) {
	text := []byte("the quick brown fox jumps over the lazy dog the end")
	tree := New(text)
	tree.BuildIndex(tables.LinearD)
	// Every substring is found.
	for lo := 0; lo < len(text); lo += 3 {
		for hi := lo + 1; hi <= len(text); hi += 5 {
			if !tree.Contains(text[lo:hi]) {
				t.Fatalf("substring %q not found", text[lo:hi])
			}
		}
	}
	for _, bad := range []string{"quack", "foxy ", "zzz", "the quick brown foxx"} {
		if tree.Contains([]byte(bad)) {
			t.Fatalf("non-substring %q reported found", bad)
		}
	}
	if !tree.Contains(nil) {
		t.Error("empty pattern must match")
	}
}

func TestTreeNodeCountBounds(t *testing.T) {
	s := randomText(5000, 4, 9)
	tree := New(s)
	n := len(s) + 1 // with terminator
	if tree.NumNodes() < n+1 || tree.NumNodes() > 2*n {
		t.Fatalf("node count %d outside (n, 2n] for n=%d", tree.NumNodes(), n)
	}
	// Depths increase parent -> child, and the root has depth 0.
	if tree.Depth[tree.Root] != 0 {
		t.Fatal("root depth not 0")
	}
	for v := 0; v < tree.NumNodes(); v++ {
		p := tree.Parent[v]
		if int32(v) == tree.Root {
			continue
		}
		if p < 0 {
			t.Fatalf("node %d has no parent", v)
		}
		if tree.Depth[p] >= tree.Depth[v] {
			t.Fatalf("node %d depth %d <= parent %d depth %d", v, tree.Depth[v], p, tree.Depth[p])
		}
	}
}

func TestQuickTreeSearchMatchesBytesContains(t *testing.T) {
	f := func(raw []byte, pat []byte) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]byte, len(raw))
		for i, b := range raw {
			s[i] = 'a' + b%3
		}
		p := make([]byte, len(pat)%8)
		for i := range p {
			p[i] = 'a' + pat[i]%3
		}
		tree := New(s)
		tree.BuildIndex(tables.LinearD)
		return tree.Contains(p) == bytes.Contains(s, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTreeAllSuffixesReachable(t *testing.T) {
	s := []byte("abracadabra")
	tree := New(s)
	tree.BuildIndex(tables.LinearD)
	for i := range s {
		if !tree.Contains(s[i:]) {
			t.Fatalf("suffix %q not found", s[i:])
		}
	}
}

func TestBuildIndexKinds(t *testing.T) {
	s := randomText(3000, 5, 21)
	for _, kind := range []tables.Kind{tables.LinearD, tables.LinearND, tables.Cuckoo, tables.ChainedCR, tables.SerialHI} {
		tree := New(s)
		tab := tree.BuildIndex(kind)
		if tab.Count() != tree.NumNodes()-1 {
			t.Fatalf("%s: index has %d edges, want %d", kind, tab.Count(), tree.NumNodes()-1)
		}
		if !tree.Contains(s[100:150]) {
			t.Fatalf("%s: substring lost", kind)
		}
	}
}
