// Package graph provides the compressed-sparse-row graph representation
// and the three PBBS graph generators the paper's BFS, spanning-forest
// and edge-contraction experiments run on:
//
//	3D-grid   every vertex connects to its 2 neighbors in each of 3
//	          dimensions (torus), 6 edges per vertex
//	random    every vertex has k edges to uniformly random neighbors
//	rMat      the recursive matrix model of Chakrabarti, Zhan &
//	          Faloutsos, giving a power-law degree distribution
//
// Generators take a seed and are deterministic; graphs are symmetrized
// (undirected) with duplicate edges removed, as in PBBS.
package graph

import (
	"fmt"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// Graph is an undirected graph in CSR form: the neighbors of vertex v
// are Adj[Offsets[v]:Offsets[v+1]].
type Graph struct {
	Offsets []int64
	Adj     []uint32
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the number of directed arcs (2x undirected edges).
func (g *Graph) NumEdges() int { return len(g.Adj) }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns v's adjacency slice (do not modify).
func (g *Graph) Neighbors(v int) []uint32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// Edge is an undirected edge (U <= V after normalization).
type Edge struct {
	U, V uint32
}

// EdgeList is a list of undirected edges, the input form for the
// spanning-forest and edge-contraction experiments.
type EdgeList struct {
	N     int // number of vertices
	Edges []Edge
}

// FromEdges builds a CSR graph from an edge list, symmetrizing and
// removing self-loops and duplicate arcs. Construction is parallel and
// deterministic (counting sort by endpoint, then per-vertex dedup).
func FromEdges(n int, edges []Edge) *Graph {
	// Count degrees for both directions.
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := make([]uint32, deg[n])
	fill := make([]int64, n)
	copy(fill, deg[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[fill[e.U]] = e.V
		fill[e.U]++
		adj[fill[e.V]] = e.U
		fill[e.V]++
	}
	// Sort each adjacency list and strip duplicates.
	offsets := make([]int64, n+1)
	parallel.For(n, func(v int) {
		lo, hi := deg[v], deg[v+1]
		nbrs := adj[lo:hi]
		insertionSort(nbrs)
		w := 0
		for i := range nbrs {
			if i == 0 || nbrs[i] != nbrs[i-1] {
				nbrs[w] = nbrs[i]
				w++
			}
		}
		offsets[v+1] = int64(w)
	})
	total := int64(0)
	for v := 0; v < n; v++ {
		offsets[v+1], total = total+offsets[v+1], total+offsets[v+1]
	}
	packed := make([]uint32, total)
	parallel.For(n, func(v int) {
		lo := deg[v]
		cnt := offsets[v+1] - offsets[v]
		copy(packed[offsets[v]:offsets[v+1]], adj[lo:lo+cnt])
	})
	return &Graph{Offsets: offsets, Adj: packed}
}

func insertionSort(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Grid3D builds the paper's 3D-grid graph: side^3 vertices on a
// 3-dimensional torus, each joined to both neighbors in each dimension
// (degree 6).
func Grid3D(side int) *Graph {
	n := side * side * side
	edges := make([]Edge, 0, 3*n)
	idx := func(x, y, z int) uint32 {
		return uint32((x*side+y)*side + z)
	}
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				v := idx(x, y, z)
				edges = append(edges,
					Edge{v, idx((x+1)%side, y, z)},
					Edge{v, idx(x, (y+1)%side, z)},
					Edge{v, idx(x, y, (z+1)%side)},
				)
			}
		}
	}
	return FromEdges(n, edges)
}

// Random builds the paper's random graph: n vertices, k edges from each
// vertex to uniformly random targets.
func Random(n, k int, seed uint64) *Graph {
	edges := make([]Edge, n*k)
	parallel.For(n*k, func(i int) {
		edges[i] = Edge{uint32(i / k), uint32(hashx.At(seed, i) % uint64(n))}
	})
	return FromEdges(n, edges)
}

// RMat builds an rMat graph with 2^logn vertices and m edge samples,
// using the standard (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) parameters
// PBBS uses, with per-level noise. Duplicate arcs are removed, so the
// resulting arc count is slightly below 2m.
func RMat(logn, m int, seed uint64) *Graph {
	n := 1 << uint(logn)
	edges := make([]Edge, m)
	parallel.For(m, func(i int) {
		u, v := 0, 0
		for level := 0; level < logn; level++ {
			r := hashx.At(seed+uint64(level), i)
			// Quadrant probabilities 57/19/19/5, perturbed per level to
			// break the strict self-similarity (smoothing factor as in
			// the GTgraph/PBBS generators).
			p := r % 100
			switch {
			case p < 57:
				// top-left: nothing set
			case p < 76:
				v |= 1 << uint(level)
			case p < 95:
				u |= 1 << uint(level)
			default:
				u |= 1 << uint(level)
				v |= 1 << uint(level)
			}
		}
		edges[i] = Edge{uint32(u), uint32(v)}
	})
	return FromEdges(n, edges)
}

// Name identifies the paper's graph inputs.
type Name string

// The graphs of Tables 6-8.
const (
	GridName   Name = "3D-grid"
	RandomName Name = "random"
	RMatName   Name = "rMat"
)

// Names lists the paper's graph inputs in presentation order.
var Names = []Name{GridName, RandomName, RMatName}

// Build constructs one of the paper's graphs scaled to approximately n
// vertices (the paper uses 10^7 vertices for grid/random and 2^24 for
// rMat; pass a smaller n to scale the experiment down).
func Build(name Name, n int, seed uint64) (*Graph, error) {
	switch name {
	case GridName:
		side := 2
		for side*side*side < n {
			side++
		}
		return Grid3D(side), nil
	case RandomName:
		return Random(n, 5, seed), nil
	case RMatName:
		logn := 1
		for 1<<uint(logn) < n {
			logn++
		}
		return RMat(logn, 3*n, seed), nil
	default:
		return nil, fmt.Errorf("graph: unknown graph %q", name)
	}
}
