package graph

import (
	"testing"
	"testing/quick"
)

// checkSymmetric verifies CSR symmetry: u in Adj(v) iff v in Adj(u).
func checkSymmetric(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			found := false
			for _, w := range g.Neighbors(int(u)) {
				if int(w) == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("arc %d->%d has no reverse", v, u)
			}
		}
	}
}

func checkNoDupOrLoop(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.Neighbors(v)
		for i, u := range nbrs {
			if int(u) == v {
				t.Fatalf("self-loop at %d", v)
			}
			if i > 0 && nbrs[i-1] >= u {
				t.Fatalf("vertex %d adjacency not strictly sorted: %v", v, nbrs)
			}
		}
	}
}

func TestFromEdgesBasic(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {0, 2}, {1, 1}})
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	// 0-1,1-2,2-3,3-0,0-2 distinct undirected edges -> 10 arcs.
	if g.NumEdges() != 10 {
		t.Fatalf("NumEdges = %d, want 10", g.NumEdges())
	}
	checkSymmetric(t, g)
	checkNoDupOrLoop(t, g)
	if d := g.Degree(0); d != 3 {
		t.Errorf("Degree(0) = %d, want 3", d)
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(4) // 64 vertices, torus => degree exactly 6
	if g.NumVertices() != 64 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	for v := 0; v < 64; v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("Degree(%d) = %d, want 6", v, g.Degree(v))
		}
	}
	checkSymmetric(t, g)
	checkNoDupOrLoop(t, g)
}

func TestGrid3DSide2(t *testing.T) {
	// side=2: +1 and -1 neighbors coincide on a torus; degree is 3.
	g := Grid3D(2)
	if g.NumVertices() != 8 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	for v := 0; v < 8; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("Degree(%d) = %d, want 3", v, g.Degree(v))
		}
	}
}

func TestRandomGraph(t *testing.T) {
	g := Random(1000, 5, 42)
	if g.NumVertices() != 1000 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	checkSymmetric(t, g)
	checkNoDupOrLoop(t, g)
	// About 5 out-edges per vertex before symmetrization: mean degree
	// close to 10 after.
	mean := float64(g.NumEdges()) / 1000
	if mean < 8 || mean > 11 {
		t.Errorf("mean degree %.2f, want ~10", mean)
	}
	// Determinism.
	h := Random(1000, 5, 42)
	if h.NumEdges() != g.NumEdges() {
		t.Error("same seed produced different graphs")
	}
}

func TestRMat(t *testing.T) {
	g := RMat(12, 3*4096, 7)
	if g.NumVertices() != 4096 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	checkSymmetric(t, g)
	checkNoDupOrLoop(t, g)
	// Power-law shape: max degree far above the mean.
	maxDeg, sum := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := sum / g.NumVertices()
	if maxDeg < 8*mean {
		t.Errorf("max degree %d not >> mean %d; rMat should be skewed", maxDeg, mean)
	}
}

func TestBuildNames(t *testing.T) {
	for _, name := range Names {
		g, err := Build(name, 500, 3)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if g.NumVertices() < 500 {
			t.Errorf("Build(%s) has %d vertices, want >= 500", name, g.NumVertices())
		}
		checkSymmetric(t, g)
	}
	if _, err := Build("nope", 10, 0); err == nil {
		t.Error("Build(nope) did not error")
	}
}

func TestQuickFromEdgesInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		n := 64
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{uint32(raw[i]) % uint32(n), uint32(raw[i+1]) % uint32(n)})
		}
		g := FromEdges(n, edges)
		// Arc count is even (symmetrized) and adjacency sorted/deduped.
		if g.NumEdges()%2 != 0 {
			return false
		}
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			for i, u := range nbrs {
				if int(u) == v || (i > 0 && nbrs[i-1] >= u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
