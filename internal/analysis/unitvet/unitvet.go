// Package unitvet implements the go vet "unitchecker" protocol with
// only the standard library, so cmd/phasevet can be used as
//
//	go vet -vettool=$(which phasevet) ./...
//
// The go command probes the tool with -V=full and -flags, then invokes
// it once per compilation unit with a JSON *.cfg file describing the
// unit's Go files, the export data of its dependencies, and the .vetx
// fact files of already-vetted dependencies. This mirrors
// golang.org/x/tools/go/analysis/unitchecker, which this module cannot
// depend on.
//
// Facts: dependency units are vetted first (VetxOnly) so their
// analyzers can export object facts; the facts are serialized into the
// unit's VetxOutput file, and consuming units get them back through
// PackageVetx. That is how phasevet's interprocedural phase effects,
// atomicvet's shadow sets and detvet's nondeterminism summaries cross
// package boundaries under the standard go vet driver.
package unitvet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"phasehash/internal/analysis/framework"
)

// config is the JSON unit description the go command passes in the
// *.cfg file (a subset of cmd/go's vet config).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Handles reports whether args is a go-vet driver invocation: a
// version/flags probe or a single unit config file.
func Handles(args []string) bool {
	for _, a := range args {
		if a == "-flags" || a == "-V=full" || strings.HasPrefix(a, "-V=") {
			return true
		}
	}
	return len(args) == 1 && strings.HasSuffix(args[0], ".cfg")
}

// Main services one go-vet driver invocation for the analyzer suite
// and exits.
func Main(analyzers []*framework.Analyzer, args []string) {
	for _, arg := range args {
		switch {
		case arg == "-flags":
			// The go command asks which analyzer flags the tool
			// accepts so it can forward -vet flags; we define none.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasPrefix(arg, "-V"):
			printVersion()
			os.Exit(0)
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "unitvet: expected a single .cfg argument, got %q\n", args)
		os.Exit(1)
	}
	os.Exit(runUnit(analyzers, args[0]))
}

// printVersion emits the version line the go command's tool-ID probe
// expects: "<name> version <version>", with a content hash so that
// rebuilding the tool invalidates go vet's result cache.
func printVersion() {
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(self); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
}

func runUnit(analyzers []*framework.Analyzer, cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unitvet: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "unitvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command requires the facts output file to exist even when
	// the unit contributes nothing; write it empty up front and
	// overwrite with real facts after a successful run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "unitvet: %v\n", err)
			return 1
		}
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "unitvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tc := &types.Config{Importer: imp}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "unitvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	// Load the fact files of already-vetted dependencies. Absent or
	// unreadable files degrade to intra-package analysis, never to an
	// error: old go versions may not thread vetx for tools that don't
	// request it, and empty files mean "nothing to say".
	facts := framework.NewMemFacts()
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue
		}
		_ = facts.DecodePackage(framework.NormalizePkgPath(path), data)
	}
	found := 0
	pass := &framework.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Facts:     facts,
		Report: func(d framework.Diagnostic) {
			if cfg.VetxOnly {
				// Dependency unit, vetted for facts only: its own
				// diagnostics are reported when it is vetted directly.
				return
			}
			found++
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		},
	}
	for _, a := range analyzers {
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "unitvet: %s: %v\n", a.Name, err)
			return 1
		}
	}
	if cfg.VetxOutput != "" {
		enc, err := facts.EncodePackage(framework.NormalizePkgPath(cfg.ImportPath))
		if err == nil {
			if err := os.WriteFile(cfg.VetxOutput, enc, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "unitvet: %v\n", err)
				return 1
			}
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
