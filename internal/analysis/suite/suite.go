// Package suite wires the three phasehash analyzers (phasevet,
// atomicvet, detvet) into one multichecker run, shared by the
// standalone cmd/phasevet driver and the repo self-audit tests.
//
// The suite is fact-driven: packages must be analyzed in dependency
// order over a shared FactStore, so a package sees the phase effects,
// atomic shadow sets and nondeterminism summaries of everything it
// imports. load.Loader.LoadDepsOrdered produces that order.
package suite

import (
	"phasehash/internal/analysis/atomicvet"
	"phasehash/internal/analysis/detvet"
	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
	"phasehash/internal/analysis/phasevet"
)

// Analyzers returns the full suite in its canonical order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{phasevet.PhaseVet, atomicvet.AtomicVet, detvet.DetVet}
}

// Finding is one diagnostic attributed to its package and analyzer.
type Finding struct {
	Pkg      *load.Package
	Analyzer string
	Diag     framework.Diagnostic
}

// Run executes every analyzer over every package, in the given package
// order, threading facts through the shared store. report receives
// each finding as it is produced; Run returns the first analyzer
// error.
func Run(pkgs []*load.Package, analyzers []*framework.Analyzer, facts framework.FactStore, report func(Finding)) error {
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a := a
			pkg := pkg
			pass := &framework.Pass{
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
				Report: func(d framework.Diagnostic) {
					report(Finding{Pkg: pkg, Analyzer: a.Name, Diag: d})
				},
			}
			if _, err := a.Run(pass); err != nil {
				return err
			}
		}
	}
	return nil
}
