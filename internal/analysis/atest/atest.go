// Package atest is the shared test harness for the analyzer suite: an
// analysistest-style corpus runner that checks reported diagnostics
// against `// want` annotations in the fixture sources.
//
// A want annotation is a backquoted regexp on the line the diagnostic
// is expected:
//
//	s.Delete(1) // want `mixedphases`
//
// Every diagnostic must match a want on its line, every want must be
// matched by a diagnostic, and the set of produced categories must
// equal the case's expected categories (so a fixture cannot silently
// start exercising the wrong check).
package atest

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
)

// RunCorpus loads the fixture package in dir under the given import
// path, runs the analyzer with a fresh fact store, and checks the
// diagnostics against the fixture's want annotations and the expected
// category set. Extra dependency packages must be registered on the
// loader (loader.Map) and analyzed first via AnalyzeDep when facts
// should flow.
func RunCorpus(t *testing.T, loader *load.Loader, a *framework.Analyzer, pkgPath, dir string, categories []string, facts framework.FactStore) {
	t.Helper()
	pkg, err := loader.LoadDir(pkgPath, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags := Analyze(t, a, pkg, facts)
	CheckWants(t, pkg.Fset, dir, diags, categories)
}

// Analyze runs one analyzer over one loaded package, returning its
// diagnostics.
func Analyze(t *testing.T, a *framework.Analyzer, pkg *load.Package, facts framework.FactStore) []framework.Diagnostic {
	t.Helper()
	var diags []framework.Diagnostic
	pass := &framework.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     facts,
		Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	return diags
}

// AnalyzeDep runs the analyzer over a dependency fixture package,
// discarding diagnostics; its purpose is populating the fact store so
// a dependent fixture sees cross-package facts.
func AnalyzeDep(t *testing.T, loader *load.Loader, a *framework.Analyzer, pkgPath, dir string, facts framework.FactStore) {
	t.Helper()
	pkg, err := loader.LoadDir(pkgPath, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	pass := &framework.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     facts,
		Report:    func(framework.Diagnostic) {},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
}

// CheckWants verifies diagnostics against the want annotations in dir
// and the expected category set.
func CheckWants(t *testing.T, fset *token.FileSet, dir string, diags []framework.Diagnostic, categories []string) {
	t.Helper()
	wants, err := ParseWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	gotCategories := map[string]bool{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		gotCategories[d.Category] = true
		matched := false
		for _, w := range wants {
			if w.File == filepath.Base(pos.Filename) && w.Line == pos.Line && !w.Matched && w.RE.MatchString(d.Message) {
				w.Matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d [%s]: %s",
				filepath.Base(pos.Filename), pos.Line, d.Category, d.Message)
		}
	}
	for _, w := range wants {
		if !w.Matched {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.File, w.Line, w.RE)
		}
	}
	for _, cat := range categories {
		if !gotCategories[cat] {
			t.Errorf("category %q was not exercised by %s", cat, dir)
		}
	}
	for cat := range gotCategories {
		found := false
		for _, want := range categories {
			if cat == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s unexpectedly produced category %q", dir, cat)
		}
	}
}

// Want is one expected diagnostic.
type Want struct {
	File    string
	Line    int
	RE      *regexp.Regexp
	Matched bool
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// ParseWants scans every fixture file in dir for `// want` annotations,
// one backquoted regexp per occurrence.
func ParseWants(dir string) ([]*Want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*Want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", e.Name(), line, err)
				}
				wants = append(wants, &Want{File: e.Name(), Line: line, RE: re})
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return wants, nil
}
