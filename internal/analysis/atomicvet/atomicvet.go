// Package atomicvet statically checks the repo's atomic-vs-plain
// memory access discipline.
//
// The phase-concurrent tables mix sync/atomic (and internal/atomicx)
// access with plain loads and stores of the same memory: CAS-probing
// during concurrent phases, owner-computes plain kernels when a shard
// is provably exclusive, and serial snapshot scans between phases. The
// plain accesses are sound only by a quiescence argument — exactly the
// kind of folklore invariant that rots silently. atomicvet makes it
// machine-checked:
//
//   - Every struct field that is accessed atomically anywhere becomes
//     "atomic-shadowed". A plain load or store of a shadowed field is
//     the atomicmix diagnostic, unless the enclosing function carries
//     a //phasehash:serial <reason> annotation declaring the
//     exclusivity argument.
//
//   - The annotation is itself checked: //phasehash:serial on a
//     function with no shadowed access is staleserial (the marker has
//     rotted), and an annotation without a reason is badannotation.
//
//   - Atomically-accessed 64-bit scalar fields must be 8-byte aligned
//     on 32-bit targets (sync/atomic's documented requirement); a
//     misplaced field is the align64 diagnostic, computed with
//     GOARCH=386 sizes so a 64-bit development host still catches it.
//
// Shadow sets are exported as package facts, so a field accessed
// atomically in its defining package is flagged on plain access in
// importing packages too.
package atomicvet

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"phasehash/internal/analysis/framework"
)

// AtomicVet is the analyzer instance the multichecker runs.
var AtomicVet = &framework.Analyzer{
	Name: "atomicvet",
	Doc: `report plain accesses to atomically-accessed struct fields

A struct field passed by address to sync/atomic or internal/atomicx
anywhere in the repo is atomic-shadowed: every plain load or store of
the same field is a potential data race and is reported (atomicmix),
unless the enclosing function is annotated

	//phasehash:serial <reason>

declaring why it has exclusive access (quiescence between phases,
owner-computes shard exclusivity, pre-publication initialization).
A serial annotation on a function with no shadowed access is reported
as stale; an annotation without a reason is rejected. 64-bit shadowed
scalar fields are additionally checked for the 8-byte alignment
sync/atomic requires on 32-bit targets (align64).`,
	Run: run,
}

// Result is returned by Run for the self-audit test, which requires
// the analysis to have actually engaged: a clean run that shadowed no
// fields and sanctioned no kernels would be vacuous.
type Result struct {
	// ShadowedFields are the "pkgpath.Type.field" keys shadowed by
	// this package's own atomic accesses.
	ShadowedFields []string
	// SerialFuncs are the functions whose //phasehash:serial
	// annotation was exercised by at least one shadowed access.
	SerialFuncs []string
}

// shadowFact is the serialized per-package shadow set: field key ->
// whether the shadow covers slice/array elements rather than the
// scalar itself.
type shadowFact map[string]bool

// shadowKey is the fact key under which a package publishes its
// shadow set (a package-level fact keyed by a reserved object name).
const shadowKey = "package.shadowed"

type shadowInfo struct {
	elem  bool      // atomic access was to an element of the field
	pos   token.Pos // an example atomic access site (this package only)
	local bool
}

type checker struct {
	pass *framework.Pass
	// shadowed maps "pkgpath.Type.field" to shadow info, merging this
	// package's atomic accesses with imported facts.
	shadowed map[string]*shadowInfo
	// atomicArgs marks &x.f argument nodes of atomic calls, so the
	// plain-access walk does not flag the atomic sites themselves.
	atomicArgs map[ast.Node]bool
	// fields maps local shadow keys to their objects, for the
	// alignment check (defining package only).
	fields map[string]*types.Var
	serial []string
}

func run(pass *framework.Pass) (interface{}, error) {
	c := &checker{
		pass:       pass,
		shadowed:   map[string]*shadowInfo{},
		atomicArgs: map[ast.Node]bool{},
		fields:     map[string]*types.Var{},
	}
	c.importShadows()
	for _, f := range pass.Files {
		ast.Inspect(f, c.collectAtomic)
	}
	c.exportShadows()
	c.checkAlignment()
	for _, f := range pass.Files {
		// Test files are exempt: tests execute serially unless they
		// spawn goroutines (phasevet's territory), and white-box
		// inspection of atomically-shadowed cells is the whole point
		// of the core table tests.
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	res := &Result{SerialFuncs: c.serial}
	for key, info := range c.shadowed {
		if info.local {
			res.ShadowedFields = append(res.ShadowedFields, key)
		}
	}
	sort.Strings(res.ShadowedFields)
	sort.Strings(res.SerialFuncs)
	return res, nil
}

// isAtomicPkg reports whether a package provides atomic access
// primitives whose pointer arguments shadow their targets.
func isAtomicPkg(path string) bool {
	path = framework.NormalizePkgPath(path)
	return path == "sync/atomic" || strings.HasSuffix(path, "internal/atomicx")
}

// collectAtomic records every struct field whose address is passed to
// a sync/atomic or atomicx function.
func (c *checker) collectAtomic(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !isAtomicPkg(fn.Pkg().Path()) {
		return true
	}
	for _, arg := range call.Args {
		u, ok := arg.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		key, fld, elem, ok := c.fieldAt(u.X)
		if !ok {
			continue
		}
		c.atomicArgs[u] = true
		info := c.shadowed[key]
		if info == nil {
			info = &shadowInfo{pos: u.Pos()}
			c.shadowed[key] = info
		}
		info.elem = info.elem || elem
		if !info.local {
			info.local = true
			info.pos = u.Pos()
		}
		if !elem {
			c.fields[key] = fld
		}
	}
	return true
}

// fieldAt resolves an expression like t.count or t.cells[i] to the
// struct field it denotes: the canonical "pkgpath.Type.field" key, the
// field object, and whether an element (rather than the field value
// itself) is addressed.
func (c *checker) fieldAt(e ast.Expr) (key string, fld *types.Var, elem bool, ok bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			elem = true
			e = x.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", nil, false, false
	}
	s := c.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return "", nil, false, false
	}
	fld, _ = s.Obj().(*types.Var)
	if fld == nil || fld.Pkg() == nil {
		return "", nil, false, false
	}
	fld = fld.Origin() // canonical field object for generic instantiations
	rt := s.Recv()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", nil, false, false
	}
	key = framework.NormalizePkgPath(fld.Pkg().Path()) + "." + named.Obj().Name() + "." + fld.Name()
	return key, fld, elem, true
}

// importShadows merges the shadow sets of every package in the
// transitive import closure.
func (c *checker) importShadows() {
	if c.pass.Facts == nil {
		return
	}
	seen := map[*types.Package]bool{}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			visit(imp)
		}
		if p == c.pass.Pkg {
			return
		}
		data, ok := c.pass.Facts.ImportFact("atomicvet", framework.NormalizePkgPath(p.Path()), shadowKey)
		if !ok {
			return
		}
		var fact shadowFact
		if json.Unmarshal(data, &fact) != nil {
			return
		}
		for key, elem := range fact {
			info := c.shadowed[key]
			if info == nil {
				c.shadowed[key] = &shadowInfo{elem: elem}
			} else {
				info.elem = info.elem || elem
			}
		}
	}
	visit(c.pass.Pkg)
}

// exportShadows publishes this package's own shadow set.
func (c *checker) exportShadows() {
	if c.pass.Facts == nil {
		return
	}
	fact := shadowFact{}
	for key, info := range c.shadowed {
		if info.local {
			fact[key] = info.elem
		}
	}
	if len(fact) == 0 {
		return
	}
	data, err := json.Marshal(fact)
	if err != nil {
		return
	}
	c.pass.Facts.ExportFact("atomicvet", framework.NormalizePkgPath(c.pass.Pkg.Path()), shadowKey, data)
}

// checkAlignment verifies that every locally-shadowed scalar 64-bit
// field sits at an 8-byte offset under 32-bit (GOARCH=386) layout
// rules, as sync/atomic requires. Slice and array elements are exempt:
// the allocator aligns their backing stores.
func (c *checker) checkAlignment() {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	for key, info := range c.shadowed {
		if !info.local || info.elem {
			continue
		}
		fld := c.fields[key]
		if fld == nil || !is64BitScalar(fld.Type()) {
			continue
		}
		st, idx := owningStruct(c.pass.Pkg, fld)
		if st == nil {
			continue
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := sizes.Offsetsof(fields)
		if offsets[idx]%8 != 0 {
			c.pass.Reportf(fld.Pos(), "align64",
				"64-bit field %s is atomically accessed but sits at offset %d under 32-bit alignment rules; move it to the front of the struct or pad so its offset is a multiple of 8",
				key, offsets[idx])
		}
	}
}

func is64BitScalar(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint64, types.Int64:
		return true
	}
	return false
}

// owningStruct finds the struct type in pkg's scope that declares fld,
// returning the struct and the field index.
func owningStruct(pkg *types.Package, fld *types.Var) (*types.Struct, int) {
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if named.TypeParams().Len() > 0 {
			// Generic struct: field offsets depend on the type
			// arguments; sizes cannot be computed on the origin.
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return st, i
			}
		}
	}
	return nil, -1
}

// checkFunc walks one function body for plain accesses to shadowed
// fields, honoring a //phasehash:serial annotation on the declaration.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ann, annotated := framework.FuncAnnotation(c.pass.Fset, fd, "serial")
	if annotated && ann.Arg == "" {
		c.pass.Reportf(ann.Pos, "badannotation",
			"//phasehash:serial requires a reason explaining the exclusivity argument (e.g. \"quiescent between phases\")")
	}
	sanctionedAccess := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c.atomicArgs[n] {
			return false // the atomic access site itself
		}
		switch x := n.(type) {
		case *ast.IndexExpr:
			if key, info := c.shadowedElem(x.X); info != nil {
				if annotated {
					sanctionedAccess = true
				} else {
					c.reportMix(x.Pos(), key, info, "indexes")
				}
			}
		case *ast.RangeStmt:
			if key, info := c.shadowedElem(x.X); info != nil {
				if annotated {
					sanctionedAccess = true
				} else {
					c.reportMix(x.X.Pos(), key, info, "ranges over")
				}
			}
		case *ast.CallExpr:
			if name, ok := builtinName(c.pass.TypesInfo, x); ok && (name == "copy" || name == "append") {
				for _, arg := range x.Args {
					if key, info := c.shadowedElem(arg); info != nil {
						if annotated {
							sanctionedAccess = true
						} else {
							c.reportMix(arg.Pos(), key, info, "bulk-copies")
						}
					}
				}
			}
		case *ast.SelectorExpr:
			key, _, _, ok := c.fieldAt(x)
			if !ok {
				return true
			}
			info := c.shadowed[key]
			if info == nil || info.elem {
				return true // elem shadows handled structurally above
			}
			if annotated {
				sanctionedAccess = true
			} else {
				c.reportMix(x.Pos(), key, info, "plainly accesses")
			}
			return false
		}
		return true
	})
	if annotated {
		fnName := fd.Name.Name
		if fd.Recv != nil {
			if tn := recvTypeName(fd.Recv); tn != "" {
				fnName = tn + "." + fnName
			}
		}
		if sanctionedAccess {
			c.serial = append(c.serial, fnName)
		} else {
			c.pass.Reportf(ann.Pos, "staleserial",
				"//phasehash:serial on %s, but the body has no access to an atomic-shadowed field; the annotation has rotted and should be removed", fnName)
		}
	}
}

// shadowedElem reports whether e denotes a field whose *elements* are
// atomic-shadowed (e.g. the cells slice of a table).
func (c *checker) shadowedElem(e ast.Expr) (string, *shadowInfo) {
	key, _, elem, ok := c.fieldAt(e)
	if !ok || elem {
		return "", nil
	}
	info := c.shadowed[key]
	if info == nil || !info.elem {
		return "", nil
	}
	return key, info
}

func (c *checker) reportMix(pos token.Pos, key string, info *shadowInfo, verb string) {
	where := "in another package"
	if info.local && info.pos.IsValid() {
		where = "e.g. at line " + itoa(c.pass.Fset.Position(info.pos).Line)
	}
	c.pass.Reportf(pos, "atomicmix",
		"plain access: %s %s, which is accessed atomically elsewhere (%s); use sync/atomic, or annotate the enclosing function //phasehash:serial <reason> if access is provably exclusive",
		verb, key, where)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
			continue
		case *ast.IndexExpr:
			t = x.X
			continue
		case *ast.IndexListExpr:
			t = x.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(fun.Sel)
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return "", false
	}
	return id.Name, true
}
