// Package atomcorpus exercises atomicvet: a field accessed through
// sync/atomic anywhere in the package must not be plainly loaded or
// stored elsewhere, unless the enclosing function carries a
// //phasehash:serial <reason> annotation arguing exclusive access.
package atomcorpus

import "sync/atomic"

type counterTable struct {
	count uint64 // 64-bit field first: aligned even on 32-bit targets
	cells []uint64
}

// casInsert establishes the shadows: cells elements and count are both
// accessed atomically here.
func (t *counterTable) casInsert(i int, v uint64) bool {
	if atomic.CompareAndSwapUint64(&t.cells[i], 0, v) {
		atomic.AddUint64(&t.count, 1)
		return true
	}
	return false
}

func (t *counterTable) load(i int) uint64 {
	return atomic.LoadUint64(&t.cells[i])
}

func (t *counterTable) plainScan() uint64 {
	var sum uint64
	for _, c := range t.cells { // want `ranges over atomcorpus\.counterTable\.cells`
		sum += c
	}
	sum += t.count // want `plainly accesses atomcorpus\.counterTable\.count`
	return sum
}

func (t *counterTable) plainIndex(i int) uint64 {
	return t.cells[i] // want `indexes atomcorpus\.counterTable\.cells`
}

func (t *counterTable) bulkCopy(dst []uint64) {
	copy(dst, t.cells) // want `bulk-copies atomcorpus\.counterTable\.cells`
}

// serialScan is the sanctioned escape hatch: the reason documents the
// exclusivity argument and suppresses the mix diagnostics.
//
//phasehash:serial quiescent between phases: no CAS can be in flight when the scan runs
func (t *counterTable) serialScan() uint64 {
	var sum uint64
	for _, c := range t.cells {
		sum += c
	}
	return sum + t.count
}

// plainTable's field is never touched atomically; plain access is fine
// everywhere and needs no annotation.
type plainTable struct {
	hot uint64
}

func (p *plainTable) bump() { p.hot++ }

// staleSerial's annotation has rotted: nothing in the body touches an
// atomic-shadowed field anymore.
//
//phasehash:serial legacy reason that no longer applies // want `annotation has rotted`
func (p *plainTable) staleSerial() { p.hot++ }

// reasonless shadows a real access (so the annotation is not stale) but
// gives no exclusivity argument.
//
//phasehash:serial // want `requires a reason`
func (t *counterTable) reasonless() uint64 { return t.count }

// misaligned puts an atomically-accessed 64-bit field at offset 4 under
// 32-bit alignment rules: sync/atomic would fault on 386.
type misaligned struct {
	flag bool
	n    uint64 // want `sits at offset 4 under 32-bit alignment rules`
}

func (m *misaligned) bump() { atomic.AddUint64(&m.n, 1) }
