package atomicvet_test

import (
	"path/filepath"
	"testing"

	"phasehash/internal/analysis/atest"
	"phasehash/internal/analysis/atomicvet"
	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
)

// TestCorpus checks the analyzer against the golden fixture: mixed
// plain/atomic access, the //phasehash:serial escape hatch, a rotted
// annotation, a reason-less annotation, and 32-bit alignment of 64-bit
// atomic fields.
func TestCorpus(t *testing.T) {
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", "atomcorpus")
	atest.RunCorpus(t, loader, atomicvet.AtomicVet, "atomcorpus", dir,
		[]string{"atomicmix", "staleserial", "badannotation", "align64"},
		framework.NewMemFacts())
}

// TestAnalyzerMetadata pins the analyzer's name, which CI and the
// Makefile reference.
func TestAnalyzerMetadata(t *testing.T) {
	if atomicvet.AtomicVet.Name != "atomicvet" {
		t.Fatalf("analyzer name = %q", atomicvet.AtomicVet.Name)
	}
}
