package atomicvet_test

import (
	"path/filepath"
	"testing"

	"phasehash/internal/analysis/atomicvet"
	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
)

// TestRepoIsAtomicClean mirrors phasevet's self-audit: run atomicvet
// over every package of the module in dependency order with a shared
// fact store and require zero diagnostics, while checking the analysis
// actually engaged — the core tables shadow fields through atomic
// access, and the serial probe kernels carry exercised
// //phasehash:serial annotations.
func TestRepoIsAtomicClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDepsOrdered(loader.ModuleDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	facts := framework.NewMemFacts()
	shadowed, serial := 0, 0
	for _, pkg := range pkgs {
		pass := &framework.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			Report: func(d framework.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				rel, err := filepath.Rel(loader.ModuleDir, pos.Filename)
				if err != nil {
					rel = pos.Filename
				}
				t.Errorf("%s:%d: [%s] %s", rel, pos.Line, d.Category, d.Message)
			},
		}
		res, err := atomicvet.AtomicVet.Run(pass)
		if err != nil {
			t.Fatal(err)
		}
		if r, ok := res.(*atomicvet.Result); ok {
			shadowed += len(r.ShadowedFields)
			serial += len(r.SerialFuncs)
		}
	}
	t.Logf("shadowed fields: %d, exercised serial annotations: %d", shadowed, serial)
	if shadowed < 5 {
		t.Errorf("only %d atomic-shadowed fields across the module; the shadow collection may have regressed", shadowed)
	}
	if serial < 8 {
		t.Errorf("only %d exercised //phasehash:serial annotations; the sanction path may have regressed", serial)
	}
}
