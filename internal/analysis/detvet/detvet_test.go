package detvet_test

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"phasehash/internal/analysis/atest"
	"phasehash/internal/analysis/detvet"
	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
)

// TestCorpus checks the analyzer against the golden fixture with the
// exported Kernel* functions as deterministic roots: map-order leaks,
// wall-clock reads, randomness, sync.Map iteration, the
// //phasehash:nondet sanction at function and line level, and rotted
// or reason-less annotations.
func TestCorpus(t *testing.T) {
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	roots := detvet.RootConfig{IsRoot: func(pkgPath string, fn *types.Func) bool {
		return pkgPath == "detcorpus" && strings.HasPrefix(fn.Name(), "Kernel")
	}}
	dir := filepath.Join("testdata", "src", "detcorpus")
	atest.RunCorpus(t, loader, detvet.NewAnalyzer(roots), "detcorpus", dir,
		[]string{"maporder", "walltime", "randomness", "syncmap", "stalenondet", "badannotation"},
		framework.NewMemFacts())
}

// TestAnalyzerMetadata pins the analyzer's name, which CI and the
// Makefile reference.
func TestAnalyzerMetadata(t *testing.T) {
	if detvet.DetVet.Name != "detvet" {
		t.Fatalf("analyzer name = %q", detvet.DetVet.Name)
	}
}
