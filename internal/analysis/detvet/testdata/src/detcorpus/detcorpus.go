// Package detcorpus exercises detvet: code reachable from the
// deterministic roots (the exported Kernel* functions in the test's
// RootConfig) must not leak map iteration order, read the wall clock,
// draw randomness, or iterate a sync.Map — unless a
// //phasehash:nondet <reason> annotation sanctions it.
package detcorpus

import (
	"math/rand"
	"sync"
	"time"
)

func KernelMapOrder(m map[uint64]uint64) []uint64 {
	var out []uint64
	for k, v := range m { // want `iteration order of map\[uint64\]uint64 leaks into the result`
		out = append(out, k^v)
	}
	return out
}

// Writes keyed by the range variable land in the same place in any
// iteration order: no leak.
func KernelMapOrderOK(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func KernelTime() int64 {
	return time.Now().UnixNano() // want `time\.Now on a deterministic path`
}

func KernelSeeded(n int) int {
	return rand.Intn(n) // want `math/rand\.Intn on a deterministic path`
}

func KernelSyncMap(m *sync.Map) int {
	n := 0
	m.Range(func(_, _ any) bool { // want `sync\.Map\.Range iterates in unspecified order`
		n++
		return true
	})
	return n
}

// helperTime hides the clock one call deep; the kernel is reported at
// its call site with the via chain in the message.
func helperTime() int64 {
	return time.Now().UnixNano()
}

func KernelViaHelper() int64 {
	return helperTime() // want `helperTime → time\.Now on a deterministic path`
}

// helperUnreached is nondeterministic but not reachable from any root:
// no diagnostic.
func helperUnreached() int {
	return rand.Int()
}

// KernelSanctioned documents its nondeterminism: the annotation
// suppresses the reports.
//
//phasehash:nondet timing telemetry: the result is a latency sample, never a table payload
func KernelSanctioned() int64 {
	return time.Now().UnixNano()
}

// KernelJitter sanctions a single line instead of the whole function.
func KernelJitter() uint64 {
	return rand.Uint64() //phasehash:nondet seeded jitter: deliberately random backoff, never lands in a table
}

// KernelStale's annotation has rotted: nothing nondeterministic is
// reachable from its body anymore.
//
//phasehash:nondet stale reason from a deleted clock read // want `annotation has rotted`
func KernelStale(x uint64) uint64 {
	return x * 2654435761
}

// KernelReasonless sanctions real nondeterminism but gives no reason.
//
//phasehash:nondet // want `requires a reason`
func KernelReasonless(n int) int {
	return rand.Intn(n)
}
