// Package detvet lints for nondeterminism in code that must be
// deterministic.
//
// The paper's point is that phase-concurrent tables make parallel
// algorithms *deterministic*: same input, same output, regardless of
// schedule. That guarantee is only as strong as the code around the
// tables — a single `for k := range m` whose iteration order leaks
// into a result, a time.Now() folded into a key, or a math/rand call
// in a kernel silently voids it. detvet walks every function reachable
// from the deterministic roots (the core bulk kernels, the detres
// determinism harness, and the tables kind registry) and reports:
//
//	maporder:    map iteration order leaking into results (append,
//	             channel send, or order-dependent indexed writes
//	             inside a map range; writes keyed by the range
//	             variables are fine)
//	walltime:    time.Now / time.Since on a deterministic path
//	randomness:  math/rand (v1 or v2) on a deterministic path
//	syncmap:     sync.Map.Range, whose order is unspecified
//
// Uses are propagated through calls (to a fixed point in-package, via
// object facts across packages), so a helper's time.Now is reported at
// the root's call site with the chain named. A deliberate exception is
// annotated //phasehash:nondet <reason> — on the offending line or on
// the function declaration; the annotation is itself checked (stale or
// reason-less annotations are diagnostics).
package detvet

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"phasehash/internal/analysis/framework"
)

// RootConfig decides which functions are deterministic roots: only
// nondeterminism reachable from a root is reported (helpers shared
// with non-deterministic tooling are fine until a root pulls them in).
type RootConfig struct {
	IsRoot func(pkgPath string, fn *types.Func) bool
}

// DefaultRoots covers the determinism surface of this repo: every
// exported function and method of internal/core (the bulk kernels and
// tables), and all of internal/detres and internal/tables (the
// determinism harness and the kind registry it drives).
var DefaultRoots = RootConfig{IsRoot: func(pkgPath string, fn *types.Func) bool {
	pkgPath = framework.NormalizePkgPath(pkgPath)
	switch {
	case pkgPath == "phasehash/internal/detres" || strings.HasPrefix(pkgPath, "phasehash/internal/detres/"):
		return true
	case pkgPath == "phasehash/internal/tables" || strings.HasPrefix(pkgPath, "phasehash/internal/tables/"):
		return true
	case pkgPath == "phasehash/internal/core":
		return fn.Exported()
	}
	return false
}}

// DetVet is the analyzer instance the multichecker runs.
var DetVet = NewAnalyzer(DefaultRoots)

// NewAnalyzer returns a detvet instance with a custom root predicate
// (the corpus tests use roots named Kernel*).
func NewAnalyzer(roots RootConfig) *framework.Analyzer {
	return &framework.Analyzer{
		Name: "detvet",
		Doc: `report nondeterminism reachable from deterministic roots

Flags map-range order leaking into results, time.Now/math/rand and
sync.Map.Range in code reachable from the deterministic kernels, with
//phasehash:nondet <reason> as the audited escape hatch for deliberate
exceptions.`,
		Run: func(pass *framework.Pass) (interface{}, error) {
			return run(pass, roots)
		},
	}
}

// Result is returned by Run for the self-audit test's vacuousness
// check.
type Result struct {
	// Roots are the deterministic root functions found in the package.
	Roots []string
	// NondetFuncs counts functions with at least one (direct or
	// derived, sanctioned or not) nondeterministic use.
	NondetFuncs int
}

// nondetUse is one nondeterminism source visible in a function.
type nondetUse struct {
	Kind string `json:"kind"` // maporder | walltime | randomness | syncmap
	Desc string `json:"desc"`
	// pos is where the use enters this function: the source line for a
	// direct use, the call site for one inherited from a callee.
	pos token.Pos
}

// funcInfo is the per-function analysis state.
type funcInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	// uses collects direct + derived nondet uses.
	uses []nondetUse
	// calls are the resolvable call sites, for propagation.
	calls []callSite
	// sanctioned: the declaration carries //phasehash:nondet <reason>;
	// uses are neither reported nor propagated.
	sanctioned bool
	ann        framework.Annotation
	hasAnn     bool
	// inTest: declared in a _test.go file — never a root, and its
	// annotations are not audited for rot.
	inTest bool
}

type callSite struct {
	fn  *types.Func
	pos token.Pos
}

const maxRounds = 16

func run(pass *framework.Pass, roots RootConfig) (interface{}, error) {
	d := &detvet{pass: pass, byFn: map[*types.Func]*funcInfo{}, imported: map[*types.Func][]nondetUse{}}
	for _, f := range pass.Files {
		// Test files never become deterministic roots: tests and
		// benchmarks legitimately read the clock (testing.B timers,
		// t.Fatalf plumbing) and their helpers exist to poke at
		// internals. Their facts still propagate via the funcs below.
		inTest := framework.IsTestFile(pass.Fset, f)
		lineSanctions := map[int]bool{}
		for _, a := range framework.ScanAnnotations(pass.Fset, f) {
			if a.Verb == "nondet" {
				lineSanctions[a.Line] = true
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{fn: fn, decl: fd, inTest: inTest}
			fi.ann, fi.hasAnn = framework.FuncAnnotation(pass.Fset, fd, "nondet")
			if fi.hasAnn {
				fi.sanctioned = true
				if fi.ann.Arg == "" && !inTest {
					pass.Reportf(fi.ann.Pos, "badannotation",
						"//phasehash:nondet requires a reason explaining why the nondeterminism is acceptable")
				}
			}
			d.scanBody(fi, lineSanctions)
			d.funcs = append(d.funcs, fi)
			d.byFn[fn] = fi
		}
	}
	d.propagate()
	d.export()

	res := &Result{}
	reported := map[string]bool{}
	for _, fi := range d.funcs {
		if fi.hasAnn && len(fi.uses) == 0 && !fi.inTest {
			pass.Reportf(fi.ann.Pos, "stalenondet",
				"//phasehash:nondet on %s, but nothing nondeterministic is reachable from its body; the annotation has rotted and should be removed", fi.fn.Name())
		}
		if len(fi.uses) > 0 {
			res.NondetFuncs++
		}
		if fi.inTest || roots.IsRoot == nil || !roots.IsRoot(pass.Pkg.Path(), fi.fn) {
			continue
		}
		res.Roots = append(res.Roots, fi.fn.Name())
		if fi.sanctioned {
			continue
		}
		for _, u := range fi.uses {
			k := fmt.Sprintf("%d|%s", u.pos, u.Kind)
			if reported[k] {
				continue
			}
			reported[k] = true
			pass.Reportf(u.pos, u.Kind,
				"nondeterminism in deterministic path %s: %s; make the result order-independent, or annotate //phasehash:nondet <reason> if deliberate",
				fi.fn.Name(), u.Desc)
		}
	}
	sort.Strings(res.Roots)
	return res, nil
}

type detvet struct {
	pass     *framework.Pass
	funcs    []*funcInfo
	byFn     map[*types.Func]*funcInfo
	imported map[*types.Func][]nondetUse
}

// scanBody records a function's direct nondet uses and its call sites.
// Closures are scanned as part of the enclosing declaration: a kernel
// is as nondeterministic as the closures it runs.
func (d *detvet) scanBody(fi *funcInfo, lineSanctions map[int]bool) {
	info := d.pass.TypesInfo
	sanctionedLine := func(pos token.Pos) bool {
		return lineSanctions[d.pass.Fset.Position(pos).Line]
	}
	add := func(kind, desc string, pos token.Pos) {
		if sanctionedLine(pos) {
			return
		}
		fi.uses = append(fi.uses, nondetUse{Kind: kind, Desc: desc, pos: pos})
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, x)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := framework.NormalizePkgPath(fn.Pkg().Path())
			switch {
			case path == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
				add("walltime", "time."+fn.Name()+" on a deterministic path", x.Pos())
			case path == "math/rand" || path == "math/rand/v2":
				add("randomness", "math/rand."+fn.Name()+" on a deterministic path", x.Pos())
			case isSyncMapRange(fn):
				add("syncmap", "sync.Map.Range iterates in unspecified order", x.Pos())
			default:
				fi.calls = append(fi.calls, callSite{fn: fn.Origin(), pos: x.Pos()})
			}
		case *ast.RangeStmt:
			t := info.TypeOf(x.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap && rangeLeaksOrder(info, x) {
				add("maporder", "iteration order of "+types.TypeString(t, types.RelativeTo(d.pass.Pkg))+" leaks into the result", x.Pos())
			}
		}
		return true
	})
}

// rangeLeaksOrder reports whether a map range's body is sensitive to
// iteration order: appends, channel sends, or indexed writes whose
// index is not a range variable. Writes keyed by the range variables
// (out[k] = v) land in the same place in any order and are fine.
func rangeLeaksOrder(info *types.Info, rs *ast.RangeStmt) bool {
	rangeVar := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				rangeVar[obj] = true
			}
		}
	}
	indexedByRangeVar := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && rangeVar[info.ObjectOf(id)]
	}
	leak := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					leak = true
				}
			}
		case *ast.SendStmt:
			leak = true
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				ie, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if !indexedByRangeVar(ie.Index) {
					leak = true
				}
			}
		}
		return !leak
	})
	return leak
}

// propagate folds callee uses into callers to a fixed point: a direct
// time.Now in helper() becomes a walltime use of every caller, at the
// call site, with the chain named.
func (d *detvet) propagate() {
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fi := range d.funcs {
			have := map[string]bool{}
			for _, u := range fi.uses {
				have[fmt.Sprintf("%d|%s|%s", u.pos, u.Kind, u.Desc)] = true
			}
			for _, cs := range fi.calls {
				for _, u := range d.usesOf(cs.fn) {
					desc := cs.fn.Name() + " → "
					if strings.Contains(u.Desc, "→") {
						desc += "…"
					} else {
						desc += u.Desc
					}
					k := fmt.Sprintf("%d|%s|%s", cs.pos, u.Kind, desc)
					if have[k] {
						continue
					}
					have[k] = true
					fi.uses = append(fi.uses, nondetUse{Kind: u.Kind, Desc: desc, pos: cs.pos})
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// usesOf returns the propagatable uses of a callee: in-package state,
// or an imported fact for other packages. Sanctioned functions
// propagate nothing — the annotation absorbs the nondeterminism.
func (d *detvet) usesOf(fn *types.Func) []nondetUse {
	if fi, ok := d.byFn[fn]; ok {
		if fi.sanctioned {
			return nil
		}
		return fi.uses
	}
	if uses, ok := d.imported[fn]; ok {
		return uses
	}
	var uses []nondetUse
	if d.pass.Facts != nil && fn.Pkg() != nil && fn.Pkg() != d.pass.Pkg {
		if key, ok := framework.ObjKey(fn); ok {
			if data, ok := d.pass.Facts.ImportFact("detvet", framework.NormalizePkgPath(fn.Pkg().Path()), key); ok {
				var decoded []nondetUse
				if json.Unmarshal(data, &decoded) == nil {
					uses = decoded
				}
			}
		}
	}
	d.imported[fn] = uses
	return uses
}

// export publishes each unsanctioned function's uses as object facts.
func (d *detvet) export() {
	if d.pass.Facts == nil {
		return
	}
	pkgPath := framework.NormalizePkgPath(d.pass.Pkg.Path())
	for _, fi := range d.funcs {
		if fi.sanctioned || len(fi.uses) == 0 {
			continue
		}
		key, ok := framework.ObjKey(fi.fn)
		if !ok {
			continue
		}
		data, err := json.Marshal(fi.uses)
		if err != nil {
			continue
		}
		d.pass.Facts.ExportFact("detvet", pkgPath, key, data)
	}
}

func isSyncMapRange(fn *types.Func) bool {
	if fn.Name() != "Range" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Map"
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(fun.Sel)
	case *ast.IndexExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = info.ObjectOf(id)
		} else if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			obj = info.ObjectOf(sel.Sel)
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}
