package detvet_test

import (
	"path/filepath"
	"testing"

	"phasehash/internal/analysis/detvet"
	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
)

// TestRepoIsDeterministic mirrors phasevet's self-audit: run detvet
// with its default roots (bulk kernels, detres runners, table kinds)
// over every package of the module in dependency order and require
// zero diagnostics, while checking the analysis actually found roots —
// a run that guarded nothing would be vacuously green.
func TestRepoIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDepsOrdered(loader.ModuleDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	facts := framework.NewMemFacts()
	rootCount := 0
	for _, pkg := range pkgs {
		pass := &framework.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			Report: func(d framework.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				rel, err := filepath.Rel(loader.ModuleDir, pos.Filename)
				if err != nil {
					rel = pos.Filename
				}
				t.Errorf("%s:%d: [%s] %s", rel, pos.Line, d.Category, d.Message)
			},
		}
		res, err := detvet.DetVet.Run(pass)
		if err != nil {
			t.Fatal(err)
		}
		if r, ok := res.(*detvet.Result); ok {
			rootCount += len(r.Roots)
		}
	}
	t.Logf("deterministic roots guarded: %d", rootCount)
	if rootCount < 10 {
		t.Errorf("only %d deterministic roots across the module; the root config may have regressed", rootCount)
	}
}
