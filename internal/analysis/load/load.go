// Package load type-checks packages of this module from source using
// only the standard library, for driving analyzers without a
// golang.org/x/tools dependency.
//
// Module-local import paths are resolved against the module root;
// standard-library imports are resolved by the go/importer source
// importer. `go list -json` supplies the package list for command-line
// patterns, so build constraints and file selection match the go tool.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package with its syntax trees.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks module packages from source, memoizing results.
type Loader struct {
	ModulePath string
	ModuleDir  string
	Fset       *token.FileSet

	std   types.Importer
	pkgs  map[string]*Package
	fail  map[string]error
	extra map[string]string // import path -> source dir overrides
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modpath,
		ModuleDir:  root,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		fail:       map[string]error{},
		extra:      map[string]string{},
	}, nil
}

// Map registers dir as the source directory for an import path outside
// the module tree, so corpus fixture packages can import each other.
func (l *Loader) Map(path, dir string) { l.extra[path] = dir }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modpath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", errors.New("load: no go.mod found")
		}
		dir = parent
	}
}

// Import implements types.Importer: module-local paths load from
// source under the module root; everything else is standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.extra[path]; ok {
		pkg, err := l.LoadDir(path, dir, nil)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), nil)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. files, when non-nil, names the exact .go files to use
// (relative to dir); otherwise every non-test .go file in dir is used.
func (l *Loader) LoadDir(path, dir string, files []string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.fail[path]; ok {
		return nil, err
	}
	pkg, err := l.loadDir(path, dir, files)
	if err != nil {
		l.fail[path] = err
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) loadDir(path, dir string, files []string) (*Package, error) {
	if files == nil {
		// Honor build constraints the same way the go tool does.
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		files = bp.GoFiles
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s", path, dir)
	}
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: syntax, Types: tpkg, Info: info}, nil
}

// ListedPackage is the subset of `go list -json` output we consume.
type ListedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Incomplete bool
}

// List resolves command-line package patterns with `go list -json`,
// run in dir.
func List(dir string, patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []ListedPackage
	dec := json.NewDecoder(&out)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPatterns loads every package matching the go-tool patterns.
func (l *Loader) LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	listed, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := l.LoadDir(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ListDeps lists the packages matching the patterns plus their
// transitive dependencies in dependency order (each package after all
// of its imports), as `go list -deps` guarantees.
func ListDeps(dir string, patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -deps %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []ListedPackage
	dec := json.NewDecoder(&out)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -deps: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDepsOrdered loads every module-local package in the transitive
// dependency closure of the patterns, in dependency order — the order
// fact-consuming analyzers must process packages in, so each package
// sees the facts of everything it imports.
func (l *Loader) LoadDepsOrdered(dir string, patterns ...string) ([]*Package, error) {
	listed, err := ListDeps(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.ImportPath != l.ModulePath && !strings.HasPrefix(lp.ImportPath, l.ModulePath+"/") {
			continue
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := l.LoadDir(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
