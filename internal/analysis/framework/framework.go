// Package framework is the minimal go/analysis-shaped core shared by
// the phasehash analyzer suite (phasevet, atomicvet, detvet).
//
// The module deliberately has no dependencies, so this is a structural
// subset of golang.org/x/tools/go/analysis: an Analyzer with a Run
// function over a Pass carrying one package's syntax and types. On top
// of that it adds the two pieces the suite shares:
//
//   - FactStore: serialized per-object facts that flow along import
//     edges, so an analyzer running on package B can consume what it
//     learned about package A. The standalone driver keeps facts in
//     memory and analyzes packages in dependency order; the go vet
//     driver (internal/analysis/unitvet) persists them in the .vetx
//     files the go command threads between compilation units.
//
//   - ScanAnnotations: the //phasehash:<verb> comment grammar
//     (serial, nondet, barrier, ignore) used by all three analyzers.
package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass carries one package's syntax and type information to an
// Analyzer's Run function, mirroring go/analysis.Pass.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report is called for each diagnostic found.
	Report func(Diagnostic)
	// Facts carries cross-package analyzer facts; may be nil, in which
	// case analyzers fall back to intra-package information only.
	Facts FactStore
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic in the given category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}

// FactStore passes serialized per-object facts between packages. Keys
// are (analyzer name, package path, object key); values are opaque
// bytes owned by the analyzer (the suite uses JSON). Facts flow along
// import edges only: a package sees facts of packages analyzed before
// it, which the drivers guarantee by processing in dependency order.
type FactStore interface {
	// ImportFact returns the fact an analyzer exported for an object of
	// an already-analyzed package, or ok=false.
	ImportFact(analyzer, pkgPath, objKey string) (data []byte, ok bool)
	// ExportFact records a fact for an object of the current package.
	ExportFact(analyzer, pkgPath, objKey string, data []byte)
	// PackageFacts enumerates every fact an analyzer exported for one
	// package (nil when none). Callers must not mutate the result.
	PackageFacts(analyzer, pkgPath string) map[string][]byte
}

// MemFacts is the in-memory FactStore used by the standalone driver
// and the tests, with (de)serialization hooks for the unitvet driver's
// .vetx files.
type MemFacts struct {
	// pkg path -> analyzer -> object key -> fact
	pkgs map[string]map[string]map[string][]byte
}

// NewMemFacts returns an empty fact store.
func NewMemFacts() *MemFacts {
	return &MemFacts{pkgs: map[string]map[string]map[string][]byte{}}
}

// ImportFact implements FactStore.
func (m *MemFacts) ImportFact(analyzer, pkgPath, objKey string) ([]byte, bool) {
	d, ok := m.pkgs[pkgPath][analyzer][objKey]
	return d, ok
}

// ExportFact implements FactStore.
func (m *MemFacts) ExportFact(analyzer, pkgPath, objKey string, data []byte) {
	byAnalyzer := m.pkgs[pkgPath]
	if byAnalyzer == nil {
		byAnalyzer = map[string]map[string][]byte{}
		m.pkgs[pkgPath] = byAnalyzer
	}
	byObj := byAnalyzer[analyzer]
	if byObj == nil {
		byObj = map[string][]byte{}
		byAnalyzer[analyzer] = byObj
	}
	byObj[objKey] = data
}

// PackageFacts implements FactStore.
func (m *MemFacts) PackageFacts(analyzer, pkgPath string) map[string][]byte {
	return m.pkgs[pkgPath][analyzer]
}

// EncodePackage serializes every fact recorded for one package, for
// storage in that package's .vetx file.
func (m *MemFacts) EncodePackage(pkgPath string) ([]byte, error) {
	byAnalyzer := m.pkgs[pkgPath]
	out := map[string]map[string]json.RawMessage{}
	for analyzer, byObj := range byAnalyzer {
		enc := map[string]json.RawMessage{}
		for obj, data := range byObj {
			enc[obj] = json.RawMessage(data)
		}
		out[analyzer] = enc
	}
	return json.Marshal(out)
}

// DecodePackage merges facts previously serialized with EncodePackage
// into the store under pkgPath. Empty input is not an error: fact
// files of packages with nothing to say are empty.
func (m *MemFacts) DecodePackage(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in map[string]map[string]json.RawMessage
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("framework: decoding facts for %s: %w", pkgPath, err)
	}
	for analyzer, byObj := range in {
		for obj, raw := range byObj {
			m.ExportFact(analyzer, pkgPath, obj, []byte(raw))
		}
	}
	return nil
}

// ObjKey returns the stable cross-package key for a package-level
// function or method: "Func" for a package function, "Type.Method"
// for a method (by the receiver's base type name). Closures and
// instantiated generics have no key; pass their Origin.
func ObjKey(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		named, ok := rt.(*types.Named)
		if !ok {
			return "", false
		}
		return named.Obj().Name() + "." + fn.Name(), true
	}
	if fn.Pkg() == nil {
		return "", false
	}
	if fn.Pkg().Scope().Lookup(fn.Name()) != fn {
		// Not a package-level function (init funcs, instantiation
		// artifacts): no stable cross-package identity.
		return "", false
	}
	return fn.Name(), true
}

// NormalizePkgPath strips the test-variant suffix go vet uses for test
// compilation units ("phasehash [phasehash.test]" -> "phasehash").
func NormalizePkgPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}

// Annotation is one //phasehash:<verb> comment. The grammar:
//
//	//phasehash:barrier           (phasevet: happens-before edge here)
//	//phasehash:ignore            (phasevet: suppress this line)
//	//phasehash:serial <reason>   (atomicvet: exclusive-access escape hatch)
//	//phasehash:nondet <reason>   (detvet: sanctioned nondeterminism)
//
// The verb is the token up to the first space; everything after it is
// the argument (the required reason string for serial/nondet).
type Annotation struct {
	Verb string
	Arg  string
	Pos  token.Pos
	End  token.Pos
	Line int
}

// annotationPrefix is the comment marker shared by the suite.
const annotationPrefix = "//phasehash:"

// ScanAnnotations collects every //phasehash: annotation of a file.
func ScanAnnotations(fset *token.FileSet, f *ast.File) []Annotation {
	var anns []Annotation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, annotationPrefix)
			if !ok {
				continue
			}
			verb, arg, _ := strings.Cut(rest, " ")
			anns = append(anns, Annotation{
				Verb: verb,
				Arg:  trimWant(arg),
				Pos:  c.Pos(),
				End:  c.End(),
				Line: fset.Position(c.Pos()).Line,
			})
		}
	}
	return anns
}

// IsTestFile reports whether f was parsed from a _test.go file.
// Analyzers whose properties only hold for production code (serial
// test execution makes plain access and wall-clock reads benign) use
// this to exempt test files from reporting while still collecting
// facts from them.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// trimWant strips a trailing `// want ...` marker from an annotation
// argument so analyzer test fixtures can place expected-diagnostic
// annotations on the same line as the annotation under test.
func trimWant(arg string) string {
	if i := strings.Index(arg, "// want"); i >= 0 {
		arg = arg[:i]
	}
	return strings.TrimSpace(arg)
}

// FuncAnnotation returns the first annotation with the given verb in a
// function declaration's doc comment, or ok=false.
func FuncAnnotation(fset *token.FileSet, decl *ast.FuncDecl, verb string) (Annotation, bool) {
	if decl.Doc == nil {
		return Annotation{}, false
	}
	for _, c := range decl.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, annotationPrefix)
		if !ok {
			continue
		}
		v, arg, _ := strings.Cut(rest, " ")
		if v == verb {
			return Annotation{
				Verb: v,
				Arg:  trimWant(arg),
				Pos:  c.Pos(),
				Line: fset.Position(c.Pos()).Line,
			}, true
		}
	}
	return Annotation{}, false
}
