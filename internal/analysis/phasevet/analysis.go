// Package phasevet statically detects phase-discipline violations in
// code that uses the phasehash tables.
//
// The phase-concurrent contract (Shun & Blelloch, SPAA 2014) is that
// operations from different phases — {insert}, {delete}, {find,
// elements} — on the same table must never overlap in time. The
// runtime Checked facade catches overlap probabilistically when the
// schedule happens to interleave; this analyzer finds the bug class at
// compile time by tracking, within each function body, which phases
// may still be in flight on each table when the next operation starts.
//
// The analyzer is modelled on golang.org/x/tools/go/analysis but is
// self-contained (this module has no dependencies): the Analyzer,
// Pass and Diagnostic types below are a minimal structural subset of
// that API, so the checker could be ported to a real go/analysis
// driver by swapping the types.
package phasevet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass carries one package's syntax and type information to an
// Analyzer's Run function, mirroring go/analysis.Pass.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report is called for each diagnostic found.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic in the given category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}
