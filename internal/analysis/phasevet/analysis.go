// Package phasevet statically detects phase-discipline violations in
// code that uses the phasehash tables.
//
// The phase-concurrent contract (Shun & Blelloch, SPAA 2014) is that
// operations from different phases — {insert}, {delete}, {find,
// elements} — on the same table must never overlap in time. The
// runtime Checked facade catches overlap probabilistically when the
// schedule happens to interleave; this analyzer finds the bug class at
// compile time by tracking, within each function body, which phases
// may still be in flight on each table when the next operation starts.
//
// Since phasevet 2.0 the analysis is interprocedural: a function whose
// body (transitively) performs insert-phase table operations *is* an
// insert-phase operation at its call sites. Summaries ("effects") are
// inferred per function — which phases it performs on which parameter,
// receiver or package-level table, whether those operations are still
// in flight when it returns, and whether it contains an internal
// happens-before barrier — propagated to a fixed point within each
// package and exported across packages as object facts through
// framework.FactStore. Functions that bracket their operations with
// the runtime guards (core.PhaseGuard, rooms.Rooms) are recognized as
// runtime-checked and excluded, exactly like the Checked* wrappers'
// absence from the fact table.
//
// The analyzer is modelled on golang.org/x/tools/go/analysis but is
// self-contained (this module has no dependencies): the Analyzer,
// Pass and Diagnostic types — shared with atomicvet and detvet via
// internal/analysis/framework — are a minimal structural subset of
// that API, so the checkers could be ported to a real go/analysis
// driver by swapping the types.
package phasevet

import (
	"phasehash/internal/analysis/framework"
)

// Analyzer, Pass and Diagnostic are the framework types, re-exported
// so existing phasevet call sites keep reading naturally.
type (
	Analyzer   = framework.Analyzer
	Pass       = framework.Pass
	Diagnostic = framework.Diagnostic
)
