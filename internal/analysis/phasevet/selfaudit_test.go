package phasevet_test

import (
	"path/filepath"
	"testing"

	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
	"phasehash/internal/analysis/phasevet"
)

// TestRepoIsPhaseClean runs the analyzer over every package of this
// module in dependency order with a shared fact store — the same setup
// CI applies with `go vet -vettool` — and requires zero diagnostics,
// while also checking the analyzer actually classified a meaningful
// number of table operations, so a silent fact-table regression cannot
// make the gate vacuously green.
func TestRepoIsPhaseClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDepsOrdered(loader.ModuleDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	facts := framework.NewMemFacts()
	totalOps := 0
	for _, pkg := range pkgs {
		pass := &phasevet.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			Report: func(d phasevet.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				rel, err := filepath.Rel(loader.ModuleDir, pos.Filename)
				if err != nil {
					rel = pos.Filename
				}
				t.Errorf("%s:%d: [%s] %s", rel, pos.Line, d.Category, d.Message)
			},
		}
		if _, err := phasevet.PhaseVet.Run(pass); err != nil {
			t.Fatal(err)
		}
		totalOps += phasevet.CountTableOps(pass)
	}
	// The examples, cmd drivers and apps are heavy table users; far
	// more sites than this exist today.
	t.Logf("classified %d table operation sites", totalOps)
	if totalOps < 50 {
		t.Errorf("only %d classified table operations across the module; fact table may have regressed", totalOps)
	}
}
