package phasevet_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"phasehash/internal/analysis/atest"
	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
	"phasehash/internal/analysis/phasevet"
)

// TestEpochServerFacts runs phasevet over the real epoch scheduler
// (internal/epoch) and pins two properties of the satellite contract:
//
//  1. the scheduler is quiet — mutex-buffered admission plus a single
//     flusher running one bulk kernel per phase in sequence is exactly
//     the idiom the analyzer must not flag; and
//  2. the flush helpers export interprocedural funcEffect facts naming
//     the server's table, so a dependent package that drives an epoch
//     concurrently with its own table access is diagnosable through
//     the helper chain.
func TestEpochServerFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages from source")
	}
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	const pkgPath = "phasehash/internal/epoch"
	pkg, err := loader.LoadDir(pkgPath, filepath.Join(loader.ModuleDir, "internal", "epoch"), nil)
	if err != nil {
		t.Fatal(err)
	}
	facts := framework.NewMemFacts()
	for _, d := range atest.Analyze(t, phasevet.PhaseVet, pkg, facts) {
		pos := pkg.Fset.Position(d.Pos)
		t.Errorf("phasevet flagged the epoch scheduler: %s:%d [%s] %s",
			filepath.Base(pos.Filename), pos.Line, d.Category, d.Message)
	}

	exported := facts.PackageFacts("phasevet", pkgPath)
	if len(exported) == 0 {
		t.Fatal("phasevet exported no facts for the epoch package")
	}
	type effectOp struct {
		Slot   int    `json:"slot"`
		Path   string `json:"path"`
		Method string `json:"method"`
	}
	type funcEffect struct {
		Ops []effectOp `json:"ops"`
	}
	for _, key := range []string{"Server.flush", "Server.insertPhase", "Server.deletePhase", "Server.readPhase"} {
		data, ok := exported[key]
		if !ok {
			t.Errorf("no funcEffect fact exported for %s (flush helpers must be visible to dependents)", key)
			continue
		}
		var eff funcEffect
		if err := json.Unmarshal(data, &eff); err != nil {
			t.Errorf("fact for %s does not decode: %v", key, err)
			continue
		}
		onTable := false
		for _, op := range eff.Ops {
			if op.Slot == 0 && op.Path == ".table" {
				onTable = true
				break
			}
		}
		if !onTable {
			t.Errorf("fact for %s has no op on the receiver's table field: %s", key, data)
		}
	}
}
