package phasevet_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"phasehash/internal/analysis/load"
	"phasehash/internal/analysis/phasevet"
)

// TestCorpus runs the analyzer over the testdata/src corpus and checks
// the reported diagnostics against the `// want "regexp"` annotations,
// in the style of golang.org/x/tools/go/analysis/analysistest. Every
// diagnostic must be expected, every expectation must fire, and each
// corpus package must produce exactly the diagnostic categories it is
// written to exercise.
func TestCorpus(t *testing.T) {
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pkg        string
		categories []string // categories this package must produce
	}{
		{"basic", []string{"mixedphases", "readcapture"}},
		{"gomixed", []string{"gomix"}},
		{"barriers", []string{"readcapture"}},
		{"wrappers", []string{"mixedphases", "readcapture"}},
		{"coretab", []string{"mixedphases", "readcapture", "gomix"}},
		{"bulk", []string{"mixedphases", "gomix"}},
		{"sharded", []string{"mixedphases", "gomix"}},
		{"obsstats", []string{"mixedphases", "readcapture"}},
	}
	for _, tc := range cases {
		t.Run(tc.pkg, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.pkg)
			pkg, err := loader.LoadDir(tc.pkg, dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			var diags []phasevet.Diagnostic
			pass := &phasevet.Pass{
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d phasevet.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := phasevet.PhaseVet.Run(pass); err != nil {
				t.Fatal(err)
			}
			wants, err := parseWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			gotCategories := map[string]bool{}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				gotCategories[d.Category] = true
				matched := false
				for _, w := range wants {
					if w.file == filepath.Base(pos.Filename) && w.line == pos.Line && !w.matched && w.re.MatchString(d.Message) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic at %s:%d [%s]: %s",
						filepath.Base(pos.Filename), pos.Line, d.Category, d.Message)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.file, w.line, w.re)
				}
			}
			for _, cat := range tc.categories {
				if !gotCategories[cat] {
					t.Errorf("category %q was not exercised by package %s", cat, tc.pkg)
				}
			}
			for cat := range gotCategories {
				found := false
				for _, want := range tc.categories {
					if cat == want {
						found = true
					}
				}
				if !found {
					t.Errorf("package %s unexpectedly produced category %q", tc.pkg, cat)
				}
			}
		})
	}
}

type wantAnnotation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// parseWants scans every corpus file for `// want` annotations, one
// backquoted regexp per line.
func parseWants(dir string) ([]*wantAnnotation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*wantAnnotation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", e.Name(), line, err)
				}
				wants = append(wants, &wantAnnotation{file: e.Name(), line: line, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return wants, nil
}

// TestAnalyzerMetadata pins the analyzer's name, which CI and the
// Makefile reference.
func TestAnalyzerMetadata(t *testing.T) {
	if phasevet.PhaseVet.Name != "phasevet" {
		t.Fatalf("analyzer name = %q", phasevet.PhaseVet.Name)
	}
	if !strings.Contains(phasevet.PhaseVet.Doc, "phasehash:barrier") {
		t.Fatal("analyzer doc does not document the //phasehash:barrier annotation")
	}
}
