package phasevet_test

import (
	"path/filepath"
	"strings"
	"testing"

	"phasehash/internal/analysis/atest"
	"phasehash/internal/analysis/framework"
	"phasehash/internal/analysis/load"
	"phasehash/internal/analysis/phasevet"
)

// TestCorpus runs the analyzer over the testdata/src corpus and checks
// the reported diagnostics against the `// want "regexp"` annotations,
// in the style of golang.org/x/tools/go/analysis/analysistest. Every
// diagnostic must be expected, every expectation must fire, and each
// corpus package must produce exactly the diagnostic categories it is
// written to exercise.
func TestCorpus(t *testing.T) {
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pkg        string
		categories []string // categories this package must produce
	}{
		{"basic", []string{"mixedphases", "readcapture"}},
		{"gomixed", []string{"gomix"}},
		{"barriers", []string{"readcapture"}},
		{"wrappers", []string{"mixedphases", "readcapture"}},
		{"coretab", []string{"mixedphases", "readcapture", "gomix"}},
		{"bulk", []string{"mixedphases", "gomix"}},
		{"sharded", []string{"mixedphases", "gomix"}},
		{"obsstats", []string{"mixedphases", "readcapture"}},
		{"helpers", []string{"mixedphases", "readcapture", "gomix"}},
		{"epochsrv", []string{"mixedphases", "readcapture", "gomix"}},
	}
	for _, tc := range cases {
		t.Run(tc.pkg, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.pkg)
			atest.RunCorpus(t, loader, phasevet.PhaseVet, tc.pkg, dir, tc.categories, framework.NewMemFacts())
		})
	}
}

// TestCrossPackageInference is the acceptance case for interprocedural
// phasevet: every violation in the crosspkg fixture hides its table
// operations behind wrapperlib helpers, so the old intraprocedural
// analyzer (NewAnalyzer(false)) provably misses all of them, while the
// fact-propagating analyzer reports each one.
func TestCrossPackageInference(t *testing.T) {
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	wrapDir := filepath.Join("testdata", "src", "wrapperlib")
	crossDir := filepath.Join("testdata", "src", "crosspkg")
	loader.Map("wrapperlib", wrapDir)

	facts := framework.NewMemFacts()
	wrapPkg, err := loader.LoadDir("wrapperlib", wrapDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrapDiags := atest.Analyze(t, phasevet.PhaseVet, wrapPkg, facts)
	if len(wrapDiags) != 0 {
		t.Fatalf("wrapperlib should be clean on its own, got %d diagnostics", len(wrapDiags))
	}

	crossPkg, err := loader.LoadDir("crosspkg", crossDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	interDiags := atest.Analyze(t, phasevet.PhaseVet, crossPkg, facts)
	atest.CheckWants(t, crossPkg.Fset, crossDir, interDiags, []string{"mixedphases", "readcapture"})
	if len(interDiags) == 0 {
		t.Fatal("interprocedural phasevet reported nothing on crosspkg")
	}

	// Same fixture, intraprocedural mode: zero findings. This is the
	// blind spot the fact propagation exists to close.
	old := phasevet.NewAnalyzer(false)
	oldDiags := atest.Analyze(t, old, crossPkg, framework.NewMemFacts())
	for _, d := range oldDiags {
		pos := crossPkg.Fset.Position(d.Pos)
		t.Errorf("intraprocedural phasevet unexpectedly reported %s:%d [%s]; the corpus no longer demonstrates the interprocedural gain",
			filepath.Base(pos.Filename), pos.Line, d.Category)
	}
}

// TestAnalyzerMetadata pins the analyzer's name, which CI and the
// Makefile reference.
func TestAnalyzerMetadata(t *testing.T) {
	if phasevet.PhaseVet.Name != "phasevet" {
		t.Fatalf("analyzer name = %q", phasevet.PhaseVet.Name)
	}
	if !strings.Contains(phasevet.PhaseVet.Doc, "phasehash:barrier") {
		t.Fatal("analyzer doc does not document the //phasehash:barrier annotation")
	}
}
