package phasevet_test

import (
	"go/types"
	"testing"

	"phasehash/internal/analysis/load"
	"phasehash/internal/analysis/phasevet"
)

// TestFactTableResolves cross-checks the static fact table against the
// real API: every (package, type, method) entry — phase facts and
// phase-neutral allowlist alike — must name a method that actually
// exists on the named type, so a rename in the tables or core layer
// cannot silently turn the analyzer into a no-op for that method.
func TestFactTableResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages from source")
	}
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	refs := phasevet.FactRefs()
	if len(refs) < 20 {
		t.Fatalf("fact table has only %d entries; expected the full API surface", len(refs))
	}
	pkgs := map[string]*types.Package{}
	for _, ref := range refs {
		pkg := pkgs[ref.Pkg]
		if pkg == nil {
			pkg, err = loader.Import(ref.Pkg)
			if err != nil {
				t.Fatalf("importing %s: %v", ref.Pkg, err)
			}
			pkgs[ref.Pkg] = pkg
		}
		tn, ok := pkg.Scope().Lookup(ref.Type).(*types.TypeName)
		if !ok {
			t.Errorf("fact table names type %s.%s, which does not exist", ref.Pkg, ref.Type)
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			t.Errorf("%s.%s is not a named type", ref.Pkg, ref.Type)
			continue
		}
		found := false
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == ref.Method {
				found = true
				break
			}
		}
		if !found {
			kind := "fact-table"
			if ref.Neutral {
				kind = "phase-neutral"
			}
			t.Errorf("%s entry %s.%s.%s: the type declares no such method", kind, ref.Pkg, ref.Type, ref.Method)
		}
	}
}
