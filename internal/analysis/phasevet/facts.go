package phasevet

import (
	"go/types"
	"sort"

	"phasehash/internal/analysis/framework"
)

// Phase is the analyzer's classification of a table method. It mirrors
// core.Phase but is independent of it so the analyzer does not import
// the packages it checks.
type Phase uint8

// Method phase classes.
const (
	PhaseNone   Phase = iota // unclassified: not subject to the discipline
	PhaseInsert              // insert phase
	PhaseDelete              // delete phase
	PhaseRead                // read phase (find / elements / count)
)

func (p Phase) String() string {
	switch p {
	case PhaseInsert:
		return "insert"
	case PhaseDelete:
		return "delete"
	case PhaseRead:
		return "read"
	default:
		return "none"
	}
}

// methodFact classifies one method of one table type.
type methodFact struct {
	phase Phase
	// capture marks methods whose *result* is a snapshot of table
	// state (Elements, Count, Entries): using one while a write phase
	// is in flight is the read-during-write diagnostic.
	capture bool
}

// factKey is "pkgpath.TypeName.Method". Test-variant package paths
// ("phasehash [phasehash.test]") are normalized before lookup.
type factKey struct {
	pkg, typ, method string
}

// phaseFacts classifies every phase-disciplined method of the public
// containers and the internal/core tables. Types deliberately absent:
// CheckedSet and the other Checked* wrappers (runtime-guarded), and
// AutoSet (room-synchronized) — operations on those are always safe to
// issue from any phase.
var phaseFacts = map[factKey]methodFact{}

// checkedWrapper names the runtime-checked twin the diagnostic should
// suggest for each classified type.
var checkedWrapper = map[string]string{
	"phasehash.Set":       "phasehash.Checked",
	"phasehash.Map32":     "phasehash.NewCheckedMap32",
	"phasehash.StringMap": "phasehash.NewCheckedStringMap",
	"phasehash.GrowSet":   "phasehash.NewCheckedGrowSet",
}

// phaseNeutral lists methods on classified types that are deliberately
// NOT phase-classified: telemetry accessors that read the phasestats
// sinks or per-shard atomic counters, never table cells, and are
// therefore safe to call during any phase (package-level accessors like
// phasehash.Stats and ResetStats have no receiver and are never
// classified to begin with). The allowlist is consulted by classify()
// and cross-checked against phaseFacts at init, so a future fact
// addition cannot silently subject them to the discipline.
var phaseNeutral = map[factKey]bool{
	{"phasehash", "ShardedSet", "ShardStats"}:                        true,
	{"phasehash", "ShardedMap32", "ShardStats"}:                      true,
	{"phasehash/internal/core", "ShardedTable", "ShardStats"}:        true,
	{"phasehash/internal/core", "ShardedCompactTable", "ShardStats"}: true,
}

func addFacts(pkg, typ string, methods map[string]methodFact) {
	for m, f := range methods {
		k := factKey{pkg, typ, m}
		if phaseNeutral[k] {
			panic("phasevet: " + pkg + "." + typ + "." + m + " is declared phase-neutral and cannot carry a phase fact")
		}
		phaseFacts[k] = f
	}
}

func init() {
	const (
		ph   = "phasehash"
		core = "phasehash/internal/core"
	)
	// Public containers. The *All bulk kernels carry the phase of their
	// per-element counterparts: a bulk call is the same phase's
	// operations, just batched.
	addFacts(ph, "Set", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Contains":     {phase: PhaseRead},
		"ContainsAll":  {phase: PhaseRead},
		"Elements":     {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
	})
	addFacts(ph, "Map32", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Find":         {phase: PhaseRead},
		"FindAll":      {phase: PhaseRead},
		"Entries":      {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
	})
	addFacts(ph, "StringMap", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Find":         {phase: PhaseRead},
		"FindAll":      {phase: PhaseRead},
		"Entries":      {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
	})
	addFacts(ph, "GrowSet", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Contains":     {phase: PhaseRead},
		"ContainsAll":  {phase: PhaseRead},
		"Elements":     {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
	})
	addFacts(ph, "CompactSet", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Contains":     {phase: PhaseRead},
		"ContainsAll":  {phase: PhaseRead},
		"Elements":     {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
	})
	// Sharded containers. The owner-computes bulk kernels require
	// exclusive table access for the whole call, which is strictly
	// stronger than the phase discipline — classifying them with their
	// phase means every *cross*-phase overlap is still caught; the
	// same-phase-overlap gap is documented on the types.
	addFacts(ph, "ShardedSet", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Contains":     {phase: PhaseRead},
		"ContainsAll":  {phase: PhaseRead},
		"Elements":     {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
	})
	addFacts(ph, "ShardedMap32", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Find":         {phase: PhaseRead},
		"FindAll":      {phase: PhaseRead},
		"Entries":      {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
	})
	// internal/core tables (generic; looked up by their generic name).
	addFacts(core, "WordTable", map[string]methodFact{
		"Insert":        {phase: PhaseInsert},
		"TryInsert":     {phase: PhaseInsert},
		"InsertAll":     {phase: PhaseInsert},
		"TryInsertAll":  {phase: PhaseInsert},
		"InsertLimited": {phase: PhaseInsert},
		"Delete":        {phase: PhaseDelete},
		"DeleteAll":     {phase: PhaseDelete},
		"Find":          {phase: PhaseRead},
		"FindAll":       {phase: PhaseRead},
		"Contains":      {phase: PhaseRead},
		"ContainsAll":   {phase: PhaseRead},
		"Elements":      {phase: PhaseRead, capture: true},
		"ElementsInto":  {phase: PhaseRead, capture: true},
		"Count":         {phase: PhaseRead, capture: true},
		"CountAtomic":   {phase: PhaseRead, capture: true},
		"ForEach":       {phase: PhaseRead},
	})
	addFacts(core, "PtrTable", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Find":         {phase: PhaseRead},
		"FindAll":      {phase: PhaseRead},
		"Elements":     {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
	})
	addFacts(core, "ShardedTable", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Find":         {phase: PhaseRead},
		"FindAll":      {phase: PhaseRead},
		"Contains":     {phase: PhaseRead},
		"ContainsAll":  {phase: PhaseRead},
		"Elements":     {phase: PhaseRead, capture: true},
		"ElementsInto": {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
		"ForEach":      {phase: PhaseRead},
	})
	addFacts(core, "CompactTable", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Find":         {phase: PhaseRead},
		"FindAll":      {phase: PhaseRead},
		"Contains":     {phase: PhaseRead},
		"ContainsAll":  {phase: PhaseRead},
		"Elements":     {phase: PhaseRead, capture: true},
		"ElementsInto": {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
		"CountAtomic":  {phase: PhaseRead, capture: true},
		"ForEach":      {phase: PhaseRead},
	})
	addFacts(core, "ShardedCompactTable", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Find":         {phase: PhaseRead},
		"FindAll":      {phase: PhaseRead},
		"Contains":     {phase: PhaseRead},
		"ContainsAll":  {phase: PhaseRead},
		"Elements":     {phase: PhaseRead, capture: true},
		"ElementsInto": {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
		"ForEach":      {phase: PhaseRead},
	})
	addFacts(core, "GrowTable", map[string]methodFact{
		"Insert":       {phase: PhaseInsert},
		"TryInsert":    {phase: PhaseInsert},
		"InsertAll":    {phase: PhaseInsert},
		"TryInsertAll": {phase: PhaseInsert},
		"Delete":       {phase: PhaseDelete},
		"DeleteAll":    {phase: PhaseDelete},
		"Find":         {phase: PhaseRead},
		"FindAll":      {phase: PhaseRead},
		"Contains":     {phase: PhaseRead},
		"ContainsAll":  {phase: PhaseRead},
		"Elements":     {phase: PhaseRead, capture: true},
		"Count":        {phase: PhaseRead, capture: true},
	})
}

// normalizePkgPath strips the test-variant suffix go vet uses for test
// compilation units ("phasehash [phasehash.test]" -> "phasehash").
func normalizePkgPath(p string) string { return framework.NormalizePkgPath(p) }

// FactRef is one entry of the method fact table, exported so tests can
// cross-check every entry against the real method sets of the named
// types — a renamed or removed method must fail the check rather than
// silently stop matching.
type FactRef struct {
	Pkg    string // package path, e.g. "phasehash/internal/core"
	Type   string // receiver type name
	Method string
	// Neutral marks phaseNeutral allowlist entries (methods declared
	// exempt from the discipline) rather than phase facts.
	Neutral bool
}

// FactRefs returns every fact-table and phase-neutral entry, sorted.
func FactRefs() []FactRef {
	var refs []FactRef
	for k := range phaseFacts {
		refs = append(refs, FactRef{Pkg: k.pkg, Type: k.typ, Method: k.method})
	}
	for k := range phaseNeutral {
		refs = append(refs, FactRef{Pkg: k.pkg, Type: k.typ, Method: k.method, Neutral: true})
	}
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Method < b.Method
	})
	return refs
}

// classify returns the phase fact for a called method object, or
// ok=false if the method is not phase-disciplined.
func classify(fn *types.Func) (typeName string, fact methodFact, ok bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", methodFact{}, false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", methodFact{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", methodFact{}, false
	}
	pkg := normalizePkgPath(obj.Pkg().Path())
	key := factKey{pkg, obj.Name(), fn.Name()}
	if phaseNeutral[key] {
		return "", methodFact{}, false
	}
	fact, ok = phaseFacts[key]
	return pkg + "." + obj.Name(), fact, ok
}

// wrapperFor suggests the checked twin for a classified type name, or
// a generic hint when none is registered.
func wrapperFor(typeName string) string {
	if w, ok := checkedWrapper[typeName]; ok {
		return w
	}
	return "a Checked* wrapper"
}
