// Package gomixed exercises the gomix diagnostic: raw table
// operations inside go statements and parallel closures that conflict
// with in-flight or sibling operations.
package gomixed

import (
	"phasehash"
	"phasehash/internal/parallel"
)

func twoGoroutinesMixed() {
	s := phasehash.NewSet(64)
	done := make(chan struct{}, 2)
	go func() {
		s.Insert(1)
		done <- struct{}{}
	}()
	go func() {
		s.Delete(2) // want `Delete \(delete phase\) on s inside a goroutine or parallel closure may overlap insert-phase`
		done <- struct{}{}
	}()
	<-done
	<-done
}

func twoGoroutinesSamePhaseOK() {
	s := phasehash.NewSet(64)
	done := make(chan struct{}, 2)
	go func() {
		s.Insert(1)
		done <- struct{}{}
	}()
	go func() {
		s.Insert(2)
		done <- struct{}{}
	}()
	<-done
	<-done
}

func parallelClosureVsInFlight() {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	parallel.For(8, func(i int) {
		_ = s.Contains(uint64(i + 1)) // want `Contains \(read phase\) on s inside a goroutine or parallel closure may overlap insert-phase`
	})
}

func parallelClosureSelfMix() {
	s := phasehash.NewSet(64)
	parallel.For(8, func(i int) {
		s.Insert(uint64(i + 1))
		_ = s.Contains(uint64(i + 1)) // want `parallel closure mixes read-phase phasehash\.Set\.Contains with insert-phase Insert`
	})
}

func parallelClosureSinglePhaseOK() {
	s := phasehash.NewSet(64)
	parallel.For(8, func(i int) {
		s.Insert(uint64(i + 1))
	})
	// parallel.For returning is a barrier: the read phase is legal.
	_ = s.Elements()
	_ = s.Count()
}

func parallelDoSiblingsMixed() {
	s := phasehash.NewSet(64)
	parallel.Do(
		func() { s.Insert(1) },
		func() { _ = s.Count() }, // want `parallel closure mixes read-phase phasehash\.Set\.Count with insert-phase Insert`
	)
}

func parallelDoSiblingsSamePhaseOK() {
	s := phasehash.NewSet(64)
	parallel.Do(
		func() { s.Insert(1) },
		func() { s.Insert(2) },
	)
	_ = s.Count()
}

// Within one parallel.Do closure, phases are sequential and safe as
// long as no sibling touches the same table.
func parallelDoSequentialInsideOK() {
	s := phasehash.NewSet(64)
	t := phasehash.NewSet(64)
	parallel.Do(
		func() {
			s.Insert(1)
			_ = s.Contains(1)
		},
		func() { t.Insert(2) },
	)
}
