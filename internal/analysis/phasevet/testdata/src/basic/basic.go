// Package basic exercises the mixedphases and readcapture diagnostics
// on the plain Set, with negative cases for sequential code and
// WaitGroup barriers.
package basic

import (
	"sync"

	"phasehash"
)

// Sequential phase changes on one goroutine are always safe: each
// operation completes before the next begins, so phases never overlap.
func sequentialOK() {
	s := phasehash.NewSet(64)
	s.Insert(1)
	s.Delete(1)
	_ = s.Contains(1)
	_ = s.Elements()
	_ = s.Count()
}

// A WaitGroup join is a phase barrier: inserts drained before reads.
func waitBarrierOK() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Insert(1)
	}()
	wg.Wait()
	_ = s.Elements()
	_ = s.Contains(1)
}

func mixedWithoutBarrier() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Insert(1)
	}()
	_ = s.Contains(1) // want `Contains \(read phase\) on s may overlap insert-phase operations`
	wg.Wait()
}

func captureDuringInsert() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Insert(uint64(w + 1))
		}()
	}
	_ = s.Elements() // want `Elements result on s captured while insert-phase operations`
	wg.Wait()
}

func countAfterDrainOK() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Insert(1)
	}()
	wg.Wait()
	_ = s.Count()
}

func deleteWhileInsertInFlight() {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	s.Delete(2) // want `Delete \(delete phase\) on s may overlap insert-phase operations`
}

// Operations on distinct tables never interfere.
func distinctReceiversOK() {
	a := phasehash.NewSet(64)
	b := phasehash.NewSet(64)
	go a.Insert(1)
	_ = b.Elements()
	_ = b.Contains(1)
}
