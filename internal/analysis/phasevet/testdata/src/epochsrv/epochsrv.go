// Package epochsrv exercises phasevet on the phase-batched epoch
// scheduler idiom (internal/epoch): a mutex-buffered admission queue in
// front of a sharded table that only the flusher touches. The scheduler
// itself — admission under a mutex, a single flusher partitioning each
// batch by phase and driving one bulk kernel per phase in straight-line
// code — must stay quiet. The violations are the pattern the scheduler
// exists to rule out: clients bypassing admission and touching the
// table directly while an epoch is in flight.
package epochsrv

import (
	"sync"

	"phasehash/internal/core"
)

// op is one admitted operation: an insert when ins, else a delete.
type op struct {
	ins bool
	key uint64
}

// server is the miniature scheduler.
type server struct {
	mu      sync.Mutex
	pending []op
	table   *core.ShardedTable[core.SetOps]
}

// submit admits one op under the mutex; admission never touches the
// table, so it carries no phase at all.
func (s *server) submit(o op) {
	s.mu.Lock()
	s.pending = append(s.pending, o)
	s.mu.Unlock()
}

// take claims the pending batch under the mutex.
func (s *server) take() []op {
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()
	return batch
}

// flush is one epoch: partition by phase, then one bulk kernel per
// phase in sequence on a single goroutine — insert, delete, read.
// Sequential phase succession is the scheduler's whole contract, and
// phasevet must stay quiet on it.
func (s *server) flush(batch []op) {
	var ins, del []uint64
	for _, o := range batch {
		if o.ins {
			ins = append(ins, o.key)
		} else {
			del = append(del, o.key)
		}
	}
	s.table.InsertAll(ins)
	s.table.DeleteAll(del)
	dst := make([]uint64, len(ins))
	s.table.FindAll(ins, dst)
	_ = s.table.Elements()
}

// serve drains admitted batches through epochs.
func (s *server) serve(rounds int) {
	for i := 0; i < rounds; i++ {
		s.flush(s.take())
	}
}

// insertEpoch is the flusher's insert phase extracted as a helper, so
// the violations below are only visible through the interprocedural
// facts.
func insertEpoch(s *server, keys []uint64) {
	s.table.InsertAll(keys)
}

// epochPipelineOK is the intended usage end to end: concurrent clients
// submit through admission, the batch is claimed after a barrier, one
// flusher drives the epoch, and the table is only read quiescently.
func epochPipelineOK(keys []uint64) {
	s := &server{table: core.NewShardedTable[core.SetOps](1024, 8)}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, k := range keys {
				s.submit(op{ins: true, key: k})
			}
		}()
	}
	wg.Wait()
	s.serve(1)
	_ = s.table.Elements()
}

// clientReadsMidEpoch bypasses admission: a direct read on the caller's
// goroutine while the flusher's insert phase is in flight.
func clientReadsMidEpoch(s *server, keys []uint64) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		insertEpoch(s, keys)
	}()
	_ = s.table.Contains(keys[0]) // want `Contains \(read phase\) on s\.table may overlap insert-phase operations`
	wg.Wait()
}

// concurrentClientAndFlusher races a bypassing client goroutine against
// the in-flight epoch.
func concurrentClientAndFlusher(s *server, keys []uint64) {
	done := make(chan struct{}, 2)
	go func() {
		insertEpoch(s, keys)
		done <- struct{}{}
	}()
	go func() {
		_ = s.table.Contains(keys[0]) // want `Contains \(read phase\) on s\.table inside a goroutine or parallel closure may overlap insert-phase`
		done <- struct{}{}
	}()
	<-done
	<-done
}

// snapshotMidEpoch captures an Elements snapshot while the insert phase
// is still in flight — the capture the epoch boundary exists to order.
func snapshotMidEpoch(s *server, keys []uint64) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		insertEpoch(s, keys)
	}()
	_ = s.table.Elements() // want `Elements result on s\.table captured while insert-phase operations`
	wg.Wait()
}
