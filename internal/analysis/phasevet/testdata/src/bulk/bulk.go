// Package bulk exercises the diagnostics on the bulk phase kernels
// (InsertAll / FindAll / ContainsAll / DeleteAll / TryInsertAll): a
// bulk call carries the phase of its per-element counterpart, so
// mixing it with another phase without a barrier must be reported and
// barrier-separated bulk phases must stay silent.
package bulk

import (
	"sync"

	"phasehash"
	"phasehash/internal/core"
)

// Whole-phase bulk calls separated by plain sequential control flow are
// the intended idiom: one call per phase, no overlap possible.
func sequentialBulkOK(keys []uint64) {
	s := phasehash.NewSet(1024)
	s.InsertAll(keys)
	_ = s.ContainsAll(keys)
	s.DeleteAll(keys)
	_ = s.Elements()
}

// A bulk insert on another goroutine overlapping a bulk read is the
// same violation as its per-element counterpart.
func bulkMixedWithoutBarrier(keys []uint64) {
	s := phasehash.NewSet(1024)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.InsertAll(keys)
	}()
	_ = s.ContainsAll(keys) // want `ContainsAll \(read phase\) on s may overlap insert-phase operations`
	wg.Wait()
}

// Bulk delete racing bulk insert mixes write phases.
func bulkInsertDeleteMix(keys []uint64) {
	s := phasehash.NewSet(1024)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.TryInsertAll(keys)
	}()
	s.DeleteAll(keys) // want `DeleteAll \(delete phase\) on s may overlap insert-phase operations`
	wg.Wait()
}

// A WaitGroup join between bulk phases is a barrier; no diagnostics.
func bulkBarrierOK(keys []uint64) {
	s := phasehash.NewSet(1024)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.InsertAll(keys)
	}()
	wg.Wait()
	_ = s.ContainsAll(keys)
	s.DeleteAll(keys)
}

// Two goroutines issuing conflicting bulk phases trip the goroutine
// diagnostic, exactly like their per-element counterparts.
func twoGoroutinesBulkMixed(keys []uint64) {
	s := phasehash.NewSet(1024)
	done := make(chan struct{}, 2)
	go func() {
		s.InsertAll(keys)
		done <- struct{}{}
	}()
	go func() {
		s.DeleteAll(keys) // want `DeleteAll \(delete phase\) on s inside a goroutine or parallel closure may overlap insert-phase`
		done <- struct{}{}
	}()
	<-done
	<-done
}

// Same-phase bulk calls from sibling goroutines are fine — phase
// concurrency is the whole point.
func twoGoroutinesBulkSamePhaseOK(a, b []uint64) {
	s := phasehash.NewSet(1024)
	done := make(chan struct{}, 2)
	go func() {
		s.InsertAll(a)
		done <- struct{}{}
	}()
	go func() {
		s.InsertAll(b)
		done <- struct{}{}
	}()
	<-done
	<-done
}

// Map32 bulk kernels carry the same classification.
func map32BulkMix(entries []phasehash.Entry, keys []uint32) {
	m := phasehash.NewMap32(1024, phasehash.KeepMin)
	go m.InsertAll(entries)
	_ = m.FindAll(keys, nil) // want `FindAll \(read phase\) on m may overlap insert-phase operations`
}

// StringMap bulk kernels, delete against read.
func stringMapBulkMix(keys []string) {
	m := phasehash.NewStringMap(1024, phasehash.Sum)
	go m.DeleteAll(keys)
	_ = m.FindAll(keys, nil) // want `FindAll \(read phase\) on m may overlap delete-phase operations`
}

// GrowSet bulk kernels.
func growSetBulkMix(keys []uint64) {
	g := phasehash.NewGrowSet(64)
	go g.InsertAll(keys)
	_ = g.ContainsAll(keys) // want `ContainsAll \(read phase\) on g may overlap insert-phase operations`
}

// The core tables' bulk kernels are classified too (application
// packages call them directly).
func coreBulkMix(keys []uint64) {
	t := core.NewWordTable[core.SetOps](1024)
	go t.InsertAll(keys)
	_ = t.FindAll(keys, nil) // want `FindAll \(read phase\) on t may overlap insert-phase operations`
}

func coreGrowBulkMix(keys []uint64) {
	g := core.NewGrowTable[core.SetOps](64)
	go g.DeleteAll(keys)
	_, _ = g.TryInsertAll(keys) // want `TryInsertAll \(insert phase\) on g may overlap delete-phase operations`
}

// Barrier-separated core bulk phases stay silent, including a capture
// after the join.
func coreBulkBarrierOK(keys []uint64) {
	t := core.NewWordTable[core.SetOps](1024)
	done := make(chan struct{})
	go func() {
		t.InsertAll(keys)
		close(done)
	}()
	<-done
	_ = t.ContainsAll(keys)
	_ = t.Elements()
}
