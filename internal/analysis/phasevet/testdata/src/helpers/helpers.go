// Package helpers exercises intra-package interprocedural inference:
// functions that wrap table operations are phase operations at their
// call sites, goroutine leaks and snapshot captures included, and a
// helper that only joins is a barrier at its call sites.
package helpers

import (
	"sync"

	"phasehash"
)

// fill performs a synchronous insert phase on its parameter.
func fill(s *phasehash.Set, vs []uint64) {
	for _, v := range vs {
		s.Insert(v)
	}
}

// remove performs a synchronous delete phase on its parameter.
func remove(s *phasehash.Set) {
	s.Delete(9)
}

// startFill leaks an insert-phase goroutine on its parameter: the
// insert is still in flight when startFill returns.
func startFill(s *phasehash.Set, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Insert(1)
	}()
}

// snapshot captures the element set through a helper.
func snapshot(s *phasehash.Set) []uint64 {
	return s.Elements()
}

// waitFor only joins: an inferred barrier at its call sites.
func waitFor(wg *sync.WaitGroup) {
	wg.Wait()
}

func goHelperThenDelete() {
	s := phasehash.NewSet(64)
	go fill(s, []uint64{1, 2})
	s.Delete(1) // want `Delete \(delete phase\) on s may overlap insert-phase operations`
}

func asyncHelperThenRead() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	startFill(s, &wg)
	_ = s.Elements() // want `Elements result on s captured while insert-phase operations`
	wg.Wait()
}

func readViaHelperDuringInsert() {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	_ = snapshot(s) // want `Elements via snapshot result on s captured while insert-phase`
}

func goMixViaHelper() {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	go remove(s) // want `Delete via remove \(delete phase\) on s inside a goroutine`
}

// wrapped hides the table behind a struct field; inference follows the
// receiver path.
type wrapped struct {
	set *phasehash.Set
}

func (w *wrapped) add(v uint64) {
	w.set.Insert(v)
}

func structFieldMix() {
	w := &wrapped{set: phasehash.NewSet(64)}
	go w.add(1)
	_ = w.set.Elements() // want `captured while insert-phase operations`
}

// A synchronous helper completes before the caller continues: no
// conflict.
func fillThenReadOK() {
	s := phasehash.NewSet(64)
	fill(s, []uint64{1, 2})
	_ = s.Elements()
}

// A join helper is a barrier: the leaked insert is drained before the
// read.
func helperBarrierOK() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	startFill(s, &wg)
	waitFor(&wg)
	_ = s.Elements()
}

// Two synchronous helper phases in sequence are fine.
func fillThenRemoveOK() {
	s := phasehash.NewSet(64)
	fill(s, []uint64{1})
	remove(s)
}
