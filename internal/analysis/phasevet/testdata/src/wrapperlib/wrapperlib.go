// Package wrapperlib is the cross-package inference fixture: helpers
// over phasehash tables whose phase effects must travel to importing
// packages as object facts. The package is clean on its own — every
// violation lives in the importer (see ../crosspkg).
package wrapperlib

import (
	"sync"

	"phasehash"
)

// Fill synchronously runs an insert phase over its parameter.
func Fill(s *phasehash.Set, vs []uint64) {
	for _, v := range vs {
		s.Insert(v)
	}
}

// FillAsync spawns the insert phase and returns without joining it:
// callers must barrier before reading.
func FillAsync(s *phasehash.Set, vs []uint64, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		Fill(s, vs)
	}()
}

// Snapshot captures the element set.
func Snapshot(s *phasehash.Set) []uint64 {
	return s.Elements()
}

// Join waits for a fill to drain: a barrier at its call sites.
func Join(wg *sync.WaitGroup) {
	wg.Wait()
}
