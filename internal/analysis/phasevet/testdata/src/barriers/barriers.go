// Package barriers exercises every happens-before edge the analyzer
// recognizes: channel receive, range-over-channel, select, and the
// explicit //phasehash:barrier annotation, plus //phasehash:ignore
// suppression.
package barriers

import "phasehash"

func channelReceiveBarrierOK() {
	s := phasehash.NewSet(64)
	done := make(chan struct{})
	go func() {
		s.Insert(1)
		close(done)
	}()
	<-done
	_ = s.Elements()
}

// join is an opaque synchronization helper the analyzer cannot see
// through; the annotation asserts the happens-before edge.
func annotatedBarrierOK(join func()) {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	join()
	//phasehash:barrier
	_ = s.Elements()
}

func missingBarrier(join func()) {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	join()
	_ = s.Elements() // want `Elements result on s captured while insert-phase operations`
}

func ignoredFinding(join func()) {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	join()
	_ = s.Elements() //phasehash:ignore
}

func rangeOverChannelBarrierOK() {
	s := phasehash.NewSet(64)
	results := make(chan uint64, 8)
	go func() {
		s.Insert(1)
		results <- 1
		close(results)
	}()
	for range results {
	}
	_ = s.Count()
}

func selectBarrierOK() {
	s := phasehash.NewSet(64)
	done := make(chan struct{})
	go func() {
		s.Insert(1)
		close(done)
	}()
	select {
	case <-done:
	}
	_ = s.Count()
}

func receiveInAssignmentBarrierOK() {
	s := phasehash.NewSet(64)
	out := make(chan int, 1)
	go func() {
		s.Delete(3)
		out <- 1
	}()
	n := <-out
	_ = n
	_ = s.Elements()
}
