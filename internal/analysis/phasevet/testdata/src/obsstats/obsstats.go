// Package obsstats exercises the phase-neutral telemetry accessors:
// phasehash.Stats, ResetStats and ShardStats read the observability
// sinks (or per-shard atomic counters), never table cells, so calling
// them while a write phase is in flight must produce NO diagnostic.
// Each negative case is paired with a classified read on the same
// receiver that DOES fire, proving the analyzer saw the in-flight
// phase and stayed quiet about the telemetry call on purpose.
package obsstats

import (
	"sync"

	"phasehash"
)

// Stats and ResetStats are package-level accessors of the telemetry
// sinks; they never had a receiver to classify, and must stay silent
// even with an insert phase visibly in flight on some table.
func statsDuringInsertOK() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Insert(1)
	}()
	_ = phasehash.Stats()  // phase-neutral: no diagnostic
	phasehash.ResetStats() // phase-neutral: no diagnostic
	_ = s.Contains(1)      // want `Contains \(read phase\) on s may overlap insert-phase operations`
	wg.Wait()
}

// ShardStats on the sharded containers reads the shard occupancy
// counters, not the tables, and is declared phase-neutral in the fact
// table — safe mid-insert, unlike Count/Elements on the same receiver.
func shardStatsDuringInsertOK() {
	s := phasehash.NewShardedSet(64, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Insert(1)
	}()
	_ = s.ShardStats() // phase-neutral: no diagnostic
	_ = s.Count()      // want `Count result on s captured while insert-phase operations`
	wg.Wait()
}

func shardStatsMapDuringDeleteOK() {
	m := phasehash.NewShardedMap32(64, phasehash.KeepMin, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Delete(1)
	}()
	_ = m.ShardStats() // phase-neutral: no diagnostic
	_, _ = m.Find(1)   // want `Find \(read phase\) on m may overlap delete-phase operations`
	wg.Wait()
}
