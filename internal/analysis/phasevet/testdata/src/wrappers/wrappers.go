// Package wrappers exercises the per-type diagnostics (the suggested
// Checked* wrapper is named per table type) and the negative cases for
// the runtime-checked and room-synchronized containers, which are
// exempt from static checking.
package wrappers

import (
	"sync"

	"phasehash"
)

func map32Mixed() {
	m := phasehash.NewMap32(64, phasehash.KeepMin)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Insert(1, 1)
	}()
	_, _ = m.Find(1) // want `wrap the table with phasehash\.NewCheckedMap32`
	wg.Wait()
}

func stringMapMixed() {
	m := phasehash.NewStringMap(64, phasehash.Sum)
	go m.Insert("k", 1)
	m.Delete("k") // want `wrap the table with phasehash\.NewCheckedStringMap`
}

func growSetMixed() {
	s := phasehash.NewGrowSet(16)
	go s.Insert(1)
	_ = s.Elements()  // want `Elements result on s captured while insert-phase operations`
	_ = s.Contains(2) // want `wrap the table with phasehash\.NewCheckedGrowSet`
}

// TryInsert is the graceful-degradation twin of Insert and classifies
// into the insert phase exactly like it.
func setTryInsertMixed() {
	s := phasehash.NewSet(64)
	go s.TryInsert(1)
	_ = s.Elements()  // want `Elements result on s captured while insert-phase operations`
	_ = s.Contains(2) // want `wrap the table with phasehash\.Checked`
}

// A barrier separates the phases: TryInsert then read is clean.
func setTryInsertBarrierOK() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.TryInsert(1); err != nil {
			return
		}
	}()
	wg.Wait()
	_ = s.Elements()
}

func mapBarrierOK() {
	m := phasehash.NewMap32(64, phasehash.Sum)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Insert(1, 1)
	}()
	wg.Wait()
	_, _ = m.Find(1)
	_ = m.Entries()
}

// The runtime-checked wrappers catch violations dynamically; phasevet
// deliberately stays silent on them.
func checkedSetOK() {
	s := phasehash.Checked(phasehash.NewSet(64))
	go s.Insert(1)
	_ = s.Elements()
	_ = s.Count()
}

func checkedMap32OK() {
	m := phasehash.NewCheckedMap32(phasehash.NewMap32(64, phasehash.Sum))
	go m.Insert(1, 2)
	_, _ = m.Find(1)
}

func checkedGrowSetOK() {
	s := phasehash.NewCheckedGrowSet(phasehash.NewGrowSet(16))
	go s.Insert(1)
	_ = s.Elements()
}

// AutoSet serializes phases with rooms; any interleaving is safe.
func autoSetOK() {
	a := phasehash.NewAutoSet(64)
	go a.Insert(1)
	_ = a.Contains(1)
	_ = a.Elements()
}
