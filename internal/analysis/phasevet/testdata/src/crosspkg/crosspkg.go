// Package crosspkg exercises cross-package interprocedural inference:
// every table operation here is hidden behind a wrapperlib helper, so
// intraprocedural phasevet (NewAnalyzer(false)) is provably blind to
// all of it — TestCrossPackageInference asserts exactly that.
package crosspkg

import (
	"sync"

	"phasehash"
	"wrapperlib"
)

func asyncThenRead() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	wrapperlib.FillAsync(s, []uint64{1, 2}, &wg)
	_ = s.Elements() // want `captured while insert-phase operations`
	wg.Wait()
}

func helperInGoroutine() {
	s := phasehash.NewSet(64)
	go wrapperlib.Fill(s, []uint64{1})
	s.Delete(1) // want `Delete \(delete phase\) on s may overlap insert-phase`
}

func snapshotDuringInsert() {
	s := phasehash.NewSet(64)
	go s.Insert(1)
	_ = wrapperlib.Snapshot(s) // want `Elements via Snapshot result on s captured while insert-phase`
}

// A synchronous helper finishes before the read: clean.
func syncHelperOK() {
	s := phasehash.NewSet(64)
	wrapperlib.Fill(s, []uint64{1, 2})
	_ = s.Elements()
}

// The Join helper's inferred barrier drains the async fill: clean.
func joinHelperOK() {
	s := phasehash.NewSet(64)
	var wg sync.WaitGroup
	wrapperlib.FillAsync(s, []uint64{1}, &wg)
	wrapperlib.Join(&wg)
	_ = s.Elements()
}
