// Package coretab exercises the diagnostics on the internal/core
// tables, which application packages use directly.
package coretab

import (
	"phasehash/internal/core"
	"phasehash/internal/parallel"
)

func wordTableMixed() {
	t := core.NewWordTable[core.SetOps](64)
	go t.Insert(1)
	_, _ = t.Find(1) // want `Find \(read phase\) on t may overlap insert-phase operations`
}

func wordTableLoopOK() {
	t := core.NewWordTable[core.SetOps](64)
	parallel.For(100, func(i int) {
		t.Insert(uint64(i + 1))
	})
	_ = t.Elements()
	_ = t.Count()
}

func wordTableLoopSelfMix() {
	t := core.NewWordTable[core.SetOps](64)
	parallel.For(100, func(i int) {
		t.Insert(uint64(i + 1))
		t.Delete(uint64(i + 1)) // want `parallel closure mixes delete-phase`
	})
}

func growTableCapture() {
	g := core.NewGrowTable[core.SetOps](16)
	go g.Insert(1)
	_ = g.Count() // want `Count result on g captured while insert-phase operations`
}

func growTableBarrierOK() {
	g := core.NewGrowTable[core.SetOps](16)
	done := make(chan struct{})
	go func() {
		g.Insert(1)
		close(done)
	}()
	<-done
	_ = g.Count()
	_ = g.Elements()
}
