// Package sharded exercises the diagnostics on the sharded containers
// (ShardedSet / ShardedMap32 / core.ShardedTable): the per-element
// operations and owner-computes bulk kernels carry the same phase
// classification as their flat counterparts, so cross-phase overlaps
// must be reported and barrier-separated phases must stay silent. (The
// kernels' stronger exclusive-access contract — no overlap even within
// a phase — is beyond the phase lattice and documented on the types.)
package sharded

import (
	"sync"

	"phasehash"
	"phasehash/internal/core"
)

// One bulk call per phase in straight-line code is the intended idiom.
func sequentialShardedOK(keys []uint64) {
	s := phasehash.NewShardedSet(1024, 8)
	s.InsertAll(keys)
	_ = s.ContainsAll(keys)
	s.DeleteAll(keys)
	_ = s.Elements()
}

// A sharded bulk insert on another goroutine overlapping a bulk read is
// the same cross-phase violation as on the flat set.
func shardedBulkMixedWithoutBarrier(keys []uint64) {
	s := phasehash.NewShardedSet(1024, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.InsertAll(keys)
	}()
	_ = s.ContainsAll(keys) // want `ContainsAll \(read phase\) on s may overlap insert-phase operations`
	wg.Wait()
}

// Per-element sharded operations are classified like the flat ones.
func shardedPerElementMix(keys []uint64) {
	s := phasehash.NewShardedSet(1024, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, k := range keys {
			s.Insert(k)
		}
	}()
	s.Delete(keys[0]) // want `Delete \(delete phase\) on s may overlap insert-phase operations`
	wg.Wait()
}

// A WaitGroup join between sharded bulk phases is a barrier; silent.
func shardedBarrierOK(keys []uint64) {
	s := phasehash.NewShardedSet(1024, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.InsertAll(keys)
	}()
	wg.Wait()
	_ = s.ContainsAll(keys)
	s.DeleteAll(keys)
}

// Two goroutines issuing conflicting sharded phases trip the goroutine
// diagnostic.
func twoGoroutinesShardedMixed(keys []uint64) {
	s := phasehash.NewShardedSet(1024, 8)
	done := make(chan struct{}, 2)
	go func() {
		s.InsertAll(keys)
		done <- struct{}{}
	}()
	go func() {
		s.DeleteAll(keys) // want `DeleteAll \(delete phase\) on s inside a goroutine or parallel closure may overlap insert-phase`
		done <- struct{}{}
	}()
	<-done
	<-done
}

// ShardedMap32 kernels carry the same classification.
func shardedMap32Mix(entries []phasehash.Entry, keys []uint32) {
	m := phasehash.NewShardedMap32(1024, phasehash.KeepMin, 4)
	go m.InsertAll(entries)
	_ = m.FindAll(keys, nil) // want `FindAll \(read phase\) on m may overlap insert-phase operations`
}

// The core ShardedTable is classified too (application packages and the
// tables facade call it directly).
func coreShardedMix(keys []uint64) {
	t := core.NewShardedTable[core.SetOps](1024, 8)
	go t.InsertAll(keys)
	_ = t.FindAll(keys, nil) // want `FindAll \(read phase\) on t may overlap insert-phase operations`
}

func coreShardedTryInsertMix(keys []uint64) {
	t := core.NewShardedTable[core.SetOps](1024, 8)
	go t.DeleteAll(keys)
	_, _ = t.TryInsertAll(keys) // want `TryInsertAll \(insert phase\) on t may overlap delete-phase operations`
}

// Barrier-separated core sharded phases stay silent, including the
// captures after the join.
func coreShardedBarrierOK(keys []uint64) {
	t := core.NewShardedTable[core.SetOps](1024, 8)
	done := make(chan struct{})
	go func() {
		t.InsertAll(keys)
		close(done)
	}()
	<-done
	_ = t.ContainsAll(keys)
	_ = t.Elements()
	_ = t.Count()
}
