package phasevet

// Interprocedural phase inference. A function body is summarized into
// a funcEffect: which phase operations it performs on tables its
// callers can name (receiver, parameters, package-level variables),
// whether those operations are still in flight when it returns, and
// whether the body contains an internal happens-before barrier.
// Summaries are computed to a fixed point within the package (so
// helper-calls-helper chains resolve at any depth) and exchanged
// across packages as JSON object facts through framework.FactStore.
//
// Two function classes are deliberately excluded from inference:
// fact-table methods (the curated facts are the ground truth for the
// table API itself) and functions that bracket their operations with
// the runtime guards (core.PhaseGuard.Enter/EnterExclusive,
// rooms.Rooms.Enter/EnterCtx) — those are runtime-checked, exactly like the
// Checked* wrappers' deliberate absence from the fact table.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"phasehash/internal/analysis/framework"
)

// effectOp is one table operation a function performs on a table its
// caller can name. Slot 0 is the receiver when the function is a
// method, parameters follow left to right; Slot -1 with Global set
// names a package-level table ("pkgpath.Var").
type effectOp struct {
	Slot    int    `json:"slot"`
	Global  string `json:"global,omitempty"`
	Path    string `json:"path,omitempty"` // selector/index path below the slot
	PhaseID uint8  `json:"phase"`
	Capture bool   `json:"capture,omitempty"`
	// Async: the operation is still in flight when the function
	// returns (issued in a go statement with no subsequent barrier).
	Async bool `json:"async,omitempty"`
	// AfterBarrier: the operation is sequenced after an internal
	// barrier, so it cannot overlap work in flight before the call.
	AfterBarrier bool   `json:"afterBarrier,omitempty"`
	TypeName     string `json:"type"`
	Method       string `json:"method"`
	Via          string `json:"via,omitempty"` // nested helper chain
}

// funcEffect is the phase summary of one function.
type funcEffect struct {
	Ops []effectOp `json:"ops,omitempty"`
	// Barrier: the body establishes a happens-before barrier
	// (wg.Wait, channel receive, parallel call returning), which
	// drains the caller's in-flight phases exactly as a direct
	// barrier would under the receiver-blind barrier model.
	Barrier bool `json:"barrier,omitempty"`
}

func opKeyString(e effectOp) string {
	return fmt.Sprintf("%d|%s|%s|%d|%t|%t|%t|%s|%s|%s",
		e.Slot, e.Global, e.Path, e.PhaseID, e.Capture, e.Async, e.AfterBarrier, e.TypeName, e.Method, e.Via)
}

func (e *funcEffect) key() string {
	if e == nil {
		return ""
	}
	keys := make([]string, len(e.Ops))
	for i, op := range e.Ops {
		keys[i] = opKeyString(op)
	}
	sort.Strings(keys)
	return fmt.Sprintf("barrier=%t;%s", e.Barrier, strings.Join(keys, ";"))
}

// maxPathDepth bounds selector/index chains in effect paths so
// recursive structures cannot grow summaries without bound.
const maxPathDepth = 4

func pathDepth(path string) int {
	return strings.Count(path, ".") + strings.Count(path, "[")
}

// maxRounds bounds the intra-package fixpoint; summaries converge in
// a handful of rounds, and the cap guarantees termination even for
// pathological mutual recursion.
const maxRounds = 16

// inferDecl is one function declaration under inference.
type inferDecl struct {
	fn   *types.Func
	decl *ast.FuncDecl
	ann  *annotations
}

type inference struct {
	pass  *Pass
	decls []inferDecl
	// effects holds the current summary per package function; absent
	// means no visible effect.
	effects map[*types.Func]*funcEffect
	// imported caches fact lookups for other packages' functions
	// (including negative results).
	imported map[*types.Func]*funcEffect
}

func newInference(pass *Pass) *inference {
	inf := &inference{
		pass:     pass,
		effects:  map[*types.Func]*funcEffect{},
		imported: map[*types.Func]*funcEffect{},
	}
	for _, f := range pass.Files {
		ann := collectAnnotations(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if _, _, classified := classify(fn); classified {
				continue // the fact table is the ground truth here
			}
			if guarded(pass.TypesInfo, fd) {
				continue // runtime-checked, like the Checked* wrappers
			}
			inf.decls = append(inf.decls, inferDecl{fn: fn, decl: fd, ann: ann})
		}
	}
	return inf
}

// solve computes summaries to a fixed point.
func (inf *inference) solve() {
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, d := range inf.decls {
			eff := inf.compute(d)
			if eff.key() != inf.effects[d.fn].key() {
				inf.effects[d.fn] = eff
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// compute summarizes one function body by replaying it through the
// checker in silent+collect mode and translating the materialized
// operations into caller-visible effect entries.
func (inf *inference) compute(d inferDecl) *funcEffect {
	slots := slotObjects(d.decl, inf.pass.TypesInfo)
	var noted []notedOp
	c := newChecker(inf.pass, d.ann, inf)
	c.silent = true
	c.collect = &noted
	c.walkBody(d.decl.Body)

	eff := &funcEffect{Barrier: c.clears > 0}
	seen := map[string]bool{}
	for _, n := range noted {
		op := n.op
		e := effectOp{
			Path:     op.ref.path,
			PhaseID:  uint8(op.fact.phase),
			Capture:  op.fact.capture,
			TypeName: op.typeName,
			Method:   op.method,
			Via:      op.via,
		}
		switch {
		case op.ref.global != "":
			e.Slot = -1
			e.Global = op.ref.global
		default:
			s, ok := slots[op.ref.root]
			if !ok {
				continue // local table: invisible to callers
			}
			e.Slot = s
		}
		if pathDepth(e.Path) > maxPathDepth {
			continue
		}
		e.Async = c.stillInFlight(op)
		e.AfterBarrier = n.clears > 0
		k := opKeyString(e)
		if seen[k] {
			continue
		}
		seen[k] = true
		eff.Ops = append(eff.Ops, e)
	}
	sort.Slice(eff.Ops, func(i, j int) bool {
		return opKeyString(eff.Ops[i]) < opKeyString(eff.Ops[j])
	})
	return eff
}

// stillInFlight reports whether an operation's (receiver, phase) pair
// is still in the checker's in-flight set at the end of the body —
// i.e. some goroutine performing it may outlive the function.
func (c *checker) stillInFlight(op opInfo) bool {
	_, ok := c.inflight[op.ref.key][op.fact.phase]
	return ok
}

// effectOf returns the current summary for a function: the in-package
// fixpoint state for functions of this package, or an imported object
// fact for functions of other packages (nil without a fact store).
func (inf *inference) effectOf(fn *types.Func) *funcEffect {
	if fn == nil {
		return nil
	}
	if fn.Pkg() == inf.pass.Pkg {
		return inf.effects[fn]
	}
	if eff, ok := inf.imported[fn]; ok {
		return eff
	}
	var eff *funcEffect
	if inf.pass.Facts != nil && fn.Pkg() != nil {
		if key, ok := framework.ObjKey(fn); ok {
			if data, ok := inf.pass.Facts.ImportFact("phasevet", normalizePkgPath(fn.Pkg().Path()), key); ok {
				var decoded funcEffect
				if json.Unmarshal(data, &decoded) == nil {
					eff = &decoded
				}
			}
		}
	}
	inf.imported[fn] = eff
	return eff
}

// export publishes every non-empty summary as an object fact so
// dependent packages see through this package's helpers.
func (inf *inference) export() {
	if inf.pass.Facts == nil {
		return
	}
	pkgPath := normalizePkgPath(inf.pass.Pkg.Path())
	for _, d := range inf.decls {
		eff := inf.effects[d.fn]
		if eff == nil || (len(eff.Ops) == 0 && !eff.Barrier) {
			continue
		}
		key, ok := framework.ObjKey(d.fn)
		if !ok {
			continue
		}
		data, err := json.Marshal(eff)
		if err != nil {
			continue
		}
		inf.pass.Facts.ExportFact("phasevet", pkgPath, key, data)
	}
}

// slotObjects maps a declaration's receiver and parameter objects to
// effect slot numbers: receiver (if any) is slot 0, parameters follow
// left to right; unnamed and blank parameters still consume slots.
func slotObjects(decl *ast.FuncDecl, info *types.Info) map[types.Object]int {
	slots := map[types.Object]int{}
	n := 0
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					slots[obj] = 0
				}
			}
		}
		n = 1
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			if len(f.Names) == 0 {
				n++
				continue
			}
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					slots[obj] = n
				}
				n++
			}
		}
	}
	return slots
}

// guarded reports whether a body calls one of the runtime phase
// guards; such functions are runtime-checked and excluded from
// inference (flagging them statically would double-report what the
// guard already enforces dynamically, with its richer context).
func guarded(info *types.Info, decl *ast.FuncDecl) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
		if !ok {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			return true
		}
		rt := sig.Recv().Type()
		if p, isPtr := rt.(*types.Pointer); isPtr {
			rt = p.Elem()
		}
		named, isNamed := rt.(*types.Named)
		if !isNamed || named.Obj().Pkg() == nil {
			return true
		}
		pkg := normalizePkgPath(named.Obj().Pkg().Path())
		typ := named.Obj().Name()
		switch {
		case pkg == "phasehash/internal/core" && typ == "PhaseGuard" &&
			(fn.Name() == "Enter" || fn.Name() == "EnterExclusive"):
			found = true
		case pkg == "phasehash/internal/rooms" && typ == "Rooms" &&
			(fn.Name() == "Enter" || fn.Name() == "EnterCtx"):
			found = true
		}
		return !found
	})
	return found
}
