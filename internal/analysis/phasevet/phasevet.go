package phasevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// PhaseVet is the phase-discipline analyzer.
var PhaseVet = &Analyzer{
	Name: "phasevet",
	Doc: `report phase-discipline violations on phasehash tables

The phase-concurrent contract requires that insert, delete and read
operations on the same table never overlap in time unless they belong
to the same phase. phasevet tracks, within each function body, which
phases may still be in flight on each table — operations issued in go
statements stay in flight until a barrier (sync.WaitGroup.Wait, a
channel receive, a parallel.For/Do call returning, a select statement,
or an explicit //phasehash:barrier comment) — and reports:

  mixedphases:  an operation that may overlap in-flight operations of
                a different phase on the same table
  gomix:        a raw (non-Checked) table operation inside a go
                statement or parallel closure that conflicts with the
                enclosing scope's in-flight or sibling operations
  readcapture:  an Elements/Count/Entries result captured while an
                insert or delete phase is still in flight

A //phasehash:ignore comment on the operation's line suppresses the
diagnostic.`,
	Run: run,
}

func run(pass *Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ann := collectAnnotations(pass.Fset, f)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				newChecker(pass, ann).walkBody(fd.Body)
			}
		}
	}
	return nil, nil
}

// CountTableOps reports how many phase-classified table operation
// call sites appear in the package. The repo self-audit test uses it
// to prove the fact table engages on real code — a clean analyzer run
// over a package with zero classified sites would be vacuous.
func CountTableOps(pass *Pass) int {
	n := 0
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); ok {
				if _, _, ok := classify(fn); ok {
					n++
				}
			}
			return true
		})
	}
	return n
}

// annotations holds the //phasehash:barrier positions (sorted) and
// //phasehash:ignore line numbers of one file.
type annotations struct {
	barriers []token.Pos
	ignores  map[int]bool
}

func collectAnnotations(fset *token.FileSet, f *ast.File) *annotations {
	ann := &annotations{ignores: map[int]bool{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			switch c.Text {
			case "//phasehash:barrier":
				ann.barriers = append(ann.barriers, c.End())
			case "//phasehash:ignore":
				ann.ignores[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	sort.Slice(ann.barriers, func(i, j int) bool { return ann.barriers[i] < ann.barriers[j] })
	return ann
}

// opInfo is one classified table operation site.
type opInfo struct {
	recvKey  string // stable identity of the receiver expression
	recvText string // receiver as written, for diagnostics
	typeName string // "phasehash.Set" etc.
	method   string
	fact     methodFact
	pos      token.Pos
}

// flight records the first operation of a phase still in flight on a
// receiver.
type flight struct {
	pos    token.Pos
	method string
}

// opContext says where an operation site occurs.
type opContext int

const (
	ctxSync     opContext = iota // plain synchronous call
	ctxGo                        // inside a go statement
	ctxParallel                  // inside a parallel.For/Do closure
)

type checker struct {
	pass *Pass
	ann  *annotations
	// inflight maps receiver key -> phase -> first in-flight op.
	inflight map[string]map[Phase]flight
	// barrierMark is the highest position up to which barrier comments
	// have been consumed.
	barrierMark token.Pos
}

func newChecker(pass *Pass, ann *annotations) *checker {
	return &checker{pass: pass, ann: ann, inflight: map[string]map[Phase]flight{}}
}

func (c *checker) walkBody(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *checker) clearInflight() {
	if len(c.inflight) > 0 {
		c.inflight = map[string]map[Phase]flight{}
	}
}

// crossBarrierComments clears in-flight state if a //phasehash:barrier
// comment lies between the last visited position and pos.
func (c *checker) crossBarrierComments(pos token.Pos) {
	if pos <= c.barrierMark {
		return
	}
	i := sort.Search(len(c.ann.barriers), func(i int) bool { return c.ann.barriers[i] > c.barrierMark })
	if i < len(c.ann.barriers) && c.ann.barriers[i] < pos {
		c.clearInflight()
	}
	c.barrierMark = pos
}

func (c *checker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	c.crossBarrierComments(s.Pos())
	switch st := s.(type) {
	case *ast.BlockStmt:
		c.walkBody(st)
	case *ast.ExprStmt:
		c.expr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			c.expr(e)
		}
		for _, e := range st.Lhs {
			c.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.GoStmt:
		c.goStmt(st)
	case *ast.DeferStmt:
		// Deferred work runs at return; analyze closures on their own
		// but do not fold their operations into this scope's order.
		for _, arg := range st.Call.Args {
			c.expr(arg)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.separateContext(fl)
		}
	case *ast.IfStmt:
		c.stmt(st.Init)
		c.expr(st.Cond)
		c.stmt(st.Body)
		c.stmt(st.Else)
	case *ast.ForStmt:
		c.stmt(st.Init)
		c.expr(st.Cond)
		c.stmt(st.Body)
		c.stmt(st.Post)
	case *ast.RangeStmt:
		if t := c.pass.TypesInfo.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				// Each iteration receives from the channel: barrier.
				c.clearInflight()
			}
		}
		c.expr(st.X)
		c.stmt(st.Body)
	case *ast.SwitchStmt:
		c.stmt(st.Init)
		c.expr(st.Tag)
		c.stmt(st.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(st.Init)
		c.stmt(st.Assign)
		c.stmt(st.Body)
	case *ast.SelectStmt:
		// A select completes a communication: barrier.
		c.clearInflight()
		c.stmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			c.expr(e)
		}
		for _, s2 := range st.Body {
			c.stmt(s2)
		}
	case *ast.CommClause:
		c.stmt(st.Comm)
		for _, s2 := range st.Body {
			c.stmt(s2)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			c.expr(e)
		}
	case *ast.SendStmt:
		c.expr(st.Chan)
		c.expr(st.Value)
	case *ast.IncDecStmt:
		c.expr(st.X)
	case *ast.LabeledStmt:
		c.stmt(st.Stmt)
	}
}

// expr scans an expression in approximate evaluation order, handling
// table operations, barriers, parallel-runtime calls and closures.
func (c *checker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	sawReceive := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.FuncLit:
			// A closure not consumed by a recognized concurrency
			// primitive: analyze its body as its own sequential scope.
			c.separateContext(nd)
			return false
		case *ast.CallExpr:
			return !c.call(nd)
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				sawReceive = true
			}
		}
		return true
	})
	if sawReceive {
		c.clearInflight()
	}
}

// call handles one call expression. It returns true if the call (and
// its arguments) were fully handled and the walker must not descend.
func (c *checker) call(call *ast.CallExpr) bool {
	switch kind, _ := c.calleeKind(call); kind {
	case calleeParallelLoop:
		c.parallelLoop(call)
		return true
	case calleeParallelDo:
		c.parallelDo(call)
		return true
	case calleeWait:
		c.clearInflight()
		return true
	case calleeTableOp:
		for _, arg := range call.Args {
			c.expr(arg)
		}
		if op, ok := c.opAt(call); ok {
			c.checkOp(op, ctxSync)
		}
		return true
	}
	return false
}

type calleeKind int

const (
	calleeOther calleeKind = iota
	calleeParallelLoop
	calleeParallelDo
	calleeWait
	calleeTableOp
)

const parallelPkg = "phasehash/internal/parallel"

// calleeKind classifies the function being called.
func (c *checker) calleeKind(call *ast.CallExpr) (calleeKind, *types.Func) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.ObjectOf(fun.Sel)
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = c.pass.TypesInfo.ObjectOf(id)
		} else if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			obj = c.pass.TypesInfo.ObjectOf(sel.Sel)
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return calleeOther, nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, isPtr := rt.(*types.Pointer); isPtr {
			rt = p.Elem()
		}
		if named, isNamed := rt.(*types.Named); isNamed {
			o := named.Obj()
			if fn.Name() == "Wait" && o.Pkg() != nil && o.Pkg().Path() == "sync" && o.Name() == "WaitGroup" {
				return calleeWait, fn
			}
		}
		if _, _, ok := classify(fn); ok {
			return calleeTableOp, fn
		}
		return calleeOther, fn
	}
	if fn.Pkg() != nil && normalizePkgPath(fn.Pkg().Path()) == parallelPkg {
		switch fn.Name() {
		case "For", "ForGrain", "ForBlocked", "Reduce", "Sum":
			return calleeParallelLoop, fn
		case "Do":
			return calleeParallelDo, fn
		}
	}
	return calleeOther, fn
}

// opAt builds the opInfo for a classified table-operation call site,
// or ok=false when the receiver cannot be tracked.
func (c *checker) opAt(call *ast.CallExpr) (opInfo, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opInfo{}, false
	}
	fn, ok := c.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return opInfo{}, false
	}
	typeName, fact, ok := classify(fn)
	if !ok {
		return opInfo{}, false
	}
	key, ok := c.recvKey(sel.X)
	if !ok {
		return opInfo{}, false
	}
	return opInfo{
		recvKey:  key,
		recvText: types.ExprString(sel.X),
		typeName: typeName,
		method:   fn.Name(),
		fact:     fact,
		pos:      call.Pos(),
	}, true
}

// recvKey computes a stable identity for a receiver expression within
// this function: the declaring object for the root, plus the selector
// and index path as written.
func (c *checker) recvKey(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.ObjectOf(x)
		if obj == nil {
			return "", false
		}
		return obj.Name() + "@" + strconv.Itoa(int(obj.Pos())), true
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := c.pass.TypesInfo.ObjectOf(id).(*types.PkgName); isPkg {
				obj := c.pass.TypesInfo.ObjectOf(x.Sel)
				if obj == nil {
					return "", false
				}
				return obj.Name() + "@" + strconv.Itoa(int(obj.Pos())), true
			}
		}
		base, ok := c.recvKey(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := c.recvKey(x.X)
		if !ok {
			return "", false
		}
		return base + "[" + types.ExprString(x.Index) + "]", true
	case *ast.StarExpr:
		return c.recvKey(x.X)
	case *ast.ParenExpr:
		return c.recvKey(x.X)
	}
	return "", false
}

// goStmt handles `go f(...)`: every table operation reachable in the
// spawned call stays in flight until the next barrier.
func (c *checker) goStmt(g *ast.GoStmt) {
	var ops []opInfo
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ops = c.collectOps(fl.Body)
		// The body also gets its own sequential analysis, so internal
		// go statements and parallel closures are checked there.
		c.separateContext(fl)
	} else if op, ok := c.opAt(g.Call); ok {
		ops = []opInfo{op}
	}
	for _, arg := range g.Call.Args {
		c.expr(arg)
	}
	// Check all spawned ops against the phases already in flight, then
	// record them; operations within one goroutine are sequential with
	// each other and must not be cross-flagged here.
	for _, op := range ops {
		c.checkOp(op, ctxGo)
	}
	for _, op := range ops {
		c.addInflight(op)
	}
}

// parallelLoop handles parallel.For/ForGrain/ForBlocked/Reduce/Sum:
// the closure body runs concurrently with itself, and the call's
// return is a happens-before barrier.
func (c *checker) parallelLoop(call *ast.CallExpr) {
	for _, arg := range call.Args {
		fl, ok := arg.(*ast.FuncLit)
		if !ok {
			c.expr(arg)
			continue
		}
		ops := c.collectOps(fl.Body)
		seen := map[string]opInfo{}
		for _, op := range ops {
			c.checkOp(op, ctxParallel)
			k := op.recvKey + "#" + op.fact.phase.String()
			if _, dup := seen[k]; dup {
				continue
			}
			for _, prev := range seenPhases(seen, op.recvKey) {
				if prev.fact.phase != op.fact.phase {
					c.reportClosureMix(op, prev)
					break
				}
			}
			seen[k] = op
		}
		c.separateContext(fl)
	}
	c.clearInflight()
}

func seenPhases(seen map[string]opInfo, recvKey string) []opInfo {
	var out []opInfo
	for _, p := range []Phase{PhaseInsert, PhaseDelete, PhaseRead} {
		if op, ok := seen[recvKey+"#"+p.String()]; ok {
			out = append(out, op)
		}
	}
	return out
}

// parallelDo handles parallel.Do(f, g, ...): the closures run
// concurrently with each other (but each runs once), and the call's
// return is a barrier.
func (c *checker) parallelDo(call *ast.CallExpr) {
	type sibling struct {
		ops []opInfo
	}
	var sibs []sibling
	for _, arg := range call.Args {
		fl, ok := arg.(*ast.FuncLit)
		if !ok {
			c.expr(arg)
			continue
		}
		ops := c.collectOps(fl.Body)
		for _, op := range ops {
			c.checkOp(op, ctxParallel)
		}
		c.separateContext(fl)
		sibs = append(sibs, sibling{ops: ops})
	}
	// Cross-check siblings: different phases on the same receiver in
	// two concurrently-running closures conflict.
	for i := 1; i < len(sibs); i++ {
		for _, op := range sibs[i].ops {
			for j := 0; j < i; j++ {
				for _, prev := range sibs[j].ops {
					if prev.recvKey == op.recvKey && prev.fact.phase != op.fact.phase {
						c.reportClosureMix(op, prev)
						j = i
						break
					}
				}
			}
		}
	}
	c.clearInflight()
}

// collectOps gathers every classified table operation syntactically
// reachable in node, including inside nested closures — used for code
// that will run concurrently, where internal sequencing cannot order
// operations against other instances of the same closure.
func (c *checker) collectOps(node ast.Node) []opInfo {
	var ops []opInfo
	ast.Inspect(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := c.opAt(call); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

// separateContext analyzes a closure body as its own sequential scope
// with fresh in-flight state.
func (c *checker) separateContext(fl *ast.FuncLit) {
	sub := newChecker(c.pass, c.ann)
	sub.barrierMark = c.barrierMark
	sub.walkBody(fl.Body)
}

func (c *checker) addInflight(op opInfo) {
	m := c.inflight[op.recvKey]
	if m == nil {
		m = map[Phase]flight{}
		c.inflight[op.recvKey] = m
	}
	if _, ok := m[op.fact.phase]; !ok {
		m[op.fact.phase] = flight{pos: op.pos, method: op.method}
	}
}

// checkOp reports a conflict if op's phase differs from any phase in
// flight on the same receiver.
func (c *checker) checkOp(op opInfo, ctx opContext) {
	if c.ann.ignores[c.line(op.pos)] {
		return
	}
	m := c.inflight[op.recvKey]
	for _, ph := range []Phase{PhaseInsert, PhaseDelete, PhaseRead} {
		fl, ok := m[ph]
		if !ok || ph == op.fact.phase {
			continue
		}
		c.reportConflict(op, ph, fl, ctx)
		return
	}
}

func (c *checker) line(p token.Pos) int { return c.pass.Fset.Position(p).Line }

func (c *checker) reportConflict(op opInfo, inFlight Phase, fl flight, ctx opContext) {
	writeInFlight := inFlight == PhaseInsert || inFlight == PhaseDelete
	switch {
	case op.fact.capture && writeInFlight:
		c.pass.Reportf(op.pos, "readcapture",
			"phase violation: %s.%s result on %s captured while %s-phase operations started at line %d may still be in flight; wait for the phase to drain (sync.WaitGroup.Wait, channel receive, or //phasehash:barrier) before reading",
			op.typeName, op.method, op.recvText, inFlight, c.line(fl.pos))
	case ctx != ctxSync:
		c.pass.Reportf(op.pos, "gomix",
			"phase violation: raw %s.%s (%s phase) on %s inside a goroutine or parallel closure may overlap %s-phase operations started at line %d; separate the phases with a barrier or wrap the table with %s",
			op.typeName, op.method, op.fact.phase, op.recvText, inFlight, c.line(fl.pos), wrapperFor(op.typeName))
	default:
		c.pass.Reportf(op.pos, "mixedphases",
			"phase violation: %s.%s (%s phase) on %s may overlap %s-phase operations started at line %d with no intervening barrier; add sync.WaitGroup.Wait, a channel receive, or //phasehash:barrier, or wrap the table with %s",
			op.typeName, op.method, op.fact.phase, op.recvText, inFlight, c.line(fl.pos), wrapperFor(op.typeName))
	}
}

func (c *checker) reportClosureMix(op opInfo, prev opInfo) {
	if c.ann.ignores[c.line(op.pos)] {
		return
	}
	c.pass.Reportf(op.pos, "gomix",
		"phase violation: parallel closure mixes %s-phase %s.%s with %s-phase %s (line %d) on %s; concurrent iterations will overlap the two phases — split the loop or wrap the table with %s",
		op.fact.phase, op.typeName, op.method, prev.fact.phase, prev.method, c.line(prev.pos), op.recvText, wrapperFor(op.typeName))
}
