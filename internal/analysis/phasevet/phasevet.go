package phasevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"phasehash/internal/analysis/framework"
)

// PhaseVet is the phase-discipline analyzer with interprocedural
// inference enabled (the default configuration the multichecker and
// go vet run).
var PhaseVet = NewAnalyzer(true)

const doc = `report phase-discipline violations on phasehash tables

The phase-concurrent contract requires that insert, delete and read
operations on the same table never overlap in time unless they belong
to the same phase. phasevet tracks, within each function body, which
phases may still be in flight on each table — operations issued in go
statements stay in flight until a barrier (sync.WaitGroup.Wait, a
channel receive, a parallel.For/Do call returning, a select statement,
or an explicit //phasehash:barrier comment) — and reports:

  mixedphases:  an operation that may overlap in-flight operations of
                a different phase on the same table
  gomix:        a raw (non-Checked) table operation inside a go
                statement or parallel closure that conflicts with the
                enclosing scope's in-flight or sibling operations
  readcapture:  an Elements/Count/Entries result captured while an
                insert or delete phase is still in flight

The analysis is interprocedural: a function that (transitively)
performs insert-phase table operations is itself an insert-phase
operation at its call sites, with summaries propagated across
packages as object facts. Functions guarded at runtime (PhaseGuard,
rooms) are exempt, like the Checked* wrappers.

A //phasehash:ignore comment on the operation's line suppresses the
diagnostic.`

// NewAnalyzer returns the phase-discipline analyzer. When
// interprocedural is false the analyzer behaves like phasevet 1.x:
// only fact-table methods are visible, and wrapper helpers are blind
// spots. That mode exists so tests can prove what inference adds.
func NewAnalyzer(interprocedural bool) *Analyzer {
	return &Analyzer{
		Name: "phasevet",
		Doc:  doc,
		Run: func(pass *Pass) (interface{}, error) {
			return run(pass, interprocedural)
		},
	}
}

func run(pass *Pass, interprocedural bool) (interface{}, error) {
	var inf *inference
	if interprocedural {
		inf = newInference(pass)
		inf.solve()
		inf.export()
	}
	for _, f := range pass.Files {
		ann := collectAnnotations(pass.Fset, f)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				newChecker(pass, ann, inf).walkBody(fd.Body)
			}
		}
	}
	return nil, nil
}

// CountTableOps reports how many phase-classified table operation
// call sites appear in the package, counting both fact-table methods
// and call sites of functions with interprocedurally-inferred phase
// effects. The repo self-audit test uses it to prove the analysis
// engages on real code — a clean analyzer run over a package with
// zero classified sites would be vacuous.
func CountTableOps(pass *Pass) int {
	inf := newInference(pass)
	inf.solve()
	n := 0
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolveCallee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if _, _, ok := classify(fn); ok {
				n++
			} else if eff := inf.effectOf(fn.Origin()); eff != nil && len(eff.Ops) > 0 {
				n++
			}
			return true
		})
	}
	return n
}

// annotations holds the //phasehash:barrier positions (sorted) and
// //phasehash:ignore line numbers of one file.
type annotations struct {
	barriers []token.Pos
	ignores  map[int]bool
}

func collectAnnotations(fset *token.FileSet, f *ast.File) *annotations {
	ann := &annotations{ignores: map[int]bool{}}
	for _, a := range framework.ScanAnnotations(fset, f) {
		switch a.Verb {
		case "barrier":
			ann.barriers = append(ann.barriers, a.End)
		case "ignore":
			ann.ignores[a.Line] = true
		}
	}
	sort.Slice(ann.barriers, func(i, j int) bool { return ann.barriers[i] < ann.barriers[j] })
	return ann
}

// recvRef identifies a table receiver expression: a stable in-function
// key, the declaring object of its root (nil for package-level vars,
// which get a cross-package "global:" key instead), and the
// selector/index path from that root.
type recvRef struct {
	key    string       // stable identity for in-flight tracking
	root   types.Object // root object; nil when global != ""
	global string       // "pkgpath.Var" for package-level roots
	path   string       // path from the root, e.g. ".set" or "[i]"
	text   string       // receiver as written, for diagnostics
}

func (r recvRef) child(seg, text string) recvRef {
	r.key += seg
	r.path += seg
	r.text += text
	return r
}

// opInfo is one classified (or inferred) table operation site.
type opInfo struct {
	ref      recvRef
	typeName string // "phasehash.Set" etc.
	method   string
	via      string // inferred helper chain, "" for direct operations
	fact     methodFact
	pos      token.Pos
	// async marks an inferred operation still in flight when its
	// helper returns; afterBarrier marks one sequenced after an
	// internal happens-before barrier of its helper.
	async        bool
	afterBarrier bool
}

// label renders the operation for diagnostics, naming the helper chain
// for inferred operations.
func (op opInfo) label() string {
	if op.via == "" {
		return op.method
	}
	return op.method + " via " + op.via
}

// flight records the first operation of a phase still in flight on a
// receiver.
type flight struct {
	pos    token.Pos
	method string
}

// opContext says where an operation site occurs.
type opContext int

const (
	ctxSync     opContext = iota // plain synchronous call
	ctxGo                        // inside a go statement
	ctxParallel                  // inside a parallel.For/Do closure
)

// notedOp is one materialized operation with the number of barriers
// the walk had crossed when it was seen (summary computation input).
type notedOp struct {
	op     opInfo
	clears int
}

type checker struct {
	pass *Pass
	ann  *annotations
	inf  *inference // nil disables interprocedural lookups
	// inflight maps receiver key -> phase -> first in-flight op.
	inflight map[string]map[Phase]flight
	// barrierMark is the highest position up to which barrier comments
	// have been consumed.
	barrierMark token.Pos
	// clears counts barrier events (inflight resets) seen by this walk.
	clears int
	// silent suppresses diagnostics (used while computing summaries).
	silent bool
	// collect, when non-nil, receives every materialized operation.
	collect *[]notedOp
}

func newChecker(pass *Pass, ann *annotations, inf *inference) *checker {
	return &checker{pass: pass, ann: ann, inf: inf, inflight: map[string]map[Phase]flight{}}
}

func (c *checker) walkBody(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *checker) clearInflight() {
	c.clears++
	if len(c.inflight) > 0 {
		c.inflight = map[string]map[Phase]flight{}
	}
}

// crossBarrierComments clears in-flight state if a //phasehash:barrier
// comment lies between the last visited position and pos.
func (c *checker) crossBarrierComments(pos token.Pos) {
	if pos <= c.barrierMark {
		return
	}
	i := sort.Search(len(c.ann.barriers), func(i int) bool { return c.ann.barriers[i] > c.barrierMark })
	if i < len(c.ann.barriers) && c.ann.barriers[i] < pos {
		c.clearInflight()
	}
	c.barrierMark = pos
}

func (c *checker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	c.crossBarrierComments(s.Pos())
	switch st := s.(type) {
	case *ast.BlockStmt:
		c.walkBody(st)
	case *ast.ExprStmt:
		c.expr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			c.expr(e)
		}
		for _, e := range st.Lhs {
			c.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.GoStmt:
		c.goStmt(st)
	case *ast.DeferStmt:
		// Deferred work runs at return; analyze closures on their own
		// but do not fold their operations into this scope's order.
		for _, arg := range st.Call.Args {
			c.expr(arg)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.separateContext(fl)
		}
	case *ast.IfStmt:
		c.stmt(st.Init)
		c.expr(st.Cond)
		c.stmt(st.Body)
		c.stmt(st.Else)
	case *ast.ForStmt:
		c.stmt(st.Init)
		c.expr(st.Cond)
		c.stmt(st.Body)
		c.stmt(st.Post)
	case *ast.RangeStmt:
		if t := c.pass.TypesInfo.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				// Each iteration receives from the channel: barrier.
				c.clearInflight()
			}
		}
		c.expr(st.X)
		c.stmt(st.Body)
	case *ast.SwitchStmt:
		c.stmt(st.Init)
		c.expr(st.Tag)
		c.stmt(st.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(st.Init)
		c.stmt(st.Assign)
		c.stmt(st.Body)
	case *ast.SelectStmt:
		// A select completes a communication: barrier.
		c.clearInflight()
		c.stmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			c.expr(e)
		}
		for _, s2 := range st.Body {
			c.stmt(s2)
		}
	case *ast.CommClause:
		c.stmt(st.Comm)
		for _, s2 := range st.Body {
			c.stmt(s2)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			c.expr(e)
		}
	case *ast.SendStmt:
		c.expr(st.Chan)
		c.expr(st.Value)
	case *ast.IncDecStmt:
		c.expr(st.X)
	case *ast.LabeledStmt:
		c.stmt(st.Stmt)
	}
}

// expr scans an expression in approximate evaluation order, handling
// table operations, barriers, parallel-runtime calls and closures.
func (c *checker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	sawReceive := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.FuncLit:
			// A closure not consumed by a recognized concurrency
			// primitive: analyze its body as its own sequential scope.
			c.separateContext(nd)
			return false
		case *ast.CallExpr:
			return !c.call(nd)
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				sawReceive = true
			}
		}
		return true
	})
	if sawReceive {
		c.clearInflight()
	}
}

// call handles one call expression. It returns true if the call (and
// its arguments) were fully handled and the walker must not descend.
func (c *checker) call(call *ast.CallExpr) bool {
	kind, fn := c.calleeKind(call)
	switch kind {
	case calleeParallelLoop:
		c.parallelLoop(call)
		return true
	case calleeParallelDo:
		c.parallelDo(call)
		return true
	case calleeWait:
		c.clearInflight()
		return true
	case calleeTableOp:
		for _, arg := range call.Args {
			c.expr(arg)
		}
		if op, ok := c.opAt(call); ok {
			c.checkOp(op, ctxSync)
		}
		return true
	}
	if eff := c.effectFor(fn); eff != nil {
		for _, arg := range call.Args {
			c.expr(arg)
		}
		c.applyEffectCall(call, fn, eff)
		return true
	}
	return false
}

type calleeKind int

const (
	calleeOther calleeKind = iota
	calleeParallelLoop
	calleeParallelDo
	calleeWait
	calleeTableOp
)

const parallelPkg = "phasehash/internal/parallel"

// resolveCallee returns the *types.Func a call resolves to, or nil.
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(fun.Sel)
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = info.ObjectOf(id)
		} else if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			obj = info.ObjectOf(sel.Sel)
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// calleeKind classifies the function being called.
func (c *checker) calleeKind(call *ast.CallExpr) (calleeKind, *types.Func) {
	fn := resolveCallee(c.pass.TypesInfo, call)
	if fn == nil {
		return calleeOther, nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, isPtr := rt.(*types.Pointer); isPtr {
			rt = p.Elem()
		}
		if named, isNamed := rt.(*types.Named); isNamed {
			o := named.Obj()
			if fn.Name() == "Wait" && o.Pkg() != nil && o.Pkg().Path() == "sync" && o.Name() == "WaitGroup" {
				return calleeWait, fn
			}
		}
		if _, _, ok := classify(fn); ok {
			return calleeTableOp, fn
		}
		return calleeOther, fn
	}
	if fn.Pkg() != nil && normalizePkgPath(fn.Pkg().Path()) == parallelPkg {
		switch fn.Name() {
		case "For", "ForGrain", "ForBlocked", "Reduce", "Sum":
			return calleeParallelLoop, fn
		case "Do":
			return calleeParallelDo, fn
		}
	}
	return calleeOther, fn
}

// effectFor returns the inferred phase effect of a callee worth
// modelling at its call sites, or nil. The fact table always wins:
// classified methods are handled as direct table operations.
func (c *checker) effectFor(fn *types.Func) *funcEffect {
	if c.inf == nil || fn == nil {
		return nil
	}
	fn = fn.Origin()
	if _, _, ok := classify(fn); ok {
		return nil
	}
	eff := c.inf.effectOf(fn)
	if eff == nil || (len(eff.Ops) == 0 && !eff.Barrier) {
		return nil
	}
	return eff
}

// applyEffectCall models a synchronous call to a function with an
// inferred phase effect: operations the callee completes before any
// internal barrier are checked against the caller's in-flight phases,
// an internal barrier drains the caller's in-flight set (exactly as a
// direct wg.Wait would), and operations the callee leaves in flight
// at return join the caller's in-flight set.
func (c *checker) applyEffectCall(call *ast.CallExpr, fn *types.Func, eff *funcEffect) {
	ops := c.expandEffect(call, fn, eff)
	for _, op := range ops {
		if !op.afterBarrier {
			c.checkOp(op, ctxSync)
		}
	}
	if eff.Barrier {
		c.clearInflight()
	}
	for _, op := range ops {
		if op.afterBarrier {
			c.noteOp(op)
		}
	}
	for _, op := range ops {
		if op.async {
			c.addInflight(op)
		}
	}
}

// expandEffect maps a callee's effect entries onto the call site's
// receiver and argument expressions, producing the operations the
// call performs on tables the caller can name.
func (c *checker) expandEffect(call *ast.CallExpr, fn *types.Func, eff *funcEffect) []opInfo {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	var recvExpr ast.Expr
	recvOffset := 0
	if sig.Recv() != nil {
		recvOffset = 1
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			recvExpr = sel.X
		}
	}
	np := sig.Params().Len()
	exprsForSlot := func(slot int) []ast.Expr {
		if recvOffset == 1 && slot == 0 {
			if recvExpr == nil {
				return nil
			}
			return []ast.Expr{recvExpr}
		}
		pi := slot - recvOffset
		if pi < 0 || pi >= np {
			return nil
		}
		if sig.Variadic() && pi == np-1 {
			if len(call.Args) >= np {
				return call.Args[np-1:]
			}
			return nil
		}
		if pi < len(call.Args) {
			return []ast.Expr{call.Args[pi]}
		}
		return nil
	}
	via := fn.Name()
	var ops []opInfo
	add := func(ref recvRef, e effectOp) {
		v := via
		if e.Via != "" {
			v += " → …"
		}
		ops = append(ops, opInfo{
			ref:          ref,
			typeName:     e.TypeName,
			method:       e.Method,
			via:          v,
			fact:         methodFact{phase: Phase(e.PhaseID), capture: e.Capture},
			pos:          call.Pos(),
			async:        e.Async,
			afterBarrier: e.AfterBarrier,
		})
	}
	for _, e := range eff.Ops {
		if e.Global != "" {
			ref := recvRef{key: "global:" + e.Global + e.Path, global: e.Global, path: e.Path, text: e.Global + e.Path}
			add(ref, e)
			continue
		}
		for _, expr := range exprsForSlot(e.Slot) {
			ref, ok := c.recvRef(expr)
			if !ok {
				continue
			}
			add(ref.child(e.Path, e.Path), e)
		}
	}
	return ops
}

// opAt builds the opInfo for a classified table-operation call site,
// or ok=false when the receiver cannot be tracked.
func (c *checker) opAt(call *ast.CallExpr) (opInfo, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opInfo{}, false
	}
	fn, ok := c.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return opInfo{}, false
	}
	typeName, fact, ok := classify(fn)
	if !ok {
		return opInfo{}, false
	}
	ref, ok := c.recvRef(sel.X)
	if !ok {
		return opInfo{}, false
	}
	return opInfo{
		ref:      ref,
		typeName: typeName,
		method:   fn.Name(),
		fact:     fact,
		pos:      call.Pos(),
	}, true
}

// siteOps returns the operations a call expression performs: the
// classified operation itself, or the expansion of the callee's
// inferred effect.
func (c *checker) siteOps(call *ast.CallExpr) []opInfo {
	if op, ok := c.opAt(call); ok {
		return []opInfo{op}
	}
	kind, fn := c.calleeKind(call)
	if kind != calleeOther {
		return nil
	}
	if eff := c.effectFor(fn); eff != nil {
		return c.expandEffect(call, fn, eff)
	}
	return nil
}

// recvRef computes a stable identity for a receiver expression within
// this function: the declaring object for the root (or a cross-package
// "global:" key for package-level variables), plus the selector and
// index path as written.
func (c *checker) recvRef(e ast.Expr) (recvRef, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.ObjectOf(x)
		if obj == nil {
			return recvRef{}, false
		}
		if g, ok := globalKey(obj); ok {
			return recvRef{key: "global:" + g, global: g, text: x.Name}, true
		}
		return recvRef{key: obj.Name() + "@" + strconv.Itoa(int(obj.Pos())), root: obj, text: x.Name}, true
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := c.pass.TypesInfo.ObjectOf(id).(*types.PkgName); isPkg {
				obj := c.pass.TypesInfo.ObjectOf(x.Sel)
				if obj == nil {
					return recvRef{}, false
				}
				if g, ok := globalKey(obj); ok {
					return recvRef{key: "global:" + g, global: g, text: types.ExprString(x)}, true
				}
				return recvRef{key: obj.Name() + "@" + strconv.Itoa(int(obj.Pos())), root: obj, text: types.ExprString(x)}, true
			}
		}
		base, ok := c.recvRef(x.X)
		if !ok {
			return recvRef{}, false
		}
		return base.child("."+x.Sel.Name, "."+x.Sel.Name), true
	case *ast.IndexExpr:
		base, ok := c.recvRef(x.X)
		if !ok {
			return recvRef{}, false
		}
		seg := "[" + types.ExprString(x.Index) + "]"
		return base.child(seg, seg), true
	case *ast.StarExpr:
		return c.recvRef(x.X)
	case *ast.ParenExpr:
		return c.recvRef(x.X)
	}
	return recvRef{}, false
}

// globalKey returns the cross-package identity of a package-level
// variable, or ok=false for any other object.
func globalKey(obj types.Object) (string, bool) {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	return normalizePkgPath(v.Pkg().Path()) + "." + v.Name(), true
}

// goStmt handles `go f(...)`: every table operation reachable in the
// spawned call — directly, in a closure body, or through a callee's
// inferred effect — stays in flight until the next barrier.
func (c *checker) goStmt(g *ast.GoStmt) {
	var ops []opInfo
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ops = c.collectOps(fl.Body)
		// The body also gets its own sequential analysis, so internal
		// go statements and parallel closures are checked there.
		c.separateContext(fl)
	} else {
		ops = c.siteOps(g.Call)
	}
	for _, arg := range g.Call.Args {
		c.expr(arg)
	}
	// Check all spawned ops against the phases already in flight, then
	// record them; operations within one goroutine are sequential with
	// each other and must not be cross-flagged here.
	for _, op := range ops {
		c.checkOp(op, ctxGo)
	}
	for _, op := range ops {
		c.addInflight(op)
	}
}

// parallelLoop handles parallel.For/ForGrain/ForBlocked/Reduce/Sum:
// the closure body runs concurrently with itself, and the call's
// return is a happens-before barrier.
func (c *checker) parallelLoop(call *ast.CallExpr) {
	for _, arg := range call.Args {
		fl, ok := arg.(*ast.FuncLit)
		if !ok {
			c.expr(arg)
			continue
		}
		ops := c.collectOps(fl.Body)
		seen := map[string]opInfo{}
		for _, op := range ops {
			c.checkOp(op, ctxParallel)
			k := op.ref.key + "#" + op.fact.phase.String()
			if _, dup := seen[k]; dup {
				continue
			}
			for _, prev := range seenPhases(seen, op.ref.key) {
				if prev.fact.phase != op.fact.phase {
					c.reportClosureMix(op, prev)
					break
				}
			}
			seen[k] = op
		}
		c.separateContext(fl)
	}
	c.clearInflight()
}

func seenPhases(seen map[string]opInfo, recvKey string) []opInfo {
	var out []opInfo
	for _, p := range []Phase{PhaseInsert, PhaseDelete, PhaseRead} {
		if op, ok := seen[recvKey+"#"+p.String()]; ok {
			out = append(out, op)
		}
	}
	return out
}

// parallelDo handles parallel.Do(f, g, ...): the closures run
// concurrently with each other (but each runs once), and the call's
// return is a barrier.
func (c *checker) parallelDo(call *ast.CallExpr) {
	type sibling struct {
		ops []opInfo
	}
	var sibs []sibling
	for _, arg := range call.Args {
		fl, ok := arg.(*ast.FuncLit)
		if !ok {
			c.expr(arg)
			continue
		}
		ops := c.collectOps(fl.Body)
		for _, op := range ops {
			c.checkOp(op, ctxParallel)
		}
		c.separateContext(fl)
		sibs = append(sibs, sibling{ops: ops})
	}
	// Cross-check siblings: different phases on the same receiver in
	// two concurrently-running closures conflict.
	for i := 1; i < len(sibs); i++ {
		for _, op := range sibs[i].ops {
			for j := 0; j < i; j++ {
				for _, prev := range sibs[j].ops {
					if prev.ref.key == op.ref.key && prev.fact.phase != op.fact.phase {
						c.reportClosureMix(op, prev)
						j = i
						break
					}
				}
			}
		}
	}
	c.clearInflight()
}

// collectOps gathers every classified or inferred table operation
// syntactically reachable in node, including inside nested closures —
// used for code that will run concurrently, where internal sequencing
// cannot order operations against other instances of the same closure
// (a callee's internal barrier cannot protect it either, so effect
// expansions count whole).
func (c *checker) collectOps(node ast.Node) []opInfo {
	var ops []opInfo
	ast.Inspect(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			ops = append(ops, c.siteOps(call)...)
		}
		return true
	})
	return ops
}

// separateContext analyzes a closure body as its own sequential scope
// with fresh in-flight state.
func (c *checker) separateContext(fl *ast.FuncLit) {
	sub := newChecker(c.pass, c.ann, c.inf)
	sub.barrierMark = c.barrierMark
	sub.silent = c.silent
	sub.walkBody(fl.Body)
}

func (c *checker) addInflight(op opInfo) {
	m := c.inflight[op.ref.key]
	if m == nil {
		m = map[Phase]flight{}
		c.inflight[op.ref.key] = m
	}
	if _, ok := m[op.fact.phase]; !ok {
		m[op.fact.phase] = flight{pos: op.pos, method: op.label()}
	}
}

// noteOp records a materialized operation for summary computation.
func (c *checker) noteOp(op opInfo) {
	if c.collect != nil {
		*c.collect = append(*c.collect, notedOp{op: op, clears: c.clears})
	}
}

// checkOp reports a conflict if op's phase differs from any phase in
// flight on the same receiver.
func (c *checker) checkOp(op opInfo, ctx opContext) {
	c.noteOp(op)
	if c.ann.ignores[c.line(op.pos)] {
		return
	}
	m := c.inflight[op.ref.key]
	for _, ph := range []Phase{PhaseInsert, PhaseDelete, PhaseRead} {
		fl, ok := m[ph]
		if !ok || ph == op.fact.phase {
			continue
		}
		c.reportConflict(op, ph, fl, ctx)
		return
	}
}

func (c *checker) line(p token.Pos) int { return c.pass.Fset.Position(p).Line }

func (c *checker) reportConflict(op opInfo, inFlight Phase, fl flight, ctx opContext) {
	if c.silent {
		return
	}
	writeInFlight := inFlight == PhaseInsert || inFlight == PhaseDelete
	switch {
	case op.fact.capture && writeInFlight:
		c.pass.Reportf(op.pos, "readcapture",
			"phase violation: %s.%s result on %s captured while %s-phase operations started at line %d may still be in flight; wait for the phase to drain (sync.WaitGroup.Wait, channel receive, or //phasehash:barrier) before reading",
			op.typeName, op.label(), op.ref.text, inFlight, c.line(fl.pos))
	case ctx != ctxSync:
		c.pass.Reportf(op.pos, "gomix",
			"phase violation: raw %s.%s (%s phase) on %s inside a goroutine or parallel closure may overlap %s-phase operations started at line %d; separate the phases with a barrier or wrap the table with %s",
			op.typeName, op.label(), op.fact.phase, op.ref.text, inFlight, c.line(fl.pos), wrapperFor(op.typeName))
	default:
		c.pass.Reportf(op.pos, "mixedphases",
			"phase violation: %s.%s (%s phase) on %s may overlap %s-phase operations started at line %d with no intervening barrier; add sync.WaitGroup.Wait, a channel receive, or //phasehash:barrier, or wrap the table with %s",
			op.typeName, op.label(), op.fact.phase, op.ref.text, inFlight, c.line(fl.pos), wrapperFor(op.typeName))
	}
}

func (c *checker) reportClosureMix(op opInfo, prev opInfo) {
	if c.silent || c.ann.ignores[c.line(op.pos)] {
		return
	}
	c.pass.Reportf(op.pos, "gomix",
		"phase violation: parallel closure mixes %s-phase %s.%s with %s-phase %s (line %d) on %s; concurrent iterations will overlap the two phases — split the loop or wrap the table with %s",
		op.fact.phase, op.typeName, op.label(), prev.fact.phase, prev.label(), c.line(prev.pos), op.ref.text, wrapperFor(op.typeName))
}
