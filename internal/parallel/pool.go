package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"phasehash/internal/atomicx"
	"phasehash/internal/chaos"
	"phasehash/internal/obs"
)

// This file is the persistent worker pool behind ForBlocked (and hence
// every loop in the package). The original runtime spawned up to 8*p
// goroutines per parallel call; for the phase workloads the library
// exists for — "insert n keys, barrier, find n keys", repeated every
// round of an iterative app like BFS — that spawn/wake cost is paid on
// every phase and dominates when frontiers are small. Instead, a
// lazily-started set of parked worker goroutines is woken with a job
// token; workers pull contiguous block ranges from the job's shared
// cursor until it is exhausted, then park again.
//
// Deadlock freedom under nesting: a job's completion is defined by its
// outstanding-*block* count reaching zero, not by any particular worker
// finishing. The dispatching goroutine always participates, so a job
// completes even if every pool worker is busy elsewhere (wake tokens
// are best-effort), and pool workers never block on a job — a worker
// that receives a token for an already-finished job just parks again.
// A body may therefore itself call into the parallel package freely.

// job is one ForBlocked dispatch: a blocked loop over [0, n) with the
// given grain. Workers race on cursor for block indexes; the last
// participant to finish a block closes done. The two hot words every
// participant hammers — cursor and remaining — are cache-line padded
// (internal/atomicx) so work distribution does not false-share.
type job struct {
	n, grain int
	nblocks  int
	body     func(lo, hi int)

	cursor    atomicx.PaddedInt64 // next block index to claim
	remaining atomicx.PaddedInt64 // blocks not yet completed
	done      chan struct{}       // closed when remaining hits zero
}

// run participates in the job until the block cursor is exhausted,
// returning the number of blocks this participant executed (used by the
// obs build to attribute work to workers; every participation ends with
// exactly one cursor draw past the last block, which the callers count
// as the cursor-miss gauge). It never blocks; pool workers call it and
// immediately park again, the dispatcher calls it and then waits on
// done.
func (j *job) run() int {
	if chaos.Enabled {
		chaos.SkewWorker(chaos.SiteParallelWorker)
	}
	claimed := 0
	for {
		b := int(j.cursor.Add(1)) - 1
		if b >= j.nblocks {
			return claimed
		}
		lo := b * j.grain
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.body(lo, hi)
		claimed++
		if j.remaining.Add(-1) == 0 {
			close(j.done)
		}
	}
}

// pool is the package-wide set of parked workers. Workers are started
// lazily as dispatches ask for them and never exit; a parked goroutine
// blocked on a channel receive costs only its (small) stack.
type pool struct {
	jobs    chan *job
	started atomic.Int64 // workers launched so far
	mu      sync.Mutex   // serializes launches
}

// tokenBuffer bounds the wake tokens outstanding across all concurrent
// dispatches. Sends are non-blocking: if the buffer is ever full the
// dispatcher simply keeps the work for itself and its current helpers.
const tokenBuffer = 1024

var workers = &pool{jobs: make(chan *job, tokenBuffer)}

// ensure launches workers until at least k exist.
func (p *pool) ensure(k int) {
	if int(p.started.Load()) >= k {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for int(p.started.Load()) < k {
		id := int(p.started.Load()) + 1
		go p.work(id)
		p.started.Add(1)
	}
}

// work is a pool worker's main loop: park on the token channel, help
// with the received job until its cursor is exhausted, park again. The
// worker index is known here for free, so the obs build attributes
// blocks per worker without any identity lookup; a wake that claims
// zero blocks is recorded as stale (the job drained before this worker
// got there).
func (p *pool) work(id int) {
	registerWorker(id)
	for j := range p.jobs {
		claimed := j.run()
		if obs.Enabled {
			obs.RecordWake(claimed == 0)
			obs.RecordCursorMiss(1)
			if claimed > 0 {
				obs.RecordWorkerBlocks(id, uint64(claimed))
			}
		}
	}
}

// dispatch hands j to up to helpers pool workers and participates until
// the job completes. Token sends are best-effort (see tokenBuffer).
// The dispatching goroutine's blocks are credited to worker index 0.
func (p *pool) dispatch(j *job, helpers int) {
	if obs.Enabled {
		obs.RecordDispatch(j.nblocks)
	}
	if obs.CoreEnabled {
		obs.CoreDispatch(j.nblocks, j.n)
	}
	p.ensure(helpers)
	for i := 0; i < helpers; i++ {
		select {
		case p.jobs <- j:
		default:
			// Token buffer full: enough wake-ups are already in
			// flight; the job still completes via its participants.
			i = helpers
		}
	}
	claimed := j.run()
	if obs.Enabled {
		obs.RecordCursorMiss(1)
		if claimed > 0 {
			obs.RecordWorkerBlocks(0, uint64(claimed))
		}
	}
	<-j.done
}

// workerIDs maps goroutine IDs of pool workers to their stable worker
// index. It is written once per worker lifetime (at launch) and read by
// WorkerID, so a sync.Map is uncontended after warm-up.
var workerIDs sync.Map // goroutine id (uint64) -> worker index (int)

func registerWorker(id int) {
	workerIDs.Store(goid(), id)
}

// WorkerID returns a stable small identifier for the calling goroutine:
// pool workers return their index in [1, MaxWorkerID()]; every other
// goroutine — including the one that dispatched the loop, which always
// participates — returns 0. Use it to index per-worker scratch inside
// loop bodies without false sharing (size the scratch with
// MaxWorkerID()+1 and pad the entries, e.g. with atomicx.PaddedCounter).
//
// The lookup parses the runtime's goroutine ID (~1µs): call it once per
// block from a ForBlocked body, never once per element.
func WorkerID() int {
	if v, ok := workerIDs.Load(goid()); ok {
		return v.(int)
	}
	return 0
}

// MaxWorkerID returns the largest WorkerID any goroutine can currently
// report: the number of pool workers started so far. The pool grows
// only when a dispatch requests more parallelism than ever before, so
// scratch sized MaxWorkerID()+1 immediately before a loop is safe for
// that loop unless SetNumWorkers is raised concurrently (don't).
func MaxWorkerID() int { return int(workers.started.Load()) }

// goid parses the calling goroutine's ID from runtime.Stack's header
// line ("goroutine 123 [running]:"). The stdlib exposes no cheaper
// portable accessor; see WorkerID for the cost contract.
func goid() uint64 {
	var buf [48]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
