package parallel

import (
	"testing"

	"phasehash/internal/hashx"
)

// refPartition is an independently written sequential stable reference:
// walk the buckets in order, and within each bucket walk the input in
// index order, appending matches.
func refPartition(src []uint64, nbuckets int, bucket func(i int) int) ([]uint64, []int) {
	dst := make([]uint64, 0, len(src))
	offsets := make([]int, nbuckets+1)
	for q := 0; q < nbuckets; q++ {
		offsets[q] = len(dst)
		for i := range src {
			if bucket(i) == q {
				dst = append(dst, src[i])
			}
		}
	}
	offsets[nbuckets] = len(dst)
	return dst, offsets
}

// partitionSizes are the satellite's edge sizes around the grain policy
// (minGrain and the 4*minGrain serial-fallback threshold), plus larger
// irregular sizes that exercise multi-block scatters.
var partitionSizes = []int{0, 1, 2, minGrain - 1, minGrain, minGrain + 1,
	4*minGrain - 1, 4 * minGrain, 4*minGrain + 1, 3*minGrain + 7, 10*minGrain + 13}

func partitionInput(n int, seed uint64) []uint64 {
	src := make([]uint64, n)
	for i := range src {
		src[i] = hashx.At(seed, i)
	}
	return src
}

// TestPartitionMatchesReference property-tests Partition against the
// sequential stable reference across worker counts 1..8, edge sizes and
// bucket counts (including nbuckets=1 and more buckets than elements).
func TestPartitionMatchesReference(t *testing.T) {
	defer SetNumWorkers(SetNumWorkers(0))
	for _, nbuckets := range []int{1, 2, 7, 16, 64} {
		for _, n := range partitionSizes {
			src := partitionInput(n, uint64(n)*31+uint64(nbuckets))
			bucket := func(i int) int { return int(src[i] % uint64(nbuckets)) }
			wantDst, wantOff := refPartition(src, nbuckets, bucket)
			for workers := 1; workers <= 8; workers++ {
				SetNumWorkers(workers)
				dst := make([]uint64, n)
				off := Partition(dst, src, nbuckets, bucket)
				if len(off) != nbuckets+1 {
					t.Fatalf("n=%d buckets=%d workers=%d: %d offsets, want %d", n, nbuckets, workers, len(off), nbuckets+1)
				}
				for q := range off {
					if off[q] != wantOff[q] {
						t.Fatalf("n=%d buckets=%d workers=%d: offsets[%d] = %d, want %d", n, nbuckets, workers, q, off[q], wantOff[q])
					}
				}
				for i := range dst {
					if dst[i] != wantDst[i] {
						t.Fatalf("n=%d buckets=%d workers=%d: dst[%d] = %#x, want %#x (stability violated)", n, nbuckets, workers, i, dst[i], wantDst[i])
					}
				}
			}
		}
	}
}

// TestPartitionDeterministic asserts byte-identical output across
// repeated runs at every worker count — the determinism contract the
// sharded table kernels inherit.
func TestPartitionDeterministic(t *testing.T) {
	defer SetNumWorkers(SetNumWorkers(0))
	const n, nbuckets = 5*minGrain + 3, 16
	src := partitionInput(n, 99)
	bucket := func(i int) int { return int(src[i] >> 60) }
	var ref []uint64
	var refOff []int
	for workers := 1; workers <= 8; workers++ {
		SetNumWorkers(workers)
		for rep := 0; rep < 3; rep++ {
			dst := make([]uint64, n)
			off := Partition(dst, src, nbuckets, bucket)
			if ref == nil {
				ref, refOff = dst, off
				continue
			}
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("workers=%d rep=%d: dst[%d] = %#x, want %#x", workers, rep, i, dst[i], ref[i])
				}
			}
			for q := range off {
				if off[q] != refOff[q] {
					t.Fatalf("workers=%d rep=%d: offsets[%d] = %d, want %d", workers, rep, q, off[q], refOff[q])
				}
			}
		}
	}
}

// TestPartitionIndexStablePermutation checks PartitionIndex returns the
// stable permutation: within each bucket, indices strictly increase, and
// applying the permutation reproduces Partition's output.
func TestPartitionIndexStablePermutation(t *testing.T) {
	defer SetNumWorkers(SetNumWorkers(0))
	const n, nbuckets = 4*minGrain + 1, 8
	src := partitionInput(n, 7)
	bucket := func(i int) int { return int(src[i] % nbuckets) }
	for _, workers := range []int{1, 2, 3, 8} {
		SetNumWorkers(workers)
		perm, off := PartitionIndex(n, nbuckets, bucket)
		if len(perm) != n || off[nbuckets] != n {
			t.Fatalf("workers=%d: perm len %d, total %d, want %d", workers, len(perm), off[nbuckets], n)
		}
		seen := make([]bool, n)
		for q := 0; q < nbuckets; q++ {
			prev := -1
			for _, i := range perm[off[q]:off[q+1]] {
				if bucket(i) != q {
					t.Fatalf("workers=%d: index %d in bucket %d's run, but bucket(%d)=%d", workers, i, q, i, bucket(i))
				}
				if i <= prev {
					t.Fatalf("workers=%d: bucket %d not in increasing index order (%d after %d)", workers, q, i, prev)
				}
				prev = i
				seen[i] = true
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("workers=%d: index %d missing from permutation", workers, i)
			}
		}
	}
}

func TestPartitionZeroAndPanics(t *testing.T) {
	off := Partition[uint64](nil, nil, 4, func(i int) int { return 0 })
	for q, o := range off {
		if o != 0 {
			t.Fatalf("empty partition: offsets[%d] = %d", q, o)
		}
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("short dst", func() {
		Partition(make([]uint64, 1), make([]uint64, 2), 2, func(i int) int { return 0 })
	})
	mustPanic("nbuckets<1", func() {
		Partition[uint64](nil, nil, 0, func(i int) int { return 0 })
	})
}
