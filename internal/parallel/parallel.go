// Package parallel provides a small nested fork-join runtime over
// goroutines: blocked parallel loops, parallel reduction, prefix sums
// (scans), packing, and sorting. It plays the role the Cilk Plus runtime
// plays in the paper "Phase-Concurrent Hash Tables for Determinism"
// (Shun & Blelloch, SPAA 2014): all parallel phases of the hash tables,
// applications and benchmarks are expressed with these primitives.
//
// The package is deterministic in its outputs: every function computes a
// result that is independent of how goroutines are scheduled. Work is
// split into contiguous blocks so that per-block results can be combined
// in index order.
package parallel

import (
	"runtime"
	"sync/atomic"
)

// maxProcs is the degree of parallelism used by all loops in this package.
// It defaults to runtime.GOMAXPROCS(0) and can be overridden with
// SetNumWorkers, which the benchmark drivers use for thread-scaling sweeps
// (Figure 4 of the paper).
var maxProcs atomic.Int64

func init() {
	maxProcs.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetNumWorkers sets the number of workers used by subsequent parallel
// operations. n < 1 resets to runtime.GOMAXPROCS(0). It returns the
// previous value.
func SetNumWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(maxProcs.Swap(int64(n)))
}

// NumWorkers reports the current worker count.
func NumWorkers() int { return int(maxProcs.Load()) }

// minGrain is the smallest block size For will create, to keep dispatch
// overhead negligible relative to useful work.
const minGrain = 512

// defaultBlocksPerWorker is the automatic grain policy's oversplit
// factor: enough blocks per worker that dynamic claiming smooths load
// imbalance, few enough that dispatch overhead stays negligible.
const defaultBlocksPerWorker = 8

// blocksPerWorkerKnob is the live oversplit factor. It is a process
// knob, not a per-loop parameter: the tuning layer (internal/tune)
// adjusts it at phase boundaries from measured dispatch counts, and
// every automatic-grain loop picks it up on its next dispatch. Reads
// are a single atomic load on the loop-setup path (not per element).
var blocksPerWorkerKnob atomic.Int64

func init() { blocksPerWorkerKnob.Store(defaultBlocksPerWorker) }

// SetBlocksPerWorker sets the automatic grain policy's blocks-per-worker
// oversplit factor and returns the previous value. k < 1 resets to the
// default. Callers must only change it at phase boundaries (between
// bulk calls): changing it mid-loop is safe but leaves in-flight loops
// on the old grain.
func SetBlocksPerWorker(k int) int {
	if k < 1 {
		k = defaultBlocksPerWorker
	}
	return int(blocksPerWorkerKnob.Swap(int64(k)))
}

// BlocksPerWorker reports the current oversplit factor.
func BlocksPerWorker() int { return int(blocksPerWorkerKnob.Load()) }

// grainFor is the single source of the package's grain policy: the
// explicit grain when one is given, otherwise ~BlocksPerWorker() blocks
// per worker for load balance, clamped below by minGrain. ForBlocked
// and makeBlocks (the two places that need it) both call this helper so
// the policy cannot drift between the loop runtime and the block
// planner.
func grainFor(n, p, grain int) int {
	if grain > 0 {
		return grain
	}
	g := n / (int(blocksPerWorkerKnob.Load()) * p)
	if g < minGrain {
		g = minGrain
	}
	return g
}

// For runs body(i) for every i in [0, n) using up to NumWorkers()
// goroutines. Iterations are grouped into contiguous blocks; the grain
// (block size) is chosen automatically. body must be safe to call
// concurrently for distinct i.
func For(n int, body func(i int)) {
	ForGrain(n, 0, body)
}

// ForGrain is For with an explicit grain size (0 chooses automatically).
// A larger grain amortizes scheduling overhead for very cheap bodies; a
// smaller grain improves load balance for irregular bodies.
func ForGrain(n, grain int, body func(i int)) {
	ForBlocked(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlocked runs body(lo, hi) over disjoint contiguous blocks covering
// [0, n). It is the primitive the other loops are built on; use it
// directly when per-block setup (e.g. a local buffer) matters. Blocks
// are claimed dynamically from a shared cursor by the calling goroutine
// and up to NumWorkers()-1 persistent pool workers (see pool.go), so a
// dispatch costs a channel send per helper instead of a goroutine spawn
// per block.
func ForBlocked(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := NumWorkers()
	grain = grainFor(n, p, grain)
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	nblocks := (n + grain - 1) / grain
	j := &job{n: n, grain: grain, nblocks: nblocks, body: body, done: make(chan struct{})}
	j.remaining.Store(int64(nblocks))
	helpers := p - 1
	if helpers > nblocks-1 {
		helpers = nblocks - 1
	}
	workers.dispatch(j, helpers)
}

// Do runs the given functions in parallel and waits for all of them
// (parallel invoke / spawn-sync). Like every loop here it runs on the
// persistent pool; any function may execute on any participant.
func Do(fs ...func()) {
	if len(fs) == 0 {
		return
	}
	if len(fs) == 1 || NumWorkers() == 1 {
		for _, f := range fs {
			f()
		}
		return
	}
	ForGrain(len(fs), 1, func(i int) { fs[i]() })
}

// Reduce combines f(i) for i in [0, n) with the associative, commutative
// operation op, starting from the identity value id. The reduction order
// within and across blocks is fixed (index order per block, block order
// at the top), so the result is deterministic even for non-commutative op
// as long as op is associative.
func Reduce[T any](n int, id T, op func(a, b T) T, f func(i int) T) T {
	if n <= 0 {
		return id
	}
	type block struct {
		lo, hi int
	}
	blocks := makeBlocks(n)
	partial := make([]T, len(blocks))
	ForGrain(len(blocks), 1, func(b int) {
		acc := id
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			acc = op(acc, f(i))
		}
		partial[b] = acc
	})
	acc := id
	for _, pv := range partial {
		acc = op(acc, pv)
	}
	return acc
}

type span struct{ lo, hi int }

// makeBlocks splits [0,n) into contiguous spans sized for the current
// worker count (same policy as ForBlocked, via grainFor).
func makeBlocks(n int) []span {
	grain := grainFor(n, NumWorkers(), 0)
	nblocks := (n + grain - 1) / grain
	blocks := make([]span, 0, nblocks)
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		blocks = append(blocks, span{lo, hi})
	}
	return blocks
}

// Sum is Reduce specialised to integer addition.
func Sum(n int, f func(i int) int) int {
	return Reduce(n, 0, func(a, b int) int { return a + b }, f)
}
