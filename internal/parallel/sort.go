package parallel

import "sort"

// sortSerialCutoff is the subproblem size below which parallel sorts fall
// back to the standard library's sequential sort.
const sortSerialCutoff = 1 << 13

// Sort sorts xs with a parallel merge sort using the less function. The
// sort is not stable. It is used by the suffix-array builder and by tests
// that compare hash-table contents against sorted references.
func Sort[T any](xs []T, less func(a, b T) bool) {
	if len(xs) < sortSerialCutoff || NumWorkers() == 1 {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	buf := make([]T, len(xs))
	mergeSort(xs, buf, less, depthFor(NumWorkers()))
}

// depthFor picks a recursion depth that yields ~4x as many leaf tasks as
// workers.
func depthFor(p int) int {
	d := 0
	for (1 << d) < 4*p {
		d++
	}
	return d
}

func mergeSort[T any](xs, buf []T, less func(a, b T) bool, depth int) {
	n := len(xs)
	if depth == 0 || n < sortSerialCutoff {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	mid := n / 2
	Do(
		func() { mergeSort(xs[:mid], buf[:mid], less, depth-1) },
		func() { mergeSort(xs[mid:], buf[mid:], less, depth-1) },
	)
	merge(buf, xs[:mid], xs[mid:], less)
	copy(xs, buf)
}

func merge[T any](dst, a, b []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// SortInts sorts a []uint64 in increasing order with a parallel LSD radix
// sort (8 passes of 8 bits). It is the workhorse for suffix-array rank
// sorting and for building sorted references in tests.
func SortInts(xs []uint64) {
	n := len(xs)
	if n < sortSerialCutoff || NumWorkers() == 1 {
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		return
	}
	buf := make([]uint64, n)
	src, dst := xs, buf
	for shift := 0; shift < 64; shift += 8 {
		if radixPass(dst, src, uint(shift)) {
			src, dst = dst, src
		}
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}

// radixPass performs one 8-bit counting-sort pass from src to dst on the
// byte at the given shift. It returns false (and copies nothing) when all
// keys share that byte, letting the caller skip the pass.
func radixPass(dst, src []uint64, shift uint) bool {
	n := len(src)
	blocks := makeBlocks(n)
	nb := len(blocks)
	const buckets = 256
	counts := make([][buckets]int, nb)
	ForGrain(nb, 1, func(b int) {
		c := &counts[b]
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			c[(src[i]>>shift)&0xff]++
		}
	})
	// Skip the pass when every key shares this byte (common for high
	// bytes of small keys).
	for v := 0; v < buckets; v++ {
		t := 0
		for b := 0; b < nb; b++ {
			t += counts[b][v]
		}
		if t == n {
			return false
		}
		if t > 0 {
			break
		}
	}
	// Column-major exclusive scan over (bucket, block) pairs so that ties
	// keep block (and therefore index) order: LSD radix must be stable.
	total := 0
	for v := 0; v < buckets; v++ {
		for b := 0; b < nb; b++ {
			c := counts[b][v]
			counts[b][v] = total
			total += c
		}
	}
	ForGrain(nb, 1, func(b int) {
		offs := counts[b]
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			v := (src[i] >> shift) & 0xff
			dst[offs[v]] = src[i]
			offs[v]++
		}
	})
	return true
}

// SortPairs sorts (key, value) pairs by key (ties broken by value) using
// the parallel merge sort.
func SortPairs(keys, vals []uint64) {
	type kv struct{ k, v uint64 }
	n := len(keys)
	pairs := make([]kv, n)
	For(n, func(i int) { pairs[i] = kv{keys[i], vals[i]} })
	Sort(pairs, func(a, b kv) bool {
		if a.k != b.k {
			return a.k < b.k
		}
		return a.v < b.v
	})
	For(n, func(i int) { keys[i], vals[i] = pairs[i].k, pairs[i].v })
}
