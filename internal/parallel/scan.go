package parallel

// Scan computes an exclusive prefix sum of src into dst (dst[i] =
// src[0] + ... + src[i-1]) and returns the total. dst and src may be the
// same slice. The computation uses the classic two-pass blocked scheme:
// per-block sums, a sequential scan over the (few) block sums, then a
// per-block local scan — the same algorithm PBBS uses for its `sequence`
// primitives.
func Scan(dst, src []int) int {
	n := len(src)
	if n == 0 {
		return 0
	}
	if n < 4*minGrain || NumWorkers() == 1 {
		return scanSerial(dst, src)
	}
	blocks := makeBlocks(n)
	sums := make([]int, len(blocks))
	ForGrain(len(blocks), 1, func(b int) {
		s := 0
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			s += src[i]
		}
		sums[b] = s
	})
	total := 0
	for b := range sums {
		sums[b], total = total, total+sums[b]
	}
	ForGrain(len(blocks), 1, func(b int) {
		s := sums[b]
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			s, dst[i] = s+src[i], s
		}
	})
	return total
}

func scanSerial(dst, src []int) int {
	s := 0
	for i, v := range src {
		dst[i] = s
		s += v
	}
	return s
}

// ScanInclusive computes an inclusive prefix sum (dst[i] = src[0] + ... +
// src[i]) and returns the total.
func ScanInclusive(dst, src []int) int {
	total := Scan(dst, src)
	n := len(src)
	For(n, func(i int) {
		if i+1 < n {
			dst[i] = dst[i+1]
		} else {
			dst[i] = total
		}
	})
	return total
}

// Pack returns the elements xs[i] for which keep(i) is true, preserving
// index order. It is the deterministic "pack out the empty cells"
// primitive the paper's Elements() routine relies on, in its blocked
// form: per-block counts, an exclusive scan over the (few) block sums,
// then each block copies into its exact output region — two passes and
// O(blocks) temporary space.
func Pack[T any](xs []T, keep func(i int) bool) []T {
	n := len(xs)
	if n == 0 {
		return nil
	}
	blocks := makeBlocks(n)
	sums := make([]int, len(blocks))
	ForGrain(len(blocks), 1, func(b int) {
		c := 0
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			if keep(i) {
				c++
			}
		}
		sums[b] = c
	})
	total := 0
	for b := range sums {
		sums[b], total = total, total+sums[b]
	}
	out := make([]T, total)
	ForGrain(len(blocks), 1, func(b int) {
		o := sums[b]
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			if keep(i) {
				out[o] = xs[i]
				o++
			}
		}
	})
	return out
}

// PackInto is Pack writing into a caller-provided buffer (which must be
// large enough); it returns the number of packed elements. Used on hot
// paths to avoid allocating the result.
func PackInto[T any](dst, xs []T, keep func(i int) bool) int {
	n := len(xs)
	if n == 0 {
		return 0
	}
	blocks := makeBlocks(n)
	sums := make([]int, len(blocks))
	ForGrain(len(blocks), 1, func(b int) {
		c := 0
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			if keep(i) {
				c++
			}
		}
		sums[b] = c
	})
	total := 0
	for b := range sums {
		sums[b], total = total, total+sums[b]
	}
	ForGrain(len(blocks), 1, func(b int) {
		o := sums[b]
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			if keep(i) {
				dst[o] = xs[i]
				o++
			}
		}
	})
	return total
}

// PackIndex returns the indexes i in [0, n) for which keep(i) is true, in
// increasing order.
func PackIndex(n int, keep func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	blocks := makeBlocks(n)
	sums := make([]int, len(blocks))
	ForGrain(len(blocks), 1, func(b int) {
		c := 0
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			if keep(i) {
				c++
			}
		}
		sums[b] = c
	})
	total := 0
	for b := range sums {
		sums[b], total = total, total+sums[b]
	}
	out := make([]int, total)
	ForGrain(len(blocks), 1, func(b int) {
		o := sums[b]
		for i := blocks[b].lo; i < blocks[b].hi; i++ {
			if keep(i) {
				out[o] = i
				o++
			}
		}
	})
	return out
}

// Count returns the number of i in [0, n) for which pred(i) is true.
func Count(n int, pred func(i int) bool) int {
	return Sum(n, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}
