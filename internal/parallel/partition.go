package parallel

// Partition reorders src into dst grouped by bucket: all elements whose
// bucket(i) is 0 first, then bucket 1, and so on, each bucket's run in
// original index order (a stable counting sort / radix-partition pass).
// It returns offsets of length nbuckets+1: bucket b's run is
// dst[offsets[b]:offsets[b+1]], and offsets[nbuckets] == len(src).
//
// bucket(i) classifies src[i] and must be a pure function of i returning
// a value in [0, nbuckets); out-of-range values panic. dst must satisfy
// len(dst) == len(src) and must not alias src.
//
// The computation is the classic two-pass blocked scheme (per-block
// histograms, an exclusive Scan over the bucket-major flattened counts,
// then a per-block scatter into exact positions), so the output — like
// everything in this package — is a pure function of the inputs,
// independent of worker count and scheduling. The sharded hash-table
// kernels rely on exactly that: the partitioned order feeds the
// owner-computes probe loops, and any schedule dependence here would
// leak into the table layout.
//
// bucket is called exactly once per element when nbuckets <= 256: the
// counting pass caches each element's bucket id in a byte, and the
// scatter pass streams the bytes back instead of re-evaluating what is
// typically a hash function. Larger nbuckets fall back to calling
// bucket in both passes.
func Partition[T any](dst, src []T, nbuckets int, bucket func(i int) int) []int {
	n := len(src)
	if len(dst) != n {
		panic("parallel: Partition: len(dst) != len(src)")
	}
	if nbuckets < 1 {
		panic("parallel: Partition: nbuckets < 1")
	}
	offsets := make([]int, nbuckets+1)
	if n == 0 {
		return offsets
	}
	var ids []uint8
	if nbuckets <= 256 {
		ids = make([]uint8, n)
	}
	if n < 4*minGrain || NumWorkers() == 1 {
		partitionSerial(dst, src, offsets, ids, bucket)
		return offsets
	}
	blocks := makeBlocks(n)
	nb := len(blocks)
	// counts is bucket-major: counts[q*nb+b] is block b's count for
	// bucket q. After the exclusive scan, the same slot is the exact
	// start position of block b's run within bucket q — bucket-major
	// order makes the single Scan produce both the bucket offsets and
	// the per-block cursors, and makes the result stable (bucket, then
	// block, then index order).
	counts := make([]int, nbuckets*nb)
	ForGrain(nb, 1, func(b int) {
		local := make([]int, nbuckets)
		if ids != nil {
			for i := blocks[b].lo; i < blocks[b].hi; i++ {
				q := bucket(i)
				local[q]++
				ids[i] = uint8(q)
			}
		} else {
			for i := blocks[b].lo; i < blocks[b].hi; i++ {
				local[bucket(i)]++
			}
		}
		for q := 0; q < nbuckets; q++ {
			counts[q*nb+b] = local[q]
		}
	})
	total := Scan(counts, counts)
	for q := 0; q < nbuckets; q++ {
		offsets[q] = counts[q*nb]
	}
	offsets[nbuckets] = total
	ForGrain(nb, 1, func(b int) {
		cursors := make([]int, nbuckets)
		for q := 0; q < nbuckets; q++ {
			cursors[q] = counts[q*nb+b]
		}
		if ids != nil {
			for i := blocks[b].lo; i < blocks[b].hi; i++ {
				q := ids[i]
				dst[cursors[q]] = src[i]
				cursors[q]++
			}
		} else {
			for i := blocks[b].lo; i < blocks[b].hi; i++ {
				q := bucket(i)
				dst[cursors[q]] = src[i]
				cursors[q]++
			}
		}
	})
	return offsets
}

// partitionSerial is the one-pass-histogram sequential fallback; it is
// also the reference the parallel path's property tests compare against.
// ids, when non-nil, caches bucket(i) between the two passes.
func partitionSerial[T any](dst, src []T, offsets []int, ids []uint8, bucket func(i int) int) {
	nbuckets := len(offsets) - 1
	counts := make([]int, nbuckets)
	if ids != nil {
		for i := range src {
			q := bucket(i)
			counts[q]++
			ids[i] = uint8(q)
		}
	} else {
		for i := range src {
			counts[bucket(i)]++
		}
	}
	o := 0
	for q := 0; q < nbuckets; q++ {
		offsets[q] = o
		o += counts[q]
		counts[q] = offsets[q]
	}
	offsets[nbuckets] = o
	if ids != nil {
		for i := range src {
			q := ids[i]
			dst[counts[q]] = src[i]
			counts[q]++
		}
	} else {
		for i := range src {
			q := bucket(i)
			dst[counts[q]] = src[i]
			counts[q]++
		}
	}
}

// PartitionIndex is Partition over the index sequence [0, n): it returns
// the stable permutation perm (original indices grouped by bucket, each
// bucket in increasing index order) and the bucket offsets. Use it when
// downstream work needs the original positions — e.g. a sharded FindAll
// that must write results back to the caller's per-key result slots.
func PartitionIndex(n, nbuckets int, bucket func(i int) int) (perm, offsets []int) {
	src := make([]int, n)
	For(n, func(i int) { src[i] = i })
	perm = make([]int, n)
	offsets = Partition(perm, src, nbuckets, bucket)
	return perm, offsets
}
