package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 513, 100000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForBlockedDisjointCover(t *testing.T) {
	n := 50000
	hits := make([]int32, n)
	ForBlocked(n, 777, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad block [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Int32
	Do(
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatal("Do did not run all functions")
	}
	Do() // no-op
}

func TestReduce(t *testing.T) {
	n := 100000
	got := Reduce(n, 0, func(a, b int) int { return a + b }, func(i int) int { return i })
	want := n * (n - 1) / 2
	if got != want {
		t.Fatalf("Reduce sum = %d, want %d", got, want)
	}
	if got := Sum(0, func(int) int { return 1 }); got != 0 {
		t.Fatalf("empty Sum = %d", got)
	}
	// Max via Reduce.
	xs := []int{3, 9, 2, 9, 1}
	m := Reduce(len(xs), -1, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}, func(i int) int { return xs[i] })
	if m != 9 {
		t.Fatalf("max = %d", m)
	}
}

func TestScanMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, 4097, 300000} {
		src := make([]int, n)
		for i := range src {
			src[i] = (i*7)%13 - 3
		}
		want := make([]int, n)
		s := 0
		for i, v := range src {
			want[i] = s
			s += v
		}
		dst := make([]int, n)
		total := Scan(dst, src)
		if total != s {
			t.Fatalf("n=%d: total %d, want %d", n, total, s)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %d, want %d", n, i, dst[i], want[i])
			}
		}
	}
}

func TestScanInPlace(t *testing.T) {
	n := 100000
	src := make([]int, n)
	for i := range src {
		src[i] = 1
	}
	Scan(src, src)
	for i := range src {
		if src[i] != i {
			t.Fatalf("in-place scan wrong at %d: %d", i, src[i])
		}
	}
}

func TestScanInclusive(t *testing.T) {
	src := []int{1, 2, 3, 4}
	dst := make([]int, 4)
	total := ScanInclusive(dst, src)
	want := []int{1, 3, 6, 10}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestPack(t *testing.T) {
	n := 100000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	got := Pack(xs, func(i int) bool { return xs[i]%3 == 0 })
	for j, v := range got {
		if v != 3*j {
			t.Fatalf("Pack[%d] = %d, want %d", j, v, 3*j)
		}
	}
	if len(got) != (n+2)/3 {
		t.Fatalf("Pack len = %d", len(got))
	}
	idx := PackIndex(10, func(i int) bool { return i%2 == 1 })
	want := []int{1, 3, 5, 7, 9}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("PackIndex = %v", idx)
		}
	}
	if Count(100, func(i int) bool { return i < 42 }) != 42 {
		t.Fatal("Count wrong")
	}
}

func TestPackInto(t *testing.T) {
	xs := []uint64{5, 0, 7, 0, 9}
	dst := make([]uint64, 5)
	n := PackInto(dst, xs, func(i int) bool { return xs[i] != 0 })
	if n != 3 || dst[0] != 5 || dst[1] != 7 || dst[2] != 9 {
		t.Fatalf("PackInto = %v (n=%d)", dst, n)
	}
}

func TestSort(t *testing.T) {
	n := 200000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = (i * 1103515245) % 1000003
	}
	Sort(xs, func(a, b int) bool { return a < b })
	for i := 1; i < n; i++ {
		if xs[i-1] > xs[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSortIntsMatchesSort(t *testing.T) {
	f := func(raw []uint64) bool {
		a := append([]uint64(nil), raw...)
		b := append([]uint64(nil), raw...)
		SortInts(a)
		Sort(b, func(x, y uint64) bool { return x < y })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Large case to exercise the parallel radix path.
	n := 300000
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = uint64((i*2654435761)%1000000007) << 7
	}
	SortInts(xs)
	for i := 1; i < n; i++ {
		if xs[i-1] > xs[i] {
			t.Fatalf("radix sort out of order at %d", i)
		}
	}
}

func TestSortPairs(t *testing.T) {
	keys := []uint64{3, 1, 3, 2}
	vals := []uint64{9, 8, 7, 6}
	SortPairs(keys, vals)
	wantK := []uint64{1, 2, 3, 3}
	wantV := []uint64{8, 6, 7, 9}
	for i := range wantK {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("SortPairs = %v/%v", keys, vals)
		}
	}
}

func TestSetNumWorkers(t *testing.T) {
	old := SetNumWorkers(1)
	defer SetNumWorkers(old)
	if NumWorkers() != 1 {
		t.Fatal("SetNumWorkers(1) ignored")
	}
	// Loops still work single-threaded.
	total := Sum(1000, func(i int) int { return 1 })
	if total != 1000 {
		t.Fatalf("Sum = %d", total)
	}
	SetNumWorkers(0) // resets to GOMAXPROCS
	if NumWorkers() < 1 {
		t.Fatal("reset failed")
	}
}

// The pool must survive nested parallelism: a loop body that itself
// dispatches loops. Completion is defined by outstanding blocks, not by
// particular workers, so this must not deadlock even when every pool
// worker is busy with the outer loop.
func TestNestedForBlocked(t *testing.T) {
	old := SetNumWorkers(8)
	defer SetNumWorkers(old)
	outer := 16
	var total atomic.Int64
	ForGrain(outer, 1, func(i int) {
		inner := 10000
		var sum atomic.Int64
		ForGrain(inner, 64, func(j int) { sum.Add(1) })
		total.Add(sum.Load())
	})
	if got := total.Load(); got != int64(outer*10000) {
		t.Fatalf("nested loops lost work: %d", got)
	}
}

// Repeated small dispatches (the iterative-app shape the pool exists
// for) must each cover their range exactly once.
func TestRepeatedDispatchCoverage(t *testing.T) {
	old := SetNumWorkers(4)
	defer SetNumWorkers(old)
	for round := 0; round < 200; round++ {
		n := 64 + round
		hits := make([]int32, n)
		ForGrain(n, 8, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("round %d: index %d ran %d times", round, i, h)
			}
		}
	}
}

func TestWorkerID(t *testing.T) {
	old := SetNumWorkers(8)
	defer SetNumWorkers(old)
	if id := WorkerID(); id != 0 {
		t.Fatalf("non-pool goroutine has WorkerID %d, want 0", id)
	}
	// Every ID observed inside a loop body must be within
	// [0, MaxWorkerID()] and per-worker scratch indexed by it must not
	// lose updates (IDs are stable and distinct per participant).
	seen := make([]atomic.Int64, 64)
	ForBlocked(1<<16, 512, func(lo, hi int) {
		id := WorkerID()
		if id < 0 || id >= len(seen) {
			t.Errorf("WorkerID %d out of range", id)
			return
		}
		seen[id].Add(int64(hi - lo))
	})
	max := MaxWorkerID()
	var covered int64
	for i := range seen {
		if v := seen[i].Load(); v != 0 {
			if i > max {
				t.Fatalf("WorkerID %d exceeds MaxWorkerID %d", i, max)
			}
			covered += v
		}
	}
	if covered != 1<<16 {
		t.Fatalf("scratch indexed by WorkerID covered %d of %d iterations", covered, 1<<16)
	}
}

// Determinism: results independent of worker count.
func TestScanDeterministicAcrossWorkers(t *testing.T) {
	n := 123457
	src := make([]int, n)
	for i := range src {
		src[i] = i % 17
	}
	ref := make([]int, n)
	old := SetNumWorkers(1)
	Scan(ref, src)
	for _, w := range []int{2, 3, 8} {
		SetNumWorkers(w)
		dst := make([]int, n)
		Scan(dst, src)
		for i := range ref {
			if dst[i] != ref[i] {
				t.Fatalf("workers=%d: scan differs at %d", w, i)
			}
		}
	}
	SetNumWorkers(old)
}
