package bench

import (
	"testing"
	"time"

	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

// The harness itself is code that must not rot: these tests run every
// experiment at tiny scale and check that it measures something and
// that the workloads it constructs are consistent.

func TestTable1CellAllOpsRun(t *testing.T) {
	for _, op := range Ops {
		for _, kind := range []tables.Kind{tables.LinearD, tables.SerialHI, tables.ChainedCR} {
			d := sequence.RandomInt
			dur := Table1Cell(kind, d, op, 5000, 1<<14)
			if dur <= 0 {
				t.Fatalf("%s/%s: non-positive duration", kind, op)
			}
		}
	}
}

func TestTable1CellPairDistributions(t *testing.T) {
	for _, d := range []sequence.Distribution{sequence.RandomPairInt, sequence.ExptPairInt, sequence.TrigramPairInt} {
		if dur := Table1Cell(tables.LinearD, d, OpInsert, 5000, 1<<14); dur <= 0 {
			t.Fatalf("%s: non-positive duration", d)
		}
	}
}

func TestTable1CellStrings(t *testing.T) {
	for _, op := range Ops {
		if dur := Table1CellStrings(op, 3000, 1<<13); dur <= 0 {
			t.Fatalf("%s: non-positive duration", op)
		}
	}
}

func TestTable2CellRows(t *testing.T) {
	for _, row := range Table2Rows {
		for _, par := range []bool{false, true} {
			if dur := Table2Cell(row, 5000, 1<<14, par); dur <= 0 {
				t.Fatalf("%s par=%v: non-positive duration", row, par)
			}
		}
	}
}

func TestFigure4PointSpeedupSane(t *testing.T) {
	par, ser := Figure4Point(sequence.RandomInt, OpInsert, 20000, 1<<16, 1)
	if par <= 0 || ser <= 0 {
		t.Fatal("non-positive timings")
	}
	// With one worker the parallel path should be within an order of
	// magnitude of serial (scheduling overhead only).
	if ratio := par.Seconds() / ser.Seconds(); ratio > 10 {
		t.Errorf("1-worker parallel %.1fx slower than serial", ratio)
	}
}

func TestFigure5PointLoads(t *testing.T) {
	var prev time.Duration
	for _, load := range []float64{0.2, 0.9} {
		dur := Figure5Point(OpInsert, load, 2000, 1<<14)
		if dur <= 0 {
			t.Fatalf("load %.1f: non-positive", load)
		}
		prev = dur
	}
	_ = prev
}

func TestApplicationsRunTiny(t *testing.T) {
	if d := Table3(tables.LinearD, sequence.RandomInt, 5000); d <= 0 {
		t.Fatal("Table3")
	}
	ins := Table4Inputs(500)
	if len(ins) != 2 {
		t.Fatal("Table4Inputs")
	}
	if d := Table4(tables.LinearD, ins[0].Pts, 3); d < 0 {
		t.Fatal("Table4")
	}
	sfx := Table5Inputs(5000, 500)
	if len(sfx) != 3 {
		t.Fatal("Table5Inputs")
	}
	if a, b := Table5(tables.LinearD, sfx[0]); a <= 0 || b <= 0 {
		t.Fatal("Table5")
	}
	gs := GraphInputs(400)
	if len(gs) != 3 {
		t.Fatal("GraphInputs")
	}
	for _, in := range gs {
		if d := Table6(tables.LinearD, in); d <= 0 {
			t.Fatalf("Table6 %s", in.Name)
		}
		if d := Table7(tables.LinearD, in); d <= 0 {
			t.Fatalf("Table7 %s", in.Name)
		}
		if d := Table7Baseline(BFSArray, in); d <= 0 {
			t.Fatalf("Table7 baseline %s", in.Name)
		}
		if d := Table8(tables.LinearD, in); d <= 0 {
			t.Fatalf("Table8 %s", in.Name)
		}
		if d := Table8Baseline(BFSSerial, in); d <= 0 {
			t.Fatalf("Table8 baseline %s", in.Name)
		}
	}
}

func TestGraphInputsConsistent(t *testing.T) {
	for _, in := range GraphInputs(1000) {
		if in.G.NumVertices() < 1000 {
			t.Fatalf("%s: too few vertices", in.Name)
		}
		if len(in.Edges) == 0 || len(in.Weights) != len(in.Edges) {
			t.Fatalf("%s: bad edge/weight arrays", in.Name)
		}
		if len(in.Labels) != in.G.NumVertices() {
			t.Fatalf("%s: label array size", in.Name)
		}
		for v, l := range in.Labels {
			if int(l) > v && in.Labels[l] != l {
				// labels point to the smaller matched endpoint or self
				t.Fatalf("%s: label[%d]=%d inconsistent", in.Name, v, l)
			}
		}
	}
}
