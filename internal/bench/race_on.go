//go:build race

package bench

// raceEnabled switches the Table 2 scatter to atomic stores when the
// race detector is on: the benchmark's concurrent plain writes to random
// cells are the experiment itself (the paper's "random write" baseline),
// but they are data races by design, so tests under -race use atomics.
const raceEnabled = true
