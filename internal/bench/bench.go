// Package bench implements the paper's experiments: each exported
// function regenerates one table or figure of Section 6 (the command
// line drivers in cmd/ and the testing.B benchmarks at the repository
// root are thin wrappers around this package). Timings follow the
// paper's methodology: input generation and table pre-filling are
// excluded; only the operation phase under test is measured.
package bench

import (
	"sync/atomic"
	"time"

	"phasehash/internal/core"
	"phasehash/internal/obs"
	"phasehash/internal/parallel"
	"phasehash/internal/sequence"
	"phasehash/internal/tables"
)

// Op names a hash-table operation benchmark, matching the paper's Table
// 1 sub-tables.
type Op string

// The operations of Table 1 (a)-(f).
const (
	OpInsert         Op = "insert"
	OpFindRandom     Op = "find-random"
	OpFindInserted   Op = "find-inserted"
	OpDeleteRandom   Op = "delete-random"
	OpDeleteInserted Op = "delete-inserted"
	OpElements       Op = "elements"
)

// Ops lists Table 1's operations in order.
var Ops = []Op{OpInsert, OpFindRandom, OpFindInserted, OpDeleteRandom, OpDeleteInserted, OpElements}

// applyAll drives n operations through a table, parallel for concurrent
// kinds, sequential for the serial baselines — the measured inner loop
// of every Table 1 cell.
func applyAll(kind tables.Kind, elems []uint64, f func(e uint64)) {
	if kind.IsSerial() {
		for _, e := range elems {
			f(e)
		}
		return
	}
	parallel.ForBlocked(len(elems), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(elems[i])
		}
	})
}

// insertAll drives a whole insert phase: the bulk kernel when the table
// has one (linearHash-D), the per-element loop otherwise.
func insertAll(kind tables.Kind, tab tables.Table, elems []uint64) {
	if b, ok := tables.AsBulk(tab); ok && !kind.IsSerial() {
		b.InsertAll(elems)
		return
	}
	applyAll(kind, elems, func(e uint64) { tab.Insert(e) })
}

// findAll drives a whole find phase; see insertAll.
func findAll(kind tables.Kind, tab tables.Table, keys []uint64) {
	if b, ok := tables.AsBulk(tab); ok && !kind.IsSerial() {
		b.FindAll(keys, nil)
		return
	}
	applyAll(kind, keys, func(e uint64) { tab.Find(e) })
}

// deleteAll drives a whole delete phase; see insertAll.
func deleteAll(kind tables.Kind, tab tables.Table, keys []uint64) {
	if b, ok := tables.AsBulk(tab); ok && !kind.IsSerial() {
		b.DeleteAll(keys)
		return
	}
	applyAll(kind, keys, func(e uint64) { tab.Delete(e) })
}

// opsForDist picks the element semantics matching the distribution: set
// semantics for key-only inputs, min-combine pairs for key-value inputs
// (the paper's deterministic priority-on-values rule).
func newTableForDist(kind tables.Kind, d sequence.Distribution, size int) tables.Table {
	if d.IsPair() {
		return tables.MustNew[core.PairMinOps](kind, size)
	}
	return tables.MustNew[core.SetOps](kind, size)
}

// BytesPerElem reports the backing-array bytes per stored element for
// a table kind at Table 1's configuration: a table of tableSize cells
// holding n elements. Kinds that do not implement tables.Memory
// report 0 (printed as "-" by phbench -mem).
func BytesPerElem(kind tables.Kind, n, tableSize int) float64 {
	if n <= 0 {
		return 0
	}
	tab := tables.MustNew[core.SetOps](kind, tableSize)
	m, ok := tables.AsMemory(tab)
	if !ok {
		return 0
	}
	return float64(m.Bytes()) / float64(n)
}

// timedPhase measures f and, in -tags obs builds, brackets it with a
// phase-timeline span (and runtime/trace task) named name — so a
// `go tool trace` of a benchmark run shows each measured phase as a
// user task and Stats().Spans carries the phase timeline.
func timedPhase(name string, f func()) time.Duration {
	var sp *obs.ActiveSpan
	if obs.Enabled {
		sp = obs.PhaseStart(name)
	}
	start := time.Now()
	f()
	d := time.Since(start)
	if obs.Enabled {
		obs.PhaseEnd(sp)
	}
	return d
}

// Table1Cell measures one cell of Table 1: n operations of op with the
// given table kind and distribution, on a table of tableSize cells.
// Returns the measured wall time of the operation phase only.
func Table1Cell(kind tables.Kind, d sequence.Distribution, op Op, n, tableSize int) time.Duration {
	elems := sequence.WordElements(d, n, 42)
	tab := newTableForDist(kind, d, tableSize)
	switch op {
	case OpInsert:
		return timedPhase("bench:insert", func() { insertAll(kind, tab, elems) })
	case OpFindRandom, OpFindInserted, OpDeleteRandom, OpDeleteInserted:
		// Pre-fill with the inserted set (untimed), then operate on
		// either the same elements or a fresh draw from the
		// distribution.
		insertAll(kind, tab, elems)
		probe := elems
		if op == OpFindRandom || op == OpDeleteRandom {
			probe = sequence.WordElements(d, n, 43)
		}
		switch op {
		case OpFindRandom, OpFindInserted:
			return timedPhase("bench:find", func() { findAll(kind, tab, probe) })
		default:
			return timedPhase("bench:delete", func() { deleteAll(kind, tab, probe) })
		}
	case OpElements:
		insertAll(kind, tab, elems)
		return timedPhase("bench:elements", func() { tab.Elements() })
	default:
		panic("bench: unknown op " + string(op))
	}
}

// Table1CellStrings measures linearHash-D on *true string elements*
// through the pointer table — the paper's actual trigramSeq-pairInt
// representation ("a pointer to a structure with a pointer to a
// string"). The word-element tables approximate this input with hashed
// keys (see DESIGN.md); this cell quantifies the indirection cost the
// approximation hides. Only insert, find and delete phases apply.
func Table1CellStrings(op Op, n, tableSize int) time.Duration {
	pairs := sequence.TrigramPairs(n, 42)
	tab := core.NewPtrTable[sequence.StrPair, sequence.StrPairOps](tableSize)
	switch op {
	case OpInsert:
		start := time.Now()
		tab.InsertAll(pairs)
		return time.Since(start)
	case OpFindRandom, OpFindInserted, OpDeleteRandom, OpDeleteInserted:
		tab.InsertAll(pairs)
		probe := pairs
		if op == OpFindRandom || op == OpDeleteRandom {
			probe = sequence.TrigramPairs(n, 43)
		}
		start := time.Now()
		if op == OpFindRandom || op == OpFindInserted {
			tab.FindAll(probe, nil)
		} else {
			tab.DeleteAll(probe)
		}
		return time.Since(start)
	case OpElements:
		tab.InsertAll(pairs)
		start := time.Now()
		tab.Elements()
		return time.Since(start)
	default:
		panic("bench: unknown op " + string(op))
	}
}

// Table2Row names the memory-operation baselines of Table 2.
type Table2Row string

// Table 2's rows.
const (
	RandomWrite      Table2Row = "random write"
	ConditionalWrite Table2Row = "conditional random write"
	HashInsert       Table2Row = "hash table insertion"
)

// Table2Rows lists the rows in paper order.
var Table2Rows = []Table2Row{RandomWrite, ConditionalWrite, HashInsert}

// Table2Cell measures n operations of the given row with parallel==true
// for the (40h) column or sequential for the (1) column. The scatter
// array and hash table both have tableSize slots (the paper's load-1/3
// configuration uses tableSize ≈ 3n).
func Table2Cell(row Table2Row, n, tableSize int, par bool) time.Duration {
	keys := sequence.RandomKeys(n, 7)
	size := ceilPow2(tableSize)
	mask := uint64(size - 1)
	run := func(f func(i int)) time.Duration {
		start := time.Now()
		if par {
			parallel.ForBlocked(n, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					f(i)
				}
			})
		} else {
			for i := 0; i < n; i++ {
				f(i)
			}
		}
		return time.Since(start)
	}
	switch row {
	case RandomWrite:
		arr := make([]uint64, size)
		if raceEnabled && par {
			return run(func(i int) {
				atomic.StoreUint64(&arr[(keys[i]*0x9e3779b97f4a7c15)&mask], keys[i])
			})
		}
		// Concurrent plain stores to random cells — racy by design; this
		// is the paper's scatter baseline.
		return run(func(i int) {
			arr[(keys[i]*0x9e3779b97f4a7c15)&mask] = keys[i]
		})
	case ConditionalWrite:
		arr := make([]uint64, size)
		if raceEnabled && par {
			return run(func(i int) {
				j := (keys[i] * 0x9e3779b97f4a7c15) & mask
				if atomic.LoadUint64(&arr[j]) == 0 {
					atomic.StoreUint64(&arr[j], keys[i])
				}
			})
		}
		return run(func(i int) {
			j := (keys[i] * 0x9e3779b97f4a7c15) & mask
			if arr[j] == 0 {
				arr[j] = keys[i]
			}
		})
	case HashInsert:
		tab := core.NewWordTable[core.SetOps](size)
		return run(func(i int) { tab.Insert(keys[i]) })
	default:
		panic("bench: unknown Table 2 row")
	}
}

func ceilPow2(x int) int {
	m := 1
	for m < x {
		m <<= 1
	}
	return m
}

// WithWorkers runs f with the worker count temporarily set to p (the
// thread-sweep primitive behind Figure 4).
func WithWorkers(p int, f func() time.Duration) time.Duration {
	old := parallel.SetNumWorkers(p)
	defer parallel.SetNumWorkers(old)
	return f()
}

// Figure4Point measures linearHash-D's op time with p workers and the
// serial HI baseline, returning (parallel time, serial time); speedup is
// serial/parallel — one point of Figure 4's curves.
func Figure4Point(d sequence.Distribution, op Op, n, tableSize, p int) (time.Duration, time.Duration) {
	par := WithWorkers(p, func() time.Duration {
		return Table1Cell(tables.LinearD, d, op, n, tableSize)
	})
	ser := Table1Cell(tables.SerialHI, d, op, n, tableSize)
	return par, ser
}

// Figure5Point measures linearHash-D's per-operation time at a given
// load factor: the table (tableSize cells) is pre-filled to load, then n
// operations of op are timed. This regenerates Figure 5's curves.
func Figure5Point(op Op, load float64, n, tableSize int) time.Duration {
	size := ceilPow2(tableSize)
	fill := int(load * float64(size))
	if fill >= size {
		fill = size - 1
	}
	if op == OpInsert {
		// Keep the measured inserts from moving the load appreciably
		// (<= 2% of the table), so the point reflects the nominal load.
		if cap := size / 50; n > cap {
			n = cap
		}
		if n > size-fill-1 {
			n = size - fill - 1
		}
	}
	if n < 1 {
		n = 1
	}
	tab := core.NewWordTable[core.SetOps](size)
	// Pre-fill with distinct keys (dense range hashed by the table).
	parallel.ForBlocked(fill, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tab.Insert(uint64(i) + 1)
		}
	})
	// Operate on fresh keys (inserts) or a mix of present keys.
	switch op {
	case OpInsert:
		keys := make([]uint64, n)
		parallel.For(n, func(i int) { keys[i] = uint64(fill+i) + 1 })
		start := time.Now()
		parallel.ForBlocked(n, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tab.Insert(keys[i])
			}
		})
		return time.Since(start)
	case OpFindRandom:
		keys := sequence.RandomKeys(n, 9)
		start := time.Now()
		parallel.ForBlocked(n, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tab.Find(keys[i]%uint64(fill+n) + 1)
			}
		})
		return time.Since(start)
	case OpDeleteInserted:
		del := n
		if del > fill {
			del = fill
		}
		keys := make([]uint64, del)
		parallel.For(del, func(i int) { keys[i] = uint64(i)*uint64(fill/(del+1)+1)%uint64(fill) + 1 })
		start := time.Now()
		parallel.ForBlocked(del, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tab.Delete(keys[i])
			}
		})
		return time.Since(start)
	case OpElements:
		start := time.Now()
		tab.Elements()
		return time.Since(start)
	default:
		panic("bench: Figure 5 supports insert/find-random/delete-inserted/elements")
	}
}
