package bench

import (
	"time"

	"phasehash/internal/apps/bfs"
	"phasehash/internal/apps/contract"
	"phasehash/internal/apps/dedup"
	"phasehash/internal/apps/refine"
	"phasehash/internal/apps/spanning"
	"phasehash/internal/apps/suffixapp"
	"phasehash/internal/delaunay"
	"phasehash/internal/geom"
	"phasehash/internal/graph"
	"phasehash/internal/sequence"
	"phasehash/internal/suffix"
	"phasehash/internal/tables"
)

// AppKinds lists the table kinds the paper's application tables compare
// (chainedHash-CR stands in for both chained variants, as in the paper;
// hopscotch is excluded from applications exactly as the paper excludes
// it — see its Footnote 2).
var AppKinds = []tables.Kind{tables.LinearD, tables.LinearND, tables.Cuckoo, tables.ChainedCR}

// Table3 measures remove-duplicates on one distribution: returns the
// time for the insert-all + Elements() pipeline (table size 2^k >= 4n/3,
// mirroring the paper's fixed 2^27 for n=10^8).
func Table3(kind tables.Kind, d sequence.Distribution, n int) time.Duration {
	elems := sequence.WordElements(d, n, 11)
	size := tables.SizeFor(kind, n*4/3)
	start := time.Now()
	if d.IsPair() {
		// Key-value inputs dedup by key, resolving values with the
		// deterministic priority rule.
		dedup.RunPairs(kind, elems, size)
	} else {
		dedup.Run(kind, elems, size)
	}
	return time.Since(start)
}

// RefinementInput bundles the prepared mesh for Table 4 (building the
// input triangulation is untimed, as in PBBS).
type RefinementInput struct {
	Name string
	Pts  []geom.Point
}

// Table4Inputs returns the paper's two geometry inputs scaled to n
// points (the paper uses 5M).
func Table4Inputs(n int) []RefinementInput {
	return []RefinementInput{
		{Name: "2DinCube", Pts: geom.InCube(n, 101)},
		{Name: "2Dkuzmin", Pts: geom.Kuzmin(n, 103)},
	}
}

// Table4 measures the hash-table portion (Elements() + insertions) of a
// bounded Delaunay-refinement run on the given points. The paper times
// one iteration, which makes the workload identical across table kinds
// (the same initial bad-triangle set); pass maxRounds=1 for that
// methodology, or more rounds for a longer — but then
// schedule-divergent — run.
func Table4(kind tables.Kind, pts []geom.Point, maxRounds int) time.Duration {
	m := delaunay.Build(pts)
	st := refine.Run(m, refine.Config{
		MinAngleDeg: 25,
		MaxRounds:   maxRounds,
		Kind:        kind,
	})
	return st.TableTime
}

// SuffixInput is a prepared Table 5 input: tree structure and patterns
// (construction untimed).
type SuffixInput struct {
	Corpus   suffixapp.Corpus
	Tree     *suffix.Tree
	Patterns [][]byte
}

// Table5Inputs prepares the three corpora at textLen bytes with m search
// patterns each.
func Table5Inputs(textLen, m int) []SuffixInput {
	out := make([]SuffixInput, 0, len(suffixapp.Corpora))
	for _, c := range suffixapp.Corpora {
		text := suffixapp.MakeText(c, textLen, 51)
		out = append(out, SuffixInput{
			Corpus:   c,
			Tree:     suffix.New(text),
			Patterns: suffixapp.Patterns(text, m, 53),
		})
	}
	return out
}

// Table5 measures suffix-tree node insertion (5a) and search (5b) for
// one prepared input and table kind.
func Table5(kind tables.Kind, in SuffixInput) (insert, search time.Duration) {
	res := suffixapp.Run(in.Tree, in.Patterns, kind)
	return res.InsertTime, res.SearchTime
}

// GraphInput is a prepared graph workload shared by Tables 6-8.
type GraphInput struct {
	Name    graph.Name
	G       *graph.Graph
	Edges   []graph.Edge
	Labels  []uint32 // contraction relabeling (Table 6)
	Weights []uint16
}

// GraphInputs builds the paper's three graphs at ~n vertices, with the
// maximal-matching relabeling for edge contraction precomputed
// (untimed, as in the paper).
func GraphInputs(n int) []GraphInput {
	out := make([]GraphInput, 0, 3)
	for _, name := range graph.Names {
		g, err := graph.Build(name, n, 71)
		if err != nil {
			panic(err)
		}
		var edges []graph.Edge
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				if int(u) > v {
					edges = append(edges, graph.Edge{U: uint32(v), V: u})
				}
			}
		}
		labels := contract.Relabeling(contract.MaximalMatching(g.NumVertices(), edges))
		weights := make([]uint16, len(edges))
		for i := range weights {
			weights[i] = 1
		}
		out = append(out, GraphInput{Name: name, G: g, Edges: edges, Labels: labels, Weights: weights})
	}
	return out
}

// Table6 measures one edge-contraction round (insert relabeled edges
// with '+' combine, then Elements).
func Table6(kind tables.Kind, in GraphInput) time.Duration {
	start := time.Now()
	contract.Run(kind, in.Edges, in.Labels, in.Weights)
	return time.Since(start)
}

// Table7Variant names the BFS implementations of Table 7.
type Table7Variant string

// Table 7's non-hash rows.
const (
	BFSSerial Table7Variant = "serial"
	BFSArray  Table7Variant = "array"
)

// Table7 measures a full BFS from vertex 0. Pass a table kind for the
// hash rows, or use Table7Baseline for serial/array.
func Table7(kind tables.Kind, in GraphInput) time.Duration {
	start := time.Now()
	bfs.Table(in.G, 0, kind)
	return time.Since(start)
}

// Table7Baseline measures the serial or array-based BFS.
func Table7Baseline(v Table7Variant, in GraphInput) time.Duration {
	start := time.Now()
	switch v {
	case BFSSerial:
		bfs.Serial(in.G, 0)
	case BFSArray:
		bfs.Array(in.G, 0)
	default:
		panic("bench: unknown BFS variant")
	}
	return time.Since(start)
}

// Table8 measures spanning forest with hash-table reservations.
func Table8(kind tables.Kind, in GraphInput) time.Duration {
	start := time.Now()
	spanning.Table(in.G.NumVertices(), in.Edges, kind)
	return time.Since(start)
}

// Table8Baseline measures the serial or array-reservation variant.
func Table8Baseline(v Table7Variant, in GraphInput) time.Duration {
	start := time.Now()
	switch v {
	case BFSSerial:
		spanning.Serial(in.G.NumVertices(), in.Edges)
	case BFSArray:
		spanning.Array(in.G.NumVertices(), in.Edges)
	default:
		panic("bench: unknown spanning variant")
	}
	return time.Since(start)
}
