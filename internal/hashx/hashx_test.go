package hashx

import (
	"testing"
	"testing/quick"
)

func TestMix64Unmix64Inverse(t *testing.T) {
	f := func(x uint64) bool { return Unmix64(Mix64(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, x := range []uint64{0, 1, ^uint64(0), 1 << 63} {
		if Unmix64(Mix64(x)) != x {
			t.Fatalf("inverse broken at %#x", x)
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 output bits on average.
	total := 0
	samples := 0
	for i := 0; i < 64; i++ {
		for _, x := range []uint64{0, 0xdeadbeef, 1 << 40} {
			d := Mix64(x) ^ Mix64(x^(1<<uint(i)))
			total += popcount(d)
			samples++
		}
	}
	mean := float64(total) / float64(samples)
	if mean < 24 || mean > 40 {
		t.Fatalf("avalanche mean %.1f bits, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestHashStringDistinct(t *testing.T) {
	seen := map[uint64]string{}
	words := []string{"", "a", "b", "ab", "ba", "abc", "acb", "hello", "hellp"}
	for _, w := range words {
		h := HashString(w)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %q and %q", prev, w)
		}
		seen[h] = w
	}
	if HashString("stable") != HashString("stable") {
		t.Fatal("HashString not deterministic")
	}
}

func TestRNGStream(t *testing.T) {
	r1 := NewRNG(42)
	r2 := NewRNG(42)
	for i := 0; i < 100; i++ {
		if r1.Next() != r2.Next() {
			t.Fatal("same-seed streams differ")
		}
	}
	r3 := NewRNG(43)
	same := 0
	r1 = NewRNG(42)
	for i := 0; i < 100; i++ {
		if r1.Next() == r3.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestRNGBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestAtMatchesJumpAhead(t *testing.T) {
	// At(seed, i) must be a pure function usable from any goroutine; it
	// should be uniform-ish and deterministic.
	if At(5, 100) != At(5, 100) {
		t.Fatal("At not deterministic")
	}
	if At(5, 100) == At(5, 101) || At(5, 100) == At(6, 100) {
		t.Fatal("At collides on adjacent inputs")
	}
	for i := 0; i < 1000; i++ {
		f := Float64At(9, i)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64At out of range: %g", f)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(123)
	var buckets [8]int
	n := 80000
	for i := 0; i < n; i++ {
		buckets[r.Next()>>61]++
	}
	for b, c := range buckets {
		if c < n/8*9/10 || c > n/8*11/10 {
			t.Fatalf("bucket %d has %d, want ~%d", b, c, n/8)
		}
	}
}
