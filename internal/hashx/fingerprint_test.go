package hashx

import "testing"

// TestFingerprintNonZero pins the empty-slot reservation: no hash may
// produce the zero byte (0x00 is the compact table's empty marker) or
// the tombstone byte 0x01. With bit 7 set by construction both are
// unreachable; this keeps that true under refactors.
func TestFingerprintNonZero(t *testing.T) {
	edges := []uint64{
		0,
		^uint64(0),
		^uint64(0) >> 7, // top seven bits zero, everything else set
		1 << (FingerprintShift - 1),
	}
	for _, h := range edges {
		if fp := Fingerprint(h); fp == 0 || fp == 0x01 {
			t.Fatalf("Fingerprint(%#x) = %#x; 0x00/0x01 are reserved ctrl states", h, fp)
		}
	}
	for i := 0; i < 1<<16; i++ {
		h := At(12345, i)
		if fp := Fingerprint(h); fp == 0 || fp == 0x01 {
			t.Fatalf("Fingerprint(%#x) = %#x; 0x00/0x01 are reserved ctrl states", h, fp)
		}
	}
}

// TestFingerprintRange pins the encoding: bit 7 is always set (it is
// the full-slot discriminant; empty 0x00 and tombstone 0x01 keep it
// clear), so every value lies in [0x80, 0xFF].
func TestFingerprintRange(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		fp := Fingerprint(At(999, i))
		if fp < 0x80 {
			t.Fatalf("Fingerprint = %#x outside [0x80, 0xFF]", fp)
		}
	}
}

// TestFingerprintDisjointFromHomeAndShardBits proves the independence
// claim behind the compact table's determinism argument: the
// fingerprint reads only bits [57, 64) of the hash, so flipping any
// lower bit — home-bucket bits (low log2(m)) or the sharded compact
// table's radix bits [40, 48) — never changes it.
func TestFingerprintDisjointFromHomeAndShardBits(t *testing.T) {
	for i := 0; i < 4096; i++ {
		h := At(77, i)
		want := Fingerprint(h)
		for b := 0; b < FingerprintShift; b++ {
			if got := Fingerprint(h ^ (1 << b)); got != want {
				t.Fatalf("flipping low bit %d changed Fingerprint(%#x): %#x -> %#x", b, h, want, got)
			}
		}
	}
}

// TestFingerprintUsesWholeField is the positive control for the
// disjointness test: every bit inside the field influences the result
// somewhere, and all 128 encodings are reachable.
func TestFingerprintUsesWholeField(t *testing.T) {
	for b := FingerprintShift; b < 64; b++ {
		changed := false
		for i := 0; i < 256 && !changed; i++ {
			h := At(5, i)
			changed = Fingerprint(h) != Fingerprint(h^(1<<uint(b)))
		}
		if !changed {
			t.Fatalf("field bit %d never influences the fingerprint", b)
		}
	}
	var seen [256]bool
	for i := 0; i < 1<<16; i++ {
		seen[Fingerprint(At(31, i))] = true
	}
	for v := 0x80; v <= 0xFF; v++ {
		if !seen[v] {
			t.Fatalf("encoding %#x unreachable in 2^16 draws", v)
		}
	}
}

// TestFingerprintOrderMatchesHashOrder pins the property the compact
// table's word-at-a-time priority pruning relies on: unsigned byte
// order on fingerprints agrees with numeric order on the hashes' top
// seven bits, so ctrl < pattern proves hash < probe hash.
func TestFingerprintOrderMatchesHashOrder(t *testing.T) {
	for i := 0; i < 1<<14; i++ {
		ha, hb := At(42, 2*i), At(42, 2*i+1)
		fa, fb := Fingerprint(ha), Fingerprint(hb)
		switch {
		case ha>>FingerprintShift < hb>>FingerprintShift:
			if fa >= fb {
				t.Fatalf("top7(%#x) < top7(%#x) but fp %#x >= %#x", ha, hb, fa, fb)
			}
		case ha>>FingerprintShift > hb>>FingerprintShift:
			if fa <= fb {
				t.Fatalf("top7(%#x) > top7(%#x) but fp %#x <= %#x", ha, hb, fa, fb)
			}
		default:
			if fa != fb {
				t.Fatalf("equal top bits but fp %#x != %#x", fa, fb)
			}
		}
	}
}
