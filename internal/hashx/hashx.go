// Package hashx provides the hash functions and deterministic
// pseudo-random number generators used throughout the reproduction. All
// functions are pure and seed-stable, so every experiment is exactly
// repeatable.
package hashx

// Mix64 is the splitmix64 finalizer: an invertible mixing of a 64-bit
// word with strong avalanche behaviour. It is the hash function h used by
// all open-addressing tables (the PBBS code the paper builds on uses an
// equivalent multiplicative finalizer).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Unmix64 inverts Mix64. Having the inverse lets tests construct keys
// that hash to chosen buckets, which the collision and cluster tests use.
func Unmix64(x uint64) uint64 {
	x = (x ^ (x >> 31) ^ (x >> 62)) * 0x319642b2d24d8ec3
	x = (x ^ (x >> 27) ^ (x >> 54)) * 0x96de1b173f119089
	x = x ^ (x >> 30) ^ (x >> 60)
	return x - 0x9e3779b97f4a7c15
}

// HashString hashes a byte string with the FNV-1a core followed by a
// Mix64 finalization, giving 64-bit string hashing good enough for the
// trigram workloads.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return Mix64(h)
}

// RNG is a splitmix64 pseudo-random generator: tiny state, deterministic
// streams, and cheap jump-ahead (each index can be hashed independently),
// which lets parallel loops draw the i-th random number without
// coordination.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value in the stream.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniform in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// Float64 returns a value uniform in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// At returns the i-th value of the stream with the given seed without
// generating the preceding ones: splitmix64 applied to seed + i*gamma.
// Parallel generators use At so that the produced sequence is identical
// to the sequential one regardless of how the loop is scheduled.
func At(seed uint64, i int) uint64 {
	return Mix64(seed + uint64(i)*0x9e3779b97f4a7c15)
}

// Float64At is At mapped into [0, 1).
func Float64At(seed uint64, i int) float64 {
	return float64(At(seed, i)>>11) / (1 << 53)
}
