// Package hashx provides the hash functions and deterministic
// pseudo-random number generators used throughout the reproduction. All
// functions are pure and seed-stable, so every experiment is exactly
// repeatable.
package hashx

// Mix64 is the splitmix64 finalizer: an invertible mixing of a 64-bit
// word with strong avalanche behaviour. It is the hash function h used by
// all open-addressing tables (the PBBS code the paper builds on uses an
// equivalent multiplicative finalizer).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Unmix64 inverts Mix64. Having the inverse lets tests construct keys
// that hash to chosen buckets, which the collision and cluster tests use.
func Unmix64(x uint64) uint64 {
	x = (x ^ (x >> 31) ^ (x >> 62)) * 0x319642b2d24d8ec3
	x = (x ^ (x >> 27) ^ (x >> 54)) * 0x96de1b173f119089
	x = x ^ (x >> 30) ^ (x >> 60)
	return x - 0x9e3779b97f4a7c15
}

// HashString hashes a byte string with the FNV-1a core followed by a
// Mix64 finalization, giving 64-bit string hashing good enough for the
// trigram workloads.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return Mix64(h)
}

// FingerprintShift is the bit offset of the 7-bit fingerprint field
// inside a 64-bit hash: Fingerprint reads bits [57, 64) — the hash's
// top seven bits — and nothing else. The placement is load-bearing
// twice over:
//
//   - the compact table keys its displacement priority on the *full
//     hash* (numeric order, highest first along each probe path), so
//     the top seven bits are the most significant digits of the
//     priority key. Storing exactly those bits in the control byte
//     makes an unsigned byte comparison of two full-slot ctrl bytes a
//     coarse comparison of the slots' priorities: ctrl < pattern
//     proves the slot's hash is strictly below the probe's, which
//     under the descending-priority probe invariant ends a miss — in
//     the control word, before any cell load;
//   - the home bucket reduces the hash modulo the table size and
//     therefore reads the *low* log2(m) bits — disjoint from the
//     fingerprint for every table below 2^57 cells, so the fingerprint
//     carries no information about where the element lands.
//
// core.ShardedCompactTable's shard radix reads bits [40, 48) (see
// shardedcompact.go), keeping all three hash consumers — home bucket,
// shard radix, fingerprint — on disjoint bit ranges. Because the
// fingerprint is a pure function of the hash, the quiescent ctrl byte
// of a slot is determined by the cell it shadows, which is what keeps
// the control array history-independent for free.
const FingerprintShift = 57

// Fingerprint returns the control-array byte for a full slot holding an
// element with hash h: bit 7 set (the full/empty discriminant; empty is
// 0x00 and the transient tombstone 0x01, both with bit 7 clear) and the
// hash's top seven bits in bits 0-6. The result is always in
// [0x80, 0xFF] — nonzero by construction, no remapping — and byte order
// on full-slot fingerprints agrees with numeric order on the hashes'
// top seven bits, which is what the compact table's word-at-a-time
// priority pruning relies on.
func Fingerprint(h uint64) byte {
	return byte(h>>FingerprintShift) | 0x80
}

// RNG is a splitmix64 pseudo-random generator: tiny state, deterministic
// streams, and cheap jump-ahead (each index can be hashed independently),
// which lets parallel loops draw the i-th random number without
// coordination.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value in the stream.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniform in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// Float64 returns a value uniform in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// At returns the i-th value of the stream with the given seed without
// generating the preceding ones: splitmix64 applied to seed + i*gamma.
// Parallel generators use At so that the produced sequence is identical
// to the sequential one regardless of how the loop is scheduled.
func At(seed uint64, i int) uint64 {
	return Mix64(seed + uint64(i)*0x9e3779b97f4a7c15)
}

// Float64At is At mapped into [0, 1).
func Float64At(seed uint64, i int) float64 {
	return float64(At(seed, i)>>11) / (1 << 53)
}
