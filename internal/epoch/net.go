package epoch

// Wire protocol for serving an epoch Server over a byte stream
// (cmd/phserver listens, cmd/phload -server drives). The protocol is
// deliberately tiny and stdlib-only:
//
//	request  (21 bytes, little-endian):
//	    id uint64 | op uint8 | key uint64 | timeout_us uint32
//	response (21-byte header + payload):
//	    id uint64 | status uint8 | value uint64 | nelems uint32
//	    followed by nelems little-endian uint64 elements (OpElements).
//
// Requests pipeline freely; responses come back in request order per
// connection (ops from one connection land in epochs in submission
// order, and epochs complete in order, so in-order delivery adds no
// latency). timeout_us is the per-request deadline; 0 means none.
// Admission refusals (StatusOverloaded, StatusClosed, ...) use the
// same response frames, so an overloaded server degrades into explicit
// per-request shed signals, never into dropped bytes or stalled
// connections.

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"phasehash/internal/core"
)

// Response status codes.
const (
	StatusOK         uint8 = iota // op executed; find hit carries the value
	StatusMiss                    // find executed, key absent
	StatusOverloaded              // refused at admission: queue at limit
	StatusDeadline                // deadline expired (blocked admission or shed before flush)
	StatusClosed                  // server is shutting down
	StatusFull                    // insert did not land: table saturated
	StatusCancelled               // result delivery cancelled mid-epoch
	StatusReserved                // insert of the reserved empty element
	StatusInternal                // unexpected server-side error
)

const (
	reqFrameLen  = 21
	respFrameLen = 21
	// maxWireElems bounds an OpElements payload a client will accept
	// (defense against a corrupt length header, not a protocol limit).
	maxWireElems = 1 << 28
)

// statusOf maps a resolved Result to its wire status.
func statusOf(res Result, op Op) uint8 {
	switch {
	case res.Err == nil:
		if op == OpFind && !res.OK {
			return StatusMiss
		}
		return StatusOK
	case errors.Is(res.Err, ErrOverloaded):
		return StatusOverloaded
	case errors.Is(res.Err, ErrClosed):
		return StatusClosed
	case errors.Is(res.Err, core.ErrFull):
		return StatusFull
	case errors.Is(res.Err, core.ErrReservedKey):
		return StatusReserved
	case errors.Is(res.Err, context.DeadlineExceeded):
		return StatusDeadline
	case errors.Is(res.Err, context.Canceled):
		return StatusCancelled
	default:
		return StatusInternal
	}
}

// errOf is the client-side inverse of statusOf.
func errOf(status uint8) error {
	switch status {
	case StatusOK, StatusMiss:
		return nil
	case StatusOverloaded:
		return ErrOverloaded
	case StatusClosed:
		return ErrClosed
	case StatusFull:
		return core.ErrFull
	case StatusReserved:
		return core.ErrReservedKey
	case StatusDeadline:
		return context.DeadlineExceeded
	case StatusCancelled:
		return context.Canceled
	default:
		return fmt.Errorf("epoch: server reported status %d", status)
	}
}

// Serve accepts connections on l and relays their requests into s
// until ctx is done (or l is closed). It returns the first accept
// error (net.ErrClosed after a clean shutdown). Serve does not own s:
// closing the epoch server is the caller's shutdown step.
func Serve(ctx context.Context, l net.Listener, s *Server) error {
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			serveConn(ctx, conn, s)
		}()
	}
}

// inflight is one admitted (or locally refused) request awaiting its
// in-order response slot.
type inflight struct {
	id  uint64
	op  Op
	fut *Future
}

// serveConn relays one connection: a reader loop submits requests, a
// writer loop resolves futures in request order and streams responses.
func serveConn(ctx context.Context, conn net.Conn, s *Server) {
	defer conn.Close()
	connCtx, cancel := context.WithCancel(ctx)
	defer cancel() // sheds this connection's unflushed ops on exit

	// The queue bound only backpressures the reader against a slow
	// writer; admission control proper lives in Server.Submit.
	queue := make(chan inflight, 256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		writeResponses(connCtx, conn, queue)
	}()

	br := bufio.NewReader(conn)
	var frame [reqFrameLen]byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			break // EOF or a torn frame: either way the conversation is over
		}
		id := binary.LittleEndian.Uint64(frame[0:8])
		op := Op(frame[8])
		key := binary.LittleEndian.Uint64(frame[9:17])
		timeoutUs := binary.LittleEndian.Uint32(frame[17:21])

		reqCtx := connCtx
		var reqCancel context.CancelFunc
		if timeoutUs > 0 {
			reqCtx, reqCancel = context.WithTimeout(connCtx, time.Duration(timeoutUs)*time.Microsecond)
		}
		fut, err := s.Submit(reqCtx, op, key)
		if err != nil {
			fut = resolved(Result{Err: err})
		}
		if reqCancel != nil {
			// Release the timer once the future resolves; the future
			// already carries the outcome, so this cancel can't shed it.
			go func(f *Future, stop context.CancelFunc) {
				<-f.Done()
				stop()
			}(fut, reqCancel)
		}
		select {
		case queue <- inflight{id: id, op: op, fut: fut}:
		case <-connCtx.Done():
		}
		if connCtx.Err() != nil {
			break
		}
	}
	cancel()
	wg.Wait()
}

// writeResponses drains the in-flight queue in order, waiting each
// future and framing its result.
func writeResponses(ctx context.Context, conn net.Conn, queue <-chan inflight) {
	bw := bufio.NewWriter(conn)
	for {
		var in inflight
		select {
		case in = <-queue:
		case <-ctx.Done():
			// Flush what's written, then drain without blocking forever:
			// remaining futures resolve during server drain or were shed.
			bw.Flush()
			return
		}
		res, err := in.fut.Wait(ctx)
		if err != nil {
			bw.Flush()
			return
		}
		if writeResponse(bw, in, res) != nil {
			return
		}
		// Flush when no response is immediately pending, so pipelined
		// bursts coalesce but a lone response is not held hostage.
		if len(queue) == 0 {
			if bw.Flush() != nil {
				return
			}
		}
	}
}

// writeResponse frames one resolved result onto the buffered writer.
func writeResponse(bw *bufio.Writer, in inflight, res Result) error {
	var hdr [respFrameLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], in.id)
	hdr[8] = statusOf(res, in.op)
	binary.LittleEndian.PutUint64(hdr[9:17], res.Value)
	var elems []uint64
	if in.op == OpElements && res.Err == nil {
		elems = res.Elems
	}
	binary.LittleEndian.PutUint32(hdr[17:21], uint32(len(elems)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var word [8]byte
	for _, e := range elems {
		binary.LittleEndian.PutUint64(word[:], e)
		if _, err := bw.Write(word[:]); err != nil {
			return err
		}
	}
	return nil
}

// Client is a pipelined client for a served epoch Server. Safe for
// concurrent use; responses are matched to calls by request id.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*ClientFuture
	err     error // sticky transport error
	closed  bool

	readerDone chan struct{}
}

// ClientFuture resolves to a remote operation's response.
type ClientFuture struct {
	status uint8
	value  uint64
	elems  []uint64
	err    error
	done   chan struct{}
}

// Done returns a channel closed when the response (or a transport
// failure) is available.
func (f *ClientFuture) Done() <-chan struct{} { return f.done }

// Result returns the remote result after Done is closed. Value and OK
// mirror the server-side Result; Err is the decoded remote error or
// the transport error that killed the connection.
func (f *ClientFuture) Result() Result {
	if f.err != nil {
		return Result{Err: f.err}
	}
	return Result{Value: f.value, OK: f.status == StatusOK, Elems: f.elems, Err: errOf(f.status)}
}

// Dial connects a Client to a phserver address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriter(conn),
		pending:    make(map[uint64]*ClientFuture),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Do sends one operation with an optional per-request deadline
// (timeout <= 0 means none) and returns its future. The send is
// buffered; Do flushes, so every call is visible to the server without
// further action.
func (c *Client) Do(op Op, key uint64, timeout time.Duration) (*ClientFuture, error) {
	timeoutUs := int64(0)
	if timeout > 0 {
		timeoutUs = int64(timeout / time.Microsecond)
		if timeoutUs <= 0 {
			timeoutUs = 1
		}
		if timeoutUs > int64(^uint32(0)) {
			timeoutUs = int64(^uint32(0))
		}
	}
	f := &ClientFuture{done: make(chan struct{})}

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = f
	var frame [reqFrameLen]byte
	binary.LittleEndian.PutUint64(frame[0:8], id)
	frame[8] = byte(op)
	binary.LittleEndian.PutUint64(frame[9:17], key)
	binary.LittleEndian.PutUint32(frame[17:21], uint32(timeoutUs))
	_, err := c.bw.Write(frame[:])
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		delete(c.pending, id)
		c.fail(err)
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()
	return f, nil
}

// Call is Do + wait: one synchronous round trip.
func (c *Client) Call(op Op, key uint64, timeout time.Duration) (Result, error) {
	f, err := c.Do(op, key, timeout)
	if err != nil {
		return Result{}, err
	}
	<-f.Done()
	res := f.Result()
	return res, nil
}

// Close tears down the connection; outstanding futures resolve with
// the transport error.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// fail marks the transport dead and resolves all pending futures with
// err. Callers must hold c.mu.
func (c *Client) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	for id, f := range c.pending {
		f.err = c.err
		close(f.done)
		delete(c.pending, id)
	}
}

// readLoop decodes response frames and resolves pending futures.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReader(c.conn)
	var hdr [respFrameLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.mu.Lock()
			c.fail(err)
			c.mu.Unlock()
			return
		}
		id := binary.LittleEndian.Uint64(hdr[0:8])
		status := hdr[8]
		value := binary.LittleEndian.Uint64(hdr[9:17])
		nelems := binary.LittleEndian.Uint32(hdr[17:21])
		var elems []uint64
		if nelems > 0 {
			if nelems > maxWireElems {
				c.mu.Lock()
				c.fail(fmt.Errorf("epoch: response claims %d elements", nelems))
				c.mu.Unlock()
				return
			}
			elems = make([]uint64, nelems)
			var word [8]byte
			for i := range elems {
				if _, err := io.ReadFull(br, word[:]); err != nil {
					c.mu.Lock()
					c.fail(err)
					c.mu.Unlock()
					return
				}
				elems[i] = binary.LittleEndian.Uint64(word[:])
			}
		}
		c.mu.Lock()
		f, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			f.status = status
			f.value = value
			f.elems = elems
			close(f.done)
		}
	}
}
