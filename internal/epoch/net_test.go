package epoch

import (
	"context"
	"errors"
	"net"
	"sort"
	"testing"
	"time"

	"phasehash/internal/core"
)

// startWireServer serves a fresh epoch server on a loopback listener
// and returns its address plus a shutdown func.
func startWireServer(t *testing.T, cfg Config) (string, *Server, func()) {
	t.Helper()
	s := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := Serve(ctx, ln, s); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Errorf("Serve: %v", err)
		}
	}()
	shutdown := func() {
		cancel()
		<-serveDone
		closeCtx, closeCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer closeCancel()
		if err := s.Close(closeCtx); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
	return ln.Addr().String(), s, shutdown
}

func TestWireRoundTrip(t *testing.T) {
	addr, _, shutdown := startWireServer(t, Config{Size: 1 << 12, FlushInterval: time.Millisecond})
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	for _, k := range []uint64{11, 22, 33} {
		res, err := c.Call(OpInsert, k, time.Second)
		if err != nil || res.Err != nil || !res.OK {
			t.Fatalf("insert %d: res=%+v err=%v", k, res, err)
		}
	}
	if res, _ := c.Call(OpFind, 22, time.Second); !res.OK || res.Value != 22 {
		t.Fatalf("find hit: %+v", res)
	}
	if res, _ := c.Call(OpFind, 99, time.Second); res.OK || res.Err != nil {
		t.Fatalf("find miss: %+v", res)
	}
	res, _ := c.Call(OpElements, 0, time.Second)
	if res.Err != nil || len(res.Elems) != 3 {
		t.Fatalf("elements: %+v", res)
	}
	got := append([]uint64(nil), res.Elems...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, want := range []uint64{11, 22, 33} {
		if got[i] != want {
			t.Fatalf("elements = %v", got)
		}
	}
	if res, _ := c.Call(OpDelete, 11, time.Second); !res.OK {
		t.Fatalf("delete: %+v", res)
	}
	if res, _ := c.Call(OpFind, 11, time.Second); res.OK {
		t.Fatalf("find after delete: %+v", res)
	}
}

// TestWirePipelined drives many concurrent in-flight requests through
// one connection and checks every response matches its request.
func TestWirePipelined(t *testing.T) {
	addr, _, shutdown := startWireServer(t, Config{Size: 1 << 14, MaxBatch: 64, QueueLimit: 4096, FlushInterval: time.Millisecond})
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	const n = 500
	futs := make([]*ClientFuture, n)
	for i := 0; i < n; i++ {
		futs[i], err = c.Do(OpInsert, uint64(i+1), time.Second)
		if err != nil {
			t.Fatalf("Do(%d): %v", i, err)
		}
	}
	for i, f := range futs {
		<-f.Done()
		if res := f.Result(); res.Err != nil || !res.OK {
			t.Fatalf("insert %d: %+v", i, res)
		}
	}
	for i := 0; i < n; i++ {
		futs[i], err = c.Do(OpFind, uint64(i+1), time.Second)
		if err != nil {
			t.Fatalf("Do(find %d): %v", i, err)
		}
	}
	for i, f := range futs {
		<-f.Done()
		if res := f.Result(); !res.OK || res.Value != uint64(i+1) {
			t.Fatalf("find %d: %+v", i, res)
		}
	}
}

// TestWireOverloadStatus: a saturated fail-fast server refuses with
// StatusOverloaded on the wire instead of stalling the connection.
func TestWireOverloadStatus(t *testing.T) {
	addr, _, shutdown := startWireServer(t, Config{
		Size: 1 << 12, MaxBatch: 8, QueueLimit: 8,
		FlushInterval: time.Millisecond, FlushDelay: 20 * time.Millisecond,
	})
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	futs := make([]*ClientFuture, 0, 256)
	for i := 0; i < 256; i++ {
		f, err := c.Do(OpInsert, uint64(i+1), 0)
		if err != nil {
			t.Fatalf("Do(%d): %v", i, err)
		}
		futs = append(futs, f)
	}
	okN, shedN := 0, 0
	for i, f := range futs {
		<-f.Done()
		switch res := f.Result(); {
		case res.Err == nil && res.OK:
			okN++
		case errors.Is(res.Err, ErrOverloaded):
			shedN++
		default:
			t.Fatalf("future %d: %+v", i, res)
		}
	}
	if shedN == 0 {
		t.Fatal("no StatusOverloaded under 32x queue pressure")
	}
	if okN == 0 {
		t.Fatal("everything shed: no goodput at all")
	}
	t.Logf("ok=%d overloaded=%d", okN, shedN)
}

// TestWireDeadlineStatus: a request whose deadline cannot be met comes
// back as StatusDeadline, not a hang.
func TestWireDeadlineStatus(t *testing.T) {
	addr, _, shutdown := startWireServer(t, Config{
		Size: 1 << 12, FlushInterval: time.Millisecond, FlushDelay: 50 * time.Millisecond,
	})
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	// Prime an epoch so the next request waits behind a slow flush.
	if _, err := c.Do(OpInsert, 1, 0); err != nil {
		t.Fatalf("prime: %v", err)
	}
	f, err := c.Do(OpInsert, 2, 100*time.Microsecond)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	<-f.Done()
	if res := f.Result(); !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("res = %+v, want DeadlineExceeded", res)
	}
}

// TestWireReservedStatus: inserting the reserved empty element is
// refused at admission and surfaces as StatusReserved.
func TestWireReservedStatus(t *testing.T) {
	addr, _, shutdown := startWireServer(t, Config{Size: 1 << 10, FlushInterval: time.Millisecond})
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	res, err := c.Call(OpInsert, core.Empty, time.Second)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !errors.Is(res.Err, core.ErrReservedKey) {
		t.Fatalf("res = %+v, want ErrReservedKey", res)
	}
}

// TestWireShutdownMidTraffic: shutting the server down under live
// client traffic must not wedge either side — the client sees clean
// refusals or transport EOF, and shutdown completes.
func TestWireShutdownMidTraffic(t *testing.T) {
	addr, _, shutdown := startWireServer(t, Config{Size: 1 << 12, FlushInterval: time.Millisecond})

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	stop := make(chan struct{})
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Do(OpInsert, i, 10*time.Millisecond); err != nil {
				return // transport closed by shutdown: expected
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown wedged under live traffic")
	}
	close(stop)
	select {
	case <-clientDone:
	case <-time.After(5 * time.Second):
		t.Fatal("client goroutine wedged after shutdown")
	}
}
