package epoch

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"
)

// BenchmarkEpochServerMixed drives the server with the phload op mix
// (50% insert / 25% find / 25% delete) in a windowed open loop and
// reports the serving-path metrics benchjson aggregates alongside the
// kernel rows: admit-to-complete latency quantiles (p50admit-us,
// p99admit-us) and the shed fraction of offered ops (shed/op).
// `make benchdiff` runs this, so drift in the scheduler's latency or
// admission behavior surfaces exactly like a kernel regression.
func BenchmarkEpochServerMixed(b *testing.B) {
	s := NewServer(Config{
		Size:          1 << 16,
		MaxBatch:      1 << 10,
		QueueLimit:    1 << 12,
		FlushInterval: 100 * time.Microsecond,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			b.Fatalf("Close: %v", err)
		}
	}()

	type inflight struct {
		fut *Future
		t0  time.Time
	}
	latencies := make([]time.Duration, 0, b.N)
	pend := make([]inflight, 0, 1<<12)
	// Futures of one epoch resolve together and pend is bounded by the
	// queue limit, so reaping in admission order adds microseconds of
	// skew at most.
	reap := func() {
		for _, p := range pend {
			<-p.fut.Done()
			latencies = append(latencies, time.Since(p.t0))
		}
		pend = pend[:0]
	}
	shed := 0

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := OpInsert
		switch i & 3 {
		case 1:
			op = OpFind
		case 3:
			op = OpDelete
		}
		key := uint64(i&0xffff) + 1
		t0 := time.Now()
		fut, err := s.Submit(context.Background(), op, key)
		switch {
		case err == nil:
			pend = append(pend, inflight{fut, t0})
			if len(pend) == cap(pend) {
				reap()
			}
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			b.Fatalf("Submit: %v", err)
		}
	}
	s.Flush()
	reap()
	b.StopTimer()

	if len(latencies) == 0 {
		b.Fatal("no ops admitted")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := latencies[len(latencies)/2]
	p99 := latencies[len(latencies)*99/100]
	b.ReportMetric(float64(p50.Nanoseconds())/1e3, "p50admit-us")
	b.ReportMetric(float64(p99.Nanoseconds())/1e3, "p99admit-us")
	b.ReportMetric(float64(shed)/float64(b.N), "shed/op")
}
