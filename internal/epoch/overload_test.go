package epoch

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestOverloadGracefulDegradation is the acceptance test for the
// overload story: producers offer at least twice what the flusher can
// sustain (FlushDelay caps capacity at MaxBatch ops per 5ms) and the
// server must degrade gracefully rather than collapse —
//
//   - excess load is shed explicitly (ErrOverloaded, counted),
//   - the pending queue never exceeds its configured bound,
//   - admit-to-complete latency for ADMITTED ops stays bounded by the
//     queue depth (a few epochs), nowhere near the run length it would
//     approach if the queue were unbounded,
//   - shutdown under load drains every admitted future.
func TestOverloadGracefulDegradation(t *testing.T) {
	const (
		producers = 4
		runFor    = 750 * time.Millisecond
	)
	cfg := Config{
		Size:          1 << 12,
		MaxBatch:      32,
		QueueLimit:    64,
		FlushInterval: time.Millisecond,
		FlushDelay:    5 * time.Millisecond, // capacity ≈ 6.4k ops/s; tight submit loops offer far more
	}
	s := NewServer(cfg)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		attempts  uint64
	)
	var wg, reapers sync.WaitGroup
	stop := time.Now().Add(runFor)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			local := uint64(0)
			for i := 0; time.Now().Before(stop); i++ {
				local++
				op := OpInsert
				switch i % 4 {
				case 1:
					op = OpFind
				case 3:
					op = OpDelete
				}
				key := uint64(p*1009+i%1024) + 1
				t0 := time.Now()
				fut, err := s.Submit(context.Background(), op, key)
				switch {
				case err == nil:
					reapers.Add(1)
					go func() {
						defer reapers.Done()
						<-fut.Done()
						d := time.Since(t0)
						mu.Lock()
						latencies = append(latencies, d)
						mu.Unlock()
					}()
				case errors.Is(err, ErrOverloaded):
					runtime.Gosched() // single-core CI: let the flusher drain
				default:
					t.Errorf("Submit: unexpected error %v", err)
					return
				}
			}
			mu.Lock()
			attempts += local
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	// Shutdown under load: Close must drain every admitted op.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close under load: %v", err)
	}
	reapers.Wait()

	st := s.Stats()
	t.Logf("attempts=%d admitted=%d flushed=%d shedOverload=%d epochs=%d maxQueue=%d",
		attempts, st.Admitted, st.FlushedOps, st.ShedOverload, st.Epochs, st.MaxQueue)

	if st.ShedOverload == 0 {
		t.Fatal("no ErrOverloaded sheds: the load never exceeded capacity, test proves nothing")
	}
	if attempts < 2*st.FlushedOps {
		t.Fatalf("offered load %d below 2x flushed %d: not an overload run", attempts, st.FlushedOps)
	}
	if st.MaxQueue > cfg.QueueLimit {
		t.Fatalf("queue depth reached %d, bound is %d", st.MaxQueue, cfg.QueueLimit)
	}
	if uint64(len(latencies)) != st.Admitted {
		t.Fatalf("resolved %d futures, admitted %d: Close leaked admitted ops", len(latencies), st.Admitted)
	}
	if len(latencies) == 0 {
		t.Fatal("nothing admitted: no goodput under overload")
	}

	// Bounded latency for admitted work: the queue bound caps the
	// backlog at QueueLimit/MaxBatch epochs plus the one in flight, so
	// ~3 FlushDelays (~15ms) in theory. 250ms allows an order of
	// magnitude of CI scheduling noise while still being far below the
	// ~750ms an unbounded queue would push the tail toward.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	p50 := latencies[len(latencies)/2]
	t.Logf("admit-to-complete p50=%v p99=%v max=%v", p50, p99, latencies[len(latencies)-1])
	if p99 > 250*time.Millisecond {
		t.Fatalf("admitted p99 latency %v: not bounded by the queue depth", p99)
	}
}
