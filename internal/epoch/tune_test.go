package epoch

import (
	"strings"
	"testing"

	"phasehash/internal/parallel"
	"phasehash/internal/tune"
)

// pathLines filters a decision trace down to the flush-path decisions:
// the grain knob is performance-only and window-dependent (it reads
// the process-global counter core, which other activity in the test
// binary advances), so path lines are what a scripted replay can pin.
func pathLines(trace string) []string {
	var out []string
	for _, ln := range strings.Split(trace, "\n") {
		if strings.Contains(ln, "path=") {
			out = append(out, ln)
		}
	}
	return out
}

// TestTunePathSelection drives a Tune-enabled manual-flush server
// through three epochs whose batch sizes cross both path thresholds:
// the selector must record serial, then parallel, then sharded, the
// quiescent table must hold every inserted element whichever path
// executed each epoch (history independence), and the path decisions
// must replay identically from a bare controller fed the scripted
// batch sizes — the unit-level version of the detres tuning oracle.
func TestTunePathSelection(t *testing.T) {
	const big = tune.ParallelBatchMax + 64
	// The server's controller applies the process-global grain knob;
	// restore the default so this test cannot leak tuning into others.
	defer parallel.SetBlocksPerWorker(0)
	s := manualServer(t, Config{Size: 1 << 16, MaxBatch: big + 16, QueueLimit: big + 16, Tune: true})

	epochSizes := []int{tune.SerialBatchMax / 2, tune.ParallelBatchMax / 2, big}
	key := uint64(0)
	for _, n := range epochSizes {
		for i := 0; i < n; i++ {
			key++
			mustSubmit(t, s, OpInsert, key)
		}
		s.Flush()
	}

	if got, want := s.Table().Count(), int(key); got != want {
		t.Fatalf("count after tuned epochs = %d, want %d", got, want)
	}
	trace := s.TuneTrace()
	for _, tok := range []string{"path=serial", "path=parallel", "path=sharded"} {
		if !strings.Contains(trace, tok) {
			t.Fatalf("trace missing %q:\n%s", tok, trace)
		}
	}
	if st := s.Stats(); st.TuneSwitches == 0 {
		t.Fatalf("TuneSwitches = 0 with a non-empty trace:\n%s", trace)
	}

	ctrl := tune.NewController(false)
	for _, n := range epochSizes {
		ctrl.Step()
		ctrl.DecidePath(n, 0, 0)
	}
	got, want := pathLines(trace), pathLines(ctrl.TraceString())
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("server path decisions diverge from scripted replay:\n server: %q\n replay: %q", got, want)
	}
}
