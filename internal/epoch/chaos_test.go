//go:build chaos

package epoch

import (
	"context"
	"errors"
	"testing"

	"phasehash/internal/chaos"
)

// TestChaosCancelCorruptsOnlyDelivery proves the SiteEpochCancel
// injection is live and scoped: with a fault profile armed, result
// deliveries are cancelled at a measurable rate, but every faulted op
// has still executed — the table after the epoch is exactly what a
// fault-free epoch leaves. This is the non-vacuousness check behind the
// detres epoch oracle's byte-identity across fault profiles: if this
// site never fired, the grid would prove nothing about cancellation.
func TestChaosCancelCorruptsOnlyDelivery(t *testing.T) {
	// Mid-rate faults: every CAS site shares FailPm, and a rate of 1000
	// would force the insert CAS retry loops to lose forever.
	chaos.Configure(chaos.Profile{Name: "cancelstorm", FailPm: 600, YieldPm: 100}, 7)
	defer chaos.Disable()

	s := manualServer(t, Config{Size: 1 << 12, MaxBatch: 1 << 10, QueueLimit: 1 << 10})
	const n = 256
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		futs[i] = mustSubmit(t, s, OpInsert, uint64(i+1))
	}
	s.Flush()

	cancelled := 0
	for i, f := range futs {
		res := mustResult(t, f)
		switch {
		case errors.Is(res.Err, context.Canceled):
			cancelled++
		case res.Err != nil:
			t.Fatalf("insert %d: unexpected error %v", i, res.Err)
		}
		// Cancelled delivery or not, the insert must have landed.
		if !s.Table().Contains(uint64(i + 1)) {
			t.Fatalf("key %d missing after epoch (delivery fault reached the table)", i+1)
		}
	}
	if cancelled == 0 {
		t.Fatal("no deliveries cancelled at FailPm=600: SiteEpochCancel injection is dead")
	}
	if got := s.Stats().Cancelled; got != uint64(cancelled) {
		t.Fatalf("stats.Cancelled = %d, observed %d cancelled futures", got, cancelled)
	}
	t.Logf("cancelled %d/%d deliveries; table intact", cancelled, n)
}
