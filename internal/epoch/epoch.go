// Package epoch turns the phase-concurrency contract from a usage
// constraint into a scheduling policy: an epoch server accepts a
// firehose of mixed operations (Insert / Delete / Find / Elements) from
// any number of concurrent clients, buffers them into per-phase
// batches, and flushes each batch — an *epoch* — through the sharded
// owner-computes bulk kernels (core.ShardedTable). Callers get async
// futures; the table only ever sees legal phase-pure traffic.
//
// Within one epoch the phases run in a fixed order: insert, then
// delete, then find/elements. Reads therefore observe every write
// admitted to their epoch, and an element both inserted and deleted in
// the same epoch ends up deleted. Given the multiset of operations
// executed up to any epoch boundary, the quiescent table state at that
// boundary is a pure function of that multiset (history independence,
// the paper's determinism claim) — the detres EpochRunner replays
// scripted epochs across its seed × worker × fault-profile grid and
// byte-compares the quiescent layout after every epoch. What is NOT
// deterministic under live traffic is which epoch an op lands in: that
// depends on arrival timing, deadlines and admission pressure. See
// DESIGN.md §12 for the full claim and its limits.
//
// Robustness is the point, not an afterthought:
//
//   - Admission is bounded (Config.QueueLimit). When the queue is at
//     the limit the caller either gets ErrOverloaded immediately
//     (fail-fast, the default) or blocks until space or its context
//     deadline (Config.Block) — queue depth can never exceed the
//     configured watermark, so overload degrades goodput, never memory.
//   - Per-request deadlines propagate via context.Context: an op whose
//     context is done by flush time is shed *before* the epoch touches
//     the table and its future resolves with the context's error.
//   - Saturation degrades per-future: when TryInsertAll reports
//     ErrFull, a find pass attributes the failure — futures whose
//     element landed (or merged) succeed, the rest resolve with ErrFull
//     (retry with backoff; see the documented policy on ErrOverloaded).
//   - Oversized pending batches are split into multiple epochs of at
//     most Config.MaxBatch ops each, bounding per-epoch latency instead
//     of stalling small requests behind a monster flush.
//   - Close drains: admission stops with ErrClosed, every already
//     admitted op still executes, every future resolves, and the
//     flusher goroutine exits (the shutdown tests assert zero leaks).
//
// Retry policy for ErrOverloaded and ErrFull: both are load signals,
// not corruption. Back off (jittered, starting around one flush
// interval), shrink the request rate, and retry; ErrFull additionally
// means the table needs a larger Size — retrying without deleting or
// resizing will keep failing for the same keys.
package epoch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"phasehash/internal/chaos"
	"phasehash/internal/core"
	"phasehash/internal/obs"
	"phasehash/internal/parallel"
	"phasehash/internal/tune"
)

// Op identifies one operation kind submitted to the server.
type Op uint8

// Operation kinds.
const (
	OpInsert Op = iota
	OpDelete
	OpFind
	OpElements
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpFind:
		return "find"
	case OpElements:
		return "elements"
	default:
		return "unknown-op"
	}
}

// Sentinel errors. core.ErrFull and core.ErrReservedKey also surface
// through futures; all are matchable with errors.Is.
var (
	// ErrOverloaded reports fail-fast admission refusal: the pending
	// queue is at Config.QueueLimit. Back off and retry.
	ErrOverloaded = errors.New("epoch: admission queue full")

	// ErrClosed reports submission to a closed (or closing) server.
	ErrClosed = errors.New("epoch: server closed")
)

// Result is the outcome of one submitted operation.
type Result struct {
	// Value is the stored element for OpFind (core.Empty when absent).
	Value uint64
	// OK reports success: present for OpFind, landed-or-merged for
	// OpInsert, executed for OpDelete/OpElements.
	OK bool
	// Elems is the epoch's deterministic Elements snapshot for
	// OpElements. The slice is shared by every OpElements future of the
	// epoch: treat it as read-only.
	Elems []uint64
	// Err is nil on success; ErrOverloaded / ErrClosed / the request
	// context's error (shed before execution) / core.ErrFull (insert
	// did not land) / context.Canceled (delivery cancelled).
	Err error
}

// Future resolves to the Result of one submitted op when its epoch
// completes (or immediately, when the op was shed).
type Future struct {
	res  Result
	done chan struct{}
}

// Done returns a channel closed when the result is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the result is available or ctx is done. A ctx
// error does NOT cancel the operation: an admitted op still executes
// in its epoch; only the caller stops waiting.
func (f *Future) Wait(ctx context.Context) (Result, error) {
	select {
	case <-f.done:
		return f.res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Result returns the resolved result; it must only be called after
// Done is closed (Wait returned nil).
func (f *Future) Result() Result { return f.res }

// resolved builds an already-resolved Future (shed paths).
func resolved(res Result) *Future {
	f := &Future{res: res, done: make(chan struct{})}
	close(f.done)
	return f
}

// Config parameterizes a Server. The zero value is usable: defaults
// are applied by NewServer (documented per field).
type Config struct {
	// Size is the total table capacity in cells (default 1<<20). Size
	// with the usual headroom: load factor below ~0.9.
	Size int
	// Shards is the shard count (default: the automatic policy of
	// core.NewShardedTable). Pin it explicitly where the deterministic
	// layout must be reproducible across machines.
	Shards int
	// MaxBatch is the epoch-size watermark (default 4096): a pending
	// batch larger than this is split into multiple epochs of at most
	// MaxBatch ops, bounding per-epoch flush latency.
	MaxBatch int
	// QueueLimit bounds the admission queue (default 4×MaxBatch).
	// Submit never lets the pending queue exceed it. A limit below
	// MaxBatch means the watermark can never trip: in scripted mode
	// (FlushInterval 0) the caller's explicit Flush is then the only
	// thing that drains a full queue.
	QueueLimit int
	// FlushInterval is the longest a pending op lingers before a
	// partial epoch flushes (default 0: flush only at the MaxBatch
	// watermark, an explicit Flush, or Close — the scripted mode the
	// determinism oracle and the tests drive).
	FlushInterval time.Duration
	// Block switches admission from fail-fast ErrOverloaded to
	// block-with-deadline: Submit waits for queue space until the
	// request context is done.
	Block bool
	// FlushDelay is an artificial per-epoch delay applied before each
	// flush — an experiment knob for simulating a slower backend in
	// overload soaks and tests (see EXPERIMENTS.md). Zero in production.
	FlushDelay time.Duration
	// Tune enables the adaptive flush-path selector (internal/tune): a
	// per-server controller picks serial, parallel-atomic or
	// sharded-bulk execution for each epoch's phases from that epoch's
	// batch sizes, and adjusts the parallel loop grain from the
	// always-on counter core at flush boundaries. All three paths apply
	// the same operation multiset, so by history independence the
	// quiescent table state is identical whichever is picked; the
	// decision trace itself is deterministic (schedule-independent
	// inputs only) and exposed via TuneTrace. Off by default: the
	// static policy flushes every phase through the sharded bulk
	// kernels.
	Tune bool
}

// withDefaults returns cfg with unset fields defaulted.
func (cfg Config) withDefaults() Config {
	if cfg.Size <= 0 {
		cfg.Size = 1 << 20
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 4 * cfg.MaxBatch
	}
	return cfg
}

// Stats is the always-on operational counter snapshot of a Server
// (build-tag-free, unlike the obs telemetry: admission decisions need
// the queue depth anyway, so the counters ride the same mutex).
type Stats struct {
	Admitted     uint64 // ops past the admission gate
	ShedOverload uint64 // refused at admission (fail-fast or blocked ctx done)
	ShedDeadline uint64 // shed at flush: request context done before the epoch
	Cancelled    uint64 // deliveries cancelled (chaos injection)
	Epochs       uint64 // epochs flushed
	Splits       uint64 // extra epochs from splitting oversized batches
	FlushedOps   uint64 // ops executed across all epochs
	InsertOps    uint64 // insert ops executed (per-class split of FlushedOps)
	DeleteOps    uint64 // delete ops executed
	ReadOps      uint64 // find + elements ops executed
	InsertFull   uint64 // insert futures resolved with core.ErrFull
	TuneSwitches uint64 // flush-path/kind decisions recorded by the tuner (0 when Tune off)
	MaxQueue     int    // deepest pending queue observed (≤ QueueLimit always)
}

// pendingOp is one admitted, not-yet-flushed operation.
type pendingOp struct {
	op       Op
	key      uint64
	ctx      context.Context
	admitted time.Time
	fut      *Future
}

// Server is the phase-batched epoch scheduler. Create with NewServer;
// all methods are safe for concurrent use.
type Server struct {
	cfg   Config
	table *core.ShardedTable[core.SetOps]

	// ctrl is the adaptive flush-path controller (nil when Config.Tune
	// is off). Only the flusher goroutine touches it, so it needs no
	// locking; TuneTrace documents its quiescent-read contract.
	ctrl *tune.Controller

	mu      sync.Mutex
	notFull *sync.Cond
	pending []pendingOp
	closed  bool
	stats   Stats

	kick     chan struct{}      // first op landed in an empty queue
	kickFull chan struct{}      // queue reached the MaxBatch watermark
	flushReq chan chan struct{} // explicit Flush requests (ack channel)
	closing  chan struct{}      // Close requested
	done     chan struct{}      // flusher exited
}

// NewServer builds a server over a fresh sharded table and starts its
// flusher goroutine. Close must be called to release it.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return NewServerWith(cfg, core.NewShardedTable[core.SetOps](cfg.Size, cfg.Shards))
}

// NewServerWith is NewServer over a caller-built table (the oracle
// pins the shard count this way). The server takes ownership: the
// caller must not touch the table until after Close (or outside an
// explicit quiescent point, see Table).
func NewServerWith(cfg Config, table *core.ShardedTable[core.SetOps]) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		table:    table,
		kick:     make(chan struct{}, 1),
		kickFull: make(chan struct{}, 1),
		flushReq: make(chan chan struct{}),
		closing:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.notFull = sync.NewCond(&s.mu)
	if cfg.Tune {
		s.ctrl = tune.NewController(true)
	}
	go s.run()
	return s
}

// Submit admits one operation. It returns a Future resolving when the
// op's epoch completes, or an admission error: ErrOverloaded (queue at
// the limit, fail-fast mode), the context's error (blocking mode wait
// expired, or the context was already done), ErrClosed, or
// core.ErrReservedKey (inserting the reserved empty element — rejected
// here so saturation is the only insert error an epoch can see).
//
//phasehash:nondet admission stamps wall-clock admit times for the latency telemetry; the table state never depends on them
func (s *Server) Submit(ctx context.Context, op Op, key uint64) (*Future, error) {
	if op == OpInsert && key == core.Empty {
		return nil, fmt.Errorf("%w: %#x is the reserved empty element", core.ErrReservedKey, core.Empty)
	}
	if chaos.Enabled {
		chaos.Yield(chaos.SiteEpochAdmit)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if len(s.pending) < s.cfg.QueueLimit {
			break
		}
		if !s.cfg.Block {
			s.stats.ShedOverload++
			s.mu.Unlock()
			if obs.Enabled {
				obs.RecordEpochShed(true)
			}
			return nil, ErrOverloaded
		}
		if err := ctx.Err(); err != nil {
			s.stats.ShedOverload++
			s.mu.Unlock()
			if obs.Enabled {
				obs.RecordEpochShed(true)
			}
			return nil, err
		}
		// Blocking admission: wait for the flusher to drain. The
		// AfterFunc wakes every waiter when this request's context
		// fires; taking the mutex in the callback orders the broadcast
		// after this goroutine is parked in Wait.
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.notFull.Broadcast()
			s.mu.Unlock()
		})
		s.notFull.Wait()
		stop()
	}
	fut := &Future{done: make(chan struct{})}
	s.pending = append(s.pending, pendingOp{op: op, key: key, ctx: ctx, admitted: time.Now(), fut: fut})
	n := len(s.pending)
	if n > s.stats.MaxQueue {
		s.stats.MaxQueue = n
	}
	s.stats.Admitted++
	s.mu.Unlock()
	if obs.Enabled {
		obs.RecordEpochAdmit(n)
	}
	if n >= s.cfg.MaxBatch {
		select {
		case s.kickFull <- struct{}{}:
		default:
		}
	} else if n == 1 {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	return fut, nil
}

// Flush forces everything currently pending into an epoch (or several,
// when over the MaxBatch watermark) and returns once those epochs have
// completed. Ops admitted concurrently with Flush may or may not be
// included. On a closed server Flush returns immediately: Close
// already drained.
func (s *Server) Flush() {
	ack := make(chan struct{})
	select {
	case s.flushReq <- ack:
	case <-s.done:
		return
	}
	select {
	case <-ack:
	case <-s.done:
	}
}

// Close stops admission (subsequent Submits fail with ErrClosed),
// drains every already admitted op through final epochs, resolves
// every future, and stops the flusher goroutine. It returns nil once
// the drain completes, or ctx's error if ctx expires first (the drain
// still finishes in the background).
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.notFull.Broadcast()
	s.mu.Unlock()
	if !already {
		close(s.closing)
	}
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns a snapshot of the operational counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// QueueDepth reports the current pending-op count (diagnostics).
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Table exposes the underlying sharded table for quiescent use only:
// after Close, or between a Flush and any further Submit with no
// concurrent clients (the determinism oracle's epoch boundaries).
func (s *Server) Table() *core.ShardedTable[core.SetOps] { return s.table }

// TuneTrace returns the adaptive controller's decision trace, one
// decision per line ("" when Config.Tune is off). Quiescent use only —
// after Close, or between a Flush and any further Submit — because the
// flusher goroutine appends to the trace during epochs. The trace is
// deterministic for a fixed epoch script (the detres tuning oracle
// byte-compares it across its schedule grid).
func (s *Server) TuneTrace() string {
	if s.ctrl == nil {
		return ""
	}
	return s.ctrl.TraceString()
}

// --- flusher ---

// run is the flusher goroutine: it waits for work (watermark kicks,
// linger timeouts, explicit flushes, shutdown), claims the pending
// batch, and flushes it as one or more epochs. The linger timer decides
// WHEN an epoch flushes, never what the flushed multiset produces.
func (s *Server) run() {
	defer close(s.done)
	kickCh := s.kick
	if s.cfg.FlushInterval <= 0 {
		kickCh = nil // manual mode: only the watermark, Flush or Close trigger
	}
	for {
		var ack chan struct{}
		select {
		case <-kickCh:
			if s.QueueDepth() == 0 {
				continue // stale kick: the batch was already claimed
			}
			ack = s.linger()
		case <-s.kickFull:
		case ack = <-s.flushReq:
		case <-s.closing:
			s.drain()
			return
		}
		s.flushBatch(s.take())
		if ack != nil {
			close(ack)
		}
	}
}

// linger holds a partial epoch open for up to FlushInterval so small
// requests batch up, returning early when the watermark fills the
// batch, a Flush arrives (its ack is returned for the caller to close
// after flushing), or the server starts closing.
func (s *Server) linger() chan struct{} {
	t := time.NewTimer(s.cfg.FlushInterval)
	defer t.Stop()
	for {
		if s.QueueDepth() >= s.cfg.MaxBatch {
			return nil
		}
		select {
		case <-s.kickFull:
			return nil
		case <-t.C:
			return nil
		case ack := <-s.flushReq:
			return ack
		case <-s.closing:
			return nil
		}
	}
}

// take claims the whole pending queue and wakes blocked submitters.
func (s *Server) take() []pendingOp {
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.notFull.Broadcast()
	s.mu.Unlock()
	return batch
}

// drain flushes everything still pending after Close. Submissions
// racing Close may append between takes, so it loops until empty.
func (s *Server) drain() {
	for {
		batch := s.take()
		if len(batch) == 0 {
			return
		}
		s.flushBatch(batch)
	}
}

// flushBatch splits an oversized batch at the MaxBatch watermark and
// flushes each chunk as its own epoch, so one monster batch becomes a
// train of bounded epochs instead of a latency cliff.
func (s *Server) flushBatch(batch []pendingOp) {
	split := len(batch) > s.cfg.MaxBatch
	first := true
	for len(batch) > 0 {
		n := len(batch)
		if n > s.cfg.MaxBatch {
			n = s.cfg.MaxBatch
		}
		s.flush(batch[:n], split && !first)
		batch = batch[n:]
		first = false
	}
}

// flush executes one epoch: shed dead ops, then run the insert,
// delete and read phases through the bulk kernels, resolving futures
// as each phase completes. Deadline shedding chooses the admitted set;
// the quiescent state is a pure function of whatever set was chosen.
func (s *Server) flush(batch []pendingOp, split bool) {
	if chaos.Enabled {
		chaos.Yield(chaos.SiteEpochFlush) // delayed flush / stalled flusher
	}
	if s.cfg.FlushDelay > 0 {
		time.Sleep(s.cfg.FlushDelay)
	}

	// Shed ops whose request context is already done — BEFORE the table
	// sees them — and partition the survivors by phase.
	var ins, del, fnd, elm []pendingOp
	shed := 0
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			p.fut.res = Result{Err: err}
			close(p.fut.done)
			shed++
			if obs.Enabled {
				obs.RecordEpochShed(false)
			}
			continue
		}
		switch p.op {
		case OpInsert:
			ins = append(ins, p)
		case OpDelete:
			del = append(del, p)
		case OpFind:
			fnd = append(fnd, p)
		default:
			elm = append(elm, p)
		}
	}
	executed := len(batch) - shed

	// Path selection happens at the epoch boundary, before any phase
	// touches the table, from the admitted batch sizes alone — inputs
	// fixed by admission, independent of how the phases then schedule.
	path := tune.PathSharded
	var tuneSwitches uint64
	if s.ctrl != nil {
		before := len(s.ctrl.Trace())
		s.ctrl.Step()
		path = s.ctrl.DecidePath(len(ins), len(del), len(fnd)+len(elm))
		tuneSwitches = uint64(len(s.ctrl.Trace()) - before)
	}

	insertFull := s.insertPhase(ins, path)
	s.deletePhase(del, path)
	s.readPhase(fnd, elm, path)

	s.mu.Lock()
	s.stats.Epochs++
	if split {
		s.stats.Splits++
	}
	s.stats.FlushedOps += uint64(executed)
	s.stats.InsertOps += uint64(len(ins))
	s.stats.DeleteOps += uint64(len(del))
	s.stats.ReadOps += uint64(len(fnd) + len(elm))
	s.stats.ShedDeadline += uint64(shed)
	s.stats.InsertFull += uint64(insertFull)
	s.stats.TuneSwitches += tuneSwitches
	s.mu.Unlock()
	if obs.Enabled {
		obs.RecordEpochFlush(executed, split, insertFull)
	}
}

// insertPhase runs the epoch's insert phase along the selected path
// and resolves the insert futures. All three paths apply the same key
// multiset, so the quiescent layout is path-independent (history
// independence); only the execution strategy differs. Saturation
// degrades per-future on every path: the per-element paths see
// TryInsert's error directly, the sharded path attributes ErrFull with
// a find pass, so futures whose element landed (or merged with a
// duplicate) still succeed and only the elements that never made it
// resolve with ErrFull.
func (s *Server) insertPhase(ins []pendingOp, path tune.Path) (insertFull int) {
	if len(ins) == 0 {
		return 0
	}
	keys := make([]uint64, len(ins))
	for i, p := range ins {
		keys[i] = p.key
	}
	var span *obs.ActiveSpan
	if obs.Enabled {
		span = obs.PhaseStart("epoch:insert")
	}
	switch path {
	case tune.PathSerial, tune.PathParallel:
		errs := make([]error, len(keys))
		if path == tune.PathSerial {
			for i := range keys {
				_, errs[i] = s.table.TryInsert(keys[i])
			}
		} else {
			parallel.For(len(keys), func(i int) {
				_, errs[i] = s.table.TryInsert(keys[i])
			})
		}
		if obs.Enabled {
			obs.PhaseEnd(span)
		}
		for i, p := range ins {
			if errs[i] != nil {
				insertFull++
				s.deliver(p, Result{Err: fmt.Errorf("%w: element %#x did not land (epoch insert phase saturated)", core.ErrFull, p.key)})
			} else {
				s.deliver(p, Result{OK: true})
			}
		}
		return insertFull
	}
	_, err := s.table.TryInsertAll(keys)
	if obs.Enabled {
		obs.PhaseEnd(span)
	}
	if err == nil {
		for _, p := range ins {
			s.deliver(p, Result{OK: true})
		}
		return 0
	}
	// Attribute the failure per element. The bulk kernels require
	// exclusive access, which the flusher holds for the whole epoch, so
	// this read does not violate the phase discipline: the insert phase
	// has drained (TryInsertAll returned).
	dst := make([]uint64, len(keys))
	s.table.FindAll(keys, dst)
	for i, p := range ins {
		if dst[i] == core.Empty {
			insertFull++
			s.deliver(p, Result{Err: fmt.Errorf("%w: element %#x did not land (epoch insert phase saturated)", core.ErrFull, p.key)})
		} else {
			s.deliver(p, Result{OK: true})
		}
	}
	return insertFull
}

// deletePhase runs the epoch's delete phase along the selected path;
// see insertPhase for the path-independence argument.
func (s *Server) deletePhase(del []pendingOp, path tune.Path) {
	if len(del) == 0 {
		return
	}
	keys := make([]uint64, len(del))
	for i, p := range del {
		keys[i] = p.key
	}
	var span *obs.ActiveSpan
	if obs.Enabled {
		span = obs.PhaseStart("epoch:delete")
	}
	switch path {
	case tune.PathSerial:
		for _, k := range keys {
			s.table.Delete(k)
		}
	case tune.PathParallel:
		parallel.For(len(keys), func(i int) { s.table.Delete(keys[i]) })
	default:
		s.table.DeleteAll(keys)
	}
	if obs.Enabled {
		obs.PhaseEnd(span)
	}
	for _, p := range del {
		s.deliver(p, Result{OK: true})
	}
}

// readPhase runs the epoch's find/elements phase along the selected
// path: the find keys through per-element Finds or one FindAll, then
// (at most) one Elements snapshot shared by every OpElements future of
// the epoch.
func (s *Server) readPhase(fnd, elm []pendingOp, path tune.Path) {
	if len(fnd) == 0 && len(elm) == 0 {
		return
	}
	var span *obs.ActiveSpan
	if obs.Enabled {
		span = obs.PhaseStart("epoch:read")
	}
	if len(fnd) > 0 {
		keys := make([]uint64, len(fnd))
		for i, p := range fnd {
			keys[i] = p.key
		}
		dst := make([]uint64, len(keys))
		switch path {
		case tune.PathSerial:
			for i, k := range keys {
				dst[i], _ = s.table.Find(k)
			}
		case tune.PathParallel:
			parallel.For(len(keys), func(i int) { dst[i], _ = s.table.Find(keys[i]) })
		default:
			s.table.FindAll(keys, dst)
		}
		for i, p := range fnd {
			s.deliver(p, Result{Value: dst[i], OK: dst[i] != core.Empty})
		}
	}
	if len(elm) > 0 {
		es := s.table.Elements()
		for _, p := range elm {
			s.deliver(p, Result{OK: true, Elems: es})
		}
	}
	if obs.Enabled {
		obs.PhaseEnd(span)
	}
}

// deliver resolves one future. The table operation has already
// executed; chaos can force a mid-epoch cancellation here, which (by
// design) affects only the response path — the quiescent state is
// already committed, so the determinism oracle stays byte-identical
// across fault profiles.
//
//phasehash:nondet time.Since feeds the admit-to-complete latency histogram only
func (s *Server) deliver(p pendingOp, res Result) {
	if chaos.Enabled && chaos.Fault(chaos.SiteEpochCancel) {
		res = Result{Err: context.Canceled}
		s.mu.Lock()
		s.stats.Cancelled++
		s.mu.Unlock()
		if obs.Enabled {
			obs.RecordEpochCancel()
		}
	}
	if obs.Enabled {
		obs.RecordEpochLatency(uint64(time.Since(p.admitted) / time.Microsecond))
	}
	p.fut.res = res
	close(p.fut.done)
}
