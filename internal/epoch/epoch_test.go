package epoch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"phasehash/internal/core"
)

// manualServer builds a scripted-mode server (no linger timer): epochs
// flush only at the MaxBatch watermark, an explicit Flush, or Close.
func manualServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := NewServer(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// mustSubmit admits one op or fails the test.
func mustSubmit(t *testing.T, s *Server, op Op, key uint64) *Future {
	t.Helper()
	f, err := s.Submit(context.Background(), op, key)
	if err != nil {
		t.Fatalf("Submit(%v, %#x): %v", op, key, err)
	}
	return f
}

// mustResult waits (bounded) for a future and returns its result.
func mustResult(t *testing.T, f *Future) Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := f.Wait(ctx)
	if err != nil {
		t.Fatalf("Future.Wait: %v", err)
	}
	return res
}

func TestBasicOps(t *testing.T) {
	s := manualServer(t, Config{Size: 1 << 12})

	ins := []*Future{
		mustSubmit(t, s, OpInsert, 10),
		mustSubmit(t, s, OpInsert, 20),
		mustSubmit(t, s, OpInsert, 10), // duplicate merges
	}
	s.Flush()
	for i, f := range ins {
		if res := mustResult(t, f); res.Err != nil || !res.OK {
			t.Fatalf("insert %d: %+v", i, res)
		}
	}

	hit := mustSubmit(t, s, OpFind, 20)
	miss := mustSubmit(t, s, OpFind, 99)
	el := mustSubmit(t, s, OpElements, 0)
	s.Flush()
	if res := mustResult(t, hit); !res.OK || res.Value != 20 {
		t.Fatalf("find hit: %+v", res)
	}
	if res := mustResult(t, miss); res.OK || res.Value != core.Empty {
		t.Fatalf("find miss: %+v", res)
	}
	if res := mustResult(t, el); !res.OK || len(res.Elems) != 2 {
		t.Fatalf("elements: %+v", res)
	}

	del := mustSubmit(t, s, OpDelete, 10)
	s.Flush()
	if res := mustResult(t, del); res.Err != nil || !res.OK {
		t.Fatalf("delete: %+v", res)
	}
	if got := s.Table().Count(); got != 1 {
		t.Fatalf("Count after delete = %d, want 1", got)
	}

	st := s.Stats()
	if st.Admitted != 7 || st.FlushedOps != 7 || st.Epochs != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEpochPhaseOrder pins the intra-epoch phase order: inserts, then
// deletes, then reads. A key inserted and deleted in the same epoch
// ends deleted, and same-epoch finds observe both phases.
func TestEpochPhaseOrder(t *testing.T) {
	s := manualServer(t, Config{Size: 1 << 10})

	fIns := mustSubmit(t, s, OpInsert, 7)
	fDel := mustSubmit(t, s, OpDelete, 7)
	fFind := mustSubmit(t, s, OpFind, 7)
	fIns2 := mustSubmit(t, s, OpInsert, 8)
	fFind2 := mustSubmit(t, s, OpFind, 8)
	s.Flush()

	if res := mustResult(t, fIns); !res.OK {
		t.Fatalf("insert: %+v", res)
	}
	if res := mustResult(t, fDel); !res.OK {
		t.Fatalf("delete: %+v", res)
	}
	if res := mustResult(t, fFind); res.OK {
		t.Fatalf("find after same-epoch insert+delete should miss: %+v", res)
	}
	if res := mustResult(t, fFind2); !res.OK || res.Value != 8 {
		t.Fatalf("find should observe same-epoch insert: %+v", res)
	}
	_ = fIns2
	if got := s.Table().Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestReservedKeyRejectedAtAdmission(t *testing.T) {
	s := manualServer(t, Config{Size: 1 << 10})
	if _, err := s.Submit(context.Background(), OpInsert, core.Empty); !errors.Is(err, core.ErrReservedKey) {
		t.Fatalf("Submit(insert, Empty) err = %v, want ErrReservedKey", err)
	}
	if st := s.Stats(); st.Admitted != 0 {
		t.Fatalf("reserved key was admitted: %+v", st)
	}
}

// TestDeadlineShed checks that an op whose context expires after
// admission but before its epoch flushes is shed without touching the
// table, resolving with the context error.
func TestDeadlineShed(t *testing.T) {
	s := manualServer(t, Config{Size: 1 << 10})

	ctx, cancel := context.WithCancel(context.Background())
	f, err := s.Submit(ctx, OpInsert, 42)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cancel() // expires before the epoch
	live := mustSubmit(t, s, OpInsert, 43)
	s.Flush()

	if res := mustResult(t, f); !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("shed future: %+v, want context.Canceled", res)
	}
	if res := mustResult(t, live); !res.OK {
		t.Fatalf("live future: %+v", res)
	}
	if s.Table().Contains(42) {
		t.Fatal("shed insert reached the table")
	}
	if !s.Table().Contains(43) {
		t.Fatal("live insert missing")
	}
	if st := s.Stats(); st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1; stats %+v", st.ShedDeadline, st)
	}
}

// TestSubmitExpiredContext: a context that is already done never
// admits.
func TestSubmitExpiredContext(t *testing.T) {
	s := manualServer(t, Config{Size: 1 << 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, OpFind, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOverloadFailFast: with the default fail-fast admission, the
// queue never exceeds QueueLimit and excess submits get ErrOverloaded.
func TestOverloadFailFast(t *testing.T) {
	// FlushDelay stalls the flusher so the queue actually fills: the
	// watermark kick fires, but the flusher is asleep in its first
	// epoch while we keep submitting.
	s := manualServer(t, Config{Size: 1 << 12, MaxBatch: 8, QueueLimit: 8, FlushDelay: 50 * time.Millisecond})

	var okN, overN int
	for i := 0; i < 64; i++ {
		_, err := s.Submit(context.Background(), OpInsert, uint64(i+1))
		switch {
		case err == nil:
			okN++
		case errors.Is(err, ErrOverloaded):
			overN++
		default:
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if overN == 0 {
		t.Fatal("no submissions shed at 8x queue pressure")
	}
	st := s.Stats()
	if st.MaxQueue > 8 {
		t.Fatalf("MaxQueue = %d exceeds QueueLimit 8", st.MaxQueue)
	}
	if st.ShedOverload != uint64(overN) {
		t.Fatalf("ShedOverload = %d, want %d", st.ShedOverload, overN)
	}
	t.Logf("admitted=%d shed=%d", okN, overN)
}

// TestOverloadBlocking: Block mode parks submitters instead of
// refusing, releases them as the flusher drains, and sheds them with
// the context error when their deadline fires first.
func TestOverloadBlocking(t *testing.T) {
	s := manualServer(t, Config{Size: 1 << 12, MaxBatch: 1 << 14, QueueLimit: 4, Block: true})

	// Fill the queue (watermark is far away: manual mode, no flush).
	for i := 0; i < 4; i++ {
		mustSubmit(t, s, OpInsert, uint64(i+1))
	}

	// A blocked submitter with a deadline gets the context error.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.Submit(ctx, OpInsert, 100); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked submit err = %v, want DeadlineExceeded", err)
	}

	// A blocked submitter without a deadline is released by a drain.
	released := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), OpInsert, 101)
		released <- err
	}()
	// Wait until the submitter is parked, then drain.
	for s.Stats().MaxQueue < 4 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	s.Flush()
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("released submit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked submitter never released by drain")
	}
	if st := s.Stats(); st.MaxQueue > 4 {
		t.Fatalf("MaxQueue = %d exceeds QueueLimit 4", st.MaxQueue)
	}
}

// TestWatermarkSplit: a pending batch larger than MaxBatch is split
// into multiple epochs of at most MaxBatch ops.
func TestWatermarkSplit(t *testing.T) {
	// FlushDelay makes the flusher slow enough that submissions pile up
	// past the watermark while an epoch is in flight; the oversized
	// take is then split.
	s := manualServer(t, Config{Size: 1 << 12, MaxBatch: 8, QueueLimit: 64, FlushDelay: 30 * time.Millisecond})

	futs := make([]*Future, 0, 30)
	for i := 0; i < 30; i++ {
		futs = append(futs, mustSubmit(t, s, OpInsert, uint64(i+1)))
	}
	s.Flush()
	for i, f := range futs {
		if res := mustResult(t, f); !res.OK {
			t.Fatalf("insert %d: %+v", i, res)
		}
	}
	st := s.Stats()
	if st.Splits == 0 {
		t.Fatalf("no splits recorded for 30 ops at MaxBatch 8: %+v", st)
	}
	if st.FlushedOps != 30 {
		t.Fatalf("FlushedOps = %d, want 30", st.FlushedOps)
	}
	if got := s.Table().Count(); got != 30 {
		t.Fatalf("Count = %d, want 30", got)
	}
}

// TestInsertFullPerFuture: when an epoch saturates the table, exactly
// the futures whose element did not land resolve with core.ErrFull,
// and the successes match the table contents.
func TestInsertFullPerFuture(t *testing.T) {
	s := manualServer(t, Config{Size: 16, Shards: 1})

	futs := make([]*Future, 0, 64)
	for i := 0; i < 64; i++ {
		futs = append(futs, mustSubmit(t, s, OpInsert, uint64(i+1)))
	}
	s.Flush()

	okN, fullN := 0, 0
	for i, f := range futs {
		res := mustResult(t, f)
		switch {
		case res.OK && res.Err == nil:
			okN++
			if !s.Table().Contains(uint64(i + 1)) {
				t.Fatalf("future %d succeeded but element missing", i)
			}
		case errors.Is(res.Err, core.ErrFull):
			fullN++
			if s.Table().Contains(uint64(i + 1)) {
				t.Fatalf("future %d got ErrFull but element present", i)
			}
		default:
			t.Fatalf("future %d: %+v", i, res)
		}
	}
	if fullN == 0 {
		t.Fatal("64 inserts into a 16-cell table produced no ErrFull")
	}
	if got := s.Table().Count(); got != okN {
		t.Fatalf("Count = %d, successes = %d", got, okN)
	}
	if st := s.Stats(); st.InsertFull != uint64(fullN) {
		t.Fatalf("InsertFull = %d, want %d", st.InsertFull, fullN)
	}
	t.Logf("landed=%d full=%d", okN, fullN)
}

// TestTimerMode: with a FlushInterval, a lone op flushes on its own
// without an explicit Flush or hitting the watermark.
func TestTimerMode(t *testing.T) {
	s := manualServer(t, Config{Size: 1 << 10, FlushInterval: 2 * time.Millisecond})
	f := mustSubmit(t, s, OpInsert, 5)
	if res := mustResult(t, f); !res.OK {
		t.Fatalf("timer-mode insert: %+v", res)
	}
}

// TestElementsSnapshotShared: every OpElements future of one epoch
// shares a single deterministic snapshot slice.
func TestElementsSnapshotShared(t *testing.T) {
	s := manualServer(t, Config{Size: 1 << 10})
	for i := 0; i < 4; i++ {
		mustSubmit(t, s, OpInsert, uint64(i+1))
	}
	e1 := mustSubmit(t, s, OpElements, 0)
	e2 := mustSubmit(t, s, OpElements, 0)
	s.Flush()
	r1, r2 := mustResult(t, e1), mustResult(t, e2)
	if len(r1.Elems) != 4 || len(r2.Elems) != 4 {
		t.Fatalf("snapshot sizes %d/%d, want 4", len(r1.Elems), len(r2.Elems))
	}
	if &r1.Elems[0] != &r2.Elems[0] {
		t.Fatal("same-epoch Elements futures did not share one snapshot")
	}
}

// TestCloseDrainsAndStops: Close under load resolves every admitted
// future, rejects later submits with ErrClosed, and leaks no
// goroutines.
func TestCloseDrainsAndStops(t *testing.T) {
	before := runtime.NumGoroutine()

	s := NewServer(Config{Size: 1 << 12, MaxBatch: 16, QueueLimit: 256})
	var wg sync.WaitGroup
	futs := make(chan *Future, 1024)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 128; i++ {
				f, err := s.Submit(context.Background(), OpInsert, uint64(w*1000+i+1))
				if err != nil {
					if errors.Is(err, ErrClosed) || errors.Is(err, ErrOverloaded) {
						continue
					}
					t.Errorf("Submit: %v", err)
					return
				}
				futs <- f
			}
		}(w)
	}
	// Close concurrently with the submitters: some get ErrClosed, every
	// admitted op must still resolve.
	time.Sleep(time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	close(futs)
	for f := range futs {
		select {
		case <-f.Done():
		default:
			t.Fatal("admitted future unresolved after Close")
		}
	}
	if _, err := s.Submit(context.Background(), OpFind, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Submit err = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := s.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The flusher (and any AfterFunc machinery) must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after Close", before, now)
	}
}

// TestFutureWaitContext: Wait returns the caller's context error
// without cancelling the admitted op.
func TestFutureWaitContext(t *testing.T) {
	s := manualServer(t, Config{Size: 1 << 10})
	f := mustSubmit(t, s, OpInsert, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	s.Flush()
	if res := mustResult(t, f); !res.OK {
		t.Fatalf("op should still execute after abandoned Wait: %+v", res)
	}
	if !s.Table().Contains(9) {
		t.Fatal("element missing after abandoned Wait")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{OpInsert: "insert", OpDelete: "delete", OpFind: "find", OpElements: "elements", Op(9): "unknown-op"}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("Op(%d).String() = %q, want %q", op, op.String(), s)
		}
	}
}
