package core

import (
	"testing"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// TestPhaseAlternationStress drives the deterministic table through many
// randomly generated insert/delete/read phases, checking after every
// phase barrier that (a) the contents equal a model set, (b) the
// ordering invariant holds, and (c) the layout is byte-identical to an
// independent replay — the strongest end-to-end statement of the
// paper's determinism theorem over arbitrary phase histories.
func TestPhaseAlternationStress(t *testing.T) {
	const (
		tableSize = 1 << 12
		phases    = 40
		batch     = 600
		keyspace  = 3000
	)
	runOnce := func(seed uint64) ([]uint64, map[uint64]bool) {
		tab := NewWordTable[SetOps](tableSize)
		model := map[uint64]bool{}
		rng := hashx.NewRNG(seed)
		for ph := 0; ph < phases; ph++ {
			kind := rng.Intn(3)
			keys := make([]uint64, batch)
			for i := range keys {
				keys[i] = uint64(rng.Intn(keyspace)) + 1
			}
			switch kind {
			case 0: // insert phase
				parallel.ForGrain(batch, 1, func(i int) { tab.Insert(keys[i]) })
				for _, k := range keys {
					model[k] = true
				}
			case 1: // delete phase
				parallel.ForGrain(batch, 1, func(i int) { tab.Delete(keys[i]) })
				for _, k := range keys {
					delete(model, k)
				}
			default: // read phase: concurrent finds and elements
				parallel.Do(
					func() {
						parallel.ForGrain(batch, 1, func(i int) {
							_, found := tab.Find(keys[i])
							if found != model[keys[i]] {
								t.Errorf("phase %d: Find(%d) = %v, model %v", ph, keys[i], found, model[keys[i]])
							}
						})
					},
					func() {
						if got := len(tab.Elements()); got != len(model) {
							t.Errorf("phase %d: Elements len %d, model %d", ph, got, len(model))
						}
					},
				)
			}
			// Quiescent checks after the phase barrier.
			if err := tab.CheckInvariant(); err != nil {
				t.Fatalf("phase %d (%d): %v", ph, kind, err)
			}
			if got := tab.Count(); got != len(model) {
				t.Fatalf("phase %d (%d): Count %d, model %d", ph, kind, got, len(model))
			}
		}
		return tab.Snapshot(), model
	}

	for _, seed := range []uint64{1, 2, 3} {
		snap1, model1 := runOnce(seed)
		snap2, model2 := runOnce(seed)
		if len(model1) != len(model2) {
			t.Fatalf("seed %d: model sizes differ (test bug)", seed)
		}
		for i := range snap1 {
			if snap1[i] != snap2[i] {
				t.Fatalf("seed %d: replay layout differs at cell %d", seed, i)
			}
		}
		// The layout must also equal a fresh sequential build of the
		// final model set (full history independence).
		ref := NewWordTable[SetOps](tableSize)
		for k := range model1 {
			ref.Insert(k)
		}
		refSnap := ref.Snapshot()
		for i := range refSnap {
			if refSnap[i] != snap1[i] {
				t.Fatalf("seed %d: final layout differs from fresh build at cell %d", seed, i)
			}
		}
	}
}

// TestPhaseAlternationStressPtr is the same stress over the pointer
// table.
func TestPhaseAlternationStressPtr(t *testing.T) {
	const (
		tableSize = 1 << 11
		phases    = 25
		batch     = 400
		keyspace  = 1500
	)
	tab := NewPtrTable[rec, recOps](tableSize)
	model := map[uint64]bool{}
	rng := hashx.NewRNG(7)
	for ph := 0; ph < phases; ph++ {
		kind := rng.Intn(3)
		keys := make([]uint64, batch)
		for i := range keys {
			keys[i] = uint64(rng.Intn(keyspace)) + 1
		}
		switch kind {
		case 0:
			parallel.ForGrain(batch, 1, func(i int) { tab.Insert(&rec{key: keys[i]}) })
			for _, k := range keys {
				model[k] = true
			}
		case 1:
			parallel.ForGrain(batch, 1, func(i int) { tab.Delete(&rec{key: keys[i]}) })
			for _, k := range keys {
				delete(model, k)
			}
		default:
			parallel.ForGrain(batch, 1, func(i int) {
				_, found := tab.Find(&rec{key: keys[i]})
				if found != model[keys[i]] {
					t.Errorf("phase %d: Find(%d) = %v, model %v", ph, keys[i], found, model[keys[i]])
				}
			})
		}
		if err := tab.CheckInvariant(); err != nil {
			t.Fatalf("phase %d (%d): %v", ph, kind, err)
		}
		if got := tab.Count(); got != len(model) {
			t.Fatalf("phase %d (%d): Count %d, model %d", ph, kind, got, len(model))
		}
	}
}

// TestGrowTablePhaseAlternation stresses the resizing table across
// alternating phases (grow during inserts, then deletes, then reads).
func TestGrowTablePhaseAlternation(t *testing.T) {
	g := NewGrowTable[SetOps](64)
	model := map[uint64]bool{}
	rng := hashx.NewRNG(11)
	for ph := 0; ph < 20; ph++ {
		batch := 2000
		keys := make([]uint64, batch)
		for i := range keys {
			keys[i] = uint64(rng.Intn(20000)) + 1
		}
		if ph%3 == 2 {
			g.FinishMigration() // reads require a drained state for Count
			parallel.ForGrain(batch, 1, func(i int) {
				_, found := g.Find(keys[i])
				if found != model[keys[i]] {
					t.Errorf("phase %d: Find(%d) = %v, model %v", ph, keys[i], found, model[keys[i]])
				}
			})
		} else if ph%3 == 1 {
			g.FinishMigration() // deletes must not overlap migration
			parallel.ForGrain(batch, 1, func(i int) { g.Delete(keys[i]) })
			for _, k := range keys {
				delete(model, k)
			}
		} else {
			parallel.ForGrain(batch, 1, func(i int) { g.Insert(keys[i]) })
			for _, k := range keys {
				model[k] = true
			}
		}
		if got := g.Count(); got != len(model) {
			t.Fatalf("phase %d: Count %d, model %d", ph, got, len(model))
		}
		if err := g.CheckInvariant(); err != nil {
			t.Fatalf("phase %d: %v", ph, err)
		}
	}
}
