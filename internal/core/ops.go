package core

import "phasehash/internal/hashx"

// Empty is the reserved empty element (⊥ in the paper). Word tables may
// not store it; workloads therefore draw keys from [1, n].
const Empty uint64 = 0

// Ops defines the element semantics of a word table: how elements hash,
// how their keys are priority-ordered, and how two elements with equal
// keys are resolved. Implementations must be pure value types (typically
// empty structs) so that the generic tables compile to direct calls.
//
// The priority order reported by Cmp must be a total order on keys, with
// Cmp(a, b) == 0 exactly when a and b carry the same key. The paper's
// convention that ⊥ has the lowest priority is handled by the tables
// themselves; Cmp is never called with an Empty argument.
type Ops interface {
	// Hash returns the full 64-bit hash of e's key. Tables reduce it
	// modulo their size.
	Hash(e uint64) uint64
	// Cmp orders elements by key priority: negative if a's key has lower
	// priority than b's, 0 if the keys are equal, positive otherwise.
	Cmp(a, b uint64) int
	// Merge resolves a duplicate-key insertion deterministically: cur is
	// the element in the table, new is the incoming element with the same
	// key; the result replaces cur. Merge must be commutative and
	// associative in the value it selects (e.g. max, min, sum) so that
	// the outcome is independent of arrival order.
	Merge(cur, new uint64) uint64
}

// SetOps treats the whole word as the key: a hash set of uint64 with the
// numeric order as priority order. Duplicate inserts are no-ops.
type SetOps struct{}

// Hash implements Ops.
func (SetOps) Hash(e uint64) uint64 { return hashx.Mix64(e) }

// Cmp implements Ops.
func (SetOps) Cmp(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Merge implements Ops.
func (SetOps) Merge(cur, _ uint64) uint64 { return cur }

// PairKey and PairValue unpack an element built by Pair.
func PairKey(e uint64) uint32   { return uint32(e >> 32) }
func PairValue(e uint64) uint32 { return uint32(e) }

// Pair packs a 32-bit key and 32-bit value into one word element. This is
// the reproduction's stand-in for the paper's double-word CAS on
// key-value pairs: one CAS still covers the whole pair (see DESIGN.md,
// substitutions). Key 0 with value 0 collides with Empty, so keys must be
// >= 1 (the PBBS distributions draw keys from [1, n]).
func Pair(key, value uint32) uint64 { return uint64(key)<<32 | uint64(value) }

// pairCmp orders pair elements by key only.
func pairCmp(a, b uint64) int {
	ka, kb := a>>32, b>>32
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	default:
		return 0
	}
}

// PairMinOps stores (key, value) pairs; on duplicate keys the pair with
// the minimum value wins (the paper's WriteMin-style priority function,
// used by the spanning-forest reservation phase).
type PairMinOps struct{}

// Hash implements Ops.
func (PairMinOps) Hash(e uint64) uint64 { return hashx.Mix64(e >> 32) }

// Cmp implements Ops.
func (PairMinOps) Cmp(a, b uint64) int { return pairCmp(a, b) }

// Merge implements Ops.
func (PairMinOps) Merge(cur, new uint64) uint64 {
	if uint32(new) < uint32(cur) {
		return new
	}
	return cur
}

// PairMaxOps is PairMinOps with maximum-value resolution.
type PairMaxOps struct{}

// Hash implements Ops.
func (PairMaxOps) Hash(e uint64) uint64 { return hashx.Mix64(e >> 32) }

// Cmp implements Ops.
func (PairMaxOps) Cmp(a, b uint64) int { return pairCmp(a, b) }

// Merge implements Ops.
func (PairMaxOps) Merge(cur, new uint64) uint64 {
	if uint32(new) > uint32(cur) {
		return new
	}
	return cur
}

// PairSumOps stores (key, value) pairs; duplicate keys add their values
// (the paper's '+' combining function, used by edge contraction for graph
// partitioning). Addition wraps modulo 2^32.
type PairSumOps struct{}

// Hash implements Ops.
func (PairSumOps) Hash(e uint64) uint64 { return hashx.Mix64(e >> 32) }

// Cmp implements Ops.
func (PairSumOps) Cmp(a, b uint64) int { return pairCmp(a, b) }

// Merge implements Ops.
func (PairSumOps) Merge(cur, new uint64) uint64 {
	return cur&^uint64(0xffffffff) | uint64(uint32(cur)+uint32(new))
}

// IdentOps is SetOps with the identity hash function. It exists for
// white-box tests that need full control of probe positions (adversarial
// clusters); real workloads should use SetOps.
type IdentOps struct{}

// Hash implements Ops.
func (IdentOps) Hash(e uint64) uint64 { return e }

// Cmp implements Ops.
func (IdentOps) Cmp(a, b uint64) int { return SetOps{}.Cmp(a, b) }

// Merge implements Ops.
func (IdentOps) Merge(cur, _ uint64) uint64 { return cur }
