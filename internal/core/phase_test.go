package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPhaseGuardViolationMessage pins the exact diagnostic text so the
// runtime checker and the phasevet static analyzer describe violations
// consistently: both name the attempted phase, the active phase, and
// the in-flight count.
func TestPhaseGuardViolationMessage(t *testing.T) {
	var g PhaseGuard
	if err := g.Enter(PhaseInsert); err != nil {
		t.Fatal(err)
	}
	if err := g.Enter(PhaseInsert); err != nil {
		t.Fatal(err)
	}
	err := g.Enter(PhaseRead)
	if err == nil {
		t.Fatal("Enter(PhaseRead) during insert phase did not fail")
	}
	const want = "core: phase violation: read operation started during insert phase (2 in flight)"
	if err.Error() != want {
		t.Fatalf("Enter error = %q, want %q", err, want)
	}
	g.Exit(PhaseInsert)
	// One insert still in flight: the count in the message must track.
	err = g.Enter(PhaseDelete)
	const want1 = "core: phase violation: delete operation started during insert phase (1 in flight)"
	if err == nil || err.Error() != want1 {
		t.Fatalf("Enter error = %v, want %q", err, want1)
	}
	g.Exit(PhaseInsert)
	// Guard drained: any phase may start again.
	if err := g.Enter(PhaseDelete); err != nil {
		t.Fatalf("Enter after drain: %v", err)
	}
	g.Exit(PhaseDelete)
}

// TestPhaseGuardStatePackingStress hammers Enter/Exit from many
// goroutines across repeated phase transitions and asserts the packed
// (phase, count) word never reports a zero, negative (wrapped), or
// overflowed count while an operation holds the guard. Run under
// -race this also checks the guard itself is data-race free.
func TestPhaseGuardStatePackingStress(t *testing.T) {
	const (
		workers = 16
		rounds  = 2000
	)
	var g PhaseGuard
	var violations atomic.Int64
	phases := []Phase{PhaseInsert, PhaseDelete, PhaseRead}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				p := phases[rng.Intn(len(phases))]
				if err := g.Enter(p); err != nil {
					// Another phase is active: legal outcome, retry
					// with whatever phase is running to exercise the
					// occupancy counter instead.
					cur, _ := g.Active()
					if cur == PhaseIdle {
						continue
					}
					if err := g.Enter(cur); err != nil {
						continue // phase changed under us; move on
					}
					p = cur
				}
				// While held, the unpacked state must be coherent:
				// count in [1, workers], phase one of the three.
				cur, n := g.Active()
				if n < 1 || n > workers {
					violations.Add(1)
				}
				if cur != PhaseInsert && cur != PhaseDelete && cur != PhaseRead {
					violations.Add(1)
				}
				g.Exit(p)
			}
		}(w)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("observed %d incoherent packed states", v)
	}
	if cur, n := g.Active(); cur != PhaseIdle || n != 0 {
		t.Fatalf("guard not idle after drain: %v/%d", cur, n)
	}
}

// TestPhaseGuardExitPanicMessage documents Exit's unmatched-exit
// panic, which names both the attempted and recorded state.
func TestPhaseGuardExitPanicMessage(t *testing.T) {
	var g PhaseGuard
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Exit without Enter did not panic")
		}
		want := fmt.Sprintf("core: PhaseGuard.Exit(%v) without matching Enter (state %v/%d)",
			PhaseRead, PhaseIdle, 0)
		if r != want {
			t.Fatalf("panic = %q, want %q", r, want)
		}
	}()
	g.Exit(PhaseRead)
}
