package core

import (
	"encoding/binary"
	"testing"
)

// FuzzCtrlScan pins swarStop's contract against a byte-at-a-time oracle
// on arbitrary ctrl words and fingerprint patterns: the result must
// flag *exactly* the lanes whose byte is <= the pattern, at lane MSB
// positions, with no false positives in either direction — findFrom's
// miss exit fires on the first stop lane without re-verification
// against anything but the pattern byte itself, so exactness (not the
// usual "superset with re-check" SWAR contract) is what correctness
// rests on. Patterns are forced to have bit 7 set, as every full-slot
// fingerprint does (hashx.Fingerprint); that precondition is what makes
// the per-lane subtraction borrow-free (see swarStop).
func FuzzCtrlScan(f *testing.F) {
	f.Add(uint64(0), byte(0x80))
	f.Add(uint64(0), byte(0xFF))
	f.Add(^uint64(0), byte(0xFF))
	f.Add(^uint64(0), byte(0x80))
	f.Add(uint64(0x8080808080808080), byte(0x80)) // all-equal word
	f.Add(uint64(0x7F00811C00807F01), byte(0x81)) // mixed empty/tombstone/full
	f.Add(uint64(0x0101010101010101), byte(0x81))
	f.Add(uint64(0xFF80000000000080), byte(0x80)) // stops only in outer lanes
	f.Add(uint64(0x81828384858687FF), byte(0x84))
	f.Fuzz(func(t *testing.T, w uint64, b byte) {
		pat := b | 0x80
		got := swarStop(w, swarLSB*uint64(pat))
		if got&^swarMSB != 0 {
			t.Fatalf("swarStop(%#x, pat %#x) = %#x: flag outside lane MSBs", w, pat, got)
		}
		var laneBuf [8]byte
		binary.LittleEndian.PutUint64(laneBuf[:], w)
		want := uint64(0)
		for i, lb := range laneBuf {
			if lb <= pat {
				want |= 1 << (8*i + 7)
			}
		}
		if got != want {
			t.Fatalf("swarStop(%#x, pat %#x) = %#x, oracle %#x", w, pat, got, want)
		}
	})
}

// FuzzCompactTableOps drives a CompactTable through fuzzer-chosen
// phased scripts, cross-checking a model map each operation and, at
// every phase boundary, both CheckInvariant (ordering + ctrl = derived
// function of cells) and history independence: a fresh table fed the
// surviving elements in a completely different order (ascending, one
// serial pass — the reference schedule) must reach the byte-identical
// (cells, ctrl) layout, whatever insert/delete interleaving produced
// the original.
func FuzzCompactTableOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 2, 0xFF, 1, 2})
	f.Add([]byte{10, 10, 10, 0, 10})
	f.Add([]byte{7, 15, 23, 31, 39, 0, 7, 23, 0xFF, 7})
	f.Fuzz(func(t *testing.T, script []byte) {
		tab := NewCompactTable[SetOps](64)
		model := map[uint64]bool{}
		inserting := true
		checkPhaseEnd := func() {
			if err := tab.CheckInvariant(); err != nil {
				t.Fatal(err)
			}
			if got := tab.Count(); got != len(model) {
				t.Fatalf("Count = %d, model %d", got, len(model))
			}
			ref := NewCompactTable[SetOps](64)
			for k := uint64(1); k <= 0xFF; k++ {
				if model[k] {
					ref.insertSerial(k)
				}
			}
			rc, gc := ref.Snapshot(), tab.Snapshot()
			for i := range rc {
				if gc[i] != rc[i] {
					t.Fatalf("cell %d = %#x, serial-rebuild reference %#x", i, gc[i], rc[i])
				}
			}
			rw, gw := ref.CtrlSnapshot(), tab.CtrlSnapshot()
			for i := range rw {
				if gw[i] != rw[i] {
					t.Fatalf("ctrl word %d = %#x, serial-rebuild reference %#x", i, gw[i], rw[i])
				}
			}
		}
		for _, op := range script {
			switch op {
			case 0, 0xFF: // phase boundary: flip insert/delete
				checkPhaseEnd()
				inserting = !inserting
			default:
				k := uint64(op) // 1..254, never Empty
				if inserting {
					if len(model) >= 60 {
						continue // stay clear of saturation panics
					}
					added := tab.Insert(k)
					if added == model[k] {
						t.Fatalf("Insert(%d) = %v with model[%d] = %v", k, added, k, model[k])
					}
					model[k] = true
				} else {
					deleted := tab.Delete(k)
					if deleted != model[k] {
						t.Fatalf("Delete(%d) = %v with model[%d] = %v", k, deleted, k, model[k])
					}
					delete(model, k)
				}
				if e, ok := tab.Find(k); ok != model[k] || (ok && e != k) {
					t.Fatalf("Find(%d) = %#x, %v with model[%d] = %v", k, e, ok, k, model[k])
				}
			}
		}
		checkPhaseEnd()
	})
}
