package core

import (
	"fmt"
	"sync/atomic"

	"phasehash/internal/chaos"
	"phasehash/internal/obs"
	"phasehash/internal/parallel"
)

// PtrOps defines element semantics for pointer tables, mirroring Ops for
// records too wide for a single-word CAS. Arguments are never nil.
type PtrOps[T any] interface {
	// Hash returns the full 64-bit hash of e's key.
	Hash(e *T) uint64
	// Cmp orders elements by key priority (0 iff keys are equal).
	Cmp(a, b *T) int
	// Merge resolves a duplicate-key insertion; it must be commutative
	// and associative in the element it selects or builds.
	Merge(cur, new *T) *T
}

// PtrTable is the deterministic phase-concurrent hash table over
// pointer-stored elements — the paper's indirection path for key-value
// records wider than a CAS (it stores and CASes one pointer per cell).
// Algorithms are identical to WordTable's; only the cell type differs.
//
// Determinism caveat: the *contents* of the table (the sequence of
// records produced by Elements) are deterministic; the pointer bits
// themselves of course vary run to run.
type PtrTable[T any, O PtrOps[T]] struct {
	ops   O
	cells []atomic.Pointer[T]
	mask  int
}

// NewPtrTable returns a pointer table whose backing array is the next
// power of two m >= size; capacity semantics are NewWordTable's — up
// to m records, with a further insert into a completely full table
// failing with ErrFull (Insert panics, TryInsert returns it).
func NewPtrTable[T any, O PtrOps[T]](size int) *PtrTable[T, O] {
	if size < 1 {
		size = 1
	}
	m := 1
	for m < size {
		m <<= 1
	}
	return &PtrTable[T, O]{cells: make([]atomic.Pointer[T], m), mask: m - 1}
}

// Size returns the capacity (number of cells).
func (t *PtrTable[T, O]) Size() int { return len(t.cells) }

func (t *PtrTable[T, O]) load(p int) *T {
	return t.cells[p&t.mask].Load()
}

func (t *PtrTable[T, O]) cas(p int, old, new *T) bool {
	return t.cells[p&t.mask].CompareAndSwap(old, new)
}

// lift is WordTable.lift: map hash h of the element at unnormalized
// position p into p's frame.
func (t *PtrTable[T, O]) lift(h uint64, p int) int {
	return p - ((p - int(h)) & t.mask)
}

func (t *PtrTable[T, O]) home(e *T) int {
	return int(t.ops.Hash(e)) & t.mask
}

// Insert adds element v (insert phase only); on an equal key the two
// elements are resolved with Ops.Merge. Reports whether the element count
// grew. v must be non-nil and must not be mutated afterwards.
//
// Insert panics on nil and on a full table; use TryInsert where
// saturation must degrade gracefully instead of crash.
func (t *PtrTable[T, O]) Insert(v *T) bool {
	if v == nil {
		panic("core: PtrTable: cannot insert nil")
	}
	added, full := t.insertLoop(v)
	if full {
		panic("core: PtrTable: " + t.fullErr().Error())
	}
	return added
}

// TryInsert is Insert returning errors instead of panicking: ErrNilValue
// for a nil record and ErrFull (with size, count and load factor) when
// the probe sequence sweeps the whole backing array. Both satisfy
// errors.Is against the package sentinels.
func (t *PtrTable[T, O]) TryInsert(v *T) (bool, error) {
	if v == nil {
		return false, fmt.Errorf("%w: nil encodes the empty cell", ErrNilValue)
	}
	added, full := t.insertLoop(v)
	if full {
		return false, t.fullErr()
	}
	return added, nil
}

// insertLoop is the probe loop shared by Insert and TryInsert, kept free
// of error construction so both stay thin inlinable wrappers. full
// reports a whole-array sweep (saturation).
func (t *PtrTable[T, O]) insertLoop(v *T) (added, full bool) {
	return t.insertLoopFrom(v, t.home(v))
}

// insertLoopFrom is insertLoop starting from a caller-supplied probe
// origin (i must be t.home(v)); the bulk kernels pre-hash and
// cache-stage homes ahead of the probe. Telemetry mirrors
// WordTable.insertLoopFrom: local tallies, one publish per operation.
func (t *PtrTable[T, O]) insertLoopFrom(v *T, i int) (added, full bool) {
	var obsCAS, obsFail, obsDisp uint64
	start := i
	limit := i + len(t.cells)
	for {
		if chaos.Enabled {
			chaos.Yield(chaos.SitePtrInsertProbe)
		}
		if i >= limit {
			if obs.Enabled {
				obs.RecordInsert(start, uint64(i-start), obsCAS, obsFail, obsDisp)
			}
			return false, true
		}
		c := t.load(i)
		if c == nil {
			if chaos.Enabled && chaos.FailCAS(chaos.SitePtrInsertClaim) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue // pretend the CAS lost; re-read the cell
			}
			if t.cas(i, nil, v) {
				if obs.Enabled {
					obs.RecordInsert(start, uint64(i-start), obsCAS+1, obsFail, obsDisp)
				}
				return true, false
			}
			if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
			continue
		}
		cmp := t.ops.Cmp(c, v)
		switch {
		case cmp == 0:
			merged := t.ops.Merge(c, v)
			if chaos.Enabled && merged != c && chaos.FailCAS(chaos.SitePtrInsertMerge) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue
			}
			if merged == c || t.cas(i, c, merged) {
				if obs.Enabled {
					if merged != c {
						obsCAS++
					}
					obs.RecordInsert(start, uint64(i-start), obsCAS, obsFail, obsDisp)
				}
				return false, false
			}
			if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
		case cmp > 0:
			i++
		default:
			if chaos.Enabled && chaos.FailCAS(chaos.SitePtrInsertDisplace) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue
			}
			if t.cas(i, c, v) {
				if obs.Enabled {
					obsCAS, obsDisp = obsCAS+1, obsDisp+1
				}
				v = c
				i++
			} else if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
		}
	}
}

// fullErr builds the ErrFull report for a saturated table; the count is
// an atomic snapshot taken mid-phase.
func (t *PtrTable[T, O]) fullErr() error {
	n := 0
	for i := range t.cells {
		if t.cells[i].Load() != nil {
			n++
		}
	}
	return fullTableErr(len(t.cells), n)
}

// Find returns the stored element with v's key (find/elements phase
// only). Only v's key fields need to be populated.
func (t *PtrTable[T, O]) Find(v *T) (*T, bool) {
	return t.findFrom(v, t.home(v))
}

// findFrom is Find starting from a caller-supplied probe origin.
func (t *PtrTable[T, O]) findFrom(v *T, i int) (*T, bool) {
	start := i
	for {
		c := t.load(i)
		if c == nil {
			if obs.Enabled {
				obs.RecordFind(start, uint64(i-start), false)
			}
			return nil, false
		}
		cmp := t.ops.Cmp(v, c)
		if cmp > 0 {
			if obs.Enabled {
				obs.RecordFind(start, uint64(i-start), false)
			}
			return nil, false
		}
		if cmp == 0 {
			if obs.Enabled {
				obs.RecordFind(start, uint64(i-start), true)
			}
			return c, true
		}
		i++
	}
}

// Delete removes the element with v's key (delete phase only).
func (t *PtrTable[T, O]) Delete(v *T) bool {
	return t.deleteFrom(v, t.home(v))
}

// deleteFrom is Delete starting from a caller-supplied probe origin.
func (t *PtrTable[T, O]) deleteFrom(v *T, i int) bool {
	var obsScan, obsRepl, obsFail uint64
	home := i
	k := i
	for {
		c := t.load(k)
		if c == nil || t.ops.Cmp(v, c) >= 0 {
			break
		}
		k++
	}
	if obs.Enabled {
		obsScan = uint64(k - home)
	}
	deleted := false
	for k >= i {
		if chaos.Enabled {
			chaos.Yield(chaos.SitePtrDeleteProbe)
		}
		c := t.load(k)
		if c == nil || t.ops.Cmp(v, c) != 0 {
			k--
			continue
		}
		j, w := t.findReplacement(k)
		if t.cas(k, c, w) {
			deleted = true
			if w == nil {
				if obs.Enabled {
					obs.RecordDelete(home, obsScan, obsRepl, obsFail)
				}
				return true
			}
			if obs.Enabled {
				obsRepl++
			}
			v = w
			k = j
			i = t.lift(t.ops.Hash(w)&uint64(t.mask), j)
		} else {
			if obs.Enabled {
				obsFail++
			}
			k--
		}
	}
	if obs.Enabled {
		obs.RecordDelete(home, obsScan, obsRepl, obsFail)
	}
	return deleted
}

func (t *PtrTable[T, O]) findReplacement(i int) (int, *T) {
	j := i
	var w *T
	for {
		if chaos.Enabled {
			chaos.Yield(chaos.SitePtrDeleteProbe)
		}
		j++
		w = t.load(j)
		if w == nil || t.lift(t.ops.Hash(w)&uint64(t.mask), j) <= i {
			break
		}
	}
	for k := j - 1; k > i; k-- {
		w2 := t.load(k)
		if w2 == nil || t.lift(t.ops.Hash(w2)&uint64(t.mask), k) <= i {
			w = w2
			j = k
		}
	}
	return j, w
}

// Elements packs the stored elements in table order; deterministic for a
// given element set (find/elements phase only).
func (t *PtrTable[T, O]) Elements() []*T {
	n := len(t.cells)
	ptrs := make([]*T, n)
	parallel.For(n, func(i int) { ptrs[i] = t.cells[i].Load() })
	return parallel.Pack(ptrs, func(i int) bool { return ptrs[i] != nil })
}

// ElementsInto packs the stored elements into dst and returns the
// number packed (find/elements phase only). As for WordTable, the
// contract is on dst's *length*, not its capacity: len(dst) >= Count()
// is required, and a shorter dst panics with an index-out-of-range when
// the pack reaches the end of it.
func (t *PtrTable[T, O]) ElementsInto(dst []*T) int {
	n := len(t.cells)
	ptrs := make([]*T, n)
	parallel.For(n, func(i int) { ptrs[i] = t.cells[i].Load() })
	return parallel.PackInto(dst, ptrs, func(i int) bool { return ptrs[i] != nil })
}

// Count returns the number of stored elements (find/elements phase only).
func (t *PtrTable[T, O]) Count() int {
	return parallel.Count(len(t.cells), func(i int) bool { return t.cells[i].Load() != nil })
}

// Clear resets the table (callers must be quiescent).
func (t *PtrTable[T, O]) Clear() {
	parallel.For(len(t.cells), func(i int) { t.cells[i].Store(nil) })
}

// CheckInvariant verifies the ordering invariant at quiescence; see
// WordTable.CheckInvariant.
func (t *PtrTable[T, O]) CheckInvariant() error {
	m := len(t.cells)
	for j := 0; j < m; j++ {
		e := t.cells[j].Load()
		if e == nil {
			continue
		}
		h := t.home(e)
		dist := (j - h) & t.mask
		for d := 1; d <= dist; d++ {
			k := (h + d - 1) & t.mask
			c := t.cells[k].Load()
			if c == nil {
				return fmt.Errorf("core: hole at %d inside probe path of element at %d (home %d)", k, j, h)
			}
			if t.ops.Cmp(c, e) < 0 {
				return fmt.Errorf("core: priority inversion at %d for element at %d (home %d)", k, j, h)
			}
		}
	}
	return nil
}
