package core

import (
	"sync"
	"testing"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// Micro-benchmarks of the core table against Go's built-in map and
// sync.Map — not a paper experiment, but the comparison downstream
// users ask for first.

func benchKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashx.At(1, i)%uint64(n) + 1
	}
	return keys
}

func BenchmarkWordInsertSerial(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := NewWordTable[SetOps](1 << 18)
		for _, k := range keys {
			t.Insert(k)
		}
	}
	b.ReportMetric(float64(len(keys)), "elems/op")
}

func BenchmarkBuiltinMapInsertSerial(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := make(map[uint64]struct{}, 1<<17)
		for _, k := range keys {
			m[k] = struct{}{}
		}
	}
	b.ReportMetric(float64(len(keys)), "elems/op")
}

func BenchmarkWordInsertParallel(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := NewWordTable[SetOps](1 << 18)
		parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				t.Insert(keys[j])
			}
		})
	}
	b.ReportMetric(float64(len(keys)), "elems/op")
}

func BenchmarkSyncMapInsertParallel(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m sync.Map
		parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				m.Store(keys[j], struct{}{})
			}
		})
	}
	b.ReportMetric(float64(len(keys)), "elems/op")
}

func BenchmarkWordFind(b *testing.B) {
	keys := benchKeys(1 << 16)
	t := NewWordTable[SetOps](1 << 18)
	for _, k := range keys {
		t.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Find(keys[i&(1<<16-1)])
	}
}

func BenchmarkWordDelete(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := NewWordTable[SetOps](1 << 18)
		for _, k := range keys {
			t.Insert(k)
		}
		b.StartTimer()
		parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				t.Delete(keys[j])
			}
		})
		b.StopTimer()
	}
	b.ReportMetric(float64(len(keys)), "elems/op")
}

func BenchmarkElementsPack(b *testing.B) {
	keys := benchKeys(1 << 16)
	t := NewWordTable[SetOps](1 << 18)
	for _, k := range keys {
		t.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Elements()
	}
}

func BenchmarkGrowTableInsert(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGrowTable[SetOps](64)
		parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				g.Insert(keys[j])
			}
		})
	}
	b.ReportMetric(float64(len(keys)), "elems/op")
}
