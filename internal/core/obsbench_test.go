package core

import (
	"testing"

	"phasehash/internal/obs"
)

// Benchmark telemetry hooks: benchObsReset clears the sinks before the
// timed section and benchObsReport attaches probe/CAS metrics to the
// benchmark output afterwards, where benchjson picks them up as
// probes/op, p99probes/op and casretry/op columns. Both compile to
// nothing without -tags obs (obs.Enabled is const false), so the
// untagged baseline numbers are untouched.

func benchObsReset() {
	if obs.Enabled {
		obs.Reset()
	}
}

func benchObsReport(b *testing.B, class string) {
	if !obs.Enabled {
		return
	}
	s := obs.TakeSnapshot()
	var h *obs.Histogram
	switch class {
	case "insert":
		h = &s.InsertProbes
	case "find":
		h = &s.FindProbes
	case "delete":
		h = &s.DeleteProbes
	default:
		return
	}
	b.ReportMetric(s.MeanProbe(class), "probes/op")
	b.ReportMetric(float64(h.Quantile(0.99)), "p99probes/op")
	if class == "insert" {
		b.ReportMetric(s.CASRetryRate(), "casretry/op")
	}
}
