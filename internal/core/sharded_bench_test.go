package core

import (
	"testing"

	"phasehash/internal/hashx"
)

// Sharded-vs-flat benchmarks over the same operation phases as
// bulk_bench_test.go: the flat rows there (InsertAll / FindAll /
// DeleteAll) are the baseline these Sharded* rows are compared against
// in BENCH_core.json, on two distributions — the uniform randomSeq-int
// keys of bulkBenchKeys and a duplicate-heavy draw (~64 copies per
// distinct key) where the flat kernels pile probes onto few hot homes.
// Shard count is pinned (not auto) so the benchmark is identical at
// every -cpu value.

const shardedBenchShards = 32

// dupBenchKeys draws bulkBenchN keys uniformly from a 2^17-key universe
// (~8 duplicates each), spread over the hash space by an odd-constant
// multiply so distinct keys stay distinct and nonzero. The universe is
// sized to overflow cache (2^17 distinct homes over a 32MB backing
// array) while every operation after the first per key is a duplicate.
func dupBenchKeys() []uint64 {
	keys := make([]uint64, bulkBenchN)
	for i := range keys {
		keys[i] = (hashx.At(7, i)%(1<<17))*0x9e3779b97f4a7c15 + 1
	}
	return keys
}

func BenchmarkShardedInsertAll(b *testing.B) {
	keys := bulkBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t := NewShardedTable[SetOps](4*bulkBenchN, shardedBenchShards)
			t.InsertAll(keys)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "insert")
}

func BenchmarkShardedFindAll(b *testing.B) {
	keys := bulkBenchKeys()
	t := NewShardedTable[SetOps](4*bulkBenchN, shardedBenchShards)
	t.InsertAll(keys)
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t.FindAll(keys, nil)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "find")
}

func BenchmarkShardedDeleteAll(b *testing.B) {
	keys := bulkBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := NewShardedTable[SetOps](4*bulkBenchN, shardedBenchShards)
			t.InsertAll(keys)
			b.StartTimer()
			t.DeleteAll(keys)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "delete")
}

func BenchmarkInsertAllDup(b *testing.B) {
	keys := dupBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t := NewWordTable[SetOps](4 * bulkBenchN)
			t.InsertAll(keys)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "insert")
}

func BenchmarkShardedInsertAllDup(b *testing.B) {
	keys := dupBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t := NewShardedTable[SetOps](4*bulkBenchN, shardedBenchShards)
			t.InsertAll(keys)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "insert")
}

func BenchmarkDeleteAllDup(b *testing.B) {
	keys := dupBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := NewWordTable[SetOps](4 * bulkBenchN)
			t.InsertAll(keys)
			b.StartTimer()
			t.DeleteAll(keys)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "delete")
}

func BenchmarkShardedDeleteAllDup(b *testing.B) {
	keys := dupBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := NewShardedTable[SetOps](4*bulkBenchN, shardedBenchShards)
			t.InsertAll(keys)
			b.StartTimer()
			t.DeleteAll(keys)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "delete")
}
