package core

import (
	"sync/atomic"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// Bulk phase kernels for CompactTable, following bulk.go's chunked
// two-pass shape. The staging differs by operation to match what the
// probe pass actually reads first:
//
//   - FindAll stages ctrl *words*, not home cells — the whole point of
//     the compact layout is that a find touches cells only on a
//     fingerprint match, so prefetching the cell would drag in exactly
//     the line the ctrl array lets most probes skip. One ctrl word
//     covers eight slots, so staged words usually cover the whole
//     probe.
//   - InsertAll and DeleteAll stage the home *cell* plus its ctrl word:
//     their probe loops compare priorities at every slot, so the cell
//     line is needed immediately, and the ctrl word is where syncCtrl
//     will publish.

// InsertAll inserts every element of elems (insert phase only) and
// returns how many grew the element count; semantics exactly as
// WordTable.InsertAll.
func (t *CompactTable[O]) InsertAll(elems []uint64) int {
	var added atomic.Int64
	parallel.ForBlocked(len(elems), 0, func(lo, hi int) {
		a, full := t.insertRange(elems, lo, hi)
		if full >= 0 {
			panic("core: CompactTable: " + t.fullErr().Error())
		}
		if a != 0 {
			added.Add(int64(a))
		}
	})
	return int(added.Load())
}

// TryInsertAll is InsertAll returning errors instead of panicking; see
// WordTable.TryInsertAll for the saturation semantics.
func (t *CompactTable[O]) TryInsertAll(elems []uint64) (int, error) {
	var added atomic.Int64
	var firstErr atomic.Pointer[error]
	parallel.ForBlocked(len(elems), 0, func(lo, hi int) {
		a := 0
		for i := lo; i < hi; i++ {
			ok, err := t.TryInsert(elems[i])
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				continue
			}
			if ok {
				a++
			}
		}
		if a != 0 {
			added.Add(int64(a))
		}
	})
	if e := firstErr.Load(); e != nil {
		return int(added.Load()), *e
	}
	return int(added.Load()), nil
}

// insertRange is InsertAll's block kernel; see WordTable.insertRange.
// full returns the index of a saturating element, or -1.
func (t *CompactTable[O]) insertRange(elems []uint64, lo, hi int) (added, full int) {
	var hs [stageChunk]uint64
	for base := lo; base < hi; base += stageChunk {
		end := base + stageChunk
		if end > hi {
			end = hi
		}
		for i := base; i < end; i++ {
			v := elems[i]
			if v == Empty {
				panic("core: CompactTable: cannot insert the reserved empty element")
			}
			h := t.ops.Hash(v)
			hs[i-base] = h
			atomic.LoadUint64(&t.cells[int(h)&t.mask])
			t.loadCtrlWord(int(h) & t.mask)
		}
		for i := base; i < end; i++ {
			h := hs[i-base]
			a, f := t.insertLoopFrom(elems[i], h, int(h)&t.mask)
			if f {
				return added, i
			}
			if a {
				added++
			}
		}
	}
	return added, -1
}

// FindAll looks up every key of keys (find/elements phase only) and
// returns how many are present; dst as in WordTable.FindAll. The stage
// pass pre-computes the hash (home and fingerprint are cheap shifts off
// it at probe time) and touches the home ctrl word — not the home cell
// (see the file comment).
func (t *CompactTable[O]) FindAll(keys []uint64, dst []uint64) int {
	var found atomic.Int64
	parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
		var hs [stageChunk]uint64
		n := 0
		for base := lo; base < hi; base += stageChunk {
			end := base + stageChunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				h := t.ops.Hash(keys[i])
				hs[i-base] = h
				t.loadCtrlWord(int(h) & t.mask)
			}
			for i := base; i < end; i++ {
				h := hs[i-base]
				e, ok := t.findFrom(keys[i], h, int(h)&t.mask, hashx.Fingerprint(h))
				if ok {
					n++
				}
				if dst != nil {
					dst[i] = e
				}
			}
		}
		if n != 0 {
			found.Add(int64(n))
		}
	})
	return int(found.Load())
}

// ContainsAll reports how many of the keys are present (find/elements
// phase only).
func (t *CompactTable[O]) ContainsAll(keys []uint64) int {
	return t.FindAll(keys, nil)
}

// DeleteAll deletes every key of keys (delete phase only) and returns
// how many were removed by this call's deletes; semantics as
// WordTable.DeleteAll.
func (t *CompactTable[O]) DeleteAll(keys []uint64) int {
	var deleted atomic.Int64
	parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
		var hs [stageChunk]uint64
		n := 0
		for base := lo; base < hi; base += stageChunk {
			end := base + stageChunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				h := t.ops.Hash(keys[i])
				hs[i-base] = h
				atomic.LoadUint64(&t.cells[int(h)&t.mask])
				t.loadCtrlWord(int(h) & t.mask)
			}
			for i := base; i < end; i++ {
				h := hs[i-base]
				if t.deleteFrom(keys[i], h, int(h)&t.mask) {
					n++
				}
			}
		}
		if n != 0 {
			deleted.Add(int64(n))
		}
	})
	return int(deleted.Load())
}
