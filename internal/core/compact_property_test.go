// Black-box property tests for CompactTable. These live in an external
// test package because they draw workloads from internal/sequence,
// which itself imports core — an in-package test file would close an
// import cycle.
package core_test

import (
	"testing"

	"phasehash/internal/core"
	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
	"phasehash/internal/sequence"
)

// compactWorkload is detres.OracleWorkload's distribution-to-words
// mapping, duplicated here because core's tests cannot import detres
// (detres imports core, and its test binary links this package).
func compactWorkload(d sequence.Distribution, n int, seed uint64) []uint64 {
	switch d {
	case sequence.TrigramStr:
		return sequence.TrigramKeys(n, seed)
	case sequence.TrigramPairInt:
		return sequence.TrigramKeyPairs(n, seed)
	default:
		return sequence.WordElements(d, n, seed)
	}
}

// TestCompactPropertyGrid is the satellite property test: CompactTable
// against the sequential reference (a map model AND a sequentially
// built CompactTable at equal capacity, whose cells and ctrl words
// must be byte-identical — history independence across schedules)
// across all six EXPERIMENTS.md distributions × worker counts ×
// target load factors {0.5, 0.7, 0.9}. Each grid cell inserts in
// parallel, verifies contents/layout/invariant, deletes every third
// input in parallel, and re-verifies against the same references.
func TestCompactPropertyGrid(t *testing.T) {
	const m = 1 << 12
	loads := []float64{0.5, 0.7, 0.9}
	workerCounts := []int{1, 2, 4}
	dists := sequence.AllDistributions
	if testing.Short() {
		dists = []sequence.Distribution{sequence.RandomInt, sequence.ExptInt}
	}
	for _, d := range dists {
		for _, lf := range loads {
			n := int(lf * m)
			elems := compactWorkload(d, n, 42)
			for _, w := range workerCounts {
				prev := parallel.SetNumWorkers(w)

				tab := core.NewCompactTable[core.SetOps](m)
				parallel.ForGrain(len(elems), 1, func(i int) { tab.Insert(elems[i]) })

				model := map[uint64]bool{}
				ref := core.NewCompactTable[core.SetOps](m)
				for _, e := range elems {
					model[e] = true
					ref.Insert(e)
				}

				check := func(stage string) {
					if err := tab.CheckInvariant(); err != nil {
						t.Fatalf("%s/%.1f/w%d %s: %v", d, lf, w, stage, err)
					}
					if got := tab.Count(); got != len(model) {
						t.Fatalf("%s/%.1f/w%d %s: Count %d, model %d", d, lf, w, stage, got, len(model))
					}
					refCells, gotCells := ref.Snapshot(), tab.Snapshot()
					for i := range refCells {
						if gotCells[i] != refCells[i] {
							t.Fatalf("%s/%.1f/w%d %s: cell %d = %#x, sequential reference %#x",
								d, lf, w, stage, i, gotCells[i], refCells[i])
						}
					}
					refCtrl, gotCtrl := ref.CtrlSnapshot(), tab.CtrlSnapshot()
					for i := range refCtrl {
						if gotCtrl[i] != refCtrl[i] {
							t.Fatalf("%s/%.1f/w%d %s: ctrl word %d = %#x, sequential reference %#x",
								d, lf, w, stage, i, gotCtrl[i], refCtrl[i])
						}
					}
					for k := range model {
						if e, ok := tab.Find(k); !ok || e != k {
							t.Fatalf("%s/%.1f/w%d %s: Find(%#x) = %#x, %v", d, lf, w, stage, k, e, ok)
						}
					}
					for i := 0; i < 200; i++ {
						k := hashx.At(0xab5ee^42, i) | 1
						if !model[k] && tab.Contains(k) {
							t.Fatalf("%s/%.1f/w%d %s: absent key %#x reported present", d, lf, w, stage, k)
						}
					}
				}
				check("after inserts")

				var dels []uint64
				for i := 0; i < len(elems); i += 3 {
					dels = append(dels, elems[i])
				}
				parallel.ForGrain(len(dels), 1, func(i int) { tab.Delete(dels[i]) })
				for _, k := range dels {
					delete(model, k)
					ref.Delete(k)
				}
				check("after deletes")

				parallel.SetNumWorkers(prev)
			}
		}
	}
}
