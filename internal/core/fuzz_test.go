package core

import (
	"testing"

	"phasehash/internal/parallel"
)

// FuzzWordTableOps feeds an arbitrary byte script to the word table,
// interpreting it as alternating insert/delete/find phases over a small
// key universe, and cross-checks contents, Count, the ordering
// invariant, and history independence after every phase.
//
// Run with `go test -fuzz FuzzWordTableOps ./internal/core` to explore;
// the seed corpus runs on every plain `go test`.
func FuzzWordTableOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{10, 10, 10, 200, 200, 1})
	f.Add([]byte{})
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, script []byte) {
		tab := NewWordTable[SetOps](512)
		model := map[uint64]bool{}
		// Consume the script in phases of up to 16 ops.
		for pos := 0; pos < len(script); {
			phaseKind := script[pos] % 3
			pos++
			end := pos + 16
			if end > len(script) {
				end = len(script)
			}
			batch := script[pos:end]
			pos = end
			keys := make([]uint64, len(batch))
			for i, b := range batch {
				keys[i] = uint64(b)%200 + 1
			}
			switch phaseKind {
			case 0:
				parallel.ForGrain(len(keys), 1, func(i int) { tab.Insert(keys[i]) })
				for _, k := range keys {
					model[k] = true
				}
			case 1:
				parallel.ForGrain(len(keys), 1, func(i int) { tab.Delete(keys[i]) })
				for _, k := range keys {
					delete(model, k)
				}
			default:
				for _, k := range keys {
					if _, found := tab.Find(k); found != model[k] {
						t.Fatalf("Find(%d) = %v, model %v", k, found, model[k])
					}
				}
			}
			if err := tab.CheckInvariant(); err != nil {
				t.Fatal(err)
			}
			if tab.Count() != len(model) {
				t.Fatalf("Count %d, model %d", tab.Count(), len(model))
			}
		}
		// History independence: final layout equals a fresh build.
		ref := NewWordTable[SetOps](512)
		for k := range model {
			ref.Insert(k)
		}
		a, b := tab.Snapshot(), ref.Snapshot()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("layout differs from fresh build at %d", i)
			}
		}
	})
}

// FuzzGrowTable drives the resizing table with arbitrary insert streams
// and checks contents and growth.
func FuzzGrowTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := NewGrowTable[SetOps](64)
		model := map[uint64]bool{}
		for i, b := range data {
			// Spread keys so fuzz inputs of modest length still trigger
			// growth.
			k := uint64(b)*251 + uint64(i%7) + 1
			g.Insert(k)
			model[k] = true
		}
		if g.Count() != len(model) {
			t.Fatalf("Count %d, model %d", g.Count(), len(model))
		}
		for k := range model {
			if !g.Contains(k) {
				t.Fatalf("key %d lost", k)
			}
		}
		if err := g.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	})
}
