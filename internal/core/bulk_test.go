package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// layoutBytes serialises a quiescent layout for byte-level comparison.
func layoutBytes(cells []uint64) []byte {
	var buf bytes.Buffer
	for _, c := range cells {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], c)
		buf.Write(w[:])
	}
	return buf.Bytes()
}

// The bulk kernels must be observationally identical to the per-element
// loops: same quiescent layout (byte-for-byte), same counts — across
// worker counts, against a single-goroutine sequential reference.
func TestBulkMatchesSequentialReference(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1 << 12, 1 << 15} {
		keys := randKeys(n, 0xb01d)
		size := 4*n + 16

		// Sequential HI reference: one goroutine, per-element ops.
		old := parallel.SetNumWorkers(1)
		ref := buildSerial(keys, size)
		refLayout := layoutBytes(ref.Snapshot())
		refCount := ref.Count()
		// Reference delete of every 3rd key.
		for i := 0; i < n; i += 3 {
			ref.Delete(keys[i])
		}
		refDelLayout := layoutBytes(ref.Snapshot())
		parallel.SetNumWorkers(old)

		for _, w := range []int{1, 2, 4, 8} {
			prev := parallel.SetNumWorkers(w)
			tab := NewWordTable[SetOps](size)
			added := tab.InsertAll(keys)
			if got := layoutBytes(tab.Snapshot()); !bytes.Equal(got, refLayout) {
				t.Fatalf("n=%d w=%d: InsertAll layout differs from sequential reference", n, w)
			}
			if added != refCount {
				t.Fatalf("n=%d w=%d: InsertAll added %d, reference count %d", n, w, added, refCount)
			}

			// FindAll over present and absent keys.
			probes := make([]uint64, 0, 2*n)
			probes = append(probes, keys...)
			for i := 0; i < n; i++ {
				probes = append(probes, keys[i]+uint64(4*n)+100) // certainly absent
			}
			dst := make([]uint64, len(probes))
			found := tab.FindAll(probes, dst)
			if found != n {
				t.Fatalf("n=%d w=%d: FindAll found %d of %d present probes", n, w, found, n)
			}
			if c := tab.ContainsAll(probes); c != found {
				t.Fatalf("n=%d w=%d: ContainsAll %d != FindAll %d", n, w, c, found)
			}
			for i := 0; i < n; i++ {
				if dst[i] != keys[i] {
					t.Fatalf("n=%d w=%d: FindAll dst[%d] = %d, want %d", n, w, i, dst[i], keys[i])
				}
				if dst[n+i] != Empty {
					t.Fatalf("n=%d w=%d: FindAll absent probe wrote %d", n, w, dst[n+i])
				}
			}

			// DeleteAll of every 3rd key matches the reference layout.
			var del []uint64
			for i := 0; i < n; i += 3 {
				del = append(del, keys[i])
			}
			tab.DeleteAll(del)
			if got := layoutBytes(tab.Snapshot()); !bytes.Equal(got, refDelLayout) {
				t.Fatalf("n=%d w=%d: DeleteAll layout differs from sequential reference", n, w)
			}
			if err := tab.CheckInvariant(); err != nil {
				t.Fatalf("n=%d w=%d: invariant after DeleteAll: %v", n, w, err)
			}
			parallel.SetNumWorkers(prev)
		}
	}
}

// Bulk and per-element paths must agree with each other directly (not
// just via the reference) — including Elements order.
func TestBulkMatchesPerElementParallel(t *testing.T) {
	n := 1 << 14
	keys := randKeys(n, 0xfeed)
	size := 4 * n
	old := parallel.SetNumWorkers(4)
	defer parallel.SetNumWorkers(old)

	perElem := buildParallel(keys, size)
	bulk := NewWordTable[SetOps](size)
	bulk.InsertAll(keys)

	pe := perElem.Elements()
	be := bulk.Elements()
	if len(pe) != len(be) {
		t.Fatalf("Elements length: per-element %d, bulk %d", len(pe), len(be))
	}
	for i := range pe {
		if pe[i] != be[i] {
			t.Fatalf("Elements[%d]: per-element %d, bulk %d", i, pe[i], be[i])
		}
	}
	if !bytes.Equal(layoutBytes(perElem.Snapshot()), layoutBytes(bulk.Snapshot())) {
		t.Fatal("quiescent layouts differ between per-element and bulk insert")
	}
}

func TestTryInsertAllReservedAndFull(t *testing.T) {
	tab := NewWordTable[SetOps](8)
	added, err := tab.TryInsertAll([]uint64{1, Empty, 2})
	if !errors.Is(err, ErrReservedKey) {
		t.Fatalf("TryInsertAll with Empty: err = %v, want ErrReservedKey", err)
	}
	if added != 2 {
		t.Fatalf("TryInsertAll added %d, want 2", added)
	}

	small := NewWordTable[SetOps](4)
	many := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	_, err = small.TryInsertAll(many)
	if !errors.Is(err, ErrFull) {
		t.Fatalf("TryInsertAll on saturated table: err = %v, want ErrFull", err)
	}
}

func TestInsertAllPanicsOnFull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InsertAll on saturated table did not panic")
		}
	}()
	NewWordTable[SetOps](4).InsertAll([]uint64{1, 2, 3, 4, 5, 6, 7, 8})
}

// Pointer-table bulk kernels against the per-element path.
func TestPtrBulkMatchesPerElement(t *testing.T) {
	n := 1 << 12
	elems := recKeys(n, 0xcafe)
	old := parallel.SetNumWorkers(4)
	defer parallel.SetNumWorkers(old)

	perElem := NewPtrTable[rec, recOps](4 * n)
	parallel.ForGrain(n, 1, func(i int) { perElem.Insert(elems[i]) })
	bulk := NewPtrTable[rec, recOps](4 * n)
	added := bulk.InsertAll(elems)
	if added != perElem.Count() {
		t.Fatalf("InsertAll added %d, per-element count %d", added, perElem.Count())
	}

	pe := perElem.Elements()
	be := bulk.Elements()
	if len(pe) != len(be) {
		t.Fatalf("Elements length: per-element %d, bulk %d", len(pe), len(be))
	}
	for i := range pe {
		if pe[i].key != be[i].key || pe[i].val != be[i].val {
			t.Fatalf("Elements[%d]: per-element %+v, bulk %+v", i, *pe[i], *be[i])
		}
	}

	// FindAll: all inserted keys present, shifted keys absent.
	probes := make([]*rec, n)
	for i := range probes {
		probes[i] = &rec{key: elems[i].key}
	}
	dst := make([]*rec, n)
	if found := bulk.FindAll(probes, dst); found != n {
		t.Fatalf("FindAll found %d of %d", found, n)
	}
	for i := range dst {
		if dst[i] == nil || dst[i].key != elems[i].key {
			t.Fatalf("FindAll dst[%d] wrong", i)
		}
	}

	// DeleteAll every other key; compare against per-element deletes.
	var del []*rec
	for i := 0; i < n; i += 2 {
		del = append(del, &rec{key: elems[i].key})
	}
	bulk.DeleteAll(del)
	parallel.ForGrain(len(del), 1, func(i int) { perElem.Delete(del[i]) })
	pe = perElem.Elements()
	be = bulk.Elements()
	if len(pe) != len(be) {
		t.Fatalf("post-delete Elements length: per-element %d, bulk %d", len(pe), len(be))
	}
	for i := range pe {
		if pe[i].key != be[i].key {
			t.Fatalf("post-delete Elements[%d]: per-element key %d, bulk key %d", i, pe[i].key, be[i].key)
		}
	}
	if err := bulk.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPtrTryInsertAllNil(t *testing.T) {
	tab := NewPtrTable[rec, recOps](16)
	added, err := tab.TryInsertAll([]*rec{{key: 1}, nil, {key: 2}})
	if !errors.Is(err, ErrNilValue) {
		t.Fatalf("TryInsertAll with nil: err = %v, want ErrNilValue", err)
	}
	if added != 2 {
		t.Fatalf("TryInsertAll added %d, want 2", added)
	}
}

// Growing-table bulk kernels: same quiescent snapshot as per-element
// inserts across worker counts, including growth during the phase.
func TestGrowBulkMatchesPerElement(t *testing.T) {
	n := 1 << 13
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashx.At(0x9e77, i)%uint64(2*n) + 1
	}
	old := parallel.SetNumWorkers(4)
	defer parallel.SetNumWorkers(old)

	perElem := NewGrowTable[IdentOps](64)
	parallel.ForGrain(n, 1, func(i int) { perElem.Insert(keys[i]) })
	perElem.FinishMigration()

	bulk := NewGrowTable[IdentOps](64)
	bulk.InsertAll(keys)
	bulk.FinishMigration()

	if !bytes.Equal(layoutBytes(perElem.Snapshot()), layoutBytes(bulk.Snapshot())) {
		t.Fatal("grow-table quiescent layouts differ between per-element and bulk insert")
	}

	if found := bulk.ContainsAll(keys); found != n {
		t.Fatalf("ContainsAll found %d of %d inserted keys", found, n)
	}
	dst := make([]uint64, n)
	bulk.FindAll(keys, dst)
	for i := range dst {
		if dst[i] != keys[i] {
			t.Fatalf("FindAll dst[%d] = %d, want %d", i, dst[i], keys[i])
		}
	}

	var del []uint64
	for i := 0; i < n; i += 3 {
		del = append(del, keys[i])
	}
	bulk.DeleteAll(del)
	parallel.ForGrain(len(del), 1, func(i int) { perElem.Delete(del[i]) })
	if !bytes.Equal(layoutBytes(perElem.Snapshot()), layoutBytes(bulk.Snapshot())) {
		t.Fatal("grow-table layouts differ after bulk vs per-element deletes")
	}

	_, err := bulk.TryInsertAll([]uint64{5, Empty})
	if !errors.Is(err, ErrReservedKey) {
		t.Fatalf("GrowTable TryInsertAll with Empty: err = %v, want ErrReservedKey", err)
	}
}
