package core

// This file holds the non-atomic serial probe loops of WordTable: the
// same linear-probing algorithms as the exported phase-concurrent
// operations, with plain loads and stores instead of atomic loads and
// CASes. They exist for the owner-computes path of ShardedTable
// (sharded.go): after a radix partition, exactly one worker streams one
// shard, so no cross-worker conflict is possible and the CAS retry
// machinery — and its cost on duplicate-heavy distributions, where many
// inserts hammer one home cell — evaporates.
//
// History independence makes the substitution sound: the quiescent
// layout of a linear-probed priority table is a pure function of the
// element set (paper, Theorem 1 territory), so a sequential replay of a
// shard's operation run lands in exactly the cell state any concurrent
// schedule of the same run would reach. The detres cross-oracle
// (ShardedRunner vs ShardedBulkRunner) enforces this byte-for-byte.
//
// These methods must only be called while the caller holds exclusive
// access to the table (or shard): they are deliberately not in the
// phasevet fact table because they are unexported and never visible to
// API users.

// insertSerial is insertLoopFrom with plain memory operations: walk the
// probe sequence, displace lower-priority elements, merge equal keys.
// full reports a whole-array sweep, exactly like insertLoop.
func (t *WordTable[O]) insertSerial(v uint64) (added, full bool) {
	i := t.home(v)
	limit := i + len(t.cells)
	for {
		if i >= limit {
			return false, true
		}
		c := t.cells[i&t.mask]
		switch {
		case c == Empty:
			t.cells[i&t.mask] = v
			return true, false
		default:
			cmp := t.ops.Cmp(c, v)
			switch {
			case cmp == 0:
				if merged := t.ops.Merge(c, v); merged != c {
					t.cells[i&t.mask] = merged
				}
				return false, false
			case cmp > 0: // cell has higher priority; keep probing
				i++
			default: // v has higher priority; swap in, carry c forward
				t.cells[i&t.mask] = v
				v = c
				i++
			}
		}
	}
}

// findSerial is findFrom with plain loads.
func (t *WordTable[O]) findSerial(v uint64) (uint64, bool) {
	i := t.home(v)
	for {
		c := t.cells[i&t.mask]
		if c == Empty {
			return Empty, false
		}
		cmp := t.ops.Cmp(v, c)
		if cmp > 0 {
			return Empty, false
		}
		if cmp == 0 {
			return c, true
		}
		i++
	}
}

// deleteSerial is deleteFrom with plain memory operations. The
// concurrent version's re-scans (the downward pass of findReplacement,
// the k-- retreat on CAS failure) exist only to chase concurrent
// deletes; with exclusive access the hole-filling recursion is direct:
// find the victim, pull the closest following element that hashes at or
// before it into the hole, and repeat on the copy it left behind.
func (t *WordTable[O]) deleteSerial(v uint64) bool {
	k := t.home(v)
	for {
		c := t.cells[k&t.mask]
		if c == Empty || t.ops.Cmp(v, c) >= 0 {
			break
		}
		k++
	}
	for {
		c := t.cells[k&t.mask]
		if c == Empty || t.ops.Cmp(v, c) != 0 {
			return false
		}
		j, w := t.findReplacementSerial(k)
		t.cells[k&t.mask] = w
		if w == Empty {
			return true
		}
		// Two copies of w exist now; delete the original at j. The loop
		// re-enters with v = w already matching cells[j].
		v = w
		k = j
	}
}

// findReplacementSerial is findReplacement's upward scan with plain
// loads; the downward re-scan is unnecessary without concurrent deletes
// (the upward scan already stops at the *first* eligible position).
func (t *WordTable[O]) findReplacementSerial(i int) (int, uint64) {
	j := i
	for {
		j++
		w := t.cells[j&t.mask]
		if w == Empty || t.lift(t.ops.Hash(w)&uint64(t.mask), j) <= i {
			return j, w
		}
	}
}

// insertRangeSerial drives insertSerial over a contiguous run of
// elements (one shard's partition run). full returns the index within
// elems of a saturating element, or -1; reserved elements panic exactly
// as Insert does.
func (t *WordTable[O]) insertRangeSerial(elems []uint64) (added, full int) {
	for i, v := range elems {
		if v == Empty {
			panic("core: WordTable: cannot insert the reserved empty element")
		}
		a, f := t.insertSerial(v)
		if f {
			return added, i
		}
		if a {
			added++
		}
	}
	return added, -1
}

// tryInsertRangeSerial is insertRangeSerial with TryInsert semantics:
// every element is attempted (duplicate keys can still merge into a
// saturated shard), and the first error is reported.
func (t *WordTable[O]) tryInsertRangeSerial(elems []uint64) (added int, err error) {
	for _, v := range elems {
		if v == Empty {
			if err == nil {
				err = reservedErr()
			}
			continue
		}
		a, f := t.insertSerial(v)
		if f {
			if err == nil {
				err = t.fullErr()
			}
			continue
		}
		if a {
			added++
		}
	}
	return added, err
}

// findRangeSerial counts how many of the keys are present; when dst is
// non-nil, dst[i] receives the stored element for keys[i] or Empty.
func (t *WordTable[O]) findRangeSerial(keys, dst []uint64) int {
	n := 0
	for i, v := range keys {
		e, ok := t.findSerial(v)
		if ok {
			n++
		}
		if dst != nil {
			dst[i] = e
		}
	}
	return n
}

// deleteRangeSerial deletes every key of the run, returning how many
// were present.
func (t *WordTable[O]) deleteRangeSerial(keys []uint64) int {
	n := 0
	for _, v := range keys {
		if t.deleteSerial(v) {
			n++
		}
	}
	return n
}
