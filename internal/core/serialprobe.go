package core

import "phasehash/internal/obs"

// This file holds the non-atomic serial probe loops of WordTable: the
// same linear-probing algorithms as the exported phase-concurrent
// operations, with plain loads and stores instead of atomic loads and
// CASes. They exist for the owner-computes path of ShardedTable
// (sharded.go): after a radix partition, exactly one worker streams one
// shard, so no cross-worker conflict is possible and the CAS retry
// machinery — and its cost on duplicate-heavy distributions, where many
// inserts hammer one home cell — evaporates.
//
// History independence makes the substitution sound: the quiescent
// layout of a linear-probed priority table is a pure function of the
// element set (paper, Theorem 1 territory), so a sequential replay of a
// shard's operation run lands in exactly the cell state any concurrent
// schedule of the same run would reach. The detres cross-oracle
// (ShardedRunner vs ShardedBulkRunner) enforces this byte-for-byte.
//
// The probe kernels carry //phasehash:serial annotations: atomicvet
// verifies the exclusivity claim stays attached to every function that
// plainly touches the atomically-shadowed cells, and flags the marker
// itself if the plain access ever disappears. They are deliberately
// not in the phasevet fact table because they are unexported and never
// visible to API users.
//
// Telemetry: the serial loops feed the same obs counters as the atomic
// paths (so sharded and flat runs are comparable), with zero CAS
// attempts — there are none to count here, which is the point of the
// owner-computes path.

// insertSerial is insertLoopFrom with plain memory operations: walk the
// probe sequence, displace lower-priority elements, merge equal keys.
// full reports a whole-array sweep, exactly like insertLoop.
//
//phasehash:serial owner-computes: exactly one worker streams this shard after the radix partition, and history independence makes the serial replay land in the same quiescent layout
func (t *WordTable[O]) insertSerial(v uint64) (added, full bool, steps int) {
	var obsDisp uint64
	i := t.home(v)
	start := i
	limit := i + len(t.cells)
	for {
		if i >= limit {
			if obs.Enabled {
				obs.RecordInsert(start, uint64(i-start), 0, 0, obsDisp)
			}
			return false, true, i - start
		}
		c := t.cells[i&t.mask]
		switch {
		case c == Empty:
			t.cells[i&t.mask] = v
			if obs.Enabled {
				obs.RecordInsert(start, uint64(i-start), 0, 0, obsDisp)
			}
			return true, false, i - start
		default:
			cmp := t.ops.Cmp(c, v)
			switch {
			case cmp == 0:
				if merged := t.ops.Merge(c, v); merged != c {
					t.cells[i&t.mask] = merged
				}
				if obs.Enabled {
					obs.RecordInsert(start, uint64(i-start), 0, 0, obsDisp)
				}
				return false, false, i - start
			case cmp > 0: // cell has higher priority; keep probing
				i++
			default: // v has higher priority; swap in, carry c forward
				t.cells[i&t.mask] = v
				v = c
				i++
				if obs.Enabled {
					obsDisp++
				}
			}
		}
	}
}

// findSerial is findFrom with plain loads.
//
//phasehash:serial owner-computes: the shard is exclusively owned for the whole bulk find phase, so no store can race these loads
func (t *WordTable[O]) findSerial(v uint64) (uint64, bool, int) {
	i := t.home(v)
	start := i
	// Like insertSerial (and findFrom), bound the probe to one full
	// sweep so a saturated shard cannot spin the search for an absent
	// low-priority key forever.
	limit := i + len(t.cells)
	for i < limit {
		c := t.cells[i&t.mask]
		if c == Empty {
			if obs.Enabled {
				obs.RecordFind(start, uint64(i-start), false)
			}
			return Empty, false, i - start
		}
		cmp := t.ops.Cmp(v, c)
		if cmp > 0 {
			if obs.Enabled {
				obs.RecordFind(start, uint64(i-start), false)
			}
			return Empty, false, i - start
		}
		if cmp == 0 {
			if obs.Enabled {
				obs.RecordFind(start, uint64(i-start), true)
			}
			return c, true, i - start
		}
		i++
	}
	// Full sweep without a verdict: the shard is saturated and v absent.
	if obs.Enabled {
		obs.RecordFind(start, uint64(i-start), false)
	}
	return Empty, false, i - start
}

// deleteSerial is deleteFrom with plain memory operations. The
// concurrent version's re-scans (the downward pass of findReplacement,
// the k-- retreat on CAS failure) exist only to chase concurrent
// deletes; with exclusive access the hole-filling recursion is direct:
// find the victim, pull the closest following element that hashes at or
// before it into the hole, and repeat on the copy it left behind.
//
//phasehash:serial owner-computes: exclusive shard ownership removes the concurrent deletes the atomic version's re-scans exist to chase
func (t *WordTable[O]) deleteSerial(v uint64) (deleted bool, steps int) {
	var obsRepl uint64
	home := t.home(v)
	k := home
	// Bounded like findSerial: on a saturated shard the victim scan for
	// an absent low-priority key would otherwise never terminate. After
	// a full sweep k wraps to home's cell, which cannot match v (a match
	// there would have stopped the scan at k == home), so the not-found
	// path below reports correctly.
	for k < home+len(t.cells) {
		c := t.cells[k&t.mask]
		if c == Empty || t.ops.Cmp(v, c) >= 0 {
			break
		}
		k++
	}
	steps = k - home
	for {
		c := t.cells[k&t.mask]
		if c == Empty || t.ops.Cmp(v, c) != 0 {
			if obs.Enabled {
				obs.RecordDelete(home, uint64(steps), obsRepl, 0)
			}
			return false, steps
		}
		j, w := t.findReplacementSerial(k)
		t.cells[k&t.mask] = w
		if w == Empty {
			if obs.Enabled {
				obs.RecordDelete(home, uint64(steps), obsRepl, 0)
			}
			return true, steps
		}
		if obs.Enabled {
			obsRepl++
		}
		// Two copies of w exist now; delete the original at j. The loop
		// re-enters with v = w already matching cells[j].
		v = w
		k = j
	}
}

// findReplacementSerial is findReplacement's upward scan with plain
// loads; the downward re-scan is unnecessary without concurrent deletes
// (the upward scan already stops at the *first* eligible position).
//
//phasehash:serial owner-computes: only called from deleteSerial under the same exclusive shard ownership
func (t *WordTable[O]) findReplacementSerial(i int) (int, uint64) {
	j := i
	// Bounded like findReplacement: a saturated shard's cluster wraps
	// the whole array, and when nothing in it may legally fill the hole
	// the cluster ends at the hole (w = Empty).
	for j < i+len(t.cells)-1 {
		j++
		w := t.cells[j&t.mask]
		if w == Empty || t.lift(t.ops.Hash(w)&uint64(t.mask), j) <= i {
			return j, w
		}
	}
	return j, Empty
}

// insertRangeSerial drives insertSerial over a contiguous run of
// elements (one shard's partition run). full returns the index within
// elems of a saturating element, or -1; reserved elements panic exactly
// as Insert does.
//
// The always-on core gets one batched publish per run (stripe: the
// run's first home cell), counting only completed operations — same
// discipline as the bulk kernels, same reason: the per-op hook cost
// would not fit the overhead gate.
func (t *WordTable[O]) insertRangeSerial(elems []uint64) (added, full int) {
	var coreSteps uint64
	for i, v := range elems {
		if v == Empty {
			panic("core: WordTable: cannot insert the reserved empty element")
		}
		a, f, s := t.insertSerial(v)
		if f {
			if obs.CoreEnabled && i > 0 {
				obs.CoreInsert(t.home(elems[0]), uint64(i), coreSteps)
			}
			return added, i
		}
		coreSteps += uint64(s)
		if a {
			added++
		}
	}
	if obs.CoreEnabled && len(elems) > 0 {
		obs.CoreInsert(t.home(elems[0]), uint64(len(elems)), coreSteps)
	}
	return added, -1
}

// tryInsertRangeSerial is insertRangeSerial with TryInsert semantics:
// every element is attempted (duplicate keys can still merge into a
// saturated shard), and the first error is reported.
func (t *WordTable[O]) tryInsertRangeSerial(elems []uint64) (added int, err error) {
	var coreOps, coreSteps uint64
	for _, v := range elems {
		if v == Empty {
			if err == nil {
				err = reservedErr()
			}
			continue
		}
		a, f, s := t.insertSerial(v)
		if f {
			if err == nil {
				err = t.fullErr()
			}
			continue
		}
		coreOps++
		coreSteps += uint64(s)
		if a {
			added++
		}
	}
	if obs.CoreEnabled && len(elems) > 0 {
		obs.CoreInsert(t.home(elems[0]), coreOps, coreSteps)
	}
	return added, err
}

// findRangeSerial counts how many of the keys are present; when dst is
// non-nil, dst[i] receives the stored element for keys[i] or Empty.
func (t *WordTable[O]) findRangeSerial(keys, dst []uint64) int {
	var coreSteps uint64
	n := 0
	for i, v := range keys {
		e, ok, s := t.findSerial(v)
		coreSteps += uint64(s)
		if ok {
			n++
		}
		if dst != nil {
			dst[i] = e
		}
	}
	if obs.CoreEnabled && len(keys) > 0 {
		obs.CoreFind(t.home(keys[0]), uint64(len(keys)), coreSteps, uint64(n))
	}
	return n
}

// deleteRangeSerial deletes every key of the run, returning how many
// were present.
func (t *WordTable[O]) deleteRangeSerial(keys []uint64) int {
	var coreSteps uint64
	n := 0
	for _, v := range keys {
		d, s := t.deleteSerial(v)
		coreSteps += uint64(s)
		if d {
			n++
		}
	}
	if obs.CoreEnabled && len(keys) > 0 {
		obs.CoreDelete(t.home(keys[0]), uint64(len(keys)), coreSteps)
	}
	return n
}
