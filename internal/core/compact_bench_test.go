package core

import (
	"sync"
	"testing"
)

// Compact-vs-flat benchmarks, in two regimes:
//
//   - The *resident* regime (compactBenchCells = 2^20): every array —
//     flat cells (8 MB), compact ctrl (1 MB) + cells (8 MB), the key
//     streams — fits this machine's L3, so the comparison is pure
//     compute: probe-loop instructions and load latencies out of
//     cache. The compact table's hash-keyed priority exit resolves a
//     uniform miss in ~1 ctrl word with no cell load, where the flat
//     probe walks ~2-3 cells to its own priority exit — the compact
//     miss rows win even with everything cached.
//
//   - The *overflow* regime (compactMissCells = 2^26): the stored set
//     is 60.4M elements at load 0.9, so the flat cell array (512 MB)
//     overflows L3 (260 MB on this machine) while the compact ctrl
//     array (64 MB) stays resident, probed by a 4M-key miss stream —
//     the footprint side of the argument: the 1-byte-per-slot scan
//     keeps its working set cached when the 8-byte-per-slot probe
//     cannot. BenchmarkCompactFindAllMiss is judged against
//     BenchmarkFindAllMiss (equal cell count, equal load: the pure
//     probe-policy-and-footprint comparison).
//
// Every row reports bytes/elem — backing-array bytes over *stored*
// elements — so BENCH_core.json carries the memory side of the trade
// next to the throughput side. The overflow-regime tables are built
// once per test process (they are read-only under find) and shared
// across -count/-cpu runs; a fresh `go test -bench` process rebuilds
// them from scratch.

const (
	// Resident regime: compact tables at load factor 0.9.
	compactBenchCells = 1 << 20
	compactBenchN     = compactBenchCells * 9 / 10

	// Overflow regime: stored set and cell counts sized past L3 for
	// the flat table, probed with a smaller uniform miss stream.
	compactMissCells  = 1 << 26
	compactMissN      = compactMissCells * 9 / 10
	compactMissProbes = 1 << 22
)

func affineKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	return keys
}

// affineMisses returns n keys disjoint from any affineKeys result of any
// length (+2 vs +1 offsets of an odd-multiplier affine sequence);
// builders assert the disjointness against each built table.
func affineMisses(n int) []uint64 {
	miss := make([]uint64, n)
	for i := range miss {
		miss[i] = uint64(i)*0x9e3779b97f4a7c15 + 2
	}
	return miss
}

func compactBenchKeys() []uint64   { return affineKeys(compactBenchN) }
func compactBenchMisses() []uint64 { return affineMisses(compactBenchN) }

func reportBytesPerElem(b *testing.B, bytes, stored int) {
	b.ReportMetric(float64(bytes)/float64(stored), "bytes/elem")
}

// missFixtures holds the overflow-regime fixtures: three read-only
// tables over the same 60.4M-element stored set — compact at load 0.9,
// flat at the same cell count (load 0.9), and flat at the repo's
// standard 4x-cells-per-key benchmark sizing (load ~0.22) — plus the
// probe stream. Built lazily, once per process.
type missFixtures struct {
	miss    []uint64
	compact *CompactTable[SetOps]
	flat    *WordTable[SetOps]
	lowLoad *WordTable[SetOps]
}

var (
	missLabOnce sync.Once
	missLabData missFixtures
)

func missLab() *missFixtures {
	l := &missLabData
	missLabOnce.Do(func() {
		keys := affineKeys(compactMissN)
		l.miss = affineMisses(compactMissProbes)
		l.compact = NewCompactTable[SetOps](compactMissCells)
		l.compact.InsertAll(keys)
		l.flat = NewWordTable[SetOps](compactMissCells)
		l.flat.InsertAll(keys)
		l.lowLoad = NewWordTable[SetOps](4 * compactMissN)
		l.lowLoad.InsertAll(keys)
		if n := l.compact.ContainsAll(l.miss); n != 0 {
			panic("compact miss keys are not disjoint")
		}
		if n := l.flat.ContainsAll(l.miss); n != 0 {
			panic("flat miss keys are not disjoint")
		}
		if n := l.lowLoad.ContainsAll(l.miss); n != 0 {
			panic("low-load miss keys are not disjoint")
		}
	})
	return l
}

func BenchmarkCompactInsertAll(b *testing.B) {
	keys := compactBenchKeys()
	var bytes int
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t := NewCompactTable[SetOps](compactBenchCells)
			t.InsertAll(keys)
			bytes = t.Bytes()
		}
	})
	b.ReportMetric(float64(compactBenchN), "elems/op")
	reportBytesPerElem(b, bytes, compactBenchN)
	benchObsReport(b, "insert")
}

func BenchmarkCompactFindAll(b *testing.B) {
	keys := compactBenchKeys()
	t := NewCompactTable[SetOps](compactBenchCells)
	t.InsertAll(keys)
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t.FindAll(keys, nil)
		}
	})
	b.ReportMetric(float64(compactBenchN), "elems/op")
	reportBytesPerElem(b, t.Bytes(), compactBenchN)
	benchObsReport(b, "find")
}

// BenchmarkCompactFindAllMissResident / BenchmarkFindAllMissResident:
// uniform misses in the resident regime at equal cell count (load 0.9
// for both) — the pair behind the ISSUE's >= 1.3x miss criterion.
// Both priority exits are in play; the compact one fires from the ctrl
// word (~1 word load) where the flat one needs ~2-3 cell loads.
func BenchmarkCompactFindAllMissResident(b *testing.B) {
	keys, miss := compactBenchKeys(), compactBenchMisses()
	t := NewCompactTable[SetOps](compactBenchCells)
	t.InsertAll(keys)
	if n := t.ContainsAll(miss); n != 0 {
		b.Fatalf("miss keys are not disjoint: %d present", n)
	}
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t.FindAll(miss, nil)
		}
	})
	b.ReportMetric(float64(compactBenchN), "elems/op")
	reportBytesPerElem(b, t.Bytes(), compactBenchN)
	benchObsReport(b, "find")
}

func BenchmarkFindAllMissResident(b *testing.B) {
	keys, miss := compactBenchKeys(), compactBenchMisses()
	t := NewWordTable[SetOps](compactBenchCells)
	t.InsertAll(keys)
	if n := t.ContainsAll(miss); n != 0 {
		b.Fatalf("miss keys are not disjoint: %d present", n)
	}
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t.FindAll(miss, nil)
		}
	})
	b.ReportMetric(float64(compactBenchN), "elems/op")
	reportBytesPerElem(b, t.Bytes(), compactBenchN)
	benchObsReport(b, "find")
}

// BenchmarkCompactFindAllMiss is the overflow-regime miss row: 4M
// uniform misses against the 60.4M-element compact table whose ctrl
// array (64 MB) is L3-resident. Judged against BenchmarkFindAllMiss.
func BenchmarkCompactFindAllMiss(b *testing.B) {
	l := missLab()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			l.compact.FindAll(l.miss, nil)
		}
	})
	b.ReportMetric(float64(compactMissProbes), "elems/op")
	reportBytesPerElem(b, l.compact.Bytes(), compactMissN)
	benchObsReport(b, "find")
}

// BenchmarkFindAllMiss is the flat baseline for
// BenchmarkCompactFindAllMiss at the SAME cell count and load (0.9):
// identical clusters, identical verdicts; the flat cell array (512 MB)
// overflows L3, so every probe pays a memory access the compact scan
// usually doesn't.
func BenchmarkFindAllMiss(b *testing.B) {
	l := missLab()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			l.flat.FindAll(l.miss, nil)
		}
	})
	b.ReportMetric(float64(compactMissProbes), "elems/op")
	reportBytesPerElem(b, l.flat.Bytes(), compactMissN)
	benchObsReport(b, "find")
}

// BenchmarkFindAllMissLowLoad is the flat table at its standard
// 4x-cells-per-key benchmark sizing (load ~0.22) on the same misses:
// the flat table's best case — one-or-two-slot probes — bought with
// 3.6x the compact table's memory (a 2 GB cell array here; see
// EXPERIMENTS.md, "Compact fingerprint-probed table").
func BenchmarkFindAllMissLowLoad(b *testing.B) {
	l := missLab()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			l.lowLoad.FindAll(l.miss, nil)
		}
	})
	b.ReportMetric(float64(compactMissProbes), "elems/op")
	reportBytesPerElem(b, l.lowLoad.Bytes(), compactMissN)
	benchObsReport(b, "find")
}

func BenchmarkCompactDeleteAll(b *testing.B) {
	keys := compactBenchKeys()
	var bytes int
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := NewCompactTable[SetOps](compactBenchCells)
			t.InsertAll(keys)
			b.StartTimer()
			t.DeleteAll(keys)
			bytes = t.Bytes()
		}
	})
	b.ReportMetric(float64(compactBenchN), "elems/op")
	reportBytesPerElem(b, bytes, compactBenchN)
	benchObsReport(b, "delete")
}
