//go:build obs

package core

import (
	"bytes"
	"runtime/trace"
	"testing"

	"phasehash/internal/obs"
)

// TestObsCountersFromTableOps drives real WordTable phases and checks
// the recorded counters are consistent: one op per call, histogram
// totals match op counts, probe-step sums bound the work, CAS attempts
// cover at least the successful claims.
func TestObsCountersFromTableOps(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	const n = 1 << 12
	tb := NewWordTable[SetOps](4 * n)
	for i := uint64(1); i <= n; i++ {
		tb.Insert(i * 2654435761)
	}
	s := obs.TakeSnapshot()
	if got := s.Get(obs.CtrInsertOps); got != n {
		t.Fatalf("insert ops %d, want %d", got, n)
	}
	if s.InsertProbes.Total() != n {
		t.Fatalf("insert histogram total %d, want %d", s.InsertProbes.Total(), n)
	}
	if got := s.Get(obs.CtrInsertCASAttempts); got < n {
		t.Fatalf("CAS attempts %d < %d inserts (every claim is a CAS)", got, n)
	}

	obs.Reset()
	hits := 0
	for i := uint64(1); i <= n; i++ {
		if tb.Contains(i * 2654435761) {
			hits++
		}
		tb.Contains(i) // mostly misses
	}
	s = obs.TakeSnapshot()
	if got := s.Get(obs.CtrFindOps); got != 2*n {
		t.Fatalf("find ops %d, want %d", got, 2*n)
	}
	if got := s.Get(obs.CtrFindHits); got != uint64(hits) {
		t.Fatalf("find hits %d, want %d", got, hits)
	}
	if s.FindProbes.Total() != 2*n {
		t.Fatalf("find histogram total %d, want %d", s.FindProbes.Total(), 2*n)
	}

	obs.Reset()
	for i := uint64(1); i <= n; i++ {
		tb.Delete(i * 2654435761)
	}
	s = obs.TakeSnapshot()
	if got := s.Get(obs.CtrDeleteOps); got != n {
		t.Fatalf("delete ops %d, want %d", got, n)
	}
	if tb.Count() != 0 {
		t.Fatalf("table not empty after deletes")
	}
}

// TestObsSerialProbesFeedSameCounters checks the owner-computes serial
// loops hit the same counters (with zero CAS attempts) so sharded and
// flat runs are comparable.
func TestObsSerialProbesFeedSameCounters(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	const n = 1 << 10
	tb := NewShardedTable[SetOps](4*n, 8)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i+1) * 2654435761
	}
	tb.InsertAll(keys)
	s := obs.TakeSnapshot()
	if got := s.Get(obs.CtrInsertOps); got != n {
		t.Fatalf("insert ops %d, want %d", got, n)
	}
	if got := s.Get(obs.CtrInsertCASAttempts); got != 0 {
		t.Fatalf("serial path recorded %d CAS attempts, want 0", got)
	}
	if got := s.Get(obs.CtrShardBulkCalls); got != 1 {
		t.Fatalf("shard bulk calls %d, want 1", got)
	}
	if got := s.Get(obs.CtrShardBulkElems); got != n {
		t.Fatalf("shard bulk elems %d, want %d", got, n)
	}
	if s.MaxShardImbalancePm < 1000 {
		t.Fatalf("imbalance gauge %d pm < 1000 (max run is never below mean)", s.MaxShardImbalancePm)
	}
}

// TestObsSnapshotMergeShardedCompact drives every partition site of
// the sharded compact table's bulk kernels and checks the merged
// obs.Snapshot: one shard-bulk call per kernel, element totals summed
// across calls, and the imbalance gauge merged as a running max — the
// snapshot contract TestObsSerialProbesFeedSameCounters pins for the
// flat sharded table, now over the fingerprint-probed shards (whose
// FindAll gather/scatter path records through its own PartitionIndex
// site rather than partitionByShard).
func TestObsSnapshotMergeShardedCompact(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	const n = 1 << 10
	tb := NewShardedCompactTable[SetOps](4*n, 8)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i+1) * 2654435761
	}
	tb.InsertAll(keys)
	dst := make([]uint64, n)
	if got := tb.FindAll(keys, dst); got != n {
		t.Fatalf("FindAll = %d, want %d", got, n)
	}
	tb.ContainsAll(keys[:n/2])
	tb.DeleteAll(keys[:n/2])
	s := obs.TakeSnapshot()
	if got := s.Get(obs.CtrShardBulkCalls); got != 4 {
		t.Fatalf("shard bulk calls %d, want 4 (insert, find, contains, delete)", got)
	}
	if want := uint64(3 * n); s.Get(obs.CtrShardBulkElems) != want {
		t.Fatalf("shard bulk elems %d, want %d", s.Get(obs.CtrShardBulkElems), want)
	}
	if got := s.Get(obs.CtrShardBulkRuns); got == 0 || got > 4*8 {
		t.Fatalf("shard bulk runs %d, want in (0, 32]", got)
	}
	if s.MaxShardImbalancePm < 1000 {
		t.Fatalf("imbalance gauge %d pm < 1000 (max run is never below mean)", s.MaxShardImbalancePm)
	}
	// A one-element bulk call is maximally skewed (one shard holds
	// everything): the gauge must merge to exactly shards×1000 and stay
	// there — WriteMax keeps the running max across partition sites.
	tb.InsertAll(keys[:1])
	if got := obs.TakeSnapshot().MaxShardImbalancePm; got != 8000 {
		t.Fatalf("gauge after skewed call = %d pm, want 8000", got)
	}
	if got := tb.Count(); got != n/2+1 {
		t.Fatalf("Count = %d, want %d", got, n/2+1)
	}
}

// TestObsGrowCounters checks migration telemetry: growing a table from
// minimum size records grow events and cells moved.
func TestObsGrowCounters(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	const n = 1 << 12
	g := NewGrowTable[SetOps](64)
	for i := uint64(1); i <= n; i++ {
		g.Insert(i * 2654435761)
	}
	g.FinishMigration()
	s := obs.TakeSnapshot()
	if got := s.Get(obs.CtrGrowEvents); got == 0 {
		t.Fatal("no grow events recorded")
	}
	if got := s.Get(obs.CtrGrowCellsMoved); got == 0 {
		t.Fatal("no migrated cells recorded")
	}
	if g.Count() != n {
		t.Fatalf("count %d, want %d", g.Count(), n)
	}
}

// TestPhaseGuardEmitsSpans checks the guard's idle→phase claim and
// last-out exit bracket a timeline span carrying the op count.
func TestPhaseGuardEmitsSpans(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	var g PhaseGuard
	for i := 0; i < 3; i++ {
		if err := g.Enter(PhaseInsert); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		g.Exit(PhaseInsert)
	}
	if err := g.Enter(PhaseRead); err != nil {
		t.Fatal(err)
	}
	g.Exit(PhaseRead)
	s := obs.TakeSnapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(s.Spans), s.Spans)
	}
	if s.Spans[0].Phase != "insert" || s.Spans[0].Ops != 3 {
		t.Fatalf("insert span = %+v", s.Spans[0])
	}
	if s.Spans[1].Phase != "read" || s.Spans[1].Ops != 1 {
		t.Fatalf("read span = %+v", s.Spans[1])
	}
}

// TestPhaseSpansAppearInTrace captures a runtime/trace and asserts the
// guard's spans show up as user tasks named "phase:<name>" — the
// acceptance criterion for `go tool trace` visibility. Task names land
// in the trace's string table, so a substring scan of the raw capture
// is enough without a trace parser.
func TestPhaseSpansAppearInTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.Start(&buf); err != nil {
		t.Skipf("tracing unavailable: %v", err)
	}
	var g PhaseGuard
	if err := g.Enter(PhaseDelete); err != nil {
		t.Fatal(err)
	}
	g.Exit(PhaseDelete)
	trace.Stop()
	if !bytes.Contains(buf.Bytes(), []byte("phase:delete")) {
		t.Fatalf("trace capture (%d bytes) does not contain the phase:delete task name", buf.Len())
	}
}
