package core

import (
	"errors"
	"sort"
	"testing"

	"phasehash/internal/hashx"
	"phasehash/internal/obs"
	"phasehash/internal/parallel"
)

func shardedKeys(n int, seed uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashx.At(seed, i)%uint64(n) + 1
	}
	return keys
}

// TestSerialProbesMatchAtomic pins the owner-computes inner loops to
// the exported atomic operations: the same operation sequence replayed
// through insertSerial / deleteSerial / findSerial must leave a
// byte-identical cell layout and agree on every lookup. This is the
// history-independence substitution the sharded kernels rest on.
func TestSerialProbesMatchAtomic(t *testing.T) {
	const n = 4096
	keys := shardedKeys(n, 3)
	atomicT := NewWordTable[SetOps](4 * n)
	serialT := NewWordTable[SetOps](4 * n)
	for _, k := range keys {
		addedA := atomicT.Insert(k)
		addedS, full, _ := serialT.insertSerial(k)
		if full {
			t.Fatalf("insertSerial(%#x) reported full", k)
		}
		if addedA != addedS {
			t.Fatalf("insertSerial(%#x) added=%v, atomic added=%v", k, addedS, addedA)
		}
	}
	for i, c := range atomicT.Snapshot() {
		if got := serialT.Snapshot()[i]; got != c {
			t.Fatalf("post-insert cell %d: serial %#x, atomic %#x", i, got, c)
		}
	}
	for _, k := range keys[:n/2] {
		eA, okA := atomicT.Find(k)
		eS, okS, _ := serialT.findSerial(k)
		if eA != eS || okA != okS {
			t.Fatalf("findSerial(%#x) = (%#x,%v), atomic (%#x,%v)", k, eS, okS, eA, okA)
		}
	}
	if _, ok, _ := serialT.findSerial(uint64(5 * n)); ok {
		t.Fatal("findSerial found an absent key")
	}
	for i := 0; i < n; i += 3 {
		delA := atomicT.Delete(keys[i])
		delS, _ := serialT.deleteSerial(keys[i])
		if delA != delS {
			t.Fatalf("deleteSerial(%#x) = %v, atomic %v", keys[i], delS, delA)
		}
	}
	snapA, snapS := atomicT.Snapshot(), serialT.Snapshot()
	for i := range snapA {
		if snapA[i] != snapS[i] {
			t.Fatalf("post-delete cell %d: serial %#x, atomic %#x", i, snapS[i], snapA[i])
		}
	}
	if err := serialT.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedBasicOps(t *testing.T) {
	tab := NewShardedTable[SetOps](1024, 8)
	if tab.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", tab.NumShards())
	}
	if tab.Size() != 1024 {
		t.Fatalf("Size = %d, want 1024", tab.Size())
	}
	keys := []uint64{3, 17, 99, 12345, 7}
	for _, k := range keys {
		if !tab.Insert(k) {
			t.Errorf("Insert(%d): want new-element", k)
		}
	}
	if tab.Insert(17) {
		t.Error("duplicate Insert(17) reported growth")
	}
	if got := tab.Count(); got != len(keys) {
		t.Errorf("Count = %d, want %d", got, len(keys))
	}
	for _, k := range keys {
		if e, ok := tab.Find(k); !ok || e != k {
			t.Errorf("Find(%d) = (%d,%v)", k, e, ok)
		}
	}
	if !tab.Delete(99) || tab.Delete(99) {
		t.Error("Delete(99) sequence wrong")
	}
	got := tab.Elements()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []uint64{3, 7, 17, 12345}
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedBulkMatchesPerElement is the core cross-path check: the
// bulk kernels must leave exactly the layout the per-element atomic
// path leaves for the same operation set (detres replays this across
// its schedule grid; this is the fast in-package version).
func TestShardedBulkMatchesPerElement(t *testing.T) {
	const n = 20000
	keys := shardedKeys(n, 11)
	del := make([]uint64, 0, n/3+1)
	for i := 0; i < n; i += 3 {
		del = append(del, keys[i])
	}
	perElem := NewShardedTable[SetOps](4*n, 16)
	bulk := NewShardedTable[SetOps](4*n, 16)

	addedP := 0
	for _, k := range keys {
		if perElem.Insert(k) {
			addedP++
		}
	}
	addedB := bulk.InsertAll(keys)
	if addedP != addedB {
		t.Fatalf("InsertAll added %d, per-element %d", addedB, addedP)
	}
	foundB := bulk.ContainsAll(keys)
	if foundB != n {
		t.Fatalf("ContainsAll = %d, want %d", foundB, n)
	}
	dst := make([]uint64, len(keys))
	if got := bulk.FindAll(keys, dst); got != n {
		t.Fatalf("FindAll = %d, want %d", got, n)
	}
	for i, k := range keys {
		if dst[i] != k {
			t.Fatalf("FindAll dst[%d] = %#x, want %#x", i, dst[i], k)
		}
	}
	delP := 0
	for _, k := range del {
		if perElem.Delete(k) {
			delP++
		}
	}
	delB := bulk.DeleteAll(del)
	if delP != delB {
		t.Fatalf("DeleteAll removed %d, per-element %d", delB, delP)
	}
	snapP, snapB := perElem.Snapshot(), bulk.Snapshot()
	for i := range snapP {
		if snapP[i] != snapB[i] {
			t.Fatalf("quiescent cell %d: bulk %#x, per-element %#x", i, snapB[i], snapP[i])
		}
	}
	elP, elB := perElem.Elements(), bulk.Elements()
	if len(elP) != len(elB) {
		t.Fatalf("Elements length %d vs %d", len(elB), len(elP))
	}
	for i := range elP {
		if elP[i] != elB[i] {
			t.Fatalf("Elements[%d] = %#x vs %#x", i, elB[i], elP[i])
		}
	}
	if err := bulk.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedBulkDeterministicAcrossWorkers asserts the bulk kernels'
// quiescent layout is identical at every worker count.
func TestShardedBulkDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetNumWorkers(parallel.SetNumWorkers(0))
	const n = 30000
	keys := shardedKeys(n, 5)
	var ref []uint64
	for _, workers := range []int{1, 2, 4, 8} {
		parallel.SetNumWorkers(workers)
		tab := NewShardedTable[SetOps](4*n, 16)
		tab.InsertAll(keys)
		tab.DeleteAll(keys[:n/2])
		snap := tab.Snapshot()
		if ref == nil {
			ref = snap
			continue
		}
		for i := range snap {
			if snap[i] != ref[i] {
				t.Fatalf("workers=%d: cell %d = %#x, want %#x", workers, i, snap[i], ref[i])
			}
		}
	}
}

// TestShardedPairMerge checks duplicate-key resolution flows through
// the owner-computes path (PairMinOps: minimum value wins, regardless
// of arrival order within the partitioned run).
func TestShardedPairMerge(t *testing.T) {
	tab := NewShardedTable[PairMinOps](1024, 4)
	elems := []uint64{
		Pair(7, 30), Pair(7, 10), Pair(7, 20),
		Pair(9, 5), Pair(9, 50),
	}
	if added := tab.InsertAll(elems); added != 2 {
		t.Fatalf("InsertAll added %d keys, want 2", added)
	}
	if e, ok := tab.Find(Pair(7, 0)); !ok || PairValue(e) != 10 {
		t.Fatalf("Find(7) = (%#x,%v), want value 10", e, ok)
	}
	if e, ok := tab.Find(Pair(9, 0)); !ok || PairValue(e) != 5 {
		t.Fatalf("Find(9) = (%#x,%v), want value 5", e, ok)
	}
}

func TestShardedTryInsertAllSaturation(t *testing.T) {
	// 2 shards × 8 cells; a shard saturates when its 8 cells fill (the
	// paper's tables must never be completely full, so the 8th insert
	// into one shard errors).
	tab := NewShardedTable[SetOps](16, 2)
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	added, err := tab.TryInsertAll(keys)
	if err == nil {
		t.Fatal("expected ErrFull from oversubscribed sharded table")
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("error %v does not match ErrFull", err)
	}
	if added > 16 || added == 0 {
		t.Fatalf("added %d elements into 16 cells", added)
	}
	// Reserved key: reported, others still attempted.
	tab2 := NewShardedTable[SetOps](64, 2)
	added, err = tab2.TryInsertAll([]uint64{1, Empty, 2})
	if !errors.Is(err, ErrReservedKey) {
		t.Fatalf("error %v does not match ErrReservedKey", err)
	}
	if added != 2 {
		t.Fatalf("added %d, want 2", added)
	}
	if _, err := tab2.TryInsert(Empty); !errors.Is(err, ErrReservedKey) {
		t.Fatal("TryInsert(0) did not report ErrReservedKey")
	}
}

func TestShardedInsertAllPanicsOnReserved(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InsertAll(0) did not panic")
		}
	}()
	// Single worker so the panic unwinds the calling goroutine.
	defer parallel.SetNumWorkers(parallel.SetNumWorkers(1))
	NewShardedTable[SetOps](64, 2).InsertAll([]uint64{Empty})
}

func TestShardedAutoShardCount(t *testing.T) {
	defer parallel.SetNumWorkers(parallel.SetNumWorkers(0))
	parallel.SetNumWorkers(4)
	// Earlier tests in this process may have run skewed bulk kernels,
	// raising the always-on imbalance gauge the auto policy consults;
	// this test pins the zero-gauge (static) policy.
	obs.CoreReset()
	big := NewShardedTable[SetOps](1<<20, 0)
	if got := big.NumShards(); got != 16 {
		t.Fatalf("auto shards at 4 workers = %d, want 16", got)
	}
	// Small tables clamp the count so shards keep >= minShardCells.
	small := NewShardedTable[SetOps](2*minShardCells, 0)
	if got := small.NumShards(); got > 2 {
		t.Fatalf("auto shards for %d cells = %d, want <= 2", 2*minShardCells, got)
	}
	if small.ShardSize() < minShardCells {
		t.Fatalf("shard size %d below minShardCells", small.ShardSize())
	}
	one := NewShardedTable[SetOps](128, 1)
	one.Insert(42)
	if !one.Contains(42) {
		t.Fatal("single-shard table lost its element")
	}
}

func TestShardedElementsInto(t *testing.T) {
	tab := NewShardedTable[SetOps](256, 4)
	keys := []uint64{1, 2, 3, 4, 5, 6, 7}
	tab.InsertAll(keys)
	dst := make([]uint64, len(keys))
	if n := tab.ElementsInto(dst); n != len(keys) {
		t.Fatalf("ElementsInto = %d, want %d", n, len(keys))
	}
	want := tab.Elements()
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("ElementsInto[%d] = %#x, want %#x", i, dst[i], want[i])
		}
	}
}
