package core

import (
	"testing"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

func TestGrowTableSequentialGrowth(t *testing.T) {
	g := NewGrowTable[SetOps](8)
	n := 10000
	for k := uint64(1); k <= uint64(n); k++ {
		g.Insert(k)
	}
	if g.Size() < n {
		t.Fatalf("table did not grow: size %d for %d keys", g.Size(), n)
	}
	if got := g.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	for k := uint64(1); k <= uint64(n); k++ {
		if !g.Contains(k) {
			t.Fatalf("key %d lost during growth", k)
		}
	}
	if err := g.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowTableConcurrentInserts(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		g := NewGrowTable[SetOps](16)
		n := 50000
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = hashx.At(uint64(trial), i)%uint64(n) + 1
		}
		distinct := map[uint64]bool{}
		for _, k := range keys {
			distinct[k] = true
		}
		parallel.ForGrain(n, 1, func(i int) { g.Insert(keys[i]) })
		if got := g.Count(); got != len(distinct) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, got, len(distinct))
		}
		for k := range distinct {
			if !g.Contains(k) {
				t.Fatalf("trial %d: key %d lost", trial, k)
			}
		}
		if err := g.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGrowTableElementsDeterministicAfterDrain(t *testing.T) {
	build := func() []uint64 {
		g := NewGrowTable[SetOps](16)
		parallel.ForGrain(20000, 1, func(i int) {
			g.Insert(hashx.At(3, i)%40000 + 1)
		})
		return g.Elements()
	}
	ref := build()
	for trial := 0; trial < 4; trial++ {
		got := build()
		if len(got) != len(ref) {
			t.Fatalf("length %d vs %d", len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: Elements differ at %d", trial, i)
			}
		}
	}
	// And it matches a fixed-size WordTable's layout for the same keys
	// and final size.
	g := NewGrowTable[SetOps](16)
	parallel.ForGrain(20000, 1, func(i int) { g.Insert(hashx.At(3, i)%40000 + 1) })
	g.FinishMigration()
	w := NewWordTable[SetOps](g.Size())
	parallel.ForGrain(20000, 1, func(i int) { w.Insert(hashx.At(3, i)%40000 + 1) })
	a, b := g.Elements(), w.Elements()
	if len(a) != len(b) {
		t.Fatal("grow table contents differ from fixed table")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grow vs fixed layout differs at %d", i)
		}
	}
}

func TestGrowTableFindDuringMigration(t *testing.T) {
	// Force a state where migration is mid-flight, then run a find
	// phase: every inserted key must be visible in one of the tables.
	g := NewGrowTable[SetOps](8)
	var inserted []uint64
	for k := uint64(1); k <= 2000; k++ {
		g.Insert(k * 7)
		inserted = append(inserted, k*7)
	}
	// Do not call FinishMigration: st.old may be non-nil right now.
	for _, k := range inserted {
		if !g.Contains(k) {
			t.Fatalf("key %d invisible mid-migration", k)
		}
	}
	if g.Contains(3) {
		t.Fatal("absent key found")
	}
}

func TestGrowTableDelete(t *testing.T) {
	g := NewGrowTable[SetOps](8)
	for k := uint64(1); k <= 3000; k++ {
		g.Insert(k)
	}
	// Delete phase (may span both tables mid-migration).
	parallel.ForGrain(1500, 1, func(i int) {
		if !g.Delete(uint64(i)*2 + 2) { // even keys
			t.Errorf("Delete(%d) failed", i*2+2)
		}
	})
	if got := g.Count(); got != 1500 {
		t.Fatalf("Count = %d, want 1500", got)
	}
	for k := uint64(1); k <= 3000; k += 2 {
		if !g.Contains(k) {
			t.Fatalf("odd key %d lost", k)
		}
	}
	if err := g.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertLimited(t *testing.T) {
	// With the identity hash, fill a run of higher-priority keys that
	// all hash to cell 10, and verify the limit trips for a low-priority
	// key without modifying the table.
	tab := NewWordTable[IdentOps](64)
	for k := uint64(2); k <= 11; k++ {
		tab.Insert(k*64 + 10) // all home 10; cells 10..19 occupied
	}
	snap := tab.Snapshot()
	added, ok := tab.InsertLimited(74, 5) // home 10, lowest priority of the cluster
	if ok {
		t.Fatalf("InsertLimited succeeded past limit (added=%v)", added)
	}
	for i, c := range tab.Snapshot() {
		if c != snap[i] {
			t.Fatal("aborted insert modified the table")
		}
	}
	added, ok = tab.InsertLimited(74, 30)
	if !ok || !added {
		t.Fatal("InsertLimited failed within limit")
	}
	if !tab.Contains(74) {
		t.Fatal("key lost")
	}
}
