package core

// ProbeStats summarizes the probe-distance distribution of a word
// table's current layout: how far each element sits from its home cell.
// Because the layout is history-independent, the distribution is a pure
// function of the key set — it characterizes the *table*, not the
// insertion history — and it explains the Figure 5 load-factor curves
// (expected probe distance grows as 1/(1-load)).
type ProbeStats struct {
	Elements  int
	Load      float64
	MaxProbe  int
	MeanProbe float64
	// Histogram[d] counts elements at probe distance d, for d < len.
	Histogram []int
	// Clusters is the number of maximal runs of occupied cells;
	// MaxCluster the longest run.
	Clusters   int
	MaxCluster int
}

// Stats computes the probe statistics (quiescent callers only).
//
//phasehash:serial quiescent use only: probe statistics characterize the settled layout between phases
func (t *WordTable[O]) Stats() ProbeStats {
	const histSize = 64
	st := ProbeStats{Histogram: make([]int, histSize)}
	m := len(t.cells)
	sum := 0
	for j, e := range t.cells {
		if e == Empty {
			continue
		}
		st.Elements++
		d := (j - t.home(e)) & t.mask
		sum += d
		if d > st.MaxProbe {
			st.MaxProbe = d
		}
		if d < histSize {
			st.Histogram[d]++
		}
	}
	st.Load = float64(st.Elements) / float64(m)
	if st.Elements > 0 {
		st.MeanProbe = float64(sum) / float64(st.Elements)
	}
	// Cluster structure: maximal circular runs of occupied cells. Find
	// an empty anchor and scan one lap from there so wraparound runs
	// count once.
	if st.Elements == m {
		st.Clusters = 1
		st.MaxCluster = m
		return st
	}
	anchor := 0
	for t.cells[anchor] != Empty {
		anchor++
	}
	run := 0
	for d := 1; d <= m; d++ {
		j := (anchor + d) & t.mask
		if t.cells[j] != Empty {
			run++
			continue
		}
		if run > 0 {
			st.Clusters++
			if run > st.MaxCluster {
				st.MaxCluster = run
			}
			run = 0
		}
	}
	return st
}
