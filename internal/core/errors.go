package core

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by the tables' TryInsert methods (and
// re-exported by package phasehash). Match with errors.Is: concrete
// returns wrap these with situation detail (size, count, load factor).
var (
	// ErrFull reports that a fixed-capacity table cannot accept the
	// element: the probe sequence swept the whole backing array. The
	// paper's algorithms require the table never to become completely
	// full; callers should size tables for a load factor below ~0.9.
	ErrFull = errors.New("phasehash: table full")

	// ErrNilValue reports an attempt to insert a nil record into a
	// pointer table (nil encodes the empty cell).
	ErrNilValue = errors.New("phasehash: nil element")

	// ErrReservedKey reports an attempt to insert the reserved empty
	// key (0 for word tables; ⊥ in the paper).
	ErrReservedKey = errors.New("phasehash: reserved key")
)

// reservedErr builds the ErrReservedKey report for the reserved empty
// word element, shared by the atomic and serial insert paths.
func reservedErr() error {
	return fmt.Errorf("%w: %#x is the reserved empty element", ErrReservedKey, Empty)
}

// fullTableErr builds the ErrFull report shared by WordTable, PtrTable
// and CompactTable, so the three messages cannot drift apart. cells is
// the backing-array length (a power of two) and also the element
// capacity: a table of m cells stores up to m elements, and the insert
// of a further absent key detects saturation by sweeping the whole
// array. count is the caller's (racy, mid-phase) element snapshot.
func fullTableErr(cells, count int) error {
	return fmt.Errorf("%w: size %d, count %d, load factor %.3f",
		ErrFull, cells, count, float64(count)/float64(cells))
}
