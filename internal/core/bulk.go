package core

import (
	"sync/atomic"

	"phasehash/internal/obs"
	"phasehash/internal/parallel"
)

// This file holds the bulk phase kernels: InsertAll / FindAll /
// DeleteAll / TryInsertAll over element slices. The paper's entire
// evaluation is bulk phase work — "insert n keys, barrier, find n keys"
// — and the per-element API makes that shape pay an indirect closure
// call, a hash computation and a cold home-cell miss for every element.
// The kernels remove all three:
//
//   - the inner loop is a monomorphic method call on the generic table
//     (no func-value or interface dispatch per element);
//   - blocks come from the persistent worker pool (internal/parallel),
//     so a phase costs a handful of channel sends, not goroutine spawns;
//   - probes are software-pipelined: each block works in chunks of
//     stageChunk elements, first hashing the whole chunk and touching
//     every home cell, then probing the chunk against the already
//     in-flight lines. The per-element path eats each home-cell miss
//     inside a serially dependent probe loop.
//
// Determinism is untouched: a kernel performs exactly the operation set
// of the equivalent per-element loop, and the quiescent layout of the
// table depends only on that set (history independence), never on the
// blocking or staging. The detres oracle replays bulk and per-element
// paths against each other across its schedule grid to enforce this.

// stageChunk is the software-pipelining window of the bulk kernels: how
// many elements are hashed — with their home cells touched — before the
// window is probed. The stage pass issues its cache misses back to
// back, so the window bounds the memory-level parallelism offered to
// the core; 64 lines (4KB of cells) is far below L1 capacity, so staged
// lines are still resident when the probe pass reaches them.
const stageChunk = 64

// InsertAll inserts every element of elems (insert phase only) and
// returns how many grew the element count — deterministic for a given
// element multiset, like the count of true Insert results. It panics on
// reserved or overflowing elements exactly as Insert does; use
// TryInsertAll where saturation must degrade gracefully.
func (t *WordTable[O]) InsertAll(elems []uint64) int {
	var added atomic.Int64
	parallel.ForBlocked(len(elems), 0, func(lo, hi int) {
		a, full := t.insertRange(elems, lo, hi)
		if full >= 0 {
			panic("core: WordTable: " + t.fullErr().Error())
		}
		if a != 0 {
			added.Add(int64(a))
		}
	})
	return int(added.Load())
}

// TryInsertAll is InsertAll returning errors instead of panicking: it
// attempts every element (exactly like a per-element TryInsert loop),
// returns the number that grew the count, and reports the error of one
// failed insert when any failed (ErrReservedKey, ErrFull — matchable
// with errors.Is). Which elements land when the table saturates
// mid-phase is schedule-dependent, exactly as for concurrent
// per-element TryInserts; the quiescent layout of whatever landed is
// still history-independent.
func (t *WordTable[O]) TryInsertAll(elems []uint64) (int, error) {
	var added atomic.Int64
	var firstErr atomic.Pointer[error]
	parallel.ForBlocked(len(elems), 0, func(lo, hi int) {
		a := 0
		for i := lo; i < hi; i++ {
			ok, err := t.TryInsert(elems[i])
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				continue
			}
			if ok {
				a++
			}
		}
		if a != 0 {
			added.Add(int64(a))
		}
	})
	if e := firstErr.Load(); e != nil {
		return int(added.Load()), *e
	}
	return int(added.Load()), nil
}

// insertRange is InsertAll's block kernel: chunked two-pass probe loops
// over elems[lo:hi). The stage pass hashes a chunk and touches every
// home cell (the touch is an atomic load, so it cannot race with the
// phase's CASes); the probe pass then runs against warm lines. full
// returns the index of a saturating element, or -1.
//
// The always-on counter core is fed one batched call per block (ops and
// probe steps accumulate in locals), which keeps the per-element cost
// inside the 1% overhead gate budget. Only completed ops are counted:
// on the saturation path the sweeping element's steps are dropped.
func (t *WordTable[O]) insertRange(elems []uint64, lo, hi int) (added, full int) {
	var homes [stageChunk]int
	var coreSteps uint64
	for base := lo; base < hi; base += stageChunk {
		end := base + stageChunk
		if end > hi {
			end = hi
		}
		for i := base; i < end; i++ {
			v := elems[i]
			if v == Empty {
				panic("core: WordTable: cannot insert the reserved empty element")
			}
			h := int(t.ops.Hash(v)) & t.mask
			homes[i-base] = h
			atomic.LoadUint64(&t.cells[h])
		}
		for i := base; i < end; i++ {
			a, f, s := t.insertLoopFrom(elems[i], homes[i-base])
			if f {
				if obs.CoreEnabled {
					obs.CoreInsert(lo>>6, uint64(i-lo), coreSteps)
				}
				return added, i
			}
			coreSteps += uint64(s)
			if a {
				added++
			}
		}
	}
	if obs.CoreEnabled {
		obs.CoreInsert(lo>>6, uint64(hi-lo), coreSteps)
	}
	return added, -1
}

// FindAll looks up every key of keys (find/elements phase only) and
// returns how many are present. When dst is non-nil it must have
// len(dst) >= len(keys); dst[i] receives the stored element for keys[i]
// or Empty when absent. A nil dst counts without writing (ContainsAll).
func (t *WordTable[O]) FindAll(keys []uint64, dst []uint64) int {
	var found atomic.Int64
	parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
		var homes [stageChunk]int
		var coreSteps uint64
		n := 0
		for base := lo; base < hi; base += stageChunk {
			end := base + stageChunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				h := int(t.ops.Hash(keys[i])) & t.mask
				homes[i-base] = h
				atomic.LoadUint64(&t.cells[h])
			}
			for i := base; i < end; i++ {
				e, ok, s := t.findFrom(keys[i], homes[i-base])
				coreSteps += uint64(s)
				if ok {
					n++
				}
				if dst != nil {
					dst[i] = e
				}
			}
		}
		if obs.CoreEnabled {
			obs.CoreFind(lo>>6, uint64(hi-lo), coreSteps, uint64(n))
		}
		if n != 0 {
			found.Add(int64(n))
		}
	})
	return int(found.Load())
}

// ContainsAll reports how many of the keys are present (find/elements
// phase only).
func (t *WordTable[O]) ContainsAll(keys []uint64) int {
	return t.FindAll(keys, nil)
}

// DeleteAll deletes every key of keys (delete phase only) and returns
// how many were removed by this call's deletes — like Delete's result,
// the total over a phase is deterministic while attribution between
// duplicate deletes is not.
func (t *WordTable[O]) DeleteAll(keys []uint64) int {
	var deleted atomic.Int64
	parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
		var homes [stageChunk]int
		var coreSteps uint64
		n := 0
		for base := lo; base < hi; base += stageChunk {
			end := base + stageChunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				h := int(t.ops.Hash(keys[i])) & t.mask
				homes[i-base] = h
				atomic.LoadUint64(&t.cells[h])
			}
			for i := base; i < end; i++ {
				d, s := t.deleteFrom(keys[i], homes[i-base])
				coreSteps += uint64(s)
				if d {
					n++
				}
			}
		}
		if obs.CoreEnabled {
			obs.CoreDelete(lo>>6, uint64(hi-lo), coreSteps)
		}
		if n != 0 {
			deleted.Add(int64(n))
		}
	})
	return int(deleted.Load())
}

// --- PtrTable bulk kernels ---
//
// The pointer table's elements hash through their records (for string
// keys the hash dominates the per-element cost), so the stage pass pays
// off twice: hashes are computed in a tight loop over warm record
// memory and every home cell is in flight before the probe pass.

// InsertAll inserts every record (insert phase only), returning how
// many grew the element count. Panics on nil records or a full table
// exactly as Insert does.
func (t *PtrTable[T, O]) InsertAll(elems []*T) int {
	var added atomic.Int64
	parallel.ForBlocked(len(elems), 0, func(lo, hi int) {
		var homes [stageChunk]int
		a := 0
		for base := lo; base < hi; base += stageChunk {
			end := base + stageChunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				v := elems[i]
				if v == nil {
					panic("core: PtrTable: cannot insert nil")
				}
				h := int(t.ops.Hash(v)) & t.mask
				homes[i-base] = h
				t.cells[h].Load()
			}
			for i := base; i < end; i++ {
				ad, full := t.insertLoopFrom(elems[i], homes[i-base])
				if full {
					panic("core: PtrTable: " + t.fullErr().Error())
				}
				if ad {
					a++
				}
			}
		}
		if a != 0 {
			added.Add(int64(a))
		}
	})
	return int(added.Load())
}

// TryInsertAll is InsertAll returning errors instead of panicking; see
// WordTable.TryInsertAll for the saturation semantics.
func (t *PtrTable[T, O]) TryInsertAll(elems []*T) (int, error) {
	var added atomic.Int64
	var firstErr atomic.Pointer[error]
	parallel.ForBlocked(len(elems), 0, func(lo, hi int) {
		a := 0
		for i := lo; i < hi; i++ {
			ok, err := t.TryInsert(elems[i])
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				continue
			}
			if ok {
				a++
			}
		}
		if a != 0 {
			added.Add(int64(a))
		}
	})
	if e := firstErr.Load(); e != nil {
		return int(added.Load()), *e
	}
	return int(added.Load()), nil
}

// FindAll looks up every probe record (find/elements phase only; only
// key fields need to be populated) and returns how many are present.
// When dst is non-nil it must have len(dst) >= len(probes); dst[i]
// receives the stored record or nil.
func (t *PtrTable[T, O]) FindAll(probes []*T, dst []*T) int {
	var found atomic.Int64
	parallel.ForBlocked(len(probes), 0, func(lo, hi int) {
		var homes [stageChunk]int
		n := 0
		for base := lo; base < hi; base += stageChunk {
			end := base + stageChunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				h := int(t.ops.Hash(probes[i])) & t.mask
				homes[i-base] = h
				t.cells[h].Load()
			}
			for i := base; i < end; i++ {
				e, ok := t.findFrom(probes[i], homes[i-base])
				if ok {
					n++
				}
				if dst != nil {
					dst[i] = e
				}
			}
		}
		if n != 0 {
			found.Add(int64(n))
		}
	})
	return int(found.Load())
}

// DeleteAll deletes every probe's key (delete phase only), returning
// how many were removed by this call's deletes.
func (t *PtrTable[T, O]) DeleteAll(probes []*T) int {
	var deleted atomic.Int64
	parallel.ForBlocked(len(probes), 0, func(lo, hi int) {
		var homes [stageChunk]int
		n := 0
		for base := lo; base < hi; base += stageChunk {
			end := base + stageChunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				h := int(t.ops.Hash(probes[i])) & t.mask
				homes[i-base] = h
				t.cells[h].Load()
			}
			for i := base; i < end; i++ {
				if t.deleteFrom(probes[i], homes[i-base]) {
					n++
				}
			}
		}
		if n != 0 {
			deleted.Add(int64(n))
		}
	})
	return int(deleted.Load())
}

// --- GrowTable bulk kernels ---
//
// The growing table's cells move during a phase (migration), so homes
// cannot be staged against a stable backing array; its kernels are
// monomorphic blocked loops over the per-element operations, which
// still removes the closure dispatch and the per-phase goroutine
// spawns — the costs that dominate the iterative apps.

// InsertAll inserts every element (insert phase only), growing as
// needed, and returns how many grew the targeted table's count (see
// Insert for the mid-migration caveat on attribution). Panics on the
// reserved empty element; use TryInsertAll for an error instead.
func (g *GrowTable[O]) InsertAll(elems []uint64) int {
	n, err := g.TryInsertAll(elems)
	if err != nil {
		panic("core: GrowTable: " + err.Error())
	}
	return n
}

// TryInsertAll is InsertAll returning ErrReservedKey (via errors.Is)
// instead of panicking; every non-reserved element is inserted.
func (g *GrowTable[O]) TryInsertAll(elems []uint64) (int, error) {
	var added atomic.Int64
	var firstErr atomic.Pointer[error]
	parallel.ForBlocked(len(elems), 0, func(lo, hi int) {
		a := 0
		for i := lo; i < hi; i++ {
			ok, err := g.TryInsert(elems[i])
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				continue
			}
			if ok {
				a++
			}
		}
		if a != 0 {
			added.Add(int64(a))
		}
	})
	if e := firstErr.Load(); e != nil {
		return int(added.Load()), *e
	}
	return int(added.Load()), nil
}

// FindAll looks up every key (find/elements phase only), returning how
// many are present; dst as in WordTable.FindAll.
func (g *GrowTable[O]) FindAll(keys []uint64, dst []uint64) int {
	var found atomic.Int64
	parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
		n := 0
		for i := lo; i < hi; i++ {
			e, ok := g.Find(keys[i])
			if ok {
				n++
			}
			if dst != nil {
				dst[i] = e
			}
		}
		if n != 0 {
			found.Add(int64(n))
		}
	})
	return int(found.Load())
}

// ContainsAll reports how many of the keys are present (find/elements
// phase only).
func (g *GrowTable[O]) ContainsAll(keys []uint64) int {
	return g.FindAll(keys, nil)
}

// DeleteAll deletes every key (delete phase only), returning how many
// were removed by this call's deletes.
func (g *GrowTable[O]) DeleteAll(keys []uint64) int {
	var deleted atomic.Int64
	parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
		n := 0
		for i := lo; i < hi; i++ {
			if g.Delete(keys[i]) {
				n++
			}
		}
		if n != 0 {
			deleted.Add(int64(n))
		}
	})
	return int(deleted.Load())
}
