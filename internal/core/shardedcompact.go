package core

import (
	"fmt"

	"phasehash/internal/obs"
	"phasehash/internal/parallel"
	"phasehash/internal/tune"
)

// ShardedCompactTable is ShardedTable over CompactTable shards: the
// radix partition and owner-computes bulk kernels of sharded.go with
// the fingerprint-probed compact layout inside each shard. Unlike
// ShardedTable, the shard radix does NOT read the hash's top bits —
// those are the fingerprint now (hashx.Fingerprint reads [57, 64), the
// most significant digits of the priority key) — but the middle window
// [shardRadixShift, shardRadixShift+8), keeping all three hash
// consumers disjoint: in-shard probe origin (bottom bits), shard radix
// (middle), fingerprint (top). Disjointness keeps the full seven
// fingerprint bits discriminating *within* a shard; a top-bits radix
// would pin the fingerprint's leading bits per shard and cost the
// priority scan exactly that much pruning power. See the
// hashx.FingerprintShift comment for the bit budget.
//
// The two-API contract is ShardedTable's verbatim: per-element
// operations are phase-concurrent on the owning shard's atomic loops,
// while a bulk kernel call must be the only activity on the table.
// Determinism likewise: each shard's quiescent (cells, ctrl) pair is a
// pure function of its element subset, so the concatenated layout is a
// pure function of the element set, capacity and shard count.
type ShardedCompactTable[O Ops] struct {
	ops    O
	shards []*CompactTable[O]
	smask  int // len(shards)-1; shard index = Hash(e) >> shardRadixShift & smask
}

// shardRadixShift is the bit offset of ShardedCompactTable's shard
// radix inside the hash: index = (Hash(e) >> shardRadixShift) & smask.
// The automatic policy's window [40, 48) (maxAutoShards = 2^8) clears
// the fingerprint field at [57, 64) with room for explicit shard
// counts up to 2^17, and sits far above any per-shard home bucket
// (2^40 cells per shard).
const shardRadixShift = 40

// NewShardedCompactTable returns a sharded compact table with capacity
// for at least size elements in total, split over the given number of
// shards (rounded up to a power of two); shards <= 0 selects the
// automatic policy of NewShardedTable (tune.Shards over the always-on
// imbalance gauge; the static 4×-workers policy when the gauge is
// zero). Per-shard capacity semantics are NewCompactTable's (power of
// two, at least 8 cells); the compact layout runs comfortably at
// per-shard load factors up to ~0.9, so ~10% headroom on size absorbs
// the multinomial spread for the shard counts the automatic policy
// picks.
func NewShardedCompactTable[O Ops](size, shards int) *ShardedCompactTable[O] {
	if size < 1 {
		size = 1
	}
	if shards <= 0 {
		shards = tune.Shards(size, parallel.NumWorkers(), obs.CoreMaxShardImbalancePm())
	}
	s := 1
	for s < shards {
		s <<= 1
	}
	per := (size + s - 1) / s
	t := &ShardedCompactTable[O]{shards: make([]*CompactTable[O], s), smask: s - 1}
	for i := range t.shards {
		t.shards[i] = NewCompactTable[O](per)
	}
	return t
}

// shardOf returns the index of the shard owning element e.
func (t *ShardedCompactTable[O]) shardOf(e uint64) int {
	return int(t.ops.Hash(e)>>shardRadixShift) & t.smask
}

// NumShards returns the shard count (a power of two).
func (t *ShardedCompactTable[O]) NumShards() int { return len(t.shards) }

// Size returns the total capacity (cells summed over shards).
func (t *ShardedCompactTable[O]) Size() int { return len(t.shards) * t.shards[0].Size() }

// ShardSize returns the per-shard capacity in cells.
func (t *ShardedCompactTable[O]) ShardSize() int { return t.shards[0].Size() }

// Bytes returns the backing memory summed over shards (9 bytes/slot;
// see CompactTable.Bytes).
func (t *ShardedCompactTable[O]) Bytes() int { return len(t.shards) * t.shards[0].Bytes() }

// --- per-element phase-concurrent operations (atomic path) ---

// Insert adds element v via the owning shard's atomic probe loop
// (insert phase only); semantics as CompactTable.Insert.
func (t *ShardedCompactTable[O]) Insert(v uint64) bool {
	if v == Empty {
		panic("core: ShardedCompactTable: cannot insert the reserved empty element")
	}
	return t.shards[t.shardOf(v)].Insert(v)
}

// TryInsert is Insert returning ErrReservedKey / ErrFull (matchable
// with errors.Is) instead of panicking.
func (t *ShardedCompactTable[O]) TryInsert(v uint64) (bool, error) {
	if v == Empty {
		return false, reservedErr()
	}
	return t.shards[t.shardOf(v)].TryInsert(v)
}

// Find reports the element stored under v's key (find/elements phase
// only); semantics as CompactTable.Find.
func (t *ShardedCompactTable[O]) Find(v uint64) (uint64, bool) {
	return t.shards[t.shardOf(v)].Find(v)
}

// Contains is Find without returning the element.
func (t *ShardedCompactTable[O]) Contains(v uint64) bool {
	_, ok := t.Find(v)
	return ok
}

// Delete removes the element with v's key (delete phase only);
// semantics as CompactTable.Delete.
func (t *ShardedCompactTable[O]) Delete(v uint64) bool {
	return t.shards[t.shardOf(v)].Delete(v)
}

// --- owner-computes bulk kernels ---

// partitionByShard radix-partitions elems into a fresh scratch slice
// grouped by owning shard, returning the scratch and the shard run
// offsets.
func (t *ShardedCompactTable[O]) partitionByShard(elems []uint64) ([]uint64, []int) {
	scratch := make([]uint64, len(elems))
	offsets := parallel.Partition(scratch, elems, len(t.shards), func(i int) int {
		return t.shardOf(elems[i])
	})
	if obs.Enabled {
		obs.RecordShardBulk(offsets)
	}
	if obs.CoreEnabled {
		obs.CoreShardBulk(offsets)
	}
	return scratch, offsets
}

// InsertAll inserts every element of elems with the owner-computes
// kernel (insert phase; must not overlap ANY other operation on the
// table); semantics as ShardedTable.InsertAll.
func (t *ShardedCompactTable[O]) InsertAll(elems []uint64) int {
	if len(elems) == 0 {
		return 0
	}
	scratch, offsets := t.partitionByShard(elems)
	added := make([]int, len(t.shards))
	parallel.ForGrain(len(t.shards), 1, func(s int) {
		sh := t.shards[s]
		a, full := sh.insertRangeSerial(scratch[offsets[s]:offsets[s+1]])
		if full >= 0 {
			panic(fmt.Sprintf("core: ShardedCompactTable: shard %d: %v", s, sh.fullErr()))
		}
		added[s] = a
	})
	total := 0
	for _, a := range added {
		total += a
	}
	return total
}

// TryInsertAll is InsertAll returning errors instead of panicking; it
// attempts every element and reports the error of the lowest-numbered
// failing shard, as ShardedTable.TryInsertAll.
func (t *ShardedCompactTable[O]) TryInsertAll(elems []uint64) (int, error) {
	if len(elems) == 0 {
		return 0, nil
	}
	scratch, offsets := t.partitionByShard(elems)
	added := make([]int, len(t.shards))
	errs := make([]error, len(t.shards))
	parallel.ForGrain(len(t.shards), 1, func(s int) {
		added[s], errs[s] = t.shards[s].tryInsertRangeSerial(scratch[offsets[s]:offsets[s+1]])
	})
	total := 0
	var firstErr error
	for s := range added {
		total += added[s]
		if firstErr == nil && errs[s] != nil {
			firstErr = errs[s]
		}
	}
	return total, firstErr
}

// FindAll looks up every key of keys with the owner-computes kernel
// (find/elements phase; must not overlap any other operation); dst as
// in ShardedTable.FindAll.
func (t *ShardedCompactTable[O]) FindAll(keys []uint64, dst []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	found := make([]int, len(t.shards))
	if dst == nil {
		scratch, offsets := t.partitionByShard(keys)
		parallel.ForGrain(len(t.shards), 1, func(s int) {
			found[s] = t.shards[s].findRangeSerial(scratch[offsets[s]:offsets[s+1]], nil)
		})
	} else {
		// Results must land in the caller's per-key slots; partition the
		// index sequence and gather/scatter through the stable
		// permutation, as ShardedTable.FindAll.
		perm, offsets := parallel.PartitionIndex(len(keys), len(t.shards), func(i int) int {
			return t.shardOf(keys[i])
		})
		if obs.Enabled {
			obs.RecordShardBulk(offsets)
		}
		if obs.CoreEnabled {
			obs.CoreShardBulk(offsets)
		}
		parallel.ForGrain(len(t.shards), 1, func(s int) {
			sh := t.shards[s]
			n := 0
			for _, i := range perm[offsets[s]:offsets[s+1]] {
				e, ok := sh.findSerial(keys[i])
				if ok {
					n++
				}
				dst[i] = e
			}
			found[s] = n
		})
	}
	total := 0
	for _, n := range found {
		total += n
	}
	return total
}

// ContainsAll reports how many of the keys are present (find/elements
// phase; must not overlap any other operation).
func (t *ShardedCompactTable[O]) ContainsAll(keys []uint64) int {
	return t.FindAll(keys, nil)
}

// DeleteAll deletes every key of keys with the owner-computes kernel
// (delete phase; must not overlap any other operation), returning how
// many were removed — deterministic for a given key multiset.
func (t *ShardedCompactTable[O]) DeleteAll(keys []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	scratch, offsets := t.partitionByShard(keys)
	deleted := make([]int, len(t.shards))
	parallel.ForGrain(len(t.shards), 1, func(s int) {
		deleted[s] = t.shards[s].deleteRangeSerial(scratch[offsets[s]:offsets[s+1]])
	})
	total := 0
	for _, n := range deleted {
		total += n
	}
	return total
}

// --- quiescent observations ---

// Count returns the number of stored elements (find/elements phase
// only): the sum of the shard counts.
func (t *ShardedCompactTable[O]) Count() int {
	n := 0
	for _, sh := range t.shards {
		n += sh.Count()
	}
	return n
}

// ShardStats computes the per-shard element counts and their spread
// (find/elements phase only); see ShardedTable.ShardStats.
func (t *ShardedCompactTable[O]) ShardStats() ShardStats {
	st := ShardStats{Shards: len(t.shards), Counts: make([]int, len(t.shards))}
	for s, sh := range t.shards {
		c := sh.Count()
		st.Counts[s] = c
		st.Total += c
		if s == 0 || c < st.Min {
			st.Min = c
		}
		if c > st.Max {
			st.Max = c
		}
	}
	return st
}

// Elements packs the stored elements into a fresh slice in shard order,
// each shard in its deterministic table order (find/elements phase
// only); identical across runs, schedules and worker counts for a
// given element set, capacity and shard count.
func (t *ShardedCompactTable[O]) Elements() []uint64 {
	counts := make([]int, len(t.shards))
	for s, sh := range t.shards {
		counts[s] = sh.Count()
	}
	offsets := make([]int, len(t.shards)+1)
	for s, c := range counts {
		offsets[s+1] = offsets[s] + c
	}
	out := make([]uint64, offsets[len(t.shards)])
	parallel.ForGrain(len(t.shards), 1, func(s int) {
		t.shards[s].ElementsInto(out[offsets[s]:offsets[s+1]])
	})
	return out
}

// ElementsInto is Elements packing into dst, which must have len(dst)
// >= Count(); it returns the number packed.
func (t *ShardedCompactTable[O]) ElementsInto(dst []uint64) int {
	n := 0
	for _, sh := range t.shards {
		n += sh.ElementsInto(dst[n:])
	}
	return n
}

// ForEach calls fn for every stored element in shard-then-table order
// (sequential; find/elements phase only).
func (t *ShardedCompactTable[O]) ForEach(fn func(e uint64)) {
	for _, sh := range t.shards {
		sh.ForEach(fn)
	}
}

// Clear resets every shard's cells and ctrl bytes (a phase barrier by
// itself; quiescent use only).
func (t *ShardedCompactTable[O]) Clear() {
	for _, sh := range t.shards {
		sh.Clear()
	}
}

// Snapshot concatenates the raw shard cell arrays (quiescent use only).
func (t *ShardedCompactTable[O]) Snapshot() []uint64 {
	out := make([]uint64, 0, t.Size())
	for _, sh := range t.shards {
		out = append(out, sh.Snapshot()...)
	}
	return out
}

// CtrlSnapshot concatenates the raw shard control words (quiescent use
// only); together with Snapshot it is the byte layout the detres
// oracle compares across schedules.
func (t *ShardedCompactTable[O]) CtrlSnapshot() []uint64 {
	out := make([]uint64, 0, t.Size()/8)
	for _, sh := range t.shards {
		out = append(out, sh.CtrlSnapshot()...)
	}
	return out
}

// CheckInvariant verifies each shard's ordering and ctrl invariants and
// that every element lives in its owning shard (quiescent use only).
func (t *ShardedCompactTable[O]) CheckInvariant() error {
	for s, sh := range t.shards {
		if err := sh.CheckInvariant(); err != nil {
			return err
		}
		var bad error
		sh.ForEach(func(e uint64) {
			if bad == nil && t.shardOf(e) != s {
				bad = fmt.Errorf("core: ShardedCompactTable: element %#x stored in shard %d, owned by shard %d",
					e, s, t.shardOf(e))
			}
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}
