// Package core implements the paper's primary contribution: the
// deterministic phase-concurrent hash table of Shun and Blelloch
// ("Phase-Concurrent Hash Tables for Determinism", SPAA 2014),
// linearHash-D in the paper's terminology.
//
// The table is an open-addressing linear-probing table with a *priority*
// ordering: along every probe sequence, priorities are non-increasing
// (the "ordering invariant", Definition 2 of the paper). Insertions swap
// higher-priority keys into place and carry the displaced key forward;
// deletions pull the correct replacement back instead of writing
// tombstones. Because the layout depends only on the *set* of keys
// (history-independence, after Blelloch & Golovin, FOCS 2007), the
// quiescent state of the table — and therefore the output of Elements()
// — is deterministic: independent of thread scheduling and of the order
// in which concurrent operations are applied.
//
// The table is phase-concurrent, not fully concurrent. With operations
// O = {insert, delete, find, elements}, the legal concurrent subsets are
//
//	S = { {insert}, {delete}, {find, elements} }
//
// Operations from different subsets must be separated by a happens-before
// edge (any barrier: WaitGroup, channel sync, parallel-loop boundary).
// Mixing phases is a program error; the optional PhaseGuard (see
// phase.go) detects it at runtime in debug builds.
//
// Two element layouts are provided:
//
//   - WordTable: elements are single 64-bit words (a bare key, or a
//     32-bit key packed with a 32-bit value), CASed directly. This is the
//     fast path and corresponds to the paper's integer experiments. The
//     paper's 40-core machine CASes 64-bit words; so do we.
//   - PtrTable: elements are pointers to arbitrary records (e.g. string
//     keys with values), CASed via atomic.Pointer. This is the paper's
//     "store a pointer to the structure" fallback for elements wider
//     than a CAS, used for the trigramSeq-pairInt experiments.
//
// Element semantics (hashing, priority order, duplicate-key resolution)
// are supplied by an Ops implementation; the standard ones live in
// ops.go. All tables in internal/tables share the same Ops so that
// cross-table benchmarks compare probe policies, not hash functions.
package core
