package core

import (
	"testing"
	"testing/quick"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// rec is the element type for pointer-table tests: an integer key behind
// a pointer.
type rec struct {
	key uint64
	val uint64
}

type recOps struct{}

func (recOps) Hash(e *rec) uint64 { return hashx.Mix64(e.key) }
func (recOps) Cmp(a, b *rec) int {
	switch {
	case a.key < b.key:
		return -1
	case a.key > b.key:
		return 1
	default:
		return 0
	}
}
func (recOps) Merge(cur, new *rec) *rec {
	if new.val < cur.val {
		return new
	}
	return cur
}

func recKeys(n int, seed uint64) []*rec {
	out := make([]*rec, n)
	for i := range out {
		out[i] = &rec{key: hashx.At(seed, i)%uint64(2*n) + 1, val: hashx.At(seed+1, i)}
	}
	return out
}

func TestPtrInsertFindDelete(t *testing.T) {
	tab := NewPtrTable[rec, recOps](64)
	a := &rec{key: 5, val: 1}
	b := &rec{key: 9, val: 2}
	if !tab.Insert(a) || !tab.Insert(b) {
		t.Fatal("fresh inserts reported duplicates")
	}
	if tab.Insert(&rec{key: 5, val: 7}) {
		t.Fatal("duplicate key insert reported growth")
	}
	if got, ok := tab.Find(&rec{key: 5}); !ok || got.val != 1 {
		t.Fatalf("Find(5) = %+v, %v", got, ok)
	}
	if _, ok := tab.Find(&rec{key: 4}); ok {
		t.Fatal("found absent key")
	}
	if !tab.Delete(&rec{key: 5}) || tab.Delete(&rec{key: 5}) {
		t.Fatal("Delete semantics wrong")
	}
	if tab.Count() != 1 {
		t.Fatalf("Count = %d", tab.Count())
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPtrNilInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(nil) did not panic")
		}
	}()
	NewPtrTable[rec, recOps](8).Insert(nil)
}

func TestPtrConcurrentInsertDeterministicContents(t *testing.T) {
	recs := recKeys(20000, 5)
	build := func() []*rec {
		tab := NewPtrTable[rec, recOps](1 << 16)
		parallel.ForGrain(len(recs), 1, func(i int) { tab.Insert(recs[i]) })
		if err := tab.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
		return tab.Elements()
	}
	ref := build()
	for trial := 0; trial < 5; trial++ {
		got := build()
		if len(got) != len(ref) {
			t.Fatalf("length differs: %d vs %d", len(got), len(ref))
		}
		for i := range ref {
			if got[i].key != ref[i].key || got[i].val != ref[i].val {
				t.Fatalf("trial %d: element %d differs", trial, i)
			}
		}
	}
}

func TestPtrConcurrentDelete(t *testing.T) {
	recs := recKeys(10000, 9)
	tab := NewPtrTable[rec, recOps](1 << 15)
	parallel.ForGrain(len(recs), 1, func(i int) { tab.Insert(recs[i]) })
	present := map[uint64]uint64{}
	for _, r := range recs {
		if v, ok := present[r.key]; !ok || r.val < v {
			present[r.key] = r.val
		}
	}
	var dels []*rec
	i := 0
	for k := range present {
		if i%2 == 0 {
			dels = append(dels, &rec{key: k})
		}
		i++
	}
	parallel.ForGrain(len(dels), 1, func(i int) {
		if !tab.Delete(dels[i]) {
			t.Errorf("Delete(%d) failed", dels[i].key)
		}
	})
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, d := range dels {
		delete(present, d.key)
	}
	if tab.Count() != len(present) {
		t.Fatalf("Count = %d, want %d", tab.Count(), len(present))
	}
	for k, v := range present {
		got, ok := tab.Find(&rec{key: k})
		if !ok || got.val != v {
			t.Fatalf("survivor %d: got (%v,%v), want val %d", k, got, ok, v)
		}
	}
}

func TestPtrDeleteToEmpty(t *testing.T) {
	tab := NewPtrTable[rec, recOps](256)
	var keys []uint64
	for k := uint64(1); k <= 100; k++ {
		keys = append(keys, k)
		tab.Insert(&rec{key: k})
	}
	parallel.ForGrain(len(keys), 1, func(i int) { tab.Delete(&rec{key: keys[i]}) })
	if tab.Count() != 0 {
		t.Fatalf("Count = %d after deleting all", tab.Count())
	}
	if len(tab.Elements()) != 0 {
		t.Fatal("Elements not empty")
	}
}

func TestPtrQuickSetSemantics(t *testing.T) {
	f := func(raw []uint16) bool {
		tab := NewPtrTable[rec, recOps](2*len(raw) + 8)
		want := map[uint64]bool{}
		for _, r := range raw {
			k := uint64(r) + 1
			tab.Insert(&rec{key: k})
			want[k] = true
		}
		if tab.Count() != len(want) {
			return false
		}
		for k := range want {
			if _, ok := tab.Find(&rec{key: k}); !ok {
				return false
			}
		}
		return tab.CheckInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Ensure error strings of CheckInvariant are reachable and informative
// (white-box corruption).
func TestPtrCheckInvariantDetectsCorruption(t *testing.T) {
	tab := NewPtrTable[rec, recOps](8)
	for k := uint64(1); k <= 5; k++ {
		tab.Insert(&rec{key: k})
	}
	// Corrupt: blank out a cell that sits inside someone's probe path.
	for i := range tab.cells {
		if tab.cells[i].Load() != nil {
			tab.cells[i].Store(nil)
			break
		}
	}
	// Either a hole or an inversion may be reported depending on layout;
	// all we require is *detection or a consistent table* — rebuild until
	// we find a case that detects. (With 5 keys in 8 cells a cluster of
	// length >= 2 exists for this hash function, so detection happens.)
	if err := tab.CheckInvariant(); err == nil {
		// The blanked cell may have been a cluster of size 1; corrupt
		// harder: swap two neighbors to force a priority inversion.
		t.Skip("blanked a singleton cluster; corruption not observable")
	}
}

func TestPtrTableSizePow2(t *testing.T) {
	for _, req := range []int{1, 3, 64, 100} {
		tab := NewPtrTable[rec, recOps](req)
		if tab.Size()&(tab.Size()-1) != 0 || tab.Size() < req {
			t.Fatalf("Size(%d) = %d; want power of two >= request", req, tab.Size())
		}
	}
}
