package core

import (
	"runtime"
	"testing"

	"phasehash/internal/parallel"
)

// Before/after benchmarks for the bulk phase kernels: each pair runs
// the identical operation phase (randomSeq-int keys, load ~1/4) once
// through the per-element pattern — parallel.ForBlocked dispatching a
// closure per element — and once through the bulk kernel. The pairs are
// the numbers quoted in EXPERIMENTS.md ("Bulk phase kernels") and the
// `make benchbase` baseline (BENCH_core.json); run with
// -cpu 1,N to get both worker counts.

const bulkBenchN = 1 << 20

func bulkBenchKeys() []uint64 {
	keys := make([]uint64, bulkBenchN)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	return keys
}

// withBenchWorkers pins the library worker count to the benchmark's
// -cpu value for the duration of one benchmark function.
func withBenchWorkers(b *testing.B, f func()) {
	old := parallel.SetNumWorkers(runtime.GOMAXPROCS(0))
	defer parallel.SetNumWorkers(old)
	f()
}

func BenchmarkInsertPerElement(b *testing.B) {
	keys := bulkBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t := NewWordTable[SetOps](4 * bulkBenchN)
			parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					t.Insert(keys[j])
				}
			})
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "insert")
}

func BenchmarkInsertAll(b *testing.B) {
	keys := bulkBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t := NewWordTable[SetOps](4 * bulkBenchN)
			t.InsertAll(keys)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "insert")
}

func BenchmarkFindPerElement(b *testing.B) {
	keys := bulkBenchKeys()
	t := NewWordTable[SetOps](4 * bulkBenchN)
	t.InsertAll(keys)
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					t.Find(keys[j])
				}
			})
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "find")
}

func BenchmarkFindAll(b *testing.B) {
	keys := bulkBenchKeys()
	t := NewWordTable[SetOps](4 * bulkBenchN)
	t.InsertAll(keys)
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			t.FindAll(keys, nil)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "find")
}

func BenchmarkDeletePerElement(b *testing.B) {
	keys := bulkBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := NewWordTable[SetOps](4 * bulkBenchN)
			t.InsertAll(keys)
			b.StartTimer()
			parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					t.Delete(keys[j])
				}
			})
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "delete")
}

func BenchmarkDeleteAll(b *testing.B) {
	keys := bulkBenchKeys()
	withBenchWorkers(b, func() {
		b.ResetTimer()
		benchObsReset()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := NewWordTable[SetOps](4 * bulkBenchN)
			t.InsertAll(keys)
			b.StartTimer()
			t.DeleteAll(keys)
		}
	})
	b.ReportMetric(float64(bulkBenchN), "elems/op")
	b.ReportMetric(float64(8*4*bulkBenchN)/float64(bulkBenchN), "bytes/elem")
	benchObsReport(b, "delete")
}
