package core

import (
	"errors"
	"strings"
	"testing"

	"phasehash/internal/parallel"
)

func TestCompactInsertFindBasic(t *testing.T) {
	tab := NewCompactTable[SetOps](16)
	for _, k := range []uint64{1, 2, 3, 100, 200} {
		if !tab.Insert(k) {
			t.Errorf("Insert(%d) reported duplicate on first insert", k)
		}
	}
	if tab.Insert(100) {
		t.Error("duplicate Insert(100) reported as new")
	}
	for _, k := range []uint64{1, 2, 3, 100, 200} {
		if !tab.Contains(k) {
			t.Errorf("Contains(%d) = false, want true", k)
		}
	}
	for _, k := range []uint64{4, 99, 201} {
		if tab.Contains(k) {
			t.Errorf("Contains(%d) = true, want false", k)
		}
	}
	if got := tab.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestCompactMinimumCells(t *testing.T) {
	for _, size := range []int{-3, 0, 1, 7, 8} {
		if got := NewCompactTable[SetOps](size).Size(); got != 8 {
			t.Errorf("NewCompactTable(%d).Size() = %d, want 8", size, got)
		}
	}
	if got := NewCompactTable[SetOps](9).Size(); got != 16 {
		t.Errorf("NewCompactTable(9).Size() = %d, want 16", got)
	}
}

func TestCompactInsertEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert(Empty) did not panic")
		}
	}()
	NewCompactTable[SetOps](8).Insert(Empty)
}

func TestCompactTryInsertFull(t *testing.T) {
	tab := NewCompactTable[SetOps](8)
	for k := uint64(1); k <= 8; k++ {
		if added, err := tab.TryInsert(k); err != nil || !added {
			t.Fatalf("TryInsert(%d) = %v, %v", k, added, err)
		}
	}
	// A saturated table answers finds correctly: no empty ctrl byte ever
	// ends the probe, so hits and misses go through the full-sweep path.
	for k := uint64(1); k <= 8; k++ {
		if !tab.Contains(k) {
			t.Fatalf("Contains(%d) = false on full table", k)
		}
	}
	if tab.Contains(100) {
		t.Fatal("Contains(100) = true on full table")
	}
	added, err := tab.TryInsert(100)
	if added || !errors.Is(err, ErrFull) {
		t.Fatalf("TryInsert on full table = %v, %v; want false, ErrFull", added, err)
	}
	// The message is the shared fullTableErr format, aligned with
	// WordTable's and PtrTable's.
	for _, want := range []string{"size 8", "count 8", "load factor 1.000"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("ErrFull %q missing %q", err, want)
		}
	}
	if _, err := tab.TryInsert(Empty); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("TryInsert(Empty) err = %v, want ErrReservedKey", err)
	}
	// As with WordTable, the failed absent-key insert may displace
	// elements (dropping the lowest-priority one off the probe chain's
	// end — under the hash-keyed order that can be any of the keys), so
	// only the aggregate count and the ctrl/cells correspondence are
	// pinned here; the duplicate-merge check uses a key that survived.
	surv := tab.Elements()[0]
	if added, err := tab.TryInsert(surv); added || err != nil {
		t.Fatalf("duplicate TryInsert(%d) on full table = %v, %v", surv, added, err)
	}
	if n := tab.Count(); n != 8 {
		t.Fatalf("Count = %d after failed insert", n)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactLoadFactor090 is the dedicated exact-0.9 stress: distinct
// keys filling 90% of the cells, driven through the bulk kernels, with
// hit and miss verification and a half-delete round.
func TestCompactLoadFactor090(t *testing.T) {
	const m = 1 << 13
	n := m * 9 / 10
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) + 1
	}
	prev := parallel.SetNumWorkers(4)
	defer parallel.SetNumWorkers(prev)

	tab := NewCompactTable[SetOps](m)
	if added := tab.InsertAll(keys); added != n {
		t.Fatalf("InsertAll added %d, want %d", added, n)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, n)
	if found := tab.FindAll(keys, dst); found != n {
		t.Fatalf("FindAll found %d of %d at load 0.9", found, n)
	}
	for i, e := range dst {
		if e != keys[i] {
			t.Fatalf("FindAll dst[%d] = %#x, want %#x", i, e, keys[i])
		}
	}
	misses := make([]uint64, n)
	for i := range misses {
		misses[i] = uint64(n + i + 1)
	}
	if found := tab.ContainsAll(misses); found != 0 {
		t.Fatalf("ContainsAll reported %d hits for absent keys", found)
	}
	if deleted := tab.DeleteAll(keys[:n/2]); deleted != n/2 {
		t.Fatalf("DeleteAll removed %d, want %d", deleted, n/2)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// History independence: the survivors' layout matches a fresh serial
	// one-at-a-time rebuild byte-for-byte, cells and ctrl — whatever the
	// bulk insert and half-delete schedules did in between.
	ref := NewCompactTable[SetOps](m)
	for _, k := range keys[n/2:] {
		ref.insertSerial(k)
	}
	refCells, gotCells := ref.Snapshot(), tab.Snapshot()
	for i := range refCells {
		if gotCells[i] != refCells[i] {
			t.Fatalf("cell %d = %#x after deletes, serial-rebuild reference %#x", i, gotCells[i], refCells[i])
		}
	}
	refCtrl, gotCtrl := ref.CtrlSnapshot(), tab.CtrlSnapshot()
	for i := range refCtrl {
		if gotCtrl[i] != refCtrl[i] {
			t.Fatalf("ctrl word %d = %#x after deletes, serial-rebuild reference %#x", i, gotCtrl[i], refCtrl[i])
		}
	}
}

// TestCompactAdversarialCluster forces one wrapped cluster with the
// identity hash (all fingerprints collide on 0x80, since small identity
// hashes have zero top bits — and the hash-keyed priority degenerates
// to the numeric key order), so every find walks tie-byte candidate
// lanes through the wraparound instead of priority-exiting early.
func TestCompactAdversarialCluster(t *testing.T) {
	tab := NewCompactTable[IdentOps](8)
	keys := []uint64{6, 14, 22, 30, 38} // all ≡ 6 mod 8: cluster wraps 6,7,0,1,...
	for _, k := range keys {
		tab.Insert(k)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !tab.Contains(k) {
			t.Fatalf("key %d missing in wrapped cluster", k)
		}
	}
	if tab.cells[6] != 38 {
		t.Errorf("cell 6 = %d, want 38 (highest priority first)", tab.cells[6])
	}
	if tab.Contains(46) { // same home, absent
		t.Error("absent key 46 reported present in wrapped cluster")
	}
	if !tab.Delete(38) {
		t.Fatal("Delete(38) failed")
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{6, 14, 22, 30} {
		if !tab.Contains(k) {
			t.Fatalf("key %d lost after deleting cluster head", k)
		}
	}
	if !tab.Delete(22) {
		t.Fatal("Delete(22) failed")
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if tab.Contains(22) {
		t.Error("22 still present")
	}
	if got := tab.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
}

// TestCompactClearResetsCtrl checks Clear wipes both arrays (a stale
// ctrl byte after Clear would make later finds hallucinate matches).
func TestCompactClearResetsCtrl(t *testing.T) {
	tab := NewCompactTable[SetOps](64)
	for k := uint64(1); k <= 40; k++ {
		tab.Insert(k)
	}
	tab.Clear()
	if got := tab.Count(); got != 0 {
		t.Fatalf("Count = %d after Clear", got)
	}
	for _, w := range tab.CtrlSnapshot() {
		if w != 0 {
			t.Fatalf("ctrl word %#x nonzero after Clear", w)
		}
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// The table is fully reusable.
	for k := uint64(100); k < 140; k++ {
		tab.Insert(k)
	}
	if got := tab.Count(); got != 40 {
		t.Fatalf("Count = %d after reuse", got)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedCompactBasic(t *testing.T) {
	tab := NewShardedCompactTable[SetOps](1<<14, 8)
	if tab.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", tab.NumShards())
	}
	keys := randKeys(5000, 31)
	model := map[uint64]bool{}
	for _, k := range keys {
		model[k] = true
	}
	if added := tab.InsertAll(keys); added != len(model) {
		t.Fatalf("InsertAll added %d, want %d distinct", added, len(model))
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, len(keys))
	if found := tab.FindAll(keys, dst); found != len(keys) {
		t.Fatalf("FindAll found %d of %d", found, len(keys))
	}
	for i, e := range dst {
		if e != keys[i] {
			t.Fatalf("FindAll dst[%d] = %#x, want %#x", i, e, keys[i])
		}
	}
	// Per-element path agrees with the bulk build: a sharded compact
	// table built per-element must be byte-identical, ctrl included.
	ref := NewShardedCompactTable[SetOps](1<<14, 8)
	for _, k := range keys {
		ref.Insert(k)
	}
	a, b := tab.Snapshot(), ref.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs between bulk and per-element build", i)
		}
	}
	ac, bc := tab.CtrlSnapshot(), ref.CtrlSnapshot()
	for i := range ac {
		if ac[i] != bc[i] {
			t.Fatalf("ctrl word %d differs between bulk and per-element build", i)
		}
	}
	st := tab.ShardStats()
	if st.Total != len(model) {
		t.Fatalf("ShardStats.Total = %d, want %d", st.Total, len(model))
	}
	if deleted := tab.DeleteAll(keys); deleted != len(model) {
		t.Fatalf("DeleteAll removed %d, want %d", deleted, len(model))
	}
	if got := tab.Count(); got != 0 {
		t.Fatalf("Count = %d after deleting everything", got)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactBytes pins the 9-bytes-per-slot memory accounting the
// benchmarks' bytes/elem metric divides from.
func TestCompactBytes(t *testing.T) {
	if got := NewCompactTable[SetOps](1 << 10).Bytes(); got != (1<<10)*9 {
		t.Fatalf("CompactTable(1024).Bytes() = %d, want %d", got, (1<<10)*9)
	}
	if got := NewShardedCompactTable[SetOps](1<<12, 4).Bytes(); got != (1<<12)*9 {
		t.Fatalf("ShardedCompactTable(4096, 4).Bytes() = %d, want %d", got, (1<<12)*9)
	}
}
