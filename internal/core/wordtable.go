package core

import (
	"fmt"
	"sync/atomic"

	"phasehash/internal/chaos"
	"phasehash/internal/obs"
	"phasehash/internal/parallel"
)

// WordTable is the deterministic phase-concurrent hash table
// (linearHash-D) over single-word elements. See the package comment for
// the phase-concurrency contract. The zero value is not usable; construct
// with NewWordTable.
//
// All three per-element operations are lock-free and non-blocking; the
// paper proves termination bounds of O(p^2·m) CAS attempts for p
// concurrent inserts and O(p·m^3) steps for p concurrent deletes on a
// table of m cells.
type WordTable[O Ops] struct {
	ops   O
	cells []uint64
	mask  int // len(cells)-1; len is a power of two
}

// NewWordTable returns a table whose backing array is the next power of
// two m >= size. A table of m cells stores up to m distinct keys;
// inserting a further absent key into a completely full table fails
// with ErrFull (Insert panics, TryInsert returns it), detected by the
// probe sweeping the whole array. The paper assumes the table never
// becomes completely full: a full table still answers correctly, but
// absent-key probes degrade to O(m) sweeps, so size with headroom (the
// paper's experiments run at load factors <= ~0.9). PtrTable and
// CompactTable share these capacity semantics and the ErrFull message.
func NewWordTable[O Ops](size int) *WordTable[O] {
	if size < 1 {
		size = 1
	}
	m := 1
	for m < size {
		m <<= 1
	}
	return &WordTable[O]{cells: make([]uint64, m), mask: m - 1}
}

// Size returns the capacity (number of cells) of the table.
func (t *WordTable[O]) Size() int { return len(t.cells) }

// Bytes returns the backing-array footprint: 8 bytes per cell.
func (t *WordTable[O]) Bytes() int { return len(t.cells) * 8 }

// load atomically reads the cell at unnormalized position p.
func (t *WordTable[O]) load(p int) uint64 {
	return atomic.LoadUint64(&t.cells[p&t.mask])
}

// cas CASes the cell at unnormalized position p.
func (t *WordTable[O]) cas(p int, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[p&t.mask], old, new)
}

// lift maps the hash h (in [0, m)) of the element stored at unnormalized
// position p to the same unnormalized frame: the unique q <= p with
// q ≡ h (mod m) and p-q < m. Probe positions in Delete grow without
// wrapping, so position comparisons ("does this element hash at or before
// that cell?") become plain integer comparisons after lifting.
func (t *WordTable[O]) lift(h uint64, p int) int {
	return p - ((p - int(h)) & t.mask)
}

// home returns the (normalized) probe origin of element e.
func (t *WordTable[O]) home(e uint64) int {
	return int(t.ops.Hash(e)) & t.mask
}

// Insert adds element v to the table (insert phase only). If an element
// with equal key is already present the two are resolved with Ops.Merge
// and the table size does not change. It reports whether the table's
// element count grew by one; the *count* of true results over a phase is
// deterministic, though which duplicate insert reports true is not.
//
// Insert panics on the reserved empty element and on a full table; use
// TryInsert where saturation must degrade gracefully instead of crash.
func (t *WordTable[O]) Insert(v uint64) bool {
	if v == Empty {
		panic("core: WordTable: cannot insert the reserved empty element")
	}
	added, full := t.insertLoop(v)
	if full {
		panic("core: WordTable: " + t.fullErr().Error())
	}
	return added
}

// TryInsert is Insert returning errors instead of panicking: ErrReservedKey
// for the reserved empty element and ErrFull (enriched with the table's
// size, count and load factor) when the probe sequence sweeps the whole
// backing array. Both satisfy errors.Is against the package sentinels.
func (t *WordTable[O]) TryInsert(v uint64) (bool, error) {
	if v == Empty {
		return false, reservedErr()
	}
	added, full := t.insertLoop(v)
	if full {
		return false, t.fullErr()
	}
	return added, nil
}

// insertLoop is the probe loop shared by Insert and TryInsert, kept free
// of error construction so both stay thin inlinable wrappers. full
// reports a whole-array sweep (saturation). The per-element API is the
// always-on core's per-op publish point; the bulk kernels batch whole
// blocks instead (bulk.go).
func (t *WordTable[O]) insertLoop(v uint64) (added, full bool) {
	h := t.home(v)
	var steps int
	added, full, steps = t.insertLoopFrom(v, h)
	if obs.CoreEnabled {
		obs.CoreInsert(h, 1, uint64(steps))
	}
	return added, full
}

// insertLoopFrom is insertLoop starting from a caller-supplied probe
// origin (i must be t.home(v)); the bulk kernels pre-compute and
// cache-stage homes a few elements ahead of the probe.
//
// This is Figure 1's INSERT: walk the probe sequence; past higher-priority
// elements, step forward; on a lower-priority element, CAS ourselves in
// and carry the displaced element forward; on an equal key, merge.
//
// Telemetry (obs builds only; const-folded away otherwise) accumulates
// in locals and publishes once per operation at the return points. The
// probe-step count is i-start: i grows monotonically, so the final
// offset is exactly the cells walked — also returned as steps so the
// caller can feed the always-on counter core (per op from the
// per-element API, batched per block from the bulk kernels).
func (t *WordTable[O]) insertLoopFrom(v uint64, i int) (added, full bool, steps int) {
	var obsCAS, obsFail, obsDisp uint64
	start := i
	limit := i + len(t.cells)
	for {
		if chaos.Enabled {
			chaos.Yield(chaos.SiteWordInsertProbe)
		}
		if i >= limit {
			if obs.Enabled {
				obs.RecordInsert(start, uint64(i-start), obsCAS, obsFail, obsDisp)
			}
			return false, true, i - start
		}
		c := t.load(i)
		if c == Empty {
			if chaos.Enabled && chaos.FailCAS(chaos.SiteWordInsertClaim) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue // pretend the CAS lost; re-read the cell
			}
			if t.cas(i, Empty, v) {
				if obs.Enabled {
					obs.RecordInsert(start, uint64(i-start), obsCAS+1, obsFail, obsDisp)
				}
				return true, false, i - start
			}
			if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
			continue // re-read the cell
		}
		cmp := t.ops.Cmp(c, v)
		switch {
		case cmp == 0:
			// Equal keys: resolve deterministically. Another insert may
			// concurrently raise this cell's priority, so on CAS failure
			// fall through to re-read and re-compare.
			merged := t.ops.Merge(c, v)
			if chaos.Enabled && merged != c && chaos.FailCAS(chaos.SiteWordInsertMerge) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue
			}
			if merged == c || t.cas(i, c, merged) {
				if obs.Enabled {
					if merged != c {
						obsCAS++
					}
					obs.RecordInsert(start, uint64(i-start), obsCAS, obsFail, obsDisp)
				}
				return false, false, i - start
			}
			if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
		case cmp > 0: // cell has higher priority; keep probing
			i++
		default: // v has higher priority; swap in and carry c forward
			if chaos.Enabled && chaos.FailCAS(chaos.SiteWordInsertDisplace) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue
			}
			if t.cas(i, c, v) {
				if obs.Enabled {
					obsCAS, obsDisp = obsCAS+1, obsDisp+1
				}
				v = c
				i++
				// The displaced element hashes at or before i-1, so its
				// remaining probe distance is still bounded by the
				// cluster length; keep the same safety limit.
			} else if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
		}
	}
}

// fullErr builds the ErrFull report for a saturated table. The count is
// an atomic snapshot (the insert phase is still running), so it is
// approximate but actionable in a field report.
func (t *WordTable[O]) fullErr() error {
	return fullTableErr(len(t.cells), t.CountAtomic())
}

// InsertLimited is Insert with an overfull detector for the resizing
// extension (GrowTable): if the probe sequence exceeds limit cells
// before the insert has modified the table, it aborts and returns
// ok=false so the caller can grow. Once the insert has swapped anything
// in, it runs to completion regardless (another insert will trip the
// detector soon enough). Returns (added, ok).
// Telemetry records only *completed* inserts: a probe-limit abort is
// retried by the caller after growing, so counting each attempt would
// make the schedule-independent insert-op total depend on how often the
// limit tripped (its probe work is simply not attributed).
func (t *WordTable[O]) InsertLimited(v uint64, limit int) (added, ok bool) {
	if v == Empty {
		panic("core: cannot insert the reserved empty element")
	}
	var obsCAS, obsFail, obsDisp uint64
	start := t.home(v)
	i := start
	committed := false
	hardLimit := start + len(t.cells)
	for {
		if chaos.Enabled {
			chaos.Yield(chaos.SiteWordInsertProbe)
		}
		if !committed && i-start > limit {
			return false, false
		}
		if i >= hardLimit {
			panic("core: WordTable: " + t.fullErr().Error())
		}
		c := t.load(i)
		if c == Empty {
			if chaos.Enabled && chaos.FailCAS(chaos.SiteWordInsertClaim) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue
			}
			if t.cas(i, Empty, v) {
				if obs.Enabled {
					obs.RecordInsert(start, uint64(i-start), obsCAS+1, obsFail, obsDisp)
				}
				if obs.CoreEnabled {
					obs.CoreInsert(start, 1, uint64(i-start))
				}
				return true, true
			}
			if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
			continue
		}
		cmp := t.ops.Cmp(c, v)
		switch {
		case cmp == 0:
			merged := t.ops.Merge(c, v)
			if chaos.Enabled && merged != c && chaos.FailCAS(chaos.SiteWordInsertMerge) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue
			}
			if merged == c || t.cas(i, c, merged) {
				if obs.Enabled {
					if merged != c {
						obsCAS++
					}
					obs.RecordInsert(start, uint64(i-start), obsCAS, obsFail, obsDisp)
				}
				if obs.CoreEnabled {
					obs.CoreInsert(start, 1, uint64(i-start))
				}
				return false, true
			}
			if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
		case cmp > 0:
			i++
		default:
			if chaos.Enabled && chaos.FailCAS(chaos.SiteWordInsertDisplace) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue
			}
			if t.cas(i, c, v) {
				if obs.Enabled {
					obsCAS, obsDisp = obsCAS+1, obsDisp+1
				}
				committed = true
				v = c
				i++
			} else if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
		}
	}
}

// Find reports the element stored under v's key (find/elements phase
// only; also safe during quiescence). v's value part, if any, is ignored:
// only the key participates. This is Figure 1's FIND: probe forward while
// cells hold strictly higher-priority keys; the ordering invariant makes
// the first cell with priority <= v's the only place v can live.
func (t *WordTable[O]) Find(v uint64) (uint64, bool) {
	h := t.home(v)
	e, ok, steps := t.findFrom(v, h)
	if obs.CoreEnabled {
		var hit uint64
		if ok {
			hit = 1
		}
		obs.CoreFind(h, 1, uint64(steps), hit)
	}
	return e, ok
}

// findFrom is Find starting from a caller-supplied probe origin (i must
// be t.home(v)); see insertLoopFrom. The whole-array sweep bound
// matters on a *saturated* table: with no Empty cell, a probe for an
// absent key of lower priority than everything in its path would
// otherwise wrap forever (insertLoopFrom has the same guard; that is
// how ErrFull is detected).
func (t *WordTable[O]) findFrom(v uint64, i int) (uint64, bool, int) {
	start := i
	limit := i + len(t.cells)
	for i < limit {
		c := t.load(i)
		if c == Empty {
			if obs.Enabled {
				obs.RecordFind(start, uint64(i-start), false)
			}
			return Empty, false, i - start
		}
		cmp := t.ops.Cmp(v, c)
		if cmp > 0 {
			if obs.Enabled {
				obs.RecordFind(start, uint64(i-start), false)
			}
			return Empty, false, i - start
		}
		if cmp == 0 {
			if obs.Enabled {
				obs.RecordFind(start, uint64(i-start), true)
			}
			return c, true, i - start
		}
		i++
	}
	// Full sweep without a verdict: the table is saturated and v absent.
	if obs.Enabled {
		obs.RecordFind(start, uint64(i-start), false)
	}
	return Empty, false, i - start
}

// Contains is Find without returning the element.
func (t *WordTable[O]) Contains(v uint64) bool {
	_, ok := t.Find(v)
	return ok
}

// Delete removes the element with v's key (delete phase only) and
// reports whether the phase's deletes removed it by the time this call
// completed its work. This is Figure 1's DELETE: find the victim, have
// FindReplacement select the next element in the probe sequence that may
// legally move back into the hole, CAS it in, and recursively delete the
// copy it left behind.
func (t *WordTable[O]) Delete(v uint64) bool {
	h := t.home(v)
	deleted, steps := t.deleteFrom(v, h)
	if obs.CoreEnabled {
		obs.CoreDelete(h, 1, uint64(steps))
	}
	return deleted
}

// deleteFrom is Delete starting from a caller-supplied probe origin (i
// must be t.home(v)); see insertLoopFrom. steps is the victim-scan
// length (cells walked to locate v's cluster position), the cheap
// per-op cost proxy the always-on core records.
func (t *WordTable[O]) deleteFrom(v uint64, i int) (deleted bool, steps int) {
	// Find v or the first element past it in the probe sequence
	// (concurrent deletes may have shifted v back, never forward).
	var obsRepl, obsFail uint64
	home := i
	k := i
	// The sweep bound keeps the victim scan finite on a saturated table
	// (no Empty cell and every element outranking v); overshooting to
	// home+size is harmless — the downward pass below re-examines the
	// interval anyway.
	for k < home+len(t.cells) {
		c := t.load(k)
		if c == Empty || t.ops.Cmp(v, c) >= 0 {
			break
		}
		k++
	}
	steps = k - home
	for k >= i {
		if chaos.Enabled {
			// Yield only: a forced CAS failure here would be read as "a
			// concurrent delete removed the victim", changing semantics.
			chaos.Yield(chaos.SiteWordDeleteProbe)
		}
		c := t.load(k)
		if c == Empty || t.ops.Cmp(v, c) != 0 {
			k--
			continue
		}
		j, w := t.findReplacement(k)
		if t.cas(k, c, w) {
			deleted = true
			if w == Empty {
				if obs.Enabled {
					obs.RecordDelete(home, uint64(steps), obsRepl, obsFail)
				}
				return true, steps
			}
			if obs.Enabled {
				obsRepl++
			}
			// There are now two copies of w; we own deleting one.
			v = w
			k = j
			i = t.lift(t.ops.Hash(w)&uint64(t.mask), j)
		} else {
			// v was deleted or moved down by a concurrent delete.
			if obs.Enabled {
				obsFail++
			}
			k--
		}
	}
	if obs.Enabled {
		obs.RecordDelete(home, uint64(steps), obsRepl, obsFail)
	}
	return deleted, steps
}

// findReplacement implements Figure 1's FINDREPLACEMENT: given the
// unnormalized position i of the element being deleted, return the
// position j and value w of the element that should fill the hole — the
// closest following element that hashes at or before i — or (j, Empty)
// when the cluster ends first.
//
// The upward scan finds a stopping point; the downward scan re-reads the
// interval because concurrent deletes can only move elements to lower
// positions, so the true replacement can have shifted below the stopping
// point but never above it. (This is the paper's pair of "redundant
// looking" loops; both are required for correctness.)
func (t *WordTable[O]) findReplacement(i int) (int, uint64) {
	j := i
	var w uint64
	// The scan covers at most the other size-1 cells. On a *saturated*
	// table the cluster wraps the whole array; when no element in it may
	// legally move back to i, the hole simply ends the cluster (w =
	// Empty) — without the bound the scan would re-read the array
	// forever.
	for {
		if chaos.Enabled {
			chaos.Yield(chaos.SiteWordDeleteProbe)
		}
		j++
		if j > i+len(t.cells)-1 {
			w = Empty
			break
		}
		w = t.load(j)
		if w == Empty || t.lift(t.ops.Hash(w)&uint64(t.mask), j) <= i {
			break
		}
	}
	for k := j - 1; k > i; k-- {
		w2 := t.load(k)
		if w2 == Empty || t.lift(t.ops.Hash(w2)&uint64(t.mask), k) <= i {
			w = w2
			j = k
		}
	}
	return j, w
}

// Elements packs the non-empty cells into a fresh slice in table order
// (find/elements phase only). Because the cell layout is
// history-independent, the result is identical across runs and thread
// counts for the same element set — the paper's deterministic ELEMENTS().
//
//phasehash:serial find/elements phase: the phase discipline guarantees no insert or delete is in flight, so the cells are quiescent under the plain reads
func (t *WordTable[O]) Elements() []uint64 {
	return parallel.Pack(t.cells, func(i int) bool { return t.cells[i] != Empty })
}

// ElementsInto packs the non-empty cells into dst and returns the
// number packed. The contract is on dst's *length*, not its capacity:
// len(dst) >= Count() is required, and a shorter dst panics with an
// index-out-of-range when the pack reaches the end of it.
//
//phasehash:serial find/elements phase: the phase discipline guarantees no insert or delete is in flight, so the cells are quiescent under the plain reads
func (t *WordTable[O]) ElementsInto(dst []uint64) int {
	return parallel.PackInto(dst, t.cells, func(i int) bool { return t.cells[i] != Empty })
}

// Count returns the number of elements currently stored (parallel scan;
// find/elements phase only).
//
//phasehash:serial find/elements phase: no writer is in flight; CountAtomic is the cross-phase variant
func (t *WordTable[O]) Count() int {
	return parallel.Count(len(t.cells), func(i int) bool { return t.cells[i] != Empty })
}

// CountAtomic is Count with atomic cell reads: safe to call while
// another phase is mutating the table (used by the resizing extension's
// migration bookkeeping and by fullErr's saturation report; the result
// is a racy snapshot). It is a blocked parallel reduce, so the O(m)
// scan no longer serializes GrowTable's drain loop on large tables.
func (t *WordTable[O]) CountAtomic() int {
	return parallel.Reduce(len(t.cells), 0,
		func(a, b int) int { return a + b },
		func(i int) int {
			if atomic.LoadUint64(&t.cells[i]) != Empty {
				return 1
			}
			return 0
		})
}

// ForEach calls fn for every stored element in table order (sequential;
// find/elements phase only).
//
//phasehash:serial find/elements phase: no writer is in flight during the sequential scan
func (t *WordTable[O]) ForEach(fn func(e uint64)) {
	for _, c := range t.cells {
		if c != Empty {
			fn(c)
		}
	}
}

// Clear resets every cell to Empty (a phase barrier by itself: callers
// must not run it concurrently with anything).
//
//phasehash:serial quiescent: Clear is itself a phase barrier; nothing runs concurrently with it by contract
func (t *WordTable[O]) Clear() {
	parallel.For(len(t.cells), func(i int) { t.cells[i] = Empty })
}

// CheckInvariant walks the table and verifies the ordering invariant
// (Definition 2): for every stored element at position j with probe
// origin i, every cell in [i, j) holds an element of priority >= the
// element's. It returns nil if the invariant holds. Quiescent use only;
// exported for tests and for the fuzzing harness.
//
//phasehash:serial quiescent use only: invariant checks run between phases with no operation in flight
func (t *WordTable[O]) CheckInvariant() error {
	m := len(t.cells)
	for j := 0; j < m; j++ {
		e := t.cells[j]
		if e == Empty {
			continue
		}
		h := t.home(e)
		// Walk backward from j to h (mod m); every cell on the way must
		// be non-empty and of higher-or-equal priority.
		dist := (j - h) & t.mask
		for d := 1; d <= dist; d++ {
			k := (h + d - 1) & t.mask
			c := t.cells[k]
			if c == Empty {
				return fmt.Errorf("core: hole at %d inside probe path of %#x (home %d, at %d)", k, e, h, j)
			}
			if t.ops.Cmp(c, e) < 0 {
				return fmt.Errorf("core: priority inversion: cell %d holds %#x with lower priority than %#x at %d (home %d)", k, c, e, j, h)
			}
		}
	}
	return nil
}

// Snapshot copies the raw cell array (quiescent use only). Tests use it
// to compare layouts byte-for-byte across schedules.
//
//phasehash:serial quiescent use only: layout snapshots are taken between phases
func (t *WordTable[O]) Snapshot() []uint64 {
	out := make([]uint64, len(t.cells))
	copy(out, t.cells)
	return out
}
