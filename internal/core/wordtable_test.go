package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// buildSerial inserts keys one at a time (single goroutine).
func buildSerial(keys []uint64, size int) *WordTable[SetOps] {
	t := NewWordTable[SetOps](size)
	for _, k := range keys {
		t.Insert(k)
	}
	return t
}

// buildParallel inserts keys with a parallel loop.
func buildParallel(keys []uint64, size int) *WordTable[SetOps] {
	t := NewWordTable[SetOps](size)
	parallel.ForGrain(len(keys), 1, func(i int) { t.Insert(keys[i]) })
	return t
}

func randKeys(n int, seed uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashx.At(seed, i)%uint64(4*n) + 1
	}
	return keys
}

func TestInsertFindBasic(t *testing.T) {
	tab := NewWordTable[SetOps](16)
	for _, k := range []uint64{1, 2, 3, 100, 200} {
		if !tab.Insert(k) {
			t.Errorf("Insert(%d) reported duplicate on first insert", k)
		}
	}
	if tab.Insert(100) {
		t.Error("duplicate Insert(100) reported as new")
	}
	for _, k := range []uint64{1, 2, 3, 100, 200} {
		if !tab.Contains(k) {
			t.Errorf("Contains(%d) = false, want true", k)
		}
	}
	for _, k := range []uint64{4, 99, 201} {
		if tab.Contains(k) {
			t.Errorf("Contains(%d) = true, want false", k)
		}
	}
	if got := tab.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestInsertEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert(Empty) did not panic")
		}
	}()
	NewWordTable[SetOps](8).Insert(Empty)
}

func TestTableFullPanics(t *testing.T) {
	tab := NewWordTable[SetOps](4) // 4 cells
	defer func() {
		if recover() == nil {
			t.Error("overfilling the table did not panic")
		}
	}()
	for k := uint64(1); k <= 10; k++ {
		tab.Insert(k)
	}
}

// TestHistoryIndependenceSerial: any insertion order yields the identical
// backing array (the Blelloch–Golovin unique-representation property).
func TestHistoryIndependenceSerial(t *testing.T) {
	keys := randKeys(300, 42)
	ref := buildSerial(keys, 1024).Snapshot()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := append([]uint64(nil), keys...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := buildSerial(perm, 1024).Snapshot()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: layout differs at cell %d: %#x vs %#x", trial, i, got[i], ref[i])
			}
		}
	}
}

// TestDeterministicConcurrentInsert: concurrent insertion yields the
// same layout as sequential insertion, across many runs.
func TestDeterministicConcurrentInsert(t *testing.T) {
	keys := randKeys(20000, 99)
	ref := buildSerial(keys, 1<<16).Snapshot()
	for trial := 0; trial < 8; trial++ {
		got := buildParallel(keys, 1<<16).Snapshot()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: concurrent layout differs at cell %d", trial, i)
			}
		}
	}
}

func TestOrderingInvariantAfterConcurrentInsert(t *testing.T) {
	keys := randKeys(50000, 5)
	tab := buildParallel(keys, 1<<17)
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteSequential checks deletes against a reference map, then the
// invariant and history-independence of the remainder.
func TestDeleteSequential(t *testing.T) {
	keys := randKeys(1000, 11)
	tab := buildSerial(keys, 4096)
	present := map[uint64]bool{}
	for _, k := range keys {
		present[k] = true
	}
	// Delete every third distinct key plus some absent keys.
	var deleted []uint64
	i := 0
	for k := range present {
		if i%3 == 0 {
			deleted = append(deleted, k)
		}
		i++
	}
	for _, k := range deleted {
		if !tab.Delete(k) {
			t.Errorf("Delete(%d) = false for present key", k)
		}
		delete(present, k)
	}
	if tab.Delete(999999999) {
		t.Error("Delete of absent key returned true")
	}
	for k := range present {
		if !tab.Contains(k) {
			t.Errorf("key %d missing after unrelated deletes", k)
		}
	}
	for _, k := range deleted {
		if tab.Contains(k) {
			t.Errorf("deleted key %d still present", k)
		}
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// History independence: table with survivors inserted fresh matches.
	var survivors []uint64
	for k := range present {
		survivors = append(survivors, k)
	}
	ref := buildSerial(survivors, 4096).Snapshot()
	got := tab.Snapshot()
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("layout after deletes differs from fresh build at cell %d", i)
		}
	}
}

// TestDeterministicConcurrentDelete: concurrent deletions leave the same
// layout as building the surviving set from scratch.
func TestDeterministicConcurrentDelete(t *testing.T) {
	keys := randKeys(20000, 123)
	dels := make([]uint64, 0, len(keys)/2)
	for i, k := range keys {
		if i%2 == 0 {
			dels = append(dels, k)
		}
	}
	surviving := map[uint64]bool{}
	for _, k := range keys {
		surviving[k] = true
	}
	for _, k := range dels {
		delete(surviving, k)
	}
	var surv []uint64
	for k := range surviving {
		surv = append(surv, k)
	}
	ref := buildSerial(surv, 1<<16).Snapshot()

	for trial := 0; trial < 6; trial++ {
		tab := buildParallel(keys, 1<<16)
		parallel.ForGrain(len(dels), 1, func(i int) { tab.Delete(dels[i]) })
		if err := tab.CheckInvariant(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := tab.Snapshot()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: delete layout differs at cell %d: got %#x want %#x", trial, i, got[i], ref[i])
			}
		}
	}
}

// TestConcurrentDeleteDuplicates: several threads deleting the same key
// concurrently must still produce the correct final set (the paper's
// multiplicity argument).
func TestConcurrentDeleteDuplicates(t *testing.T) {
	keys := randKeys(5000, 77)
	tab := buildParallel(keys, 1<<14)
	// Every key deleted 4 times, concurrently.
	dels := make([]uint64, 0, 4*len(keys))
	for rep := 0; rep < 4; rep++ {
		dels = append(dels, keys...)
	}
	parallel.ForGrain(len(dels), 1, func(i int) { tab.Delete(dels[i]) })
	if got := tab.Count(); got != 0 {
		t.Fatalf("Count() = %d after deleting everything, want 0", got)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestElementsDeterministicAndSorted(t *testing.T) {
	keys := randKeys(30000, 2024)
	a := buildParallel(keys, 1<<16).Elements()
	b := buildParallel(keys, 1<<16).Elements()
	if len(a) != len(b) {
		t.Fatalf("Elements length differs across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Elements differ at %d", i)
		}
	}
	set := map[uint64]bool{}
	for _, k := range keys {
		set[k] = true
	}
	if len(a) != len(set) {
		t.Fatalf("Elements returned %d values, want %d distinct", len(a), len(set))
	}
	for _, e := range a {
		if !set[e] {
			t.Fatalf("Elements returned %d which was never inserted", e)
		}
	}
}

func TestInsertReturnCountsNewElements(t *testing.T) {
	keys := randKeys(10000, 314) // has duplicates by construction
	tab := NewWordTable[SetOps](1 << 15)
	var total int64
	parallel.ForBlocked(len(keys), 0, func(lo, hi int) {
		n := int64(0)
		for i := lo; i < hi; i++ {
			if tab.Insert(keys[i]) {
				n++
			}
		}
		atomic.AddInt64(&total, n)
	})
	if int(total) != tab.Count() {
		t.Fatalf("sum of Insert()==true is %d, table Count() is %d", total, tab.Count())
	}
}

func TestPairMergeSemantics(t *testing.T) {
	minTab := NewWordTable[PairMinOps](64)
	maxTab := NewWordTable[PairMaxOps](64)
	sumTab := NewWordTable[PairSumOps](64)
	for _, v := range []uint32{5, 3, 9, 3, 7} {
		minTab.Insert(Pair(42, v))
		maxTab.Insert(Pair(42, v))
		sumTab.Insert(Pair(42, v))
	}
	if e, ok := minTab.Find(Pair(42, 0)); !ok || PairValue(e) != 3 {
		t.Errorf("PairMin stored value %d, want 3", PairValue(e))
	}
	if e, ok := maxTab.Find(Pair(42, 0)); !ok || PairValue(e) != 9 {
		t.Errorf("PairMax stored value %d, want 9", PairValue(e))
	}
	if e, ok := sumTab.Find(Pair(42, 0)); !ok || PairValue(e) != 27 {
		t.Errorf("PairSum stored value %d, want 27", PairValue(e))
	}
}

// TestPairDeterministicConcurrent: concurrent duplicate-key inserts with
// a min-combine give a deterministic layout and value.
func TestPairDeterministicConcurrent(t *testing.T) {
	n := 20000
	elems := make([]uint64, n)
	for i := range elems {
		elems[i] = Pair(uint32(hashx.At(9, i)%2000+1), uint32(hashx.At(10, i)%1000))
	}
	build := func() []uint64 {
		tab := NewWordTable[PairMinOps](1 << 13)
		parallel.ForGrain(n, 1, func(i int) { tab.Insert(elems[i]) })
		return tab.Snapshot()
	}
	ref := build()
	for trial := 0; trial < 5; trial++ {
		got := build()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: pair layout differs at %d", trial, i)
			}
		}
	}
}

// Property test: for arbitrary small key multisets, table contents equal
// the distinct key set and the invariant holds, whether built serially or
// concurrently.
func TestQuickSetSemantics(t *testing.T) {
	f := func(raw []uint16) bool {
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r) + 1
		}
		tab := NewWordTable[SetOps](2*len(keys) + 8)
		parallel.ForGrain(len(keys), 1, func(i int) { tab.Insert(keys[i]) })
		if err := tab.CheckInvariant(); err != nil {
			t.Log(err)
			return false
		}
		want := map[uint64]bool{}
		for _, k := range keys {
			want[k] = true
		}
		elems := tab.Elements()
		if len(elems) != len(want) {
			return false
		}
		for _, e := range elems {
			if !want[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property test: insert a set, delete an arbitrary subset concurrently,
// verify survivors and invariant.
func TestQuickDeleteSemantics(t *testing.T) {
	f := func(raw []uint16, delMask []bool) bool {
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r) + 1
		}
		tab := NewWordTable[SetOps](2*len(keys) + 8)
		parallel.ForGrain(len(keys), 1, func(i int) { tab.Insert(keys[i]) })
		want := map[uint64]bool{}
		for _, k := range keys {
			want[k] = true
		}
		var dels []uint64
		for i, k := range keys {
			if i < len(delMask) && delMask[i] {
				dels = append(dels, k)
				delete(want, k)
			}
		}
		parallel.ForGrain(len(dels), 1, func(i int) { tab.Delete(dels[i]) })
		if err := tab.CheckInvariant(); err != nil {
			t.Log(err)
			return false
		}
		elems := tab.Elements()
		if len(elems) != len(want) {
			return false
		}
		for _, e := range elems {
			if !want[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestAdversarialCluster uses the identity hash to force one giant
// cluster with wraparound over the end of the array, and checks inserts,
// finds and deletes across the boundary.
func TestAdversarialCluster(t *testing.T) {
	tab := NewWordTable[IdentOps](8) // cells 0..7
	// All keys hash to cell 6: cluster wraps 6,7,0,1,...
	keys := []uint64{6, 14, 22, 30, 38} // all ≡ 6 mod 8
	for _, k := range keys {
		tab.Insert(k)
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !tab.Contains(k) {
			t.Fatalf("key %d missing in wrapped cluster", k)
		}
	}
	// Highest priority (38) sits at cell 6; the rest wrap.
	if tab.cells[6] != 38 {
		t.Errorf("cell 6 = %d, want 38 (highest priority first)", tab.cells[6])
	}
	// Delete the element at the cluster head and check the shift-back.
	if !tab.Delete(38) {
		t.Fatal("Delete(38) failed")
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{6, 14, 22, 30} {
		if !tab.Contains(k) {
			t.Fatalf("key %d lost after deleting cluster head", k)
		}
	}
	// Delete an interior element.
	if !tab.Delete(22) {
		t.Fatal("Delete(22) failed")
	}
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if tab.Contains(22) {
		t.Error("22 still present")
	}
	if got := tab.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
}
