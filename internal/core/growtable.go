package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"phasehash/internal/chaos"
	"phasehash/internal/obs"
)

// GrowTable is the paper's Section 4 resizing extension (listed there as
// an outline and under future work; implemented here): a deterministic
// phase-concurrent table that grows itself during insert phases.
//
// When an insert's probe sequence exceeds a logarithmic threshold the
// table is declared overfull: an insert takes the allocation lock,
// publishes a table of twice the size, and subsequent inserts go to the
// new table. While the old table is non-empty every insert additionally
// migrates up to two elements from old to new (deleting from the old
// table keeps its history-independent layout intact, so finds that fall
// through to the old table still work). Since inserts outnumber the
// elements left to copy, the old table drains before the new one fills
// and at most two tables are ever live — exactly the scheme the paper
// sketches.
//
// Phase discipline is unchanged: {insert}, {delete}, {find, elements}.
// Finds and deletes consult both tables while a migration is in
// progress. Determinism: at any quiescent point where the old table has
// fully drained — Elements() forces this by finishing the migration —
// the layout is the history-independent layout of the key set, so
// Elements() is deterministic exactly as for WordTable. (Mid-migration,
// *which* table holds a key depends on scheduling; the paper's outline
// shares this property.)
type GrowTable[O Ops] struct {
	ops   O
	state atomic.Pointer[growState[O]]
	count atomic.Int64 // total Insert calls (drives growth; see Insert)
	mu    sync.Mutex   // serializes grow operations
}

type growState[O Ops] struct {
	table  *WordTable[O] // receives all new inserts
	old    *WordTable[O] // draining; nil when no migration is active
	cursor atomic.Int64  // next old-table cell to scan for migration
	// inflight counts inserts currently targeting table. The counter
	// belongs to the *table*, not the state: states published by retire
	// and FinishMigration keep the same table and must share its
	// counter, or stragglers from a pre-retire state handle would
	// escape the next grow's migration gate.
	inflight *atomic.Int64
	// oldInflight is the old table's insert counter: migration (deletes
	// on the old table) must wait until straggler inserts that entered
	// before the grow have drained, or the old table would see inserts
	// and deletes in the same phase.
	oldInflight *atomic.Int64
}

// migrationQuota is how many old-table elements each insert moves; > 1
// guarantees the old table empties before the new one fills.
const migrationQuota = 2

// minGrowSize is the smallest backing array; headroom between the
// growth threshold (half full) and full keeps straggler inserts safe.
const minGrowSize = 64

// NewGrowTable returns a growing table with the given initial capacity.
func NewGrowTable[O Ops](initial int) *GrowTable[O] {
	if initial < minGrowSize {
		initial = minGrowSize
	}
	g := &GrowTable[O]{}
	st := &growState[O]{table: NewWordTable[O](initial), inflight: new(atomic.Int64)}
	g.state.Store(st)
	return g
}

// probeLimit bounds how far an insert probes before concluding the
// table needs to grow: a safety net behind the count threshold (probe
// sequences this long do not occur below 50% load except with
// adversarial hash functions).
func probeLimit(size int) int {
	l := 0
	for s := size; s > 1; s >>= 1 {
		l++
	}
	limit := 8 * (l + 1)
	if limit > size/2 {
		limit = size / 2
	}
	return limit
}

// Insert adds element v (insert phase only), growing as needed. It
// reports whether the targeted table's key count grew; note that during
// a migration a key resident in the old table is counted as new by the
// new table — duplicates across the two tables merge when the old table
// drains, so quiescent contents are exact.
//
// Growth is triggered by a deterministic threshold on the total number
// of Insert calls (the table doubles when calls reach half its
// capacity): the crossing happens at the same call count on every
// schedule, so the final table size — and therefore the quiescent
// layout — is deterministic. (Counting calls rather than distinct keys
// over-provisions duplicate-heavy workloads; distinct-key counts are
// not schedule-independent during migration.) The probe-limit abort
// inside InsertLimited is a safety net only.
func (g *GrowTable[O]) Insert(v uint64) bool {
	added, err := g.TryInsert(v)
	if err != nil {
		panic("core: GrowTable: " + err.Error())
	}
	return added
}

// TryInsert is Insert returning ErrReservedKey (satisfying errors.Is)
// instead of panicking on the reserved empty element. A growing table
// never reports ErrFull: saturation triggers a grow instead.
func (g *GrowTable[O]) TryInsert(v uint64) (bool, error) {
	if v == Empty {
		return false, fmt.Errorf("%w: %#x is the reserved empty element", ErrReservedKey, Empty)
	}
	for {
		st := g.state.Load()
		st.inflight.Add(1)
		if g.state.Load() != st {
			// Lost a race with a grow; re-enter through the new state.
			st.inflight.Add(-1)
			continue
		}
		if st.old != nil {
			g.migrate(st, migrationQuota)
		}
		added, ok := st.table.InsertLimited(v, probeLimit(st.table.Size()))
		st.inflight.Add(-1)
		if ok {
			// Check the threshold against the *current* state, not the
			// state this insert landed in, and loop until the size catches
			// up with the count. A straggler suspended between its insert
			// and its count.Add could otherwise spend the threshold-crossing
			// increment on a stale state's no-op grow, leaving the final
			// size — and the quiescent layout — schedule-dependent.
			c := int(g.count.Add(1))
			for {
				cur := g.state.Load()
				if c < cur.table.Size()/2 {
					break
				}
				g.grow(cur)
			}
			return added, nil
		}
		// Probe-limit overflow: the table is congested below the count
		// threshold (clustered hashes). Grow early rather than spin on
		// ever-longer probe sequences.
		g.grow(st)
	}
}

// migrate moves up to quota elements from st.old into st.table, and
// retires the old table once it is empty.
func (g *GrowTable[O]) migrate(st *growState[O], quota int) {
	if st.oldInflight != nil && st.oldInflight.Load() != 0 {
		// Straggler inserts from before the grow are still landing in
		// the old table; deleting now would mix phases on it. Skip —
		// a later insert will migrate.
		return
	}
	old := st.old
	size := int64(old.Size())
	moved := 0
	for moved < quota {
		i := st.cursor.Add(1) - 1
		if i >= size {
			// A full sweep is done; if leftovers remain (back-shifted
			// behind the cursor by concurrent migration deletes), wrap
			// the cursor and sweep again.
			if old.CountAtomic() == 0 {
				if obs.Enabled && moved > 0 {
					obs.RecordMigrate(int(i), uint64(moved))
				}
				g.retire(st)
				return
			}
			st.cursor.Store(0)
			continue
		}
		e := old.load(int(i))
		if e == Empty {
			continue
		}
		if chaos.Enabled {
			chaos.Yield(chaos.SiteGrowMigrate)
		}
		// Copy into the new table first, then delete from old. Insert
		// before delete keeps the key continuously findable (Find checks
		// the new table first) and is idempotent against a racing
		// migrator: duplicate inserts merge, and only the Delete winner
		// counts the move. The insert is probe-limited so a congested
		// new table triggers an early grow instead of a long spin (or,
		// at worst, the fixed table's full panic).
		if _, ok := st.table.InsertLimited(e, probeLimit(st.table.Size())); !ok {
			if obs.Enabled && moved > 0 {
				obs.RecordMigrate(int(i), uint64(moved))
			}
			g.grow(st)
			return
		}
		if old.Delete(e) {
			moved++
		}
	}
	if obs.Enabled && moved > 0 {
		obs.RecordMigrate(int(st.cursor.Load()), uint64(moved))
	}
}

// retire publishes a state without the drained old table. It must not
// block: the caller holds the state's inflight counter, and a grower
// holding the allocation lock may be spin-waiting on exactly that
// counter — TryLock breaks the cycle (a busy lock means someone else is
// already reorganizing).
func (g *GrowTable[O]) retire(st *growState[O]) {
	if !g.mu.TryLock() {
		return
	}
	defer g.mu.Unlock()
	cur := g.state.Load()
	if cur == st && st.old != nil && st.old.CountAtomic() == 0 {
		g.state.Store(&growState[O]{table: st.table, inflight: st.inflight})
	}
}

// grow doubles the table. Only one goroutine allocates; the others
// observe the new state and retry (the paper's short allocation lock).
func (g *GrowTable[O]) grow(st *growState[O]) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.state.Load()
	if cur != st {
		return // someone else already grew
	}
	// Finish any in-flight migration first so at most two tables exist.
	if cur.old != nil {
		g.drainLocked(cur)
	}
	next := &growState[O]{
		table:       NewWordTable[O](2 * cur.table.Size()),
		old:         cur.table,
		inflight:    new(atomic.Int64),
		oldInflight: cur.inflight,
	}
	g.state.Store(next)
	if obs.Enabled {
		obs.RecordGrowEvent()
	}
}

// drainLocked empties st.old into st.table (allocation lock held).
func (g *GrowTable[O]) drainLocked(st *growState[O]) {
	// Wait out straggler inserts into the old table (lock-free, finite).
	if st.oldInflight != nil {
		for st.oldInflight.Load() != 0 {
			runtime.Gosched()
		}
	}
	old := st.old
	var obsDrained uint64
	for old.CountAtomic() > 0 {
		for i := 0; i < old.Size(); i++ {
			e := old.load(i)
			if e == Empty {
				continue
			}
			if chaos.Enabled {
				chaos.Yield(chaos.SiteGrowDrain)
			}
			if old.Delete(e) {
				st.table.Insert(e)
				if obs.Enabled {
					obsDrained++
				}
			}
		}
	}
	if obs.Enabled && obsDrained > 0 {
		obs.RecordMigrate(0, obsDrained)
	}
	// st.old is intentionally left set: concurrent inserters still
	// holding this state read st.old locklessly, and their migrate()
	// calls are harmless no-ops on the now-empty table. Callers publish
	// a fresh state without the old table instead.
}

// FinishMigration drains any in-progress migration (callers must be
// quiescent). Elements and Snapshot call it implicitly.
func (g *GrowTable[O]) FinishMigration() {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state.Load()
	if st.old != nil {
		g.drainLocked(st)
		g.state.Store(&growState[O]{table: st.table, inflight: st.inflight})
	}
}

// Find returns the element under v's key (find/elements phase only).
func (g *GrowTable[O]) Find(v uint64) (uint64, bool) {
	st := g.state.Load()
	if e, ok := st.table.Find(v); ok {
		return e, ok
	}
	if st.old != nil {
		return st.old.Find(v)
	}
	return Empty, false
}

// Contains is Find without the element.
func (g *GrowTable[O]) Contains(v uint64) bool {
	_, ok := g.Find(v)
	return ok
}

// Delete removes v's key (delete phase only). During a migration the
// key may transiently exist in both tables (an insert of a key that was
// still awaiting migration), so both are deleted from.
func (g *GrowTable[O]) Delete(v uint64) bool {
	st := g.state.Load()
	deleted := st.table.Delete(v)
	if st.old != nil {
		if st.old.Delete(v) {
			deleted = true
		}
	}
	return deleted
}

// Elements finishes any migration and returns the deterministic packed
// contents (quiescent callers only).
func (g *GrowTable[O]) Elements() []uint64 {
	g.FinishMigration()
	return g.state.Load().table.Elements()
}

// Count returns the stored key count. Like Elements it requires
// quiescence and finishes any migration first (keys straddling the two
// tables merge during the drain, so counting live tables separately
// would over-report).
func (g *GrowTable[O]) Count() int {
	g.FinishMigration()
	return g.state.Load().table.Count()
}

// Size returns the current main table's cell count.
func (g *GrowTable[O]) Size() int { return g.state.Load().table.Size() }

// Snapshot finishes any migration and copies the raw cell array of the
// main table (quiescent use only). Like WordTable.Snapshot it exists so
// tests can compare quiescent layouts byte-for-byte across schedules.
func (g *GrowTable[O]) Snapshot() []uint64 {
	g.FinishMigration()
	return g.state.Load().table.Snapshot()
}

// CheckInvariant verifies the ordering invariant of both live tables.
func (g *GrowTable[O]) CheckInvariant() error {
	st := g.state.Load()
	if err := st.table.CheckInvariant(); err != nil {
		return err
	}
	if st.old != nil {
		return st.old.CheckInvariant()
	}
	return nil
}
