package core

import (
	"testing"

	"phasehash/internal/hashx"
)

func TestStatsEmptyTable(t *testing.T) {
	st := NewWordTable[SetOps](64).Stats()
	if st.Elements != 0 || st.Clusters != 0 || st.MaxProbe != 0 || st.Load != 0 {
		t.Fatalf("empty table stats: %+v", st)
	}
}

func TestStatsAdversarialCluster(t *testing.T) {
	tab := NewWordTable[IdentOps](16)
	// One cluster of 4, all homed at 6, wrapping nothing.
	for _, k := range []uint64{6, 22, 38, 54} {
		tab.Insert(k)
	}
	st := tab.Stats()
	if st.Elements != 4 || st.Clusters != 1 || st.MaxCluster != 4 {
		t.Fatalf("stats: %+v", st)
	}
	// Probe distances are 0..3 (descending priority run).
	if st.MaxProbe != 3 {
		t.Fatalf("MaxProbe = %d, want 3", st.MaxProbe)
	}
	if st.Histogram[0] != 1 || st.Histogram[3] != 1 {
		t.Fatalf("histogram: %v", st.Histogram[:5])
	}
	if st.MeanProbe != 1.5 {
		t.Fatalf("MeanProbe = %g, want 1.5", st.MeanProbe)
	}
}

func TestStatsWraparoundCluster(t *testing.T) {
	tab := NewWordTable[IdentOps](8)
	// Home 6, four elements: cluster occupies 6,7,0,1 (wraps).
	for _, k := range []uint64{6, 14, 22, 30} {
		tab.Insert(k)
	}
	st := tab.Stats()
	if st.Clusters != 1 || st.MaxCluster != 4 {
		t.Fatalf("wraparound cluster not merged: %+v", st)
	}
}

func TestStatsTwoClusters(t *testing.T) {
	tab := NewWordTable[IdentOps](16)
	tab.Insert(2)
	tab.Insert(3)
	tab.Insert(9)
	st := tab.Stats()
	if st.Clusters != 2 || st.MaxCluster != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStatsFullishTable(t *testing.T) {
	tab := NewWordTable[SetOps](1 << 10)
	n := 900
	for i := 0; i < n; i++ {
		tab.Insert(hashx.At(5, i)%100000 + 1)
	}
	st := tab.Stats()
	if st.Elements != tab.Count() {
		t.Fatalf("Elements %d != Count %d", st.Elements, tab.Count())
	}
	if st.Load < 0.5 || st.Load > 0.9 {
		t.Fatalf("Load = %g", st.Load)
	}
	// Mean probe at high load must exceed the low-load mean.
	low := NewWordTable[SetOps](1 << 13)
	for i := 0; i < n; i++ {
		low.Insert(hashx.At(5, i)%100000 + 1)
	}
	if low.Stats().MeanProbe >= st.MeanProbe {
		t.Fatalf("mean probe did not grow with load: %g vs %g",
			low.Stats().MeanProbe, st.MeanProbe)
	}
	// Histogram sums to elements not beyond MaxProbe.
	sum := 0
	for _, c := range st.Histogram {
		sum += c
	}
	if sum > st.Elements {
		t.Fatalf("histogram overcounts: %d > %d", sum, st.Elements)
	}
}
