package core

import (
	"fmt"
	"sync/atomic"

	"phasehash/internal/obs"
)

// Phase identifies one of the table's operation classes. The legal
// concurrent subsets are {insert}, {delete}, and {find, elements}
// (reads); the guard below enforces that operations from different
// subsets never overlap in time.
type Phase int32

// Phases of a phase-concurrent hash table.
const (
	PhaseIdle      Phase = iota // no operations in flight
	PhaseInsert                 // concurrent Inserts
	PhaseDelete                 // concurrent Deletes
	PhaseRead                   // concurrent Finds and Elements
	PhaseExclusive              // quiescent-only maintenance (Clear); never concurrent
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseInsert:
		return "insert"
	case PhaseDelete:
		return "delete"
	case PhaseRead:
		return "read"
	case PhaseExclusive:
		return "exclusive"
	default:
		return fmt.Sprintf("Phase(%d)", int32(p))
	}
}

// PhaseGuard is a runtime detector of phase-discipline violations: it
// tracks which phase is active and how many operations are in flight, and
// reports an error when an operation of a different subset starts while
// another subset is active. It is intentionally separate from the tables
// themselves so that benchmarked code paths carry no checking overhead;
// wrap a table with the checked facade (package phasehash) or call
// Enter/Exit around operations in tests.
//
// The guard is itself safe for concurrent use and adds two atomic
// operations per guarded call.
//
// In obs builds the guard additionally emits the phase timeline: it
// sees every phase transition, so the idle→phase claim opens an
// obs.ActiveSpan (also a runtime/trace task named "phase:<name>") and
// the last Exit closes it, yielding {phase, start, end, opCount} spans
// in obs.Snapshot(). Without the tag the span field is dead weight of
// one pointer and every hook folds away.
type PhaseGuard struct {
	// state packs (phase << 32) | active-count into one word so that
	// phase transitions and occupancy changes are a single CAS.
	state atomic.Uint64
	// span is the obs-build timeline span for the currently active
	// phase; owned by the idle→phase claimant, cleared by the last Exit.
	span atomic.Pointer[obs.ActiveSpan]
}

func packState(p Phase, n uint32) uint64   { return uint64(p)<<32 | uint64(n) }
func unpackState(s uint64) (Phase, uint32) { return Phase(s >> 32), uint32(s) }

// Enter records the start of an operation in phase p. It returns an error
// (and records nothing) if an incompatible phase is active — that is a
// phase-discipline violation in the caller, the exact bug class the
// deterministic table forbids.
func (g *PhaseGuard) Enter(p Phase) error {
	for {
		s := g.state.Load()
		cur, n := unpackState(s)
		if n == 0 {
			// Idle: claim the phase.
			if g.state.CompareAndSwap(s, packState(p, 1)) {
				if obs.Enabled {
					g.span.Store(obs.PhaseStart(p.String()))
					g.span.Load().AddOp()
				}
				return nil
			}
			continue
		}
		if cur != p {
			return fmt.Errorf("core: phase violation: %s operation started during %s phase (%d in flight)",
				p.String(), cur.String(), n)
		}
		if g.state.CompareAndSwap(s, packState(p, n+1)) {
			if obs.Enabled {
				g.span.Load().AddOp()
			}
			return nil
		}
	}
}

// EnterExclusive claims the guard for a quiescent-only operation such
// as Clear, which is a phase barrier by itself: it may not overlap any
// other operation, of any phase, including another exclusive one. It
// returns an error if anything is in flight. Release with
// Exit(PhaseExclusive).
func (g *PhaseGuard) EnterExclusive() error {
	for {
		s := g.state.Load()
		cur, n := unpackState(s)
		if n != 0 {
			return fmt.Errorf("core: phase violation: quiescent-only operation started during %s phase (%d in flight)",
				cur.String(), n)
		}
		if g.state.CompareAndSwap(s, packState(PhaseExclusive, 1)) {
			if obs.Enabled {
				g.span.Store(obs.PhaseStart(PhaseExclusive.String()))
				g.span.Load().AddOp()
			}
			return nil
		}
	}
}

// Exit records the completion of an operation in phase p. The last
// operation to leave returns the guard to idle, which is the quiescent
// point at which the table state is deterministic.
func (g *PhaseGuard) Exit(p Phase) {
	for {
		s := g.state.Load()
		cur, n := unpackState(s)
		if cur != p || n == 0 {
			panic(fmt.Sprintf("core: PhaseGuard.Exit(%v) without matching Enter (state %v/%d)", p, cur, n))
		}
		next := packState(p, n-1)
		if n == 1 {
			next = packState(PhaseIdle, 0)
		}
		if obs.Enabled && n == 1 {
			// Take the span before returning to idle: once the state CAS
			// lands another Enter may claim the guard and store a fresh
			// span, and the close must not race it.
			sp := g.span.Swap(nil)
			if g.state.CompareAndSwap(s, next) {
				obs.PhaseEnd(sp)
				return
			}
			g.span.Store(sp) // CAS lost; restore and retry
			continue
		}
		if g.state.CompareAndSwap(s, next) {
			return
		}
	}
}

// Active returns the currently active phase and the number of operations
// in flight (racy snapshot; for diagnostics).
func (g *PhaseGuard) Active() (Phase, int) {
	p, n := unpackState(g.state.Load())
	return p, int(n)
}
