package core

import (
	"math/bits"

	"phasehash/internal/hashx"
	"phasehash/internal/obs"
)

// This file holds the non-atomic serial probe loops of CompactTable,
// exactly as serialprobe.go does for WordTable: the same algorithms as
// the exported phase-concurrent operations with plain loads and stores,
// for the owner-computes path of ShardedCompactTable — after the radix
// partition exactly one worker streams one shard, so the CAS machinery
// and the syncCtrl convergence loop both evaporate (a plain ctrl byte
// write is trivially the final word when nobody races it).
//
// History independence makes the substitution sound for the cells (see
// serialprobe.go); for the ctrl array it is immediate, because the
// serial path writes each touched slot's derived byte at the same
// program points where the atomic path converges to it, and the derived
// byte is a pure function of the cell. The serial delete is also where
// the transient ctrlTombstone appears: the victim's slot is marked
// while findReplacementSerial walks the cluster, then overwritten with
// the replacement's byte (or empty) when the hole fills — a crash or
// invariant check mid-phase shows exactly which slot was being vacated,
// and CheckInvariant proves no tombstone survives to quiescence.

// setCtrlSerial writes slot p's ctrl byte with plain memory operations.
//
//phasehash:serial owner-computes: exactly one worker streams this shard after the radix partition, so no syncCtrl convergence is needed
func (t *CompactTable[O]) setCtrlSerial(p int, b byte) {
	s := p & t.mask
	w := s >> 3
	sh := uint(s&7) * 8
	t.ctrl[w] = t.ctrl[w]&^(uint64(0xFF)<<sh) | uint64(b)<<sh
}

// insertSerial is insertLoopFrom with plain memory operations, plus the
// ctrl byte write after every store that changes a slot's occupancy or
// fingerprint (claims and displacements; merges keep the key and hence
// the fingerprint).
//
//phasehash:serial owner-computes: exactly one worker streams this shard after the radix partition, and history independence makes the serial replay land in the same quiescent layout
func (t *CompactTable[O]) insertSerial(v uint64) (added, full bool) {
	var obsDisp uint64
	hv := t.ops.Hash(v)
	i := int(hv) & t.mask
	start := i
	limit := i + len(t.cells)
	for {
		if i >= limit {
			if obs.Enabled {
				obs.RecordInsert(start, uint64(i-start), 0, 0, obsDisp)
			}
			return false, true
		}
		c := t.cells[i&t.mask]
		switch {
		case c == Empty:
			t.cells[i&t.mask] = v
			t.setCtrlSerial(i, t.ctrlByteFor(v))
			if obs.Enabled {
				obs.RecordInsert(start, uint64(i-start), 0, 0, obsDisp)
			}
			return true, false
		default:
			hc := t.ops.Hash(c)
			cmp := t.cmpPri(c, hc, v, hv)
			switch {
			case cmp == 0:
				if merged := t.ops.Merge(c, v); merged != c {
					t.cells[i&t.mask] = merged
				}
				if obs.Enabled {
					obs.RecordInsert(start, uint64(i-start), 0, 0, obsDisp)
				}
				return false, false
			case cmp > 0: // cell has higher priority; keep probing
				i++
			default: // v has higher priority; swap in, carry c forward
				t.cells[i&t.mask] = v
				t.setCtrlSerial(i, t.ctrlByteFor(v))
				v, hv = c, hc
				i++
				if obs.Enabled {
					obsDisp++
				}
			}
		}
	}
}

// findSerial is findFrom with plain loads of the ctrl words and cells;
// the SWAR scan and its verdict logic are identical (see findFrom for
// the soundness argument of skipping non-matching lanes).
//
//phasehash:serial owner-computes: the shard is exclusively owned for the whole bulk find phase, so no store can race these loads
func (t *CompactTable[O]) findSerial(v uint64) (uint64, bool) {
	hv := t.ops.Hash(v)
	fp := hashx.Fingerprint(hv)
	i := int(hv) & t.mask
	var obsWords, obsFalse uint64
	start := i
	patd := swarLSB * uint64(fp)
	limit := i + len(t.cells)
	for p := i; p < limit; p = p&^7 + 8 {
		base := p &^ 7
		w := t.ctrl[(base&t.mask)>>3]
		if obs.Enabled {
			obsWords++
		}
		stop := swarStop(w, patd)
		stop &= ^uint64(0) << (uint(p-base) * 8)
		for ; stop != 0; stop &= stop - 1 {
			l := bits.TrailingZeros64(stop) >> 3
			q := base + l
			b := byte(w >> (uint(l) * 8))
			if b != fp {
				// Empty, tombstone, or a strictly lower hash prefix: miss
				// (a tombstone shortens the very cluster being deleted
				// from; findSerial never runs concurrently with
				// deleteSerial under the phase discipline, so only the
				// empty/lower-prefix cases are live).
				if obs.Enabled {
					obs.RecordCompactFind(start, uint64(q-start), obsWords, obsFalse, false)
				}
				return Empty, false
			}
			c := t.cells[q&t.mask]
			hc := t.ops.Hash(c)
			if hc == hv {
				cmp := t.ops.Cmp(v, c)
				if cmp == 0 {
					if obs.Enabled {
						obs.RecordCompactFind(start, uint64(q-start), obsWords, obsFalse, true)
					}
					return c, true
				}
				if cmp > 0 {
					if obs.Enabled {
						obs.RecordCompactFind(start, uint64(q-start), obsWords, obsFalse+1, false)
					}
					return Empty, false
				}
			} else if hc < hv {
				if obs.Enabled {
					obs.RecordCompactFind(start, uint64(q-start), obsWords, obsFalse+1, false)
				}
				return Empty, false
			}
			if obs.Enabled {
				obsFalse++
			}
		}
	}
	// Full sweep without a verdict: the shard is saturated and v absent.
	if obs.Enabled {
		obs.RecordCompactFind(start, uint64(len(t.cells)), obsWords, obsFalse, false)
	}
	return Empty, false
}

// deleteSerial is WordTable.deleteSerial over the compact arrays: the
// direct hole-filling recursion, with the victim's ctrl byte holding
// ctrlTombstone while the replacement scan runs and the slot's final
// byte written together with its cell.
//
//phasehash:serial owner-computes: exclusive shard ownership removes the concurrent deletes the atomic version's re-scans exist to chase
func (t *CompactTable[O]) deleteSerial(v uint64) bool {
	var obsScan, obsRepl uint64
	hv := t.ops.Hash(v)
	home := int(hv) & t.mask
	k := home
	// Bounded like findSerial; see WordTable.deleteSerial for why the
	// post-sweep cell cannot match v.
	for k < home+len(t.cells) {
		c := t.cells[k&t.mask]
		if c == Empty || t.cmpPri(v, hv, c, t.ops.Hash(c)) >= 0 {
			break
		}
		k++
	}
	if obs.Enabled {
		obsScan = uint64(k - home)
	}
	for {
		c := t.cells[k&t.mask]
		if c == Empty || t.ops.Cmp(v, c) != 0 {
			if obs.Enabled {
				obs.RecordDelete(home, obsScan, obsRepl, 0)
			}
			return false
		}
		t.setCtrlSerial(k, ctrlTombstone)
		j, w := t.findReplacementSerial(k)
		t.cells[k&t.mask] = w
		t.setCtrlSerial(k, t.ctrlByteFor(w))
		if w == Empty {
			if obs.Enabled {
				obs.RecordDelete(home, obsScan, obsRepl, 0)
			}
			return true
		}
		if obs.Enabled {
			obsRepl++
		}
		// Two copies of w exist now; delete the original at j. The loop
		// re-enters with v = w already matching cells[j].
		v = w
		k = j
	}
}

// findReplacementSerial is WordTable.findReplacementSerial over the
// compact cells: the upward scan alone, stopping at the first eligible
// position.
//
//phasehash:serial owner-computes: only called from deleteSerial under the same exclusive shard ownership
func (t *CompactTable[O]) findReplacementSerial(i int) (int, uint64) {
	j := i
	for j < i+len(t.cells)-1 {
		j++
		w := t.cells[j&t.mask]
		if w == Empty || t.lift(t.ops.Hash(w)&uint64(t.mask), j) <= i {
			return j, w
		}
	}
	return j, Empty
}

// insertRangeSerial drives insertSerial over a contiguous run of
// elements (one shard's partition run). full returns the index within
// elems of a saturating element, or -1; reserved elements panic exactly
// as Insert does.
func (t *CompactTable[O]) insertRangeSerial(elems []uint64) (added, full int) {
	for i, v := range elems {
		if v == Empty {
			panic("core: CompactTable: cannot insert the reserved empty element")
		}
		a, f := t.insertSerial(v)
		if f {
			return added, i
		}
		if a {
			added++
		}
	}
	return added, -1
}

// tryInsertRangeSerial is insertRangeSerial with TryInsert semantics:
// every element is attempted (duplicate keys can still merge into a
// saturated shard), and the first error is reported.
func (t *CompactTable[O]) tryInsertRangeSerial(elems []uint64) (added int, err error) {
	for _, v := range elems {
		if v == Empty {
			if err == nil {
				err = reservedErr()
			}
			continue
		}
		a, f := t.insertSerial(v)
		if f {
			if err == nil {
				err = t.fullErr()
			}
			continue
		}
		if a {
			added++
		}
	}
	return added, err
}

// findRangeSerial counts how many of the keys are present; when dst is
// non-nil, dst[i] receives the stored element for keys[i] or Empty.
func (t *CompactTable[O]) findRangeSerial(keys, dst []uint64) int {
	n := 0
	for i, v := range keys {
		e, ok := t.findSerial(v)
		if ok {
			n++
		}
		if dst != nil {
			dst[i] = e
		}
	}
	return n
}

// deleteRangeSerial deletes every key of the run, returning how many
// were present.
func (t *CompactTable[O]) deleteRangeSerial(keys []uint64) int {
	n := 0
	for _, v := range keys {
		if t.deleteSerial(v) {
			n++
		}
	}
	return n
}
