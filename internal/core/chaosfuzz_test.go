package core

import (
	"testing"

	"phasehash/internal/chaos"
	"phasehash/internal/parallel"
)

// FuzzGrowTableChaos drives an insert phase with growth in flight while
// the chaos layer forces CAS retries and yields in the probe loops, then
// checks the two properties the paper's determinism argument rests on:
// the ordering invariant holds at quiescence, and the quiescent layout —
// hence Elements() — matches a sequential fault-free build of the same
// key set.
//
// Under the default build the chaos hooks are compiled away and this is
// a plain concurrent-growth fuzz target; run with `-tags chaos` (see
// `make chaos`) for the fault-injected schedules:
//
//	go test -tags chaos -fuzz FuzzGrowTableChaos ./internal/core
func FuzzGrowTableChaos(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint64(1), uint8(4))
	f.Add([]byte{9, 9, 9, 9, 200, 100, 50, 25, 12, 6, 3}, uint64(42), uint8(2))
	f.Add([]byte{255, 254, 253, 252, 251, 250}, uint64(7), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64, workers uint8) {
		prev := parallel.SetNumWorkers(int(workers%8) + 1)
		defer parallel.SetNumWorkers(prev)
		// Pressure the insert CAS sites hard; no-op without -tags chaos.
		chaos.Configure(chaos.Profile{
			Name:    "fuzz-casstorm",
			FailPm:  500,
			YieldPm: 200,
		}, seed)
		defer chaos.Disable()

		keys := make([]uint64, len(data))
		for i, b := range data {
			// Spread keys so modest inputs still trigger growth; never 0.
			keys[i] = uint64(b)*251 + uint64(i%7) + 1
		}
		g := NewGrowTable[SetOps](minGrowSize)
		parallel.ForGrain(len(keys), 1, func(i int) { g.Insert(keys[i]) })

		model := map[uint64]bool{}
		for _, k := range keys {
			model[k] = true
		}
		if n := g.Count(); n != len(model) {
			t.Fatalf("Count %d, model %d (trace %s)", n, len(model), chaos.TraceSummary())
		}
		if err := g.CheckInvariant(); err != nil {
			t.Fatalf("%v (trace %s)", err, chaos.TraceSummary())
		}

		// Deterministic layout: a sequential fault-free replay of the same
		// insert stream lands every key in the same cell.
		chaos.Disable()
		ref := NewGrowTable[SetOps](minGrowSize)
		for _, k := range keys {
			ref.Insert(k)
		}
		a, b := g.Snapshot(), ref.Snapshot()
		if len(a) != len(b) {
			t.Fatalf("final size %d differs from sequential build %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("layout differs from sequential build at cell %d: %#x vs %#x", i, a[i], b[i])
			}
		}
		got, want := g.Elements(), ref.Elements()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Elements[%d] = %#x, sequential build %#x", i, got[i], want[i])
			}
		}
	})
}
