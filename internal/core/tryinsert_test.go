package core

import (
	"errors"
	"strings"
	"testing"
)

// TestWordTryInsertFull fills a table completely and checks saturation
// degrades to ErrFull instead of a panic, with an actionable message.
func TestWordTryInsertFull(t *testing.T) {
	tab := NewWordTable[SetOps](8) // 8 cells; cell count == capacity
	for k := uint64(1); k <= 8; k++ {
		added, err := tab.TryInsert(k)
		if err != nil || !added {
			t.Fatalf("TryInsert(%d) = %v, %v", k, added, err)
		}
	}
	added, err := tab.TryInsert(100)
	if added || !errors.Is(err, ErrFull) {
		t.Fatalf("TryInsert on full table = %v, %v; want false, ErrFull", added, err)
	}
	for _, want := range []string{"size 8", "count 8", "load factor 1.000"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("ErrFull %q missing %q", err, want)
		}
	}
	// A duplicate of a present key still merges fine on a full table.
	if added, err := tab.TryInsert(3); added || err != nil {
		t.Fatalf("duplicate TryInsert on full table = %v, %v", added, err)
	}
	if n := tab.Count(); n != 8 {
		t.Fatalf("Count = %d after failed insert", n)
	}
}

func TestWordTryInsertReservedKey(t *testing.T) {
	tab := NewWordTable[SetOps](8)
	if _, err := tab.TryInsert(Empty); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("TryInsert(Empty) err = %v, want ErrReservedKey", err)
	}
}

// TestWordInsertFullPanicEnriched checks the panicking wrapper keeps
// panicking and that the message now carries count and load factor.
func TestWordInsertFullPanicEnriched(t *testing.T) {
	tab := NewWordTable[SetOps](4)
	for k := uint64(1); k <= 4; k++ {
		tab.Insert(k)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Insert on a full table did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		for _, want := range []string{"WordTable", "table full", "count 4", "load factor 1.000"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q missing %q", msg, want)
			}
		}
	}()
	tab.Insert(99)
}

func TestPtrTryInsertSentinels(t *testing.T) {
	tab := NewPtrTable[rec, recOps](4)
	if _, err := tab.TryInsert(nil); !errors.Is(err, ErrNilValue) {
		t.Fatalf("TryInsert(nil) err = %v, want ErrNilValue", err)
	}
	for k := uint64(1); k <= 4; k++ {
		if added, err := tab.TryInsert(&rec{key: k}); err != nil || !added {
			t.Fatalf("TryInsert(%d) = %v, %v", k, added, err)
		}
	}
	added, err := tab.TryInsert(&rec{key: 50})
	if added || !errors.Is(err, ErrFull) {
		t.Fatalf("TryInsert on full PtrTable = %v, %v; want false, ErrFull", added, err)
	}
	if !strings.Contains(err.Error(), "load factor 1.000") {
		t.Fatalf("PtrTable ErrFull %q missing load factor", err)
	}
}

func TestGrowTryInsertNeverFull(t *testing.T) {
	g := NewGrowTable[SetOps](minGrowSize)
	if _, err := g.TryInsert(Empty); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("TryInsert(Empty) err = %v, want ErrReservedKey", err)
	}
	// Push far past the initial capacity: growth absorbs it, no ErrFull.
	for k := uint64(1); k <= 10*minGrowSize; k++ {
		if _, err := g.TryInsert(k); err != nil {
			t.Fatalf("TryInsert(%d) err = %v", k, err)
		}
	}
	if n := g.Count(); n != 10*minGrowSize {
		t.Fatalf("Count = %d, want %d", n, 10*minGrowSize)
	}
}

// TestPhaseGuardExclusive covers the quiescent-only mode used by the
// checked wrappers' Clear.
func TestPhaseGuardExclusive(t *testing.T) {
	var g PhaseGuard
	// Exclusive entry fails while any phase is in flight.
	if err := g.Enter(PhaseInsert); err != nil {
		t.Fatal(err)
	}
	if err := g.EnterExclusive(); err == nil {
		t.Fatal("EnterExclusive succeeded during an insert phase")
	} else if !strings.Contains(err.Error(), "quiescent-only") {
		t.Fatalf("error %q does not say quiescent-only", err)
	}
	g.Exit(PhaseInsert)
	// Idle: exclusive entry succeeds and blocks everything else.
	if err := g.EnterExclusive(); err != nil {
		t.Fatal(err)
	}
	if err := g.Enter(PhaseRead); err == nil {
		t.Fatal("Enter succeeded during an exclusive operation")
	}
	if err := g.EnterExclusive(); err == nil {
		t.Fatal("second EnterExclusive succeeded concurrently")
	}
	g.Exit(PhaseExclusive)
	if err := g.Enter(PhaseDelete); err != nil {
		t.Fatalf("guard did not return to idle: %v", err)
	}
	g.Exit(PhaseDelete)
}
