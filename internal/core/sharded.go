package core

import (
	"fmt"

	"phasehash/internal/obs"
	"phasehash/internal/parallel"
	"phasehash/internal/tune"
)

// ShardedTable is a radix-partitioned variant of WordTable: 2^k
// independent WordTable shards, selected by the *top* bits of the
// element hash (the in-shard probe origin uses the bottom bits, so the
// two selections are independent). It targets the memory behaviour that
// makes the flat table's bulk phases memory-bound: random probe origins
// thrash cache and TLB across the whole backing array, and
// duplicate-heavy distributions pile CAS retries onto a few hot home
// cells.
//
// Two APIs coexist:
//
//   - The per-element phase-concurrent operations (Insert / TryInsert /
//     Find / Contains / Delete) route to the owning shard's atomic probe
//     loops. They carry exactly WordTable's phase discipline, chaos
//     sites, and lock-freedom; any number of goroutines may call them
//     within a phase.
//
//   - The bulk kernels (InsertAll / TryInsertAll / FindAll /
//     ContainsAll / DeleteAll) are owner-computes: a parallel.Partition
//     pass groups the operands by shard (a stable two-pass counting
//     sort), then each shard's contiguous run is applied by exactly one
//     worker using plain loads and stores (serialprobe.go) — no atomics
//     at all. Cross-worker conflicts are impossible by construction, so
//     contention on skewed distributions drops to zero, and each
//     shard's cells stay cache- and TLB-resident while its run streams.
//     A bulk kernel call must therefore be the *only* activity on the
//     table while it runs: unlike WordTable's bulk kernels, it may not
//     overlap even same-phase per-element calls. Treat each bulk call
//     as a whole phase of its own.
//
// Determinism is unchanged from WordTable: each shard's quiescent
// layout is a pure function of the element subset that hashes to it
// (history independence makes the serial replay land in the same cells
// as any concurrent schedule), so the concatenated layout — and
// Elements() — is a pure function of the element set, the capacity and
// the shard count. Note the shard count is part of that function: two
// tables with different shard counts store the same set in different
// (both deterministic) orders.
type ShardedTable[O Ops] struct {
	ops    O
	shards []*WordTable[O]
	shift  uint // shard index = Hash(e) >> shift
}

// minShardCells floors the per-shard capacity the automatic shard-count
// policy will create: below ~4K cells (32KB) the partition pass's two
// streaming passes cost more than the locality they buy. Mirrored by
// tune.MinShardCells, which owns the live policy.
const minShardCells = tune.MinShardCells

// maxAutoShards caps the automatic policy; per-worker histograms in the
// partition pass are O(shards), so unbounded shard counts turn the
// counting passes into the bottleneck. Mirrored by tune.MaxAutoShards.
const maxAutoShards = tune.MaxAutoShards

// NewShardedTable returns a sharded table with capacity for at least
// size elements in total, split over the given number of shards
// (rounded up to a power of two). shards <= 0 delegates to
// tune.Shards, fed by the always-on counter core's max-shard-imbalance
// gauge: with no skew observed (or under -tags nostats) it is exactly
// the legacy static policy — 4× the current parallel.NumWorkers(),
// clamped so every shard keeps at least minShardCells cells — and on
// observed heavy skew it falls to one shard per worker (extra shards
// cannot shorten a skew-bound critical path but still pay O(shards)
// partition histograms).
//
// Note the shard count is part of the table's deterministic layout
// function. The gauge is schedule-independent for a fixed multiset of
// prior bulk calls, so auto-sharded construction stays reproducible
// run-to-run; workloads that need bit-identical layouts across
// *different* operation histories should pass an explicit shard count
// (as the detres oracles do).
//
// Keys spread over shards multinomially, so per-shard load factors
// fluctuate around the average; size with the same headroom you would
// give a flat WordTable (load below ~0.9) and the fluctuation is
// absorbed. A shard that does saturate reports ErrFull exactly as a
// flat table would.
func NewShardedTable[O Ops](size, shards int) *ShardedTable[O] {
	if size < 1 {
		size = 1
	}
	if shards <= 0 {
		shards = tune.Shards(size, parallel.NumWorkers(), obs.CoreMaxShardImbalancePm())
	}
	s := 1
	k := uint(0)
	for s < shards {
		s <<= 1
		k++
	}
	per := (size + s - 1) / s
	t := &ShardedTable[O]{shards: make([]*WordTable[O], s), shift: 64 - k}
	for i := range t.shards {
		t.shards[i] = NewWordTable[O](per)
	}
	return t
}

// shardOf returns the index of the shard owning element e.
func (t *ShardedTable[O]) shardOf(e uint64) int {
	return int(t.ops.Hash(e) >> t.shift)
}

// NumShards returns the shard count (a power of two).
func (t *ShardedTable[O]) NumShards() int { return len(t.shards) }

// Size returns the total capacity (cells summed over shards).
func (t *ShardedTable[O]) Size() int { return len(t.shards) * t.shards[0].Size() }

// ShardSize returns the per-shard capacity in cells.
func (t *ShardedTable[O]) ShardSize() int { return t.shards[0].Size() }

// Bytes returns the backing-array footprint summed over shards.
func (t *ShardedTable[O]) Bytes() int { return len(t.shards) * t.shards[0].Bytes() }

// --- per-element phase-concurrent operations (atomic path) ---

// Insert adds element v via the owning shard's atomic probe loop
// (insert phase only); semantics as WordTable.Insert.
func (t *ShardedTable[O]) Insert(v uint64) bool {
	if v == Empty {
		panic("core: ShardedTable: cannot insert the reserved empty element")
	}
	return t.shards[t.shardOf(v)].Insert(v)
}

// TryInsert is Insert returning ErrReservedKey / ErrFull (matchable
// with errors.Is) instead of panicking.
func (t *ShardedTable[O]) TryInsert(v uint64) (bool, error) {
	if v == Empty {
		return false, reservedErr()
	}
	return t.shards[t.shardOf(v)].TryInsert(v)
}

// Find reports the element stored under v's key (find/elements phase
// only); semantics as WordTable.Find.
func (t *ShardedTable[O]) Find(v uint64) (uint64, bool) {
	return t.shards[t.shardOf(v)].Find(v)
}

// Contains is Find without returning the element.
func (t *ShardedTable[O]) Contains(v uint64) bool {
	_, ok := t.Find(v)
	return ok
}

// Delete removes the element with v's key (delete phase only);
// semantics as WordTable.Delete.
func (t *ShardedTable[O]) Delete(v uint64) bool {
	return t.shards[t.shardOf(v)].Delete(v)
}

// --- owner-computes bulk kernels ---

// partitionByShard radix-partitions elems into a fresh scratch slice
// grouped by owning shard, returning the scratch and the shard run
// offsets.
func (t *ShardedTable[O]) partitionByShard(elems []uint64) ([]uint64, []int) {
	scratch := make([]uint64, len(elems))
	offsets := parallel.Partition(scratch, elems, len(t.shards), func(i int) int {
		return t.shardOf(elems[i])
	})
	if obs.Enabled {
		obs.RecordShardBulk(offsets)
	}
	if obs.CoreEnabled {
		obs.CoreShardBulk(offsets)
	}
	return scratch, offsets
}

// InsertAll inserts every element of elems with the owner-computes
// kernel (insert phase; must not overlap ANY other operation on the
// table) and returns how many grew the element count — deterministic
// for a given element multiset. It panics on reserved or overflowing
// elements exactly as Insert does; use TryInsertAll where saturation
// must degrade gracefully.
func (t *ShardedTable[O]) InsertAll(elems []uint64) int {
	if len(elems) == 0 {
		return 0
	}
	scratch, offsets := t.partitionByShard(elems)
	added := make([]int, len(t.shards))
	parallel.ForGrain(len(t.shards), 1, func(s int) {
		sh := t.shards[s]
		a, full := sh.insertRangeSerial(scratch[offsets[s]:offsets[s+1]])
		if full >= 0 {
			panic(fmt.Sprintf("core: ShardedTable: shard %d: %v", s, sh.fullErr()))
		}
		added[s] = a
	})
	total := 0
	for _, a := range added {
		total += a
	}
	return total
}

// TryInsertAll is InsertAll returning errors instead of panicking: it
// attempts every element, returns the number that grew the count, and
// reports the error of the lowest-numbered failing shard when any
// failed (ErrReservedKey, ErrFull — matchable with errors.Is).
func (t *ShardedTable[O]) TryInsertAll(elems []uint64) (int, error) {
	if len(elems) == 0 {
		return 0, nil
	}
	scratch, offsets := t.partitionByShard(elems)
	added := make([]int, len(t.shards))
	errs := make([]error, len(t.shards))
	parallel.ForGrain(len(t.shards), 1, func(s int) {
		added[s], errs[s] = t.shards[s].tryInsertRangeSerial(scratch[offsets[s]:offsets[s+1]])
	})
	total := 0
	var firstErr error
	for s := range added {
		total += added[s]
		if firstErr == nil && errs[s] != nil {
			firstErr = errs[s]
		}
	}
	return total, firstErr
}

// FindAll looks up every key of keys with the owner-computes kernel
// (find/elements phase; must not overlap any other operation) and
// returns how many are present. When dst is non-nil it must have
// len(dst) >= len(keys); dst[i] receives the stored element for keys[i]
// or Empty when absent. A nil dst counts without writing.
func (t *ShardedTable[O]) FindAll(keys []uint64, dst []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	found := make([]int, len(t.shards))
	if dst == nil {
		scratch, offsets := t.partitionByShard(keys)
		parallel.ForGrain(len(t.shards), 1, func(s int) {
			found[s] = t.shards[s].findRangeSerial(scratch[offsets[s]:offsets[s+1]], nil)
		})
	} else {
		// Results must land in the caller's per-key slots, so partition
		// the index sequence instead of the keys and let each owner
		// gather its keys (and scatter its results) through the stable
		// permutation.
		perm, offsets := parallel.PartitionIndex(len(keys), len(t.shards), func(i int) int {
			return t.shardOf(keys[i])
		})
		if obs.Enabled {
			obs.RecordShardBulk(offsets)
		}
		if obs.CoreEnabled {
			obs.CoreShardBulk(offsets)
		}
		parallel.ForGrain(len(t.shards), 1, func(s int) {
			sh := t.shards[s]
			var coreSteps uint64
			n := 0
			for _, i := range perm[offsets[s]:offsets[s+1]] {
				e, ok, st := sh.findSerial(keys[i])
				coreSteps += uint64(st)
				if ok {
					n++
				}
				dst[i] = e
			}
			if obs.CoreEnabled && offsets[s+1] > offsets[s] {
				obs.CoreFind(s, uint64(offsets[s+1]-offsets[s]), coreSteps, uint64(n))
			}
			found[s] = n
		})
	}
	total := 0
	for _, n := range found {
		total += n
	}
	return total
}

// ContainsAll reports how many of the keys are present (find/elements
// phase; must not overlap any other operation).
func (t *ShardedTable[O]) ContainsAll(keys []uint64) int {
	return t.FindAll(keys, nil)
}

// DeleteAll deletes every key of keys with the owner-computes kernel
// (delete phase; must not overlap any other operation) and returns how
// many were removed — deterministic for a given key multiset.
func (t *ShardedTable[O]) DeleteAll(keys []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	scratch, offsets := t.partitionByShard(keys)
	deleted := make([]int, len(t.shards))
	parallel.ForGrain(len(t.shards), 1, func(s int) {
		deleted[s] = t.shards[s].deleteRangeSerial(scratch[offsets[s]:offsets[s+1]])
	})
	total := 0
	for _, n := range deleted {
		total += n
	}
	return total
}

// --- quiescent observations ---

// Count returns the number of stored elements (find/elements phase
// only): the sum of the shard counts.
func (t *ShardedTable[O]) Count() int {
	n := 0
	for _, sh := range t.shards {
		n += sh.Count()
	}
	return n
}

// ShardStats summarizes the element balance across shards at
// quiescence. It is always available (not gated on the obs build):
// computing it is a parallel Count per shard, paid only when asked.
type ShardStats struct {
	Shards int   // shard count
	Total  int   // stored elements summed over shards
	Min    int   // smallest shard's element count
	Max    int   // largest shard's element count
	Counts []int // per-shard element counts, in shard order
}

// Imbalance returns Max / mean — 1.0 is perfect balance, and the
// owner-computes kernels' critical path scales with it (the fullest
// shard is the longest run). Returns 0 for an empty table.
func (s ShardStats) Imbalance() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Max) * float64(s.Shards) / float64(s.Total)
}

// ShardStats computes the per-shard element counts and their spread
// (find/elements phase only; see ShardStats.Imbalance).
func (t *ShardedTable[O]) ShardStats() ShardStats {
	st := ShardStats{Shards: len(t.shards), Counts: make([]int, len(t.shards))}
	for s, sh := range t.shards {
		c := sh.Count()
		st.Counts[s] = c
		st.Total += c
		if s == 0 || c < st.Min {
			st.Min = c
		}
		if c > st.Max {
			st.Max = c
		}
	}
	return st
}

// Elements packs the stored elements into a fresh slice in shard order,
// each shard in its deterministic table order (find/elements phase
// only). For a given element set, capacity and shard count the result
// is identical across runs, schedules and worker counts.
func (t *ShardedTable[O]) Elements() []uint64 {
	counts := make([]int, len(t.shards))
	for s, sh := range t.shards {
		counts[s] = sh.Count()
	}
	offsets := make([]int, len(t.shards)+1)
	for s, c := range counts {
		offsets[s+1] = offsets[s] + c
	}
	out := make([]uint64, offsets[len(t.shards)])
	parallel.ForGrain(len(t.shards), 1, func(s int) {
		t.shards[s].ElementsInto(out[offsets[s]:offsets[s+1]])
	})
	return out
}

// ElementsInto is Elements packing into dst, which must have len(dst)
// >= Count(); it returns the number packed and panics (index out of
// range) when dst is shorter.
func (t *ShardedTable[O]) ElementsInto(dst []uint64) int {
	n := 0
	for _, sh := range t.shards {
		n += sh.ElementsInto(dst[n:])
	}
	return n
}

// ForEach calls fn for every stored element in shard-then-table order
// (sequential; find/elements phase only).
func (t *ShardedTable[O]) ForEach(fn func(e uint64)) {
	for _, sh := range t.shards {
		sh.ForEach(fn)
	}
}

// Clear resets every shard (a phase barrier by itself; quiescent use
// only).
func (t *ShardedTable[O]) Clear() {
	for _, sh := range t.shards {
		sh.Clear()
	}
}

// Snapshot concatenates the raw shard cell arrays (quiescent use only);
// the history-independence witness the detres oracle byte-compares.
func (t *ShardedTable[O]) Snapshot() []uint64 {
	out := make([]uint64, 0, t.Size())
	for _, sh := range t.shards {
		out = append(out, sh.Snapshot()...)
	}
	return out
}

// CheckInvariant verifies the ordering invariant shard by shard and
// that every element lives in its owning shard (quiescent use only).
func (t *ShardedTable[O]) CheckInvariant() error {
	for s, sh := range t.shards {
		if err := sh.CheckInvariant(); err != nil {
			return err
		}
		var bad error
		sh.ForEach(func(e uint64) {
			if bad == nil && t.shardOf(e) != s {
				bad = fmt.Errorf("core: ShardedTable: element %#x stored in shard %d, owned by shard %d",
					e, s, t.shardOf(e))
			}
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}
