package core

import "testing"

// These tests pin probe termination on a *saturated* table. With no
// Empty cell left, find and the delete victim scan can only terminate
// via the priority order or the whole-array sweep bound; an absent key
// of lower priority than everything in its probe path historically spun
// forever (the bound existed only on the insert path, where it is how
// ErrFull is detected). The epoch server's ErrFull attribution pass
// runs FindAll on exactly such a table, so this is load-bearing for
// graceful saturation, not a corner case.

// fillWordTable saturates the table with distinct large elements,
// returning the stored set. SetOps priority is numeric, so afterwards
// any small key (e.g. 1) is absent AND outranked by every stored
// element: its probe meets no stopping condition on the full table
// other than the sweep bound.
func fillWordTable(t *testing.T, wt *WordTable[SetOps]) []uint64 {
	t.Helper()
	var stored []uint64
	for v := uint64(1_000_000); wt.Count() < wt.Size(); v++ {
		if added, err := wt.TryInsert(v); err == nil && added {
			stored = append(stored, v)
		}
		if v > 1_000_000+uint64(wt.Size())*1000 {
			t.Fatal("could not saturate table")
		}
	}
	return stored
}

// absentLowKey is absent from any table built by fillWordTable and has
// lower priority than everything stored there.
const absentLowKey = uint64(1)

func TestSaturatedFindTerminates(t *testing.T) {
	wt := NewWordTable[SetOps](64)
	stored := fillWordTable(t, wt)
	absent := absentLowKey

	if _, ok := wt.Find(absent); ok {
		t.Fatalf("absent key %#x reported present", absent)
	}
	if e, ok, _ := wt.findSerial(absent); ok || e != Empty {
		t.Fatalf("findSerial(absent %#x) = %#x, %v", absent, e, ok)
	}
	for _, v := range stored {
		if _, ok := wt.Find(v); !ok {
			t.Fatalf("stored key %#x lost", v)
		}
	}
}

func TestSaturatedDeleteTerminates(t *testing.T) {
	wt := NewWordTable[SetOps](64)
	stored := fillWordTable(t, wt)
	absent := absentLowKey

	if wt.Delete(absent) {
		t.Fatalf("deleting absent key %#x reported success", absent)
	}
	if d, _ := wt.deleteSerial(absent); d {
		t.Fatalf("deleteSerial(absent %#x) reported success", absent)
	}
	if got := wt.Count(); got != wt.Size() {
		t.Fatalf("Count = %d after no-op deletes, want %d", got, wt.Size())
	}
	// Deleting real elements from the saturated table must work too and
	// leave the canonical layout behind.
	if !wt.Delete(stored[len(stored)/2]) {
		t.Fatal("deleting a stored key from a full table failed")
	}
	if d, _ := wt.deleteSerial(stored[0]); !d {
		t.Fatal("deleteSerial of a stored key from a full table failed")
	}
	if err := wt.CheckInvariant(); err != nil {
		t.Fatalf("invariant after saturated deletes: %v", err)
	}
	if got := wt.Count(); got != wt.Size()-2 {
		t.Fatalf("Count = %d, want %d", got, wt.Size()-2)
	}
}

func TestSaturatedShardedFindAll(t *testing.T) {
	st := NewShardedTable[SetOps](16, 1)
	keys := make([]uint64, 0, 256)
	for v := uint64(1); v <= 256; v++ {
		keys = append(keys, v)
	}
	if _, err := st.TryInsertAll(keys); err == nil {
		t.Fatal("256 inserts into 16 cells did not report saturation")
	}
	// The attribution pattern: FindAll over every attempted key on the
	// now-saturated table must terminate and agree with Count.
	dst := make([]uint64, len(keys))
	found := st.FindAll(keys, dst)
	if found != st.Count() {
		t.Fatalf("FindAll found %d, Count %d", found, st.Count())
	}
	landed := 0
	for i, v := range dst {
		if v != Empty {
			landed++
			if v != keys[i] {
				t.Fatalf("dst[%d] = %#x, want %#x", i, v, keys[i])
			}
		}
	}
	if landed != found {
		t.Fatalf("dst has %d non-empty slots, FindAll reported %d", landed, found)
	}
}
