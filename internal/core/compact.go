package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"phasehash/internal/chaos"
	"phasehash/internal/hashx"
	"phasehash/internal/obs"
	"phasehash/internal/parallel"
)

// CompactTable is the space-efficient variant of WordTable
// (linearHash-D-compact): deterministic priority-ordered linear probing
// over one-word elements, plus a separate *control array* of one byte
// per slot — bit 7 set plus the 7-bit fingerprint of the stored
// element's hash for a full slot, zero for an empty one — scanned eight
// slots per 64-bit load with portable SWAR masking.
//
// Where WordTable keys its displacement priority on the raw element
// order (ops.Cmp), CompactTable keys it on the *full hash*, numeric
// order, with ops.Cmp breaking exact hash ties (cmpPri). That choice is
// what makes the control array a probe accelerator rather than just a
// presence filter: the fingerprint is the hash's top seven bits
// (hashx.Fingerprint), so unsigned byte order on full-slot ctrl bytes
// coarsely mirrors the priority order along every probe cluster, which
// descends. One SWAR expression per ctrl word (swarStop) flags the
// lanes whose byte is <= the probe's own fingerprint — exactly the
// slots that can end the probe:
//
//   - a lane *below* the pattern is an empty slot, a transient
//     tombstone, or a full slot with a strictly smaller hash prefix;
//     all three prove the key absent under the descending-priority
//     invariant, with no cell load at all. A uniform miss therefore
//     resolves in ~one ctrl word: the expected number of higher-or-tie
//     lanes skipped before a sub-pattern lane is ~1 even at load 0.9.
//   - a lane *equal* to the pattern is a candidate: load the cell,
//     compare full hashes (then keys on a tie) to get hit / miss /
//     keep-scanning. Ties are 1-in-2^(7-k) per full lane under a
//     2^k-shard radix, so hits touch the cell array about once.
//
// The table stays fast at load factor ~0.9 because the extra probe
// steps of a long cluster cost ctrl *bytes*, not cell words: 9
// bytes/slot at load 0.9 is 10 bytes/element, versus the flat table's
// 16 at load 0.5 (and 32 at the benchmarks' standard 4x-capacity
// sizing).
//
// Determinism: the cells obey WordTable's insert/delete discipline with
// cmpPri as the total priority order (total because ops.Cmp breaks hash
// ties, and equal keys hash equally), so the quiescent cell layout is
// history-independent by exactly WordTable's argument — a function of
// the element set and capacity only, though *not* byte-identical to
// WordTable's layout, which sorts clusters by a different order. The
// ctrl array adds no history of its own because each quiescent ctrl
// byte is a pure function of its cell: Fingerprint(Hash(cell)) or zero
// (see syncCtrl for why every schedule converges there, and
// hashx.Fingerprint for why the fingerprint bits are disjoint from the
// home-bucket and shard-radix bits). The detres oracle pins
// (cells ++ ctrl) byte-identity across its seed × worker ×
// chaos-profile grid, with a serial rebuild as the reference layout.
//
// The write paths never *read* the control array — inserts and deletes
// compare priorities via cells and Hash alone. This is load-bearing for
// determinism, not just simplicity: mid-phase, ctrl bytes lag their
// cells (syncCtrl repairs them asynchronously), so any write-path
// decision taken on a ctrl byte could observe a stale value and steer
// displacement by schedule history.
//
// Phase discipline, lock-freedom and the reserved Empty element are as
// WordTable. The zero value is not usable; construct with
// NewCompactTable.
type CompactTable[O Ops] struct {
	ops   O
	cells []uint64
	ctrl  []uint64 // len(cells)/8 packed ctrl bytes, little-endian lanes
	mask  int      // len(cells)-1; len is a power of two >= 8
}

// Ctrl byte encoding. A slot's byte is ctrlEmpty when its cell is
// Empty, the element's fingerprint (bit 7 set: [0x80, 0xFF]) when full,
// and ctrlTombstone *transiently* inside the serial owner-computes
// delete while the victim's replacement is being located — never at
// quiescence (CheckInvariant rejects it), and never on the atomic
// path, whose delete publishes only final bytes. Both non-full states
// keep bit 7 clear, so they compare below every fingerprint and read
// as stop lanes to the SWAR scan; no find runs concurrently with a
// delete under the phase discipline, so the tombstone's real job is
// making a mid-phase crash or invariant dump show exactly which slot
// was being vacated.
const (
	ctrlEmpty     byte = 0x00
	ctrlTombstone byte = 0x01
)

// NewCompactTable returns a compact table with size rounded up to the
// next power of two m cells (at least 8, so the control array is a
// whole number of words). Capacity semantics are NewWordTable's: up to
// m elements, with a further absent-key insert failing with ErrFull
// (Insert panics, TryInsert returns it). The compact layout is designed
// to run at load factors up to ~0.9: size with ~10% headroom where
// WordTable needs ~2x.
func NewCompactTable[O Ops](size int) *CompactTable[O] {
	m := 8
	for m < size {
		m <<= 1
	}
	return &CompactTable[O]{
		cells: make([]uint64, m),
		ctrl:  make([]uint64, m/8),
		mask:  m - 1,
	}
}

// Size returns the capacity (number of cells) of the table.
func (t *CompactTable[O]) Size() int { return len(t.cells) }

// Bytes returns the backing memory of the table: 8 bytes per cell plus
// 1 ctrl byte per slot (9 bytes/slot total). The bench harness divides
// it by Count() for the bytes/element comparison against WordTable.
func (t *CompactTable[O]) Bytes() int { return len(t.cells)*8 + len(t.ctrl)*8 }

// load atomically reads the cell at unnormalized position p.
func (t *CompactTable[O]) load(p int) uint64 {
	return atomic.LoadUint64(&t.cells[p&t.mask])
}

// cas CASes the cell at unnormalized position p.
func (t *CompactTable[O]) cas(p int, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[p&t.mask], old, new)
}

// lift is WordTable.lift: map the hash of the element stored at
// unnormalized position p into p's frame.
func (t *CompactTable[O]) lift(h uint64, p int) int {
	return p - ((p - int(h)) & t.mask)
}

// home returns the (normalized) probe origin of element e.
func (t *CompactTable[O]) home(e uint64) int {
	return int(t.ops.Hash(e)) & t.mask
}

// cmpPri is the compact table's displacement priority order: full
// hashes first, numerically, with ops.Cmp breaking exact 64-bit ties.
// It is total because ops.Cmp is total on keys and equal keys hash
// equally; it is consistent with key equality because cmpPri == 0
// forces ops.Cmp == 0. Callers pass the hashes they already hold (ha =
// Hash(a), hb = Hash(b)) — every probe loop has them in hand for the
// home bucket anyway. The fingerprint is the top-seven-bit prefix of
// this key, which is what lets findFrom compare priorities in the ctrl
// word without loading cells.
func (t *CompactTable[O]) cmpPri(a uint64, ha uint64, b uint64, hb uint64) int {
	switch {
	case ha < hb:
		return -1
	case ha > hb:
		return 1
	default:
		return t.ops.Cmp(a, b)
	}
}

// ctrlByteFor derives the quiescent ctrl encoding of cell value c —
// the pure function the control array converges to.
func (t *CompactTable[O]) ctrlByteFor(c uint64) byte {
	if c == Empty {
		return ctrlEmpty
	}
	return hashx.Fingerprint(t.ops.Hash(c))
}

// loadCtrlWord atomically reads the ctrl word covering unnormalized
// position p (p's low three bits select a lane within it).
func (t *CompactTable[O]) loadCtrlWord(p int) uint64 {
	return atomic.LoadUint64(&t.ctrl[(p&t.mask)>>3])
}

// SWAR lane masks (the classic "determine if a word has a zero byte"
// bit trick, generalized to any byte by XOR).
const (
	swarLSB uint64 = 0x0101010101010101
	swarMSB uint64 = 0x8080808080808080
)

// swarStop returns a mask with bit 7 set in *exactly* the lanes of w
// whose byte is <= the probe's fingerprint — the stop lanes of the
// priority scan. patd is swarLSB * uint64(fp), hoisted by the caller;
// fp must have bit 7 set (a full-slot fingerprint).
//
// Why it is exact, per lane: MSB-clear lanes (empty, tombstone) are
// flagged by ^w & swarMSB directly. For the rest, w &^ swarMSB holds
// each lane's low seven bits, a value <= 0x7F, while each patd lane is
// fp >= 0x80 — so the per-lane subtraction patd - (w &^ swarMSB) can
// never go negative and therefore never borrows across a lane
// boundary. Its lane MSB is set iff fp - low7 >= 0x80, i.e. iff low7
// <= low7(fp); ANDing with w restricts that to MSB-set lanes, giving
// "full and byte <= fp". No false positives in either direction —
// FuzzCtrlScan pins exact equality against a byte-at-a-time oracle.
func swarStop(w, patd uint64) uint64 {
	return (^w | (patd-(w&^swarMSB))&w) & swarMSB
}

// syncCtrl converges the ctrl byte of position p onto the encoding of
// p's current cell. It is called after every successful cell CAS on
// the atomic insert/delete paths (claim, displace, delete-replacement;
// merges keep the fingerprint — equal keys hash equally — so they skip
// it) and is the entire history-independence argument for the control
// array:
//
// The loop exits only on *observed consistency* — a ctrl byte equal to
// the derived encoding of a cell value that is unchanged when re-read
// after the ctrl read. Publishing a byte does not exit; only the
// validated re-read does. So when a phase quiesces, the last syncCtrl
// to touch each slot has observed ctrl[p] == ctrlByteFor(cells[p]) with
// the final cell value, and any intermediate stale publication (two
// inserts racing on one word, a displacement chain rewriting a slot
// twice) was repaired by whichever syncer observed it. The quiescent
// ctrl array is therefore a pure function of the quiescent cell array,
// which is history-independent by WordTable's argument — no schedule
// leaves a trace.
//
// Progress: a failed publication CAS means another syncer changed the
// word (lock-free, not wait-free — the standard bound for the table's
// CAS loops); cell values change finitely often per phase, after which
// every racing syncer's derived byte agrees and the first successful
// publication satisfies all of them.
func (t *CompactTable[O]) syncCtrl(p int) {
	s := p & t.mask
	w := s >> 3
	sh := uint(s&7) * 8
	lane := uint64(0xFF) << sh
	for {
		c := atomic.LoadUint64(&t.cells[s])
		want := uint64(t.ctrlByteFor(c)) << sh
		old := atomic.LoadUint64(&t.ctrl[w])
		if old&lane == want && atomic.LoadUint64(&t.cells[s]) == c {
			return
		}
		if chaos.Enabled && chaos.FailCAS(chaos.SiteCompactCtrlCAS) {
			continue // pretend the publication CAS lost; pure retry
		}
		atomic.CompareAndSwapUint64(&t.ctrl[w], old, old&^lane|want)
		// Loop regardless of the CAS outcome: exit only through the
		// validated read above.
	}
}

// Insert adds element v to the table (insert phase only); semantics
// exactly as WordTable.Insert. It panics on the reserved empty element
// and on a completely full table; use TryInsert where
// saturation must degrade gracefully.
func (t *CompactTable[O]) Insert(v uint64) bool {
	if v == Empty {
		panic("core: CompactTable: cannot insert the reserved empty element")
	}
	h := t.ops.Hash(v)
	added, full := t.insertLoopFrom(v, h, int(h)&t.mask)
	if full {
		panic("core: CompactTable: " + t.fullErr().Error())
	}
	return added
}

// TryInsert is Insert returning errors instead of panicking:
// ErrReservedKey for the reserved empty element and ErrFull when the
// probe sequence sweeps the whole backing array. Both satisfy
// errors.Is against the package sentinels.
func (t *CompactTable[O]) TryInsert(v uint64) (bool, error) {
	if v == Empty {
		return false, reservedErr()
	}
	h := t.ops.Hash(v)
	added, full := t.insertLoopFrom(v, h, int(h)&t.mask)
	if full {
		return false, t.fullErr()
	}
	return added, nil
}

// insertLoopFrom is WordTable.insertLoopFrom — the same Figure 1 INSERT
// probe/CAS discipline over the cells, with cmpPri as the priority
// order (hv = Hash(v) rides along; each contested slot's hash is
// computed once per examination) — plus a syncCtrl after every CAS that
// changes a slot's occupancy or fingerprint (claim, displace). Merges
// resolve equal keys, and equal keys have equal hashes, so the
// fingerprint is unchanged and no sync is needed. Inserts do not
// consult the ctrl array at all — see the type comment: mid-phase ctrl
// bytes can lag their cells, and a probe decision taken on a stale byte
// would make the layout schedule-dependent.
func (t *CompactTable[O]) insertLoopFrom(v uint64, hv uint64, i int) (added, full bool) {
	var obsCAS, obsFail, obsDisp uint64
	start := i
	limit := i + len(t.cells)
	for {
		if chaos.Enabled {
			chaos.Yield(chaos.SiteCompactInsertProbe)
		}
		if i >= limit {
			if obs.Enabled {
				obs.RecordInsert(start, uint64(i-start), obsCAS, obsFail, obsDisp)
			}
			return false, true
		}
		c := t.load(i)
		if c == Empty {
			if chaos.Enabled && chaos.FailCAS(chaos.SiteCompactInsertClaim) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue // pretend the CAS lost; re-read the cell
			}
			if t.cas(i, Empty, v) {
				t.syncCtrl(i)
				if obs.Enabled {
					obs.RecordInsert(start, uint64(i-start), obsCAS+1, obsFail, obsDisp)
				}
				return true, false
			}
			if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
			continue // re-read the cell
		}
		hc := t.ops.Hash(c)
		cmp := t.cmpPri(c, hc, v, hv)
		switch {
		case cmp == 0:
			merged := t.ops.Merge(c, v)
			if chaos.Enabled && merged != c && chaos.FailCAS(chaos.SiteCompactInsertMerge) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue
			}
			if merged == c || t.cas(i, c, merged) {
				if obs.Enabled {
					if merged != c {
						obsCAS++
					}
					obs.RecordInsert(start, uint64(i-start), obsCAS, obsFail, obsDisp)
				}
				return false, false
			}
			if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
		case cmp > 0: // cell has higher priority; keep probing
			i++
		default: // v has higher priority; swap in and carry c forward
			if chaos.Enabled && chaos.FailCAS(chaos.SiteCompactInsertDisplace) {
				if obs.Enabled {
					obsCAS, obsFail = obsCAS+1, obsFail+1
				}
				continue
			}
			if t.cas(i, c, v) {
				t.syncCtrl(i)
				if obs.Enabled {
					obsCAS, obsDisp = obsCAS+1, obsDisp+1
				}
				v, hv = c, hc
				i++
			} else if obs.Enabled {
				obsCAS, obsFail = obsCAS+1, obsFail+1
			}
		}
	}
}

// fullErr builds the ErrFull report for a saturated table; see
// WordTable.fullErr for the snapshot caveat.
func (t *CompactTable[O]) fullErr() error {
	return fullTableErr(len(t.cells), t.CountAtomic())
}

// Find reports the element stored under v's key (find/elements phase
// only; also safe during quiescence); semantics as WordTable.Find, via
// the SWAR priority scan of the control array.
func (t *CompactTable[O]) Find(v uint64) (uint64, bool) {
	h := t.ops.Hash(v)
	return t.findFrom(v, h, int(h)&t.mask, hashx.Fingerprint(h))
}

// findFrom is Find starting from a pre-computed hash hv, probe origin i
// (= hv reduced) and fingerprint fp. The scan walks ctrl *words*: each
// 64-bit load covers eight slots, and swarStop flags exactly the lanes
// whose byte is <= fp. Lanes above fp hold strictly-higher-priority
// cells — legal prefix of v's probe cluster, skipped wholesale without
// touching the cell array. The first stop lane decides:
//
//   - byte < fp: an empty slot ends v's cluster, and a full slot's
//     fingerprint below fp proves Hash(cell) < hv — under the
//     descending cmpPri invariant, v cannot live at or past this slot.
//     Either way, miss, with zero cell loads. (A transient tombstone
//     cannot be seen here: finds share a phase with no deletes.)
//   - byte == fp: a candidate. Load the cell and compare full hashes:
//     hc > hv keeps scanning (still in the higher-priority prefix),
//     hc < hv is a miss by the same ordering argument, and on hc == hv
//     ops.Cmp settles it — 0 is the hit, > 0 a miss (v would precede
//     c), < 0 keeps scanning. Equal bytes are 1-in-128 per full lane
//     scanned, so misses almost never load a cell and hits load ~one.
//
// This is WordTable.findFrom's verdict logic with the priority test
// lifted into the control bytes: the fingerprint IS the priority key's
// top seven bits, so the byte comparison is the first seven bits of the
// cmpPri comparison. The whole-array sweep bound matters on a saturated
// table, as in WordTable; the final word's lanes past the bound
// re-examine slots the sweep already covered and can produce no verdict
// the earlier examination did not.
//
// The fingerprint's SWAR pattern (swarLSB*fp) is hoisted out of the
// word loop; the below-origin lane mask is a shift by zero for every
// word after the first, which costs less than guarding it with a
// branch.
func (t *CompactTable[O]) findFrom(v uint64, hv uint64, i int, fp byte) (uint64, bool) {
	var obsWords, obsFalse uint64
	start := i
	patd := swarLSB * uint64(fp)
	limit := i + len(t.cells)
	for p := i; p < limit; p = p&^7 + 8 {
		base := p &^ 7
		w := t.loadCtrlWord(base)
		if obs.Enabled {
			obsWords++
		}
		stop := swarStop(w, patd)
		// Mask off lanes before the probe origin in the first word (flag
		// bits sit at lane*8+7, so clearing everything below lane*8 is
		// enough).
		stop &= ^uint64(0) << (uint(p-base) * 8)
		for ; stop != 0; stop &= stop - 1 {
			l := bits.TrailingZeros64(stop) >> 3
			b := byte(w >> (uint(l) * 8))
			if b != fp {
				// Empty slot or a strictly lower hash prefix: miss, no cell
				// load.
				if obs.Enabled {
					obs.RecordCompactFind(start, uint64(base+l-start), obsWords, obsFalse, false)
				}
				return Empty, false
			}
			c := t.load(base + l)
			hc := t.ops.Hash(c)
			if hc == hv {
				cmp := t.ops.Cmp(v, c)
				if cmp == 0 {
					if obs.Enabled {
						obs.RecordCompactFind(start, uint64(base+l-start), obsWords, obsFalse, true)
					}
					return c, true
				}
				if cmp > 0 {
					if obs.Enabled {
						obs.RecordCompactFind(start, uint64(base+l-start), obsWords, obsFalse+1, false)
					}
					return Empty, false
				}
			} else if hc < hv {
				if obs.Enabled {
					obs.RecordCompactFind(start, uint64(base+l-start), obsWords, obsFalse+1, false)
				}
				return Empty, false
			}
			// hc > hv (or a tie with c of higher key priority): still in
			// the higher-priority prefix under a colliding fingerprint;
			// keep scanning.
			if obs.Enabled {
				obsFalse++
			}
		}
	}
	// Full sweep without a verdict: the table is saturated and v absent.
	if obs.Enabled {
		obs.RecordCompactFind(start, uint64(len(t.cells)), obsWords, obsFalse, false)
	}
	return Empty, false
}

// Contains is Find without returning the element.
func (t *CompactTable[O]) Contains(v uint64) bool {
	_, ok := t.Find(v)
	return ok
}

// Delete removes the element with v's key (delete phase only);
// semantics exactly as WordTable.Delete. The probe and replacement
// scans read cells, not ctrl — the back-shift walk needs every cell's
// hash anyway — and each successful replacement CAS publishes the
// slot's new ctrl byte through syncCtrl, so the atomic path never
// exposes a tombstone: the byte goes straight from the old fingerprint
// to the replacement's (or to empty when the cluster ends).
func (t *CompactTable[O]) Delete(v uint64) bool {
	h := t.ops.Hash(v)
	return t.deleteFrom(v, h, int(h)&t.mask)
}

// deleteFrom is WordTable.deleteFrom over the compact cells with cmpPri
// as the priority order, plus ctrl publication; see findReplacement
// there for the two-pass scan's correctness argument.
func (t *CompactTable[O]) deleteFrom(v uint64, hv uint64, i int) bool {
	var obsScan, obsRepl, obsFail uint64
	home := i
	k := i
	for k < home+len(t.cells) {
		c := t.load(k)
		if c == Empty || t.cmpPri(v, hv, c, t.ops.Hash(c)) >= 0 {
			break
		}
		k++
	}
	if obs.Enabled {
		obsScan = uint64(k - home)
	}
	deleted := false
	for k >= i {
		if chaos.Enabled {
			// Yield only: a forced CAS failure here would be read as "a
			// concurrent delete removed the victim", changing semantics.
			chaos.Yield(chaos.SiteCompactDeleteProbe)
		}
		c := t.load(k)
		if c == Empty || t.ops.Cmp(v, c) != 0 {
			k--
			continue
		}
		j, w := t.findReplacement(k)
		if t.cas(k, c, w) {
			t.syncCtrl(k)
			deleted = true
			if w == Empty {
				if obs.Enabled {
					obs.RecordDelete(home, obsScan, obsRepl, obsFail)
				}
				return true
			}
			if obs.Enabled {
				obsRepl++
			}
			// There are now two copies of w; we own deleting one.
			v = w
			hv = t.ops.Hash(w)
			k = j
			i = t.lift(hv&uint64(t.mask), j)
		} else {
			// v was deleted or moved down by a concurrent delete.
			if obs.Enabled {
				obsFail++
			}
			k--
		}
	}
	if obs.Enabled {
		obs.RecordDelete(home, obsScan, obsRepl, obsFail)
	}
	return deleted
}

// findReplacement is WordTable.findReplacement verbatim: the upward
// stopping-point scan plus the downward re-read, both over cells.
func (t *CompactTable[O]) findReplacement(i int) (int, uint64) {
	j := i
	var w uint64
	for {
		if chaos.Enabled {
			chaos.Yield(chaos.SiteCompactDeleteProbe)
		}
		j++
		if j > i+len(t.cells)-1 {
			w = Empty
			break
		}
		w = t.load(j)
		if w == Empty || t.lift(t.ops.Hash(w)&uint64(t.mask), j) <= i {
			break
		}
	}
	for k := j - 1; k > i; k-- {
		w2 := t.load(k)
		if w2 == Empty || t.lift(t.ops.Hash(w2)&uint64(t.mask), k) <= i {
			w = w2
			j = k
		}
	}
	return j, w
}

// Elements packs the non-empty cells into a fresh slice in table order
// (find/elements phase only); deterministic as WordTable.Elements — a
// pure function of the element set and capacity, though ordered by the
// compact table's own hash-keyed layout, not WordTable's.
//
//phasehash:serial find/elements phase: the phase discipline guarantees no insert or delete is in flight, so the cells are quiescent under the plain reads
func (t *CompactTable[O]) Elements() []uint64 {
	return parallel.Pack(t.cells, func(i int) bool { return t.cells[i] != Empty })
}

// ElementsInto packs the non-empty cells into dst and returns the
// number packed; the contract is on dst's *length* (>= Count()), as
// WordTable.ElementsInto.
//
//phasehash:serial find/elements phase: the phase discipline guarantees no insert or delete is in flight, so the cells are quiescent under the plain reads
func (t *CompactTable[O]) ElementsInto(dst []uint64) int {
	return parallel.PackInto(dst, t.cells, func(i int) bool { return t.cells[i] != Empty })
}

// Count returns the number of elements currently stored (parallel
// scan; find/elements phase only).
//
//phasehash:serial find/elements phase: no writer is in flight; CountAtomic is the cross-phase variant
func (t *CompactTable[O]) Count() int {
	return parallel.Count(len(t.cells), func(i int) bool { return t.cells[i] != Empty })
}

// CountAtomic is Count with atomic cell reads: safe mid-phase (a racy
// snapshot; used by fullErr's saturation report).
func (t *CompactTable[O]) CountAtomic() int {
	return parallel.Reduce(len(t.cells), 0,
		func(a, b int) int { return a + b },
		func(i int) int {
			if atomic.LoadUint64(&t.cells[i]) != Empty {
				return 1
			}
			return 0
		})
}

// ForEach calls fn for every stored element in table order (sequential;
// find/elements phase only).
//
//phasehash:serial find/elements phase: no writer is in flight during the sequential scan
func (t *CompactTable[O]) ForEach(fn func(e uint64)) {
	for _, c := range t.cells {
		if c != Empty {
			fn(c)
		}
	}
}

// Clear resets every cell and ctrl byte (a phase barrier by itself:
// callers must not run it concurrently with anything).
//
//phasehash:serial quiescent: Clear is itself a phase barrier; nothing runs concurrently with it by contract
func (t *CompactTable[O]) Clear() {
	parallel.For(len(t.cells), func(i int) { t.cells[i] = Empty })
	parallel.For(len(t.ctrl), func(i int) { t.ctrl[i] = 0 })
}

// CheckInvariant verifies WordTable's ordering invariant over the
// cells AND the control-array invariant: every ctrl byte equals the
// derived encoding of its cell — in particular no tombstone and no
// stale fingerprint survives to quiescence. Quiescent use only;
// exported for tests and the fuzzing harness.
//
//phasehash:serial quiescent use only: invariant checks run between phases with no operation in flight
func (t *CompactTable[O]) CheckInvariant() error {
	m := len(t.cells)
	for j := 0; j < m; j++ {
		e := t.cells[j]
		if want, got := t.ctrlByteFor(e), byte(t.ctrl[j>>3]>>(uint(j&7)*8)); got != want {
			return fmt.Errorf("core: CompactTable: ctrl[%d] = %#x, want %#x for cell %#x", j, got, want, e)
		}
		if e == Empty {
			continue
		}
		he := t.ops.Hash(e)
		h := int(he) & t.mask
		dist := (j - h) & t.mask
		for d := 1; d <= dist; d++ {
			k := (h + d - 1) & t.mask
			c := t.cells[k]
			if c == Empty {
				return fmt.Errorf("core: hole at %d inside probe path of %#x (home %d, at %d)", k, e, h, j)
			}
			if t.cmpPri(c, t.ops.Hash(c), e, he) < 0 {
				return fmt.Errorf("core: priority inversion: cell %d holds %#x with lower priority than %#x at %d (home %d)", k, c, e, j, h)
			}
		}
	}
	return nil
}

// Snapshot copies the raw cell array (quiescent use only); CtrlSnapshot
// exposes the control words. The detres oracle byte-compares both.
//
//phasehash:serial quiescent use only: layout snapshots are taken between phases
func (t *CompactTable[O]) Snapshot() []uint64 {
	out := make([]uint64, len(t.cells))
	copy(out, t.cells)
	return out
}

// CtrlSnapshot copies the raw control words (quiescent use only).
//
//phasehash:serial quiescent use only: layout snapshots are taken between phases
func (t *CompactTable[O]) CtrlSnapshot() []uint64 {
	out := make([]uint64, len(t.ctrl))
	copy(out, t.ctrl)
	return out
}
