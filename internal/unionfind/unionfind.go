// Package unionfind provides a union-find (disjoint set) structure
// usable from deterministic-reservations algorithms: Find is safe to call
// concurrently (lock-free, with path halving), while Link is restricted
// to commit phases where each root is linked by at most one winner — the
// discipline the spanning-forest application establishes with WriteMin
// reservations.
package unionfind

import "sync/atomic"

// UF is a union-find over vertices [0, n).
type UF struct {
	parent []int32
}

// New returns a union-find with every vertex its own root.
func New(n int) *UF {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &UF{parent: p}
}

// Find returns the root of v, halving the path as it goes. Concurrent
// Finds (and Finds racing a commit-phase Link) are safe: path halving
// only ever rewrites a parent pointer to its current grandparent, which
// preserves the forest.
func (u *UF) Find(v int) int {
	for {
		p := atomic.LoadInt32(&u.parent[v])
		if int(p) == v {
			return v
		}
		gp := atomic.LoadInt32(&u.parent[p])
		if p != gp {
			// Halve: point v at its grandparent. A lost race is harmless.
			atomic.CompareAndSwapInt32(&u.parent[v], p, gp)
		}
		v = int(gp)
	}
}

// SameSet reports whether a and b are currently in the same component.
// Racy under concurrent Links; callers sequence it per the reservation
// protocol.
func (u *UF) SameSet(a, b int) bool { return u.Find(a) == u.Find(b) }

// Link makes root a child of parent. a must be a root owned exclusively
// by the caller (e.g. reserved via WriteMin); parent may be any vertex.
func (u *UF) Link(a, parent int) {
	atomic.StoreInt32(&u.parent[a], int32(parent))
}

// NumRoots counts the current components (quiescent use).
//
//phasehash:serial quiescent use only: called between speculative rounds when no Link is in flight
func (u *UF) NumRoots() int {
	n := 0
	for i := range u.parent {
		if int(u.parent[i]) == i {
			n++
		}
	}
	return n
}

// Size returns the number of vertices.
func (u *UF) Size() int { return len(u.parent) }
