package unionfind

import (
	"testing"

	"phasehash/internal/parallel"
)

func TestBasic(t *testing.T) {
	u := New(10)
	if u.NumRoots() != 10 {
		t.Fatalf("NumRoots = %d", u.NumRoots())
	}
	u.Link(u.Find(1), u.Find(2))
	u.Link(u.Find(3), u.Find(4))
	if !u.SameSet(1, 2) || !u.SameSet(3, 4) {
		t.Error("linked pairs not in same set")
	}
	if u.SameSet(1, 3) {
		t.Error("unlinked pairs in same set")
	}
	u.Link(u.Find(2), u.Find(3))
	if !u.SameSet(1, 4) {
		t.Error("transitive link failed")
	}
	if u.NumRoots() != 10-3 {
		t.Errorf("NumRoots = %d, want 7", u.NumRoots())
	}
}

func TestChainCompression(t *testing.T) {
	n := 10000
	u := New(n)
	for i := 0; i < n-1; i++ {
		u.Link(i, i+1)
	}
	if got := u.Find(0); got != n-1 {
		t.Fatalf("Find(0) = %d, want %d", got, n-1)
	}
	// After halving, repeated finds are fast and stable.
	for i := 0; i < n; i++ {
		if u.Find(i) != n-1 {
			t.Fatalf("Find(%d) != root", i)
		}
	}
}

func TestConcurrentFinds(t *testing.T) {
	n := 50000
	u := New(n)
	for i := 0; i < n-1; i += 2 {
		u.Link(i, i+1)
	}
	parallel.ForGrain(n, 1, func(i int) {
		root := u.Find(i)
		want := i | 1
		if root != want {
			t.Errorf("Find(%d) = %d, want %d", i, root, want)
		}
	})
}
