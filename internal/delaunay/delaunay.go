// Package delaunay builds 2-D Delaunay triangulations incrementally
// (Bowyer–Watson with walking point location) and exposes the mesh
// operations the refinement application needs: cavity computation,
// point insertion, angle tests and circumcenters.
//
// The triangulation is the *input substrate* of the paper's Table 4
// experiment (PBBS ships pre-built triangulations of the 2DinCube and
// 2Dkuzmin point sets); the timed hash-table phases live in
// internal/apps/refine. Points are inserted in Morton order with
// walk-from-last location, which makes construction effectively linear.
package delaunay

import (
	"fmt"

	"phasehash/internal/geom"
)

// NoTri marks an absent neighbor (hull edges of the bounding triangle).
const NoTri = int32(-1)

// Tri is one triangle: vertices in counter-clockwise order, and N[i] the
// neighbor across the edge opposite V[i] (the edge V[i+1]-V[i+2]).
type Tri struct {
	V     [3]int32
	N     [3]int32
	Alive bool
}

// Mesh is a triangulation under construction. The first three vertices
// are the synthetic bounding ("super") triangle's corners; triangles
// touching them are not part of the real triangulation.
type Mesh struct {
	Pts  []geom.Point
	Tris []Tri
	free []int32
	hint int32 // walk start for the next location query

	// scratch buffers reused across insertions
	cavity   []int32
	boundary []bEdge
	inCavity map[int32]bool
}

type bEdge struct {
	u, w  int32 // directed boundary edge (cavity on the left)
	outer int32 // triangle across the edge, NoTri on the hull
}

// NumSuper is the number of synthetic bounding vertices.
const NumSuper = 3

// New creates a mesh over the given points plus a bounding triangle
// large enough to contain them all. The input points are not yet
// inserted; call Insert (or Build, which does everything).
func New(pts []geom.Point) *Mesh {
	lo, hi := geom.Bounds(pts)
	w := hi.X - lo.X + 1
	h := hi.Y - lo.Y + 1
	cx, cy := (lo.X+hi.X)/2, (lo.Y+hi.Y)/2
	r := 10 * (w + h)
	m := &Mesh{
		Pts: append([]geom.Point{
			{X: cx - 2*r, Y: cy - r},
			{X: cx + 2*r, Y: cy - r},
			{X: cx, Y: cy + 2*r},
		}, pts...),
		inCavity: make(map[int32]bool, 32),
	}
	m.Tris = append(m.Tris, Tri{V: [3]int32{0, 1, 2}, N: [3]int32{NoTri, NoTri, NoTri}, Alive: true})
	return m
}

// Build triangulates all points and returns the mesh. Points are
// inserted in Morton order; the result is the unique Delaunay
// triangulation (up to degenerate cocircular sets, resolved by insertion
// order, which is itself deterministic).
func Build(pts []geom.Point) *Mesh {
	m := New(pts)
	for _, i := range geom.MortonOrder(pts) {
		m.Insert(int32(i + NumSuper))
	}
	return m
}

// PointOf returns vertex v's coordinates.
func (m *Mesh) PointOf(v int32) geom.Point { return m.Pts[v] }

// IsSuper reports whether vertex v is a synthetic bounding vertex.
func IsSuper(v int32) bool { return v < NumSuper }

// IsReal reports whether triangle t is alive and free of bounding
// vertices.
func (m *Mesh) IsReal(t int32) bool {
	tr := &m.Tris[t]
	return tr.Alive && !IsSuper(tr.V[0]) && !IsSuper(tr.V[1]) && !IsSuper(tr.V[2])
}

// Locate returns an alive triangle containing p (boundary inclusive),
// walking from the hint.
func (m *Mesh) Locate(p geom.Point) int32 {
	t := m.hint
	if t < 0 || t >= int32(len(m.Tris)) || !m.Tris[t].Alive {
		t = m.someAlive()
	}
	steps := 0
	limit := 4*len(m.Tris) + 64
walk:
	for {
		if steps++; steps > limit {
			// Degenerate walk (should not happen with exact predicates);
			// fall back to exhaustive scan.
			return m.scanLocate(p)
		}
		tr := &m.Tris[t]
		for e := 0; e < 3; e++ {
			u := m.Pts[tr.V[(e+1)%3]]
			w := m.Pts[tr.V[(e+2)%3]]
			if geom.Orient2D(u, w, p) < 0 {
				nt := tr.N[e]
				if nt == NoTri {
					return m.scanLocate(p) // outside hull: bounding bug
				}
				t = nt
				continue walk
			}
		}
		return t
	}
}

func (m *Mesh) someAlive() int32 {
	for i := int32(len(m.Tris)) - 1; i >= 0; i-- {
		if m.Tris[i].Alive {
			return i
		}
	}
	panic("delaunay: no alive triangles")
}

func (m *Mesh) scanLocate(p geom.Point) int32 {
	for i := range m.Tris {
		tr := &m.Tris[i]
		if !tr.Alive {
			continue
		}
		if geom.Orient2D(m.Pts[tr.V[0]], m.Pts[tr.V[1]], p) >= 0 &&
			geom.Orient2D(m.Pts[tr.V[1]], m.Pts[tr.V[2]], p) >= 0 &&
			geom.Orient2D(m.Pts[tr.V[2]], m.Pts[tr.V[0]], p) >= 0 {
			return int32(i)
		}
	}
	panic(fmt.Sprintf("delaunay: point %v not in any triangle", p))
}

// Cavity returns the alive triangles whose circumcircle contains p,
// connected through the triangle containing p (the Bowyer–Watson
// cavity), using the caller-visible point p. The result is stable
// (deterministic BFS order) and valid until the next mutation.
func (m *Mesh) Cavity(p geom.Point) []int32 {
	t := m.Locate(p)
	return m.cavityFrom(t, p)
}

func (m *Mesh) cavityFrom(t int32, p geom.Point) []int32 {
	m.cavity = m.cavity[:0]
	for k := range m.inCavity {
		delete(m.inCavity, k)
	}
	stack := []int32{t}
	m.inCavity[t] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m.cavity = append(m.cavity, cur)
		tr := &m.Tris[cur]
		for e := 0; e < 3; e++ {
			nt := tr.N[e]
			if nt == NoTri || m.inCavity[nt] {
				continue
			}
			ntr := &m.Tris[nt]
			if geom.InCircle(m.Pts[ntr.V[0]], m.Pts[ntr.V[1]], m.Pts[ntr.V[2]], p) > 0 {
				m.inCavity[nt] = true
				stack = append(stack, nt)
			}
		}
	}
	return m.cavity
}

// duplicateOf returns a vertex of triangle t coincident with p, or -1.
// Inserting a coincident point would create degenerate triangles, so
// Insert and InsertPoint skip duplicates.
func (m *Mesh) duplicateOf(t int32, p geom.Point) int32 {
	tr := &m.Tris[t]
	for e := 0; e < 3; e++ {
		q := m.Pts[tr.V[e]]
		if q.X == p.X && q.Y == p.Y {
			return tr.V[e]
		}
	}
	return -1
}

// Insert adds vertex v (an index into m.Pts) to the triangulation.
// Coincident duplicates of already-inserted points are skipped.
func (m *Mesh) Insert(v int32) {
	p := m.Pts[v]
	t := m.Locate(p)
	if m.duplicateOf(t, p) >= 0 {
		return
	}
	cav := m.cavityFrom(t, p)
	m.retriangulate(v, cav)
}

// InsertPoint appends p as a new vertex and inserts it, returning the
// new vertex index and the triangles created. Used by refinement to add
// circumcenters. If p coincides with an existing vertex, it returns
// (that vertex, nil).
func (m *Mesh) InsertPoint(p geom.Point) (int32, []int32) {
	t := m.Locate(p)
	if dup := m.duplicateOf(t, p); dup >= 0 {
		return dup, nil
	}
	v := int32(len(m.Pts))
	m.Pts = append(m.Pts, p)
	cav := m.cavityFrom(t, p)
	return v, m.retriangulate(v, cav)
}

// InSuperTriangle reports whether p lies strictly inside the bounding
// triangle (where insertion is safe). Refinement uses it to skip
// circumcenters that escape the mesh.
func (m *Mesh) InSuperTriangle(p geom.Point) bool {
	a, b, c := m.Pts[0], m.Pts[1], m.Pts[2]
	return geom.Orient2D(a, b, p) > 0 && geom.Orient2D(b, c, p) > 0 && geom.Orient2D(c, a, p) > 0
}

// retriangulate replaces the cavity with a fan around v and returns the
// new triangle ids (valid until the next mutation; callers must copy if
// they keep it).
func (m *Mesh) retriangulate(v int32, cav []int32) []int32 {
	// Collect directed boundary edges.
	m.boundary = m.boundary[:0]
	for _, ct := range cav {
		tr := &m.Tris[ct]
		for e := 0; e < 3; e++ {
			nt := tr.N[e]
			if nt != NoTri && m.inCavity[nt] {
				continue
			}
			m.boundary = append(m.boundary, bEdge{
				u:     tr.V[(e+1)%3],
				w:     tr.V[(e+2)%3],
				outer: nt,
			})
		}
	}
	// Kill cavity triangles and recycle their slots.
	for _, ct := range cav {
		m.Tris[ct].Alive = false
		m.free = append(m.free, ct)
	}
	// One new triangle per boundary edge: (u, w, v), CCW.
	newIDs := make([]int32, len(m.boundary))
	for i, be := range m.boundary {
		newIDs[i] = m.alloc(Tri{
			V:     [3]int32{be.u, be.w, v},
			N:     [3]int32{NoTri, NoTri, NoTri},
			Alive: true,
		})
	}
	// Link each new triangle: across (u,w) to the outer triangle, and to
	// its two fan neighbors, found by matching edge endpoints.
	startAt := make(map[int32]int32, len(m.boundary)) // u -> new tri
	for i, be := range m.boundary {
		startAt[be.u] = newIDs[i]
	}
	for i, be := range m.boundary {
		nt := newIDs[i]
		tr := &m.Tris[nt]
		// Edge opposite v is (u,w): outer neighbor.
		tr.N[2] = be.outer
		if be.outer != NoTri {
			m.setNeighbor(be.outer, be.w, be.u, nt)
		}
		// Edge opposite u is (w,v): the fan triangle starting at w.
		tr.N[0] = startAt[be.w]
		// Edge opposite w is (v,u): the fan triangle ending at u — the
		// one that starts at some x with w' == u; equivalently the
		// triangle t' with startAt[x] and edge (x,u). Found via the
		// reverse map below.
	}
	// Second pass for the (v,u) links using the forward links: triangle
	// A's N[0] — across (w,v) — points at B, so B's N[1] — across
	// (v,u=B.u... ) — points back at A.
	for i := range m.boundary {
		a := newIDs[i]
		b := m.Tris[a].N[0]
		m.Tris[b].N[1] = a
	}
	m.hint = newIDs[0]
	return newIDs
}

// alloc reuses a free slot or appends.
func (m *Mesh) alloc(t Tri) int32 {
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		m.Tris[id] = t
		return id
	}
	m.Tris = append(m.Tris, t)
	return int32(len(m.Tris) - 1)
}

// setNeighbor updates triangle t's neighbor pointer across the directed
// edge (u,w) (as seen from t) to nt.
func (m *Mesh) setNeighbor(t, u, w, nt int32) {
	tr := &m.Tris[t]
	for e := 0; e < 3; e++ {
		a, b := tr.V[(e+1)%3], tr.V[(e+2)%3]
		if (a == u && b == w) || (a == w && b == u) {
			tr.N[e] = nt
			return
		}
	}
	panic("delaunay: setNeighbor: edge not found")
}

// CavityBuf holds per-goroutine scratch for LocateRO/CavityRO, letting
// many goroutines compute cavities on a quiescent mesh concurrently (the
// refinement application's reservation phase reads the mesh from every
// worker at once).
type CavityBuf struct {
	cav   []int32
	stack []int32
	seen  map[int32]bool
}

// NewCavityBuf returns an empty scratch buffer.
func NewCavityBuf() *CavityBuf {
	return &CavityBuf{seen: make(map[int32]bool, 32)}
}

// LocateRO is Locate without touching the shared walk hint: safe for
// concurrent use on a quiescent mesh. The caller provides the triangle
// to start walking from (any alive triangle; a nearby one is faster).
func (m *Mesh) LocateRO(p geom.Point, from int32) int32 {
	t := from
	if t < 0 || t >= int32(len(m.Tris)) || !m.Tris[t].Alive {
		t = m.someAlive()
	}
	steps := 0
	limit := 4*len(m.Tris) + 64
walk:
	for {
		if steps++; steps > limit {
			return m.scanLocate(p)
		}
		tr := &m.Tris[t]
		for e := 0; e < 3; e++ {
			u := m.Pts[tr.V[(e+1)%3]]
			w := m.Pts[tr.V[(e+2)%3]]
			if geom.Orient2D(u, w, p) < 0 {
				nt := tr.N[e]
				if nt == NoTri {
					return m.scanLocate(p)
				}
				t = nt
				continue walk
			}
		}
		return t
	}
}

// CavityRO computes the Bowyer–Watson cavity of p into the caller's
// buffer, starting the walk at from. Read-only and safe for concurrent
// use on a quiescent mesh. The returned slice is owned by buf.
func (m *Mesh) CavityRO(p geom.Point, from int32, buf *CavityBuf) []int32 {
	t := m.LocateRO(p, from)
	buf.cav = buf.cav[:0]
	buf.stack = buf.stack[:0]
	for k := range buf.seen {
		delete(buf.seen, k)
	}
	buf.stack = append(buf.stack, t)
	buf.seen[t] = true
	for len(buf.stack) > 0 {
		cur := buf.stack[len(buf.stack)-1]
		buf.stack = buf.stack[:len(buf.stack)-1]
		buf.cav = append(buf.cav, cur)
		tr := &m.Tris[cur]
		for e := 0; e < 3; e++ {
			nt := tr.N[e]
			if nt == NoTri || buf.seen[nt] {
				continue
			}
			ntr := &m.Tris[nt]
			if geom.InCircle(m.Pts[ntr.V[0]], m.Pts[ntr.V[1]], m.Pts[ntr.V[2]], p) > 0 {
				buf.seen[nt] = true
				buf.stack = append(buf.stack, nt)
			}
		}
	}
	return buf.cav
}

// Neighbors3 returns triangle t's neighbor ids (NoTri entries included).
func (m *Mesh) Neighbors3(t int32) [3]int32 { return m.Tris[t].N }

// TriPoints returns the corner coordinates of triangle t.
func (m *Mesh) TriPoints(t int32) (a, b, c geom.Point) {
	tr := &m.Tris[t]
	return m.Pts[tr.V[0]], m.Pts[tr.V[1]], m.Pts[tr.V[2]]
}

// NumAlive counts alive triangles (including super-adjacent ones).
func (m *Mesh) NumAlive() int {
	n := 0
	for i := range m.Tris {
		if m.Tris[i].Alive {
			n++
		}
	}
	return n
}

// RealTriangles returns the ids of alive triangles with no bounding
// vertices — the actual triangulation.
func (m *Mesh) RealTriangles() []int32 {
	var out []int32
	for i := range m.Tris {
		if m.IsReal(int32(i)) {
			out = append(out, int32(i))
		}
	}
	return out
}

// Check validates mesh invariants: neighbor links are mutual, triangles
// are CCW, and (expensively) the Delaunay property holds for every real
// triangle against its neighbors' opposite vertices.
func (m *Mesh) Check() error {
	for i := range m.Tris {
		tr := &m.Tris[i]
		if !tr.Alive {
			continue
		}
		if geom.Orient2D(m.Pts[tr.V[0]], m.Pts[tr.V[1]], m.Pts[tr.V[2]]) <= 0 {
			return fmt.Errorf("delaunay: triangle %d not CCW", i)
		}
		for e := 0; e < 3; e++ {
			nt := tr.N[e]
			if nt == NoTri {
				continue
			}
			ntr := &m.Tris[nt]
			if !ntr.Alive {
				return fmt.Errorf("delaunay: triangle %d links dead neighbor %d", i, nt)
			}
			found := false
			for f := 0; f < 3; f++ {
				if ntr.N[f] == int32(i) {
					found = true
					// Local Delaunay: the vertex of nt opposite the
					// shared edge must not lie inside i's circumcircle.
					d := m.Pts[ntr.V[f]]
					if geom.InCircle(m.Pts[tr.V[0]], m.Pts[tr.V[1]], m.Pts[tr.V[2]], d) > 0 {
						return fmt.Errorf("delaunay: triangles %d/%d violate the Delaunay property", i, nt)
					}
				}
			}
			if !found {
				return fmt.Errorf("delaunay: neighbor link %d->%d not mutual", i, nt)
			}
		}
	}
	return nil
}
