package delaunay

import (
	"testing"

	"phasehash/internal/geom"
)

func TestSquareTriangulation(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}}
	m := Build(pts)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	real := m.RealTriangles()
	if len(real) != 2 {
		t.Fatalf("square triangulated into %d real triangles, want 2", len(real))
	}
}

func TestGridPoints(t *testing.T) {
	// A k x k grid has many cocircular quadruples — the stress case for
	// the exact predicates.
	var pts []geom.Point
	k := 8
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			pts = append(pts, geom.Point{X: float64(i), Y: float64(j)})
		}
	}
	m := Build(pts)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	// Euler: a triangulation of n points with h hull vertices has
	// 2n-2-h triangles; the grid hull has 4(k-1) vertices.
	n := k * k
	h := 4 * (k - 1)
	want := 2*n - 2 - h
	if got := len(m.RealTriangles()); got != want {
		t.Fatalf("grid triangulation has %d real triangles, want %d", got, want)
	}
}

func TestRandomPointsDelaunayProperty(t *testing.T) {
	for _, gen := range []struct {
		name string
		pts  []geom.Point
	}{
		{"incube", geom.InCube(2000, 11)},
		{"kuzmin", geom.Kuzmin(1000, 13)},
	} {
		m := Build(gen.pts)
		if err := m.Check(); err != nil {
			t.Fatalf("%s: %v", gen.name, err)
		}
		real := m.RealTriangles()
		if len(real) < len(gen.pts) {
			t.Fatalf("%s: suspiciously few triangles (%d for %d points)", gen.name, len(real), len(gen.pts))
		}
	}
}

func TestDuplicatePointsSkipped(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}, {X: 0, Y: 0}}
	m := Build(pts)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.RealTriangles()); got != 1 {
		t.Fatalf("got %d real triangles, want 1 (duplicates skipped)", got)
	}
}

func TestInsertPointReturnsCavityFan(t *testing.T) {
	pts := geom.InCube(500, 17)
	m := Build(pts)
	before := len(m.RealTriangles())
	v, created := m.InsertPoint(geom.Point{X: 0.5, Y: 0.5000001})
	if v < NumSuper {
		t.Fatal("InsertPoint returned a super vertex")
	}
	if len(created) < 3 {
		t.Fatalf("insertion created %d triangles, want >= 3", len(created))
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	after := len(m.RealTriangles())
	if after <= before {
		t.Fatalf("triangle count did not grow: %d -> %d", before, after)
	}
	// Inserting the exact same point again is a no-op duplicate.
	v2, created2 := m.InsertPoint(geom.Point{X: 0.5, Y: 0.5000001})
	if v2 != v || created2 != nil {
		t.Fatalf("duplicate insert returned (%d, %v), want (%d, nil)", v2, created2, v)
	}
}

func TestLocateFindsContainingTriangle(t *testing.T) {
	pts := geom.InCube(300, 23)
	m := Build(pts)
	for i := 0; i < 50; i++ {
		p := geom.Point{X: 0.01 + 0.02*float64(i%7), Y: 0.01 + 0.013*float64(i)}
		if p.Y >= 1 {
			continue
		}
		tid := m.Locate(p)
		tr := m.Tris[tid]
		if !tr.Alive {
			t.Fatal("Locate returned a dead triangle")
		}
		// Containment check.
		a, b, c := m.Pts[tr.V[0]], m.Pts[tr.V[1]], m.Pts[tr.V[2]]
		if geom.Orient2D(a, b, p) < 0 || geom.Orient2D(b, c, p) < 0 || geom.Orient2D(c, a, p) < 0 {
			t.Fatalf("Locate(%v) returned non-containing triangle", p)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	pts := geom.InCube(1000, 31)
	a := Build(pts)
	b := Build(pts)
	if len(a.Tris) != len(b.Tris) {
		t.Fatal("triangle arrays differ in length across builds")
	}
	for i := range a.Tris {
		if a.Tris[i].Alive != b.Tris[i].Alive || a.Tris[i].V != b.Tris[i].V {
			t.Fatalf("builds differ at triangle %d", i)
		}
	}
}

func TestCollinearInput(t *testing.T) {
	// All points on a line: no real triangles, but the mesh (with super
	// vertices) must stay consistent.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	m := Build(pts)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.RealTriangles()); got != 0 {
		t.Fatalf("collinear points produced %d real triangles", got)
	}
}
