// Package rooms implements room synchronization (Blelloch, Cheng &
// Gibbons, "Scalable room synchronizations", Theory of Computing Systems
// 2003) — the mechanism the paper's conclusion points at for
// *automatically* separating hash-table operations into phases.
//
// A Rooms object manages a set of rooms of which at most one is open at
// a time. Any number of goroutines may occupy the open room together;
// a goroutine wanting a different room waits until the current room
// empties. Unlike a plain mutex, a room admits unbounded concurrency
// within itself — exactly the phase-concurrency contract: make "insert",
// "delete" and "read" the rooms, and the table's phase discipline is
// enforced dynamically instead of by program structure.
//
// The implementation is a ticket-free two-counter design: a packed
// (room, occupants) word transitions by CAS, plus a FIFO-ish wait list
// per room realized with channels so waiters do not spin.
package rooms

import (
	"context"
	"fmt"
	"sync"
)

// Rooms coordinates exclusive rooms with internal concurrency.
type Rooms struct {
	mu         sync.Mutex
	current    int   // open room, -1 if none
	inside     int   // occupants of the open room
	waiting    []int // waiting count per room
	lastClosed int   // last room that was open (rotation anchor)
	cond       *sync.Cond
	nRooms     int
}

// New returns a Rooms with n rooms, all closed.
func New(n int) *Rooms {
	if n < 1 {
		panic("rooms: need at least one room")
	}
	r := &Rooms{current: -1, waiting: make([]int, n), nRooms: n}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Enter blocks until room id can be occupied (it is open, or no room is
// open) and occupies it. Multiple goroutines may hold the same room
// concurrently.
//
// Fairness: when a room empties, preference rotates to the next room
// (by index) with waiters, so a steady stream of one room's entrants
// cannot starve the others — the property the room-synchronization
// paper calls phase fairness.
func (r *Rooms) Enter(id int) {
	if id < 0 || id >= r.nRooms {
		panic(fmt.Sprintf("rooms: bad room id %d", id))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.waiting[id]++
	for !r.admissible(id) {
		r.cond.Wait()
	}
	r.waiting[id]--
	r.current = id
	r.inside++
}

// EnterCtx is Enter with cancellation: it occupies room id and returns
// nil, or gives up when ctx is done and returns ctx.Err() WITHOUT
// occupying the room. An abandoning waiter cleanly retracts its
// waiting count and re-wakes the other waiters, so the rotation cannot
// wedge pointing at a room nobody wants anymore — the shutdown/deadline
// path of anything built on rooms (e.g. a server draining its phase
// scheduler) depends on that.
func (r *Rooms) EnterCtx(ctx context.Context, id int) error {
	if id < 0 || id >= r.nRooms {
		panic(fmt.Sprintf("rooms: bad room id %d", id))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// The callback takes the mutex before broadcasting, ordering the
	// wake-up after this goroutine parks in Wait: no missed wakeup.
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.waiting[id]++
	for !r.admissible(id) {
		if err := ctx.Err(); err != nil {
			r.waiting[id]--
			// The abandoned slot may have been the rotation's next target;
			// re-wake everyone so admissibility is recomputed against the
			// corrected counts.
			r.cond.Broadcast()
			return err
		}
		r.cond.Wait()
	}
	r.waiting[id]--
	r.current = id
	r.inside++
	return nil
}

// admissible reports whether a goroutine may enter room id now.
func (r *Rooms) admissible(id int) bool {
	if r.current == -1 {
		// No room open: admit only the highest-preference waiting room
		// to preserve rotation fairness.
		return r.nextRoom() == id
	}
	if r.current != id {
		return false
	}
	// Room id is open. To guarantee progress for other rooms, close the
	// door once someone is waiting elsewhere: late entrants to the open
	// room must wait for the next rotation.
	for w := 0; w < r.nRooms; w++ {
		if w != id && r.waiting[w] > 0 {
			return false
		}
	}
	return true
}

// nextRoom picks the room that should open next: the first room after
// the last open one (cyclically) with waiters.
func (r *Rooms) nextRoom() int {
	start := r.current
	if start < 0 {
		start = r.lastClosed
	}
	for d := 1; d <= r.nRooms; d++ {
		id := (start + d) % r.nRooms
		if r.waiting[id] > 0 {
			return id
		}
	}
	return -1
}

// Exit leaves room id. The last occupant closes the room and wakes
// waiters.
func (r *Rooms) Exit(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.current != id || r.inside == 0 {
		panic(fmt.Sprintf("rooms: Exit(%d) without matching Enter (open=%d inside=%d)", id, r.current, r.inside))
	}
	r.inside--
	if r.inside == 0 {
		r.lastClosed = r.current
		r.current = -1
		r.cond.Broadcast()
	}
}

// With runs fn inside room id.
func (r *Rooms) With(id int, fn func()) {
	r.Enter(id)
	defer r.Exit(id)
	fn()
}

// Occupancy reports the open room and its occupant count (-1 if none);
// for diagnostics.
func (r *Rooms) Occupancy() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current, r.inside
}

// Waiting reports how many goroutines are currently waiting to enter
// room id; for diagnostics and leak checks (an abandoned EnterCtx must
// leave this at zero).
func (r *Rooms) Waiting(id int) int {
	if id < 0 || id >= r.nRooms {
		panic(fmt.Sprintf("rooms: bad room id %d", id))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.waiting[id]
}
