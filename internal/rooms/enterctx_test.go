package rooms

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestEnterCtxUncontended: with no contention EnterCtx behaves exactly
// like Enter.
func TestEnterCtxUncontended(t *testing.T) {
	r := New(2)
	if err := r.EnterCtx(context.Background(), 1); err != nil {
		t.Fatalf("EnterCtx: %v", err)
	}
	if room, n := r.Occupancy(); room != 1 || n != 1 {
		t.Fatalf("occupancy (%d,%d), want (1,1)", room, n)
	}
	r.Exit(1)
}

// TestEnterCtxExpired: an already-done context never touches the
// waiter accounting.
func TestEnterCtxExpired(t *testing.T) {
	r := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.EnterCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if w := r.Waiting(0); w != 0 {
		t.Fatalf("Waiting(0) = %d after refused entry", w)
	}
	if room, n := r.Occupancy(); room != -1 || n != 0 {
		t.Fatalf("occupancy (%d,%d) after refused entry", room, n)
	}
}

// TestEnterCtxAbandonWhileWaiting: a waiter that gives up (deadline,
// shutdown) must retract its waiting count and must not block later
// entrants — the wedge this satellite exists to pin down.
func TestEnterCtxAbandonWhileWaiting(t *testing.T) {
	r := New(2)
	r.Enter(0) // hold room 0 so room 1 waiters park

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- r.EnterCtx(ctx, 1) }()
	for r.Waiting(1) == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("EnterCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	if w := r.Waiting(1); w != 0 {
		t.Fatalf("Waiting(1) = %d after abandon: waiter count leaked", w)
	}

	// The room machinery must still work: release room 0, then a plain
	// Enter into each room.
	r.Exit(0)
	done := make(chan struct{})
	go func() {
		r.With(1, func() {})
		r.With(0, func() {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("rooms wedged after abandoned waiter")
	}
}

// TestEnterCtxAbandonedPreferenceDoesNotWedge: the rotation may prefer
// the abandoning waiter's room; after it retracts, waiters for OTHER
// rooms must still be admitted.
func TestEnterCtxAbandonedPreferenceDoesNotWedge(t *testing.T) {
	r := New(3)
	r.Enter(0) // hold room 0

	// Room 1 waiter (will abandon) parks first so rotation prefers room
	// 1; room 2 waiter parks behind it.
	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() { abandoned <- r.EnterCtx(ctx, 1) }()
	for r.Waiting(1) == 0 {
		time.Sleep(time.Millisecond)
	}
	got2 := make(chan struct{})
	go func() {
		r.Enter(2)
		close(got2)
	}()
	for r.Waiting(2) == 0 {
		time.Sleep(time.Millisecond)
	}

	cancel()
	if err := <-abandoned; !errors.Is(err, context.Canceled) {
		t.Fatalf("EnterCtx = %v, want context.Canceled", err)
	}
	r.Exit(0) // rotation must now land on room 2, not the empty room 1
	select {
	case <-got2:
	case <-time.After(5 * time.Second):
		t.Fatal("room 2 waiter wedged behind an abandoned room 1 preference")
	}
	r.Exit(2)
}

// TestEnterCtxMixedStress: plain and cancellable entrants race with a
// steady trickle of abandoning waiters; afterwards no waiter count may
// remain and every room must still be enterable.
func TestEnterCtxMixedStress(t *testing.T) {
	r := New(3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			room := g % 3
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.With(room, func() {})
			}
		}(g)
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			room := g % 3
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*100*time.Microsecond)
				if err := r.EnterCtx(ctx, room); err == nil {
					r.Exit(room)
				}
				cancel()
			}
		}(g)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	for id := 0; id < 3; id++ {
		if w := r.Waiting(id); w != 0 {
			t.Fatalf("Waiting(%d) = %d after stress: leaked waiter count", id, w)
		}
	}
	for id := 0; id < 3; id++ {
		r.With(id, func() {})
	}
}
