package rooms

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleRoomMutualConcurrency(t *testing.T) {
	r := New(2)
	var inside, maxInside atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.With(0, func() {
				v := inside.Add(1)
				for {
					m := maxInside.Load()
					if v <= m || maxInside.CompareAndSwap(m, v) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inside.Add(-1)
			})
		}()
	}
	wg.Wait()
	if maxInside.Load() < 2 {
		t.Errorf("max concurrent occupancy %d; same-room entrants should share", maxInside.Load())
	}
}

func TestRoomsMutuallyExclusive(t *testing.T) {
	r := New(3)
	var open atomic.Int32 // which room believes it is open (+1), 0 = none
	var violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			room := g % 3
			for i := 0; i < 200; i++ {
				r.With(room, func() {
					prev := open.Swap(int32(room + 1))
					if prev != 0 && prev != int32(room+1) {
						violations.Add(1)
					}
					// Leave the marker set while inside; reset only if
					// we were the ones to set it from 0.
					if prev == 0 {
						defer open.CompareAndSwap(int32(room+1), 0)
					}
				})
			}
		}(g)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d cross-room overlaps observed", violations.Load())
	}
}

func TestRotationFairness(t *testing.T) {
	// A continuous stream into room 0 must not starve room 1.
	r := New(2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r.With(0, func() {})
			}
		}()
	}
	got := make(chan struct{})
	go func() {
		r.With(1, func() { close(got) })
	}()
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Error("room 1 starved for 5s by room 0 traffic")
	}
	close(done)
	wg.Wait()
}

func TestExitWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exit without Enter did not panic")
		}
	}()
	New(2).Exit(0)
}

func TestBadRoomIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad id did not panic")
		}
	}()
	New(2).Enter(5)
}

func TestOccupancy(t *testing.T) {
	r := New(2)
	if room, n := r.Occupancy(); room != -1 || n != 0 {
		t.Fatalf("initial occupancy (%d,%d)", room, n)
	}
	r.Enter(1)
	if room, n := r.Occupancy(); room != 1 || n != 1 {
		t.Fatalf("occupancy (%d,%d), want (1,1)", room, n)
	}
	r.Exit(1)
	if room, n := r.Occupancy(); room != -1 || n != 0 {
		t.Fatalf("post-exit occupancy (%d,%d)", room, n)
	}
}
