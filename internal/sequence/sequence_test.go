package sequence

import (
	"testing"
	"testing/quick"

	"phasehash/internal/core"
	"phasehash/internal/parallel"
)

func TestRandomKeysRangeAndDeterminism(t *testing.T) {
	a := RandomKeys(10000, 7)
	b := RandomKeys(10000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed differs at %d", i)
		}
		if a[i] < 1 || a[i] > 10000 {
			t.Fatalf("key %d out of [1,n]", a[i])
		}
	}
	c := RandomKeys(10000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d identical positions", same)
	}
}

func TestRandomKeysUniformity(t *testing.T) {
	n := 100000
	keys := RandomKeys(n, 3)
	const buckets = 16
	var counts [buckets]int
	for _, k := range keys {
		counts[(k-1)*buckets/uint64(n)]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d has %d keys, want ~%d", b, c, want)
		}
	}
}

func TestRandomKeysScheduleIndependent(t *testing.T) {
	n := 50000
	old := parallel.SetNumWorkers(1)
	a := RandomKeys(n, 11)
	parallel.SetNumWorkers(4)
	b := RandomKeys(n, 11)
	parallel.SetNumWorkers(old)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker count changed the sequence at %d", i)
		}
	}
}

func TestExptKeysSkew(t *testing.T) {
	n := 100000
	keys := ExptKeys(n, 5)
	// The exponential distribution concentrates on small keys: well over
	// a third of draws should land in the bottom 1/8 of the range, unlike
	// uniform (1/8).
	small := 0
	for _, k := range keys {
		if k <= uint64(n/8) {
			small++
		}
		if k < 1 || k > uint64(n)+1 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if small < n/3 {
		t.Errorf("only %d/%d keys in bottom eighth; distribution not skewed", small, n)
	}
	// And it must contain many duplicates.
	set := map[uint64]bool{}
	for _, k := range keys {
		set[k] = true
	}
	if len(set) > n*3/4 {
		t.Errorf("exponential sequence has %d distinct of %d; expected heavy repetition", len(set), n)
	}
}

func TestPairElementsWellFormed(t *testing.T) {
	for _, d := range []Distribution{RandomPairInt, ExptPairInt} {
		elems := WordElements(d, 20000, 9)
		for _, e := range elems {
			if core.PairKey(e) == 0 {
				t.Fatalf("%s produced key 0 (reserved)", d)
			}
		}
	}
}

func TestTrigramWordsShape(t *testing.T) {
	words := TrigramWords(50000, 13)
	dist := map[string]int{}
	totalLen := 0
	for _, w := range words {
		if len(w) == 0 || len(w) > maxWordLen {
			t.Fatalf("word %q has bad length", w)
		}
		for i := 0; i < len(w); i++ {
			if w[i] < 'a' || w[i] > 'z' {
				t.Fatalf("word %q has non-letter", w)
			}
		}
		dist[w]++
		totalLen += len(w)
	}
	mean := float64(totalLen) / float64(len(words))
	if mean < 2.5 || mean > 9 {
		t.Errorf("mean word length %.2f outside plausible English range", mean)
	}
	// Heavy duplication is the point of this input.
	if len(dist) > len(words)/2 {
		t.Errorf("trigram sequence has %d distinct of %d words; want many duplicates", len(dist), len(words))
	}
	// Determinism.
	again := TrigramWords(50000, 13)
	for i := range words {
		if words[i] != again[i] {
			t.Fatalf("trigram stream not deterministic at %d", i)
		}
	}
}

func TestTrigramPairsInPtrTable(t *testing.T) {
	pairs := TrigramPairs(20000, 21)
	tab := core.NewPtrTable[StrPair, StrPairOps](1 << 16)
	parallel.ForGrain(len(pairs), 1, func(i int) { tab.Insert(pairs[i]) })
	if err := tab.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	distinct := map[string]uint64{}
	for _, p := range pairs {
		if v, ok := distinct[p.Key]; !ok || p.Val < v {
			distinct[p.Key] = p.Val
		}
	}
	if got := tab.Count(); got != len(distinct) {
		t.Fatalf("Count = %d, want %d distinct words", got, len(distinct))
	}
	// Min-merge semantics: stored value is the minimum for each key.
	for _, e := range tab.Elements() {
		if e.Val != distinct[e.Key] {
			t.Fatalf("key %q stored value %d, want min %d", e.Key, e.Val, distinct[e.Key])
		}
	}
	// Determinism of Elements across rebuild.
	tab2 := core.NewPtrTable[StrPair, StrPairOps](1 << 16)
	parallel.ForGrain(len(pairs), 1, func(i int) { tab2.Insert(pairs[i]) })
	a, b := tab.Elements(), tab2.Elements()
	if len(a) != len(b) {
		t.Fatal("Elements length differs across builds")
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Val != b[i].Val {
			t.Fatalf("Elements differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestQuickExptKeyInRange(t *testing.T) {
	f := func(seed uint64, i uint16, nRaw uint16) bool {
		n := int(nRaw) + 2
		k := exptKey(n, seed, int(i))
		return k >= 1 && k <= uint64(n)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
